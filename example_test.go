package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleNewCluster shows the smallest possible use of the interactive
// API: broadcast one message on a 3-process cluster and watch it arrive.
func ExampleNewCluster() {
	c := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         3,
		OnDeliver: func(d repro.Delivery) {
			fmt.Printf("p%d delivered %v at %v\n", d.Process, d.Body, d.At)
		},
	})
	c.Broadcast(0, "hello")
	c.RunUntilIdle()
	// Output:
	// p0 delivered hello at 7ms
	// p1 delivered hello at 11ms
	// p2 delivered hello at 11ms
}

// ExampleRunSteady reproduces one point of the paper's Figure 4. With a
// fixed seed the result is fully deterministic.
func ExampleRunSteady() {
	res := repro.RunSteady(repro.Config{
		Algorithm:    repro.GM,
		N:            3,
		Throughput:   100,
		Seed:         1,
		Warmup:       time.Second,
		Measure:      5 * time.Second,
		Replications: 2,
	})
	fmt.Printf("stable=%v messages=%d\n", res.Stable, res.Messages)
	fmt.Printf("min latency >= 7ms: %v\n", res.PerMessage.Min >= 7)
	// Output:
	// stable=true messages=1055
	// min latency >= 7ms: true
}

// ExampleCluster_SuspectAt injects a wrong suspicion into a GM cluster
// and observes the membership reacting: exclusion, then rejoin.
func ExampleCluster_SuspectAt() {
	var first, last repro.ViewInfo
	c := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.GM,
		N:         3,
		OnView: func(v repro.ViewInfo) {
			if v.Process != 1 {
				return
			}
			if first.ViewID == 0 {
				first = v
			}
			last = v
		},
	})
	c.SuspectAt(0, 2, 10*time.Millisecond, 50*time.Millisecond)
	c.Run(2 * time.Second)
	fmt.Printf("first view: %d members\n", len(first.Members))
	fmt.Printf("final view: %d members (p2 excluded and rejoined)\n", len(last.Members))
	// Output:
	// first view: 3 members
	// final view: 3 members (p2 excluded and rejoined)
}

// ExampleRunTransient measures the crash-transient scenario: the latency
// of a message broadcast at the very instant the coordinator crashes.
func ExampleRunTransient() {
	res := repro.RunTransient(repro.TransientConfig{
		Config: repro.Config{
			Algorithm:    repro.FD,
			N:            3,
			Throughput:   50,
			QoS:          repro.Detectors(10, 0, 0), // TD = 10ms
			Seed:         1,
			Warmup:       time.Second,
			Replications: 3,
		},
		Crash:  0, // the coordinator
		Sender: 1,
	})
	fmt.Printf("lost=%d\n", res.Lost)
	fmt.Printf("latency exceeds detection time: %v\n", res.Latency.Mean > 10)
	// Output:
	// lost=0
	// latency exceeds detection time: true
}
