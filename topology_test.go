package repro

import (
	"bytes"
	"testing"
	"time"
)

// TestGeoWANPartitionBurstSweepPoint pins the tentpole composition: "a
// WAN partition under an overload burst on a geo topology" as a single
// Sweep grid entry — Topologies × Plans × Loads crossing — bit-identical
// at 1 and 8 workers, and replayable from its recorded trace (the header
// embeds topology, plan and load).
func TestGeoWANPartitionBurstSweepPoint(t *testing.T) {
	geo := Geo(GeoConfig{
		Sites: 3, PerSite: 3,
		WAN: Wire{Delay: 5 * time.Millisecond, Loss: 0.02},
	})
	plan := NewFaultPlan().
		PartitionSites(600*time.Millisecond, geo, 2).
		Heal(900 * time.Millisecond)
	load := NewLoadPlan().
		Burst(500*time.Millisecond, 400*time.Millisecond, AllSenders, 4)
	sweep := Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            geo.N,
			Throughput:   60,
			QoS:          Detectors(10, 0, 0),
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        10 * time.Second,
			Replications: 2,
		},
		Topologies: []*Topology{geo},
		Plans:      []*FaultPlan{plan},
		Loads:      []*LoadPlan{load},
	}
	if pts := sweep.Points(); len(pts) != 1 {
		t.Fatalf("the scenario expands to %d grid points, want a single entry", len(pts))
	}

	run := func(workers int) ([]Result, []TraceDigest, *bytes.Buffer) {
		var buf bytes.Buffer
		tr := NewTrace(&buf)
		s := sweep
		s.Base.Observers = []ObserverFactory{tr.Observer}
		r := &Runner{Workers: workers}
		res := r.Sweep(s)
		digests := tr.Digests()
		if err := tr.Flush(); err != nil {
			t.Fatalf("trace flush: %v", err)
		}
		return res, digests, &buf
	}
	serial, serialDigests, trace := run(1)
	parallel, parallelDigests, _ := run(8)

	if len(serial) != 1 || len(parallel) != 1 {
		t.Fatalf("got %d serial and %d parallel results, want 1 each", len(serial), len(parallel))
	}
	s, p := serial[0], parallel[0]
	if s.Latency != p.Latency || s.Quantiles != p.Quantiles ||
		s.Messages != p.Messages || s.Undelivered != p.Undelivered {
		t.Fatalf("serial and parallel results diverge:\n  1 worker:  %+v\n  8 workers: %+v", s, p)
	}
	if len(serialDigests) != 2 {
		t.Fatalf("got %d trace digests, want one per replication", len(serialDigests))
	}
	for i := range serialDigests {
		if serialDigests[i] != parallelDigests[i] {
			t.Fatalf("delivery digest %d diverges across worker counts: %016x vs %016x",
				i, serialDigests[i].Digest, parallelDigests[i].Digest)
		}
	}
	if s.Messages == 0 {
		t.Fatal("the burst produced no measured messages")
	}

	// The trace header carries the geo topology, the WAN-cut partition
	// and the burst; replaying must rebuild all three and reproduce the
	// delivery digests exactly.
	replays, err := ReplayTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(replays) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(replays))
	}
	for _, r := range replays {
		if !r.Match {
			t.Fatalf("replay of point %d rep %d diverged: recorded %016x, replayed %016x",
				r.Point, r.Rep, r.Recorded, r.Replayed)
		}
	}
}

// TestClusterOnTopology drives the interactive facade on a non-default
// graph: a ring cluster orders and delivers everywhere, and a geo
// cluster survives a WAN cut of one site.
func TestClusterOnTopology(t *testing.T) {
	delivered := make(map[int]int)
	c := NewCluster(ClusterConfig{
		Algorithm: FD,
		N:         8,
		Topology:  Ring(8),
		OnDeliver: func(d Delivery) { delivered[d.Process]++ },
	})
	for i := 0; i < 10; i++ {
		c.BroadcastAt(i%8, time.Duration(i)*11*time.Millisecond, i)
	}
	c.Run(5 * time.Second)
	for p := 0; p < 8; p++ {
		if delivered[p] != 10 {
			t.Fatalf("ring process %d delivered %d/10 messages", p, delivered[p])
		}
	}
}
