// Command figures regenerates the data behind every figure of the paper's
// evaluation (§7): latency-vs-throughput curves for the normal-steady and
// crash-steady scenarios (Figs. 4, 5), latency versus the failure-detector
// QoS metrics TMR and TM in the suspicion-steady scenario (Figs. 6, 7),
// and the crash-transient latency overhead (Fig. 8) — plus the ablations
// discussed in §7/§8 (coordinator renumbering, the non-uniform sequencer
// variant, the λ parameter) and a Fig. 1 message-pattern equivalence
// check.
//
// Output is TSV with commented headers, one block per figure panel,
// suitable for gnuplot or any plotting tool:
//
//	figures -fig 4            # one figure
//	figures -fig all -quick   # everything, reduced resolution
//
// Unstable points (messages left undelivered, the regime where the paper
// omits the GM curve) print "unstable" in place of a latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate: 1, 4, 5, 6, 7, 8, ablations or all")
	quickFlag   = flag.Bool("quick", false, "reduced sweeps and durations (~20x faster)")
	seedFlag    = flag.Uint64("seed", 1, "base random seed")
	repsFlag    = flag.Int("reps", 0, "replications per point (0 = scenario default)")
	workersFlag = flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS, 1 = serial)")
	progFlag    = flag.Bool("progress", false, "report replication progress on stderr")
)

// runner fans every figure's (point, replication) grid out over a worker
// pool; results are bit-identical at any worker count.
var runner *repro.Runner

func main() {
	flag.Parse()
	runner = &repro.Runner{Workers: *workersFlag}
	if *progFlag {
		// Progress may fire concurrently and out of order from worker
		// goroutines: serialise and drop regressions so a stale count
		// never prints over the final one.
		var mu sync.Mutex
		best := 0
		runner.Progress = func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done < best {
				return
			}
			best = done
			fmt.Fprintf(os.Stderr, "\r%d/%d replications", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
				best = 0 // next batch counts from zero again
			}
		}
	}
	switch *figFlag {
	case "1":
		fig1()
	case "4":
		fig4()
	case "5":
		fig5()
	case "6":
		fig6()
	case "7":
		fig7()
	case "8":
		fig8()
	case "ablations":
		ablations()
	case "all":
		fig1()
		fig4()
		fig5()
		fig6()
		fig7()
		fig8()
		ablations()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

// throughputs returns the x-axis sweep of the latency-vs-throughput
// figures.
func throughputs() []float64 {
	if *quickFlag {
		return []float64{10, 100, 300, 500, 650}
	}
	return []float64{10, 50, 100, 200, 300, 400, 500, 600, 650, 700}
}

// steadyCfg builds a Config with durations scaled to gather a useful
// number of messages at throughput T.
func steadyCfg(alg repro.Algorithm, n int, thr float64) repro.Config {
	target := 600.0 // messages per replication
	reps := 3
	if *quickFlag {
		target = 150
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	measure := time.Duration(target / thr * float64(time.Second))
	if measure < 3*time.Second {
		measure = 3 * time.Second
	}
	if measure > 120*time.Second {
		measure = 120 * time.Second
	}
	return repro.Config{
		Algorithm:    alg,
		N:            n,
		Throughput:   thr,
		Seed:         *seedFlag,
		Warmup:       time.Second,
		Measure:      measure,
		Drain:        20 * time.Second,
		Replications: reps,
	}
}

// cell formats one latency ± CI pair, or "unstable".
func cell(res repro.Result) string {
	if !res.Stable {
		return "unstable\tunstable"
	}
	return fmt.Sprintf("%.2f\t%.2f", res.Latency.Mean, res.Latency.CI95)
}

func fig1() {
	fmt.Println("# Figure 1 check: identical failure-free message pattern (FD vs GM)")
	fmt.Println("# n\tthroughput(1/s)\tFD_wire_msgs\tGM_wire_msgs\tFD_lat(ms)\tGM_lat(ms)")
	for _, n := range []int{3, 7} {
		for _, thr := range []float64{10, 300} {
			counts := make(map[repro.Algorithm]uint64)
			lats := make(map[repro.Algorithm]float64)
			for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
				cfg := steadyCfg(alg, n, thr)
				cfg.Measure = 3 * time.Second
				cfg.Replications = 1
				res := runner.Steady(cfg)
				lats[alg] = res.PerMessage.Mean
				// Wire counts come from a dedicated cluster run with the
				// same arrivals.
				var wires uint64
				func() {
					c := repro.NewCluster(repro.ClusterConfig{Algorithm: alg, N: n, Seed: *seedFlag})
					for i := 0; i < 20; i++ {
						c.BroadcastAt(i%n, time.Duration(i)*7*time.Millisecond, i)
					}
					c.Run(2 * time.Second)
					wires = c.Stats().WireSlots
				}()
				counts[alg] = wires
			}
			fmt.Printf("%d\t%.0f\t%d\t%d\t%.4f\t%.4f\n",
				n, thr, counts[repro.FD], counts[repro.GM], lats[repro.FD], lats[repro.GM])
		}
	}
	fmt.Println()
}

func fig4() {
	for _, n := range []int{3, 7} {
		fmt.Printf("# Figure 4: latency vs throughput, normal-steady, n=%d\n", n)
		fmt.Println("# throughput(1/s)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		thrs := throughputs()
		var cfgs []repro.Config
		for _, thr := range thrs {
			cfgs = append(cfgs, repro.Sweep{
				Base:       steadyCfg(repro.FD, n, thr),
				Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			}.Points()...)
		}
		res := runner.SteadyAll(cfgs)
		for i, thr := range thrs {
			fmt.Printf("%.0f\t%s\t%s\n", thr, cell(res[2*i]), cell(res[2*i+1]))
		}
		fmt.Println()
	}
}

func fig5() {
	panels := []struct {
		n       int
		crashes []int
	}{
		{3, []int{0, 1}},
		{7, []int{0, 1, 2, 3}},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 5: latency vs throughput, crash-steady, n=%d\n", panel.n)
		header := "# throughput(1/s)"
		for _, c := range panel.crashes {
			header += fmt.Sprintf("\tFD_%dcr\tci\tGM_%dcr\tci", c, c)
		}
		fmt.Println(header)
		thrs := throughputs()
		// One crash-set per curve: crash the highest PIDs — non-coordinator
		// processes, matching the paper's Fig. 5 presentation.
		sets := make([][]repro.ProcessID, len(panel.crashes))
		for i, crashes := range panel.crashes {
			for k := 0; k < crashes; k++ {
				sets[i] = append(sets[i], pid(panel.n-1-k))
			}
		}
		// Measure durations scale with throughput, so the grid is one
		// Algorithm × CrashSet sweep per throughput, batched into a single
		// pool run.
		var cfgs []repro.Config
		for _, thr := range thrs {
			cfgs = append(cfgs, repro.Sweep{
				Base:       steadyCfg(repro.FD, panel.n, thr),
				Algorithms: []repro.Algorithm{repro.FD, repro.GM},
				CrashSets:  sets,
			}.Points()...)
		}
		res := runner.SteadyAll(cfgs)
		// Each throughput's block comes back in canonical sweep order:
		// all FD crash-sets, then all GM crash-sets.
		block := 2 * len(sets)
		for ti, thr := range thrs {
			row := fmt.Sprintf("%.0f", thr)
			for ci := range sets {
				row += "\t" + cell(res[ti*block+ci]) + "\t" + cell(res[ti*block+len(sets)+ci])
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}

func fig6() {
	tmrs := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000, 1000000}
	if *quickFlag {
		tmrs = []float64{10, 100, 1000, 10000, 1000000}
	}
	panels := []struct {
		n   int
		thr float64
	}{
		{3, 10}, {7, 10}, {3, 300}, {7, 300},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 6: latency vs TMR, suspicion-steady, TM=0, n=%d, throughput=%.0f/s\n",
			panel.n, panel.thr)
		fmt.Println("# TMR(ms)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		var qos []repro.QoS
		for _, tmr := range tmrs {
			qos = append(qos, repro.Detectors(0, tmr, 0))
		}
		res := runner.Sweep(repro.Sweep{
			Base:       steadyCfg(repro.FD, panel.n, panel.thr),
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			QoS:        qos,
		})
		for i, tmr := range tmrs {
			fmt.Printf("%.0f\t%s\t%s\n", tmr, cell(res[i]), cell(res[len(tmrs)+i]))
		}
		fmt.Println()
	}
}

func fig7() {
	tms := []float64{1, 3, 10, 30, 100, 300, 1000}
	if *quickFlag {
		tms = []float64{1, 10, 100, 1000}
	}
	panels := []struct {
		n   int
		thr float64
		tmr float64
	}{
		{3, 10, 1000}, {7, 10, 10000}, {3, 300, 10000}, {7, 300, 100000},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 7: latency vs TM, suspicion-steady, n=%d, throughput=%.0f/s, TMR=%.0fms\n",
			panel.n, panel.thr, panel.tmr)
		fmt.Println("# TM(ms)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		var qos []repro.QoS
		for _, tm := range tms {
			qos = append(qos, repro.Detectors(0, panel.tmr, tm))
		}
		res := runner.Sweep(repro.Sweep{
			Base:       steadyCfg(repro.FD, panel.n, panel.thr),
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			QoS:        qos,
		})
		for i, tm := range tms {
			fmt.Printf("%.0f\t%s\t%s\n", tm, cell(res[i]), cell(res[len(tms)+i]))
		}
		fmt.Println()
	}
}

func fig8() {
	tds := []float64{0, 10, 100}
	thrs := throughputs()
	reps := 10
	if *quickFlag {
		reps = 5
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	for _, n := range []int{3, 7} {
		fmt.Printf("# Figure 8: latency overhead (L - TD) vs throughput, crash-transient,\n")
		fmt.Printf("# crash of the coordinator/sequencer p0 at the broadcast instant, n=%d\n", n)
		header := "# throughput(1/s)"
		for _, td := range tds {
			header += fmt.Sprintf("\tFD_TD%.0f\tci\tGM_TD%.0f\tci", td, td)
		}
		fmt.Println(header)
		var cfgs []repro.TransientConfig
		for _, thr := range thrs {
			for _, td := range tds {
				for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
					cfgs = append(cfgs, repro.TransientConfig{
						Config: repro.Config{
							Algorithm:    alg,
							N:            n,
							Throughput:   thr,
							QoS:          repro.Detectors(td, 0, 0),
							Seed:         *seedFlag,
							Warmup:       time.Second,
							Drain:        20 * time.Second,
							Replications: reps,
						},
						Crash: 0,
					})
				}
			}
		}
		var results []repro.TransientResult
		if *quickFlag {
			// Quick mode measures the single pair (p0, p1): batch the
			// whole panel's grid through the pool.
			for i := range cfgs {
				cfgs[i].Sender = 1
			}
			results = runner.TransientAll(cfgs)
		} else {
			// Full mode worst-cases each point over senders; each call
			// already fans its sender x replication grid out.
			for _, cfg := range cfgs {
				results = append(results, runner.WorstCaseTransient(cfg, false))
			}
		}
		i := 0
		for _, thr := range thrs {
			row := fmt.Sprintf("%.0f", thr)
			for range tds {
				for range []repro.Algorithm{repro.FD, repro.GM} {
					res := results[i]
					i++
					if res.Overhead.N == 0 {
						row += "\tlost\tlost"
					} else {
						row += fmt.Sprintf("\t%.2f\t%.2f", res.Overhead.Mean, res.Overhead.CI95)
					}
				}
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}

func ablations() {
	// Ablation A: the §7 coordinator renumbering optimisation,
	// crash-steady with the round-1 coordinator long dead.
	fmt.Println("# Ablation A: FD coordinator renumbering, crash-steady with p0 crashed, n=3")
	fmt.Println("# throughput(1/s)\trenumber_on(ms)\tci\trenumber_off(ms)\tci")
	thrsA := []float64{10, 100, 300, 500}
	var cfgsA []repro.Config
	for _, thr := range thrsA {
		onCfg := steadyCfg(repro.FD, 3, thr)
		onCfg.Crashed = []repro.ProcessID{0}
		offCfg := steadyCfg(repro.FD, 3, thr)
		offCfg.Crashed = []repro.ProcessID{0}
		offCfg.DisableRenumber = true
		cfgsA = append(cfgsA, onCfg, offCfg)
	}
	resA := runner.SteadyAll(cfgsA)
	for i, thr := range thrsA {
		fmt.Printf("%.0f\t%s\t%s\n", thr, cell(resA[2*i]), cell(resA[2*i+1]))
	}
	fmt.Println()

	// Ablation B: the §8 non-uniform sequencer variant — an Algorithms
	// sweep per throughput (measure durations depend on the throughput).
	fmt.Println("# Ablation B: GM uniform vs non-uniform (§8), normal-steady, n=3")
	fmt.Println("# throughput(1/s)\tuniform(ms)\tci\tnonuniform(ms)\tci")
	thrsB := []float64{10, 100, 300, 500, 700}
	var cfgsB []repro.Config
	for _, thr := range thrsB {
		cfgsB = append(cfgsB, repro.Sweep{
			Base:       steadyCfg(repro.GM, 3, thr),
			Algorithms: []repro.Algorithm{repro.GM, repro.GMNonUniform},
		}.Points()...)
	}
	resB := runner.SteadyAll(cfgsB)
	for i, thr := range thrsB {
		fmt.Printf("%.0f\t%s\t%s\n", thr, cell(resB[2*i]), cell(resB[2*i+1]))
	}
	fmt.Println()

	// Ablation C: the λ parameter of the network model (§6.1) — a Lambdas
	// sweep. The DSN paper presents λ=1; the extended TR sweeps it.
	fmt.Println("# Ablation C: lambda sweep, normal-steady, n=3, throughput=100/s")
	fmt.Println("# lambda\tFD_lat(ms)\tci")
	lambdas := []float64{0.5, 1, 2, 4}
	resC := runner.Sweep(repro.Sweep{
		Base:    steadyCfg(repro.FD, 3, 100),
		Lambdas: lambdas,
	})
	for i, lambda := range lambdas {
		fmt.Printf("%.1f\t%s\n", lambda, cell(resC[i]))
	}
	fmt.Println()
}

// pid converts an int to the facade's process identifier type used in
// Config.Crashed.
func pid(p int) repro.ProcessID { return repro.ProcessID(p) }
