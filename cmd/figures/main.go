// Command figures regenerates the data behind every figure of the paper's
// evaluation (§7): latency-vs-throughput curves for the normal-steady and
// crash-steady scenarios (Figs. 4, 5), latency versus the failure-detector
// QoS metrics TMR and TM in the suspicion-steady scenario (Figs. 6, 7),
// and the crash-transient latency overhead (Fig. 8) — plus the ablations
// discussed in §7/§8 (coordinator renumbering, the non-uniform sequencer
// variant, the λ parameter) and a Fig. 1 message-pattern equivalence
// check.
//
// Output is TSV with commented headers, one block per figure panel,
// suitable for gnuplot or any plotting tool:
//
//	figures -fig 4            # one figure
//	figures -fig all -quick   # everything, reduced resolution
//
// Unstable points (messages left undelivered, the regime where the paper
// omits the GM curve) print "unstable" in place of a latency.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate: 1, 4, 5, 6, 7, 8, dist, hb, partition, churn, overload, burst, nscale, groups, smoke, ablations or all")
	quickFlag   = flag.Bool("quick", false, "reduced sweeps and durations (~20x faster)")
	seedFlag    = flag.Uint64("seed", 1, "base random seed")
	repsFlag    = flag.Int("reps", 0, "replications per point (0 = scenario default)")
	workersFlag = flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS, 1 = serial)")
	progFlag    = flag.Bool("progress", false, "report replication progress on stderr")
	traceFlag   = flag.String("trace", "", "write the smoke grid's replayable trace to this file (fig smoke)")
	replayFlag  = flag.String("replay", "", "replay a trace file, verify delivery digests and exit")
	// -parallel flips every simulation into the engine's parallel
	// execution mode (conflict domains advanced concurrently inside safe
	// windows); all output, digests included, is bit-identical to serial.
	parallelFlag   = flag.Bool("parallel", false, "execute each simulation's conflict domains concurrently (bit-identical output)")
	simWorkersFlag = flag.Int("simworkers", 0, "worker goroutines per parallel simulation (0 = one per CPU)")
)

// runner fans every figure's (point, replication) grid out over a worker
// pool; results are bit-identical at any worker count.
var runner *repro.Runner

// par stamps the -parallel/-simworkers flags onto a config. The
// steady/sweepRun/transient wrappers below route every figure through
// it, so the one flag flips the whole binary; the flags never change
// output, only how each replication spends its wall-clock time.
func par(cfg repro.Config) repro.Config {
	cfg.ParallelSim = *parallelFlag
	cfg.SimWorkers = *simWorkersFlag
	return cfg
}

func steady(cfg repro.Config) repro.Result { return runner.Steady(par(cfg)) }

func steadyAll(cfgs []repro.Config) []repro.Result {
	for i := range cfgs {
		cfgs[i] = par(cfgs[i])
	}
	return runner.SteadyAll(cfgs)
}

func sweepRun(s repro.Sweep) []repro.Result {
	s.Base = par(s.Base)
	return runner.Sweep(s)
}

func transientAll(cfgs []repro.TransientConfig) []repro.TransientResult {
	for i := range cfgs {
		cfgs[i].Config = par(cfgs[i].Config)
	}
	return runner.TransientAll(cfgs)
}

func worstCaseTransient(cfg repro.TransientConfig, sweepCrash bool) repro.TransientResult {
	cfg.Config = par(cfg.Config)
	return runner.WorstCaseTransient(cfg, sweepCrash)
}

func main() {
	flag.Parse()
	runner = &repro.Runner{Workers: *workersFlag}
	if *replayFlag != "" {
		replayTrace(*replayFlag)
		return
	}
	if *progFlag {
		// Progress may fire concurrently and out of order from worker
		// goroutines: serialise and drop regressions so a stale count
		// never prints over the final one.
		var mu sync.Mutex
		best := 0
		runner.Progress = func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done < best {
				return
			}
			best = done
			fmt.Fprintf(os.Stderr, "\r%d/%d replications", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
				best = 0 // next batch counts from zero again
			}
		}
	}
	switch *figFlag {
	case "1":
		fig1()
	case "4":
		fig4()
	case "5":
		fig5()
	case "6":
		fig6()
	case "7":
		fig7()
	case "8":
		fig8()
	case "dist":
		figDist()
	case "hb":
		figHeartbeat()
	case "partition":
		figPartition()
	case "churn":
		figChurn()
	case "overload":
		figOverload()
	case "burst":
		figBurst()
	case "nscale":
		figNScale()
	case "groups":
		figGroups()
	case "smoke":
		figSmoke()
	case "ablations":
		ablations()
	case "all":
		fig1()
		fig4()
		fig5()
		fig6()
		fig7()
		fig8()
		figDist()
		figHeartbeat()
		figPartition()
		figChurn()
		figOverload()
		figBurst()
		ablations()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

// throughputs returns the x-axis sweep of the latency-vs-throughput
// figures.
func throughputs() []float64 {
	if *quickFlag {
		return []float64{10, 100, 300, 500, 650}
	}
	return []float64{10, 50, 100, 200, 300, 400, 500, 600, 650, 700}
}

// steadyCfg builds a Config with durations scaled to gather a useful
// number of messages at throughput T.
func steadyCfg(alg repro.Algorithm, n int, thr float64) repro.Config {
	target := 600.0 // messages per replication
	reps := 3
	if *quickFlag {
		target = 150
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	measure := time.Duration(target / thr * float64(time.Second))
	if measure < 3*time.Second {
		measure = 3 * time.Second
	}
	if measure > 120*time.Second {
		measure = 120 * time.Second
	}
	return repro.Config{
		Algorithm:    alg,
		N:            n,
		Throughput:   thr,
		Seed:         *seedFlag,
		Warmup:       time.Second,
		Measure:      measure,
		Drain:        20 * time.Second,
		Replications: reps,
	}
}

// cell formats one latency ± CI pair, or "unstable".
func cell(res repro.Result) string {
	if !res.Stable {
		return "unstable\tunstable"
	}
	return fmt.Sprintf("%.2f\t%.2f", res.Latency.Mean, res.Latency.CI95)
}

func fig1() {
	fmt.Println("# Figure 1 check: identical failure-free message pattern (FD vs GM)")
	fmt.Println("# n\tthroughput(1/s)\tFD_wire_msgs\tGM_wire_msgs\tFD_lat(ms)\tGM_lat(ms)")
	for _, n := range []int{3, 7} {
		for _, thr := range []float64{10, 300} {
			counts := make(map[repro.Algorithm]uint64)
			lats := make(map[repro.Algorithm]float64)
			for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
				cfg := steadyCfg(alg, n, thr)
				cfg.Measure = 3 * time.Second
				cfg.Replications = 1
				res := steady(cfg)
				lats[alg] = res.PerMessage.Mean
				// Wire counts come from a dedicated cluster run with the
				// same arrivals.
				var wires uint64
				func() {
					c := repro.NewCluster(repro.ClusterConfig{Algorithm: alg, N: n, Seed: *seedFlag})
					for i := 0; i < 20; i++ {
						c.BroadcastAt(i%n, time.Duration(i)*7*time.Millisecond, i)
					}
					c.Run(2 * time.Second)
					wires = c.Stats().WireSlots
				}()
				counts[alg] = wires
			}
			fmt.Printf("%d\t%.0f\t%d\t%d\t%.4f\t%.4f\n",
				n, thr, counts[repro.FD], counts[repro.GM], lats[repro.FD], lats[repro.GM])
		}
	}
	fmt.Println()
}

func fig4() {
	for _, n := range []int{3, 7} {
		fmt.Printf("# Figure 4: latency vs throughput, normal-steady, n=%d\n", n)
		fmt.Println("# throughput(1/s)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		thrs := throughputs()
		var cfgs []repro.Config
		for _, thr := range thrs {
			cfgs = append(cfgs, repro.Sweep{
				Base:       steadyCfg(repro.FD, n, thr),
				Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			}.Points()...)
		}
		res := steadyAll(cfgs)
		for i, thr := range thrs {
			fmt.Printf("%.0f\t%s\t%s\n", thr, cell(res[2*i]), cell(res[2*i+1]))
		}
		fmt.Println()
	}
}

func fig5() {
	panels := []struct {
		n       int
		crashes []int
	}{
		{3, []int{0, 1}},
		{7, []int{0, 1, 2, 3}},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 5: latency vs throughput, crash-steady, n=%d\n", panel.n)
		header := "# throughput(1/s)"
		for _, c := range panel.crashes {
			header += fmt.Sprintf("\tFD_%dcr\tci\tGM_%dcr\tci", c, c)
		}
		fmt.Println(header)
		thrs := throughputs()
		// One crash-set per curve: crash the highest PIDs — non-coordinator
		// processes, matching the paper's Fig. 5 presentation.
		sets := make([][]repro.ProcessID, len(panel.crashes))
		for i, crashes := range panel.crashes {
			for k := 0; k < crashes; k++ {
				sets[i] = append(sets[i], pid(panel.n-1-k))
			}
		}
		// Measure durations scale with throughput, so the grid is one
		// Algorithm × CrashSet sweep per throughput, batched into a single
		// pool run.
		var cfgs []repro.Config
		for _, thr := range thrs {
			cfgs = append(cfgs, repro.Sweep{
				Base:       steadyCfg(repro.FD, panel.n, thr),
				Algorithms: []repro.Algorithm{repro.FD, repro.GM},
				CrashSets:  sets,
			}.Points()...)
		}
		res := steadyAll(cfgs)
		// Each throughput's block comes back in canonical sweep order:
		// all FD crash-sets, then all GM crash-sets.
		block := 2 * len(sets)
		for ti, thr := range thrs {
			row := fmt.Sprintf("%.0f", thr)
			for ci := range sets {
				row += "\t" + cell(res[ti*block+ci]) + "\t" + cell(res[ti*block+len(sets)+ci])
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}

func fig6() {
	tmrs := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000, 1000000}
	if *quickFlag {
		tmrs = []float64{10, 100, 1000, 10000, 1000000}
	}
	panels := []struct {
		n   int
		thr float64
	}{
		{3, 10}, {7, 10}, {3, 300}, {7, 300},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 6: latency vs TMR, suspicion-steady, TM=0, n=%d, throughput=%.0f/s\n",
			panel.n, panel.thr)
		fmt.Println("# TMR(ms)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		var qos []repro.QoS
		for _, tmr := range tmrs {
			qos = append(qos, repro.Detectors(0, tmr, 0))
		}
		res := sweepRun(repro.Sweep{
			Base:       steadyCfg(repro.FD, panel.n, panel.thr),
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			QoS:        qos,
		})
		for i, tmr := range tmrs {
			fmt.Printf("%.0f\t%s\t%s\n", tmr, cell(res[i]), cell(res[len(tmrs)+i]))
		}
		fmt.Println()
	}
}

func fig7() {
	tms := []float64{1, 3, 10, 30, 100, 300, 1000}
	if *quickFlag {
		tms = []float64{1, 10, 100, 1000}
	}
	panels := []struct {
		n   int
		thr float64
		tmr float64
	}{
		{3, 10, 1000}, {7, 10, 10000}, {3, 300, 10000}, {7, 300, 100000},
	}
	for _, panel := range panels {
		fmt.Printf("# Figure 7: latency vs TM, suspicion-steady, n=%d, throughput=%.0f/s, TMR=%.0fms\n",
			panel.n, panel.thr, panel.tmr)
		fmt.Println("# TM(ms)\tFD_lat(ms)\tFD_ci\tGM_lat(ms)\tGM_ci")
		var qos []repro.QoS
		for _, tm := range tms {
			qos = append(qos, repro.Detectors(0, panel.tmr, tm))
		}
		res := sweepRun(repro.Sweep{
			Base:       steadyCfg(repro.FD, panel.n, panel.thr),
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			QoS:        qos,
		})
		for i, tm := range tms {
			fmt.Printf("%.0f\t%s\t%s\n", tm, cell(res[i]), cell(res[len(tms)+i]))
		}
		fmt.Println()
	}
}

func fig8() {
	tds := []float64{0, 10, 100}
	thrs := throughputs()
	reps := 10
	if *quickFlag {
		reps = 5
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	for _, n := range []int{3, 7} {
		fmt.Printf("# Figure 8: latency overhead (L - TD) vs throughput, crash-transient,\n")
		fmt.Printf("# crash of the coordinator/sequencer p0 at the broadcast instant, n=%d\n", n)
		header := "# throughput(1/s)"
		for _, td := range tds {
			header += fmt.Sprintf("\tFD_TD%.0f\tci\tGM_TD%.0f\tci", td, td)
		}
		fmt.Println(header)
		var cfgs []repro.TransientConfig
		for _, thr := range thrs {
			for _, td := range tds {
				for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
					cfgs = append(cfgs, repro.TransientConfig{
						Config: repro.Config{
							Algorithm:    alg,
							N:            n,
							Throughput:   thr,
							QoS:          repro.Detectors(td, 0, 0),
							Seed:         *seedFlag,
							Warmup:       time.Second,
							Drain:        20 * time.Second,
							Replications: reps,
						},
						Crash: 0,
					})
				}
			}
		}
		var results []repro.TransientResult
		if *quickFlag {
			// Quick mode measures the single pair (p0, p1): batch the
			// whole panel's grid through the pool.
			for i := range cfgs {
				cfgs[i].Sender = 1
			}
			results = transientAll(cfgs)
		} else {
			// Full mode worst-cases each point over senders; each call
			// already fans its sender x replication grid out.
			for _, cfg := range cfgs {
				results = append(results, worstCaseTransient(cfg, false))
			}
		}
		i := 0
		for _, thr := range thrs {
			row := fmt.Sprintf("%.0f", thr)
			for range tds {
				for range []repro.Algorithm{repro.FD, repro.GM} {
					res := results[i]
					i++
					if res.Overhead.N == 0 {
						row += "\tlost\tlost"
					} else {
						row += fmt.Sprintf("\t%.2f\t%.2f", res.Overhead.Mean, res.Overhead.CI95)
					}
				}
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
}

func ablations() {
	// Ablation A: the §7 coordinator renumbering optimisation,
	// crash-steady with the round-1 coordinator long dead.
	fmt.Println("# Ablation A: FD coordinator renumbering, crash-steady with p0 crashed, n=3")
	fmt.Println("# throughput(1/s)\trenumber_on(ms)\tci\trenumber_off(ms)\tci")
	thrsA := []float64{10, 100, 300, 500}
	var cfgsA []repro.Config
	for _, thr := range thrsA {
		onCfg := steadyCfg(repro.FD, 3, thr)
		onCfg.Crashed = []repro.ProcessID{0}
		offCfg := steadyCfg(repro.FD, 3, thr)
		offCfg.Crashed = []repro.ProcessID{0}
		offCfg.DisableRenumber = true
		cfgsA = append(cfgsA, onCfg, offCfg)
	}
	resA := steadyAll(cfgsA)
	for i, thr := range thrsA {
		fmt.Printf("%.0f\t%s\t%s\n", thr, cell(resA[2*i]), cell(resA[2*i+1]))
	}
	fmt.Println()

	// Ablation B: the §8 non-uniform sequencer variant — an Algorithms
	// sweep per throughput (measure durations depend on the throughput).
	fmt.Println("# Ablation B: GM uniform vs non-uniform (§8), normal-steady, n=3")
	fmt.Println("# throughput(1/s)\tuniform(ms)\tci\tnonuniform(ms)\tci")
	thrsB := []float64{10, 100, 300, 500, 700}
	var cfgsB []repro.Config
	for _, thr := range thrsB {
		cfgsB = append(cfgsB, repro.Sweep{
			Base:       steadyCfg(repro.GM, 3, thr),
			Algorithms: []repro.Algorithm{repro.GM, repro.GMNonUniform},
		}.Points()...)
	}
	resB := steadyAll(cfgsB)
	for i, thr := range thrsB {
		fmt.Printf("%.0f\t%s\t%s\n", thr, cell(resB[2*i]), cell(resB[2*i+1]))
	}
	fmt.Println()

	// Ablation C: the λ parameter of the network model (§6.1) — a Lambdas
	// sweep. The DSN paper presents λ=1; the extended TR sweeps it.
	fmt.Println("# Ablation C: lambda sweep, normal-steady, n=3, throughput=100/s")
	fmt.Println("# lambda\tFD_lat(ms)\tci")
	lambdas := []float64{0.5, 1, 2, 4}
	resC := sweepRun(repro.Sweep{
		Base:    steadyCfg(repro.FD, 3, 100),
		Lambdas: lambdas,
	})
	for i, lambda := range lambdas {
		fmt.Printf("%.1f\t%s\n", lambda, cell(resC[i]))
	}
	fmt.Println()
}

// qcell formats one point's P50/P90/P99 columns, or "unstable".
func qcell(q repro.Quantiles, stable bool) string {
	if !stable || q.N == 0 {
		return "unstable\tunstable\tunstable"
	}
	return fmt.Sprintf("%.2f\t%.2f\t%.2f", q.P50, q.P90, q.P99)
}

// figDist emits the distribution view the mean-with-CI figures cannot
// show. Block D1 revisits the suspicion-steady scenario (Fig. 6) as
// quantiles with the early/late population split: most messages deliver
// at failure-free latency while wrong suspicions push a second
// population far out, and only the split makes that visible. Block D2
// revisits the crash-transient scenario (Fig. 8) as probe-latency
// quantiles over replications.
func figDist() {
	// D1: suspicion-steady quantiles. The first QoS entry is the
	// no-suspicion baseline; the early/late threshold is twice its median.
	tmrs := []float64{30, 100, 300, 1000, 3000, 10000}
	if *quickFlag {
		tmrs = []float64{100, 1000, 10000}
	}
	const n, thr = 3, 100.0
	fmt.Printf("# Figure D1: latency quantiles vs TMR, suspicion-steady, TM=0, n=%d, throughput=%.0f/s\n", n, thr)
	fmt.Println("# late% = share of messages above 2x the no-suspicion median latency")
	fmt.Println("# TMR(ms)\tFD_P50\tFD_P90\tFD_P99\tFD_late%\tGM_P50\tGM_P90\tGM_P99\tGM_late%")
	qos := []repro.QoS{{}} // baseline: no suspicions
	for _, tmr := range tmrs {
		qos = append(qos, repro.Detectors(0, tmr, 0))
	}
	res := sweepRun(repro.Sweep{
		Base:       steadyCfg(repro.FD, n, thr),
		Algorithms: []repro.Algorithm{repro.FD, repro.GM},
		QoS:        qos,
	})
	lateCell := func(r repro.Result, threshold float64) string {
		if !r.Stable || r.Quantiles.N == 0 {
			return "unstable"
		}
		_, late := r.Dist.SplitAt(threshold)
		return fmt.Sprintf("%.1f", 100*float64(late.N())/float64(r.Quantiles.N))
	}
	fdThreshold := 2 * res[0].Quantiles.P50
	gmThreshold := 2 * res[len(qos)].Quantiles.P50
	for i, tmr := range tmrs {
		fd, gm := res[1+i], res[len(qos)+1+i]
		fmt.Printf("%.0f\t%s\t%s\t%s\t%s\n",
			tmr,
			qcell(fd.Quantiles, fd.Stable), lateCell(fd, fdThreshold),
			qcell(gm.Quantiles, gm.Stable), lateCell(gm, gmThreshold))
	}
	fmt.Println()

	// D2: crash-transient probe-latency quantiles over replications.
	thrs := []float64{10, 100, 300, 500}
	reps := 10
	if *quickFlag {
		reps = 5
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	fmt.Printf("# Figure D2: crash-transient probe latency quantiles (Fig. 8 revisited),\n")
	fmt.Printf("# crash of coordinator/sequencer p0, sender p1, n=3, TD=10ms, %d replications\n", reps)
	fmt.Println("# throughput(1/s)\tFD_P50\tFD_P90\tFD_P99\tGM_P50\tGM_P90\tGM_P99")
	var cfgs []repro.TransientConfig
	for _, thr := range thrs {
		for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
			cfgs = append(cfgs, repro.TransientConfig{
				Config: repro.Config{
					Algorithm:    alg,
					N:            3,
					Throughput:   thr,
					QoS:          repro.Detectors(10, 0, 0),
					Seed:         *seedFlag,
					Warmup:       time.Second,
					Drain:        20 * time.Second,
					Replications: reps,
				},
				Crash:  0,
				Sender: 1,
			})
		}
	}
	tres := transientAll(cfgs)
	for i, thr := range thrs {
		fmt.Printf("%.0f\t%s\t%s\n", thr,
			qcell(tres[2*i].Quantiles, tres[2*i].Quantiles.N > 0),
			qcell(tres[2*i+1].Quantiles, tres[2*i+1].Quantiles.N > 0))
	}
	fmt.Println()
}

// figHeartbeat drives the concrete heartbeat failure detector through
// the Sweep Detector axis: the same workload under the abstract QoS
// model and under real heartbeat traffic that contends for the wire.
func figHeartbeat() {
	detectors := []*repro.HeartbeatConfig{
		nil, // abstract QoS model, perfect detector
		repro.HeartbeatDetector(10, 30),
		repro.HeartbeatDetector(20, 60),
	}
	names := []string{"qos-model", "hb-10/30ms", "hb-20/60ms"}
	thrs := []float64{10, 100, 300}
	fmt.Println("# Figure H: concrete heartbeat FD vs abstract QoS model, normal-steady, FD algorithm, n=3")
	fmt.Println("# heartbeats share the contended wire, so detection cost appears as added latency")
	fmt.Println("# throughput(1/s)\tdetector\tmean(ms)\tci\tP50\tP90\tP99")
	var cfgs []repro.Config
	for _, thr := range thrs {
		cfgs = append(cfgs, repro.Sweep{
			Base:      steadyCfg(repro.FD, 3, thr),
			Detectors: detectors,
		}.Points()...)
	}
	res := steadyAll(cfgs)
	for ti, thr := range thrs {
		for di, name := range names {
			r := res[ti*len(detectors)+di]
			if !r.Stable {
				fmt.Printf("%.0f\t%s\tunstable\tunstable\tunstable\tunstable\tunstable\n", thr, name)
				continue
			}
			fmt.Printf("%.0f\t%s\t%.2f\t%.2f\t%s\n", thr, name, r.Latency.Mean, r.Latency.CI95,
				qcell(r.Quantiles, true))
		}
	}
	fmt.Println()
}

// figPartition drives both algorithms through a partition-and-heal
// FaultPlan: a majority/minority split opens mid-measurement and heals
// before it ends. The distributions separate the algorithms the way no
// failure-free figure can: the FD algorithm keeps serving the majority,
// catches the minority back up through decision-log catch-up after the
// heal, but loses the minority's own partition-era messages outright (no
// retransmission in its reliable broadcast), while the GM algorithm
// excludes the minority, welcomes it back through rejoin + state
// transfer, and recovers every message — at the price of a heavy late
// tail in the latency distribution.
func figPartition() {
	const n = 5
	warmup := time.Second
	plan := repro.NewFaultPlan().
		Partition(warmup+1500*time.Millisecond, []repro.ProcessID{0, 1, 2}, []repro.ProcessID{3, 4}).
		Heal(warmup + 3*time.Second)
	planFigure([]string{
		fmt.Sprintf("# Figure P: partition-and-heal, n=%d, groups {0 1 2}|{3 4}, split at +1.5s, healed at +3s of a 5s measure", n),
		"# FD keeps the majority running and loses the minority's partition-era messages;",
		"# GM excludes and rejoins the minority (state transfer) and delivers them late.",
	}, n, plan, "part+heal")
}

// figChurn drives both algorithms through a crash-recover-crash schedule
// of the coordinator/sequencer p0 — the paper's worst-case process. The
// GM algorithm pays a sequencer failover, then a rejoin with full state
// transfer, then a second failover; the crash-stop FD algorithm treats
// the recovery as the end of an outage and resumes the process with its
// state intact, closing its gap through decision-log catch-up (short
// gaps also close through ordinary decision forwarding).
func figChurn() {
	const n = 3
	warmup := time.Second
	plan := repro.NewFaultPlan().
		Crash(warmup+time.Second, 0).
		Recover(warmup+2500*time.Millisecond, 0).
		Crash(warmup+4*time.Second, 0)
	planFigure([]string{
		"# Figure C: churn of the coordinator/sequencer (crash p0 at +1s, recover at +2.5s,",
		fmt.Sprintf("# crash again at +4s of a 5s measure), n=%d, TD=10ms", n),
		"# GM pays sequencer failover + rejoin/state transfer; crash-stop FD resumes p0 in place.",
	}, n, plan, "churn")
}

// figOverload crosses a FaultPlan with a LoadPlan: a majority/minority
// partition opens mid-measurement and a global rate burst lands while
// the network is still split ("overload while partitioned"). The grid
// runs both algorithms through all four plan combinations — neither,
// partition only, burst only, both — so each effect and their
// interaction is separable. The latency tail is where the algorithms
// part: the FD algorithm serves the majority through both stresses and
// sheds the rest, while the GM algorithm pays for completeness with a
// tail that the overload compounds (the rejoining minority's state
// transfer now competes with the burst's backlog).
func figOverload() {
	const n = 5
	warmup := time.Second
	plan := repro.NewFaultPlan().
		Partition(warmup+1500*time.Millisecond, []repro.ProcessID{0, 1, 2}, []repro.ProcessID{3, 4}).
		Heal(warmup + 3*time.Second)
	load := repro.NewLoadPlan().
		Burst(warmup+2*time.Second, 1500*time.Millisecond, repro.AllSenders, 4)
	thrs := []float64{10, 50, 100}
	if *quickFlag {
		thrs = []float64{10, 50}
	}
	reps := 3
	if *quickFlag {
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	fmt.Printf("# Figure O: overload while partitioned, n=%d, groups {0 1 2}|{3 4} split +1.5s..+3s,\n", n)
	fmt.Println("# 4x global burst +2s..+3.5s of a 5s measure, TD=10ms; all four plan combinations.")
	fmt.Println("# throughput(1/s)\talg\tfaults\tload\tmean(ms)\tci\tP50\tP90\tP99\tmax\tundelivered")
	var cfgs []repro.Config
	for _, thr := range thrs {
		cfgs = append(cfgs, repro.Sweep{
			Base: repro.Config{
				Algorithm:    repro.FD,
				N:            n,
				Throughput:   thr,
				QoS:          repro.Detectors(10, 0, 0),
				Seed:         *seedFlag,
				Warmup:       warmup,
				Measure:      5 * time.Second,
				Drain:        15 * time.Second,
				Replications: reps,
			},
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			Plans:      []*repro.FaultPlan{nil, plan},
			Loads:      []*repro.LoadPlan{nil, load},
		}.Points()...)
	}
	res := steadyAll(cfgs)
	for i, r := range res {
		faults, loadName := "none", "none"
		if r.Config.Plan != nil {
			faults = "partition"
		}
		if r.Config.Load != nil {
			loadName = "burst"
		}
		fmt.Printf("%.0f\t%v\t%s\t%s\t%s\t%s\t%.4f\t%d\n",
			r.Config.Throughput, r.Config.Algorithm, faults, loadName,
			cellAny(r), qcell(r.Quantiles, r.Quantiles.N > 0), r.Quantiles.Max, r.Undelivered)
		if i%8 == 7 {
			// Blank line between throughput blocks for gnuplot indexing.
			fmt.Println()
		}
	}
}

// figBurst measures recovery from a pure overload spike, no faults: a
// 10x global burst for 500ms mid-measurement. During the spike the
// offered load far exceeds the wire's capacity and a backlog builds;
// the figure reports how far the latency tail stretches (P99 and max —
// the max is reached by the last message to clear the backlog, so it
// reads as the recovery horizon) and whether everything was eventually
// delivered.
func figBurst() {
	const n = 3
	warmup := time.Second
	load := repro.NewLoadPlan().
		Burst(warmup+2*time.Second, 500*time.Millisecond, repro.AllSenders, 10)
	thrs := []float64{10, 50, 100, 200}
	if *quickFlag {
		thrs = []float64{10, 100}
	}
	reps := 3
	if *quickFlag {
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	fmt.Printf("# Figure B: recovery from a 10x burst (500ms spike at +2s of a 5s measure), n=%d\n", n)
	fmt.Println("# max is the latency of the last message to clear the backlog: the recovery horizon.")
	fmt.Println("# throughput(1/s)\talg\tload\tmean(ms)\tci\tP50\tP90\tP99\tmax\tundelivered")
	var cfgs []repro.Config
	for _, thr := range thrs {
		cfgs = append(cfgs, repro.Sweep{
			Base: repro.Config{
				Algorithm:    repro.FD,
				N:            n,
				Throughput:   thr,
				Seed:         *seedFlag,
				Warmup:       warmup,
				Measure:      5 * time.Second,
				Drain:        15 * time.Second,
				Replications: reps,
			},
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			Loads:      []*repro.LoadPlan{nil, load},
		}.Points()...)
	}
	res := steadyAll(cfgs)
	for i, r := range res {
		loadName := "steady"
		if r.Config.Load != nil {
			loadName = "burst-10x"
		}
		fmt.Printf("%.0f\t%v\t%s\t%s\t%s\t%.4f\t%d\n",
			r.Config.Throughput, r.Config.Algorithm, loadName,
			cellAny(r), qcell(r.Quantiles, r.Quantiles.N > 0), r.Quantiles.Max, r.Undelivered)
		if i%4 == 3 {
			fmt.Println()
		}
	}
}

// planFigure is the shared body of the plan-driven figures: both
// algorithms with and without the plan, across the throughput sweep,
// reporting mean/CI/quantiles plus the undelivered count.
func planFigure(header []string, n int, plan *repro.FaultPlan, label string) {
	warmup := time.Second
	thrs := []float64{10, 100, 300}
	if *quickFlag {
		thrs = []float64{10, 100}
	}
	reps := 3
	if *quickFlag {
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	for _, line := range header {
		fmt.Println(line)
	}
	fmt.Println("# throughput(1/s)\talg\tplan\tmean(ms)\tci\tP50\tP90\tP99\tundelivered")
	var cfgs []repro.Config
	for _, thr := range thrs {
		cfgs = append(cfgs, repro.Sweep{
			Base: repro.Config{
				Algorithm:    repro.FD,
				N:            n,
				Throughput:   thr,
				QoS:          repro.Detectors(10, 0, 0),
				Seed:         *seedFlag,
				Warmup:       warmup,
				Measure:      5 * time.Second,
				Drain:        15 * time.Second,
				Replications: reps,
			},
			Algorithms: []repro.Algorithm{repro.FD, repro.GM},
			Plans:      []*repro.FaultPlan{nil, plan},
		}.Points()...)
	}
	res := steadyAll(cfgs)
	for i, r := range res {
		name := "none"
		if r.Config.Plan != nil {
			name = label
		}
		fmt.Printf("%.0f\t%v\t%s\t%s\t%s\t%d\n",
			r.Config.Throughput, r.Config.Algorithm, name,
			cellAny(r), qcell(r.Quantiles, r.Quantiles.N > 0), r.Undelivered)
		if i%4 == 3 {
			// Blank line between throughput blocks for gnuplot indexing.
			fmt.Println()
		}
	}
}

// cellAny formats mean ± CI even for points with undelivered messages
// (the partition and churn figures report those honestly in their own
// column instead of suppressing the whole row).
func cellAny(res repro.Result) string {
	if res.Latency.N == 0 {
		return "lost\tlost"
	}
	return fmt.Sprintf("%.2f\t%.2f", res.Latency.Mean, res.Latency.CI95)
}

// figSmoke runs three fixed pinned grids — the abstract QoS model vs the
// concrete heartbeat detector, a plan-driven partition-and-heal pair,
// and a load-shaped burst-and-mute pair — with the trace observer
// attached, and prints each replication's delivery digest plus each
// point's summary. Everything is pinned (seed, durations, grids), so the
// output is byte-stable across machines and lives in
// golden/figures_smoke.tsv; CI regenerates it and fails on any diff,
// then replays the trace. The -trace flag selects the trace file
// (default: discard).
func figSmoke() {
	var w io.Writer = io.Discard
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	tr := repro.NewTrace(w)
	sweep := repro.Sweep{
		Base: repro.Config{
			Algorithm:    repro.FD,
			N:            3,
			Throughput:   50,
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
			Observers:    []repro.ObserverFactory{tr.Observer},
		},
		Detectors: []*repro.HeartbeatConfig{nil, repro.HeartbeatDetector(10, 30)},
	}
	res := sweepRun(sweep)
	fmt.Println("# Smoke grid: FD n=3 T=50/s seed=1, QoS model (point 0) vs heartbeat 10/30ms (point 1)")
	fmt.Println("# point\tmean(ms)\tP50\tP90\tP99\tmessages")
	for i, r := range res {
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\n", i,
			r.Latency.Mean, r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P99, r.Messages)
	}
	fmt.Println("# point\trep\tdelivery_digest")
	for _, d := range tr.Digests() {
		fmt.Printf("%d\t%d\t%016x\n", d.Point, d.Rep, d.Digest)
	}
	if err := tr.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
		os.Exit(1)
	}

	// Second pinned grid: one plan-driven point per algorithm — a
	// partition-and-heal mid-measure — exercising the FaultPlan path end
	// to end, trace record and replay included.
	plan := repro.NewFaultPlan().
		Partition(600*time.Millisecond, []repro.ProcessID{0, 1}, []repro.ProcessID{2}).
		Heal(900 * time.Millisecond)
	planSweep := repro.Sweep{
		Base: repro.Config{
			Algorithm:    repro.FD,
			N:            3,
			Throughput:   50,
			QoS:          repro.Detectors(10, 0, 0),
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
			Plan:         plan,
			Observers:    []repro.ObserverFactory{tr.Observer},
		},
		Algorithms: []repro.Algorithm{repro.FD, repro.GM},
	}
	planRes := sweepRun(planSweep)
	fmt.Println("# Plan grid: partition {0 1}|{2} at 600ms, heal at 900ms; FD (point 0) vs GM (point 1)")
	fmt.Println("# point\tmean(ms)\tP50\tP90\tP99\tmessages\tundelivered")
	for i, r := range planRes {
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%d\n", i,
			r.Latency.Mean, r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P99, r.Messages, r.Undelivered)
	}
	fmt.Println("# point\trep\tdelivery_digest")
	for _, d := range tr.Digests() {
		fmt.Printf("%d\t%d\t%016x\n", d.Point, d.Rep, d.Digest)
	}
	if err := tr.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
		os.Exit(1)
	}

	// Third pinned grid: one load-shaped point per algorithm — a 4x burst
	// plus a mute/unmute of sender 2 mid-measure — exercising the LoadPlan
	// path end to end, trace record and replay included.
	load := repro.NewLoadPlan().
		Burst(400*time.Millisecond, 200*time.Millisecond, repro.AllSenders, 4).
		Mute(600*time.Millisecond, 2).
		Unmute(900*time.Millisecond, 2)
	loadSweep := repro.Sweep{
		Base: repro.Config{
			Algorithm:    repro.FD,
			N:            3,
			Throughput:   50,
			QoS:          repro.Detectors(10, 0, 0),
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
			Load:         load,
			Observers:    []repro.ObserverFactory{tr.Observer},
		},
		Algorithms: []repro.Algorithm{repro.FD, repro.GM},
	}
	loadRes := sweepRun(loadSweep)
	fmt.Println("# Load grid: 4x burst 400..600ms + mute p2 600..900ms; FD (point 0) vs GM (point 1)")
	fmt.Println("# point\tmean(ms)\tP50\tP90\tP99\tmessages\tundelivered")
	for i, r := range loadRes {
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%d\n", i,
			r.Latency.Mean, r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P99, r.Messages, r.Undelivered)
	}
	fmt.Println("# point\trep\tdelivery_digest")
	for _, d := range tr.Digests() {
		fmt.Printf("%d\t%d\t%016x\n", d.Point, d.Rep, d.Digest)
	}
	if err := tr.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
		os.Exit(1)
	}

	// Fourth pinned grid: a long outage — p2 down for a full second of
	// dense traffic, far more decisions than the FD consensus instance
	// window retains — exercising the decision-log catch-up path end to
	// end (GM rides the same plan through its rejoin machinery).
	outagePlan := repro.NewFaultPlan().
		Crash(300*time.Millisecond, 2).
		Recover(1300*time.Millisecond, 2)
	outageSweep := repro.Sweep{
		Base: repro.Config{
			Algorithm:    repro.FD,
			N:            3,
			Throughput:   150,
			QoS:          repro.Detectors(10, 0, 0),
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      1300 * time.Millisecond,
			Drain:        5 * time.Second,
			Replications: 2,
			Plan:         outagePlan,
			Observers:    []repro.ObserverFactory{tr.Observer},
		},
		Algorithms: []repro.Algorithm{repro.FD, repro.GM},
	}
	outageRes := sweepRun(outageSweep)
	fmt.Println("# Outage grid: crash p2 at 300ms, recover at 1300ms, T=150/s; FD (point 0) vs GM (point 1)")
	fmt.Println("# point\tmean(ms)\tP50\tP90\tP99\tmessages\tundelivered")
	for i, r := range outageRes {
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%d\n", i,
			r.Latency.Mean, r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P99, r.Messages, r.Undelivered)
	}
	fmt.Println("# point\trep\tdelivery_digest")
	for _, d := range tr.Digests() {
		fmt.Printf("%d\t%d\t%016x\n", d.Point, d.Rep, d.Digest)
	}
	if err := tr.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
		os.Exit(1)
	}

	// Fifth pinned grid: the group-sharded ordering layer — one point per
	// GroupMap across the overlap spectrum (disjoint shards, finer shards,
	// chained bridges) at a fixed cross-shard mix — exercising group-
	// addressed dissemination, per-group protocol stacks and the
	// cross-group timestamp merge, trace record and replay included (the
	// trace header embeds each point's GroupMap spec).
	groupSweep := repro.Sweep{
		Base: repro.Config{
			Algorithm:    repro.FD,
			N:            6,
			Throughput:   60,
			QoS:          repro.Detectors(10, 0, 0),
			Seed:         1,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
			CrossShard:   0.25,
			Observers:    []repro.ObserverFactory{tr.Observer},
		},
		GroupMaps: []*repro.GroupMap{repro.Disjoint(6, 2), repro.Disjoint(6, 3), repro.Chained(6, 3)},
	}
	groupRes := sweepRun(groupSweep)
	fmt.Println("# Group grid: n=6 T=60/s cross-shard=0.25; disjoint/2 (point 0), disjoint/3 (point 1), chained/3 (point 2)")
	fmt.Println("# point\tmean(ms)\tP50\tP90\tP99\tmessages\tundelivered")
	for i, r := range groupRes {
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%d\n", i,
			r.Latency.Mean, r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P99, r.Messages, r.Undelivered)
	}
	fmt.Println("# point\trep\tdelivery_digest")
	for _, d := range tr.Digests() {
		fmt.Printf("%d\t%d\t%016x\n", d.Point, d.Rep, d.Digest)
	}
	if err := tr.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "trace flush: %v\n", err)
		os.Exit(1)
	}
}

// replayTrace re-runs every replication of a trace file and verifies the
// delivery digests, exiting non-zero on any mismatch.
func replayTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	results, err := repro.ReplayTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	for _, r := range results {
		status := "ok"
		if !r.Match {
			status = fmt.Sprintf("MISMATCH (recorded %016x, replayed %016x)", r.Recorded, r.Replayed)
			bad++
		}
		fmt.Printf("point %d rep %d: %s\n", r.Point, r.Rep, status)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "replay: %d of %d replications diverged\n", bad, len(results))
		os.Exit(1)
	}
	fmt.Printf("replayed %d replications, all digests match\n", len(results))
}

// pid converts an int to the facade's process identifier type used in
// Config.Crashed.
func pid(p int) repro.ProcessID { return repro.ProcessID(p) }
