package main

import (
	"fmt"
	"time"

	"repro"
)

// figNScale measures how atomic broadcast latency scales with the system
// size on different connectivity graphs — the figure the paper could not
// draw on its single shared Ethernet. The same FD workload runs at a
// fixed total rate on four topologies per n: the paper's full mesh (one
// contended wire), a clique (a dedicated wire per pair — only CPUs
// contend), a ring (constant per-wire contention, O(n) propagation) and
// a geo-replicated layout (four datacenter cliques joined by 5 ms WAN
// links through gateways). The spread between the curves is pure
// dissemination topology: the agreement protocol, workload and seed are
// identical across a row.
func figNScale() {
	ns := []int{64, 256, 512}
	if *quickFlag {
		ns = []int{16, 64, 256}
	}
	reps := 2
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	shapes := []struct {
		name  string
		build func(n int) *repro.Topology
	}{
		{"fullmesh", repro.FullMesh},
		{"clique", repro.Clique},
		{"ring", repro.Ring},
		{"geo", func(n int) *repro.Topology {
			return repro.Geo(repro.GeoConfig{
				Sites:   4,
				PerSite: n / 4,
				WAN:     repro.Wire{Delay: 5 * time.Millisecond},
			})
		}},
	}
	fmt.Println("# Figure N: latency vs system size across topologies, FD algorithm,")
	fmt.Println("# total rate 3/s (batching keeps large n stable; latency is the signal).")
	fmt.Println("# geo = 4 sites joined pairwise by 5ms WAN links through gateways.")
	fmt.Println("# n\ttopology\tmean(ms)\tci\tP50\tP90\tP99\tmessages\tundelivered")
	var cfgs []repro.Config
	for _, n := range ns {
		for _, shape := range shapes {
			cfgs = append(cfgs, repro.Config{
				Algorithm:    repro.FD,
				N:            n,
				Throughput:   3,
				Topology:     shape.build(n),
				Seed:         *seedFlag,
				Warmup:       time.Second,
				Measure:      5 * time.Second,
				Drain:        60 * time.Second,
				Replications: reps,
			})
		}
	}
	res := steadyAll(cfgs)
	for i, r := range res {
		fmt.Printf("%d\t%s\t%s\t%s\t%d\t%d\n",
			r.Config.N, shapes[i%len(shapes)].name,
			cellAny(r), qcell(r.Quantiles, r.Quantiles.N > 0),
			r.Messages, r.Undelivered)
		if i%len(shapes) == len(shapes)-1 {
			// Blank line between size blocks for gnuplot indexing.
			fmt.Println()
		}
	}
}
