package main

import (
	"fmt"
	"time"

	"repro"
)

// figGroups measures what sharding the ordering layer buys — the figure
// motivating genuine atomic multicast. Panel G1 fixes the per-group size
// (3 processes per group, each group a Geo site with its own LAN wire)
// and the per-group offered rate, then grows the group count: with
// shard-local traffic every group orders independently, so the
// aggregate delivered rate scales near-linearly in the group count —
// far past the single-group capacity ceiling the paper's setup stops
// at. Panel G2 holds 4 groups fixed and raises the cross-shard traffic
// fraction: cross-group messages pay WAN dissemination plus the
// timestamp merge across destination groups, so latency degrades
// gracefully with the fraction while throughput holds.
func figGroups() {
	const perGroup = 3
	const perGroupRate = 300.0
	ks := []int{1, 2, 4, 8}
	measure := 5 * time.Second
	reps := 3
	if *quickFlag {
		ks = []int{1, 2, 4}
		measure = 2 * time.Second
		reps = 2
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	geo := func(k int) *repro.Topology {
		return repro.Geo(repro.GeoConfig{
			Sites:   k,
			PerSite: perGroup,
			WAN:     repro.Wire{Delay: 5 * time.Millisecond},
		})
	}

	fmt.Println("# Figure G1: aggregate throughput vs group count, shard-local traffic,")
	fmt.Printf("# FD algorithm, %d processes per group (one Geo site per group, 5ms WAN),\n", perGroup)
	fmt.Printf("# offered %.0f/s per group — the single shared-wire group caps out near this rate.\n", perGroupRate)
	fmt.Println("# groups\tn\toffered(1/s)\tdelivered(1/s)\tspeedup\tmean(ms)\tP99\tundelivered")
	var cfgs []repro.Config
	for _, k := range ks {
		t := geo(k)
		cfgs = append(cfgs, repro.Config{
			Algorithm:    repro.FD,
			N:            k * perGroup,
			Throughput:   float64(k) * perGroupRate,
			Topology:     t,
			Groups:       repro.GroupsFromSites(t),
			Seed:         *seedFlag,
			Warmup:       time.Second,
			Measure:      measure,
			Drain:        20 * time.Second,
			Replications: reps,
		})
	}
	res := steadyAll(cfgs)
	rate := func(r repro.Result) float64 {
		return float64(r.Messages) / (measure.Seconds() * float64(reps))
	}
	base := rate(res[0])
	for i, k := range ks {
		r := res[i]
		fmt.Printf("%d\t%d\t%.0f\t%.1f\t%.2fx\t%.2f\t%.2f\t%d\n",
			k, k*perGroup, float64(k)*perGroupRate, rate(r), rate(r)/base,
			r.Latency.Mean, r.Quantiles.P99, r.Undelivered)
	}
	fmt.Println()

	const k2 = 4
	const perGroupRate2 = 100.0
	fractions := []float64{0, 0.05, 0.1, 0.15, 0.2}
	if *quickFlag {
		fractions = []float64{0, 0.1, 0.2}
	}
	fmt.Printf("# Figure G2: graceful degradation vs cross-shard fraction, %d groups of %d,\n", k2, perGroup)
	fmt.Printf("# offered %.0f/s per group; cross-shard messages add one random extra\n", perGroupRate2)
	fmt.Println("# destination group: WAN dissemination plus the cross-group timestamp merge.")
	fmt.Println("# Past ~0.25 at this rate the proposal traffic saturates the LAN wires and")
	fmt.Println("# the merge pipeline backs up — the cross-shard capacity ceiling.")
	fmt.Println("# cross-shard\tdelivered(1/s)\tmean(ms)\tP50\tP90\tP99\tundelivered")
	t2 := geo(k2)
	var cfgs2 []repro.Config
	for _, f := range fractions {
		cfgs2 = append(cfgs2, repro.Config{
			Algorithm:    repro.FD,
			N:            k2 * perGroup,
			Throughput:   k2 * perGroupRate2,
			Topology:     t2,
			Groups:       repro.GroupsFromSites(t2),
			CrossShard:   f,
			Seed:         *seedFlag,
			Warmup:       time.Second,
			Measure:      measure,
			Drain:        20 * time.Second,
			Replications: reps,
		})
	}
	res2 := steadyAll(cfgs2)
	for i, f := range fractions {
		r := res2[i]
		fmt.Printf("%.2f\t%.1f\t%.2f\t%s\t%d\n",
			f, rate(r), r.Latency.Mean, qcell(r.Quantiles, r.Quantiles.N > 0), r.Undelivered)
	}
	fmt.Println()
}
