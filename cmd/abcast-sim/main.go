// Command abcast-sim runs one benchmark scenario from the paper's
// methodology and prints its latency statistics. It is the interactive
// companion to cmd/figures: one point instead of a sweep.
//
// Examples:
//
//	abcast-sim -alg fd -n 3 -throughput 300                 # normal-steady
//	abcast-sim -alg gm -n 7 -crashed 2 -throughput 100      # crash-steady
//	abcast-sim -alg gm -n 3 -tmr 100 -tm 5 -throughput 10   # suspicion-steady
//	abcast-sim -alg fd -n 3 -transient -td 10 -throughput 50
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

var (
	algFlag       = flag.String("alg", "fd", "algorithm: fd, gm or gm-nu")
	nFlag         = flag.Int("n", 3, "number of processes")
	thrFlag       = flag.Float64("throughput", 100, "overall A-broadcast rate (1/s)")
	lambdaFlag    = flag.Float64("lambda", 1, "CPU/wire cost ratio of the network model")
	tdFlag        = flag.Float64("td", 0, "failure detection time TD (ms)")
	tmrFlag       = flag.Float64("tmr", 0, "mistake recurrence time TMR (ms); 0 = no wrong suspicions")
	tmFlag        = flag.Float64("tm", 0, "mistake duration TM (ms)")
	crashedFlag   = flag.Int("crashed", 0, "number of long-ago crashed processes (crash-steady)")
	transientFlag = flag.Bool("transient", false, "run the crash-transient scenario instead of steady state")
	sweepFlag     = flag.Bool("worst", false, "with -transient: maximise over senders (the paper's Lcrash)")
	seedFlag      = flag.Uint64("seed", 1, "random seed")
	warmupFlag    = flag.Duration("warmup", 2*time.Second, "virtual warmup before measuring")
	measureFlag   = flag.Duration("measure", 10*time.Second, "virtual measurement window")
	repsFlag      = flag.Int("reps", 5, "replications")
	workersFlag   = flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS, 1 = serial)")
)

func algorithm(name string) repro.Algorithm {
	switch name {
	case "fd":
		return repro.FD
	case "gm":
		return repro.GM
	case "gm-nu":
		return repro.GMNonUniform
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q (want fd, gm or gm-nu)\n", name)
		os.Exit(2)
		return 0
	}
}

func main() {
	flag.Parse()
	cfg := repro.Config{
		Algorithm:    algorithm(*algFlag),
		N:            *nFlag,
		Throughput:   *thrFlag,
		Lambda:       *lambdaFlag,
		QoS:          repro.Detectors(*tdFlag, *tmrFlag, *tmFlag),
		Seed:         *seedFlag,
		Warmup:       *warmupFlag,
		Measure:      *measureFlag,
		Replications: *repsFlag,
	}
	for k := 0; k < *crashedFlag; k++ {
		cfg.Crashed = append(cfg.Crashed, repro.ProcessID(*nFlag-1-k))
	}
	runner := &repro.Runner{Workers: *workersFlag}

	if *transientFlag {
		tc := repro.TransientConfig{Config: cfg, Crash: 0, Sender: 1}
		var res repro.TransientResult
		if *sweepFlag {
			res = runner.WorstCaseTransient(tc, false)
		} else {
			res = runner.Transient(tc)
		}
		fmt.Printf("crash-transient: alg=%v n=%d T=%.0f/s TD=%.0fms crash=p%d sender=p%d\n",
			cfg.Algorithm, cfg.N, cfg.Throughput, *tdFlag, res.Config.Crash, res.Config.Sender)
		fmt.Printf("  latency   %s ms\n", res.Latency)
		fmt.Printf("  overhead  %s ms (latency - TD)\n", res.Overhead)
		if res.Lost > 0 {
			fmt.Printf("  LOST %d probes\n", res.Lost)
		}
		return
	}

	res := runner.Steady(cfg)
	scenario := "normal-steady"
	if len(cfg.Crashed) > 0 {
		scenario = "crash-steady"
	}
	if *tmrFlag > 0 {
		scenario = "suspicion-steady"
	}
	fmt.Printf("%s: alg=%v n=%d T=%.0f/s lambda=%.1f crashed=%d TMR=%.0fms TM=%.0fms\n",
		scenario, cfg.Algorithm, cfg.N, cfg.Throughput, cfg.Lambda,
		len(cfg.Crashed), *tmrFlag, *tmFlag)
	fmt.Printf("  latency    %s ms (replication means, 95%% CI)\n", res.Latency)
	fmt.Printf("  per-msg    %s ms  min=%.2f max=%.2f\n", res.PerMessage, res.PerMessage.Min, res.PerMessage.Max)
	fmt.Printf("  messages   %d measured", res.Messages)
	if !res.Stable {
		fmt.Printf("  UNSTABLE (%d undelivered)", res.Undelivered)
	}
	fmt.Println()
}
