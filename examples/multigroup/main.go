// Multi-group walkthrough: the ordering layer sharded into four groups
// of three processes, each group a Geo site with its own LAN wire —
// genuine atomic multicast instead of one system-wide broadcast.
//
// Act 1 measures what sharding buys and what crossing shards costs: a
// shard-local message is ordered entirely inside its home group (LAN
// round trips only), while a cross-shard message is disseminated to
// both destination groups, ordered by each, and merged into one total
// order by exchanging timestamp proposals over the WAN — the classic
// latency premium of genuine multicast, paid only by the messages that
// actually span shards.
//
// Act 2 cuts one group off the WAN mid-run. With a single system-wide
// group that partition would stall the minority entirely; with sharded
// ordering every group — the cut one included — keeps delivering its
// own shard-local traffic, because each shard's protocol stack runs on
// its own members. Only the cross-shard message sent into the cut is
// stuck: it delivers right after the heal, still in one total order.
//
//	go run ./examples/multigroup
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	geo := repro.Geo(repro.GeoConfig{
		Sites:   4,
		PerSite: 3,
		WAN:     repro.Wire{Delay: 5 * time.Millisecond},
	})
	groups := repro.GroupsFromSites(geo) // one ordering group per site
	n := geo.N

	// Act 1: shard-local vs cross-shard latency on the same cluster.
	fmt.Printf("act 1: %d processes in %d groups of 3; 90%% shard-local, 10%% cross-shard\n",
		n, groups.NumGroups())
	sentAt := make(map[int]time.Duration)
	firstAt := make(map[int]time.Duration)
	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         n,
		Topology:  geo,
		Groups:    groups,
		OnDeliver: func(d repro.Delivery) {
			if body, ok := d.Body.(int); ok {
				if _, seen := firstAt[body]; !seen {
					firstAt[body] = d.At
				}
			}
		},
	})
	const msgs = 200
	cross := make(map[int]bool)
	for i := 0; i < msgs; i++ {
		at := time.Duration(10+5*i) * time.Millisecond
		sender := i % n
		home := groups.Home(repro.ProcessID(sender))
		sentAt[i] = at
		if i%10 == 3 {
			// Every tenth message also targets the next group around.
			other := (home + 1) % groups.NumGroups()
			cross[i] = true
			cluster.MulticastAt(sender, at, []int{home, other}, i)
		} else {
			cluster.MulticastAt(sender, at, []int{home}, i)
		}
	}
	cluster.Run(3 * time.Second)
	var localSum, crossSum time.Duration
	var localN, crossN int
	for body, t0 := range sentAt {
		t1, ok := firstAt[body]
		if !ok {
			continue
		}
		if cross[body] {
			crossSum += t1 - t0
			crossN++
		} else {
			localSum += t1 - t0
			localN++
		}
	}
	ms := func(sum time.Duration, n int) float64 {
		return float64(sum.Microseconds()) / 1000 / float64(n)
	}
	fmt.Printf("  shard-local  mean latency %5.2fms over %d messages (LAN-only ordering)\n",
		ms(localSum, localN), localN)
	fmt.Printf("  cross-shard  mean latency %5.2fms over %d messages (WAN + timestamp merge)\n",
		ms(crossSum, crossN), crossN)

	// Act 2: cut group 1 off the WAN from 300ms to 800ms. Every group
	// keeps ordering its own shard-local traffic through the cut; the
	// cross-shard message sent into the cut waits for the heal.
	fmt.Println("\nact 2: group 1 (processes 3 4 5) cut off the WAN from 300ms to 800ms")
	plan := repro.NewFaultPlan().
		PartitionGroups(300*time.Millisecond, groups, 1).
		Heal(800 * time.Millisecond)
	type window struct{ during, after int }
	perGroup := make([]window, groups.NumGroups())
	var crossDelivered time.Duration
	cluster2 := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         n,
		Topology:  geo,
		Groups:    groups,
		QoS:       repro.Detectors(10, 0, 0), // TD = 10 ms
		Plan:      plan,
		OnDeliver: func(d repro.Delivery) {
			if d.Body == "cross-into-cut" && crossDelivered == 0 {
				crossDelivered = d.At
			}
			// Count each group's deliveries at its lowest member.
			g := groups.Home(repro.ProcessID(d.Process))
			if int(groups.Members(g)[0]) != d.Process {
				return
			}
			switch {
			case d.At >= 300*time.Millisecond && d.At < 800*time.Millisecond:
				perGroup[g].during++
			case d.At >= 800*time.Millisecond:
				perGroup[g].after++
			}
		},
	})
	// Steady shard-local traffic from every process, through the cut.
	for i := 0; i < 12*80; i++ {
		sender := i % n
		home := groups.Home(repro.ProcessID(sender))
		cluster2.MulticastAt(sender, time.Duration(10+i)*time.Millisecond, []int{home}, nil)
	}
	// One cross-shard message from group 0 into the cut group, mid-cut.
	cluster2.MulticastAt(0, 400*time.Millisecond, []int{0, 1}, "cross-into-cut")
	cluster2.Run(3 * time.Second)
	for g, w := range perGroup {
		note := ""
		if g == 1 {
			note = "  <- cut off the WAN, still ordering its shard"
		}
		fmt.Printf("  group %d: %3d deliveries during the cut, %3d after%s\n",
			g, w.during, w.after, note)
	}
	fmt.Printf("  cross-shard message sent at 400ms into the cut delivered at %v (heal at 800ms)\n",
		crossDelivered.Round(time.Millisecond))
}
