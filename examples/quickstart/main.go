// Quickstart: run the Chandra–Toueg atomic broadcast (the paper's FD
// algorithm) on a simulated 3-process cluster, broadcast 100 messages and
// print the latency statistics plus a total-order check.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	// Collect the delivery sequence of every process.
	sequences := make([][]repro.MessageID, 3)
	var latencies []time.Duration
	sent := make(map[repro.MessageID]time.Duration)
	firstDelivery := make(map[repro.MessageID]time.Duration)

	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD, // try repro.GM for the sequencer algorithm
		N:         3,
		OnDeliver: func(d repro.Delivery) {
			sequences[d.Process] = append(sequences[d.Process], d.ID)
			if _, seen := firstDelivery[d.ID]; !seen {
				firstDelivery[d.ID] = d.At
				latencies = append(latencies, d.At-sent[d.ID])
			}
		},
	})

	// 100 broadcasts from rotating senders, one every 5 ms of virtual
	// time. Virtual time only advances inside Run.
	for i := 0; i < 100; i++ {
		sender := i % 3
		at := time.Duration(i) * 5 * time.Millisecond
		cluster.BroadcastAt(sender, at, fmt.Sprintf("update-%03d", i))
	}
	// Record send times as they happen by re-deriving them: IDs are
	// (origin, per-origin sequence), assigned in order.
	for i := 0; i < 100; i++ {
		id := repro.MessageID{Origin: repro.ProcessID(i % 3), Seq: uint64(i/3 + 1)}
		sent[id] = time.Duration(i) * 5 * time.Millisecond
	}
	cluster.RunUntilIdle()

	// Every process must have delivered the same sequence.
	for p := 1; p < 3; p++ {
		if len(sequences[p]) != len(sequences[0]) {
			panic("delivery counts differ")
		}
		for i := range sequences[p] {
			if sequences[p][i] != sequences[0][i] {
				panic("total order violated")
			}
		}
	}

	var sum time.Duration
	min, max := latencies[0], latencies[0]
	for _, l := range latencies {
		sum += l
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	fmt.Printf("delivered %d messages on all 3 processes, in one total order\n", len(sequences[0]))
	fmt.Printf("latency (A-broadcast to first A-delivery): mean %.2fms  min %.2fms  max %.2fms\n",
		float64(sum.Microseconds())/float64(len(latencies))/1000,
		float64(min.Microseconds())/1000, float64(max.Microseconds())/1000)
	fmt.Printf("network: %d wire messages for %d broadcasts\n",
		cluster.Stats().WireSlots, len(sequences[0]))
}
