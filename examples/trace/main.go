// Trace: reproduce the paper's Figure 1 — the message pattern of a single
// atomic broadcast under both algorithms in a failure-free run. The two
// patterns are identical step for step; only the message names differ
// (proposal/ack/decision versus seqnum/ack/deliver).
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"strings"
	"time"

	"repro"
)

func run(alg repro.Algorithm, title string) {
	fmt.Printf("%s\n%s\n", title, strings.Repeat("-", len(title)))
	var deliveries []string
	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: alg,
		N:         5, // Fig. 1 draws five processes
		OnDeliver: func(d repro.Delivery) {
			deliveries = append(deliveries,
				fmt.Sprintf("  %6.2fms  A-deliver(m) at p%d", ms(d.At), d.Process))
		},
	})
	cluster.SetTrace(func(ev repro.NetEvent) {
		if ev.Stage != "wire" {
			return
		}
		to := "all"
		if ev.To >= 0 {
			to = fmt.Sprintf("p%d", ev.To)
		}
		fmt.Printf("  %6.2fms  %-28s p%d -> %s\n", ms(ev.At), short(ev.Payload), ev.From, to)
	})
	cluster.Broadcast(0, "m")
	cluster.RunUntilIdle()
	for _, d := range deliveries {
		fmt.Println(d)
	}
	fmt.Println()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// short trims package paths from payload type names.
func short(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}

func main() {
	fmt.Println("Figure 1: one A-broadcast(m) by p0, failure-free, n=5, λ=1")
	fmt.Println("(every line is one occupation of the shared network resource)")
	fmt.Println()
	run(repro.FD, "FD algorithm (Chandra–Toueg: consensus on message batches)")
	run(repro.GM, "GM algorithm (fixed sequencer over group membership)")
	run(repro.GMNonUniform, "GM algorithm, non-uniform variant (§8: two multicasts)")
}
