// FaultPlan walkthrough: the same partition-and-heal timeline driven
// through both atomic broadcast algorithms. While the network is split
// the majority keeps delivering and the failure detectors treat the
// minority as crashed; after the heal the two algorithms converge on the
// majority's order by different means — the GM algorithm notices it was
// excluded in absentia, rejoins with state transfer and re-announces the
// messages the partition swallowed; the crash-stop FD algorithm catches
// the minority up through its decision log, but the minority's own
// partition-era messages are lost for good (no retransmission).
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const n = 5
	plan := repro.NewFaultPlan().
		Partition(200*time.Millisecond, []repro.ProcessID{0, 1, 2}, []repro.ProcessID{3, 4}).
		Heal(600 * time.Millisecond)

	fmt.Printf("partition-and-heal, n=%d: {0 1 2} | {3 4} from 200ms to 600ms\n", n)
	for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
		fmt.Printf("\n=== %v algorithm ===\n", alg)
		delivered := make(map[int]int, n)
		var total int
		cluster := repro.NewCluster(repro.ClusterConfig{
			Algorithm: alg,
			N:         n,
			QoS:       repro.Detectors(10, 0, 0), // TD = 10 ms
			Plan:      plan,
			OnDeliver: func(d repro.Delivery) {
				delivered[d.Process]++
				total++
			},
			OnView: func(v repro.ViewInfo) {
				if v.Process == 3 { // the minority's timeline tells the story
					fmt.Printf("  %8.2fms  p3 enters view %d, members %v\n",
						float64(v.At.Microseconds())/1000, v.ViewID, v.Members)
				}
			},
			OnFault: func(at time.Duration, ev repro.PlanEvent) {
				fmt.Printf("  %8.2fms  fault: %v\n", float64(at.Microseconds())/1000, ev)
			},
		})

		// One message per 25ms from every process: some land before the
		// split, some inside it, some after the heal.
		const msgs = 40
		for i := 0; i < msgs; i++ {
			cluster.BroadcastAt(i%n, time.Duration(i)*25*time.Millisecond, i)
		}
		cluster.Run(3 * time.Second)

		st := cluster.Stats()
		fmt.Printf("  sent %d messages; per-process deliveries:", msgs)
		for p := 0; p < n; p++ {
			fmt.Printf(" p%d=%d", p, delivered[p])
		}
		fmt.Printf("\n  copies lost to the partition: %d\n", st.Lost)
		switch alg {
		case repro.FD:
			fmt.Println("  -> FD: the majority never stopped, at failure-free latency. After the heal,")
			fmt.Println("     p3/p4 notice they are behind and catch up through the decision log: they")
			fmt.Println("     request and re-deliver the suffix of decisions the partition hid. Only the")
			fmt.Println("     minority's own partition-era messages stay lost - Chandra-Toueg assumes")
			fmt.Println("     quasi-reliable channels and has no retransmission for what the split ate.")
		default:
			fmt.Println("  -> GM: p3/p4 were excluded in absentia, noticed, rejoined with state transfer")
			fmt.Println("     and re-announced their swallowed messages - nothing lost, just delivered late.")
		}
	}
}
