// Replicated service: the paper's motivating application (§5.1). A
// key-value store is actively replicated over atomic broadcast: clients
// send commands with A-broadcast, every replica applies them in delivery
// order, and the response time tracks the latency of the first delivery —
// the exact argument the paper uses to justify its latency metric.
//
// The run crashes one replica mid-way and injects a wrong suspicion to
// show that neither event disturbs consistency.
//
//	go run ./examples/replicated-service
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro"
)

// command is a state-machine operation shipped through atomic broadcast.
type command struct {
	Op    string // "put" or "del"
	Key   string
	Value string
}

// store is one replica's state machine.
type store struct {
	data    map[string]string
	applied int
}

func (s *store) apply(c command) {
	switch c.Op {
	case "put":
		s.data[c.Key] = c.Value
	case "del":
		delete(s.data, c.Key)
	}
	s.applied++
}

// digest summarises the state for convergence checks.
func (s *store) digest() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, s.data[k])
	}
	return b.String()
}

func main() {
	const n = 5
	replicas := make([]*store, n)
	for i := range replicas {
		replicas[i] = &store{data: make(map[string]string)}
	}

	var responseTimes []time.Duration
	sentAt := make(map[repro.MessageID]time.Duration)
	responded := make(map[repro.MessageID]bool)

	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.GM, // uniform sequencer over group membership
		N:         n,
		QoS:       repro.Detectors(10, 0, 0), // 10 ms crash detection
		OnDeliver: func(d repro.Delivery) {
			cmd := d.Body.(command)
			replicas[d.Process].apply(cmd)
			// The client's response time is the first replica's reply
			// (all replies are identical; the client keeps the first).
			if !responded[d.ID] {
				responded[d.ID] = true
				if t0, ok := sentAt[d.ID]; ok {
					responseTimes = append(responseTimes, d.At-t0)
				}
			}
		},
	})

	// Client workload: 200 commands, issued through changing replicas.
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 3 * time.Millisecond
		entry := i
		replica := i % n
		cluster.BroadcastAt(replica, at, command{
			Op:    "put",
			Key:   keys[entry%len(keys)],
			Value: fmt.Sprintf("v%d", entry),
		})
	}
	// Track send times (IDs are per-origin sequences, issued in order).
	for i := 0; i < 200; i++ {
		sentAt[repro.MessageID{Origin: repro.ProcessID(i % n), Seq: uint64(i/n + 1)}] =
			time.Duration(i) * 3 * time.Millisecond
	}

	// Mid-run faults: replica 4 crashes for real; replica 2 is wrongly
	// suspected for 40 ms (it gets excluded and rejoins with a state
	// transfer).
	cluster.CrashAt(4, 150*time.Millisecond)
	cluster.SuspectAt(0, 2, 300*time.Millisecond, 40*time.Millisecond)

	cluster.Run(5 * time.Second)

	// Convergence: all correct replicas hold the same state and applied
	// the same number of commands.
	ref := -1
	for p := 0; p < n; p++ {
		if !cluster.Crashed(p) {
			ref = p
			break
		}
	}
	for p := 0; p < n; p++ {
		if cluster.Crashed(p) {
			continue
		}
		if replicas[p].digest() != replicas[ref].digest() {
			panic(fmt.Sprintf("replica %d diverged", p))
		}
	}

	var sum time.Duration
	for _, rt := range responseTimes {
		sum += rt
	}
	fmt.Printf("replicated KV store over uniform atomic broadcast (GM algorithm), n=%d\n", n)
	fmt.Printf("  commands applied per correct replica: %d\n", replicas[ref].applied)
	fmt.Printf("  final state: %s\n", replicas[ref].digest())
	fmt.Printf("  mean client response time: %.2f ms over %d commands\n",
		float64(sum.Microseconds())/float64(len(responseTimes))/1000, len(responseTimes))
	fmt.Printf("  replica 4 crashed at 150ms; replica 2 was wrongly excluded and rejoined\n")
	fmt.Printf("  all correct replicas converged: OK\n  (commands issued through the crashed replica after its crash are lost client-side)\n")
}
