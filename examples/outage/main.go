// Long-outage walkthrough: crash a process, keep the cluster busy until
// its peers have garbage-collected every consensus instance it is
// missing, then recover it. The crash-stop FD algorithm resumes the
// process with its pre-crash state — hundreds of decisions behind, past
// the consensus instance window (64), where ordinary decision forwarding
// can never reach. Decision-log catch-up closes the gap: the recovered
// process detects its lag from the instance numbers on live consensus
// traffic, requests the decision suffix from the most advanced peer, and
// re-delivers everything it missed in order before rejoining live
// ordering.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"strings"
	"time"

	"repro"
)

func main() {
	const n = 3
	const crashAt = 200 * time.Millisecond
	const recoverAt = 2500 * time.Millisecond
	plan := repro.NewFaultPlan().
		Crash(crashAt, 2).
		Recover(recoverAt, 2)

	delivered := make([]int, n)
	var catchUpReqs, catchUpReplies int
	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         n,
		QoS:       repro.Detectors(10, 0, 0), // TD = 10 ms
		Plan:      plan,
		OnDeliver: func(d repro.Delivery) {
			delivered[d.Process]++
		},
		OnFault: func(at time.Duration, ev repro.PlanEvent) {
			fmt.Printf("  %8.2fms  fault: %v\n", float64(at.Microseconds())/1000, ev)
		},
	})
	cluster.SetTrace(func(ev repro.NetEvent) {
		if ev.Stage != "send" {
			return
		}
		switch {
		case strings.HasPrefix(ev.Payload, "CatchUpReq["):
			catchUpReqs++
			fmt.Printf("  %8.2fms  p%d -> p%d  %s\n", float64(ev.At.Microseconds())/1000, ev.From, ev.To, ev.Payload)
		case strings.HasPrefix(ev.Payload, "CatchUpReply["):
			catchUpReplies++
			fmt.Printf("  %8.2fms  p%d -> p%d  %s\n", float64(ev.At.Microseconds())/1000, ev.From, ev.To, ev.Payload)
		}
	})

	// 120 messages from the two survivors while p2 is down — each decides
	// (roughly) its own consensus instance, so the outage spans about twice
	// the instance window. Then a little live traffic after the recovery.
	const outageMsgs = 120
	for i := 0; i < outageMsgs; i++ {
		cluster.BroadcastAt(i%2, 250*time.Millisecond+time.Duration(i)*15*time.Millisecond, i)
	}
	const liveMsgs = 6
	for i := 0; i < liveMsgs; i++ {
		cluster.BroadcastAt(i%n, recoverAt+100*time.Millisecond+time.Duration(i)*30*time.Millisecond, 1000+i)
	}

	fmt.Printf("long outage, n=%d: crash p2 at %v, recover at %v, %d messages in between\n",
		n, crashAt, recoverAt, outageMsgs)
	cluster.Run(recoverAt - 10*time.Millisecond)
	fmt.Printf("  just before recovery: deliveries p0=%d p1=%d p2=%d — p2 is %d messages behind\n",
		delivered[0], delivered[1], delivered[2], delivered[0]-delivered[2])

	cluster.Run(10 * time.Second)
	fmt.Printf("  after catch-up:       deliveries p0=%d p1=%d p2=%d\n",
		delivered[0], delivered[1], delivered[2])
	fmt.Printf("  catch-up traffic: %d requests, %d suffix replies\n", catchUpReqs, catchUpReplies)
	total := outageMsgs + liveMsgs
	if delivered[2] == total {
		fmt.Printf("  -> p2 delivered all %d messages: the whole outage suffix arrived through the\n", total)
		fmt.Println("     decision log, then live ordering took over - no wedge, nothing lost.")
	} else {
		fmt.Printf("  -> p2 delivered %d/%d messages - still wedged?\n", delivered[2], total)
	}
}
