// LoadPlan walkthrough: the same cluster driven through a shaped
// workload — a burst that lands while the network is partitioned, then a
// per-sender mute — with every load and fault event observed as it
// applies. The built-in Poisson workload is the paper's (§5.1): every
// process sends at Throughput/N, and LoadPlan events re-shape it
// mid-run without consuming randomness, so the run stays deterministic.
//
//	go run ./examples/overload
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const n = 5
	const throughput = 200.0 // total msgs/s, 40 per process

	// Faults: a majority/minority split from 400ms to 900ms.
	faults := repro.NewFaultPlan().
		Partition(400*time.Millisecond, []repro.ProcessID{0, 1, 2}, []repro.ProcessID{3, 4}).
		Heal(900 * time.Millisecond)

	// Load: a 5x burst that opens while the network is still split and
	// outlives the heal, then a mute of sender 1 — and a final pause so
	// the run can drain to idle.
	load := repro.NewLoadPlan().
		Burst(600*time.Millisecond, 600*time.Millisecond, repro.AllSenders, 5).
		Mute(1400*time.Millisecond, 1).
		Unmute(1700*time.Millisecond, 1).
		Pause(2 * time.Second)

	fmt.Printf("overload while partitioned, n=%d at %.0f msgs/s total:\n", n, throughput)
	fmt.Println("  {0 1 2}|{3 4} split 400..900ms; 5x burst 600..1200ms; mute p1 1400..1700ms")
	for _, alg := range []repro.Algorithm{repro.FD, repro.GM} {
		fmt.Printf("\n=== %v algorithm ===\n", alg)
		perSender := make(map[int]int, n)
		c := repro.NewCluster(repro.ClusterConfig{
			Algorithm:  alg,
			N:          n,
			QoS:        repro.Detectors(10, 0, 0), // TD = 10 ms
			Throughput: throughput,
			Plan:       faults,
			Load:       load,
			OnDeliver: func(d repro.Delivery) {
				if d.Process == 0 { // count once, at p0
					perSender[int(d.ID.Origin)]++
				}
			},
			OnFault: func(at time.Duration, ev repro.PlanEvent) {
				fmt.Printf("  %8.2fms  fault: %v\n", ms(at), ev)
			},
			OnLoad: func(at time.Duration, ev repro.LoadEvent) {
				fmt.Printf("  %8.2fms  load:  %v\n", ms(at), ev)
			},
		})

		// The plan's final Pause silences the workload at 2s, so after
		// running past it the cluster can drain to idle.
		c.Run(2 * time.Second)
		c.RunUntilIdle()

		total := 0
		fmt.Print("  deliveries at p0, by sender:")
		for s := 0; s < n; s++ {
			fmt.Printf(" p%d=%d", s, perSender[s])
			total += perSender[s]
		}
		fmt.Printf(" (total %d)\n", total)
		fmt.Printf("  copies lost to the partition: %d\n", c.Stats().Lost)
		switch alg {
		case repro.FD:
			fmt.Println("  -> FD: the majority absorbed the burst mid-partition; the minority's")
			fmt.Println("     partition-era messages are lost, burst included.")
		default:
			fmt.Println("  -> GM: the minority rejoined with state transfer and re-announced its")
			fmt.Println("     burst-era backlog - everything lands, the tail just stretches.")
		}
	}

	// The same scenario as data: one Sweep crossing both plans with both
	// algorithms is the batch form (see cmd/figures -fig overload).
	fmt.Println("\nsweep form: repro.RunSweep(repro.Sweep{Plans: {nil, faults}, Loads: {nil, load}, ...})")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
