// Topology walkthrough: a geo-replicated deployment — three datacenter
// sites of three processes, LAN cliques joined pairwise by 5 ms WAN
// links through per-site gateways — compared against the paper's single
// shared Ethernet on the same workload, then cut along the WAN.
//
// The topology changes nothing about the algorithm: the same FD atomic
// broadcast orders the same messages, but cross-site traffic now relays
// LAN → gateway → WAN → gateway → LAN, paying propagation delay on the
// WAN wires instead of contending for one global medium. The second act
// drops site 2 off the WAN with the plan's PartitionSites constructor —
// the partition follows the topology's site groups, no process lists to
// keep in sync — and heals it; the majority sites keep delivering
// throughout while the failure detectors handle the cut site like a
// crash, and the healed site catches back up.
//
//	go run ./examples/geo
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	geo := repro.Geo(repro.GeoConfig{
		Sites:   3,
		PerSite: 3,
		WAN:     repro.Wire{Delay: 5 * time.Millisecond},
	})
	n := geo.N

	// Act 1: the same failure-free workload on the paper's Ethernet and
	// on the geo graph. The latency gap is pure topology: WAN hops and
	// gateway relays versus one shared wire.
	fmt.Printf("act 1: %d processes, full mesh vs %s (4 WAN hops worst case)\n", n, geo.Name)
	for _, tp := range []*repro.Topology{nil, geo} {
		name := "fullmesh"
		if tp != nil {
			name = tp.Name
		}
		var sum time.Duration
		var count int
		sent := make(map[repro.MessageID]time.Duration)
		cluster := repro.NewCluster(repro.ClusterConfig{
			Algorithm: repro.FD,
			N:         n,
			Topology:  tp,
			OnDeliver: func(d repro.Delivery) {
				if t0, ok := sent[d.ID]; ok {
					sum += d.At - t0
					count++
				}
			},
		})
		const msgs = 30
		for i := 0; i < msgs; i++ {
			at := time.Duration(i) * 20 * time.Millisecond
			sent[repro.MessageID{Origin: repro.ProcessID(i % n), Seq: uint64(i/n + 1)}] = at
			cluster.BroadcastAt(i%n, at, i)
		}
		cluster.Run(3 * time.Second)
		st := cluster.Stats()
		fmt.Printf("  %-8s  mean latency %6.2fms over %d deliveries, %d wire slots\n",
			name, float64(sum.Microseconds())/1000/float64(count), count, st.WireSlots)
	}

	// Act 2: cut site 2 off the WAN mid-run and heal it. PartitionSites
	// derives the process groups from the topology's site membership.
	fmt.Println("\nact 2: WAN cut of site 2 (processes 6 7 8) from 300ms to 800ms")
	plan := repro.NewFaultPlan().
		PartitionSites(300*time.Millisecond, geo, 2).
		Heal(800 * time.Millisecond)
	delivered := make([]int, n)
	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         n,
		Topology:  geo,
		QoS:       repro.Detectors(10, 0, 0), // TD = 10 ms
		Plan:      plan,
		OnDeliver: func(d repro.Delivery) { delivered[d.Process]++ },
		OnFault: func(at time.Duration, ev repro.PlanEvent) {
			fmt.Printf("  %8.2fms  fault: %v\n", float64(at.Microseconds())/1000, ev)
		},
	})
	const msgs = 40
	for i := 0; i < msgs; i++ {
		// Only the majority sites broadcast, so every message is
		// deliverable: site 2's own partition-era messages would be
		// swallowed by the cut (the FD algorithm never resends them).
		p := i % 6
		cluster.BroadcastAt(p, time.Duration(i)*20*time.Millisecond, i)
	}
	cluster.Run(5 * time.Second)
	fmt.Println("  deliveries per process (majority sites keep running; site 2 catches up after the heal):")
	for s := 0; s < 3; s++ {
		fmt.Printf("    site %d:", s)
		for i := 0; i < 3; i++ {
			fmt.Printf("  p%d=%d", s*3+i, delivered[s*3+i])
		}
		fmt.Println()
	}
	st := cluster.Stats()
	fmt.Printf("  %d message copies lost to the WAN cut\n", st.Lost)
}
