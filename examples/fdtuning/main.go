// FD tuning: replace the paper's abstract QoS failure-detector model with
// a concrete heartbeat detector whose messages share the contended
// network, and sweep its timeout. Short timeouts detect crashes fast
// (small TD) but produce wrong suspicions under load (small TMR) that
// burn consensus rounds; long timeouts are accurate but slow to react
// when the coordinator really crashes. This is the quality-of-service
// trade-off the paper's Section 6.2 abstracts into (TD, TMR, TM), made
// concrete.
//
//	go run ./examples/fdtuning
package main

import (
	"fmt"
	"time"

	"repro"
)

// measure runs one experiment at the given heartbeat timeout: steady load
// from p1/p2, a crash of the coordinator p0 at 700ms with a probe message
// broadcast at the same instant. It returns the mean steady-state latency
// (pre-crash messages) and the probe's crash-recovery latency.
func measure(timeout time.Duration) (steadyMs, recoveryMs float64) {
	crashAt := 700 * time.Millisecond
	probeID := repro.MessageID{Origin: 1, Seq: 9999}

	sent := make(map[repro.MessageID]time.Duration)
	first := make(map[repro.MessageID]bool)
	var steady []time.Duration
	var probe time.Duration

	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.FD,
		N:         3,
		Heartbeat: &repro.HeartbeatConfig{
			Interval: 5 * time.Millisecond,
			Timeout:  timeout,
		},
		OnDeliver: func(d repro.Delivery) {
			if first[d.ID] {
				return
			}
			first[d.ID] = true
			t0, tracked := sent[d.ID]
			if !tracked {
				return
			}
			if d.ID == probeID {
				probe = d.At - t0
			} else if t0 < crashAt-50*time.Millisecond {
				steady = append(steady, d.At-t0)
			}
		},
	})

	// Steady load: 150 messages from p1 and p2.
	for i := 0; i < 150; i++ {
		at := time.Duration(i) * 4 * time.Millisecond
		sender := 1 + i%2
		sent[repro.MessageID{Origin: repro.ProcessID(sender), Seq: uint64(i/2 + 1)}] = at
		cluster.BroadcastAt(sender, at, i)
	}
	// Crash the coordinator and probe at the same instant. The probe is
	// p1's 76th broadcast (75 load messages above), but we pre-register
	// it under a sentinel and fix the mapping below.
	cluster.CrashAt(0, crashAt)
	realProbeID := repro.MessageID{Origin: 1, Seq: 76}
	sent[realProbeID] = crashAt
	cluster.BroadcastAt(1, crashAt, "probe")
	probeID = realProbeID

	cluster.Run(5 * time.Second)

	var sum time.Duration
	for _, l := range steady {
		sum += l
	}
	steadyMs = float64(sum.Microseconds()) / float64(len(steady)) / 1000
	recoveryMs = float64(probe.Microseconds()) / 1000
	return steadyMs, recoveryMs
}

func main() {
	fmt.Println("heartbeat failure detector tuning (FD algorithm, n=3, heartbeats every 5ms)")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-24s\n", "timeout", "steady latency (mean)", "crash recovery (probe)")
	for _, timeout := range []time.Duration{
		8 * time.Millisecond,
		15 * time.Millisecond,
		30 * time.Millisecond,
		60 * time.Millisecond,
		120 * time.Millisecond,
	} {
		steadyMs, recoveryMs := measure(timeout)
		fmt.Printf("%-10s  %15.2f ms      %17.2f ms\n", timeout, steadyMs, recoveryMs)
	}
	fmt.Println()
	fmt.Println("short timeouts inflate steady-state latency (wrong suspicions burn consensus")
	fmt.Println("rounds) but recover from the crash quickly; long timeouts are the opposite.")
	fmt.Println("The paper abstracts exactly this trade-off into TD, TMR and TM (§6.2).")
}
