// Distributions: the composable observer/collector API on one sweep
// point. A suspicion-steady run splits into two latency populations —
// most messages deliver at failure-free latency, the rest pay for a
// wrong suspicion — and the mean with a 95% CI cannot show that. This
// example runs one point, prints the quantiles, the early/late split
// and a histogram, exports a replayable trace, and replays it.
//
//	go run ./examples/distributions
package main

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro"
)

func main() {
	// One suspicion-steady point: GM at TMR = 200 ms pays a view change
	// per wrong suspicion.
	cfg := repro.Config{
		Algorithm:    repro.GM,
		N:            3,
		Throughput:   100,
		QoS:          repro.Detectors(0, 200, 0),
		Warmup:       500 * time.Millisecond,
		Measure:      4 * time.Second,
		Drain:        10 * time.Second,
		Replications: 3,
	}

	// Attach two cross-cutting observers: a latency distribution over
	// every broadcast (warmup and drain included) and a replayable trace.
	ld := repro.NewLatencyDist()
	var traceBuf bytes.Buffer
	tr := repro.NewTrace(&traceBuf)
	cfg.Observers = []repro.ObserverFactory{ld.Observer, tr.Observer}

	res := repro.RunSteady(cfg)

	fmt.Println("Suspicion-steady, GM, n=3, T=100/s, TMR=200ms, TM=0")
	fmt.Printf("  mean over replications: %s ms\n", res.Latency)
	q := res.Quantiles
	fmt.Printf("  quantiles (measured window): P50=%.2f  P90=%.2f  P99=%.2f ms  (n=%d)\n",
		q.P50, q.P90, q.P99, q.N)

	// The early/late split: messages under 2x the median are the
	// failure-free population, the rest were hit by a view change.
	threshold := 2 * q.P50
	early, late := res.Dist.SplitAt(threshold)
	fmt.Printf("  split at %.1f ms: %d early (mean %.2f), %d late (mean %.2f)\n",
		threshold, early.N(), early.Mean(), late.N(), late.Mean())

	// A coarse histogram of the same distribution.
	h := res.Dist.Histogram(0, 4*q.P90, 12)
	fmt.Println("  histogram:")
	for i, count := range h.Counts {
		fmt.Printf("    %6.1f ms %s %d\n", h.BinCenter(i), strings.Repeat("#", scale(count, h.Total())), count)
	}

	// The cross-cutting observer saw every broadcast, not just the
	// measured window.
	fmt.Printf("  observer saw %d broadcasts in total (window measured %d)\n",
		ld.Dist(0).N(), res.Messages)

	// Export and replay: the trace embeds each replication's config and
	// delivery digest, and the simulation is deterministic, so the trace
	// replays bit-for-bit anywhere.
	if err := tr.Flush(); err != nil {
		panic(err)
	}
	results, err := repro.ReplayTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		panic(err)
	}
	ok := 0
	for _, r := range results {
		if r.Match {
			ok++
		}
	}
	fmt.Printf("  trace: %d bytes, %d replications, %d replay digests match\n",
		traceBuf.Len(), len(results), ok)
}

// scale maps a bin count to a bar length of at most 40 characters.
func scale(count, total int) int {
	if total == 0 {
		return 0
	}
	return count * 40 / total
}
