// View-change walkthrough: watch the group membership service react to a
// real crash and to a wrong suspicion — exclusion, rejoin and state
// transfer — the machinery behind the paper's GM algorithm (§4.3).
//
//	go run ./examples/viewchange
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const n = 4
	fmt.Printf("group membership timeline, n=%d (sequencer = first member)\n\n", n)

	cluster := repro.NewCluster(repro.ClusterConfig{
		Algorithm: repro.GM,
		N:         n,
		QoS:       repro.Detectors(15, 0, 0), // TD = 15 ms
		OnView: func(v repro.ViewInfo) {
			if v.Process != 1 { // one observer is enough for the timeline
				return
			}
			fmt.Printf("  %8.2fms  p%d enters view %d, members %v\n",
				float64(v.At.Microseconds())/1000, v.Process, v.ViewID, v.Members)
		},
	})

	// Background traffic so views always have messages in flight.
	for i := 0; i < 120; i++ {
		cluster.BroadcastAt(i%n, time.Duration(i)*4*time.Millisecond, i)
	}

	fmt.Println("t=100ms: p3 crashes (detected after TD=15ms, then excluded)")
	cluster.CrashAt(3, 100*time.Millisecond)

	fmt.Println("t=250ms: p0 wrongly suspects p2 for 60ms (p2 is excluded, then rejoins)")
	cluster.SuspectAt(0, 2, 250*time.Millisecond, 60*time.Millisecond)

	fmt.Println()
	cluster.Run(2 * time.Second)

	fmt.Println("\nnote: the crashed p3 never returns; the wrongly excluded p2 rejoined")
	fmt.Println("through a join view change plus state transfer, as in the paper's §4.3.")
}
