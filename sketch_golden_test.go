package repro

import (
	"math"
	"sort"
	"testing"
	"time"
)

// goldenSketchAlpha is the relative-error bound the golden-config sketch
// tests run at.
const goldenSketchAlpha = 0.02

// goldenSteadyConfigs derives one steady-state experiment Config from
// each golden scenario's cluster configuration: same algorithm, size,
// seed, λ, QoS, detector, pre-crashes and fault plan, with a short
// fixed measurement window. The interactive parts of the golden drives
// (scripted broadcasts and suspicions) are replaced by the scenario's
// own steady load, which is what Result.Dist measures.
func goldenSteadyConfigs() (names []string, cfgs []Config) {
	for _, sc := range goldenScenarios() {
		cfg := Config{
			Algorithm:    sc.cfg.Algorithm,
			N:            sc.cfg.N,
			Lambda:       sc.cfg.Lambda,
			QoS:          sc.cfg.QoS,
			Detector:     sc.cfg.Heartbeat,
			Plan:         sc.cfg.Plan,
			Seed:         sc.cfg.Seed,
			Throughput:   100,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
		}
		for _, p := range sc.cfg.PreCrashed {
			cfg.Crashed = append(cfg.Crashed, ProcessID(p))
		}
		names = append(names, sc.name)
		cfgs = append(cfgs, cfg)
	}
	return names, cfgs
}

// orderStat returns the exact order statistic a sketch quantile
// estimates: the value at rank ceil(q*n) of the sorted observations.
func orderStat(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestSketchModeGoldenConfigs runs every golden scenario config in exact
// mode, in sketch mode serially, and in sketch mode on 8 workers, then
// checks the two promises Config.DistSketch makes: sketch-mode results
// are bit-identical at any worker count, and every reported quantile is
// within the configured relative error of the exact distribution — with
// the simulation itself (message counts, Welford moments, extrema)
// untouched by the collection mode.
func TestSketchModeGoldenConfigs(t *testing.T) {
	names, exactCfgs := goldenSteadyConfigs()
	sketchCfgs := make([]Config, len(exactCfgs))
	for i, cfg := range exactCfgs {
		cfg.DistSketch = goldenSketchAlpha
		sketchCfgs[i] = cfg
	}

	exact := (&Runner{Workers: 1}).SteadyAll(exactCfgs)
	sk1 := (&Runner{Workers: 1}).SteadyAll(sketchCfgs)
	sk8 := (&Runner{Workers: 8}).SteadyAll(sketchCfgs)

	for i, name := range names {
		i := i
		t.Run(name, func(t *testing.T) {
			e, s1, s8 := exact[i], sk1[i], sk8[i]
			if !s1.Dist.Sketched() {
				t.Fatal("DistSketch config did not produce a sketch-mode Dist")
			}

			// The collection mode must not perturb the simulation.
			if s1.Messages != e.Messages || s1.Undelivered != e.Undelivered {
				t.Fatalf("sketch mode changed the run: %d msgs/%d undelivered, exact %d/%d",
					s1.Messages, s1.Undelivered, e.Messages, e.Undelivered)
			}
			if s1.Dist.N() != e.Dist.N() || e.Dist.N() == 0 {
				t.Fatalf("Dist.N: sketch %d, exact %d (want equal and > 0)", s1.Dist.N(), e.Dist.N())
			}
			if math.Float64bits(s1.Latency.Mean) != math.Float64bits(e.Latency.Mean) {
				t.Errorf("sketch-mode Latency.Mean %v differs from exact %v", s1.Latency.Mean, e.Latency.Mean)
			}

			// Quantile promise: Min/Max exact, P50/P90/P99 within alpha of
			// the exact order statistics.
			values := e.Dist.Values()
			sort.Float64s(values)
			eq, sq := e.Quantiles, s1.Quantiles
			if math.Float64bits(sq.Min) != math.Float64bits(eq.Min) ||
				math.Float64bits(sq.Max) != math.Float64bits(eq.Max) {
				t.Errorf("sketch extrema [%v, %v] differ from exact [%v, %v]", sq.Min, sq.Max, eq.Min, eq.Max)
			}
			for q, got := range map[float64]float64{0.50: sq.P50, 0.90: sq.P90, 0.99: sq.P99} {
				want := orderStat(values, q)
				if math.Abs(got-want) > goldenSketchAlpha*want+1e-12 {
					t.Errorf("P%v: sketch %v vs exact %v beyond relative error %v",
						q*100, got, want, goldenSketchAlpha)
				}
			}

			// Worker independence: 1 and 8 workers must agree bit for bit.
			if s8.Messages != s1.Messages || s8.Undelivered != s1.Undelivered || s8.Dist.N() != s1.Dist.N() {
				t.Fatalf("8-worker run differs: %d msgs/%d undelivered/n=%d, serial %d/%d/n=%d",
					s8.Messages, s8.Undelivered, s8.Dist.N(), s1.Messages, s1.Undelivered, s1.Dist.N())
			}
			for stat, pair := range map[string][2]float64{
				"Latency.Mean": {s8.Latency.Mean, s1.Latency.Mean},
				"Min":          {s8.Quantiles.Min, s1.Quantiles.Min},
				"P50":          {s8.Quantiles.P50, s1.Quantiles.P50},
				"P90":          {s8.Quantiles.P90, s1.Quantiles.P90},
				"P99":          {s8.Quantiles.P99, s1.Quantiles.P99},
				"Max":          {s8.Quantiles.Max, s1.Quantiles.Max},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Errorf("%s: 8 workers %v, 1 worker %v — not bit-identical", stat, pair[0], pair[1])
				}
			}
		})
	}
}
