//go:build !race

// Allocation-budget regression guards for the pooled hot paths. The
// budgets pin the memory-diet pass (BENCH_kernel.json records the
// measured values) so a refactor can't silently reintroduce per-message
// or per-instance allocation. The race detector instruments allocation
// itself, so the file is excluded under -race and CI runs it in a
// separate uninstrumented step.
package repro

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// TestClusterBroadcastAllocBudget bounds the full-stack hot path of
// BenchmarkClusterBroadcast: one atomic broadcast ordered and delivered
// on a 3-process FD cluster. The pooling pass took it from 42 to a
// measured 11 allocs/op; the budget leaves slack for toolchain noise
// while staying far below the old cost.
func TestClusterBroadcastAllocBudget(t *testing.T) {
	const budget = 16.0
	delivered := 0
	c := NewCluster(ClusterConfig{
		Algorithm: FD,
		N:         3,
		OnDeliver: func(Delivery) { delivered++ },
	})
	iter := 0
	step := func() {
		c.Broadcast(iter%3, iter)
		c.Run(20 * time.Millisecond)
		iter++
	}
	// Warm the free lists: instance slots, message boxes, event records
	// and map/slice capacity all settle within the first few broadcasts.
	for i := 0; i < 64; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(256, step)
	if delivered == 0 {
		t.Fatal("no deliveries")
	}
	if allocs > budget {
		t.Fatalf("cluster broadcast hot path: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestMulticastSetAllocBudget bounds the set-addressed fan-out that
// shard-local group multicast rides: one MulticastSet to a registered
// 3-member set (one group of a Disjoint(12, 4) layout). Like the full
// fan-out above, the model allocates nothing once warm; the budget of 1
// tolerates amortised engine-queue growth. The cross-group path on top
// of this (the router's gram + per-group timestamp proposals, also
// set-multicasts) pools its envelopes but allocates one pending entry
// and its proposal map per multi-group message, so its budget is a
// handful of set-multicasts like this one plus O(1) small allocations
// per message — BenchmarkMultiGroupThroughput records the measured
// end-to-end figures.
func TestMulticastSetAllocBudget(t *testing.T) {
	const budget = 1.0
	eng := sim.New()
	nw := netmodel.New(eng, netmodel.DefaultConfig(12), func(int, int, any) {})
	sets := make([]netmodel.SetID, 4)
	for g := 0; g < 4; g++ {
		sets[g] = nw.RegisterSet([]int{3 * g, 3*g + 1, 3*g + 2})
	}
	iter := 0
	step := func() {
		g := iter % 4
		nw.MulticastSet(3*g, sets[g], nil)
		iter++
		if iter%256 == 0 {
			eng.Run()
		}
	}
	for i := 0; i < 1024; i++ {
		step()
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1024, step)
	if allocs > budget {
		t.Fatalf("set multicast hot path: %.2f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestNetModelMulticastAllocBudget bounds the contention model's
// message pipeline of BenchmarkNetModelMulticast: one multicast fan-out
// to 7 processes. With a pre-boxed payload the model itself allocates
// nothing once warm; the budget of 1 tolerates a stray amortised
// engine-queue growth.
func TestNetModelMulticastAllocBudget(t *testing.T) {
	const budget = 1.0
	eng := sim.New()
	nw := netmodel.New(eng, netmodel.DefaultConfig(8), func(int, int, any) {})
	iter := 0
	step := func() {
		nw.Multicast(iter%8, nil)
		iter++
		if iter%256 == 0 {
			eng.Run()
		}
	}
	for i := 0; i < 1024; i++ {
		step()
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1024, step)
	if allocs > budget {
		t.Fatalf("netmodel multicast hot path: %.2f allocs/op, budget %.0f", allocs, budget)
	}
}
