package repro

import (
	"testing"
	"time"
)

func TestQuickSteadyRun(t *testing.T) {
	res := RunSteady(Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   50,
		Warmup:       200 * time.Millisecond,
		Measure:      2 * time.Second,
		Drain:        5 * time.Second,
		Replications: 2,
	})
	if !res.Stable || res.Messages == 0 {
		t.Fatalf("facade steady run failed: %+v", res)
	}
	if res.Latency.Mean < 7 {
		t.Fatalf("latency %v below physical floor", res.Latency.Mean)
	}
}

func TestClusterBroadcastAndDeliver(t *testing.T) {
	var deliveries []Delivery
	c := NewCluster(ClusterConfig{
		Algorithm: FD,
		N:         3,
		OnDeliver: func(d Delivery) { deliveries = append(deliveries, d) },
	})
	id := c.Broadcast(0, "hello")
	c.RunUntilIdle()
	if len(deliveries) != 3 {
		t.Fatalf("got %d deliveries, want one per process", len(deliveries))
	}
	for _, d := range deliveries {
		if d.ID != id || d.Body != "hello" {
			t.Fatalf("delivery = %+v", d)
		}
	}
	if deliveries[0].At != 7*time.Millisecond {
		t.Fatalf("first delivery at %v, want 7ms", deliveries[0].At)
	}
}

func TestClusterScheduledOperations(t *testing.T) {
	count := 0
	c := NewCluster(ClusterConfig{
		Algorithm: GM,
		N:         3,
		QoS:       Detectors(10, 0, 0),
		OnDeliver: func(d Delivery) {
			if d.Process == 1 {
				count++
			}
		},
	})
	c.BroadcastAt(1, 5*time.Millisecond, "a")
	c.CrashAt(0, 20*time.Millisecond)
	c.BroadcastAt(2, 30*time.Millisecond, "b")
	c.Run(2 * time.Second)
	if count != 2 {
		t.Fatalf("p1 delivered %d messages, want 2 (before and after crash)", count)
	}
	if !c.Crashed(0) || c.Crashed(1) {
		t.Fatal("crash bookkeeping wrong")
	}
}

func TestClusterViewObserver(t *testing.T) {
	var views []ViewInfo
	c := NewCluster(ClusterConfig{
		Algorithm: GM,
		N:         3,
		OnView: func(v ViewInfo) {
			if v.Process == 2 {
				views = append(views, v)
			}
		},
	})
	c.SuspectAt(0, 1, 10*time.Millisecond, 50*time.Millisecond)
	c.Run(time.Second)
	// p2 sees: initial view, the view excluding p1, and the rejoin view.
	if len(views) < 3 {
		t.Fatalf("p2 observed %d views, want >= 3: %+v", len(views), views)
	}
	if len(views[0].Members) != 3 || views[0].ViewID != 1 {
		t.Fatalf("initial view = %+v", views[0])
	}
	if len(views[1].Members) != 2 {
		t.Fatalf("exclusion view = %+v", views[1])
	}
	last := views[len(views)-1]
	if len(last.Members) != 3 {
		t.Fatalf("final view = %+v, want p1 back", last)
	}
}

func TestClusterTraceAndStats(t *testing.T) {
	var events []NetEvent
	c := NewCluster(ClusterConfig{Algorithm: GMNonUniform, N: 3})
	c.SetTrace(func(ev NetEvent) { events = append(events, ev) })
	c.Broadcast(0, "x")
	c.RunUntilIdle()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	st := c.Stats()
	if st.Multicasts != 2 || st.Unicasts != 0 {
		t.Fatalf("non-uniform stats = %+v, want 2 multicasts", st)
	}
	c.SetTrace(nil) // must not panic
}

func TestClusterPreCrashed(t *testing.T) {
	got := 0
	c := NewCluster(ClusterConfig{
		Algorithm:  GM,
		N:          3,
		PreCrashed: []int{2},
		OnDeliver:  func(d Delivery) { got++ },
	})
	c.Broadcast(0, "y")
	c.RunUntilIdle()
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2 (survivors only)", got)
	}
}

func TestClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=0 did not panic")
		}
	}()
	NewCluster(ClusterConfig{N: 0})
}

func TestHelpers(t *testing.T) {
	if Milliseconds(1.5) != 1500*time.Microsecond {
		t.Fatal("Milliseconds conversion wrong")
	}
	q := Detectors(10, 100, 5)
	if q.TD != 10*time.Millisecond || q.TMR != 100*time.Millisecond || q.TM != 5*time.Millisecond {
		t.Fatalf("Detectors = %+v", q)
	}
	if Perfect() != (QoS{}) {
		t.Fatal("Perfect() not zero QoS")
	}
}

func TestClusterWithHeartbeatDetector(t *testing.T) {
	delivered := make(map[int]int)
	c := NewCluster(ClusterConfig{
		Algorithm: FD,
		N:         3,
		Heartbeat: &HeartbeatConfig{Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond},
		OnDeliver: func(d Delivery) { delivered[d.Process]++ },
	})
	c.Broadcast(0, "x")
	c.CrashAt(0, 20*time.Millisecond)
	c.BroadcastAt(1, 30*time.Millisecond, "y")
	c.Run(3 * time.Second)
	// Survivors must deliver both messages; detection runs on heartbeats.
	if delivered[1] != 2 || delivered[2] != 2 {
		t.Fatalf("deliveries = %v, want 2 at each survivor", delivered)
	}
	// Heartbeat traffic must be visible on the wire.
	if c.Stats().Multicasts < 100 {
		t.Fatalf("multicasts = %d, expected heartbeat traffic", c.Stats().Multicasts)
	}
}

func TestClusterHeartbeatWithGM(t *testing.T) {
	views := 0
	c := NewCluster(ClusterConfig{
		Algorithm: GM,
		N:         3,
		Heartbeat: &HeartbeatConfig{Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond},
		OnView:    func(ViewInfo) { views++ },
	})
	c.CrashAt(2, 50*time.Millisecond)
	c.Run(2 * time.Second)
	// Initial views (3 processes) plus the exclusion change (2 survivors).
	if views < 5 {
		t.Fatalf("view notifications = %d, want >= 5", views)
	}
}

func TestClusterWorkloadAndLoadMethods(t *testing.T) {
	// A cluster with the built-in Poisson workload, shaped interactively:
	// mute sender 2 for a window, pause everyone for another, and watch
	// the load events apply in order.
	var events []string
	var eventTimes []time.Duration
	perSender := make(map[int]int)
	c := NewCluster(ClusterConfig{
		Algorithm:  FD,
		N:          3,
		Throughput: 300,
		OnDeliver: func(d Delivery) {
			if d.Process == 0 {
				perSender[int(d.ID.Origin)]++
			}
		},
		OnLoad: func(at time.Duration, ev LoadEvent) {
			events = append(events, ev.String())
			eventTimes = append(eventTimes, at)
		},
	})
	c.MuteAt(100*time.Millisecond, 2)
	c.UnmuteAt(400*time.Millisecond, 2)
	c.PauseAt(600 * time.Millisecond)
	c.ResumeAt(700 * time.Millisecond)
	c.SetRateAt(800*time.Millisecond, int(AllSenders), 600)
	// Silence the workload before draining: RunUntilIdle never returns
	// while a Poisson source keeps scheduling.
	c.PauseAt(1200 * time.Millisecond)
	c.Run(1200 * time.Millisecond)
	c.RunUntilIdle()

	want := []string{"mute p2", "unmute p2", "pause", "resume", "rate all=600/s", "pause"}
	if len(events) != len(want) {
		t.Fatalf("observed load events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
	for i, at := range eventTimes {
		if at != []time.Duration{100, 400, 600, 700, 800, 1200}[i]*time.Millisecond {
			t.Fatalf("event %d applied at %v", i, at)
		}
	}
	for s := 0; s < 3; s++ {
		if perSender[s] == 0 {
			t.Fatalf("sender %d delivered nothing; workload not running: %v", s, perSender)
		}
	}
}

func TestClusterLoadPlanAtConstruction(t *testing.T) {
	// The same shaping as a ClusterConfig.Load timeline, with a silent
	// (zero-throughput) workload raised mid-run by a plan event.
	delivered := 0
	c := NewCluster(ClusterConfig{
		Algorithm: GM,
		N:         3,
		Load: NewLoadPlan().
			Rate(200*time.Millisecond, AllSenders, 900).
			Pause(1100 * time.Millisecond), // silence before the idle drain
		OnDeliver: func(d Delivery) {
			if d.Process == 0 {
				delivered++
			}
		},
	})
	c.Run(150 * time.Millisecond)
	if delivered != 0 {
		t.Fatalf("%d deliveries before the rate change raised a silent workload", delivered)
	}
	c.Run(time.Second)
	c.RunUntilIdle()
	if delivered == 0 {
		t.Fatal("no deliveries after the plan raised the rate")
	}
}

func TestClusterLoadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load event accepted")
		}
	}()
	c := NewCluster(ClusterConfig{Algorithm: FD, N: 3})
	c.MuteAt(time.Millisecond, 7)
}
