package repro

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestGoldenFigure1Trace pins the exact wire-level sequence of a single
// failure-free broadcast — the paper's Figure 1 — for all three
// algorithms. Any change to the protocols' message pattern shows up here.
func TestGoldenFigure1Trace(t *testing.T) {
	capture := func(alg Algorithm) []string {
		var lines []string
		c := NewCluster(ClusterConfig{Algorithm: alg, N: 5})
		c.SetTrace(func(ev NetEvent) {
			if ev.Stage != "wire" {
				return
			}
			to := "all"
			if ev.To >= 0 {
				to = fmt.Sprintf("p%d", ev.To)
			}
			name := ev.Payload
			if i := strings.LastIndex(name, "."); i >= 0 {
				name = name[i+1:]
			}
			if i := strings.Index(name, "["); i >= 0 {
				name = name[:i]
			}
			lines = append(lines, fmt.Sprintf("%v %s p%d->%s",
				int64(ev.At/time.Millisecond), name, ev.From, to))
		})
		c.Broadcast(0, "m")
		c.RunUntilIdle()
		return lines
	}

	golden := map[Algorithm][]string{
		FD: {
			"1 Msg p0->all",        // A-broadcast(m), reliable broadcast
			"2 MsgPropose p0->all", // consensus proposal (round-1 fast path)
			"5 MsgAck p1->p0",
			"6 MsgAck p2->p0",
			"7 MsgAck p3->p0",
			"8 MsgAck p4->p0",
			"10 MsgDecide p0->all",
		},
		GM: {
			"1 MsgData p0->all",
			"2 MsgSeqNum p0->all",
			"5 MsgAck p1->p0",
			"6 MsgAck p2->p0",
			"7 MsgAck p3->p0",
			"8 MsgAck p4->p0",
			"10 MsgDeliver p0->all",
		},
		GMNonUniform: {
			"1 MsgData p0->all",
			"2 MsgSeqNum p0->all",
		},
	}
	for alg, want := range golden {
		got := capture(alg)
		if len(got) != len(want) {
			t.Fatalf("%v: trace = %v, want %v", alg, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: trace line %d = %q, want %q", alg, i, got[i], want[i])
			}
		}
	}
}

// TestFigure1PatternsAligned verifies the §4.4 superposition directly:
// line for line, FD and GM wire events differ only in the message name.
func TestFigure1PatternsAligned(t *testing.T) {
	shape := func(alg Algorithm) []string {
		var lines []string
		c := NewCluster(ClusterConfig{Algorithm: alg, N: 5})
		c.SetTrace(func(ev NetEvent) {
			if ev.Stage == "wire" {
				lines = append(lines, fmt.Sprintf("%v %d %d", ev.At, ev.From, ev.To))
			}
		})
		c.Broadcast(0, "m")
		c.RunUntilIdle()
		return lines
	}
	fd, gm := shape(FD), shape(GM)
	if len(fd) != len(gm) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(fd), len(gm))
	}
	for i := range fd {
		if fd[i] != gm[i] {
			t.Fatalf("pattern line %d differs: %q vs %q", i, fd[i], gm[i])
		}
	}
}
