package repro

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Delivery reports one A-delivery observed at one process.
type Delivery struct {
	Process int
	ID      MessageID
	Body    any
	At      time.Duration // virtual time since simulation start
}

// ViewInfo reports one membership view entered by a process (GM
// algorithms only).
type ViewInfo struct {
	Process int
	ViewID  uint64
	Members []int
	At      time.Duration
}

// NetEvent is a message lifecycle point in the network model, for traces.
type NetEvent struct {
	Stage   string // "send", "wire", "deliver", "drop"
	From    int
	To      int // -1 for the wire stage of multicasts
	Payload string
	At      time.Duration
}

// NetStats snapshots network activity counters.
type NetStats struct {
	Unicasts   uint64
	Multicasts uint64
	WireSlots  uint64
	Deliveries uint64
	// Lost counts message copies discarded by a partition or lossy link.
	Lost uint64
}

// ClusterConfig configures an interactive simulated cluster.
type ClusterConfig struct {
	// Algorithm selects the atomic broadcast (default FD).
	Algorithm Algorithm
	// N is the number of processes.
	N int
	// Lambda is the CPU/wire cost ratio of the network model (default 1,
	// the paper's setting).
	Lambda float64
	// QoS parameterises the failure detectors (default: perfect).
	QoS QoS
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// PreCrashed lists processes crashed long before the start. It is a
	// constructor for the plan's PreCrash events — the two spellings
	// produce bit-identical runs.
	PreCrashed []int
	// Plan is a fault- and environment-injection timeline installed at
	// construction: crashes and recoveries, suspicion bursts, partitions
	// and heals, link faults. The interactive fault methods (CrashAt,
	// SuspectAt, RecoverAt, PartitionAt, HealAt, SetLinkAt) schedule the
	// same events through the same machinery, so a scripted session and a
	// planned one are interchangeable.
	Plan *FaultPlan
	// Throughput, when positive, runs the paper's Poisson workload on the
	// cluster: every non-pre-crashed process A-broadcasts nil bodies at
	// rate Throughput/N, exactly as experiments do. Zero starts the
	// sources silent — the load methods (SetRateAt and friends) can still
	// raise them mid-run.
	Throughput float64
	// Load is a workload-shaping timeline installed at construction: rate
	// changes, bursts, per-sender mutes, pauses. The interactive load
	// methods (SetRateAt, BurstAt, MuteAt, UnmuteAt, PauseAt, ResumeAt)
	// schedule the same events through the same machinery.
	Load *LoadPlan
	// OnDeliver observes every A-delivery at every process.
	OnDeliver func(d Delivery)
	// OnView observes view installations (GM algorithms only).
	OnView func(v ViewInfo)
	// OnFault, if non-nil, observes every plan event at the instant it
	// applies.
	OnFault func(at time.Duration, ev PlanEvent)
	// OnLoad, if non-nil, observes every load event at the instant it
	// applies.
	OnLoad func(at time.Duration, ev LoadEvent)
	// Heartbeat, if non-nil, replaces the abstract QoS failure-detector
	// model with a concrete heartbeat detector whose messages share the
	// contended network (see internal/hbfd). QoS should then be zero.
	Heartbeat *HeartbeatConfig
	// Topology is the connectivity graph the network routes over: nil is
	// FullMesh(N), the paper's shared Ethernet. The topology's N must
	// equal the cluster's N.
	Topology *Topology
	// Groups, when non-nil, shards the ordering layer: each group runs
	// its own protocol stack, Broadcast addresses the sender's home group
	// and Multicast any destination set, with cross-group messages merged
	// into one total order at the destinations. A nil (or single-group)
	// map is bit-identical to the paper's one-group broadcast path.
	// Crash-recovery (Recover events) is supported in groups mode for the
	// FD algorithm only.
	Groups *GroupMap
	// CrossShard is the fraction of the built-in Poisson workload sent
	// cross-shard (home group plus one uniformly random other group);
	// the rest stays shard-local. Groups mode only; ShardMixAt (or a
	// ShardMix load event) changes it mid-run.
	CrossShard float64
	// ParallelSim executes the simulation's conflict domains concurrently
	// inside safe windows bounded by the minimum cross-domain wire cost.
	// Every observable — deliveries, views, traces, stats — is
	// bit-identical to the serial engine at any worker count; the switch
	// trades nothing but wall-clock time. How far it helps depends on the
	// topology: shared-wire graphs (FullMesh, Ring, Star, Clique, Geo)
	// collapse to a single conflict domain, while fully directed graphs
	// like Topology OneWayRing split into one domain per process.
	// Configurations whose randomness crosses domains mid-run — a fault
	// plan with link loss, or groups mode with cross-shard mixing — are
	// detected and executed serially for exactness. Interactive calls
	// that would introduce such randomness into a multi-domain run
	// (SetLinkAt with loss, ShardMixAt) panic instead of degrading
	// silently; plan them in ClusterConfig.Plan/CrossShard so the
	// cluster serialises itself up front.
	ParallelSim bool
	// SimWorkers caps the worker goroutines of a parallel run; zero or
	// negative means one per CPU. Ignored unless ParallelSim is set. The
	// worker count never affects results, only speed.
	SimWorkers int
}

// HeartbeatConfig tunes the concrete heartbeat failure detector: the
// Interval between heartbeats (default 10 ms) and the Timeout of silence
// before suspicion (default 3x Interval). It is the same type
// Config.Detector and Sweep.Detectors take, so one tuning value drives
// both the interactive Cluster and the experiment Runner.
type HeartbeatConfig = experiment.Heartbeat

// Cluster is an interactively driven simulated cluster running one of the
// paper's atomic broadcast algorithms. All methods must be called from a
// single goroutine; time only advances inside Run calls.
//
// Faults — crashes, recoveries, wrong suspicions, partitions and heals,
// link loss and delay — are FaultPlan events: give a full timeline in
// ClusterConfig.Plan, or script interactively with the *At methods and
// Apply, which schedule the same events through the same machinery.
// Load — the built-in Poisson workload's rate, bursts, mutes and pauses
// — is LoadPlan events the same way: ClusterConfig.Throughput and Load
// at construction, SetRateAt/BurstAt/MuteAt/UnmuteAt/PauseAt/ResumeAt
// and ApplyLoad interactively.
//
// With ClusterConfig.ParallelSim the engine advances independent
// conflict domains concurrently between Run calls, yet every observer
// fires in the same order with the same timestamps as the serial
// engine — scripted sessions need no changes and replay bit-identically
// either way. In groups mode, crash-recovery (RecoverAt, Recover plan
// events) is supported for the FD algorithm only; NewCluster rejects a
// GM-algorithm plan containing Recover events at construction.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine
	sys   *proto.System
	bcast []func(body any) MessageID
	// core is the shared builder's assembled system; recovery (hbfd
	// restarts, GM rejoin incarnations) delegates to it.
	core   *experiment.Core
	faults *experiment.Faults
	loads  *experiment.Loads
	// sentBy counts A-broadcast calls per process: the ID-sequence base a
	// recovered GM incarnation continues from (Core.SentBy).
	sentBy []uint64
	// crossFrac/mixRng/mixDests drive the workload's shard-local vs
	// cross-shard mix in groups mode; mixRng is drawn only for mixing, so
	// a zero fraction is bit-identical to a pure shard-local workload.
	// mixDests is per-sender scratch: workload sources of different
	// conflict domains fire concurrently under ParallelSim.
	crossFrac float64
	mixRng    *sim.Rand
	mixDests  [][2]int
}

// NewCluster builds a cluster. It panics on invalid configuration.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = FD
	}
	if cfg.N < 1 {
		panic(fmt.Sprintf("repro: N = %d", cfg.N))
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if err := cfg.Plan.Validate(cfg.N); err != nil {
		panic(err)
	}
	if cfg.Topology != nil && cfg.Topology.N != cfg.N {
		panic(fmt.Sprintf("repro: topology %q is for %d processes, cluster has N=%d",
			cfg.Topology.Name, cfg.Topology.N, cfg.N))
	}
	if err := cfg.Load.Validate(cfg.N); err != nil {
		panic(err)
	}
	if cfg.Throughput < 0 {
		panic("repro: negative throughput")
	}
	if cfg.Groups != nil {
		if err := cfg.Groups.Validate(cfg.N, cfg.Topology); err != nil {
			panic(err)
		}
		if cfg.Groups.Trivial() {
			cfg.Groups = nil // single group covering everyone: the broadcast path
		}
	}
	if cfg.CrossShard < 0 || cfg.CrossShard > 1 || cfg.CrossShard != cfg.CrossShard {
		panic(fmt.Sprintf("repro: CrossShard = %v outside [0, 1]", cfg.CrossShard))
	}
	if cfg.Groups == nil {
		if cfg.CrossShard != 0 {
			panic("repro: CrossShard needs a multi-group ClusterConfig.Groups")
		}
		if cfg.Load != nil {
			for _, ev := range cfg.Load.Events {
				if _, ok := ev.(ShardMix); ok {
					panic("repro: a ShardMix load event needs a multi-group ClusterConfig.Groups")
				}
			}
		}
	} else if cfg.Algorithm != FD && cfg.Plan != nil {
		for _, ev := range cfg.Plan.Events {
			if _, ok := ev.(Recover); ok {
				panic("repro: crash-recovery is unsupported for the GM algorithms in groups mode")
			}
		}
	}
	// Pre-crashes: the PreCrashed list first, then the plan's PreCrash
	// events, duplicates dropped.
	var preOrder []proto.PID
	preCrashed := make(map[proto.PID]bool, len(cfg.PreCrashed))
	addPre := func(p proto.PID) {
		if int(p) < 0 || int(p) >= cfg.N {
			panic(fmt.Sprintf("repro: pre-crashed process %d out of range", p))
		}
		if !preCrashed[p] {
			preCrashed[p] = true
			preOrder = append(preOrder, p)
		}
	}
	for _, p := range cfg.PreCrashed {
		addPre(proto.PID(p))
	}
	if cfg.Plan != nil {
		for _, ev := range cfg.Plan.Events {
			if pre, ok := ev.(PreCrash); ok {
				addPre(pre.P)
			}
		}
	}

	c := &Cluster{cfg: cfg}
	var onView func(p proto.PID, v gm.View, at sim.Time)
	if cfg.OnView != nil {
		onView = func(pid proto.PID, v gm.View, at sim.Time) {
			ms := make([]int, len(v.Members))
			for i, m := range v.Members {
				ms[i] = int(m)
			}
			cfg.OnView(ViewInfo{
				Process: int(pid),
				ViewID:  v.ID,
				Members: ms,
				At:      at.Duration(),
			})
		}
	}
	// Configurations whose randomness crosses domains mid-run must fall
	// back to a single domain for bit-exactness: lossy link faults draw
	// on the network's shared fault stream, cross-shard mixing on the
	// shared mix stream. The window machinery still runs; it just has
	// one domain to advance. (Mirrors the experiment runner's gating.)
	serialDomains := false
	if cfg.Plan != nil {
		for _, ev := range cfg.Plan.Events {
			if lf, ok := ev.(LinkFault); ok && lf.Loss > 0 {
				serialDomains = true
			}
		}
	}
	if cfg.Groups != nil {
		if cfg.CrossShard > 0 {
			serialDomains = true
		}
		if cfg.Load != nil {
			for _, ev := range cfg.Load.Events {
				if _, ok := ev.(ShardMix); ok {
					serialDomains = true
				}
			}
		}
	}
	c.core = experiment.NewCore(experiment.CoreConfig{
		Algorithm:     cfg.Algorithm,
		N:             cfg.N,
		Lambda:        cfg.Lambda,
		Topology:      cfg.Topology,
		QoS:           cfg.QoS,
		Detector:      cfg.Heartbeat,
		Renumber:      true,
		Seed:          cfg.Seed,
		PreCrashed:    preOrder,
		Groups:        cfg.Groups,
		Parallel:      cfg.ParallelSim,
		Workers:       cfg.SimWorkers,
		SerialDomains: serialDomains,
		Deliver: func(pid proto.PID, id proto.MsgID, body any, at sim.Time) {
			if cfg.OnDeliver != nil {
				cfg.OnDeliver(Delivery{
					Process: int(pid),
					ID:      id,
					Body:    body,
					At:      at.Duration(),
				})
			}
		},
		OnView: onView,
	})
	eng := c.core.Eng
	c.eng = eng
	c.sys = c.core.Sys
	c.bcast = c.core.Bcast
	c.sentBy = c.core.SentBy
	c.faults = &experiment.Faults{
		Sys:     c.sys,
		Recover: c.core.Recover,
		Healed:  c.core.Healed,
		OnEvent: func(ev PlanEvent) {
			if cfg.OnFault != nil {
				cfg.OnFault(eng.Now().Duration(), ev)
			}
		},
	}
	if cfg.Plan != nil {
		c.faults.Install(cfg.Plan)
	}

	// The Poisson workload: one source per non-pre-crashed process at
	// rate Throughput/N (possibly zero, i.e. silent until a load event
	// raises it), on an independent random stream — mirroring the
	// experiment scenarios' Setup.
	senders := make([]int, 0, len(c.core.Members))
	for _, p := range c.core.Members {
		senders = append(senders, int(p))
	}
	c.loads = experiment.NewSpreadLoads(eng, sim.NewRand(cfg.Seed).Fork("load"),
		cfg.Throughput, cfg.N, senders, func(s int) {
			if c.sys.Proc(proto.PID(s)).Crashed() {
				return // crashed mid-run: no load generated
			}
			c.sentBy[s]++
			if c.cfg.Groups != nil {
				c.mixedMulticast(s, nil)
				return
			}
			c.bcast[s](nil)
		})
	if cfg.Groups != nil {
		c.crossFrac = cfg.CrossShard
		c.mixRng = sim.NewRand(cfg.Seed).Fork("mix")
		c.mixDests = make([][2]int, cfg.N)
		c.loads.OnShardMix = func(fraction float64) { c.crossFrac = fraction }
	}
	c.loads.OnEvent = func(ev LoadEvent) {
		if cfg.OnLoad != nil {
			cfg.OnLoad(eng.Now().Duration(), ev)
		}
	}
	if cfg.Load != nil {
		c.loads.Install(cfg.Load)
	}
	return c
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.eng.Now().Duration() }

// Broadcast A-broadcasts body from process p at the current instant and
// returns the message ID.
func (c *Cluster) Broadcast(p int, body any) MessageID {
	c.sentBy[p]++
	return c.bcast[p](body)
}

// BroadcastAt schedules an A-broadcast from process p at virtual time at.
func (c *Cluster) BroadcastAt(p int, at time.Duration, body any) {
	c.eng.Schedule(sim.Time(at), func() {
		c.sentBy[p]++
		c.bcast[p](body)
	})
}

// Multicast A-multicasts body from process p to the given destination
// groups at the current instant and returns the message ID: the genuine
// atomic multicast primitive, delivered exactly once at every live
// member of the destination groups in one total order. Groups mode only
// (ClusterConfig.Groups non-nil); destinations may come in any order.
func (c *Cluster) Multicast(p int, dests []int, body any) MessageID {
	c.sentBy[p]++
	return c.multicast(p, dests, body)
}

// MulticastAt schedules an A-multicast from process p to the given
// destination groups at virtual time at.
func (c *Cluster) MulticastAt(p int, at time.Duration, dests []int, body any) {
	ds := append([]int(nil), dests...)
	c.eng.Schedule(sim.Time(at), func() {
		c.sentBy[p]++
		c.multicast(p, ds, body)
	})
}

func (c *Cluster) multicast(p int, dests []int, body any) MessageID {
	if c.cfg.Groups == nil {
		panic("repro: Multicast needs a multi-group ClusterConfig.Groups")
	}
	ds := append([]int(nil), dests...)
	sort.Ints(ds)
	return c.core.Mcast(proto.PID(p), ds, body)
}

// mixedMulticast sends one workload message from s: shard-local to its
// home group, or — with probability crossFrac — to the home group plus
// one uniformly random other group (the experiment workload's mix).
func (c *Cluster) mixedMulticast(s int, body any) {
	m := c.cfg.Groups
	dests := c.mixDests[s][:1]
	home := m.Home(proto.PID(s))
	dests[0] = home
	if c.crossFrac > 0 && m.NumGroups() > 1 && c.mixRng.Float64() < c.crossFrac {
		other := c.mixRng.Intn(m.NumGroups() - 1)
		if other >= home {
			other++
		}
		if other < home {
			dests = append(dests[:0], other, home)
		} else {
			dests = append(dests, other)
		}
	}
	c.core.Mcast(proto.PID(s), dests, body)
}

// Apply schedules one fault-plan event at its instant — the primitive
// every *At fault method below is sugar for. It panics on an invalid
// event or one scheduled in the simulation's past.
func (c *Cluster) Apply(ev PlanEvent) {
	if _, pre := ev.(PreCrash); pre {
		panic("repro: PreCrash is an initial condition; list it in ClusterConfig")
	}
	if lf, ok := ev.(LinkFault); ok && lf.Loss > 0 && c.eng.Domains() > 1 {
		panic("repro: lossy link faults draw on a shared random stream and need a single conflict domain; list the fault in ClusterConfig.Plan (the cluster then serialises itself) or leave ParallelSim off")
	}
	if err := (&FaultPlan{Events: []PlanEvent{ev}}).Validate(c.cfg.N); err != nil {
		panic(err)
	}
	c.faults.Schedule(ev)
}

// CrashAt schedules a crash of process p at virtual time at.
func (c *Cluster) CrashAt(p int, at time.Duration) {
	c.Apply(Crash{At: at, P: proto.PID(p)})
}

// RecoverAt schedules a recovery of crashed process p at virtual time at:
// GM algorithms rejoin through the membership service with state
// transfer, the crash-stop FD algorithm resumes from its pre-crash state
// (see the Recover event).
func (c *Cluster) RecoverAt(p int, at time.Duration) {
	c.Apply(Recover{At: at, P: proto.PID(p)})
}

// SuspectAt schedules a wrong suspicion: monitor starts suspecting target
// at the given instant, for the given duration (0 is an instantaneous
// mistake whose edges still fire).
func (c *Cluster) SuspectAt(monitor, target int, at, duration time.Duration) {
	c.Apply(SuspicionBurst{At: at, P: proto.PID(target), For: duration, By: []ProcessID{proto.PID(monitor)}})
}

// PartitionAt schedules a network partition into the given groups at
// virtual time at; processes listed in no group are isolated alone.
func (c *Cluster) PartitionAt(at time.Duration, groups ...[]int) {
	ev := Partition{At: at, Groups: make([][]proto.PID, len(groups))}
	for gi, g := range groups {
		ev.Groups[gi] = make([]proto.PID, len(g))
		for i, p := range g {
			ev.Groups[gi][i] = proto.PID(p)
		}
	}
	c.Apply(ev)
}

// HealAt schedules the removal of the partition in force at virtual time
// at.
func (c *Cluster) HealAt(at time.Duration) {
	c.Apply(Heal{At: at})
}

// SetLinkAt schedules a fault on the directed link from → to at virtual
// time at: loss probability per message copy plus extra delay. Zero both
// to clear the link.
func (c *Cluster) SetLinkAt(at time.Duration, from, to int, loss float64, extraDelay time.Duration) {
	c.Apply(LinkFault{At: at, From: proto.PID(from), To: proto.PID(to), Loss: loss, ExtraDelay: extraDelay})
}

// ApplyLoad schedules one load-plan event at its instant — the primitive
// every load method below is sugar for. The cluster's Poisson sources
// exist whatever ClusterConfig.Throughput was (a zero throughput just
// starts them silent), so load events always have something to act on.
// It panics on an invalid event or one scheduled in the simulation's
// past.
func (c *Cluster) ApplyLoad(ev LoadEvent) {
	if mix, ok := ev.(ShardMix); ok && mix.Fraction > 0 && c.eng.Domains() > 1 {
		panic("repro: cross-shard mixing draws on a shared random stream and needs a single conflict domain; set ClusterConfig.CrossShard or list the ShardMix in ClusterConfig.Load (the cluster then serialises itself) or leave ParallelSim off")
	}
	if err := (&LoadPlan{Events: []LoadEvent{ev}}).Validate(c.cfg.N); err != nil {
		panic(err)
	}
	c.loads.Schedule(ev)
}

// SetRateAt schedules a rate change at virtual time at: sender
// AllSenders (-1) re-spreads rate as a new total throughput (each
// process sends at rate/N), a concrete sender gets rate as its absolute
// per-second rate. The gap in flight rescales deterministically, so
// setting the current rate is a bit-identical no-op.
func (c *Cluster) SetRateAt(at time.Duration, sender int, rate float64) {
	c.ApplyLoad(RateChange{At: at, Sender: proto.PID(sender), Rate: rate})
}

// BurstAt schedules a rate spike: the rate of sender (AllSenders for
// everyone) is multiplied by factor during [at, at+d).
func (c *Cluster) BurstAt(at, d time.Duration, sender int, factor float64) {
	c.ApplyLoad(Burst{At: at, For: d, Sender: proto.PID(sender), Factor: factor})
}

// MuteAt schedules a mute of sender (AllSenders for everyone) at virtual
// time at: its source stops firing but keeps its logical rate and frozen
// gap for UnmuteAt.
func (c *Cluster) MuteAt(at time.Duration, sender int) {
	c.ApplyLoad(Mute{At: at, Sender: proto.PID(sender)})
}

// UnmuteAt schedules the lifting of a mute of sender at virtual time at.
func (c *Cluster) UnmuteAt(at time.Duration, sender int) {
	c.ApplyLoad(Unmute{At: at, Sender: proto.PID(sender)})
}

// ShardMixAt schedules a change of the built-in workload's cross-shard
// fraction at virtual time at (groups mode only): fraction of messages
// go cross-shard from then on, the rest stay shard-local.
func (c *Cluster) ShardMixAt(at time.Duration, fraction float64) {
	if c.cfg.Groups == nil {
		panic("repro: ShardMixAt needs a multi-group ClusterConfig.Groups")
	}
	c.ApplyLoad(ShardMix{At: at, Fraction: fraction})
}

// PauseAt schedules a pause of the whole workload at virtual time at.
func (c *Cluster) PauseAt(at time.Duration) { c.ApplyLoad(Pause{At: at}) }

// ResumeAt schedules the lifting of a pause at virtual time at; senders
// muted individually stay muted.
func (c *Cluster) ResumeAt(at time.Duration) { c.ApplyLoad(Resume{At: at}) }

// Run advances virtual time by d, processing all events on the way.
func (c *Cluster) Run(d time.Duration) {
	c.eng.RunUntil(c.eng.Now().Add(d))
}

// RunUntilIdle processes events until none remain. A cluster whose
// Poisson workload is active never idles — it keeps scheduling arrivals
// forever — so pause or silence the workload (PauseAt, SetRateAt with
// rate 0) before draining with this method; use Run to advance a live
// workload by a bounded amount instead.
func (c *Cluster) RunUntilIdle() { c.eng.Run() }

// Crashed reports whether process p has crashed.
func (c *Cluster) Crashed(p int) bool { return c.sys.Proc(proto.PID(p)).Crashed() }

// Stats snapshots network activity so far.
func (c *Cluster) Stats() NetStats {
	counters := c.sys.Net.Counters()
	return NetStats{
		Unicasts:   counters.Unicasts,
		Multicasts: counters.Multicasts,
		WireSlots:  counters.WireSlots,
		Deliveries: counters.Deliveries,
		Lost:       counters.Lost,
	}
}

// SetTrace installs a network-level observer (nil removes it). Useful for
// printing Fig. 1-style message diagrams; see examples/trace.
func (c *Cluster) SetTrace(fn func(NetEvent)) {
	if fn == nil {
		c.sys.Net.SetTrace(nil)
		return
	}
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		fn(NetEvent{
			Stage:   ev.Kind.String(),
			From:    ev.From,
			To:      ev.To,
			Payload: netmodel.PayloadName(ev.Payload),
			At:      ev.At.Duration(),
		})
	})
}

// Perfect returns a QoS with instant detection and no mistakes.
func Perfect() QoS { return QoS{} }

// Detectors returns a QoS with the given metrics in milliseconds, the
// unit the paper uses throughout.
func Detectors(tdMs, tmrMs, tmMs float64) QoS {
	return fd.QoS{TD: Milliseconds(tdMs), TMR: Milliseconds(tmrMs), TM: Milliseconds(tmMs)}
}
