package repro

import (
	"fmt"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/experiment"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/hbfd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/seqabcast"
	"repro/internal/sim"
)

// Delivery reports one A-delivery observed at one process.
type Delivery struct {
	Process int
	ID      MessageID
	Body    any
	At      time.Duration // virtual time since simulation start
}

// ViewInfo reports one membership view entered by a process (GM
// algorithms only).
type ViewInfo struct {
	Process int
	ViewID  uint64
	Members []int
	At      time.Duration
}

// NetEvent is a message lifecycle point in the network model, for traces.
type NetEvent struct {
	Stage   string // "send", "wire", "deliver", "drop"
	From    int
	To      int // -1 for the wire stage of multicasts
	Payload string
	At      time.Duration
}

// NetStats snapshots network activity counters.
type NetStats struct {
	Unicasts   uint64
	Multicasts uint64
	WireSlots  uint64
	Deliveries uint64
}

// ClusterConfig configures an interactive simulated cluster.
type ClusterConfig struct {
	// Algorithm selects the atomic broadcast (default FD).
	Algorithm Algorithm
	// N is the number of processes.
	N int
	// Lambda is the CPU/wire cost ratio of the network model (default 1,
	// the paper's setting).
	Lambda float64
	// QoS parameterises the failure detectors (default: perfect).
	QoS QoS
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// PreCrashed lists processes crashed long before the start.
	PreCrashed []int
	// OnDeliver observes every A-delivery at every process.
	OnDeliver func(d Delivery)
	// OnView observes view installations (GM algorithms only).
	OnView func(v ViewInfo)
	// Heartbeat, if non-nil, replaces the abstract QoS failure-detector
	// model with a concrete heartbeat detector whose messages share the
	// contended network (see internal/hbfd). QoS should then be zero.
	Heartbeat *HeartbeatConfig
}

// HeartbeatConfig tunes the concrete heartbeat failure detector: the
// Interval between heartbeats (default 10 ms) and the Timeout of silence
// before suspicion (default 3x Interval). It is the same type
// Config.Detector and Sweep.Detectors take, so one tuning value drives
// both the interactive Cluster and the experiment Runner.
type HeartbeatConfig = experiment.Heartbeat

// Cluster is an interactively driven simulated cluster running one of the
// paper's atomic broadcast algorithms. All methods must be called from a
// single goroutine; time only advances inside Run calls.
type Cluster struct {
	cfg      ClusterConfig
	eng      *sim.Engine
	sys      *proto.System
	bcast    []func(body any) MessageID
	wrappers []*hbfd.Wrapper // non-nil entries when Heartbeat is enabled
}

// NewCluster builds a cluster. It panics on invalid configuration.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = FD
	}
	if cfg.N < 1 {
		panic(fmt.Sprintf("repro: N = %d", cfg.N))
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng := sim.New()
	netCfg := netmodel.Config{N: cfg.N, Lambda: Milliseconds(cfg.Lambda), Slot: time.Millisecond}
	sys := proto.NewSystem(eng, netCfg, cfg.QoS, sim.NewRand(cfg.Seed))
	c := &Cluster{cfg: cfg, eng: eng, sys: sys, bcast: make([]func(any) MessageID, cfg.N)}

	preCrashed := make(map[int]bool, len(cfg.PreCrashed))
	for _, p := range cfg.PreCrashed {
		preCrashed[p] = true
	}
	var members []proto.PID
	for p := 0; p < cfg.N; p++ {
		if !preCrashed[p] {
			members = append(members, proto.PID(p))
		}
	}

	c.wrappers = make([]*hbfd.Wrapper, cfg.N)
	for p := 0; p < cfg.N; p++ {
		pid := proto.PID(p)
		procIdx := p
		deliver := func(id proto.MsgID, body any) {
			if cfg.OnDeliver != nil {
				cfg.OnDeliver(Delivery{
					Process: procIdx,
					ID:      id,
					Body:    body,
					At:      eng.Now().Duration(),
				})
			}
		}
		// build constructs the algorithm endpoint against rt and returns
		// the handler plus the broadcast entry point.
		build := func(rt proto.Runtime) (proto.Handler, func(any) MessageID) {
			switch cfg.Algorithm {
			case FD:
				proc := ctabcast.New(rt, ctabcast.Config{Deliver: deliver, Renumber: true})
				return proc, proc.ABroadcast
			case GM, GMNonUniform:
				scfg := seqabcast.Config{
					Deliver:        deliver,
					Uniform:        cfg.Algorithm == GM,
					InitialMembers: members,
				}
				if cfg.OnView != nil {
					scfg.OnView = func(v gm.View) {
						ms := make([]int, len(v.Members))
						for i, m := range v.Members {
							ms[i] = int(m)
						}
						cfg.OnView(ViewInfo{
							Process: procIdx,
							ViewID:  v.ID,
							Members: ms,
							At:      eng.Now().Duration(),
						})
					}
				}
				proc := seqabcast.New(rt, scfg)
				return proc, proc.ABroadcast
			default:
				panic(fmt.Sprintf("repro: unknown algorithm %v", cfg.Algorithm))
			}
		}
		if hb := cfg.Heartbeat; hb != nil {
			var bcast func(any) MessageID
			w := hbfd.Wrap(sys.Proc(pid), hbfd.Config{Interval: hb.Interval, Timeout: hb.Timeout},
				func(rt proto.Runtime) proto.Handler {
					h, bc := build(rt)
					bcast = bc
					return h
				})
			c.wrappers[p] = w
			sys.SetHandler(pid, w)
			c.bcast[p] = bcast
			continue
		}
		handler, bcast := build(sys.Proc(pid))
		sys.SetHandler(pid, handler)
		c.bcast[p] = bcast
	}
	for _, p := range cfg.PreCrashed {
		sys.PreCrash(proto.PID(p))
	}
	sys.Start()
	return c
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.eng.Now().Duration() }

// Broadcast A-broadcasts body from process p at the current instant and
// returns the message ID.
func (c *Cluster) Broadcast(p int, body any) MessageID {
	return c.bcast[p](body)
}

// BroadcastAt schedules an A-broadcast from process p at virtual time at.
func (c *Cluster) BroadcastAt(p int, at time.Duration, body any) {
	c.eng.Schedule(sim.Time(at), func() { c.bcast[p](body) })
}

// CrashAt schedules a crash of process p at virtual time at.
func (c *Cluster) CrashAt(p int, at time.Duration) {
	c.sys.CrashAt(proto.PID(p), sim.Time(at))
}

// SuspectAt schedules a wrong suspicion: monitor starts suspecting target
// at the given instant, for the given duration (0 is an instantaneous
// mistake whose edges still fire).
func (c *Cluster) SuspectAt(monitor, target int, at, duration time.Duration) {
	c.eng.Schedule(sim.Time(at), func() {
		c.sys.FDs.InjectMistake(monitor, target, duration)
	})
}

// Run advances virtual time by d, processing all events on the way.
func (c *Cluster) Run(d time.Duration) {
	c.eng.RunUntil(c.eng.Now().Add(d))
}

// RunUntilIdle processes events until none remain.
func (c *Cluster) RunUntilIdle() { c.eng.Run() }

// Crashed reports whether process p has crashed.
func (c *Cluster) Crashed(p int) bool { return c.sys.Proc(proto.PID(p)).Crashed() }

// Stats snapshots network activity so far.
func (c *Cluster) Stats() NetStats {
	counters := c.sys.Net.Counters()
	return NetStats{
		Unicasts:   counters.Unicasts,
		Multicasts: counters.Multicasts,
		WireSlots:  counters.WireSlots,
		Deliveries: counters.Deliveries,
	}
}

// SetTrace installs a network-level observer (nil removes it). Useful for
// printing Fig. 1-style message diagrams; see examples/trace.
func (c *Cluster) SetTrace(fn func(NetEvent)) {
	if fn == nil {
		c.sys.Net.SetTrace(nil)
		return
	}
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		fn(NetEvent{
			Stage:   ev.Kind.String(),
			From:    ev.From,
			To:      ev.To,
			Payload: netmodel.PayloadName(ev.Payload),
			At:      ev.At.Duration(),
		})
	})
}

// Perfect returns a QoS with instant detection and no mistakes.
func Perfect() QoS { return QoS{} }

// Detectors returns a QoS with the given metrics in milliseconds, the
// unit the paper uses throughout.
func Detectors(tdMs, tmrMs, tmMs float64) QoS {
	return fd.QoS{TD: Milliseconds(tdMs), TMR: Milliseconds(tmrMs), TM: Milliseconds(tmMs)}
}
