// Package repro is a Go reproduction of "Comparison of Failure Detectors
// and Group Membership: Performance Study of Two Atomic Broadcast
// Algorithms" (Urbán, Shnayderman, Schiper; DSN 2003).
//
// It provides, from scratch and on the standard library only:
//
//   - the Chandra–Toueg uniform atomic broadcast on unreliable failure
//     detectors (the paper's FD algorithm) with its ♦S consensus and
//     reliable broadcast substrates;
//   - a fixed-sequencer uniform atomic broadcast on a view-synchronous
//     group membership service (the GM algorithm), including exclusion,
//     rejoin and state transfer, plus the non-uniform §8 variant;
//   - the paper's simulation methodology: a contention-aware network
//     model (per-process CPUs + shared wire), failure detectors modelled
//     by their QoS metrics (TD, TMR, TM), Poisson workloads, and the four
//     benchmark scenarios (normal-steady, crash-steady, suspicion-steady,
//     crash-transient).
//
// Two entry points:
//
//   - the experiment API (RunSteady, RunTransient) reproduces the paper's
//     figures — see cmd/figures and bench_test.go;
//   - the Cluster API drives a simulated cluster interactively: broadcast
//     messages, crash processes, inject wrong suspicions, observe
//     deliveries and views — see the examples directory.
//
// Time inside a simulation is virtual: one network time unit is 1 ms, as
// in the paper, and simulations are deterministic given a seed.
package repro

import (
	"io"
	"time"

	"repro/internal/experiment"
	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Algorithm selects an atomic broadcast implementation.
type Algorithm = experiment.Algorithm

// The implemented algorithms.
const (
	// FD is the Chandra–Toueg atomic broadcast on unreliable failure
	// detectors.
	FD = experiment.FD
	// GM is the fixed-sequencer atomic broadcast on group membership
	// (uniform).
	GM = experiment.GM
	// GMNonUniform is the two-multicast non-uniform sequencer variant.
	GMNonUniform = experiment.GMNonUniform
)

// QoS holds the failure-detector quality-of-service parameters of Chen,
// Toueg and Aguilera: detection time TD, mistake recurrence time TMR and
// mistake duration TM.
type QoS = fd.QoS

// MessageID identifies an atomic broadcast message: origin process plus
// per-origin sequence number.
type MessageID = proto.MsgID

// Config describes one steady-state experiment point; see the package
// documentation of internal/experiment for field semantics.
type Config = experiment.Config

// Result aggregates a steady-state experiment.
type Result = experiment.Result

// TransientConfig describes a crash-transient experiment.
type TransientConfig = experiment.TransientConfig

// TransientResult reports a crash-transient experiment.
type TransientResult = experiment.TransientResult

// RunSteady executes a steady-state scenario (normal-steady, crash-steady
// or suspicion-steady, depending on Config.Crashed and Config.QoS) and
// returns latency statistics with 95% confidence intervals.
func RunSteady(cfg Config) Result { return experiment.RunSteady(cfg) }

// RunTransient measures the crash-transient latency L(p, q): a probe
// message A-broadcast at the instant of a forced crash.
func RunTransient(cfg TransientConfig) TransientResult {
	return experiment.RunTransient(cfg)
}

// WorstCaseTransient maximises the transient latency over senders (and
// optionally over the crashed process): the paper's Lcrash.
func WorstCaseTransient(cfg TransientConfig, sweepCrash bool) TransientResult {
	return experiment.WorstCaseTransient(cfg, sweepCrash)
}

// Runner executes experiments, fanning independent replications out over
// a bounded worker pool (Workers: 0 selects GOMAXPROCS, 1 is serial).
// Results are merged in canonical (point, replication) order, so output
// is bit-identical at any worker count. An optional Progress callback
// reports completed replications.
type Runner = experiment.Runner

// Sweep describes a grid of steady-state experiment points over
// Algorithm × N × Throughput × QoS × Lambda × Crashed × Detector; unset
// axes inherit the Base config.
type Sweep = experiment.Sweep

// RunSweep runs every point of the grid on GOMAXPROCS workers and
// returns results in the grid's canonical point order. Use a Runner
// directly to bound the worker count or observe progress.
func RunSweep(s Sweep) []Result {
	var r Runner
	return r.Sweep(s)
}

// RunSteadyAll runs several steady-state points at once, fanning every
// (point, replication) pair out over GOMAXPROCS workers. Results come
// back in point order, identical to running each point serially.
func RunSteadyAll(cfgs []Config) []Result {
	var r Runner
	return r.SteadyAll(cfgs)
}

// Collector is a mergeable latency distribution: Welford moments plus
// every raw observation, supporting exact quantiles, histograms and the
// early/late population split of the paper's crash and suspicion
// figures. Result.Dist and TransientResult.Dist carry one per point.
//
// Setting Config.DistSketch switches the per-point collectors to a
// bounded-memory streaming quantile sketch (see Sketch): means and
// confidence intervals stay exact, quantiles carry the configured
// relative-error bound, and a multi-million-message point costs
// O(sketch) memory instead of retaining every latency.
type Collector = stats.Collector

// Sketch is the mergeable streaming quantile sketch behind sketch-mode
// collectors: DDSketch-style logarithmic buckets with a configurable
// relative-error bound and an order-insensitive, bit-exact merge.
type Sketch = stats.Sketch

// NewSketchCollector creates an empty Collector in sketch mode with the
// given relative-error bound (0 < alpha < 1), for code that aggregates
// distributions outside the experiment harness.
func NewSketchCollector(alpha float64) Collector { return stats.NewSketchCollector(alpha) }

// Quantiles snapshots a distribution's order statistics (min, P50, P90,
// P99, max); every Result carries one for its point.
type Quantiles = stats.Quantiles

// Histogram counts observations into equal-width bins; build one from
// any Collector via its Histogram method.
type Histogram = stats.Histogram

// Summary is a mean-centric snapshot (mean, standard deviation, 95%
// confidence interval, extrema) — the paper's error-bar statistics.
type Summary = stats.Summary

// Observer receives a replication's A-deliveries; implementations that
// also satisfy BroadcastObserver or NetObserver additionally receive
// A-broadcasts and network-model lifecycle events. Observers compose
// cross-cutting measurement with any scenario through Config.Observers.
type Observer = experiment.Observer

// BroadcastObserver is the optional sending-side interface of Observer.
type BroadcastObserver = experiment.BroadcastObserver

// NetObserver is the optional network-tracer interface of Observer.
type NetObserver = experiment.NetObserver

// ObserverFactory builds one Observer per replication; point indexes the
// config within the executed batch (a Sweep's canonical point order) and
// rep the replication. List factories in Config.Observers.
type ObserverFactory = experiment.ObserverFactory

// ObservedDelivery is the A-delivery event observers receive. (The
// interactive Cluster API reports its own richer Delivery type.)
type ObservedDelivery = experiment.Delivery

// ObservedBroadcast is the A-broadcast event BroadcastObservers receive.
type ObservedBroadcast = experiment.Broadcast

// LatencyDist is a cross-cutting observer pooling broadcast-to-first-
// delivery latencies per sweep point into mergeable collectors; its
// distributions are bit-identical at any Runner.Workers count.
type LatencyDist = experiment.LatencyDist

// NewLatencyDist creates a latency-distribution observer; attach it by
// appending its Observer method to Config.Observers.
func NewLatencyDist() *LatencyDist { return experiment.NewLatencyDist() }

// Trace is a cross-cutting observer streaming every replication —
// configuration, broadcasts, network lifecycle events and deliveries —
// to an io.Writer in a replayable format; ReplayTrace re-runs a trace
// and verifies the delivery digests. Call Flush after the run.
type Trace = experiment.Trace

// TraceDigest names one replication's delivery digest.
type TraceDigest = experiment.TraceDigest

// TraceOption configures a Trace exporter at construction.
type TraceOption = experiment.TraceOption

// TraceGzip makes the trace exporter gzip-compress its output (one gzip
// member per Flush); ReplayTrace auto-detects compressed traces.
func TraceGzip() TraceOption { return experiment.TraceGzip() }

// TraceBufferLimit bounds each replication's in-memory trace buffer to
// roughly the given number of bytes by dropping further network
// lifecycle records past it (broadcast and delivery records — the
// replayable, digested core — are always kept). A "T <dropped>" marker
// records the truncation.
func TraceBufferLimit(bytes int) TraceOption { return experiment.TraceBufferLimit(bytes) }

// NewTrace creates a trace exporter writing to w; attach it by appending
// its Observer method to Config.Observers.
func NewTrace(w io.Writer, opts ...TraceOption) *Trace { return experiment.NewTrace(w, opts...) }

// ReplayResult reports one replayed trace replication: the recorded and
// re-run delivery digests and whether they match.
type ReplayResult = experiment.ReplayResult

// ReplayTrace re-executes every replication recorded in a trace from its
// embedded configuration and compares delivery digests. Simulations are
// deterministic in virtual time, so traces replay identically anywhere.
func ReplayTrace(r io.Reader) ([]ReplayResult, error) { return experiment.Replay(r) }

// FaultPlan is a deterministic, virtual-time-ordered timeline of typed
// fault- and environment-injection events: crashes and recoveries,
// suspicion bursts, partitions and heals, per-link loss and delay. One
// plan drives every surface — Config.Plan for experiments, Sweep.Plans
// to cross whole failure schedules with every other axis, and
// ClusterConfig.Plan (or the Cluster's *At methods) interactively — and
// planned runs stay deterministic, sweepable and trace-replayable.
type FaultPlan = experiment.FaultPlan

// NewFaultPlan creates a plan from the given events; the plan's
// chainable helpers (Crash, Recover, Suspect, Partition, Heal, Link,
// PreCrash) append further ones.
func NewFaultPlan(events ...PlanEvent) *FaultPlan {
	return experiment.NewFaultPlan(events...)
}

// PlanEvent is one typed event on a FaultPlan's timeline: one of Crash,
// Recover, SuspicionBurst, Partition, Heal, LinkFault or PreCrash.
type PlanEvent = experiment.PlanEvent

// Crash kills a process at an instant (reversible by Recover).
type Crash = experiment.Crash

// Recover revives a crashed process: GM algorithms rejoin through the
// membership service with state transfer, the crash-stop FD algorithm
// resumes from its pre-crash state (a long outage).
type Recover = experiment.Recover

// SuspicionBurst injects a scripted wrong suspicion of a process, by the
// listed monitors or (nil) by everyone.
type SuspicionBurst = experiment.SuspicionBurst

// Partition splits the system into isolated groups; unlisted processes
// are isolated alone. Failure detectors treat unreachable processes like
// crashed ones until the partition heals.
type Partition = experiment.Partition

// Heal removes the partition in force.
type Heal = experiment.Heal

// LinkFault degrades one directed link: probabilistic loss and/or extra
// delay. Zero both to clear it.
type LinkFault = experiment.LinkFault

// PreCrash establishes the crash-steady initial condition for a process;
// Config.Crashed and ClusterConfig.PreCrashed are constructors for it.
type PreCrash = experiment.PreCrash

// PlanObserver is the optional observer interface receiving fault-plan
// events at the instants they apply.
type PlanObserver = experiment.PlanObserver

// LoadPlan is a deterministic, virtual-time-ordered timeline of typed
// workload-shaping events — FaultPlan's load-side sibling: rate changes
// (global or per-sender), bursts, per-sender mutes, whole-workload
// pauses. One plan drives every surface — Config.Load for experiments,
// Sweep.Loads to cross shaping schedules with every other axis (Plans
// included, so "overload while partitioned" is one grid point), and
// ClusterConfig.Load (or the Cluster's SetRateAt/BurstAt/MuteAt/...)
// interactively — and shaped runs stay deterministic, sweepable and
// trace-replayable. Rate changes consume no randomness: the gap in
// flight rescales (the exponential is memoryless), so a plan that leaves
// every rate unchanged is bit-identical to no plan at all.
type LoadPlan = experiment.LoadPlan

// NewLoadPlan creates a plan from the given events; the plan's chainable
// helpers (Rate, Burst, Mute, Unmute, Pause, Resume) append further ones.
func NewLoadPlan(events ...LoadEvent) *LoadPlan {
	return experiment.NewLoadPlan(events...)
}

// LoadEvent is one typed event on a LoadPlan's timeline: one of
// RateChange, Burst, Mute, Unmute, Pause or Resume.
type LoadEvent = experiment.LoadEvent

// RateChange sets the A-broadcast rate: sender AllSenders re-spreads the
// rate as a new total throughput, a concrete sender gets it absolutely.
type RateChange = experiment.RateChange

// Burst multiplies a sender's (or everyone's) rate by a factor for a
// duration — the spike of the overload figures.
type Burst = experiment.Burst

// Mute silences one sender (or everyone), freezing its gap and keeping
// its logical rate for Unmute.
type Mute = experiment.Mute

// Unmute lifts a Mute.
type Unmute = experiment.Unmute

// Pause silences the whole workload; Resume lifts it (individually muted
// senders stay muted).
type Pause = experiment.Pause

// Resume lifts a Pause.
type Resume = experiment.Resume

// AllSenders addresses every sender at once in a load event.
const AllSenders = experiment.AllSenders

// LoadObserver is the optional observer interface receiving load-plan
// events at the instants they apply.
type LoadObserver = experiment.LoadObserver

// HeartbeatDetector returns a heartbeat failure-detector tuning (in
// milliseconds, the paper's unit) for Config.Detector, Sweep.Detectors
// or ClusterConfig.Heartbeat. Zero values select the defaults (10 ms
// interval, 3x interval timeout).
func HeartbeatDetector(intervalMs, timeoutMs float64) *HeartbeatConfig {
	return &HeartbeatConfig{Interval: Milliseconds(intervalMs), Timeout: Milliseconds(timeoutMs)}
}

// Milliseconds converts a float millisecond count into a time.Duration —
// a convenience mirroring the paper's habit of quoting everything in ms.
func Milliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// ProcessID identifies a process in experiment configurations: 0..N-1.
// The paper's p1 corresponds to ProcessID 0.
type ProcessID = proto.PID

// Topology is an explicit connectivity graph the network model routes
// over: wires (contention domains with their own bandwidth, propagation
// delay and loss) and directed edges riding them. Carry one on
// Config.Topology, Sweep.Topologies or ClusterConfig.Topology; nil means
// FullMesh(N), the paper's single shared Ethernet, bit-identical to the
// pre-topology model. Build one with a generator below or from literals;
// see internal/topo for the full model.
type Topology = topo.Topology

// Wire describes one contention domain of a Topology: occupancy per
// message hop (Slot, zero inherits the model default), propagation delay
// and per-copy loss probability.
type Wire = topo.Wire

// Edge is a directed connection between two processes riding a wire.
type Edge = topo.Edge

// GeoConfig parameterises a Geo topology: Sites datacenters of PerSite
// processes, each site a clique on a LAN wire, sites joined pairwise by
// WAN wires between gateways.
type GeoConfig = topo.GeoConfig

// FullMesh is the paper's network: every process pair joined directly on
// one shared default-slot wire.
func FullMesh(n int) *Topology { return topo.FullMesh(n) }

// Star joins every process to hub 0 over dedicated spoke wires; spoke-
// to-spoke traffic relays through the hub.
func Star(n int) *Topology { return topo.Star(n) }

// Ring joins each process to its two neighbours; multicasts propagate
// both ways around, so latency grows with n while contention stays flat.
func Ring(n int) *Topology { return topo.Ring(n) }

// OneWayRing joins each process to its successor over a dedicated
// unidirectional wire — the fully directed topology, and the canonical
// multi-domain graph for ParallelSim: it splits into one conflict
// domain per process with a lookahead of one wire traversal.
func OneWayRing(n int) *Topology { return topo.OneWayRing(n) }

// Clique joins every process pair with a dedicated wire — full direct
// connectivity with no shared medium, the switched-network limit.
func Clique(n int) *Topology { return topo.Clique(n) }

// Geo builds a geo-replicated topology: per-site LAN cliques joined by
// WAN links with their own delay and loss; cross-site traffic relays
// through per-site gateways. The topology's SiteCut method and the
// FaultPlan's PartitionSites constructor cut it along the WAN.
func Geo(cfg GeoConfig) *Topology { return topo.Geo(cfg) }

// GroupMap assigns the N processes to (possibly overlapping) ordered
// process groups, generalizing atomic broadcast to genuine atomic
// multicast: each group runs its own protocol stack, a message is
// disseminated only to its destination groups, and multi-group messages
// are merged into one total order by a deterministic timestamp protocol
// at the destinations. Carry one on Config.Groups, Sweep.GroupMaps or
// ClusterConfig.Groups; nil (or any single-group map covering everyone)
// is bit-identical to the paper's one-group broadcast path. Build one
// with a generator below or NewGroupMap; see internal/groups for the
// ordering protocol.
type GroupMap = groups.GroupMap

// GroupSpec is the compact self-describing form of a GroupMap that trace
// headers embed, so a replayed trace rebuilds the exact map.
type GroupSpec = groups.Spec

// NewGroupMap builds a GroupMap from explicit member lists, one per
// group. Every process must belong to at least one group. It panics on
// invalid input.
func NewGroupMap(n int, members [][]int) *GroupMap {
	ms := make([][]proto.PID, len(members))
	for g, ps := range members {
		ms[g] = make([]proto.PID, len(ps))
		for i, p := range ps {
			ms[g][i] = proto.PID(p)
		}
	}
	return groups.New(n, ms)
}

// Disjoint partitions n processes into k equal (±1) disjoint groups —
// the pure sharding end of the overlap spectrum.
func Disjoint(n, k int) *GroupMap { return groups.Disjoint(n, k) }

// Chained builds k groups where each adjacent pair shares exactly one
// bridge process — the sparse-overlap middle of the spectrum.
func Chained(n, k int) *GroupMap { return groups.Chained(n, k) }

// CliqueOverlap builds k groups all sharing process 0 as a common hub —
// the dense-overlap end of the spectrum.
func CliqueOverlap(n, k int) *GroupMap { return groups.CliqueOverlap(n, k) }

// GroupsFromSites derives a GroupMap from a Geo topology: one group per
// site, containing exactly that site's processes.
func GroupsFromSites(t *Topology) *GroupMap { return groups.FromSites(t) }

// ShardMix is the LoadPlan event setting the cross-shard traffic
// fraction mid-run (groups mode only); the plan's Mix helper appends
// one.
type ShardMix = experiment.ShardMix
