// Package repro is a Go reproduction of "Comparison of Failure Detectors
// and Group Membership: Performance Study of Two Atomic Broadcast
// Algorithms" (Urbán, Shnayderman, Schiper; DSN 2003).
//
// It provides, from scratch and on the standard library only:
//
//   - the Chandra–Toueg uniform atomic broadcast on unreliable failure
//     detectors (the paper's FD algorithm) with its ♦S consensus and
//     reliable broadcast substrates;
//   - a fixed-sequencer uniform atomic broadcast on a view-synchronous
//     group membership service (the GM algorithm), including exclusion,
//     rejoin and state transfer, plus the non-uniform §8 variant;
//   - the paper's simulation methodology: a contention-aware network
//     model (per-process CPUs + shared wire), failure detectors modelled
//     by their QoS metrics (TD, TMR, TM), Poisson workloads, and the four
//     benchmark scenarios (normal-steady, crash-steady, suspicion-steady,
//     crash-transient).
//
// Two entry points:
//
//   - the experiment API (RunSteady, RunTransient) reproduces the paper's
//     figures — see cmd/figures and bench_test.go;
//   - the Cluster API drives a simulated cluster interactively: broadcast
//     messages, crash processes, inject wrong suspicions, observe
//     deliveries and views — see the examples directory.
//
// Time inside a simulation is virtual: one network time unit is 1 ms, as
// in the paper, and simulations are deterministic given a seed.
package repro

import (
	"time"

	"repro/internal/experiment"
	"repro/internal/fd"
	"repro/internal/proto"
)

// Algorithm selects an atomic broadcast implementation.
type Algorithm = experiment.Algorithm

// The implemented algorithms.
const (
	// FD is the Chandra–Toueg atomic broadcast on unreliable failure
	// detectors.
	FD = experiment.FD
	// GM is the fixed-sequencer atomic broadcast on group membership
	// (uniform).
	GM = experiment.GM
	// GMNonUniform is the two-multicast non-uniform sequencer variant.
	GMNonUniform = experiment.GMNonUniform
)

// QoS holds the failure-detector quality-of-service parameters of Chen,
// Toueg and Aguilera: detection time TD, mistake recurrence time TMR and
// mistake duration TM.
type QoS = fd.QoS

// MessageID identifies an atomic broadcast message: origin process plus
// per-origin sequence number.
type MessageID = proto.MsgID

// Config describes one steady-state experiment point; see the package
// documentation of internal/experiment for field semantics.
type Config = experiment.Config

// Result aggregates a steady-state experiment.
type Result = experiment.Result

// TransientConfig describes a crash-transient experiment.
type TransientConfig = experiment.TransientConfig

// TransientResult reports a crash-transient experiment.
type TransientResult = experiment.TransientResult

// RunSteady executes a steady-state scenario (normal-steady, crash-steady
// or suspicion-steady, depending on Config.Crashed and Config.QoS) and
// returns latency statistics with 95% confidence intervals.
func RunSteady(cfg Config) Result { return experiment.RunSteady(cfg) }

// RunTransient measures the crash-transient latency L(p, q): a probe
// message A-broadcast at the instant of a forced crash.
func RunTransient(cfg TransientConfig) TransientResult {
	return experiment.RunTransient(cfg)
}

// WorstCaseTransient maximises the transient latency over senders (and
// optionally over the crashed process): the paper's Lcrash.
func WorstCaseTransient(cfg TransientConfig, sweepCrash bool) TransientResult {
	return experiment.WorstCaseTransient(cfg, sweepCrash)
}

// Runner executes experiments, fanning independent replications out over
// a bounded worker pool (Workers: 0 selects GOMAXPROCS, 1 is serial).
// Results are merged in canonical (point, replication) order, so output
// is bit-identical at any worker count. An optional Progress callback
// reports completed replications.
type Runner = experiment.Runner

// Sweep describes a grid of steady-state experiment points over
// Algorithm × N × Throughput × QoS × Lambda × Crashed; unset axes
// inherit the Base config.
type Sweep = experiment.Sweep

// RunSweep runs every point of the grid on GOMAXPROCS workers and
// returns results in the grid's canonical point order. Use a Runner
// directly to bound the worker count or observe progress.
func RunSweep(s Sweep) []Result {
	var r Runner
	return r.Sweep(s)
}

// RunSteadyAll runs several steady-state points at once, fanning every
// (point, replication) pair out over GOMAXPROCS workers. Results come
// back in point order, identical to running each point serially.
func RunSteadyAll(cfgs []Config) []Result {
	var r Runner
	return r.SteadyAll(cfgs)
}

// Milliseconds converts a float millisecond count into a time.Duration —
// a convenience mirroring the paper's habit of quoting everything in ms.
func Milliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// ProcessID identifies a process in experiment configurations: 0..N-1.
// The paper's p1 corresponds to ProcessID 0.
type ProcessID = proto.PID
