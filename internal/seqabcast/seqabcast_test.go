package seqabcast

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// cluster is an end-to-end harness for the GM algorithm over the full
// simulated stack.
type cluster struct {
	eng        *sim.Engine
	sys        *proto.System
	procs      []*Process
	deliveries [][]delivery
	sent       map[proto.MsgID]sim.Time
}

type delivery struct {
	id proto.MsgID
	at sim.Time
}

type clusterOpts struct {
	n        int
	qos      fd.QoS
	uniform  *bool // nil means uniform (the paper's main variant)
	seed     uint64
	preCrash []proto.PID
	members  []proto.PID // initial view; nil means all
}

func newCluster(o clusterOpts) *cluster {
	if o.seed == 0 {
		o.seed = 1
	}
	uniform := true
	if o.uniform != nil {
		uniform = *o.uniform
	}
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(o.n), o.qos, sim.NewRand(o.seed))
	c := &cluster{
		eng:        eng,
		sys:        sys,
		procs:      make([]*Process, o.n),
		deliveries: make([][]delivery, o.n),
		sent:       make(map[proto.MsgID]sim.Time),
	}
	for i := 0; i < o.n; i++ {
		i := i
		c.procs[i] = New(sys.Proc(proto.PID(i)), Config{
			Uniform:        uniform,
			InitialMembers: o.members,
			Deliver: func(id proto.MsgID, body any) {
				c.deliveries[i] = append(c.deliveries[i], delivery{id: id, at: eng.Now()})
			},
		})
		sys.SetHandler(proto.PID(i), c.procs[i])
	}
	for _, p := range o.preCrash {
		sys.PreCrash(p)
	}
	sys.Start()
	return c
}

func (c *cluster) broadcastAt(p proto.PID, at sim.Time) {
	c.eng.Schedule(at, func() {
		id := c.procs[p].ABroadcast(fmt.Sprintf("m-%d-%v", p, at))
		c.sent[id] = at
	})
}

func (c *cluster) run(horizon time.Duration) {
	c.eng.RunUntil(sim.Time(0).Add(horizon))
}

func (c *cluster) ids(p int) []proto.MsgID {
	out := make([]proto.MsgID, len(c.deliveries[p]))
	for i, d := range c.deliveries[p] {
		out[i] = d.id
	}
	return out
}

func (c *cluster) checkTotalOrder(t *testing.T) {
	t.Helper()
	ref := -1
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		if ref < 0 || len(c.deliveries[p]) > len(c.deliveries[ref]) {
			ref = p
		}
	}
	if ref < 0 {
		t.Fatal("no correct process")
	}
	refIDs := c.ids(ref)
	seen := make(map[proto.MsgID]bool, len(refIDs))
	for _, id := range refIDs {
		if seen[id] {
			t.Fatalf("duplicate delivery of %v at p%d", id, ref)
		}
		seen[id] = true
	}
	for p := range c.procs {
		if p == ref || c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		ids := c.ids(p)
		for i := range ids {
			if i >= len(refIDs) || ids[i] != refIDs[i] {
				t.Fatalf("order mismatch at index %d: p%d has %v, p%d has %v",
					i, p, ids[i], ref, refIDs[i])
			}
		}
	}
}

func (c *cluster) checkAllDelivered(t *testing.T) {
	t.Helper()
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		got := make(map[proto.MsgID]bool)
		for _, d := range c.deliveries[p] {
			got[d.id] = true
		}
		for id := range c.sent {
			if !got[id] {
				t.Fatalf("p%d never delivered %v (%d/%d delivered)", p, id, len(got), len(c.sent))
			}
		}
	}
}

func (c *cluster) checkUniformAgreement(t *testing.T) {
	t.Helper()
	everywhere := make(map[proto.MsgID]bool)
	for p := range c.procs {
		for _, d := range c.deliveries[p] {
			everywhere[d.id] = true
		}
	}
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		got := make(map[proto.MsgID]bool)
		for _, d := range c.deliveries[p] {
			got[d.id] = true
		}
		for id := range everywhere {
			if !got[id] {
				t.Fatalf("uniform agreement violated: %v missing at correct p%d", id, p)
			}
		}
	}
}

func at(msf float64) sim.Time { return sim.Time(0).Add(sim.Millis(msf)) }

func boolPtr(b bool) *bool { return &b }

func TestSingleBroadcastLatencyMatchesFDAlgorithm(t *testing.T) {
	// §4.4: failure-free message pattern identical to the FD algorithm,
	// so the hand-computed timings from the ctabcast tests must hold
	// exactly: sequencer at 7 ms, the others at 11 ms.
	c := newCluster(clusterOpts{n: 3})
	c.broadcastAt(0, 0)
	c.run(time.Second)
	for p := 0; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("p%d delivered %d, want 1", p, len(c.deliveries[p]))
		}
	}
	if got := c.deliveries[0][0].at; got != at(7) {
		t.Fatalf("sequencer delivered at %v, want 7ms", got)
	}
	for p := 1; p < 3; p++ {
		if got := c.deliveries[p][0].at; got != at(11) {
			t.Fatalf("p%d delivered at %v, want 11ms", p, got)
		}
	}
}

func TestTotalOrderUnderConcurrentLoad(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	for i := 0; i < 20; i++ {
		for p := 0; p < 3; p++ {
			c.broadcastAt(proto.PID(p), at(float64(2*i)))
		}
	}
	c.run(5 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestSevenProcesses(t *testing.T) {
	c := newCluster(clusterOpts{n: 7})
	for i := 0; i < 14; i++ {
		c.broadcastAt(proto.PID(i%7), at(float64(5*i)))
	}
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestSequencerCrashTriggersViewChange(t *testing.T) {
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	crash := at(50)
	c.sys.CrashAt(0, crash)
	c.broadcastAt(1, crash) // broadcast at the crash instant
	c.run(2 * time.Second)
	for p := 1; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("survivor p%d delivered %d, want 1", p, len(c.deliveries[p]))
		}
		if got := c.deliveries[p][0].at; got.Sub(crash) <= td {
			t.Fatalf("delivery at %v before detection completed", got)
		}
	}
	c.checkTotalOrder(t)
	// The view excludes the sequencer; p1 takes over.
	v := c.procs[1].View()
	if v.Contains(0) || v.Primary() != 1 {
		t.Fatalf("view after crash = %v, want {1 2} led by 1", v)
	}
}

func TestNonSequencerCrashAlsoCostsAViewChange(t *testing.T) {
	// §4.4: "the GM algorithm reacts to the crash of every process" —
	// unlike the FD algorithm, crashing a non-coordinator still
	// reconfigures.
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	c.sys.CrashAt(2, at(50))
	c.broadcastAt(1, at(100))
	c.run(2 * time.Second)
	v := c.procs[0].View()
	if v.ID != 2 || v.Contains(2) {
		t.Fatalf("view = %v, want second view without p2", v)
	}
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestInFlightMessagesSurviveViewChange(t *testing.T) {
	// Messages broadcast just before and during the view change are
	// delivered exactly once, in the same order everywhere.
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	for i := 0; i < 10; i++ {
		c.broadcastAt(proto.PID(1+i%2), at(float64(45+i)))
	}
	c.sys.CrashAt(0, at(50))
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	c.checkUniformAgreement(t)
}

func TestWrongSuspicionCausesExclusionAndRejoin(t *testing.T) {
	// p1 wrongly suspects the sequencer for a long TM: the view change
	// excludes p0, which later rejoins via state transfer. Everything is
	// eventually delivered everywhere in one total order.
	c := newCluster(clusterOpts{n: 3})
	c.eng.Schedule(at(20), func() {
		c.sys.FDs.InjectMistake(1, 0, 100*time.Millisecond)
	})
	for i := 0; i < 20; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(10+5*i)))
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	// p0 must have been excluded at some point and be back now.
	if c.procs[0].IsExcluded() {
		t.Fatal("p0 still excluded after the mistake ended")
	}
	if v := c.procs[0].View(); v.ID < 3 {
		t.Fatalf("view %v: expected at least exclusion + rejoin changes", v)
	}
}

func TestExcludedProcessQueuesBroadcasts(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	// Exclude p2 via a long mistake at both peers.
	c.eng.Schedule(at(10), func() {
		c.sys.FDs.InjectMistake(0, 2, 80*time.Millisecond)
		c.sys.FDs.InjectMistake(1, 2, 80*time.Millisecond)
	})
	// p2 broadcasts while excluded.
	c.broadcastAt(2, at(40))
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	// The message could only be delivered after p2 rejoined, i.e. well
	// after the mistake ended at ~90ms.
	first := c.deliveries[0][0].at
	if first < at(90) {
		t.Fatalf("queued broadcast delivered at %v, before the rejoin", first)
	}
}

func TestSuspicionOfNonSequencerWithTMZero(t *testing.T) {
	// TM = 0: a wrong suspicion still costs a full reconfiguration — the
	// suspected process is excluded like a crashed one would be (§4.4)
	// and rejoins right away, since the mistake is already over.
	c := newCluster(clusterOpts{n: 3})
	c.eng.Schedule(at(20), func() { c.sys.FDs.InjectMistake(0, 1, 0) })
	c.broadcastAt(2, at(21))
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	v := c.procs[0].View()
	if len(v.Members) != 3 {
		t.Fatalf("members = %v, want all 3 back after the rejoin", v.Members)
	}
	if v.ID < 3 {
		t.Fatalf("view ID = %d, want >= 3 (exclusion + rejoin)", v.ID)
	}
	if c.procs[1].IsExcluded() {
		t.Fatal("p1 still excluded")
	}
}

func TestCrashSteadyInitialView(t *testing.T) {
	// Crash-steady scenario: p2 crashed long ago; the initial view is
	// the survivors and nothing ever reconfigures.
	c := newCluster(clusterOpts{
		n:        3,
		preCrash: []proto.PID{2},
		members:  []proto.PID{0, 1},
	})
	for i := 0; i < 10; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(5*i)))
	}
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	if v := c.procs[0].View(); v.ID != 1 {
		t.Fatalf("view changed in crash-steady scenario: %v", v)
	}
}

func TestNonUniformVariantTwoMulticasts(t *testing.T) {
	// §8: the non-uniform variant costs exactly two multicasts and no
	// unicasts per broadcast.
	c := newCluster(clusterOpts{n: 3, uniform: boolPtr(false)})
	c.broadcastAt(0, 0)
	c.run(time.Second)
	for p := 0; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("p%d delivered %d, want 1", p, len(c.deliveries[p]))
		}
	}
	counters := c.sys.Net.Counters()
	if counters.Multicasts != 2 || counters.Unicasts != 0 {
		t.Fatalf("counters = %+v, want 2 multicasts and 0 unicasts", counters)
	}
	// The sequencer delivers at seqnum assignment: first delivery well
	// before the uniform variant's 7 ms.
	if got := c.deliveries[0][0].at; got >= at(7) {
		t.Fatalf("non-uniform sequencer delivered at %v, want < 7ms", got)
	}
}

func TestNonUniformTotalOrderUnderLoad(t *testing.T) {
	c := newCluster(clusterOpts{n: 5, uniform: boolPtr(false)})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%5), at(float64(2*i)))
	}
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestSequencerAdvantageWithCrashes(t *testing.T) {
	// Fig. 5's GM edge: with crashes long past, the view shrinks and the
	// sequencer needs fewer acks. With n=7 and 3 crashed, the view is 4
	// strong and majority is 3 — the protocol still works.
	c := newCluster(clusterOpts{
		n:        7,
		preCrash: []proto.PID{4, 5, 6},
		members:  []proto.PID{0, 1, 2, 3},
	})
	for i := 0; i < 10; i++ {
		c.broadcastAt(proto.PID(i%4), at(float64(5*i)))
	}
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestRandomisedFaultSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rng := sim.NewRand(seed * 7919)
		n := 3 + 2*rng.Intn(2)
		c := newCluster(clusterOpts{
			n:    n,
			qos:  fd.QoS{TD: 10 * time.Millisecond, TMR: 400 * time.Millisecond, TM: 10 * time.Millisecond},
			seed: seed,
		})
		for i := 0; i < 25; i++ {
			c.broadcastAt(proto.PID(rng.Intn(n)), at(float64(rng.Intn(500))))
		}
		// At most one crash: combined with wrong suspicions, more would
		// risk losing the primary partition entirely.
		var crashed proto.PID = -1
		if rng.Intn(2) == 0 {
			crashed = proto.PID(rng.Intn(n))
			c.sys.CrashAt(crashed, at(float64(200+rng.Intn(200))))
		}
		// Give the run a quiescent tail so liveness is assertable.
		c.eng.Schedule(at(30000), func() { c.sys.FDs.StopMistakes() })
		c.run(60 * time.Second)
		c.checkTotalOrder(t)
		// Liveness: messages from correct senders reach all correct
		// processes once the mistakes die down.
		for id := range c.sent {
			if id.Origin == crashed {
				continue
			}
			for p := 0; p < n; p++ {
				if c.sys.Proc(proto.PID(p)).Crashed() {
					continue
				}
				found := false
				for _, d := range c.deliveries[p] {
					if d.id == id {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: %v missing at p%d", seed, id, p)
				}
			}
		}
	}
}

func TestViewSynchronyAcrossExclusion(t *testing.T) {
	// The rejoining process's delivery sequence must be a prefix-
	// consistent continuation: no gaps, no reordering versus the group.
	c := newCluster(clusterOpts{n: 3})
	c.eng.Schedule(at(30), func() {
		c.sys.FDs.InjectMistake(0, 1, 60*time.Millisecond)
	})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(10+4*i)))
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []delivery {
		c := newCluster(clusterOpts{
			n:    3,
			qos:  fd.QoS{TMR: 150 * time.Millisecond, TM: 10 * time.Millisecond},
			seed: 4242,
		})
		for i := 0; i < 20; i++ {
			c.broadcastAt(proto.PID(i%3), at(float64(8*i)))
		}
		c.run(5 * time.Second)
		return c.deliveries[2]
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil Deliver did not panic")
		}
	}()
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(1), fd.QoS{}, sim.NewRand(1))
	New(sys.Proc(0), Config{})
}

func TestViewAccessors(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	c.run(10 * time.Millisecond)
	if !c.procs[0].IsSequencer() || c.procs[1].IsSequencer() {
		t.Fatal("sequencer role wrong")
	}
	if c.procs[1].IsExcluded() {
		t.Fatal("member reported excluded")
	}
	v := c.procs[0].View()
	if v.ID != 1 || len(v.Members) != 3 || v.Primary() != 0 {
		t.Fatalf("initial view = %v", v)
	}
	if got := v.String(); got != "v1[0 1 2]" {
		t.Fatalf("View.String() = %q", got)
	}
	_ = gm.View{} // keep the import for the helper types
}
