// Package seqabcast implements the paper's "GM algorithm": a fixed-
// sequencer uniform atomic broadcast (after Birman, Schiper, Stephenson)
// that relies on the group membership service of internal/gm for
// reconfiguration after crashes and suspicions (§4.2).
//
// Normal operation within a view, with sequencer s = Members[0]:
//
//  1. A-broadcast(m): the sender multicasts m to all (MsgData).
//  2. The sequencer assigns m a sequence number and multicasts it
//     (MsgSeqNum); under load one MsgSeqNum carries many assignments —
//     the aggregation §4.2 calls essential for high throughput.
//  3. Non-sequencer processes that have both m and its sequence number
//     acknowledge to the sequencer (MsgAck, cumulative).
//  4. The sequencer waits for acks from a majority of the view, then
//     A-delivers and multicasts MsgDeliver; the others A-deliver on
//     receipt. This majority-ack step is what makes delivery uniform.
//
// The message pattern (data, seqnum, ack, deliver) is exactly the FD
// algorithm's pattern (data, propose, ack, decide) in failure-free runs —
// the property §4.4 builds the whole comparison on.
//
// The non-uniform variant of §8 is also implemented (Uniform: false):
// processes A-deliver as soon as they have a message and its sequence
// number, using only two multicasts and giving up uniformity.
//
// On view changes the gm.App callbacks flush unstable messages, reset the
// per-view sequencing state and re-sequence whatever was left unordered.
// Wrongly excluded processes queue their A-broadcasts and, after
// rejoining, catch up through the state-transfer snapshot (§4.3) before
// resuming.
package seqabcast

import (
	"fmt"
	"sort"

	"repro/internal/gm"
	"repro/internal/proto"
)

// Message types of the sequencer protocol. Sequence numbers are per-view,
// starting at 1; cross-view order is given by the view succession.
type (
	// MsgData carries an A-broadcast message to everyone.
	MsgData struct {
		ID   proto.MsgID
		Body any
	}
	// SeqPair assigns one sequence number.
	SeqPair struct {
		Seq uint64
		ID  proto.MsgID
	}
	// MsgSeqNum carries a batch of assignments from the sequencer.
	MsgSeqNum struct {
		View       uint64
		Pairs      []SeqPair
		StableUpTo uint64
	}
	// MsgAck tells the sequencer the sender has data and sequence number
	// for everything up to UpTo (cumulative).
	MsgAck struct {
		View uint64
		UpTo uint64
	}
	// MsgDeliver authorises A-delivery up to UpTo (uniform variant only).
	MsgDeliver struct {
		View       uint64
		UpTo       uint64
		StableUpTo uint64
	}
)

// LogEntry is one A-delivered message, in delivery order; the delivered
// log is the state-transfer payload for rejoining processes.
type LogEntry struct {
	ID   proto.MsgID
	Body any
}

// syncState is the Welcome payload built by SyncPayload.
type syncState struct {
	Entries []LogEntry
}

// Config parameterises the GM algorithm at one process.
type Config struct {
	// Deliver is the A-deliver upcall, invoked in total order.
	Deliver func(id proto.MsgID, body any)
	// Uniform selects the uniform variant (majority acks before
	// delivery). The non-uniform §8 variant delivers on sequence-number
	// receipt. All processes must agree on this setting.
	Uniform bool
	// InitialMembers is the first view (nil means all processes). The
	// crash-steady scenarios pass the surviving processes only.
	InitialMembers []proto.PID
	// GM configures the membership service.
	GM gm.Config
	// LogRetain bounds the delivered log kept for state transfer; zero
	// selects the default. A rejoin reaching below the retained window
	// panics — raise LogRetain for scenarios with very long exclusions.
	LogRetain int
	// BufferLimit bounds protocol messages buffered while excluded;
	// zero selects the default.
	BufferLimit int
	// SeqBase is the initial value of the local A-broadcast counter. A
	// recovered incarnation passes the number of message IDs its previous
	// incarnations consumed, so new IDs never collide with pre-crash ones
	// (a collision would be silently swallowed by duplicate suppression).
	SeqBase uint64
	// OnView, if non-nil, observes every view this process enters:
	// the initial view, each installed view, and rejoin views.
	OnView func(v gm.View)
}

const (
	defaultLogRetain   = 16384
	defaultBufferLimit = 4096
)

// Process is the GM atomic broadcast endpoint at one process. It
// implements proto.Handler and gm.App.
type Process struct {
	rt  proto.Runtime
	cfg Config
	gm  *gm.GM

	bcastSeq uint64 // local A-broadcast counter (message IDs)

	// received holds the body of every message that is not yet known
	// stable: exactly the flush set. Undelivered messages are always
	// here; delivered ones stay until the sequencer announces stability.
	received  map[proto.MsgID]any
	delivered *proto.IDTracker
	log       []LogEntry
	logStart  uint64 // delivery count of log[0]

	// Per-view ordering state (reset on every install).
	assignments map[uint64]proto.MsgID
	seqOf       map[proto.MsgID]uint64
	nextDeliver uint64 // next sequence number to A-deliver
	haveUpTo    uint64 // contiguous data+seqnum prefix present locally
	stableUpTo  uint64 // sequencer-announced all-ack prefix

	// Sequencer-only state.
	nextAssign uint64
	toSequence []proto.MsgID
	batchOpen  bool
	batchMax   uint64
	ackedUpTo  map[proto.PID]uint64
	announced  uint64 // last MsgDeliver UpTo sent

	// Exclusion state.
	queued   []queuedBroadcast
	buffered []bufferedPayload
}

type queuedBroadcast struct {
	id   proto.MsgID
	body any
}

type bufferedPayload struct {
	from    proto.PID
	payload any
}

var (
	_ proto.Handler = (*Process)(nil)
	_ gm.App        = (*Process)(nil)
)

// New creates the GM algorithm endpoint for the process behind rt.
func New(rt proto.Runtime, cfg Config) *Process {
	if cfg.Deliver == nil {
		panic("seqabcast: nil Deliver")
	}
	if cfg.LogRetain <= 0 {
		cfg.LogRetain = defaultLogRetain
	}
	if cfg.BufferLimit <= 0 {
		cfg.BufferLimit = defaultBufferLimit
	}
	p := &Process{
		rt:        rt,
		cfg:       cfg,
		bcastSeq:  cfg.SeqBase,
		received:  make(map[proto.MsgID]any),
		delivered: proto.NewIDTracker(),
	}
	p.resetViewState()
	p.gm = gm.New(rt, cfg.GM)
	p.gm.SetApp(p)
	return p
}

// View exposes the current view (diagnostics and tests).
func (p *Process) View() gm.View { return p.gm.View() }

// IsSequencer reports whether this process sequences the current view.
func (p *Process) IsSequencer() bool {
	return p.gm.IsMember() && p.gm.View().Primary() == p.rt.ID()
}

// IsExcluded reports whether the process is currently outside the view.
func (p *Process) IsExcluded() bool { return !p.gm.IsMember() }

// DeliveredCount returns the number of messages A-delivered locally.
func (p *Process) DeliveredCount() uint64 {
	return p.logStart + uint64(len(p.log))
}

// Init implements proto.Handler.
func (p *Process) Init() {
	members := p.cfg.InitialMembers
	if members == nil {
		members = make([]proto.PID, p.rt.N())
		for i := range members {
			members[i] = proto.PID(i)
		}
	}
	v := gm.View{ID: 1, Members: members}
	p.gm.Start(v)
	if p.cfg.OnView != nil && p.gm.IsMember() {
		p.cfg.OnView(v)
	}
}

// ABroadcast atomically broadcasts body and returns its message ID. An
// excluded process queues the broadcast until it rejoins — the cost §7's
// suspicion-steady scenario charges to the GM algorithm.
func (p *Process) ABroadcast(body any) proto.MsgID {
	p.bcastSeq++
	id := proto.MsgID{Origin: p.rt.ID(), Seq: p.bcastSeq}
	if p.IsExcluded() {
		p.queued = append(p.queued, queuedBroadcast{id: id, body: body})
		return id
	}
	p.rt.Multicast(MsgData{ID: id, Body: body})
	return id
}

// OnMessage implements proto.Handler.
func (p *Process) OnMessage(from proto.PID, payload any) {
	if p.gm.OnMessage(from, payload) {
		return
	}
	switch m := payload.(type) {
	case MsgData:
		p.onData(m)
	case MsgSeqNum:
		p.onSeqNum(from, m)
	case MsgAck:
		p.onAck(from, m)
	case MsgDeliver:
		p.onDeliver(from, m)
	default:
		panic(fmt.Sprintf("seqabcast: unknown payload %T", payload))
	}
}

// OnSuspect implements proto.Handler: suspicion drives the membership
// service only — the sequencer protocol itself never consults the failure
// detector (the defining difference from the FD algorithm).
func (p *Process) OnSuspect(q proto.PID) { p.gm.OnSuspect(q) }

// OnTrust implements proto.Handler.
func (p *Process) OnTrust(q proto.PID) { p.gm.OnTrust(q) }

// onData stores a message body and, at the sequencer, queues it for the
// next assignment batch.
func (p *Process) onData(m MsgData) {
	if p.delivered.Seen(m.ID) {
		return
	}
	if _, dup := p.received[m.ID]; dup {
		return
	}
	p.received[m.ID] = m.Body
	if p.IsSequencer() && p.gm.Normal() {
		p.toSequence = append(p.toSequence, m.ID)
		p.trySequence()
	}
}

// trySequence opens the next assignment batch when the previous one has
// completed — mirroring the FD algorithm's one-consensus-at-a-time
// aggregation, which is what makes the two message patterns identical.
func (p *Process) trySequence() {
	if p.batchOpen || len(p.toSequence) == 0 || !p.IsSequencer() || !p.gm.Normal() {
		return
	}
	pairs := make([]SeqPair, 0, len(p.toSequence))
	for _, id := range p.toSequence {
		if _, dup := p.seqOf[id]; dup {
			continue
		}
		if p.delivered.Seen(id) {
			continue
		}
		pairs = append(pairs, SeqPair{Seq: p.nextAssign, ID: id})
		p.nextAssign++
	}
	p.toSequence = p.toSequence[:0]
	if len(pairs) == 0 {
		return
	}
	if p.cfg.Uniform {
		p.batchOpen = true
		p.batchMax = pairs[len(pairs)-1].Seq
	}
	p.rt.Multicast(MsgSeqNum{View: p.gm.View().ID, Pairs: pairs, StableUpTo: p.stability()})
	// Our own copy arrives through local delivery and advances haveUpTo.
}

// onSeqNum records assignments and acknowledges the new contiguous prefix.
func (p *Process) onSeqNum(from proto.PID, m MsgSeqNum) {
	if !p.acceptProtocol(from, m.View, m) {
		return
	}
	for _, pair := range m.Pairs {
		p.assignments[pair.Seq] = pair.ID
		p.seqOf[pair.ID] = pair.Seq
	}
	p.noteStable(m.StableUpTo)
	p.advanceHave()
}

// advanceHave pushes the contiguous data+seqnum prefix forward and drives
// the variant-specific delivery logic.
func (p *Process) advanceHave() {
	advanced := false
	for {
		id, ok := p.assignments[p.haveUpTo+1]
		if !ok {
			break
		}
		if _, have := p.received[id]; !have && !p.delivered.Seen(id) {
			break
		}
		p.haveUpTo++
		advanced = true
	}
	if !advanced {
		return
	}
	if !p.cfg.Uniform {
		// Non-uniform variant: deliver as soon as ordered.
		p.deliverUpTo(p.haveUpTo)
		return
	}
	if p.IsSequencer() {
		p.recomputeDeliverable()
	} else {
		p.rt.Send(p.gm.View().Primary(), MsgAck{View: p.gm.View().ID, UpTo: p.haveUpTo})
	}
}

// onAck updates the sequencer's ack table.
func (p *Process) onAck(from proto.PID, m MsgAck) {
	if !p.acceptProtocol(from, m.View, m) {
		return
	}
	if !p.IsSequencer() {
		return
	}
	if m.UpTo > p.ackedUpTo[from] {
		p.ackedUpTo[from] = m.UpTo
	}
	p.recomputeDeliverable()
}

// recomputeDeliverable delivers and announces the largest prefix
// acknowledged by a majority of the view (sequencer included).
func (p *Process) recomputeDeliverable() {
	members := p.gm.View().Members
	acks := make([]uint64, 0, len(members))
	for _, m := range members {
		if m == p.rt.ID() {
			acks = append(acks, p.haveUpTo)
		} else {
			acks = append(acks, p.ackedUpTo[m])
		}
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	majority := len(members)/2 + 1
	deliverable := acks[majority-1]
	if deliverable <= p.announced {
		return
	}
	p.announced = deliverable
	p.deliverUpTo(deliverable)
	p.rt.Multicast(MsgDeliver{View: p.gm.View().ID, UpTo: deliverable, StableUpTo: p.stability()})
	if p.batchOpen && p.batchMax <= deliverable {
		p.batchOpen = false
		p.trySequence()
	}
}

// nonUniformStabilityLag is how far stability trails delivery in the
// non-uniform variant. Without acks a process cannot know what others
// received, so recently delivered messages must stay in the flush set
// (with their sequence numbers) long enough to cover any in-flight view
// change; dropping them immediately loses ordering knowledge and lets two
// never-excluded members deliver in different orders. A view change lasts
// a few tens of milliseconds — far fewer than this many messages even at
// the wire's capacity.
const nonUniformStabilityLag = 256

// stability returns the all-ack prefix: every member has data and
// sequence number for everything up to it. Stable messages can leave the
// flush set — with full seqnum knowledge preserved for anything a member
// might still be missing, which is what keeps the total order consistent
// across view changes.
func (p *Process) stability() uint64 {
	if !p.cfg.Uniform {
		if p.haveUpTo > nonUniformStabilityLag {
			return p.haveUpTo - nonUniformStabilityLag
		}
		return 0
	}
	stable := p.haveUpTo
	for _, m := range p.gm.View().Members {
		if m == p.rt.ID() {
			continue
		}
		if a := p.ackedUpTo[m]; a < stable {
			stable = a
		}
	}
	return stable
}

// onDeliver applies a delivery announcement.
func (p *Process) onDeliver(from proto.PID, m MsgDeliver) {
	if !p.acceptProtocol(from, m.View, m) {
		return
	}
	p.deliverUpTo(m.UpTo)
	p.noteStable(m.StableUpTo)
}

// acceptProtocol filters sequencing messages: only the current view in
// normal state is processed; an excluded process buffers them for replay
// after its state transfer.
func (p *Process) acceptProtocol(from proto.PID, view uint64, payload any) bool {
	if p.IsExcluded() {
		if len(p.buffered) < p.cfg.BufferLimit {
			p.buffered = append(p.buffered, bufferedPayload{from: from, payload: payload})
		}
		return false
	}
	if view > p.gm.View().ID {
		// Sequencing traffic of a view we never installed: evidence the
		// group reconfigured without us (we were partitioned away). The
		// membership service's staleness probe turns persistent evidence
		// into a rejoin.
		p.gm.NoteHigherView(view)
	}
	return p.gm.Normal() && view == p.gm.View().ID
}

// deliverUpTo A-delivers sequenced messages through seq in order.
func (p *Process) deliverUpTo(seq uint64) {
	for p.nextDeliver <= seq {
		id, ok := p.assignments[p.nextDeliver]
		if !ok {
			return // gap: wait for the assignment (cannot happen in FIFO order)
		}
		body, have := p.received[id]
		if !have && !p.delivered.Seen(id) {
			return // data still missing; resume when it arrives
		}
		p.deliverOne(id, body)
		p.nextDeliver++
	}
	p.pruneStable()
}

// deliverOne performs one A-delivery with duplicate suppression.
func (p *Process) deliverOne(id proto.MsgID, body any) {
	if !p.delivered.Add(id) {
		return
	}
	p.log = append(p.log, LogEntry{ID: id, Body: body})
	p.trimLog()
	p.cfg.Deliver(id, body)
}

// noteStable adopts the sequencer's stability announcement and prunes.
func (p *Process) noteStable(s uint64) {
	if s > p.stableUpTo {
		p.stableUpTo = s
		p.pruneStable()
	}
}

// pruneStable drops bodies of delivered messages that every member is
// known to have: they can never appear in a flush again.
func (p *Process) pruneStable() {
	for id := range p.received {
		seq, sequenced := p.seqOf[id]
		if sequenced && seq <= p.stableUpTo && p.delivered.Seen(id) {
			delete(p.received, id)
		}
	}
}

// trimLog bounds the state-transfer log.
func (p *Process) trimLog() {
	if len(p.log) <= p.cfg.LogRetain+1024 {
		return
	}
	drop := len(p.log) - p.cfg.LogRetain
	p.log = append([]LogEntry{}, p.log[drop:]...)
	p.logStart += uint64(drop)
}

// resetViewState clears all per-view ordering state.
func (p *Process) resetViewState() {
	p.assignments = make(map[uint64]proto.MsgID)
	p.seqOf = make(map[proto.MsgID]uint64)
	p.nextDeliver = 1
	p.haveUpTo = 0
	p.stableUpTo = 0
	p.nextAssign = 1
	p.toSequence = nil
	p.batchOpen = false
	p.batchMax = 0
	p.ackedUpTo = make(map[proto.PID]uint64)
	p.announced = 0
}

// --- gm.App implementation ---

// Unstable implements gm.App: the flush set is exactly the received map.
func (p *Process) Unstable() []gm.UnstableMsg {
	out := make([]gm.UnstableMsg, 0, len(p.received))
	for id, body := range p.received {
		seq := int64(-1)
		if s, ok := p.seqOf[id]; ok {
			seq = int64(s)
		}
		out = append(out, gm.UnstableMsg{ID: id, Seq: seq, Body: body})
	}
	return out
}

// InstallView implements gm.App: deliver the decided flush remainder and
// start the new view with fresh sequencing state.
func (p *Process) InstallView(v gm.View, flush []gm.UnstableMsg) {
	for _, um := range flush {
		p.deliverOne(um.ID, um.Body)
	}
	p.startNewView(v)
	if p.cfg.OnView != nil {
		p.cfg.OnView(v)
	}
}

// startNewView resets ordering state and re-sequences leftovers.
func (p *Process) startNewView(v gm.View) {
	p.resetViewState()
	// Everything delivered up to the install is stable by view synchrony:
	// only undelivered messages stay in the flush set.
	for id := range p.received {
		if p.delivered.Seen(id) {
			delete(p.received, id)
		}
	}
	if v.Primary() == p.rt.ID() {
		// Undelivered messages are re-sequenced in the new view, in
		// canonical ID order (all members compute the same leftovers, but
		// only the sequencer acts).
		ids := make([]proto.MsgID, 0, len(p.received))
		for id := range p.received {
			ids = append(ids, id)
		}
		proto.SortMsgIDs(ids)
		p.toSequence = ids
		p.trySequence()
	}
}

// Excluded implements gm.App.
func (p *Process) Excluded(gm.View) {
	// Frozen: ABroadcast queues, protocol messages buffer, data still
	// accumulates in received. Everything resolves at InstallSync.
}

// SyncRequest implements gm.App.
func (p *Process) SyncRequest() uint64 { return p.DeliveredCount() }

// SyncPayload implements gm.App: the missing suffix of the delivered log.
func (p *Process) SyncPayload(afterCount uint64) any {
	if afterCount < p.logStart {
		panic(fmt.Sprintf("seqabcast: state transfer needs deliveries from %d but log starts at %d; raise LogRetain",
			afterCount, p.logStart))
	}
	start := afterCount - p.logStart
	entries := make([]LogEntry, len(p.log[start:]))
	copy(entries, p.log[start:])
	return syncState{Entries: entries}
}

// InstallSync implements gm.App: apply the state snapshot, rejoin the
// view, replay buffered traffic and release queued broadcasts.
func (p *Process) InstallSync(v gm.View, payload any) {
	st, ok := payload.(syncState)
	if !ok {
		panic(fmt.Sprintf("seqabcast: sync payload of unexpected type %T", payload))
	}
	for _, e := range st.Entries {
		p.deliverOne(e.ID, e.Body)
	}
	p.startNewView(v)
	if p.cfg.OnView != nil {
		p.cfg.OnView(v)
	}
	buffered := p.buffered
	p.buffered = nil
	for _, bp := range buffered {
		switch m := bp.payload.(type) {
		case MsgSeqNum:
			if m.View == v.ID {
				p.onSeqNum(bp.from, m)
			}
		case MsgDeliver:
			if m.View == v.ID {
				p.onDeliver(bp.from, m)
			}
		case MsgAck:
			if m.View == v.ID {
				p.onAck(bp.from, m)
			}
		}
	}
	queued := p.queued
	p.queued = nil
	for _, qb := range queued {
		p.rt.Multicast(MsgData{ID: qb.id, Body: qb.body})
	}
	// Messages this process broadcast in its previous membership that the
	// group never sequenced — typically lost to the partition that got us
	// excluded — are re-announced in ID order, so rejoining also recovers
	// them. Receivers absorb duplicates.
	ids := make([]proto.MsgID, 0, len(p.received))
	for id := range p.received {
		if id.Origin == p.rt.ID() && !p.delivered.Seen(id) {
			ids = append(ids, id)
		}
	}
	proto.SortMsgIDs(ids)
	for _, id := range ids {
		p.rt.Multicast(MsgData{ID: id, Body: p.received[id]})
	}
}
