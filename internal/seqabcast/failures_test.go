package seqabcast

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
)

// TestSequencerCrashMidBatch crashes the sequencer between assigning a
// batch and the deliver announcement: the flush must carry the
// assignments so the survivors deliver them consistently.
func TestSequencerCrashMidBatch(t *testing.T) {
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	// m broadcast at 40ms: data at sequencer at ~43, seqnum multicast
	// leaves ~44-46. Crash the sequencer at 46.5ms: after the seqnum hit
	// the wire, before any deliver message.
	c.broadcastAt(1, at(40))
	c.sys.CrashAt(0, at(46.5))
	c.run(2 * time.Second)
	for p := 1; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("survivor p%d delivered %d, want 1", p, len(c.deliveries[p]))
		}
	}
	c.checkTotalOrder(t)
}

// TestSequencerCrashAfterPartialDeliver crashes the sequencer right after
// it delivered locally (majority acks) but potentially before everyone
// processed the deliver announcement: uniform agreement must hold.
func TestSequencerCrashAfterPartialDeliver(t *testing.T) {
	td := 10 * time.Millisecond
	for _, crashMs := range []float64{47, 48, 49, 50, 51, 52} {
		c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
		c.broadcastAt(1, at(40))
		c.sys.CrashAt(0, at(crashMs))
		c.run(2 * time.Second)
		c.checkTotalOrder(t)
		c.checkUniformAgreement(t)
	}
}

// TestCascadingCrashes kills two processes one after the other at n=5;
// the view shrinks twice and everything keeps flowing.
func TestCascadingCrashes(t *testing.T) {
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 5, qos: fd.QoS{TD: td}})
	for i := 0; i < 40; i++ {
		c.broadcastAt(proto.PID(i%5), at(float64(10*i)))
	}
	c.sys.CrashAt(0, at(100)) // sequencer
	c.sys.CrashAt(1, at(200)) // its successor
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkUniformAgreement(t)
	v := c.procs[2].View()
	if v.Contains(0) || v.Contains(1) {
		t.Fatalf("final view %v contains crashed members", v)
	}
	if v.Primary() != 2 {
		t.Fatalf("sequencer = %d, want 2", v.Primary())
	}
	// All messages from correct senders must be everywhere.
	for id := range c.sent {
		if id.Origin == 0 || id.Origin == 1 {
			continue
		}
		for p := 2; p < 5; p++ {
			found := false
			for _, d := range c.deliveries[p] {
				if d.id == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v missing at p%d", id, p)
			}
		}
	}
}

// TestCrashDuringViewChange crashes a second process while the view
// change for the first crash is still running.
func TestCrashDuringViewChange(t *testing.T) {
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 5, qos: fd.QoS{TD: td}})
	for i := 0; i < 20; i++ {
		c.broadcastAt(proto.PID(i%5), at(float64(5*i)))
	}
	c.sys.CrashAt(0, at(50))
	// Detection at 60ms starts the change; crash p1 at 62ms, mid-flush.
	c.sys.CrashAt(1, at(62))
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkUniformAgreement(t)
	v := c.procs[2].View()
	if v.Contains(0) || v.Contains(1) {
		t.Fatalf("final view %v contains crashed members", v)
	}
}

// TestSimultaneousWrongSuspicions has two processes wrongly suspecting
// each other at the same time — the exclusion targets race and the group
// must still converge on one view sequence.
func TestSimultaneousWrongSuspicions(t *testing.T) {
	c := newCluster(clusterOpts{n: 5})
	c.eng.Schedule(at(20), func() {
		c.sys.FDs.InjectMistake(1, 2, 60*time.Millisecond)
		c.sys.FDs.InjectMistake(2, 1, 60*time.Millisecond)
	})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%5), at(float64(10+4*i)))
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	// Everyone back in after the mistakes end.
	v := c.procs[0].View()
	if len(v.Members) != 5 {
		t.Fatalf("final view %v, want all 5 members back", v)
	}
}

// TestSuspicionOfSequencerMovesIt: a long wrong suspicion of the
// sequencer excludes it; the next member takes over sequencing; the old
// sequencer rejoins at the back of the view.
func TestSuspicionOfSequencerMovesIt(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	c.eng.Schedule(at(20), func() {
		c.sys.FDs.InjectMistake(1, 0, 100*time.Millisecond)
	})
	for i := 0; i < 20; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(10+8*i)))
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	v := c.procs[1].View()
	if len(v.Members) != 3 {
		t.Fatalf("final view %v, want 3 members", v)
	}
	if v.Primary() != 1 {
		t.Fatalf("sequencer = %d, want 1 (p0 rejoined at the back)", v.Primary())
	}
	if v.Members[2] != 0 {
		t.Fatalf("members = %v, want p0 last", v.Members)
	}
}

// TestBroadcastDuringViewChangeDeliveredOnce: messages sent exactly while
// the membership is reconfiguring are neither lost nor duplicated.
func TestBroadcastDuringViewChangeDeliveredOnce(t *testing.T) {
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	c.sys.CrashAt(2, at(50))
	// Detection at 60; change runs ~60-80. Broadcast right in the middle.
	for _, ms := range []float64{59, 61, 63, 65, 67, 70, 75} {
		c.broadcastAt(proto.PID(int(ms)%2), at(ms))
	}
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	// No duplicates at any survivor.
	for p := 0; p < 2; p++ {
		seen := map[proto.MsgID]int{}
		for _, d := range c.deliveries[p] {
			seen[d.id]++
			if seen[d.id] > 1 {
				t.Fatalf("p%d delivered %v twice", p, d.id)
			}
		}
	}
}

// TestStateTransferCoversLongExclusion: many messages are delivered while
// a process is excluded; the rejoin snapshot must replay all of them in
// order.
func TestStateTransferCoversLongExclusion(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	c.eng.Schedule(at(20), func() {
		c.sys.FDs.InjectMistake(0, 2, 400*time.Millisecond)
	})
	for i := 0; i < 100; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(10+4*i))) // senders 0 and 1 only
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	if got, want := c.procs[2].DeliveredCount(), c.procs[0].DeliveredCount(); got != want {
		t.Fatalf("rejoined p2 delivered %d, members delivered %d", got, want)
	}
}

func TestNonUniformSequencerCrash(t *testing.T) {
	// The non-uniform variant has no ack round; a sequencer crash still
	// reconfigures through the membership service and total order holds
	// among survivors.
	uniform := false
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}, uniform: &uniform})
	for i := 0; i < 20; i++ {
		c.broadcastAt(proto.PID(1+i%2), at(float64(40+4*i)))
	}
	c.sys.CrashAt(0, at(60))
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	// All messages from the surviving senders must reach both survivors.
	for id := range c.sent {
		for p := 1; p < 3; p++ {
			found := false
			for _, d := range c.deliveries[p] {
				if d.id == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v missing at p%d", id, p)
			}
		}
	}
}

func TestNonUniformWrongSuspicionExclusionRejoin(t *testing.T) {
	uniform := false
	c := newCluster(clusterOpts{n: 3, uniform: &uniform})
	c.eng.Schedule(at(30), func() {
		c.sys.FDs.InjectMistake(0, 2, 60*time.Millisecond)
	})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(10+4*i)))
	}
	c.run(3 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	if c.procs[2].IsExcluded() {
		t.Fatal("p2 still excluded after mistake ended")
	}
}

func TestSequencerBatchingUnderBurst(t *testing.T) {
	// A burst far faster than the protocol round-trip must be sequenced
	// in a handful of batches (MsgSeqNum aggregation), not one per
	// message — the §4.2 "essential for good performance" property.
	c := newCluster(clusterOpts{n: 3})
	seqnums := 0
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind == netmodel.TraceSend {
			if _, ok := ev.Payload.(MsgSeqNum); ok {
				seqnums++
			}
		}
	})
	for i := 0; i < 40; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(i)/5)) // 5 msgs per ms
	}
	c.run(time.Second)
	c.checkAllDelivered(t)
	if seqnums >= 20 {
		t.Fatalf("40 messages used %d seqnum multicasts; batching broken", seqnums)
	}
}
