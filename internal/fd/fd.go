// Package fd models failure detectors by their quality of service, after
// Chen, Toueg and Aguilera ("On the quality of service of failure
// detectors", IEEE ToC 2002), exactly as the paper's Section 6.2 does.
//
// The system has n processes that monitor each other, so there are n(n−1)
// failure-detector modules, one per ordered pair (q monitors p). Each
// module is described by three QoS metrics:
//
//   - detection time TD: the time from p's crash until q suspects p
//     permanently (a constant, as in the paper);
//   - mistake recurrence time TMR: the time between two consecutive wrong
//     suspicions of a correct p (exponentially distributed);
//   - mistake duration TM: how long a wrong suspicion lasts (exponentially
//     distributed; a zero mean produces instantaneous mistakes whose
//     suspect and trust edges still fire, in order).
//
// All modules are independent and identically distributed — the paper's
// simplifying assumption, kept here deliberately so results are
// comparable. Consumers receive edge-triggered OnSuspect/OnTrust events
// and can poll the current suspicion state.
package fd

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// QoS holds the three failure-detector quality-of-service parameters.
// The zero value describes a perfect failure detector that never makes
// mistakes and detects crashes instantly.
type QoS struct {
	// TD is the crash detection time, a constant as in the paper.
	TD time.Duration
	// TMR is the mean mistake recurrence time. Zero disables wrong
	// suspicions entirely (the paper's normal-steady and crash-steady
	// scenarios).
	TMR time.Duration
	// TM is the mean mistake duration. Zero produces instantaneous
	// mistakes: the suspect and trust edges fire at the same virtual
	// instant, suspect first (the paper's Figure 6 sets TM = 0).
	TM time.Duration
}

func (q QoS) validate() error {
	if q.TD < 0 || q.TMR < 0 || q.TM < 0 {
		return fmt.Errorf("fd: negative QoS parameter: %+v", q)
	}
	return nil
}

// Listener receives edge-triggered suspicion changes from the failure
// detector of one monitoring process.
type Listener interface {
	// OnSuspect fires when the detector starts suspecting p.
	OnSuspect(p int)
	// OnTrust fires when the detector stops suspecting a correct p.
	OnTrust(p int)
}

// Detector is the collection of failure-detector modules at one process:
// it monitors every other process. Obtain detectors from a Sim.
type Detector struct {
	owner    int
	sim      *Sim
	suspects []bool
	listener Listener
}

// Owner returns the monitoring process this detector belongs to.
func (d *Detector) Owner() int { return d.owner }

// Suspects reports whether the detector currently suspects p. A process
// never suspects itself.
func (d *Detector) Suspects(p int) bool { return d.suspects[p] }

// SuspectedSet returns the processes currently suspected, in ascending
// order. The slice is freshly allocated.
func (d *Detector) SuspectedSet() []int {
	var out []int
	for p, s := range d.suspects {
		if s {
			out = append(out, p)
		}
	}
	return out
}

// SetListener installs the consumer of suspicion edges. Passing nil
// removes it. Only one listener is supported; the protocol runtime fans
// events out to its layers.
func (d *Detector) SetListener(l Listener) { d.listener = l }

func (d *Detector) setSuspect(p int, suspected bool) {
	if d.suspects[p] == suspected {
		return
	}
	d.suspects[p] = suspected
	if d.listener == nil {
		return
	}
	if suspected {
		d.listener.OnSuspect(p)
	} else {
		d.listener.OnTrust(p)
	}
}

// pairState tracks the mistake process of one (monitor, target) module.
type pairState struct {
	rng           *sim.Rand
	crashDetected bool // target's crash has been detected: suspicion is permanent
	// severed marks the directed link broken by a network partition: the
	// monitor suspects the target like a crash, but reversibly — Restore
	// (a heal) withdraws the suspicion. severEpoch invalidates detection
	// callbacks of earlier sever episodes.
	severed    bool
	severEpoch uint64
}

// Sim drives the failure detectors of all n processes according to a
// common QoS parameterisation.
type Sim struct {
	eng *sim.Engine
	// engs holds per-monitor engine handles: every timer of a module
	// (q monitors p) — mistake arrivals, detection delays, trust edges —
	// runs in monitor q's conflict domain, so suspicion edges fire inside
	// the domain that consumes them.
	engs      []*sim.Engine
	n         int
	qos       QoS
	detectors []*Detector
	pairs     [][]pairState // [monitor][target]
	crashed   []bool
	// crashEpoch invalidates the pending detection callbacks of a crash
	// that was reversed by Recover before its TD elapsed.
	crashEpoch []uint64
	quiesced   bool
}

// StopMistakes permanently silences the stochastic wrong-suspicion
// processes from the current instant on (in-progress mistakes still end
// with their trust edge). Tests and experiments use it to give runs a
// quiescent tail in which liveness can be asserted.
func (s *Sim) StopMistakes() { s.quiesced = true }

// NewSim creates the failure-detector simulation. rng seeds one
// independent stream per ordered process pair. The mistake processes (if
// TMR > 0) start immediately.
func NewSim(eng *sim.Engine, n int, qos QoS, rng *sim.Rand) *Sim {
	if err := qos.validate(); err != nil {
		panic(err)
	}
	if n < 1 {
		panic(fmt.Sprintf("fd: n = %d, need at least 1", n))
	}
	s := &Sim{
		eng:        eng,
		engs:       make([]*sim.Engine, n),
		n:          n,
		qos:        qos,
		crashed:    make([]bool, n),
		crashEpoch: make([]uint64, n),
	}
	s.detectors = make([]*Detector, n)
	s.pairs = make([][]pairState, n)
	for q := 0; q < n; q++ {
		s.engs[q] = eng.For(q)
		s.detectors[q] = &Detector{owner: q, sim: s, suspects: make([]bool, n)}
		s.pairs[q] = make([]pairState, n)
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			s.pairs[q][p] = pairState{rng: rng.ForkN(q*n + p)}
		}
	}
	if qos.TMR > 0 {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				if p != q {
					s.scheduleNextMistake(q, p)
				}
			}
		}
	}
	return s
}

// N returns the number of processes.
func (s *Sim) N() int { return s.n }

// QoS returns the parameterisation.
func (s *Sim) QoS() QoS { return s.qos }

// Detector returns the failure detector owned by process q.
func (s *Sim) Detector(q int) *Detector { return s.detectors[q] }

// Crash records that p crashed at the current instant. Every other
// process starts suspecting p permanently TD later (if it does not
// already suspect it, the edge fires then). Crashing twice is a no-op.
func (s *Sim) Crash(p int) {
	if s.crashed[p] {
		return
	}
	s.crashed[p] = true
	epoch := s.crashEpoch[p]
	for q := 0; q < s.n; q++ {
		if q == p {
			continue
		}
		q := q
		s.engs[q].After(s.qos.TD, func() {
			if s.crashEpoch[p] != epoch {
				return // the crash was reversed by Recover before TD elapsed
			}
			s.pairs[q][p].crashDetected = true
			s.detectors[q].setSuspect(p, true)
		})
	}
}

// Recover reverses Crash: p is alive again as of the current instant.
// Pending detections of the reversed crash are invalidated, the permanent
// suspicion is withdrawn (trust edges fire in ascending monitor order,
// except on links currently severed by a partition) and the stochastic
// mistake processes resume. Recovering a live process is a no-op.
func (s *Sim) Recover(p int) {
	if !s.crashed[p] {
		return
	}
	s.crashed[p] = false
	s.crashEpoch[p]++
	for q := 0; q < s.n; q++ {
		if q == p {
			continue
		}
		st := &s.pairs[q][p]
		st.crashDetected = false
		if !st.severed {
			s.detectors[q].setSuspect(p, false)
		}
	}
}

// Sever marks the directed link (monitor q, target p) broken by a network
// partition: q starts suspecting p TD later, exactly like a crash, but
// reversibly — Restore withdraws the suspicion. Severing a severed link
// is a no-op.
func (s *Sim) Sever(q, p int) {
	if q == p {
		return
	}
	st := &s.pairs[q][p]
	if st.severed {
		return
	}
	st.severed = true
	epoch := st.severEpoch
	s.engs[q].After(s.qos.TD, func() {
		if !st.severed || st.severEpoch != epoch {
			return // healed before the detection time elapsed
		}
		s.detectors[q].setSuspect(p, true)
	})
}

// Restore heals a severed link: unless p's crash has been detected, q
// trusts p again at the current instant (an in-progress stochastic
// mistake of the pair ends with it). Restoring an intact link is a no-op.
func (s *Sim) Restore(q, p int) {
	if q == p {
		return
	}
	st := &s.pairs[q][p]
	if !st.severed {
		return
	}
	st.severed = false
	st.severEpoch++
	if !st.crashDetected {
		s.detectors[q].setSuspect(p, false)
	}
}

// PreSuspect establishes the crash-steady initial condition for p: the
// crash happened long before the experiment, so every detector suspects p
// permanently from time zero, without firing any edge. The caller is
// responsible for also crashing p in the network model.
func (s *Sim) PreSuspect(p int) {
	s.crashed[p] = true
	for q := 0; q < s.n; q++ {
		if q == p {
			continue
		}
		s.pairs[q][p].crashDetected = true
		s.detectors[q].suspects[p] = true
	}
}

// InjectMistake forces monitor q to wrongly suspect p for the given
// duration, independent of the stochastic mistake process. It is the hook
// examples and tests use to script suspicion scenarios.
func (s *Sim) InjectMistake(q, p int, duration time.Duration) {
	if q == p {
		return
	}
	s.beginMistake(q, p, duration)
}

// scheduleNextMistake arms the next wrong suspicion of the (q, p) module:
// mistake starts are spaced Exp(TMR) apart.
func (s *Sim) scheduleNextMistake(q, p int) {
	st := &s.pairs[q][p]
	gap := sim.Millis(st.rng.Exp(float64(s.qos.TMR) / float64(time.Millisecond)))
	s.engs[q].After(gap, func() {
		if s.quiesced {
			return
		}
		if !st.crashDetected {
			dur := sim.Millis(st.rng.Exp(float64(s.qos.TM) / float64(time.Millisecond)))
			s.beginMistake(q, p, dur)
		}
		s.scheduleNextMistake(q, p)
	})
}

// beginMistake raises the suspicion edge and schedules the trust edge
// after the mistake duration. If the module is already suspecting p the
// mistake merges into the current one (no duplicate edge; the earlier
// trust edge still applies).
func (s *Sim) beginMistake(q, p int, duration time.Duration) {
	st := &s.pairs[q][p]
	if st.crashDetected || s.detectors[q].suspects[p] {
		return
	}
	s.detectors[q].setSuspect(p, true)
	s.engs[q].After(duration, func() {
		if !st.crashDetected && !st.severed {
			s.detectors[q].setSuspect(p, false)
		}
	})
}
