package fd

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func at(ms float64) sim.Time { return sim.Time(0).Add(sim.Millis(ms)) }

func TestSeverSuspectsAfterTD(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 3, QoS{TD: 10 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(5), func() { s.Sever(0, 2) })
	eng.RunUntil(at(100))
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want exactly one suspect edge", edges)
	}
	e := edges[0]
	if e.monitor != 0 || e.target != 2 || !e.suspect || e.at != at(15) {
		t.Fatalf("edge = %+v, want monitor 0 suspects 2 at 15ms", e)
	}
	if !s.Detector(0).Suspects(2) || s.Detector(2).Suspects(0) {
		t.Fatal("severing is directed: only the severed monitor suspects")
	}
}

func TestRestoreBeforeTDCancelsDetection(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: 10 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(5), func() { s.Sever(0, 1) })
	eng.Schedule(at(9), func() { s.Restore(0, 1) })
	eng.RunUntil(at(100))
	if len(edges) != 0 {
		t.Fatalf("edges = %+v, want none: the sever healed before detection", edges)
	}
}

func TestRestoreFiresTrustEdge(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{}, sim.NewRand(1)) // TD = 0: suspect instantly
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(5), func() { s.Sever(0, 1) })
	eng.Schedule(at(20), func() { s.Restore(0, 1) })
	eng.RunUntil(at(100))
	if len(edges) != 2 {
		t.Fatalf("edges = %+v, want suspect then trust", edges)
	}
	if !edges[0].suspect || edges[0].at != at(5) {
		t.Fatalf("first edge = %+v, want suspect at 5ms", edges[0])
	}
	if edges[1].suspect || edges[1].at != at(20) {
		t.Fatalf("second edge = %+v, want trust at 20ms", edges[1])
	}
}

func TestSeveredSuspicionSurvivesMistakeEnd(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: 50 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	// A scripted mistake raises suspicion at 0 for 10ms; the link severs
	// at 5ms. The mistake's trust edge must not clear the severed link's
	// suspicion.
	eng.Schedule(at(0), func() { s.InjectMistake(0, 1, 10*time.Millisecond) })
	eng.Schedule(at(5), func() { s.Sever(0, 1) })
	eng.RunUntil(at(200))
	if len(edges) != 1 || !edges[0].suspect {
		t.Fatalf("edges = %+v, want the initial suspect edge only", edges)
	}
	if !s.Detector(0).Suspects(1) {
		t.Fatal("suspicion dropped while the link is severed")
	}
}

func TestRecoverWithdrawsCrashSuspicion(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 3, QoS{TD: 10 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(0), func() { s.Crash(2) })
	eng.Schedule(at(50), func() { s.Recover(2) })
	eng.RunUntil(at(200))
	// Suspect edges at 10ms from monitors 0 and 1, trust edges at 50ms in
	// ascending monitor order.
	if len(edges) != 4 {
		t.Fatalf("edges = %+v, want 2 suspects + 2 trusts", edges)
	}
	for i, want := range []edge{
		{monitor: 0, target: 2, suspect: true, at: at(10)},
		{monitor: 1, target: 2, suspect: true, at: at(10)},
		{monitor: 0, target: 2, suspect: false, at: at(50)},
		{monitor: 1, target: 2, suspect: false, at: at(50)},
	} {
		if edges[i] != want {
			t.Fatalf("edge %d = %+v, want %+v", i, edges[i], want)
		}
	}
	if s.Detector(0).Suspects(2) || s.Detector(1).Suspects(2) {
		t.Fatal("recovered process still suspected")
	}
}

func TestRecoverBeforeTDInvalidatesDetection(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: 20 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(0), func() { s.Crash(1) })
	eng.Schedule(at(10), func() { s.Recover(1) })
	eng.RunUntil(at(100))
	if len(edges) != 0 {
		t.Fatalf("edges = %+v, want none: the crash was reversed before detection", edges)
	}
	if s.Detector(0).Suspects(1) {
		t.Fatal("reversed crash still detected")
	}
}

func TestRecrashAfterRecoverDetectsAgain(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: 10 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(at(0), func() { s.Crash(1) })
	eng.Schedule(at(30), func() { s.Recover(1) })
	eng.Schedule(at(40), func() { s.Crash(1) })
	eng.RunUntil(at(200))
	want := []edge{
		{monitor: 0, target: 1, suspect: true, at: at(10)},
		{monitor: 0, target: 1, suspect: false, at: at(30)},
		{monitor: 0, target: 1, suspect: true, at: at(50)},
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %+v, want %+v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}
}
