package fd

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// edge records one suspicion transition for assertions.
type edge struct {
	monitor int
	target  int
	suspect bool
	at      sim.Time
}

// recorder collects suspicion edges from one detector.
type recorder struct {
	eng     *sim.Engine
	monitor int
	edges   *[]edge
}

func (r recorder) OnSuspect(p int) {
	*r.edges = append(*r.edges, edge{monitor: r.monitor, target: p, suspect: true, at: r.eng.Now()})
}

func (r recorder) OnTrust(p int) {
	*r.edges = append(*r.edges, edge{monitor: r.monitor, target: p, suspect: false, at: r.eng.Now()})
}

func record(eng *sim.Engine, s *Sim, edges *[]edge) {
	for q := 0; q < s.N(); q++ {
		s.Detector(q).SetListener(recorder{eng: eng, monitor: q, edges: edges})
	}
}

func TestNoSuspicionsByDefault(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 4, QoS{}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.RunUntil(sim.Time(0).Add(10 * time.Second))
	if len(edges) != 0 {
		t.Fatalf("perfect detector produced %d edges", len(edges))
	}
	for q := 0; q < 4; q++ {
		for p := 0; p < 4; p++ {
			if s.Detector(q).Suspects(p) {
				t.Fatalf("detector %d suspects %d with no crashes", q, p)
			}
		}
	}
}

func TestCrashDetectionAfterTD(t *testing.T) {
	eng := sim.New()
	td := 25 * time.Millisecond
	s := NewSim(eng, 3, QoS{TD: td}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	crashAt := sim.Time(0).Add(40 * time.Millisecond)
	eng.Schedule(crashAt, func() { s.Crash(2) })
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2 (p0 and p1 suspect p2)", len(edges))
	}
	want := crashAt.Add(td)
	for _, e := range edges {
		if !e.suspect || e.target != 2 {
			t.Fatalf("unexpected edge %+v", e)
		}
		if e.at != want {
			t.Fatalf("suspicion at %v, want %v", e.at, want)
		}
	}
	if !s.Detector(0).Suspects(2) || !s.Detector(1).Suspects(2) {
		t.Fatal("detectors do not suspect the crashed process")
	}
	if s.Detector(2).Suspects(2) {
		t.Fatal("process suspects itself")
	}
}

func TestCrashTwiceIsNoop(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(0, func() { s.Crash(1); s.Crash(1) })
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if len(edges) != 1 {
		t.Fatalf("double crash produced %d edges, want 1", len(edges))
	}
}

func TestPermanentSuspicionSurvivesMistakeEnd(t *testing.T) {
	// A mistake is in progress when the crash is detected; the trust edge
	// that would end the mistake must not fire.
	eng := sim.New()
	s := NewSim(eng, 2, QoS{TD: 10 * time.Millisecond}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(0, func() {
		s.InjectMistake(0, 1, 100*time.Millisecond) // would trust again at 100ms
		s.Crash(1)                                  // detected at 10ms -> permanent
	})
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if !s.Detector(0).Suspects(1) {
		t.Fatal("suspicion not permanent after crash detection")
	}
	for _, e := range edges {
		if !e.suspect {
			t.Fatalf("trust edge fired after crash detection: %+v", e)
		}
	}
}

func TestPreSuspect(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 3, QoS{TD: time.Hour}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	s.PreSuspect(1)
	if !s.Detector(0).Suspects(1) || !s.Detector(2).Suspects(1) {
		t.Fatal("PreSuspect did not establish suspicion")
	}
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if len(edges) != 0 {
		t.Fatalf("PreSuspect fired %d edges, want none", len(edges))
	}
}

func TestInjectMistakeEdges(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	at := sim.Time(0).Add(5 * time.Millisecond)
	eng.Schedule(at, func() { s.InjectMistake(0, 1, 20*time.Millisecond) })
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want suspect+trust", len(edges))
	}
	if !edges[0].suspect || edges[0].at != at {
		t.Fatalf("suspect edge = %+v", edges[0])
	}
	if edges[1].suspect || edges[1].at != at.Add(20*time.Millisecond) {
		t.Fatalf("trust edge = %+v", edges[1])
	}
	if s.Detector(0).Suspects(1) {
		t.Fatal("suspicion persists after mistake duration")
	}
}

func TestZeroDurationMistakeFiresBothEdgesInOrder(t *testing.T) {
	// TM = 0 in the paper's Figure 6: both edges fire at the same
	// instant, suspect strictly before trust.
	eng := sim.New()
	s := NewSim(eng, 2, QoS{}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	at := sim.Time(0).Add(time.Millisecond)
	eng.Schedule(at, func() { s.InjectMistake(1, 0, 0) })
	eng.RunUntil(sim.Time(0).Add(time.Second))
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	if !edges[0].suspect || edges[1].suspect {
		t.Fatalf("edge order = %+v, want suspect then trust", edges)
	}
	if edges[0].at != at || edges[1].at != at {
		t.Fatal("zero-duration mistake edges not at the same instant")
	}
}

func TestSelfMistakeIgnored(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{}, sim.NewRand(1))
	s.InjectMistake(1, 1, time.Second)
	if s.Detector(1).Suspects(1) {
		t.Fatal("process suspects itself")
	}
}

func TestOverlappingMistakesMerge(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 2, QoS{}, sim.NewRand(1))
	var edges []edge
	record(eng, s, &edges)
	eng.Schedule(0, func() {
		s.InjectMistake(0, 1, 10*time.Millisecond)
		s.InjectMistake(0, 1, 50*time.Millisecond) // merged: no second suspect edge
	})
	eng.RunUntil(sim.Time(0).Add(time.Second))
	// One suspect edge; the first trust edge (at 10ms) ends the mistake.
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2: %+v", len(edges), edges)
	}
	if edges[1].suspect || edges[1].at != sim.Time(0).Add(10*time.Millisecond) {
		t.Fatalf("trust edge = %+v, want at 10ms", edges[1])
	}
}

func TestMistakeRecurrenceStatistics(t *testing.T) {
	// With TMR = 100ms and TM = 0, one ordered pair should produce about
	// one mistake per 100ms of virtual time.
	eng := sim.New()
	qos := QoS{TMR: 100 * time.Millisecond}
	s := NewSim(eng, 2, qos, sim.NewRand(42))
	var edges []edge
	record(eng, s, &edges)
	horizon := 200 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	suspects := 0
	for _, e := range edges {
		if e.suspect {
			suspects++
		}
	}
	// Two ordered pairs, each with rate 10/s over 200s => expect ~4000.
	want := 2.0 * horizon.Seconds() / qos.TMR.Seconds()
	got := float64(suspects)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("observed %v mistakes, want ~%v (±5%%)", got, want)
	}
}

func TestMistakeDurationStatistics(t *testing.T) {
	// With TM = 20ms, mean observed mistake duration should be ~20ms.
	eng := sim.New()
	qos := QoS{TMR: 100 * time.Millisecond, TM: 20 * time.Millisecond}
	s := NewSim(eng, 2, qos, sim.NewRand(7))
	var edges []edge
	record(eng, s, &edges)
	eng.RunUntil(sim.Time(0).Add(100 * time.Second))
	start := make(map[int]sim.Time) // by target (single monitor pair relevant per target)
	var durations []float64
	for _, e := range edges {
		key := e.monitor*10 + e.target
		if e.suspect {
			start[key] = e.at
		} else if st, ok := start[key]; ok {
			durations = append(durations, e.at.Sub(st).Seconds()*1000)
			delete(start, key)
		}
	}
	if len(durations) < 100 {
		t.Fatalf("only %d complete mistakes observed", len(durations))
	}
	sum := 0.0
	for _, d := range durations {
		sum += d
	}
	mean := sum / float64(len(durations))
	if math.Abs(mean-20) > 2.5 {
		t.Fatalf("mean mistake duration = %vms, want ~20ms", mean)
	}
}

func TestFractionOfTimeSuspected(t *testing.T) {
	// Long-run fraction of time wrongly suspected ≈ TM / (TMR + ...):
	// for a renewal process with Exp(TMR) spacing between starts and
	// Exp(TM) durations (merging overlaps), the fraction is
	// 1 - exp(-TM/TMR) in the M/G/inf-style approximation; for
	// TM << TMR it is close to TM/TMR. Use TM/TMR = 0.1 and allow slack.
	eng := sim.New()
	qos := QoS{TMR: 200 * time.Millisecond, TM: 20 * time.Millisecond}
	s := NewSim(eng, 2, qos, sim.NewRand(99))
	var suspectedTime time.Duration
	var lastChange sim.Time
	det := s.Detector(0)
	det.SetListener(listenerFuncs{
		suspect: func(p int) { lastChange = eng.Now() },
		trust: func(p int) {
			suspectedTime += eng.Now().Sub(lastChange)
		},
	})
	horizon := 400 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	frac := suspectedTime.Seconds() / horizon.Seconds()
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("suspected fraction = %v, want ~0.1", frac)
	}
}

// listenerFuncs adapts two closures to the Listener interface.
type listenerFuncs struct {
	suspect func(int)
	trust   func(int)
}

func (l listenerFuncs) OnSuspect(p int) { l.suspect(p) }
func (l listenerFuncs) OnTrust(p int)   { l.trust(p) }

func TestSuspectedSet(t *testing.T) {
	eng := sim.New()
	s := NewSim(eng, 4, QoS{}, sim.NewRand(1))
	s.PreSuspect(1)
	s.PreSuspect(3)
	got := s.Detector(0).SuspectedSet()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SuspectedSet = %v, want [1 3]", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []edge {
		eng := sim.New()
		s := NewSim(eng, 3, QoS{TMR: 50 * time.Millisecond, TM: 5 * time.Millisecond}, sim.NewRand(1234))
		var edges []edge
		record(eng, s, &edges)
		eng.RunUntil(sim.Time(0).Add(10 * time.Second))
		return edges
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in edge count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at edge %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInvalidQoSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative QoS did not panic")
		}
	}()
	NewSim(sim.New(), 2, QoS{TD: -time.Second}, sim.NewRand(1))
}

func TestInvalidNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	NewSim(sim.New(), 0, QoS{}, sim.NewRand(1))
}

func TestOwner(t *testing.T) {
	s := NewSim(sim.New(), 3, QoS{}, sim.NewRand(1))
	for q := 0; q < 3; q++ {
		if s.Detector(q).Owner() != q {
			t.Fatalf("Detector(%d).Owner() = %d", q, s.Detector(q).Owner())
		}
	}
}
