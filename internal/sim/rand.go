package sim

import (
	"math"
)

// Rand is a small, fast, deterministic pseudo-random generator
// (SplitMix64). It is not cryptographically secure; it exists so that
// simulations are reproducible bit-for-bit across platforms and Go
// versions, which math/rand does not guarantee across major releases.
//
// Independent streams for independent stochastic processes (one per
// failure-detector module, one per workload source, ...) are derived with
// Fork, mirroring the paper's assumption that all failure-detector modules
// are independent.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce the same sequence.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// splitmix64 step; constants from Steele, Lea & Flood (2014).
func (r *Rand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.next() }

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean,
// via inverse-transform sampling. A non-positive mean returns 0, which is
// how the paper's "TM = 0" (instantaneous mistakes) case is expressed.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard u == 0: -ln(0) is +Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Fork derives an independent generator from r and a label. Forking with
// distinct labels yields streams that do not overlap in practice; forking
// with the same label twice yields distinct streams as well, because the
// parent state advances on each call.
func (r *Rand) Fork(label string) *Rand {
	h := fnv64(label)
	return NewRand(mix64(r.next() ^ h))
}

// ForkN derives an independent generator indexed by an integer, for
// per-process or per-pair streams.
func (r *Rand) ForkN(index int) *Rand {
	return NewRand(mix64(r.next() ^ (0x9e3779b97f4a7c15 * uint64(index+1))))
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is a finalizing mixer (Stafford variant 13) used to decorrelate
// derived seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
