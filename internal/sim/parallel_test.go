package sim

import (
	"testing"
	"time"
)

// The parallel engine's contract is exact serial equivalence: same
// events, same order, same clock reads, at any worker count. The stress
// harness below runs a randomized message storm over a random
// process-to-domain assignment — in-domain chatter at arbitrary delays,
// cross-domain handoffs at the lookahead or beyond, cancellable closure
// timers, and periodic global (root-scheduled) events that fan pokes
// into every domain — and cross-checks the full execution log,
// event for event, against the serial engine.

const (
	stressLookahead = Time(1000)
	stressTTL       = 6
)

type stressRec struct {
	when Time
	pid  int
	op   uint8
	tag  int
}

type stressHarness struct {
	root  *Engine
	engs  []*Engine
	rngs  []*Rand
	procs []stressProc
	domOf []int
	log   []stressRec
	// pending holds, per process, a cancellable timer a later event of
	// the same process may cancel (cancellation is domain-local).
	pending []*Event
}

type stressProc struct {
	h   *stressHarness
	pid int
}

func (sp stressProc) HandleMsg(op uint8, ttl, tag int, payload any) {
	h, pid := sp.h, sp.pid
	eng := h.engs[pid]
	h.record(pid, op, tag)
	if ttl <= 0 {
		return
	}
	rng := h.rngs[pid]
	n := len(h.procs)
	for i, k := 0, int(rng.Intn(3)); i < k; i++ {
		q := rng.Intn(n)
		d := Time(rng.Intn(int(2 * stressLookahead)))
		if h.domOf[q] != h.domOf[pid] {
			d += stressLookahead // cross-domain: clear the lookahead
		}
		eng.ScheduleMsgOn(h.engs[q], eng.Now()+d, h.procs[q], op+1, ttl-1, tag*10+i, nil)
	}
	if rng.Intn(3) == 0 {
		// A cancellable closure timer; half get cancelled by a later
		// event of the same process before they can fire.
		tmr := eng.After(time.Duration(1+rng.Intn(int(3*stressLookahead))), func() {
			h.record(pid, 200, tag)
		})
		if h.pending[pid] != nil && rng.Intn(2) == 0 {
			h.pending[pid].Cancel()
		}
		h.pending[pid] = tmr
	}
}

func (h *stressHarness) record(pid int, op uint8, tag int) {
	eng := h.engs[pid]
	at := eng.Now()
	eng.Emit(func() {
		h.log = append(h.log, stressRec{when: at, pid: pid, op: op, tag: tag})
	})
}

// runStress executes the storm on one engine configuration and returns
// the observable log.
func runStress(seed uint64, n int, domOf []int, parallel bool, workers int) []stressRec {
	root := New()
	if parallel {
		root.EnableParallel(domOf, stressLookahead, workers)
	}
	h := &stressHarness{
		root:    root,
		engs:    make([]*Engine, n),
		rngs:    make([]*Rand, n),
		procs:   make([]stressProc, n),
		domOf:   domOf,
		pending: make([]*Event, n),
	}
	rng := NewRand(seed)
	for p := 0; p < n; p++ {
		h.engs[p] = root.For(p)
		h.rngs[p] = rng.ForkN(p)
		h.procs[p] = stressProc{h: h, pid: p}
	}
	for p := 0; p < n; p++ {
		h.engs[p].ScheduleMsg(Time(7*p), h.procs[p], 1, stressTTL, p, nil)
	}
	// Global barrier events: log from the root and poke every process,
	// including at the same instant as in-flight domain work.
	for i := 1; i <= 8; i++ {
		at := Time(i * 2500)
		root.Schedule(at, func() {
			h.log = append(h.log, stressRec{when: root.Now(), pid: -1, op: 99})
			for p := 0; p < n; p++ {
				h.engs[p].ScheduleMsg(root.Now(), h.procs[p], 50, 1, p, nil)
			}
		})
	}
	root.Run()
	return h.log
}

func stressDomains(seed uint64, n, domains int) []int {
	rng := NewRand(seed).Fork("domains")
	domOf := make([]int, n)
	for p := range domOf {
		domOf[p] = rng.Intn(domains)
	}
	domOf[0] = 0 // keep domain ids starting at 0
	return domOf
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 12
	for seed := uint64(1); seed <= 5; seed++ {
		domOf := stressDomains(seed, n, 4)
		want := runStress(seed, n, domOf, false, 0)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty serial log", seed)
		}
		for _, workers := range []int{1, 2, 4} {
			got := runStress(seed, n, domOf, true, workers)
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d events, serial %d", seed, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: event %d = %+v, serial %+v", seed, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelSingleDomain(t *testing.T) {
	const n = 8
	domOf := make([]int, n)
	want := runStress(3, n, domOf, false, 0)
	got := runStress(3, n, domOf, true, 1)
	if len(got) != len(want) {
		t.Fatalf("single-domain parallel: %d events, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-domain parallel: event %d = %+v, serial %+v", i, got[i], want[i])
		}
	}
}

func TestParallelClockAndCounts(t *testing.T) {
	const n = 12
	domOf := stressDomains(2, n, 4)
	serial := New()
	par := New()
	par.EnableParallel(domOf, stressLookahead, 2)
	for _, tc := range []struct {
		eng      *Engine
		parallel bool
	}{{serial, false}, {par, true}} {
		eng := tc.eng
		h := &stressHarness{root: eng, engs: make([]*Engine, n), rngs: make([]*Rand, n),
			procs: make([]stressProc, n), domOf: domOf, pending: make([]*Event, n)}
		rng := NewRand(2)
		for p := 0; p < n; p++ {
			h.engs[p] = eng.For(p)
			h.rngs[p] = rng.ForkN(p)
			h.procs[p] = stressProc{h: h, pid: p}
			h.engs[p].ScheduleMsg(Time(7*p), h.procs[p], 1, stressTTL, p, nil)
		}
		eng.RunUntil(5000)
		if eng.Now() != 5000 {
			t.Fatalf("parallel=%v: Now()=%v after RunUntil(5000)", tc.parallel, eng.Now())
		}
		for p := 0; p < n; p++ {
			if h.engs[p].Now() != 5000 {
				t.Fatalf("parallel=%v: handle %d Now()=%v after RunUntil(5000)", tc.parallel, p, h.engs[p].Now())
			}
		}
	}
	if serial.Executed() != par.Executed() {
		t.Fatalf("executed: serial %d, parallel %d", serial.Executed(), par.Executed())
	}
	if serial.Pending() != par.Pending() {
		t.Fatalf("pending: serial %d, parallel %d", serial.Pending(), par.Pending())
	}
}
