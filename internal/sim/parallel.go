package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Conservative parallel discrete-event execution.
//
// EnableParallel splits one simulation into conflict domains — groups of
// processes that may share mutable state — and gives each domain its own
// event queue behind an Engine handle (For). Between global events the
// run loop opens a window [t, t+lookahead): every event in it is
// causally independent across domains (a cross-domain effect needs at
// least one wire traversal, which costs at least the lookahead), so
// domains drain their windows concurrently. The window barrier then
// commits: a deterministic merge replays the drained events in the
// exact order serial execution would have used, assigns the global
// sequence numbers in that order, flushes deferred emissions (Emit),
// and delivers cross-domain handoffs (ScheduleMsgOn) into their target
// queues. Observable behavior — every emission, in order — is therefore
// bit-identical to the serial engine, at any worker count, including
// workers=1.
//
// Three rules keep that equivalence:
//
//   - During a drain, all observable side effects must go through the
//     owning handle's Emit, and events for another domain through
//     ScheduleMsgOn. Cross-domain instants must clear the lookahead.
//   - Events scheduled on the root engine are global barriers: they run
//     in a serial phase with every domain quiesced and may touch
//     anything.
//   - Emit callbacks observe; they must not schedule.

// opEntry is one step of a drained event's replay record: either a
// deferred emission or a scheduled child event, in original call order.
// The commit walks these to reproduce the exact serial interleaving of
// observable output and sequence-number assignment.
type opEntry struct {
	fn func()
	ev *Event
}

// firedRec records one event a domain executed during the current
// window, with its slice of the domain's op buffer.
type firedRec struct {
	ev             *Event
	opStart, opEnd int32
	typed          bool // recycle the record at commit
}

// parState is the shared coordination state of a parallel engine: the
// root engine (global events, the authoritative seq counter), one
// domain engine per conflict domain, and the per-process handle map.
type parState struct {
	root       *Engine
	domains    []*Engine
	handles    []*Engine
	lookahead  Time
	workers    int
	committing bool

	active   []*Engine // scratch: domains with work this window
	mergeIdx []int     // scratch: per-domain cursor for the commit merge
}

// EnableParallel switches the engine to windowed parallel execution.
// domainOf maps each process to its conflict domain (0..D-1); lookahead
// is the minimum virtual-time cost of any cross-domain interaction —
// events less than lookahead apart in different domains are causally
// independent. workers bounds the goroutines draining domains
// concurrently (values below 1, or above the domain count, are
// clamped). It must be called on a fresh engine, before anything is
// scheduled, so that every component can fetch its domain handle (For)
// at construction time.
func (e *Engine) EnableParallel(domainOf []int, lookahead Time, workers int) {
	if e.par != nil {
		panic("sim: EnableParallel called twice")
	}
	if len(e.heap) > 0 || e.seq != 0 || e.now != 0 {
		panic("sim: EnableParallel on a running engine")
	}
	if len(domainOf) == 0 {
		panic("sim: EnableParallel with no processes")
	}
	nd := 0
	for p, d := range domainOf {
		if d < 0 {
			panic(fmt.Sprintf("sim: process %d in negative domain %d", p, d))
		}
		if d >= nd {
			nd = d + 1
		}
	}
	if lookahead <= 0 {
		if nd > 1 {
			panic("sim: EnableParallel needs a positive lookahead for multiple domains")
		}
		lookahead = Time(math.MaxInt64)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > nd {
		workers = nd
	}
	p := &parState{root: e, lookahead: lookahead, workers: workers}
	p.domains = make([]*Engine, nd)
	for i := range p.domains {
		p.domains[i] = &Engine{par: p}
	}
	p.handles = make([]*Engine, len(domainOf))
	for i, d := range domainOf {
		p.handles[i] = p.domains[d]
	}
	p.mergeIdx = make([]int, nd)
	e.par = p
}

// Parallel reports whether EnableParallel was called on this engine (or
// the root engine of this domain handle).
func (e *Engine) Parallel() bool { return e.par != nil }

// Domains returns the number of conflict domains, or 1 on a serial
// engine.
func (e *Engine) Domains() int {
	if e.par == nil {
		return 1
	}
	return len(e.par.domains)
}

// For returns the engine handle owning process p: the engine itself when
// serial, the process's domain handle when parallel. Components fetch
// their handle once, at construction, and schedule all per-process work
// through it; scheduling through a handle is what assigns events to
// domains.
func (e *Engine) For(p int) *Engine {
	if e.par == nil {
		return e
	}
	return e.par.handles[p]
}

// Emit runs fn immediately in serial execution, and defers it to the
// window commit in parallel execution, where it runs in exact serial
// order relative to every other emission. All observable side effects
// of code running inside a window drain — observer callbacks, trace
// records, shared counters — must go through the owning handle's Emit.
// Emit callbacks must not schedule events.
func (e *Engine) Emit(fn func()) {
	if e.deferring {
		e.ops = append(e.ops, opEntry{fn: fn})
		return
	}
	fn()
}

// Deferring reports whether the engine is currently draining a parallel
// window, i.e. whether Emit would defer. Callers use it to skip closure
// construction on the serial fast path.
func (e *Engine) Deferring() bool { return e.deferring }

// run is the parallel counterpart of Engine.run: alternating serial
// phases (instants with global events, every domain quiesced) and
// concurrent windows bounded by the lookahead, until the queues drain
// past deadline or Stop is called.
func (p *parState) run(deadline Time) uint64 {
	root := p.root
	root.stopped = false
	var n uint64
	for !root.stopped {
		t := Time(math.MaxInt64)
		for _, d := range p.domains {
			if len(d.heap) > 0 && d.heap[0].when < t {
				t = d.heap[0].when
			}
		}
		rootTop := Time(math.MaxInt64)
		if len(root.heap) > 0 {
			rootTop = root.heap[0].when
		}
		if rootTop < t {
			t = rootTop
		}
		if t == Time(math.MaxInt64) || t > deadline {
			break
		}
		if rootTop == t {
			// A global event shares this instant: execute the whole
			// instant serially so same-time domain events interleave
			// with it in schedule order, exactly as the serial engine
			// would.
			n += p.serialInstant(t)
			continue
		}
		w := t + p.lookahead
		if w < t { // lookahead overflow: unbounded window
			w = Time(math.MaxInt64)
		}
		if rootTop < w {
			w = rootTop
		}
		if deadline < Time(math.MaxInt64) && deadline+1 < w {
			w = deadline + 1
		}
		n += p.window(w)
	}
	return n
}

// serialInstant executes every event at instant t, across the root and
// all domain queues, in global schedule order with immediate effects —
// the classic serial semantics. Global events may touch any domain's
// state here: every domain is quiesced and at the same clock.
func (p *parState) serialInstant(t Time) uint64 {
	p.root.setNow(t)
	var n uint64
	for !p.root.stopped {
		best := p.root
		if len(best.heap) == 0 || best.heap[0].when != t {
			best = nil
		}
		for _, d := range p.domains {
			if len(d.heap) > 0 && d.heap[0].when == t &&
				(best == nil || schedBefore(d.heap[0], best.heap[0])) {
				best = d
			}
		}
		if best == nil {
			break
		}
		ev := best.heap[0]
		best.pop()
		best.executed++
		n++
		if ev.fn != nil {
			fn := ev.fn
			ev.fn = nil
			fn()
		} else {
			h, op, a, b, payload := ev.h, ev.op, ev.a, ev.b, ev.payload
			ev.h, ev.payload = nil, nil
			ev.free = best.free
			best.free = ev
			h.HandleMsg(op, a, b, payload)
		}
	}
	return n
}

// window drains every domain's events in [now, w) concurrently, then
// commits the barrier.
func (p *parState) window(w Time) uint64 {
	active := p.active[:0]
	for _, d := range p.domains {
		if len(d.heap) > 0 && d.heap[0].when < w {
			active = append(active, d)
		}
	}
	p.active = active
	if k := p.workers; k <= 1 || len(active) == 1 {
		for _, d := range active {
			d.drain(w)
		}
	} else {
		if k > len(active) {
			k = len(active)
		}
		var next atomic.Int32
		var wg sync.WaitGroup
		work := func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(active) {
					return
				}
				active[i].drain(w)
			}
		}
		wg.Add(k - 1)
		for i := 0; i < k-1; i++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
	}
	return p.commit(w)
}

// drain executes this domain's events strictly before w, deferring
// emissions and recording children for the commit. Typed records are
// not recycled here: the commit still needs their (when, key) for the
// merge and their op slices for replay.
func (d *Engine) drain(w Time) {
	d.deferring = true
	for len(d.heap) > 0 {
		ev := d.heap[0]
		if ev.when >= w {
			break
		}
		d.pop()
		d.now = ev.when
		d.executed++
		start := int32(len(d.ops))
		typed := ev.h != nil
		d.cur = ev
		if ev.fn != nil {
			fn := ev.fn
			ev.fn = nil
			fn()
		} else {
			h, op, a, b, payload := ev.h, ev.op, ev.a, ev.b, ev.payload
			ev.h, ev.payload = nil, nil
			h.HandleMsg(op, a, b, payload)
		}
		d.cur = nil
		d.fired = append(d.fired, firedRec{ev: ev, opStart: start, opEnd: int32(len(d.ops)), typed: typed})
	}
	d.deferring = false
}

// commit closes the window ending (exclusively) at w: merge the
// domains' fired events into the serial execution order, and in that
// order flush deferred emissions, assign real sequence numbers to the
// events scheduled during the window, and push cross-domain handoffs
// into their target queues. A second pass recycles the fired typed
// records — only after the merge, whose comparisons may still reach a
// parent record. Every provisional key collapses here, so the next
// window starts from committed state only.
func (p *parState) commit(w Time) uint64 {
	p.committing = true
	root := p.root
	idx := p.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	var n uint64
	last := root.now
	for {
		var best *Engine
		bi := -1
		for di, d := range p.domains {
			i := idx[di]
			if i >= len(d.fired) {
				continue
			}
			ev := d.fired[i].ev
			// By the time an event reaches a merge head its parent has
			// already been walked (it fired earlier in the same
			// domain), so ev.seq is real and the comparison is the
			// plain serial (when, seq).
			if best == nil || ev.when < best.fired[idx[bi]].ev.when ||
				(ev.when == best.fired[idx[bi]].ev.when && ev.seq < best.fired[idx[bi]].ev.seq) {
				best, bi = d, di
			}
		}
		if best == nil {
			break
		}
		fr := best.fired[idx[bi]]
		idx[bi]++
		n++
		last = fr.ev.when
		for _, op := range best.ops[fr.opStart:fr.opEnd] {
			if op.fn != nil {
				op.fn()
				continue
			}
			ev := op.ev
			ev.parent = nil
			ev.seq = root.seq
			root.seq++
			if ev.index == -2 { // cross-domain handoff: deliver now
				tgt := ev.eng
				if ev.when < w {
					panic(fmt.Sprintf("sim: cross-domain handoff at %v inside the window ending at %v (lookahead violated)", ev.when, w))
				}
				tgt.push(ev)
			}
		}
	}
	for _, d := range p.domains {
		for _, fr := range d.fired {
			if fr.typed {
				ev := fr.ev
				ev.parent, ev.kidx, ev.nkids = nil, 0, 0
				ev.free = d.free
				d.free = ev
			}
		}
		d.fired = d.fired[:0]
		d.ops = d.ops[:0]
	}
	p.committing = false
	// The clock lands on the last executed instant, exactly as the
	// serial loop leaves it (RunUntil's epilogue advances it to the
	// deadline); events still queued are all at w or later.
	root.setNow(last)
	return n
}
