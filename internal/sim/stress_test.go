package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// TestHeapOrderingProperty: whatever the mix of schedules and
// cancellations, events fire in nondecreasing time order and cancelled
// events never fire.
func TestHeapOrderingProperty(t *testing.T) {
	type op struct {
		At     uint16
		Cancel bool // cancel the most recently scheduled live event
	}
	f := func(ops []op) bool {
		e := New()
		var fired []Time
		var live []*Event
		cancelled := make(map[*Event]bool)
		for _, o := range ops {
			if o.Cancel && len(live) > 0 {
				ev := live[len(live)-1]
				live = live[:len(live)-1]
				ev.Cancel()
				cancelled[ev] = true
				continue
			}
			at := Time(o.At) * Time(time.Millisecond)
			var ev *Event
			ev = e.Schedule(at, func() { fired = append(fired, e.Now()) })
			live = append(live, ev)
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapMassiveRandomSchedule: 100k events in random order fire sorted.
func TestHeapMassiveRandomSchedule(t *testing.T) {
	e := New()
	r := NewRand(77)
	const n = 100000
	want := make([]Time, 0, n)
	got := make([]Time, 0, n)
	for i := 0; i < n; i++ {
		at := Time(r.Intn(1 << 30))
		want = append(want, at)
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != n {
		t.Fatalf("fired %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestRunUntilNeverMovesBackwards: interleaved RunUntil calls with random
// deadlines keep the clock monotone.
func TestRunUntilNeverMovesBackwards(t *testing.T) {
	f := func(deadlines []uint16) bool {
		e := New()
		for i := 0; i < 50; i++ {
			e.Schedule(Time(i)*Time(time.Millisecond), func() {})
		}
		prev := Time(0)
		for _, d := range deadlines {
			e.RunUntil(Time(d) * Time(time.Millisecond))
			if e.Now() < prev {
				return false
			}
			prev = e.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDuringExecutionOfSameInstant: an event cancelling its
// same-instant successor must win (scheduling order is execution order).
func TestCancelDuringExecutionOfSameInstant(t *testing.T) {
	e := New()
	ran := false
	var second *Event
	e.Schedule(Time(5), func() { second.Cancel() })
	second = e.Schedule(Time(5), func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("same-instant successor ran despite cancellation")
	}
}
