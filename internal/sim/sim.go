// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, and seedable random number
// streams.
//
// The kernel plays the role that the Neko framework played in the paper
// "Comparison of Failure Detectors and Group Membership" (Urbán,
// Shnayderman, Schiper; DSN 2003): it executes protocol code against a
// simulated environment. The engine is single-threaded; callbacks run one
// at a time in a deterministic order, so a simulation is reproducible
// bit-for-bit from its seed. Events scheduled for the same instant run in
// the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an instant of virtual time, expressed in nanoseconds since the
// start of the simulation. The zero value is the simulation start.
//
// The paper sets one network time unit equal to 1 ms; all experiment code
// follows that convention, but nothing in the kernel depends on it.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to the duration elapsed since the
// simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant as a floating-point number of seconds since
// the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds returns the instant as a floating-point number of
// milliseconds since the simulation start.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// String formats the instant as a millisecond value, the unit used
// throughout the paper.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Millis converts a floating-point number of milliseconds to a
// time.Duration. It is a convenience for experiment configuration, where
// the paper quotes every parameter in milliseconds.
func Millis(ms float64) time.Duration {
	if math.IsInf(ms, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Event is a scheduled callback. It is returned by Engine.Schedule and
// Engine.After so that the caller can cancel it before it fires.
type Event struct {
	when      Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once removed
	cancelled bool
}

// When returns the instant the event is scheduled to fire at.
func (ev *Event) When() Time { return ev.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a discrete-event simulation executor. The zero value is not
// usable; create engines with New.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool

	// Executed counts events that have fired, for diagnostics and for
	// runaway-simulation guards in tests.
	executed uint64
}

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled, including
// cancelled events that have not yet been discarded.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at instant at. Scheduling in the past
// (before Now) panics: it would silently reorder causality, which is
// always a bug in the caller.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{when: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d after the current instant. Negative
// durations panic, zero durations run after the current callback returns.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now.Add(d), fn)
}

// Stop makes the current Run or RunUntil call return after the in-progress
// callback finishes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.run(Time(math.MaxInt64))
}

// RunUntil executes events with timestamps at or before deadline, then
// advances the clock to deadline. It returns the number of events executed
// by this call.
func (e *Engine) RunUntil(deadline Time) uint64 {
	n := e.run(deadline)
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

func (e *Engine) run(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.queue.peek()
		if ev.when > deadline {
			break
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			continue
		}
		if ev.when < e.now {
			// Heap invariant violated; cannot happen unless memory is
			// corrupted, but guard anyway rather than run time backwards.
			panic(fmt.Sprintf("sim: event at %v before now %v", ev.when, e.now))
		}
		e.now = ev.when
		e.executed++
		n++
		ev.fn()
	}
	return n
}

// eventQueue is a binary heap of events ordered by (when, seq). The seq
// tie-break makes same-instant events fire in scheduling order, which is
// what keeps executions deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event { return q[0] }
