// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, and seedable random number
// streams.
//
// The kernel plays the role that the Neko framework played in the paper
// "Comparison of Failure Detectors and Group Membership" (Urbán,
// Shnayderman, Schiper; DSN 2003): it executes protocol code against a
// simulated environment. By default the engine is single-threaded;
// callbacks run one at a time in a deterministic order, so a simulation
// is reproducible bit-for-bit from its seed. Events scheduled for the
// same instant run in the order they were scheduled.
//
// EnableParallel partitions the processes into conflict domains and
// advances independent domains concurrently inside safe windows bounded
// by a lookahead (the minimum cross-domain interaction cost), committing
// each window through a deterministic merge — a conservative
// parallel-DES scheme whose observable event order is identical to the
// serial engine's, at any worker count. The equivalence rules model code
// must follow under parallel execution are documented in parallel.go;
// code written against the serial engine's For/Emit/ScheduleMsgOn
// surface runs unchanged (and at full speed) in both modes.
//
// Two scheduling forms exist. Schedule and After take a closure and return
// a cancellable *Event handle — the form protocol timers use. ScheduleMsg
// and AfterMsg take a typed record (an opcode, two integers and a payload)
// dispatched to a MsgHandler; they return no handle, which lets the engine
// recycle the event record through a free list the moment it fires. The
// per-message hot path of the network model runs entirely on the second
// form, so simulating a message allocates nothing in the kernel.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant of virtual time, expressed in nanoseconds since the
// start of the simulation. The zero value is the simulation start.
//
// The paper sets one network time unit equal to 1 ms; all experiment code
// follows that convention, but nothing in the kernel depends on it.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to the duration elapsed since the
// simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant as a floating-point number of seconds since
// the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds returns the instant as a floating-point number of
// milliseconds since the simulation start.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// String formats the instant as a millisecond value, the unit used
// throughout the paper.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Millis converts a floating-point number of milliseconds to a
// time.Duration. It is a convenience for experiment configuration, where
// the paper quotes every parameter in milliseconds. Values beyond the
// representable range — +Inf included — saturate to the maximum
// duration (~292 virtual years) instead of overflowing to a negative
// duration, so a pathologically slow event source degrades to "never
// fires within any run" rather than a scheduling panic.
func Millis(ms float64) time.Duration {
	ns := ms * float64(time.Millisecond)
	if ns >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

// MsgHandler receives closure-free scheduled records. The meaning of op,
// a and b is private to the handler; the engine only stores and returns
// them. Implementations are typically a single switch over op, so one
// handler serves every stage of a pipeline without a closure per stage.
type MsgHandler interface {
	HandleMsg(op uint8, a, b int, payload any)
}

// Event is a scheduled callback. It is returned by Engine.Schedule and
// Engine.After so that the caller can cancel it before it fires. Events
// scheduled through ScheduleMsg/AfterMsg are internal records recycled
// through the engine's free list; no handle to them ever escapes.
type Event struct {
	eng  *Engine
	when Time
	seq  uint64

	// Exactly one of fn (closure form) and h (typed form) is set.
	fn      func()
	h       MsgHandler
	payload any
	a, b    int
	op      uint8

	index     int // heap index, -1 once removed, -2 awaiting a window commit
	cancelled bool
	free      *Event // free-list link, non-nil only while recycled

	// Parallel-window bookkeeping (see parallel.go). An event scheduled
	// while a domain drains a window has no sequence number yet: its
	// position in the deterministic total order is (parent, kidx) — the
	// event that scheduled it and the call index within that event. The
	// window commit collapses the pair to a real seq in exact serial
	// order. Serial engines never set these fields.
	parent *Event
	kidx   uint32 // schedule index within parent
	nkids  uint32 // children scheduled by this event so far
}

// When returns the instant the event is scheduled to fire at.
func (ev *Event) When() Time { return ev.when }

// Cancel prevents the event from firing. The event is removed from the
// queue immediately and its callback reference is dropped, so whatever
// the closure captured becomes collectable now rather than when the
// timestamp would have been reached. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (ev *Event) Cancel() {
	if ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil
	if ev.index >= 0 {
		ev.eng.removeAt(ev.index)
	}
}

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a discrete-event simulation executor. The zero value is not
// usable; create engines with New.
type Engine struct {
	now     Time
	heap    []*Event // binary heap ordered by (when, schedBefore)
	free    *Event   // free list of recycled typed-event records
	seq     uint64
	stopped bool

	// Executed counts events that have fired, for diagnostics and for
	// runaway-simulation guards in tests.
	executed uint64

	// Parallel execution (see parallel.go). par is non-nil on a root
	// engine that called EnableParallel and on every domain handle it
	// created; it is nil on a plain serial engine, and every parallel
	// field below stays zero. cur is the event this domain is currently
	// executing inside a window drain — the parent of everything it
	// schedules. ops is the domain's interleaved record of deferred
	// emissions and scheduled children, replayed in serial order at the
	// window commit; fired lists the events this domain executed in the
	// current window.
	par       *parState
	cur       *Event
	deferring bool
	ops       []opEntry
	fired     []firedRec
}

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have fired so far. On a
// parallel root engine it aggregates across every domain.
func (e *Engine) Executed() uint64 {
	n := e.executed
	if e.par != nil && e.par.root == e {
		for _, d := range e.par.domains {
			n += d.executed
		}
	}
	return n
}

// Pending returns the number of events currently scheduled. Cancelled
// events are removed from the queue eagerly, so they never count. On a
// parallel root engine it aggregates across every domain.
func (e *Engine) Pending() int {
	n := len(e.heap)
	if e.par != nil && e.par.root == e {
		for _, d := range e.par.domains {
			n += len(d.heap)
		}
	}
	return n
}

// checkAt guards against scheduling in the past (before Now): it would
// silently reorder causality, which is always a bug in the caller.
func (e *Engine) checkAt(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
}

// Schedule registers fn to run at instant at and returns a cancellable
// handle. Scheduling in the past (before Now) panics.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	e.checkAt(at)
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{eng: e, when: at, fn: fn}
	e.assignOrder(ev)
	e.push(ev)
	return ev
}

// assignOrder stamps ev's position in the deterministic total order: a
// global sequence number when executing serially (or between parallel
// windows), or a provisional (parent, kidx) key while this domain is
// draining a window — the commit turns the key into the sequence number
// serial execution would have assigned.
func (e *Engine) assignOrder(ev *Event) {
	if e.par == nil {
		ev.seq = e.seq
		e.seq++
		return
	}
	if e.cur != nil { // draining: provisional key, committed at the barrier
		ev.parent = e.cur
		ev.kidx = e.cur.nkids
		e.cur.nkids++
		e.ops = append(e.ops, opEntry{ev: ev})
		return
	}
	if e.par.committing {
		panic("sim: scheduling from an Emit callback")
	}
	root := e.par.root
	ev.seq = root.seq
	root.seq++
}

// After registers fn to run d after the current instant. Negative
// durations panic, zero durations run after the current callback returns.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now.Add(d), fn)
}

// ScheduleMsg registers a closure-free event: at instant at, the engine
// calls h.HandleMsg(op, a, b, payload). No handle is returned, so the
// record is pooled — scheduling through this form does not allocate once
// the free list is warm. Scheduling in the past panics.
func (e *Engine) ScheduleMsg(at Time, h MsgHandler, op uint8, a, b int, payload any) {
	e.checkAt(at)
	if h == nil {
		panic("sim: ScheduleMsg with nil handler")
	}
	// Typed records never carry the eng back-pointer: no handle escapes,
	// so Cancel can never be called on them.
	ev := e.takeFree()
	ev.when = at
	ev.h, ev.op, ev.a, ev.b, ev.payload = h, op, a, b, payload
	e.assignOrder(ev)
	e.push(ev)
}

// takeFree returns a recycled typed-event record, or a fresh one.
func (e *Engine) takeFree() *Event {
	ev := e.free
	if ev != nil {
		e.free = ev.free
		ev.free = nil
		ev.cancelled = false
		ev.seq, ev.parent, ev.kidx, ev.nkids = 0, nil, 0, 0
	} else {
		ev = &Event{}
	}
	return ev
}

// ScheduleMsgOn schedules a closure-free event into target's queue. On a
// serial engine (or when target is the calling engine) it is exactly
// target.ScheduleMsg. During a parallel window drain it is the one legal
// way to hand an event to another domain: the record is tagged with the
// scheduling event's provisional key, held back, and pushed into
// target's queue at the window commit — after the deterministic merge
// has assigned it the sequence number serial execution would have. The
// target instant must clear the cross-domain lookahead, which every
// wire-delay-bounded caller satisfies by construction.
func (e *Engine) ScheduleMsgOn(target *Engine, at Time, h MsgHandler, op uint8, a, b int, payload any) {
	if target == e || e.cur == nil {
		target.ScheduleMsg(at, h, op, a, b, payload)
		return
	}
	e.checkAt(at)
	if h == nil {
		panic("sim: ScheduleMsg with nil handler")
	}
	ev := e.takeFree()
	ev.eng = target // owning domain: the commit pushes it there
	ev.when = at
	ev.h, ev.op, ev.a, ev.b, ev.payload = h, op, a, b, payload
	ev.parent = e.cur
	ev.kidx = e.cur.nkids
	e.cur.nkids++
	ev.index = -2
	e.ops = append(e.ops, opEntry{ev: ev})
}

// AfterMsg schedules a closure-free event d after the current instant.
func (e *Engine) AfterMsg(d time.Duration, h MsgHandler, op uint8, a, b int, payload any) {
	e.ScheduleMsg(e.now.Add(d), h, op, a, b, payload)
}

// Stop makes the current Run or RunUntil call return after the in-progress
// callback finishes (in parallel mode: after the in-progress window
// commits). Pending events remain queued. In parallel mode Stop must be
// called from a global event or between runs, never from inside a
// window drain.
func (e *Engine) Stop() {
	if e.par != nil {
		e.par.root.stopped = true
		return
	}
	e.stopped = true
}

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.runAny(Time(math.MaxInt64))
}

// RunUntil executes events with timestamps at or before deadline, then
// advances the clock to deadline. It returns the number of events executed
// by this call.
func (e *Engine) RunUntil(deadline Time) uint64 {
	n := e.runAny(deadline)
	if !e.stopped && e.now < deadline {
		e.setNow(deadline)
	}
	return n
}

// runAny dispatches to the windowed parallel loop when EnableParallel
// was called, and to the classic serial loop otherwise.
func (e *Engine) runAny(deadline Time) uint64 {
	if e.par != nil {
		if e.par.root != e {
			panic("sim: Run on a parallel domain handle")
		}
		return e.par.run(deadline)
	}
	return e.run(deadline)
}

// setNow advances the clock — and, on a parallel root, every domain
// handle's clock — to t.
func (e *Engine) setNow(t Time) {
	e.now = t
	if e.par != nil && e.par.root == e {
		for _, d := range e.par.domains {
			d.now = t
		}
	}
}

func (e *Engine) run(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.heap) > 0 && !e.stopped {
		ev := e.heap[0]
		if ev.when > deadline {
			break
		}
		e.pop()
		e.now = ev.when
		e.executed++
		n++
		if ev.fn != nil {
			fn := ev.fn
			// Drop the closure before calling it: a fired event whose
			// handle is still retained must not pin what fn captured.
			ev.fn = nil
			fn()
		} else {
			h, op, a, b, payload := ev.h, ev.op, ev.a, ev.b, ev.payload
			// Recycle before dispatch so the handler's own ScheduleMsg
			// calls reuse this record immediately.
			ev.h, ev.payload = nil, nil
			ev.free = e.free
			e.free = ev
			h.HandleMsg(op, a, b, payload)
		}
	}
	return n
}

// The event queue is a hand-inlined binary heap ordered by (when, seq).
// The seq tie-break makes same-instant events fire in scheduling order,
// which is what keeps executions deterministic. Compared to
// container/heap this avoids the interface-method dispatch on every
// sift step and lets cancellation remove by index without a Fix.

// less orders heap slots i and j.
func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return schedBefore(a, b)
}

// schedBefore reports whether a was — or, for events scheduled inside a
// still-open parallel window, will provably be — scheduled before b.
// Committed events compare by sequence number. A committed event always
// precedes a provisional one: provisional events receive their numbers
// at the next commit, after every number assigned so far. Two
// provisional events compare by their scheduling events' execution
// order (fire time, then recursively the same order), then by call
// index within the same parent. On a serial engine parents are always
// nil and this is exactly the classic seq tie-break.
func schedBefore(a, b *Event) bool {
	if a.parent == nil && b.parent == nil {
		return a.seq < b.seq
	}
	if a.parent == nil {
		return true
	}
	if b.parent == nil {
		return false
	}
	if a.parent == b.parent {
		return a.kidx < b.kidx
	}
	if a.parent.when != b.parent.when {
		return a.parent.when < b.parent.when
	}
	return schedBefore(a.parent, b.parent)
}

// push appends ev and restores the heap invariant.
func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.index)
}

// pop removes the root. The caller already holds e.heap[0].
func (e *Engine) pop() {
	last := len(e.heap) - 1
	root := e.heap[0]
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.heap[0].index = 0
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 1 {
		e.siftDown(0)
	}
	root.index = -1
	// Drop the engine back-pointer (only Cancel needs it, only while
	// queued): a retained handle to a fired event must not pin the whole
	// engine — heap and free list included.
	root.eng = nil
}

// removeAt deletes the event at heap slot i, restoring the invariant from
// that slot in both directions.
func (e *Engine) removeAt(i int) {
	ev := e.heap[i]
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.heap[i].index = i
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.index = -1
	ev.eng = nil // as in pop: a removed event must not pin the engine
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.swap(i, least)
		i = least
	}
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].index = i
	e.heap[j].index = j
}
