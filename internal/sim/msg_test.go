package sim

import (
	"testing"
	"time"
)

// recorder collects closure-free dispatches in arrival order.
type recorder struct {
	ops []record
}

type record struct {
	op      uint8
	a, b    int
	payload any
	at      Time
}

type recordingEngine struct {
	*recorder
	eng *Engine
}

func (r recordingEngine) HandleMsg(op uint8, a, b int, payload any) {
	r.ops = append(r.ops, record{op, a, b, payload, r.eng.Now()})
}

func TestScheduleMsgDispatchesRecord(t *testing.T) {
	e := New()
	rec := recordingEngine{&recorder{}, e}
	e.ScheduleMsg(Time(10), rec, 3, 7, -1, "payload")
	e.AfterMsg(5*time.Nanosecond, rec, 1, 2, 3, nil)
	e.Run()
	want := []record{
		{1, 2, 3, nil, Time(5)},
		{3, 7, -1, "payload", Time(10)},
	}
	if len(rec.ops) != len(want) {
		t.Fatalf("dispatched %d records, want %d", len(rec.ops), len(want))
	}
	for i, w := range want {
		if rec.ops[i] != w {
			t.Fatalf("record %d = %+v, want %+v", i, rec.ops[i], w)
		}
	}
}

// TestMsgAndClosureFormsInterleaveDeterministically: both scheduling forms
// share one (when, seq) order, so same-instant events of either kind fire
// in scheduling order.
func TestMsgAndClosureFormsInterleaveDeterministically(t *testing.T) {
	e := New()
	var got []int
	h := handlerFunc(func(op uint8, _, _ int, _ any) { got = append(got, int(op)) })
	e.ScheduleMsg(Time(5), h, 0, 0, 0, nil)
	e.Schedule(Time(5), func() { got = append(got, 1) })
	e.ScheduleMsg(Time(5), h, 2, 0, 0, nil)
	e.Schedule(Time(5), func() { got = append(got, 3) })
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("interleaved order %v, want ascending", got)
		}
	}
}

// handlerFunc adapts a function to MsgHandler for tests.
type handlerFunc func(op uint8, a, b int, payload any)

func (f handlerFunc) HandleMsg(op uint8, a, b int, payload any) { f(op, a, b, payload) }

// TestScheduleMsgRecyclesRecords: once the free list is warm, the
// closure-free hot path performs no allocations at all.
func TestScheduleMsgRecyclesRecords(t *testing.T) {
	e := New()
	h := handlerFunc(func(uint8, int, int, any) {})
	// Warm the free list.
	for i := 0; i < 64; i++ {
		e.AfterMsg(time.Duration(i), h, 0, i, i, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.AfterMsg(time.Duration(i), h, 0, i, i, nil)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScheduleMsg+Run allocated %.1f objects per run, want 0", allocs)
	}
}

// TestMsgRecordsRescheduledFromHandler: a handler scheduling from inside a
// dispatch reuses the record that is firing, the hot pattern of the
// network model's three-stage pipeline.
func TestMsgRecordsRescheduledFromHandler(t *testing.T) {
	e := New()
	hops := 0
	var h handlerFunc
	h = func(op uint8, a, b int, payload any) {
		hops++
		if hops < 100 {
			e.AfterMsg(time.Nanosecond, h, op, a, b, payload)
		}
	}
	e.AfterMsg(0, h, 0, 1, 2, "m")
	e.Run()
	if hops != 100 {
		t.Fatalf("pipeline hopped %d times, want 100", hops)
	}
}

func TestScheduleMsgNilHandlerPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleMsg with nil handler did not panic")
		}
	}()
	e.ScheduleMsg(Time(1), nil, 0, 0, 0, nil)
}

func TestScheduleMsgInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(Time(100), func() {})
	e.Run()
	h := handlerFunc(func(uint8, int, int, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleMsg in the past did not panic")
		}
	}()
	e.ScheduleMsg(Time(50), h, 0, 0, 0, nil)
}

// TestMsgEventsCountAsPendingAndExecuted: diagnostics treat both forms
// uniformly.
func TestMsgEventsCountAsPendingAndExecuted(t *testing.T) {
	e := New()
	h := handlerFunc(func(uint8, int, int, any) {})
	e.ScheduleMsg(Time(1), h, 0, 0, 0, nil)
	e.Schedule(Time(2), func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	if n := e.Run(); n != 2 {
		t.Fatalf("Run() = %d, want 2", n)
	}
	if e.Executed() != 2 {
		t.Fatalf("Executed() = %d, want 2", e.Executed())
	}
}
