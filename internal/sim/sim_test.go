package sim

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("new engine Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleRunsInTimestampOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(Time(30), func() { got = append(got, 3) })
	e.Schedule(Time(10), func() { got = append(got, 1) })
	e.Schedule(Time(20), func() { got = append(got, 2) })
	n := e.Run()
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30) {
		t.Fatalf("Now() = %v after run, want 30", e.Now())
	}
}

func TestSameInstantEventsRunInScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(5), func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order %v, want ascending", got)
		}
	}
}

func TestAfterSchedulesRelativeToNow(t *testing.T) {
	e := New()
	var fired Time
	e.Schedule(Time(100), func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != Time(150) {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := New()
	ran := false
	ev := e.Schedule(Time(10), func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelRemovesFromQueueEagerly(t *testing.T) {
	e := New()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(Time(i*10), func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", e.Pending())
	}
	// Cancel every other event, including the root and the last leaf: the
	// queue must shrink immediately, not at pop time.
	for i := 0; i < 10; i += 2 {
		evs[i].Cancel()
		evs[i].Cancel() // double cancel is a no-op
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d after cancelling 5 of 10, want 5", e.Pending())
	}
	if n := e.Run(); n != 5 {
		t.Fatalf("Run executed %d events, want 5", n)
	}
	if e.Now() != Time(90) {
		t.Fatalf("Now() = %v, want 90", e.Now())
	}
}

// TestCancelReleasesClosurePromptly is the closure-retention regression
// test: cancelling an event must free whatever its callback captured right
// away. Before eager removal, a cancelled long-TMR failure-detector timer
// pinned its closure (and everything reachable from it) until the distant
// timestamp was reached.
func TestCancelReleasesClosurePromptly(t *testing.T) {
	e := New()
	type ballast struct{ buf []byte }
	collected := make(chan struct{})
	ev := func() *Event {
		p := &ballast{buf: make([]byte, 1<<20)}
		runtime.SetFinalizer(p, func(*ballast) { close(collected) })
		// Far-future timer, as a TMR mistake timer would be.
		return e.Schedule(Time(0).Add(time.Hour), func() { _ = p.buf })
	}()
	ev.Cancel()
	waitCollected(t, collected, "closure captured by a cancelled event")
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", e.Pending())
	}
}

// TestFiredEventReleasesClosure: a fired event whose handle is still
// retained (the workload generator keeps its last timer, for example) must
// not pin the callback either.
func TestFiredEventReleasesClosure(t *testing.T) {
	e := New()
	type ballast struct{ buf []byte }
	collected := make(chan struct{})
	ev := func() *Event {
		p := &ballast{buf: make([]byte, 1<<20)}
		runtime.SetFinalizer(p, func(*ballast) { close(collected) })
		return e.Schedule(Time(1), func() { _ = p.buf })
	}()
	e.Run()
	waitCollected(t, collected, "closure captured by a fired event with a retained handle")
	_ = ev
}

// TestRetainedHandleDoesNotPinEngine: a fired (or cancelled) event whose
// handle outlives the simulation must not keep the whole engine — heap
// and free list included — reachable through its back-pointer.
func TestRetainedHandleDoesNotPinEngine(t *testing.T) {
	collected := make(chan struct{})
	handle := func() *Event {
		e := New()
		runtime.SetFinalizer(e, func(*Engine) { close(collected) })
		ev := e.Schedule(Time(1), func() {})
		e.Run()
		return ev
	}()
	waitCollected(t, collected, "engine referenced only by a retained fired-event handle")
	_ = handle
}

// waitCollected GCs until the finalizer on the test ballast runs.
func waitCollected(t *testing.T, collected chan struct{}, what string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("%s was never garbage-collected", what)
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := New()
	ran := false
	ev := e.Schedule(Time(20), func() { ran = true })
	e.Schedule(Time(10), func() { ev.Cancel() })
	e.Run()
	if ran {
		t.Fatal("event cancelled at t=10 still ran at t=20")
	}
}

func TestRunUntilStopsAtDeadlineAndAdvancesClock(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	n := e.RunUntil(Time(25))
	if n != 2 {
		t.Fatalf("RunUntil executed %d, want 2", n)
	}
	if e.Now() != Time(25) {
		t.Fatalf("Now() = %v, want 25", e.Now())
	}
	n = e.RunUntil(Time(100))
	if n != 2 {
		t.Fatalf("second RunUntil executed %d, want 2", n)
	}
	if e.Now() != Time(100) {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestRunUntilInclusiveOfDeadline(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(Time(25), func() { ran = true })
	e.RunUntil(Time(25))
	if !ran {
		t.Fatal("event exactly at deadline did not run")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i*10), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("executed %d events before stop, want 2", count)
	}
	// Remaining events still pending and runnable.
	e.Run()
	if count != 5 {
		t.Fatalf("executed %d events total, want 5", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(Time(100), func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(Time(50), func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(Time(1), nil)
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	e := New()
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 100 {
			e.After(time.Nanosecond, grow)
		}
	}
	e.Schedule(0, grow)
	e.Run()
	if depth != 100 {
		t.Fatalf("chained scheduling reached depth %d, want 100", depth)
	}
}

func TestZeroDelayAfterRunsAfterCurrentCallback(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(Time(10), func() {
		e.After(0, func() { order = append(order, "deferred") })
		order = append(order, "direct")
	})
	e.Run()
	if len(order) != 2 || order[0] != "direct" || order[1] != "deferred" {
		t.Fatalf("order = %v, want [direct deferred]", order)
	}
}

func TestExecutedCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", e.Executed())
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(0).Add(1500 * time.Microsecond)
	if got := tm.Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds() = %v, want 1.5", got)
	}
	if got := tm.Seconds(); got != 0.0015 {
		t.Fatalf("Seconds() = %v, want 0.0015", got)
	}
	if got := tm.Sub(Time(0).Add(time.Millisecond)); got != 500*time.Microsecond {
		t.Fatalf("Sub = %v, want 500us", got)
	}
	if got := Millis(2.5); got != 2500*time.Microsecond {
		t.Fatalf("Millis(2.5) = %v, want 2.5ms", got)
	}
	if got := Millis(math.Inf(1)); got != time.Duration(math.MaxInt64) {
		t.Fatalf("Millis(+Inf) = %v, want MaxInt64", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different-seed generators collided %d/100 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(17)
	const (
		n    = 200000
		mean = 25.0
	)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean = %v, want ~%v", got, mean)
	}
}

func TestRandExpZeroMean(t *testing.T) {
	r := NewRand(19)
	for i := 0; i < 100; i++ {
		if v := r.Exp(0); v != 0 {
			t.Fatalf("Exp(0) = %v, want 0", v)
		}
	}
}

func TestRandExpNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, mean float64) bool {
		m := math.Abs(mean)
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			if r.Exp(m) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(99)
	a := parent.Fork("fd")
	b := parent.Fork("workload")
	c := parent.Fork("fd") // same label, second call: still distinct
	matches := 0
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av == bv || av == cv || bv == cv {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("forked streams collided %d/100 times", matches)
	}
}

func TestForkNDeterministicAcrossRuns(t *testing.T) {
	mk := func() []uint64 {
		parent := NewRand(123)
		var out []uint64
		for i := 0; i < 5; i++ {
			out = append(out, parent.ForkN(i).Uint64())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ForkN stream %d not reproducible", i)
		}
	}
}

func TestExpDistributionShape(t *testing.T) {
	// P(X > mean) should be about e^-1 ~ 0.368 for an exponential.
	r := NewRand(23)
	const n = 100000
	over := 0
	for i := 0; i < n; i++ {
		if r.Exp(10) > 10 {
			over++
		}
	}
	frac := float64(over) / n
	if math.Abs(frac-math.Exp(-1)) > 0.01 {
		t.Fatalf("P(X>mean) = %v, want ~%v", frac, math.Exp(-1))
	}
}

// TestMillisSaturates: millisecond values beyond the representable
// duration range — +Inf included — clamp to the maximum duration
// instead of overflowing to a negative one (which Schedule would then
// panic on as scheduling in the past).
func TestMillisSaturates(t *testing.T) {
	max := time.Duration(math.MaxInt64)
	for _, ms := range []float64{math.Inf(1), 1e300, 2e16} {
		if got := Millis(ms); got != max {
			t.Fatalf("Millis(%g) = %d, want saturation to %d", ms, got, max)
		}
	}
	if got := Millis(5); got != 5*time.Millisecond {
		t.Fatalf("Millis(5) = %v", got)
	}
}
