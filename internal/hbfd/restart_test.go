package hbfd

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func beatAt(ms int) sim.Time { return sim.Time(0).Add(time.Duration(ms) * time.Millisecond) }

// TestRestartResumesHeartbeats crashes a wrapped process long enough for
// its beat loop to die, recovers it, and checks that Restart makes it
// beat again so the peers' suspicion is withdrawn.
func TestRestartResumesHeartbeats(t *testing.T) {
	eng, sys, wrappers, probes := rig(2, Config{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond})
	eng.Schedule(beatAt(55), func() { sys.Crash(1) })
	eng.Schedule(beatAt(200), func() {
		sys.Recover(1, nil)
		wrappers[1].Restart()
	})
	eng.RunUntil(beatAt(400))
	// p0 suspected p1 during the outage and trusted it again once
	// heartbeats resumed.
	var sawSuspect, sawTrust bool
	for _, e := range probes[0].edges {
		if e.p == 1 && e.kind == "suspect" {
			sawSuspect = true
		}
		if e.p == 1 && e.kind == "trust" && sawSuspect {
			sawTrust = true
		}
	}
	if !sawSuspect {
		t.Fatal("p0 never suspected the crashed p1")
	}
	if !sawTrust {
		t.Fatal("p0 never trusted the restarted p1 again")
	}
	if wrappers[0].Suspects(1) {
		t.Fatal("p1 still suspected after Restart")
	}
}

// TestRestartDoesNotDoubleArm recovers within the crash window in which
// the old beat loop is still pending, restarts, and checks the heartbeat
// rate stays one per interval (the epoch guard strands the old loop).
func TestRestartDoesNotDoubleArm(t *testing.T) {
	eng, sys, wrappers, _ := rig(2, Config{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond})
	// Crash between two beats and recover before the next tick fires: the
	// old loop survives the window, so Restart must not add a second one.
	eng.Schedule(beatAt(52), func() { sys.Crash(1) })
	eng.Schedule(beatAt(54), func() {
		sys.Recover(1, nil)
		wrappers[1].Restart()
	})
	eng.RunUntil(beatAt(60))
	c0 := sys.Net.Counters().Multicasts
	eng.RunUntil(beatAt(160))
	sent := sys.Net.Counters().Multicasts - c0
	// Two processes beat every 10ms: ~20 beats expected in the 100ms
	// window; a double-armed p1 would push this toward 30.
	if sent < 18 || sent > 22 {
		t.Fatalf("multicasts in 100ms window = %d, want ~20 (no double-armed beat loop)", sent)
	}
}
