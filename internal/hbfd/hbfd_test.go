package hbfd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// edge records a suspicion transition observed by the inner handler.
type edge struct {
	kind string // "suspect" or "trust"
	p    proto.PID
	at   sim.Time
}

// probe is a minimal inner handler recording FD edges and the Suspects
// view of its (wrapped) runtime.
type probe struct {
	rt    proto.Runtime
	edges []edge
}

func (h *probe) Init() {}

func (h *probe) OnMessage(from proto.PID, payload any) {}

func (h *probe) OnSuspect(p proto.PID) {
	if !h.rt.Suspects(p) {
		panic("edge/state mismatch: suspect edge while Suspects is false")
	}
	h.edges = append(h.edges, edge{kind: "suspect", p: p, at: h.rt.Now()})
}

func (h *probe) OnTrust(p proto.PID) {
	if h.rt.Suspects(p) {
		panic("edge/state mismatch: trust edge while Suspects is true")
	}
	h.edges = append(h.edges, edge{kind: "trust", p: p, at: h.rt.Now()})
}

// rig builds n processes, each a heartbeat wrapper around a probe.
func rig(n int, cfg Config) (*sim.Engine, *proto.System, []*Wrapper, []*probe) {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(n), fd.QoS{}, sim.NewRand(1))
	wrappers := make([]*Wrapper, n)
	probes := make([]*probe, n)
	for i := 0; i < n; i++ {
		i := i
		wrappers[i] = Wrap(sys.Proc(proto.PID(i)), cfg, func(rt proto.Runtime) proto.Handler {
			probes[i] = &probe{rt: rt}
			return probes[i]
		})
		sys.SetHandler(proto.PID(i), wrappers[i])
	}
	sys.Start()
	return eng, sys, wrappers, probes
}

func at(ms float64) sim.Time { return sim.Time(0).Add(sim.Millis(ms)) }

func TestNoSuspicionsWhenIdle(t *testing.T) {
	eng, _, wrappers, probes := rig(3, Config{})
	eng.RunUntil(at(2000))
	for i, pr := range probes {
		if len(pr.edges) != 0 {
			t.Fatalf("p%d saw %d edges while idle: %+v", i, len(pr.edges), pr.edges)
		}
		total, _ := wrappers[i].Suspicions()
		if total != 0 {
			t.Fatalf("p%d raised %d suspicions while idle", i, total)
		}
	}
}

func TestCrashDetectedWithinTimeoutPlusSlack(t *testing.T) {
	cfg := Config{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond}
	eng, sys, _, probes := rig(3, cfg)
	crash := at(100)
	sys.CrashAt(2, crash)
	eng.RunUntil(at(2000))
	for i := 0; i < 2; i++ {
		if len(probes[i].edges) != 1 {
			t.Fatalf("p%d edges = %+v, want one suspicion", i, probes[i].edges)
		}
		e := probes[i].edges[0]
		if e.kind != "suspect" || e.p != 2 {
			t.Fatalf("p%d edge = %+v", i, e)
		}
		// Detection latency: between Timeout and Timeout + Interval +
		// one in-flight heartbeat (~3ms network traversal).
		td := e.at.Sub(crash)
		if td < cfg.Timeout || td > cfg.Timeout+cfg.Interval+5*time.Millisecond {
			t.Fatalf("p%d detection latency = %v, want ~[%v, %v]", i, td,
				cfg.Timeout, cfg.Timeout+cfg.Interval)
		}
	}
}

func TestTightTimeoutCausesWrongSuspicionsUnderLoad(t *testing.T) {
	// Timeout barely above one network traversal: background traffic
	// delays heartbeats past it, producing suspicion/trust flapping —
	// the accuracy-vs-detection-time trade-off.
	cfg := Config{Interval: 4 * time.Millisecond, Timeout: 5 * time.Millisecond}
	eng, sys, wrappers, _ := rig(3, cfg)
	// Saturating background chatter (direct network sends bypass the
	// wrapper but occupy CPUs and wire).
	var spam func()
	spam = func() {
		sys.Net.Multicast(0, "noise")
		sys.Net.Multicast(1, "noise")
		eng.After(2*time.Millisecond, spam)
	}
	eng.Schedule(0, spam)
	eng.RunUntil(at(3000))
	totalWrong := 0
	for _, w := range wrappers {
		_, wrong := w.Suspicions()
		totalWrong += wrong
	}
	if totalWrong == 0 {
		t.Fatal("no wrong suspicions despite a too-tight timeout under load")
	}
}

func TestGenerousTimeoutAccurateUnderLoad(t *testing.T) {
	cfg := Config{Interval: 10 * time.Millisecond, Timeout: 100 * time.Millisecond}
	eng, sys, wrappers, _ := rig(3, cfg)
	var spam func()
	spam = func() {
		sys.Net.Multicast(0, "noise")
		eng.After(3*time.Millisecond, spam)
	}
	eng.Schedule(0, spam)
	eng.RunUntil(at(3000))
	for i, w := range wrappers {
		total, _ := w.Suspicions()
		if total != 0 {
			t.Fatalf("p%d raised %d suspicions with a generous timeout", i, total)
		}
	}
}

func TestAtomicBroadcastOverHeartbeatDetector(t *testing.T) {
	// End-to-end: the FD algorithm running on heartbeats instead of the
	// QoS model, with a real crash. Everything still delivers in order.
	const n = 3
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(n), fd.QoS{}, sim.NewRand(1))
	deliveries := make([][]proto.MsgID, n)
	abcs := make([]*ctabcast.Process, n)
	for i := 0; i < n; i++ {
		i := i
		w := Wrap(sys.Proc(proto.PID(i)),
			Config{Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond},
			func(rt proto.Runtime) proto.Handler {
				abcs[i] = ctabcast.New(rt, ctabcast.Config{
					Renumber: true,
					Deliver: func(id proto.MsgID, body any) {
						deliveries[i] = append(deliveries[i], id)
					},
				})
				return abcs[i]
			})
		sys.SetHandler(proto.PID(i), w)
	}
	sys.Start()

	for k := 0; k < 10; k++ {
		k := k
		eng.Schedule(at(float64(10*k)), func() {
			if !sys.Proc(proto.PID(k % n)).Crashed() {
				abcs[k%n].ABroadcast(fmt.Sprintf("m%d", k))
			}
		})
	}
	sys.CrashAt(0, at(35)) // kill the coordinator mid-run
	eng.RunUntil(at(5000))

	// Survivors agree on one order and delivered the survivors' messages.
	if len(deliveries[1]) == 0 {
		t.Fatal("no deliveries at p1")
	}
	if len(deliveries[1]) != len(deliveries[2]) {
		t.Fatalf("delivery counts differ: %d vs %d", len(deliveries[1]), len(deliveries[2]))
	}
	for i := range deliveries[1] {
		if deliveries[1][i] != deliveries[2][i] {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestHeartbeatTrafficLoad(t *testing.T) {
	// 3 processes at 10ms intervals for 1s: ~100 multicasts each.
	eng, sys, _, _ := rig(3, Config{Interval: 10 * time.Millisecond})
	eng.RunUntil(at(1000))
	mc := sys.Net.Counters().Multicasts
	if mc < 290 || mc > 310 {
		t.Fatalf("heartbeat multicasts = %d, want ~300", mc)
	}
}

func TestWrapValidation(t *testing.T) {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(1), fd.QoS{}, sim.NewRand(1))
	defer func() {
		if recover() == nil {
			t.Fatal("nil inner handler did not panic")
		}
	}()
	Wrap(sys.Proc(0), Config{}, func(proto.Runtime) proto.Handler { return nil })
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Interval != defaultInterval || cfg.Timeout != 3*defaultInterval {
		t.Fatalf("defaults = %+v", cfg)
	}
}
