// Package hbfd implements a concrete heartbeat failure detector, as an
// alternative to the abstract QoS model of internal/fd.
//
// The paper deliberately models failure detectors only by their QoS
// metrics (§6.2): "one approach to modeling a failure detector is to use a
// specific failure detection algorithm and model all its messages.
// However, this approach would restrict the generality of our study."
// This package is that other approach, provided as an extension: every
// process multicasts a heartbeat every Interval, and a monitor suspects a
// peer after Timeout without one. Heartbeats travel through the same
// contention-aware network as protocol messages, so the detector exhibits
// the real trade-off the QoS metrics abstract away — aggressive timeouts
// give small detection times TD but generate wrong suspicions (finite
// TMR) when load delays heartbeats, exactly the tuning question of the
// paper's reference [17].
//
// The detector wraps a protocol handler: heartbeat traffic is consumed
// transparently, suspicion edges are injected into the inner handler, and
// the inner protocol's Runtime.Suspects consults the heartbeat state
// instead of the system's modelled detectors (configure those with a
// zero QoS so they stay silent).
package hbfd

import (
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Msg is a heartbeat. The sender is carried by the envelope.
type Msg struct{}

// Config tunes the detector.
type Config struct {
	// Interval is the heartbeat period. Zero selects 10 ms.
	Interval time.Duration
	// Timeout is the silence after which a peer is suspected. Zero
	// selects 3x the interval.
	Timeout time.Duration
}

const defaultInterval = 10 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = defaultInterval
	}
	if c.Timeout <= 0 {
		c.Timeout = 3 * c.Interval
	}
	return c
}

// Wrapper runs a heartbeat detector around an inner protocol handler.
type Wrapper struct {
	rt    proto.Runtime
	cfg   Config
	inner proto.Handler

	lastBeat  []sim.Time
	suspected []bool

	// epoch guards the beat and check loops: Restart bumps it so a loop
	// that survived a short crash window cannot double-arm.
	epoch uint64

	// Counters for analysis.
	wrongSuspicions int
	suspicions      int
}

var _ proto.Runtime = (*runtime)(nil)

// runtime overrides Suspects with the heartbeat state.
type runtime struct {
	proto.Runtime
	w *Wrapper
}

func (r *runtime) Suspects(p proto.PID) bool { return r.w.suspected[p] }

// Wrap builds the wrapper. makeInner constructs the inner protocol
// against the wrapped runtime (whose Suspects consults heartbeats).
func Wrap(rt proto.Runtime, cfg Config, makeInner func(proto.Runtime) proto.Handler) *Wrapper {
	w := &Wrapper{
		rt:        rt,
		cfg:       cfg.withDefaults(),
		lastBeat:  make([]sim.Time, rt.N()),
		suspected: make([]bool, rt.N()),
	}
	w.inner = makeInner(&runtime{Runtime: rt, w: w})
	if w.inner == nil {
		panic("hbfd: makeInner returned nil")
	}
	return w
}

// Inner returns the wrapped handler, for tests and type assertions.
func (w *Wrapper) Inner() proto.Handler { return w.inner }

// Suspects reports the current heartbeat-derived suspicion of p.
func (w *Wrapper) Suspects(p proto.PID) bool { return w.suspected[int(p)] }

// Suspicions returns the total number of suspicion edges raised; wrong
// suspicions (the target had not crashed... indistinguishable locally) are
// those later withdrawn by a trust edge.
func (w *Wrapper) Suspicions() (total, withdrawn int) {
	return w.suspicions, w.wrongSuspicions
}

// Init implements proto.Handler: start the beat and check loops, then the
// inner protocol.
func (w *Wrapper) Init() {
	now := w.rt.Now()
	for p := range w.lastBeat {
		w.lastBeat[p] = now // grace period: everyone starts trusted
	}
	w.beat()
	w.armCheck()
	w.inner.Init()
}

// Restart re-arms the beat and check loops after the wrapped process
// recovers from a crash: the runtime's crash guard kills the loops the
// first time a tick fires while crashed, so a resumed process would
// otherwise stay silent and be suspected forever. Every peer gets a fresh
// grace period; standing suspicions are kept and withdrawn by the next
// heartbeat of each live peer.
func (w *Wrapper) Restart() {
	w.epoch++ // strand any loop that survived a short crash window
	now := w.rt.Now()
	for p := range w.lastBeat {
		w.lastBeat[p] = now
	}
	w.beat()
	w.armCheck()
}

// beat multicasts one heartbeat and re-arms.
func (w *Wrapper) beat() {
	w.rt.Multicast(Msg{})
	e := w.epoch
	w.rt.After(w.cfg.Interval, func() {
		if e == w.epoch {
			w.beat()
		}
	})
}

// armCheck schedules the next silence scan.
func (w *Wrapper) armCheck() {
	e := w.epoch
	w.rt.After(w.cfg.Interval, func() {
		if e == w.epoch {
			w.check()
		}
	})
}

// check scans for silent peers and re-arms. Trust edges fire from
// heartbeat receipt, not from here.
func (w *Wrapper) check() {
	now := w.rt.Now()
	for p := range w.lastBeat {
		if proto.PID(p) == w.rt.ID() || w.suspected[p] {
			continue
		}
		if now.Sub(w.lastBeat[p]) > w.cfg.Timeout {
			w.suspected[p] = true
			w.suspicions++
			w.inner.OnSuspect(proto.PID(p))
		}
	}
	w.armCheck()
}

// OnMessage implements proto.Handler: heartbeat traffic is absorbed,
// everything else passes through.
func (w *Wrapper) OnMessage(from proto.PID, payload any) {
	if _, isBeat := payload.(Msg); isBeat {
		w.lastBeat[from] = w.rt.Now()
		if w.suspected[from] {
			// The peer is alive after all: withdraw the suspicion.
			w.suspected[from] = false
			w.wrongSuspicions++
			w.inner.OnTrust(from)
		}
		return
	}
	w.inner.OnMessage(from, payload)
}

// OnSuspect implements proto.Handler: edges from the system's modelled
// detectors are ignored — this wrapper replaces them.
func (w *Wrapper) OnSuspect(proto.PID) {}

// OnTrust implements proto.Handler: ignored, as above.
func (w *Wrapper) OnTrust(proto.PID) {}
