package proto

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/sim"
)

func TestRecoverResumesHandler(t *testing.T) {
	sys, handlers := build(2, fd.QoS{})
	sys.Start()
	eng := sys.Eng
	eng.Schedule(sim.Time(0).Add(5*time.Millisecond), func() { sys.Crash(1) })
	eng.Schedule(sim.Time(0).Add(10*time.Millisecond), func() { sys.Proc(0).Send(1, "dropped") })
	eng.Schedule(sim.Time(0).Add(30*time.Millisecond), func() {
		sys.Recover(1, nil)
		sys.Proc(0).Send(1, "resumed")
	})
	eng.Run()
	h := handlers[1]
	if h.count("msg") != 1 || h.events[len(h.events)-1].payload != "resumed" {
		t.Fatalf("resumed handler events = %+v, want exactly the post-recovery message", h.events)
	}
	if h.count("init") != 1 {
		t.Fatalf("resume ran Init %d times, want 1 (the original)", h.count("init"))
	}
	if sys.Proc(1).Crashed() {
		t.Fatal("process still crashed after Recover")
	}
}

func TestRecoverRemakeReplacesHandlerAndInits(t *testing.T) {
	sys, handlers := build(2, fd.QoS{})
	sys.Start()
	eng := sys.Eng
	var fresh *testHandler
	eng.Schedule(sim.Time(0).Add(5*time.Millisecond), func() { sys.Crash(1) })
	eng.Schedule(sim.Time(0).Add(30*time.Millisecond), func() {
		sys.Recover(1, func(rt Runtime) Handler {
			fresh = &testHandler{rt: rt}
			return fresh
		})
		sys.Proc(0).Send(1, "hello-new")
	})
	eng.Run()
	if fresh == nil {
		t.Fatal("remake never ran")
	}
	if fresh.count("init") != 1 {
		t.Fatalf("fresh incarnation Init ran %d times, want 1", fresh.count("init"))
	}
	if fresh.count("msg") != 1 || fresh.events[len(fresh.events)-1].payload != "hello-new" {
		t.Fatalf("fresh incarnation events = %+v", fresh.events)
	}
	if got := handlers[1].count("msg"); got != 0 {
		t.Fatalf("old incarnation received %d messages after replacement", got)
	}
}

func TestRecoverRemakeStrandsOldTimers(t *testing.T) {
	sys, _ := build(1, fd.QoS{})
	sys.Start()
	eng := sys.Eng
	oldFired, newFired := 0, 0
	proc := sys.Proc(0)
	// A timer of the first incarnation, due after the recovery.
	proc.After(50*time.Millisecond, func() { oldFired++ })
	eng.Schedule(sim.Time(0).Add(10*time.Millisecond), func() { sys.Crash(0) })
	eng.Schedule(sim.Time(0).Add(20*time.Millisecond), func() {
		sys.Recover(0, func(rt Runtime) Handler {
			rt.After(50*time.Millisecond, func() { newFired++ })
			return &testHandler{rt: rt}
		})
	})
	eng.Run()
	if oldFired != 0 {
		t.Fatal("a previous incarnation's timer fired after the handler was replaced")
	}
	if newFired != 1 {
		t.Fatalf("new incarnation's timer fired %d times, want 1", newFired)
	}
}

func TestPartitionSeversDetectorsAndHealRestores(t *testing.T) {
	sys, handlers := build(4, fd.QoS{TD: 10 * time.Millisecond})
	sys.Start()
	eng := sys.Eng
	eng.Schedule(sim.Time(0).Add(5*time.Millisecond), func() {
		sys.Partition([][]PID{{0, 1}, {2, 3}})
	})
	eng.Schedule(sim.Time(0).Add(50*time.Millisecond), func() { sys.Heal() })
	eng.RunUntil(sim.Time(0).Add(200 * time.Millisecond))
	h0 := handlers[0]
	// p0 suspects p2 and p3 at 15ms, trusts them again at 50ms; p1 stays
	// trusted throughout.
	suspects, trusts := 0, 0
	for _, e := range h0.events {
		switch e.kind {
		case "suspect":
			suspects++
			if e.from == 1 {
				t.Fatalf("p0 suspected same-group p1: %+v", e)
			}
		case "trust":
			trusts++
		}
	}
	if suspects != 2 || trusts != 2 {
		t.Fatalf("p0 saw %d suspects / %d trusts, want 2/2; events %+v", suspects, trusts, h0.events)
	}
	if sys.Proc(0).Suspects(2) || sys.Proc(0).Suspects(3) {
		t.Fatal("suspicions not withdrawn after Heal")
	}
}

func TestPartitionDropsCrossGroupMessages(t *testing.T) {
	sys, handlers := build(3, fd.QoS{})
	sys.Start()
	eng := sys.Eng
	eng.Schedule(sim.Time(0).Add(1*time.Millisecond), func() {
		sys.Partition([][]PID{{0, 1}, {2}})
		sys.Proc(0).Multicast("during")
	})
	eng.Schedule(sim.Time(0).Add(20*time.Millisecond), func() {
		sys.Heal()
		sys.Proc(0).Multicast("after")
	})
	eng.Run()
	if got := handlers[1].count("msg"); got != 2 {
		t.Fatalf("same-group p1 received %d messages, want 2", got)
	}
	if got := handlers[2].count("msg"); got != 1 {
		t.Fatalf("cross-group p2 received %d messages, want 1 (post-heal only)", got)
	}
}

func TestRepartitionAdjustsSeveredPairs(t *testing.T) {
	sys, _ := build(3, fd.QoS{})
	sys.Start()
	eng := sys.Eng
	eng.Schedule(sim.Time(0).Add(1*time.Millisecond), func() {
		sys.Partition([][]PID{{0, 1}, {2}})
	})
	eng.Schedule(sim.Time(0).Add(10*time.Millisecond), func() {
		// The split moves: p1 now isolated, p2 back with p0.
		sys.Partition([][]PID{{0, 2}, {1}})
	})
	eng.RunUntil(sim.Time(0).Add(50 * time.Millisecond))
	if sys.Proc(0).Suspects(2) {
		t.Fatal("p2 rejoined p0's side but is still suspected")
	}
	if !sys.Proc(0).Suspects(1) {
		t.Fatal("p1 moved across the split but is not suspected")
	}
}
