// Package proto is the protocol runtime: it wires algorithm state machines
// to the simulated network (internal/netmodel) and failure detectors
// (internal/fd), playing the role Neko's process/layer framework played in
// the paper's experiments.
//
// Algorithms are written as event-driven state machines implementing
// Handler. The runtime guarantees deterministic, serialised delivery of
// messages, timers and failure-detector edges — per process, through the
// process's own engine handle, so a handler also runs correctly when the
// engine executes conflict domains in parallel — and it enforces crash
// semantics: once a process crashes, its handler never runs again.
// Handler code itself never observes concurrency: everything a process
// does (its timers via Proc.After, its sends, its clock via Proc.Now)
// stays inside the conflict domain the process belongs to.
package proto

import (
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// PID identifies a process: 0 .. n-1. The paper's p1 corresponds to PID 0.
type PID int

// MsgID uniquely identifies an atomic-broadcast message: the origin
// process plus a per-origin sequence number. The deterministic delivery
// order the paper prescribes ("according to the order of their IDs") is
// the Less order below.
type MsgID struct {
	Origin PID
	Seq    uint64
}

// Less orders message IDs first by origin, then by sequence number.
func (a MsgID) Less(b MsgID) bool {
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Seq < b.Seq
}

// String formats the ID as "origin:seq".
func (a MsgID) String() string { return fmt.Sprintf("%d:%d", a.Origin, a.Seq) }

// Runtime is the environment an algorithm layer runs against. It is
// implemented by *Proc in simulations; unit tests may supply lightweight
// fakes.
type Runtime interface {
	// ID returns the process this runtime belongs to.
	ID() PID
	// N returns the total number of processes.
	N() int
	// Now returns the current virtual time.
	Now() sim.Time
	// Rand returns the process-local random stream.
	Rand() *sim.Rand
	// Send transmits a payload to one process through the network model.
	Send(to PID, payload any)
	// Multicast transmits a payload to all processes including the
	// sender (whose copy is delivered locally, at no cost).
	Multicast(payload any)
	// After schedules a callback, cancellable through the returned
	// timer. Callbacks do not run after the process crashes.
	After(d time.Duration, fn func()) Timer
	// Suspects reports whether the local failure detector currently
	// suspects p.
	Suspects(p PID) bool
}

// Timer is a cancellable pending callback. *sim.Event implements it in
// simulations; the real-time runtime (internal/rt) wraps *time.Timer.
type Timer interface {
	// Cancel prevents the callback from firing; cancelling a fired or
	// cancelled timer is a no-op.
	Cancel()
}

// Handler is the root protocol state machine of one process.
type Handler interface {
	// Init runs once when the system starts, before any event.
	Init()
	// OnMessage receives a payload sent by process from (possibly the
	// process itself, for multicasts).
	OnMessage(from PID, payload any)
	// OnSuspect fires when the local failure detector starts suspecting p.
	OnSuspect(p PID)
	// OnTrust fires when the local failure detector stops suspecting p.
	OnTrust(p PID)
}

// System assembles n processes over a shared network model and failure-
// detector simulation.
type System struct {
	Eng *sim.Engine
	Net *netmodel.Network
	FDs *fd.Sim

	procs   []*Proc
	started bool
	// partLabel is the current partition's group label per process, nil
	// when the network is whole; it tracks which directed failure-detector
	// links are severed so Partition/Heal keep net and fd views agreeing.
	partLabel []int
}

// NewSystem builds a system of n processes. rng is the root randomness;
// independent streams are forked for the failure detectors and for each
// process.
func NewSystem(eng *sim.Engine, netCfg netmodel.Config, qos fd.QoS, rng *sim.Rand) *System {
	n := netCfg.N
	s := &System{Eng: eng}
	s.Net = netmodel.New(eng, netCfg, s.dispatch)
	s.FDs = fd.NewSim(eng, n, qos, rng.Fork("fd"))
	s.procs = make([]*Proc, n)
	for p := 0; p < n; p++ {
		proc := &Proc{
			sys: s,
			id:  PID(p),
			eng: eng.For(p),
			rng: rng.ForkN(p),
		}
		s.procs[p] = proc
		s.FDs.Detector(p).SetListener(fdListener{proc})
	}
	// Forked last so every stream above is unchanged by its existence.
	s.Net.SetFaultRand(rng.Fork("netfault"))
	return s
}

// N returns the number of processes.
func (s *System) N() int { return len(s.procs) }

// Proc returns the runtime of process p.
func (s *System) Proc(p PID) *Proc { return s.procs[p] }

// SetHandler installs the root protocol of process p. It must be called
// before Start.
func (s *System) SetHandler(p PID, h Handler) {
	if s.started {
		panic("proto: SetHandler after Start")
	}
	s.procs[p].handler = h
}

// Start initialises every live process's handler. It must be called
// exactly once, after all handlers are set.
func (s *System) Start() {
	if s.started {
		panic("proto: Start called twice")
	}
	s.started = true
	for _, proc := range s.procs {
		if proc.handler == nil {
			panic(fmt.Sprintf("proto: process %d has no handler", proc.id))
		}
		if !proc.crashed {
			proc.handler.Init()
		}
	}
}

// Crash kills process p at the current instant: the network stops
// carrying messages to/from it (in-flight sends still complete), failure
// detectors begin detection, and the handler never runs again.
func (s *System) Crash(p PID) {
	proc := s.procs[p]
	if proc.crashed {
		return
	}
	proc.crashed = true
	s.Net.Crash(int(p))
	s.FDs.Crash(int(p))
}

// CrashAt schedules Crash(p) at instant at.
func (s *System) CrashAt(p PID, at sim.Time) {
	s.Eng.Schedule(at, func() { s.Crash(p) })
}

// Recover revives crashed process p at the current instant: the network
// resumes carrying messages to and from it, the failure detectors stop
// suspecting it (trust edges fire at the other processes in ascending
// order, pending detections of the reversed crash are invalidated), and
// the handler runs again. If remake is non-nil, a fresh handler
// incarnation replaces the old one — timers of the previous incarnation
// are invalidated and the new handler's Init runs — which is how a true
// crash-recovery with rejoin is modelled; a nil remake resumes the
// existing handler with its state intact, the long-outage model.
// Recovering a live process is a no-op.
func (s *System) Recover(p PID, remake func(Runtime) Handler) {
	proc := s.procs[p]
	if !proc.crashed {
		return
	}
	s.Net.Recover(int(p))
	s.FDs.Recover(int(p))
	proc.crashed = false
	if remake != nil {
		proc.gen++ // the previous incarnation's timers must never fire
		h := remake(proc)
		if h == nil {
			panic(fmt.Sprintf("proto: Recover remake returned nil handler for process %d", p))
		}
		proc.handler = h
		h.Init()
	}
}

// Partition splits the system into isolated groups as of the current
// instant: the network discards copies crossing groups (see
// netmodel.SetPartition) and every failure detector treats unreachable
// processes like crashed ones — suspicion TD after the split, trust on
// heal. A process listed in no group is isolated on its own. A new
// partition replaces the previous one, severing and restoring only the
// directed links whose reachability changed; Heal removes it.
func (s *System) Partition(groups [][]PID) {
	n := len(s.procs)
	label := make([]int, n)
	for p := range label {
		label[p] = -(p + 1)
	}
	ints := make([][]int, len(groups))
	for gi, g := range groups {
		ints[gi] = make([]int, len(g))
		for i, p := range g {
			if int(p) < 0 || int(p) >= n {
				panic(fmt.Sprintf("proto: partition group contains process %d, want 0..%d", p, n-1))
			}
			label[p] = gi
			ints[gi][i] = int(p)
		}
	}
	old := s.partLabel
	cross := func(lab []int, q, p int) bool { return lab != nil && lab[q] != lab[p] }
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			was, now := cross(old, q, p), cross(label, q, p)
			switch {
			case now && !was:
				s.FDs.Sever(q, p)
			case was && !now:
				s.FDs.Restore(q, p)
			}
		}
	}
	s.partLabel = label
	s.Net.SetPartition(ints)
}

// Heal removes the current partition: reachability is restored and every
// suspicion the split caused is withdrawn (trust edges in ascending
// (monitor, target) order). Healing a whole network is a no-op.
func (s *System) Heal() {
	if s.partLabel == nil {
		return
	}
	n := len(s.procs)
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			if p != q && s.partLabel[q] != s.partLabel[p] {
				s.FDs.Restore(q, p)
			}
		}
	}
	s.partLabel = nil
	s.Net.ClearPartition()
}

// PreCrash establishes the crash-steady initial condition: p has been
// crashed for a long time, every failure detector suspects it permanently,
// and no detection edges fire. Call before Start.
func (s *System) PreCrash(p PID) {
	proc := s.procs[p]
	proc.crashed = true
	s.Net.Crash(int(p))
	s.FDs.PreSuspect(int(p))
}

// dispatch routes a completed network delivery to the destination handler.
func (s *System) dispatch(to, from int, payload any) {
	proc := s.procs[to]
	if proc.crashed || proc.handler == nil {
		return
	}
	proc.handler.OnMessage(PID(from), payload)
}

// Proc is the per-process runtime. It implements Runtime.
type Proc struct {
	sys *System
	id  PID
	// eng is the process's engine handle: its conflict-domain queue under
	// the parallel engine, the system engine itself when serial. All
	// per-process clock reads and timers go through it, so protocol code
	// runs entirely inside its own domain.
	eng     *sim.Engine
	rng     *sim.Rand
	handler Handler
	crashed bool
	// gen is the handler incarnation: timers capture it at creation and
	// only fire while it is current, so a recovery that rebuilds the
	// handler (System.Recover with remake) strands the old incarnation's
	// timers instead of letting them mutate a detached state machine.
	gen uint64
}

var _ Runtime = (*Proc)(nil)

// ID implements Runtime.
func (p *Proc) ID() PID { return p.id }

// N implements Runtime.
func (p *Proc) N() int { return p.sys.N() }

// Now implements Runtime. The clock read is the process's own domain
// clock, which inside a parallel window is the instant of the event
// being executed.
func (p *Proc) Now() sim.Time { return p.eng.Now() }

// Eng returns the process's engine handle (the domain queue under the
// parallel engine, the system engine when serial).
func (p *Proc) Eng() *sim.Engine { return p.eng }

// Rand implements Runtime.
func (p *Proc) Rand() *sim.Rand { return p.rng }

// Crashed reports whether the process has crashed.
func (p *Proc) Crashed() bool { return p.crashed }

// Handler returns the installed root protocol.
func (p *Proc) Handler() Handler { return p.handler }

// Send implements Runtime.
func (p *Proc) Send(to PID, payload any) {
	if p.crashed {
		netmodel.Discard(payload)
		return
	}
	p.sys.Net.Send(int(p.id), int(to), payload)
}

// Multicast implements Runtime.
func (p *Proc) Multicast(payload any) {
	if p.crashed {
		netmodel.Discard(payload)
		return
	}
	p.sys.Net.Multicast(int(p.id), payload)
}

// MulticastSet transmits payload to the members of a destination set
// registered with the network (netmodel.Network.RegisterSet), honouring
// crash semantics like Multicast. Group runtimes use it to disseminate
// within one group only.
func (p *Proc) MulticastSet(set netmodel.SetID, payload any) {
	if p.crashed {
		netmodel.Discard(payload)
		return
	}
	p.sys.Net.MulticastSet(int(p.id), set, payload)
}

// After implements Runtime. The callback is dropped if the process has
// crashed, or its handler incarnation has been replaced by a recovery, by
// the time it fires.
func (p *Proc) After(d time.Duration, fn func()) Timer {
	gen := p.gen
	return p.eng.After(d, func() {
		if !p.crashed && p.gen == gen {
			fn()
		}
	})
}

// Suspects implements Runtime.
func (p *Proc) Suspects(q PID) bool {
	return p.sys.FDs.Detector(int(p.id)).Suspects(int(q))
}

// fdListener forwards failure-detector edges to the process handler,
// respecting crash semantics.
type fdListener struct{ proc *Proc }

func (l fdListener) OnSuspect(q int) {
	if !l.proc.crashed && l.proc.handler != nil {
		l.proc.handler.OnSuspect(PID(q))
	}
}

func (l fdListener) OnTrust(q int) {
	if !l.proc.crashed && l.proc.handler != nil {
		l.proc.handler.OnTrust(PID(q))
	}
}

// SortMsgIDs sorts ids in place in the canonical (origin, seq) order used
// for deterministic intra-batch delivery.
func SortMsgIDs(ids []MsgID) {
	// Insertion sort: batches are small and this avoids an import cycle
	// trap if a future refactor moves this helper.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Less(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
