package proto

import (
	"testing"
	"testing/quick"
)

// TestIDTrackerMatchesReferenceSet checks the watermark+sparse tracker
// against a plain map under random add/query sequences.
func TestIDTrackerMatchesReferenceSet(t *testing.T) {
	type op struct {
		Origin uint8
		Seq    uint16
		Query  bool
	}
	f := func(ops []op) bool {
		tracker := NewIDTracker()
		ref := make(map[MsgID]bool)
		for _, o := range ops {
			id := MsgID{Origin: PID(o.Origin % 4), Seq: uint64(o.Seq%64) + 1}
			if o.Query {
				if tracker.Seen(id) != ref[id] {
					return false
				}
				continue
			}
			added := tracker.Add(id)
			if added == ref[id] { // Add returns true iff new
				return false
			}
			ref[id] = true
		}
		for id := range ref {
			if !tracker.Seen(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIDTrackerSparseBoundedUnderRandomOrder: whatever the insertion
// order, once a contiguous prefix is complete the sparse set holds only
// the out-of-order tail.
func TestIDTrackerSparseBoundedUnderRandomOrder(t *testing.T) {
	f := func(perm []uint8) bool {
		tracker := NewIDTracker()
		seen := make(map[uint64]bool)
		var seqs []uint64
		for _, p := range perm {
			s := uint64(p%32) + 1
			if !seen[s] {
				seen[s] = true
				seqs = append(seqs, s)
			}
		}
		for _, s := range seqs {
			tracker.Add(MsgID{Origin: 1, Seq: s})
		}
		// If 1..k were all inserted, the sparse set holds at most the
		// non-contiguous remainder.
		k := uint64(0)
		for seen[k+1] {
			k++
		}
		return tracker.SparseLen() <= len(seqs)-int(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerSnapshotMergeIsUnion: after merging B's snapshot into A, A
// sees exactly the union of both ID sets — every covered ID and nothing
// more — and a second merge of the same snapshot changes nothing.
func TestTrackerSnapshotMergeIsUnion(t *testing.T) {
	type op struct {
		Origin uint8
		Seq    uint16
		IntoB  bool
	}
	f := func(ops []op) bool {
		a, b := NewIDTracker(), NewIDTracker()
		refA := make(map[MsgID]bool)
		refB := make(map[MsgID]bool)
		for _, o := range ops {
			id := MsgID{Origin: PID(o.Origin % 4), Seq: uint64(o.Seq%64) + 1}
			if o.IntoB {
				b.Add(id)
				refB[id] = true
			} else {
				a.Add(id)
				refA[id] = true
			}
		}
		snap := b.Snapshot()
		for merges := 0; merges < 2; merges++ { // second pass checks idempotence
			a.Merge(snap)
			for origin := PID(0); origin < 4; origin++ {
				// Probe past 64 too: a merge must not invent IDs.
				for seq := uint64(1); seq <= 70; seq++ {
					id := MsgID{Origin: origin, Seq: seq}
					if a.Seen(id) != (refA[id] || refB[id]) {
						return false
					}
				}
			}
		}
		// The donor is untouched by its snapshot being merged elsewhere.
		for origin := PID(0); origin < 4; origin++ {
			for seq := uint64(1); seq <= 70; seq++ {
				id := MsgID{Origin: origin, Seq: seq}
				if b.Seen(id) != refB[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSortMsgIDsMatchesTotalOrder: SortMsgIDs agrees with the Less
// relation on random inputs, and Less is a strict total order.
func TestSortMsgIDsMatchesTotalOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]MsgID, len(raw))
		for i, r := range raw {
			ids[i] = MsgID{Origin: PID(r % 5), Seq: uint64(r / 5)}
		}
		SortMsgIDs(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i].Less(ids[i-1]) {
				return false
			}
		}
		// Strictness: a.Less(b) and b.Less(a) never both hold.
		for i := 1; i < len(ids); i++ {
			if ids[i].Less(ids[i-1]) && ids[i-1].Less(ids[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
