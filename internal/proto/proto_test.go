package proto

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// event records something a test handler observed.
type event struct {
	kind    string // "init", "msg", "suspect", "trust"
	from    PID
	payload any
	at      sim.Time
}

// testHandler records events and optionally reacts to messages.
type testHandler struct {
	rt     Runtime
	events []event
	onMsg  func(from PID, payload any)
}

func (h *testHandler) Init() {
	h.events = append(h.events, event{kind: "init", at: h.rt.Now()})
}

func (h *testHandler) OnMessage(from PID, payload any) {
	h.events = append(h.events, event{kind: "msg", from: from, payload: payload, at: h.rt.Now()})
	if h.onMsg != nil {
		h.onMsg(from, payload)
	}
}

func (h *testHandler) OnSuspect(p PID) {
	h.events = append(h.events, event{kind: "suspect", from: p, at: h.rt.Now()})
}

func (h *testHandler) OnTrust(p PID) {
	h.events = append(h.events, event{kind: "trust", from: p, at: h.rt.Now()})
}

// build constructs a system of n processes with recording handlers.
func build(n int, qos fd.QoS) (*System, []*testHandler) {
	eng := sim.New()
	sys := NewSystem(eng, netmodel.DefaultConfig(n), qos, sim.NewRand(1))
	handlers := make([]*testHandler, n)
	for p := 0; p < n; p++ {
		h := &testHandler{rt: sys.Proc(PID(p))}
		handlers[p] = h
		sys.SetHandler(PID(p), h)
	}
	return sys, handlers
}

func (h *testHandler) count(kind string) int {
	c := 0
	for _, e := range h.events {
		if e.kind == kind {
			c++
		}
	}
	return c
}

func TestStartInitialisesHandlers(t *testing.T) {
	sys, handlers := build(3, fd.QoS{})
	sys.Start()
	for p, h := range handlers {
		if h.count("init") != 1 {
			t.Fatalf("process %d init count = %d", p, h.count("init"))
		}
	}
}

func TestStartTwicePanics(t *testing.T) {
	sys, _ := build(1, fd.QoS{})
	sys.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	sys.Start()
}

func TestStartWithoutHandlerPanics(t *testing.T) {
	eng := sim.New()
	sys := NewSystem(eng, netmodel.DefaultConfig(2), fd.QoS{}, sim.NewRand(1))
	sys.SetHandler(0, &testHandler{rt: sys.Proc(0)})
	defer func() {
		if recover() == nil {
			t.Fatal("Start with missing handler did not panic")
		}
	}()
	sys.Start()
}

func TestSendAndMulticastDelivery(t *testing.T) {
	sys, handlers := build(3, fd.QoS{})
	sys.Start()
	sys.Eng.Schedule(0, func() {
		sys.Proc(0).Send(1, "uni")
		sys.Proc(2).Multicast("multi")
	})
	sys.Eng.Run()
	if handlers[1].count("msg") != 2 { // uni + multi
		t.Fatalf("p1 got %d messages, want 2", handlers[1].count("msg"))
	}
	if handlers[0].count("msg") != 1 || handlers[2].count("msg") != 1 {
		t.Fatalf("multicast delivery incomplete: p0=%d p2=%d",
			handlers[0].count("msg"), handlers[2].count("msg"))
	}
	// Multicast self-copy arrives from self.
	var selfFrom PID = -1
	for _, e := range handlers[2].events {
		if e.kind == "msg" {
			selfFrom = e.from
		}
	}
	if selfFrom != 2 {
		t.Fatalf("self multicast copy from %d, want 2", selfFrom)
	}
}

func TestCrashedHandlerNeverRuns(t *testing.T) {
	sys, handlers := build(2, fd.QoS{TD: time.Millisecond})
	sys.Start()
	sys.Eng.Schedule(0, func() { sys.Proc(0).Send(1, "before") })
	sys.CrashAt(1, sim.Time(0).Add(time.Millisecond)) // crash while msg in flight
	sys.Eng.Schedule(sim.Time(0).Add(10*time.Millisecond), func() {
		sys.Proc(0).Send(1, "after")
	})
	sys.Eng.Run()
	if handlers[1].count("msg") != 0 {
		t.Fatalf("crashed process handled %d messages", handlers[1].count("msg"))
	}
}

func TestCrashedProcessTimersDropped(t *testing.T) {
	sys, _ := build(1, fd.QoS{})
	sys.Start()
	fired := false
	sys.Eng.Schedule(0, func() {
		sys.Proc(0).After(5*time.Millisecond, func() { fired = true })
	})
	sys.CrashAt(0, sim.Time(0).Add(time.Millisecond))
	sys.Eng.Run()
	if fired {
		t.Fatal("timer fired after crash")
	}
}

func TestCrashedProcessCannotSend(t *testing.T) {
	sys, handlers := build(2, fd.QoS{})
	sys.Start()
	sys.Eng.Schedule(0, func() { sys.Crash(0) })
	sys.Eng.Schedule(sim.Time(0).Add(time.Millisecond), func() {
		sys.Proc(0).Send(1, "zombie")
		sys.Proc(0).Multicast("zombie-mc")
	})
	sys.Eng.Run()
	if handlers[1].count("msg") != 0 {
		t.Fatal("crashed process sent messages")
	}
}

func TestFDEdgesReachHandlers(t *testing.T) {
	sys, handlers := build(3, fd.QoS{TD: 5 * time.Millisecond})
	sys.Start()
	sys.CrashAt(2, sim.Time(0).Add(10*time.Millisecond))
	sys.Eng.RunUntil(sim.Time(0).Add(time.Second))
	for p := 0; p < 2; p++ {
		if handlers[p].count("suspect") != 1 {
			t.Fatalf("p%d suspect edges = %d, want 1", p, handlers[p].count("suspect"))
		}
		// Verify the suspicion is also queryable through the runtime.
		if !sys.Proc(PID(p)).Suspects(2) {
			t.Fatalf("p%d Suspects(2) = false", p)
		}
	}
	if handlers[2].count("suspect") != 0 {
		t.Fatal("crashed process received FD edges")
	}
}

func TestInjectedMistakeEdges(t *testing.T) {
	sys, handlers := build(2, fd.QoS{})
	sys.Start()
	sys.Eng.Schedule(0, func() {
		sys.FDs.InjectMistake(0, 1, 3*time.Millisecond)
	})
	sys.Eng.Run()
	if handlers[0].count("suspect") != 1 || handlers[0].count("trust") != 1 {
		t.Fatalf("p0 edges: suspect=%d trust=%d, want 1/1",
			handlers[0].count("suspect"), handlers[0].count("trust"))
	}
}

func TestPreCrash(t *testing.T) {
	sys, handlers := build(3, fd.QoS{TD: time.Hour})
	sys.PreCrash(2)
	sys.Start()
	if handlers[2].count("init") != 0 {
		t.Fatal("pre-crashed process was initialised")
	}
	if !sys.Proc(0).Suspects(2) || !sys.Proc(1).Suspects(2) {
		t.Fatal("pre-crashed process not suspected from the start")
	}
	if !sys.Proc(2).Crashed() {
		t.Fatal("Crashed() = false for pre-crashed process")
	}
}

func TestRuntimeBasics(t *testing.T) {
	sys, _ := build(4, fd.QoS{})
	p := sys.Proc(2)
	if p.ID() != 2 || p.N() != 4 {
		t.Fatalf("ID/N = %d/%d, want 2/4", p.ID(), p.N())
	}
	if p.Rand() == nil {
		t.Fatal("nil process rand")
	}
	if sys.Proc(0).Rand() == sys.Proc(1).Rand() {
		t.Fatal("processes share a random stream")
	}
	if p.Now() != 0 {
		t.Fatalf("Now() = %v at start", p.Now())
	}
}

func TestSetHandlerAfterStartPanics(t *testing.T) {
	sys, _ := build(1, fd.QoS{})
	sys.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("SetHandler after Start did not panic")
		}
	}()
	sys.SetHandler(0, &testHandler{})
}

func TestMsgIDOrdering(t *testing.T) {
	a := MsgID{Origin: 0, Seq: 5}
	b := MsgID{Origin: 1, Seq: 1}
	c := MsgID{Origin: 1, Seq: 2}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("MsgID ordering broken")
	}
	if a.Less(a) {
		t.Fatal("MsgID Less not strict")
	}
	if a.String() != "0:5" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestSortMsgIDs(t *testing.T) {
	ids := []MsgID{{2, 1}, {0, 9}, {1, 3}, {0, 2}, {1, 1}}
	SortMsgIDs(ids)
	want := []MsgID{{0, 2}, {0, 9}, {1, 1}, {1, 3}, {2, 1}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
	SortMsgIDs(nil) // must not panic
}

func TestPingPongOverRuntime(t *testing.T) {
	// Message-driven interaction: p0 sends "ping", p1 replies "pong",
	// verifying handler reentrancy through the event queue.
	sys, handlers := build(2, fd.QoS{})
	handlers[1].onMsg = func(from PID, payload any) {
		if payload == "ping" {
			sys.Proc(1).Send(from, "pong")
		}
	}
	sys.Start()
	sys.Eng.Schedule(0, func() { sys.Proc(0).Send(1, "ping") })
	sys.Eng.Run()
	var gotPong bool
	for _, e := range handlers[0].events {
		if e.payload == "pong" {
			gotPong = true
			// ping: cpu0 0→1, wire 1→2, cpu1 2→3; pong: 3→4, 4→5, 5→6.
			if e.at != sim.Time(0).Add(6*time.Millisecond) {
				t.Fatalf("pong at %v, want 6ms", e.at)
			}
		}
	}
	if !gotPong {
		t.Fatal("no pong received")
	}
}
