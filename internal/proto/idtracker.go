package proto

// IDTracker is a duplicate-suppression set for MsgIDs with O(1) steady-state
// memory: per-origin sequence numbers are absorbed into a contiguous
// watermark as they complete, and only out-of-order IDs occupy the sparse
// overflow set. Message sequence numbers start at 1.
//
// The zero value is not usable; create trackers with NewIDTracker.
type IDTracker struct {
	water  map[PID]uint64
	sparse map[MsgID]struct{}
}

// NewIDTracker returns an empty tracker.
func NewIDTracker() *IDTracker {
	return &IDTracker{
		water:  make(map[PID]uint64),
		sparse: make(map[MsgID]struct{}),
	}
}

// Seen reports whether id was added before.
func (t *IDTracker) Seen(id MsgID) bool {
	if id.Seq <= t.water[id.Origin] {
		return true
	}
	_, ok := t.sparse[id.Origin.pair(id.Seq)]
	return ok
}

// Add inserts id and reports whether it was newly added (false on
// duplicates).
func (t *IDTracker) Add(id MsgID) bool {
	if t.Seen(id) {
		return false
	}
	w := t.water[id.Origin]
	if id.Seq == w+1 {
		w++
		// Absorb any sparse successors into the watermark.
		for {
			next := id.Origin.pair(w + 1)
			if _, ok := t.sparse[next]; !ok {
				break
			}
			delete(t.sparse, next)
			w++
		}
		t.water[id.Origin] = w
		return true
	}
	t.sparse[id.Origin.pair(id.Seq)] = struct{}{}
	return true
}

// SparseLen returns the number of out-of-order IDs currently held, for
// memory diagnostics in tests.
func (t *IDTracker) SparseLen() int { return len(t.sparse) }

// TrackerSnapshot is a copied, point-in-time view of an IDTracker,
// shippable to another process: the full-snapshot fallback of the FD
// catch-up protocol hands one over when the decision log no longer
// covers a straggler's gap. Sparse is in canonical MsgID order so the
// snapshot itself is deterministic.
type TrackerSnapshot struct {
	Water  map[PID]uint64
	Sparse []MsgID
}

// Snapshot copies the tracker's current state. The copy shares nothing
// with the tracker and never changes afterwards.
func (t *IDTracker) Snapshot() *TrackerSnapshot {
	s := &TrackerSnapshot{
		Water:  make(map[PID]uint64, len(t.water)),
		Sparse: make([]MsgID, 0, len(t.sparse)),
	}
	for p, w := range t.water {
		s.Water[p] = w
	}
	for id := range t.sparse {
		s.Sparse = append(s.Sparse, id)
	}
	SortMsgIDs(s.Sparse)
	return s
}

// Merge folds a snapshot into the tracker: afterwards every ID the
// snapshot covered reports Seen. Watermarks advance monotonically (a
// merge never forgets local state) and sparse entries the new watermarks
// cover are dropped.
func (t *IDTracker) Merge(s *TrackerSnapshot) {
	for p, w := range s.Water {
		if w <= t.water[p] {
			continue
		}
		t.water[p] = w
		// Absorb sparse successors that have become contiguous.
		for {
			next := p.pair(t.water[p] + 1)
			if _, ok := t.sparse[next]; !ok {
				break
			}
			delete(t.sparse, next)
			t.water[p]++
		}
	}
	for id := range t.sparse {
		if id.Seq <= t.water[id.Origin] {
			delete(t.sparse, id)
		}
	}
	for _, id := range s.Sparse {
		t.Add(id)
	}
}

// pair builds a MsgID; a tiny helper keeping call sites terse.
func (p PID) pair(seq uint64) MsgID { return MsgID{Origin: p, Seq: seq} }
