package proto

// IDTracker is a duplicate-suppression set for MsgIDs with O(1) steady-state
// memory: per-origin sequence numbers are absorbed into a contiguous
// watermark as they complete, and only out-of-order IDs occupy the sparse
// overflow set. Message sequence numbers start at 1.
//
// The zero value is not usable; create trackers with NewIDTracker.
type IDTracker struct {
	water  map[PID]uint64
	sparse map[MsgID]struct{}
}

// NewIDTracker returns an empty tracker.
func NewIDTracker() *IDTracker {
	return &IDTracker{
		water:  make(map[PID]uint64),
		sparse: make(map[MsgID]struct{}),
	}
}

// Seen reports whether id was added before.
func (t *IDTracker) Seen(id MsgID) bool {
	if id.Seq <= t.water[id.Origin] {
		return true
	}
	_, ok := t.sparse[id.Origin.pair(id.Seq)]
	return ok
}

// Add inserts id and reports whether it was newly added (false on
// duplicates).
func (t *IDTracker) Add(id MsgID) bool {
	if t.Seen(id) {
		return false
	}
	w := t.water[id.Origin]
	if id.Seq == w+1 {
		w++
		// Absorb any sparse successors into the watermark.
		for {
			next := id.Origin.pair(w + 1)
			if _, ok := t.sparse[next]; !ok {
				break
			}
			delete(t.sparse, next)
			w++
		}
		t.water[id.Origin] = w
		return true
	}
	t.sparse[id.Origin.pair(id.Seq)] = struct{}{}
	return true
}

// SparseLen returns the number of out-of-order IDs currently held, for
// memory diagnostics in tests.
func (t *IDTracker) SparseLen() int { return len(t.sparse) }

// pair builds a MsgID; a tiny helper keeping call sites terse.
func (p PID) pair(seq uint64) MsgID { return MsgID{Origin: p, Seq: seq} }
