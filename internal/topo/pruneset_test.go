package topo

import "testing"

// On a ring, pruning to members on one side cuts the whole other branch:
// a set multicast only occupies the wires that lead to members.
func TestPruneSetRingCutsDeadBranch(t *testing.T) {
	rt := Ring(5).Routing()
	sr := rt.PruneSet([]int{0, 1, 2})
	if sr.Reach[0] != 2 {
		t.Fatalf("Reach[0] = %d, want 2 members", sr.Reach[0])
	}
	// Origin 0 keeps only the clockwise branch (0→1→2); the branch
	// through 4 reaches no member and must be gone.
	for _, g := range sr.Tree[0][0] {
		for _, v := range g.Dsts {
			if v == 4 {
				t.Fatalf("Tree[0][0] still targets 4: %+v", sr.Tree[0][0])
			}
		}
	}
	if sr.Sub[0][1] != 2 || sr.Sub[0][2] != 1 || sr.Sub[0][4] != 0 {
		t.Fatalf("Sub[0] = %v, want 2 behind 1, 1 behind 2, 0 behind 4", sr.Sub[0])
	}
}

// A non-member origin still multicasts to the set: its Reach counts all
// members, and a non-member relay on the path keeps its forwarding entry
// even though it is not itself counted.
func TestPruneSetNonMemberOriginAndRelay(t *testing.T) {
	rt := Ring(5).Routing()
	sr := rt.PruneSet([]int{0, 2})
	if sr.Reach[4] != 2 {
		t.Fatalf("Reach[4] = %d, want both members", sr.Reach[4])
	}
	// From 4, member 2 is reached through non-member 3: 3 must keep a
	// transmit group targeting 2 with one member behind it.
	if sr.Sub[4][3] != 1 {
		t.Fatalf("Sub[4][3] = %d, want 1 (member 2 behind relay 3)", sr.Sub[4][3])
	}
	found := false
	for _, g := range sr.Tree[4][3] {
		for _, v := range g.Dsts {
			if v == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("relay 3 lost its forwarding entry to member 2: %+v", sr.Tree[4][3])
	}
}

// On a full mesh everything is a direct child, so pruning reduces to
// filtering the destination list.
func TestPruneSetFullMesh(t *testing.T) {
	rt := FullMesh(6).Routing()
	sr := rt.PruneSet([]int{1, 3, 5})
	if sr.Reach[1] != 2 || sr.Reach[0] != 3 {
		t.Fatalf("Reach = %v, want 2 from member 1, 3 from non-member 0", sr.Reach)
	}
	var kept []int32
	for _, g := range sr.Tree[0][0] {
		kept = append(kept, g.Dsts...)
	}
	if len(kept) != 3 || kept[0] != 1 || kept[1] != 3 || kept[2] != 5 {
		t.Fatalf("pruned mesh targets = %v, want [1 3 5]", kept)
	}
}

func TestPruneSetPanicsOnBadMembers(t *testing.T) {
	rt := FullMesh(3).Routing()
	for _, bad := range [][]int{{3}, {-1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PruneSet(%v) did not panic", bad)
				}
			}()
			rt.PruneSet(bad)
		}()
	}
}
