package topo

import "fmt"

// Spec is the JSON-friendly image of a Topology, embedded in trace
// headers so recorded replications replay on the exact graph they ran
// on. Generated topologies serialise as their generator call — compact
// and reconstruction-exact even at thousands of processes — while
// hand-built graphs fall back to a full wire/edge dump. Durations are
// nanoseconds (time.Duration's integer image).
type Spec struct {
	// Gen names the generator: "fullmesh", "star", "ring", "onewayring",
	// "clique" or "geo". Empty for hand-built topologies, which carry
	// Wires/Edges.
	Gen string `json:"gen,omitempty"`
	N   int    `json:"n"`
	// Geo parameters, set when Gen is "geo".
	Sites   int   `json:"sites,omitempty"`
	PerSite int   `json:"perSite,omitempty"`
	LAN     *Wire `json:"lan,omitempty"`
	WAN     *Wire `json:"wan,omitempty"`
	// Raw graph, set when Gen is empty.
	Name   string   `json:"name,omitempty"`
	Wires  []Wire   `json:"wires,omitempty"`
	Edges  [][3]int `json:"edges,omitempty"`
	Groups [][]int  `json:"groups,omitempty"`
}

// genInfo remembers the generator call that built a Topology.
type genInfo struct {
	kind           string
	sites, perSite int
	lan, wan       Wire
}

// Spec returns the topology's serialisable image.
func (t *Topology) Spec() Spec {
	if g := t.gen; g != nil {
		s := Spec{Gen: g.kind, N: t.N}
		if g.kind == "geo" {
			s.Sites, s.PerSite = g.sites, g.perSite
			if g.lan != (Wire{}) {
				lan := g.lan
				s.LAN = &lan
			}
			if g.wan != (Wire{}) {
				wan := g.wan
				s.WAN = &wan
			}
		}
		return s
	}
	s := Spec{N: t.N, Name: t.Name, Wires: t.Wires, Groups: t.Groups}
	s.Edges = make([][3]int, len(t.Edges))
	for i, e := range t.Edges {
		s.Edges[i] = [3]int{e.From, e.To, e.Wire}
	}
	return s
}

// FromSpec rebuilds the Topology a Spec describes. Generated specs go
// back through their generator, so the result is structurally identical
// to the original; raw specs rebuild the graph verbatim. Unknown
// generators are an error — replaying a trace from a newer writer must
// fail loudly.
func FromSpec(s Spec) (*Topology, error) {
	switch s.Gen {
	case "":
	case "fullmesh":
		return FullMesh(s.N), nil
	case "star":
		return Star(s.N), nil
	case "ring":
		return Ring(s.N), nil
	case "onewayring":
		return OneWayRing(s.N), nil
	case "clique":
		return Clique(s.N), nil
	case "geo":
		cfg := GeoConfig{Sites: s.Sites, PerSite: s.PerSite}
		if s.LAN != nil {
			cfg.LAN = *s.LAN
		}
		if s.WAN != nil {
			cfg.WAN = *s.WAN
		}
		return Geo(cfg), nil
	default:
		return nil, fmt.Errorf("topo: unknown generator %q in spec", s.Gen)
	}
	t := &Topology{Name: s.Name, N: s.N, Wires: s.Wires, Groups: s.Groups}
	t.Edges = make([]Edge, len(s.Edges))
	for i, e := range s.Edges {
		t.Edges[i] = Edge{From: e[0], To: e[1], Wire: e[2]}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
