// Package topo models the connectivity of the simulated network as an
// explicit directed graph, generalising the paper's single shared
// Ethernet to arbitrary segmented topologies.
//
// A Topology is a set of wires and a set of directed edges riding them.
// A wire is one contention domain — the generalisation of the paper's
// single network resource: every message hop crossing the wire occupies
// it for one slot, FIFO, exactly like netmodel's original medium. A wire
// with several edges is a broadcast segment (an Ethernet); a wire with
// one edge per direction is a point-to-point link. Each wire carries its
// own slot time (bandwidth), propagation delay and per-copy loss
// probability, so "LAN segment" and "lossy WAN link" are the same
// mechanism with different numbers.
//
// Named generators build the standard shapes: FullMesh (the paper's
// model — every process pair on one shared wire), Star, Ring, Clique
// (a dedicated wire per pair), and Geo (datacenter cliques joined by
// WAN links with distinct delay and loss). The zero Wire inherits the
// transmission model's defaults, which is what makes FullMesh
// byte-identical to the pre-topology netmodel.
//
// Routing over the graph is precompiled once per topology (see
// Routing): per-hop next-hop tables for unicasts and per-origin
// spanning trees for multicasts, so the per-message hot path does no
// graph work and allocates nothing.
package topo

import (
	"fmt"
	"sync"
	"time"
)

// Wire describes one contention domain of the network.
type Wire struct {
	// Slot is the wire occupancy per message hop — the bandwidth knob.
	// Zero inherits the transmission model's default slot (the paper's
	// 1 ms time unit).
	Slot time.Duration `json:"slot,omitempty"`
	// Delay is the propagation delay of the wire: a hop arrives Delay
	// after its slot ends, while the wire itself is already free for the
	// next message. Zero means arrival at slot end, the paper's model.
	Delay time.Duration `json:"delay,omitempty"`
	// Loss is the probability that a copy crossing the wire is lost at
	// the far end, drawn independently per copy on the network's fault
	// stream. Zero means a perfect wire.
	Loss float64 `json:"loss,omitempty"`
}

// Edge is a directed connection from one process to another riding a
// wire. Two processes may talk directly only if an edge joins them;
// everything else is relayed hop by hop along shortest paths.
type Edge struct {
	From, To int
	Wire     int // index into Topology.Wires
}

// Topology is an immutable connectivity graph over N processes.
// Construct one with a generator or by filling the fields directly,
// then hand it to the network via its Config. The first use compiles
// the routing tables; a Topology must not be mutated afterwards.
type Topology struct {
	// Name identifies the topology in trace headers and figures.
	Name string
	// N is the number of processes.
	N int
	// Wires lists the contention domains.
	Wires []Wire
	// Edges lists the directed connections.
	Edges []Edge
	// Groups optionally records site membership (the datacenters of a
	// Geo topology). It is advisory — routing ignores it — but fault
	// constructors like SiteCut and the trace header use it.
	Groups [][]int

	once    sync.Once
	routing *Routing
	// gen remembers the generator call for compact Spec serialisation.
	gen *genInfo
}

// Validate checks the graph for structural errors: out-of-range or
// self-looped edges, dangling wire indices, duplicate directed edges,
// loss probabilities outside [0,1], negative durations. The network
// panics on an invalid topology at construction — configuration is
// code, not input.
func (t *Topology) Validate() error {
	if t.N < 1 {
		return fmt.Errorf("topo: N = %d, need at least 1", t.N)
	}
	for i, w := range t.Wires {
		switch {
		case w.Slot < 0:
			return fmt.Errorf("topo: wire %d has negative slot %v", i, w.Slot)
		case w.Delay < 0:
			return fmt.Errorf("topo: wire %d has negative delay %v", i, w.Delay)
		case w.Loss < 0 || w.Loss > 1:
			return fmt.Errorf("topo: wire %d loss %v outside [0,1]", i, w.Loss)
		}
	}
	seen := make(map[[2]int]bool, len(t.Edges))
	for _, e := range t.Edges {
		switch {
		case e.From < 0 || e.From >= t.N || e.To < 0 || e.To >= t.N:
			return fmt.Errorf("topo: edge %d->%d out of range for N=%d", e.From, e.To, t.N)
		case e.From == e.To:
			return fmt.Errorf("topo: self edge at process %d", e.From)
		case e.Wire < 0 || e.Wire >= len(t.Wires):
			return fmt.Errorf("topo: edge %d->%d rides wire %d, have %d wires", e.From, e.To, e.Wire, len(t.Wires))
		}
		k := [2]int{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("topo: duplicate edge %d->%d", e.From, e.To)
		}
		seen[k] = true
	}
	for gi, g := range t.Groups {
		for _, p := range g {
			if p < 0 || p >= t.N {
				return fmt.Errorf("topo: group %d contains process %d, want 0..%d", gi, p, t.N-1)
			}
		}
	}
	return nil
}

// FullMesh is the paper's network: every ordered process pair joined
// directly, all hops contending for one shared wire with default slot
// time. It is the model every pre-topology experiment ran on, and the
// network's behaviour on it is bit-identical to that era.
func FullMesh(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("fullmesh-%d", n), N: n, Wires: []Wire{{}},
		gen: &genInfo{kind: "fullmesh"}}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				t.Edges = append(t.Edges, Edge{From: u, To: v, Wire: 0})
			}
		}
	}
	return t
}

// Star joins every process to hub 0 over a dedicated bidirectional
// spoke wire. Traffic between two spokes is relayed through the hub,
// whose CPU becomes the bottleneck — the centralised-sequencer shape.
func Star(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("star-%d", n), N: n, gen: &genInfo{kind: "star"}}
	for i := 1; i < n; i++ {
		w := len(t.Wires)
		t.Wires = append(t.Wires, Wire{})
		t.Edges = append(t.Edges,
			Edge{From: 0, To: i, Wire: w},
			Edge{From: i, To: 0, Wire: w})
	}
	if len(t.Wires) == 0 {
		t.Wires = []Wire{{}}
	}
	return t
}

// Ring joins process i to its neighbours (i±1) mod n, one dedicated
// bidirectional wire per adjacent pair. Multicasts propagate both ways
// around the ring, so latency grows with n while per-wire contention
// stays constant — the opposite trade to FullMesh.
func Ring(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("ring-%d", n), N: n, gen: &genInfo{kind: "ring"}}
	if n == 1 {
		t.Wires = []Wire{{}}
		return t
	}
	pairs := n
	if n == 2 {
		pairs = 1 // a 2-ring's two "sides" are the same pair
	}
	for i := 0; i < pairs; i++ {
		j := (i + 1) % n
		t.Wires = append(t.Wires, Wire{})
		t.Edges = append(t.Edges,
			Edge{From: i, To: j, Wire: i},
			Edge{From: j, To: i, Wire: i})
	}
	return t
}

// OneWayRing joins process i to its successor (i+1) mod n with a
// dedicated unidirectional wire: messages travel one way around the
// ring, so a unicast to the predecessor relays through every other
// process. It is the fully directed topology — each wire has exactly
// one transmitter and one receiver and no process shares a medium with
// any other — which makes it the canonical multi-domain graph for the
// parallel engine: netmodel.ConflictDomains splits it into n conflict
// domains with a lookahead of one wire traversal.
func OneWayRing(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("onewayring-%d", n), N: n, gen: &genInfo{kind: "onewayring"}}
	if n == 1 {
		t.Wires = []Wire{{}}
		return t
	}
	for i := 0; i < n; i++ {
		t.Wires = append(t.Wires, Wire{})
		t.Edges = append(t.Edges, Edge{From: i, To: (i + 1) % n, Wire: i})
	}
	return t
}

// Clique joins every process pair with a dedicated bidirectional wire:
// full direct connectivity like FullMesh, but no shared medium at all —
// the switched-network limit where only CPUs contend.
func Clique(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("clique-%d", n), N: n, gen: &genInfo{kind: "clique"}}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := len(t.Wires)
			t.Wires = append(t.Wires, Wire{})
			t.Edges = append(t.Edges,
				Edge{From: u, To: v, Wire: w},
				Edge{From: v, To: u, Wire: w})
		}
	}
	if len(t.Wires) == 0 {
		t.Wires = []Wire{{}}
	}
	return t
}

// GeoConfig parameterises a geo-replicated topology.
type GeoConfig struct {
	// Sites is the number of datacenters; PerSite the processes in each.
	Sites, PerSite int
	// LAN describes each datacenter's shared segment. The zero Wire is
	// a default-slot, zero-delay, lossless Ethernet.
	LAN Wire
	// WAN describes each inter-datacenter link — typically a longer
	// Delay and a non-zero Loss than the LAN.
	WAN Wire
}

// Geo builds a geo-replicated topology: each site is a clique of
// processes sharing one LAN wire (an Ethernet per datacenter), and
// every site pair is joined by a dedicated WAN wire between the two
// sites' gateways (each site's lowest-numbered process). Cross-site
// traffic is relayed LAN → gateway → WAN → gateway → LAN. Groups
// records the site membership, which SiteCut and FaultPlan partitions
// act on.
func Geo(cfg GeoConfig) *Topology {
	if cfg.Sites < 1 || cfg.PerSite < 1 {
		panic(fmt.Sprintf("topo: Geo needs at least 1 site of 1 process, got %d x %d", cfg.Sites, cfg.PerSite))
	}
	n := cfg.Sites * cfg.PerSite
	t := &Topology{Name: fmt.Sprintf("geo-%dx%d", cfg.Sites, cfg.PerSite), N: n,
		gen: &genInfo{kind: "geo", sites: cfg.Sites, perSite: cfg.PerSite, lan: cfg.LAN, wan: cfg.WAN}}
	member := func(site, i int) int { return site*cfg.PerSite + i }
	for s := 0; s < cfg.Sites; s++ {
		group := make([]int, cfg.PerSite)
		for i := range group {
			group[i] = member(s, i)
		}
		t.Groups = append(t.Groups, group)
		if cfg.PerSite > 1 {
			w := len(t.Wires)
			t.Wires = append(t.Wires, cfg.LAN)
			for _, u := range group {
				for _, v := range group {
					if u != v {
						t.Edges = append(t.Edges, Edge{From: u, To: v, Wire: w})
					}
				}
			}
		}
	}
	for a := 0; a < cfg.Sites; a++ {
		for b := a + 1; b < cfg.Sites; b++ {
			w := len(t.Wires)
			t.Wires = append(t.Wires, cfg.WAN)
			ga, gb := member(a, 0), member(b, 0)
			t.Edges = append(t.Edges,
				Edge{From: ga, To: gb, Wire: w},
				Edge{From: gb, To: ga, Wire: w})
		}
	}
	if len(t.Wires) == 0 {
		t.Wires = []Wire{{}}
	}
	return t
}

// SiteCut returns the two process groups induced by cutting the listed
// sites away from the rest — the partition-along-the-WAN-cut, ready for
// the network's SetPartition or a FaultPlan partition event. It panics
// if the topology has no Groups or a site index is out of range.
func (t *Topology) SiteCut(sites ...int) [][]int {
	if len(t.Groups) == 0 {
		panic("topo: SiteCut on a topology without site groups")
	}
	cut := make(map[int]bool, len(sites))
	for _, s := range sites {
		if s < 0 || s >= len(t.Groups) {
			panic(fmt.Sprintf("topo: SiteCut site %d out of range, have %d sites", s, len(t.Groups)))
		}
		cut[s] = true
	}
	var in, out []int
	for s, g := range t.Groups {
		if cut[s] {
			in = append(in, g...)
		} else {
			out = append(out, g...)
		}
	}
	return [][]int{in, out}
}
