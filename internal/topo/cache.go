package topo

import "sync"

// meshCache shares routing-compiled full meshes across simulations: the
// default topology is rebuilt for every replication of every experiment,
// and a FullMesh plus its routing tables is identical for a given n.
// Topologies are immutable once compiled, so sharing is safe.
var meshCache sync.Map // int -> *Topology

// SharedFullMesh returns a cached, routing-compiled FullMesh(n). Callers
// must treat the result as read-only — it is shared process-wide.
func SharedFullMesh(n int) *Topology {
	if v, ok := meshCache.Load(n); ok {
		return v.(*Topology)
	}
	t := FullMesh(n)
	t.Routing()
	v, _ := meshCache.LoadOrStore(n, t)
	return v.(*Topology)
}
