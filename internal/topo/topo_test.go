package topo

import (
	"testing"
	"time"
)

func TestGeneratorsValidateAndCompile(t *testing.T) {
	for _, tp := range []*Topology{
		FullMesh(1), FullMesh(2), FullMesh(7),
		Star(1), Star(2), Star(8),
		Ring(1), Ring(2), Ring(3), Ring(8),
		Clique(1), Clique(2), Clique(6),
		Geo(GeoConfig{Sites: 3, PerSite: 3}),
		Geo(GeoConfig{Sites: 2, PerSite: 1, WAN: Wire{Delay: 5 * time.Millisecond}}),
	} {
		if err := tp.Validate(); err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		rt := tp.Routing()
		if rt.N != tp.N {
			t.Fatalf("%s: routing N=%d, topology N=%d", tp.Name, rt.N, tp.N)
		}
	}
}

// Every generator builds a strongly connected graph, so each origin
// reaches everyone, subtree sizes sum to n, and following Next from any
// node converges on the destination.
func TestRoutingReachAndNextConverge(t *testing.T) {
	for _, tp := range []*Topology{
		FullMesh(5), Star(6), Ring(9), Clique(5),
		Geo(GeoConfig{Sites: 3, PerSite: 4}),
	} {
		rt := tp.Routing()
		n := tp.N
		for o := 0; o < n; o++ {
			if got := int(rt.Reach[o]); got != n-1 {
				t.Fatalf("%s: Reach[%d]=%d, want %d", tp.Name, o, got, n-1)
			}
			if int(rt.Sub[o][o]) != n {
				t.Fatalf("%s: Sub[%d][%d]=%d, want %d", tp.Name, o, o, rt.Sub[o][o], n)
			}
			total := 0
			for gi := range rt.Tree[o] {
				for _, g := range rt.Tree[o][gi] {
					total += len(g.Dsts)
				}
			}
			if total != n-1 {
				t.Fatalf("%s: tree of %d spans %d nodes, want %d", tp.Name, o, total, n-1)
			}
			for v := 0; v < n; v++ {
				if v == o {
					continue
				}
				node, hops := o, 0
				for node != v {
					next := int(rt.Next[node][v])
					if next < 0 {
						t.Fatalf("%s: no route %d->%d at hop %d", tp.Name, o, v, node)
					}
					if rt.HopWire[node][v] < 0 {
						t.Fatalf("%s: route %d->%d at %d has no wire", tp.Name, o, v, node)
					}
					node = next
					if hops++; hops > n {
						t.Fatalf("%s: route %d->%d does not converge", tp.Name, o, v)
					}
				}
			}
		}
	}
}

// FullMesh and Clique take the complete-graph fast path; its tables must
// agree with what the generic BFS would produce: direct single hops and
// one-level trees.
func TestCompleteGraphTables(t *testing.T) {
	mesh := FullMesh(4).Routing()
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u == v {
				continue
			}
			if int(mesh.Next[u][v]) != v || mesh.HopWire[u][v] != 0 {
				t.Fatalf("mesh Next[%d][%d]=%d wire %d, want direct on wire 0", u, v, mesh.Next[u][v], mesh.HopWire[u][v])
			}
		}
		tree := mesh.Tree[u][u]
		if len(tree) != 1 || len(tree[0].Dsts) != 3 {
			t.Fatalf("mesh tree at %d: %+v, want one 3-destination segment", u, tree)
		}
	}
	cl := Clique(4).Routing()
	for u := 0; u < 4; u++ {
		tree := cl.Tree[u][u]
		if len(tree) != 3 {
			t.Fatalf("clique tree at %d has %d segments, want 3 (one wire per pair)", u, len(tree))
		}
		for _, g := range tree {
			if len(g.Dsts) != 1 {
				t.Fatalf("clique segment %+v, want single destination", g)
			}
		}
	}
}

// A ring's multicast tree from any origin runs both ways around, and
// unicasts to the far side take the shorter arc.
func TestRingRouting(t *testing.T) {
	rt := Ring(6).Routing()
	if got := int(rt.Next[0][3]); got != 1 && got != 5 {
		t.Fatalf("ring Next[0][3]=%d, want a neighbour", got)
	}
	if got := int(rt.Next[0][2]); got != 1 {
		t.Fatalf("ring Next[0][2]=%d, want 1 (two hops clockwise)", got)
	}
	if got := int(rt.Next[0][4]); got != 5 {
		t.Fatalf("ring Next[0][4]=%d, want 5 (two hops counter-clockwise)", got)
	}
	// Origin 0 transmits on both its wires; each neighbour relays onward.
	if got := len(rt.Tree[0][0]); got != 2 {
		t.Fatalf("ring tree at origin has %d segments, want 2", got)
	}
	if len(rt.Tree[0][1]) == 0 || len(rt.Tree[0][5]) == 0 {
		t.Fatal("ring neighbours of the origin must relay the multicast onward")
	}
}

// Geo routes cross-site traffic through the two gateways, and SiteCut
// splits along site membership.
func TestGeoRoutingAndSiteCut(t *testing.T) {
	g := Geo(GeoConfig{Sites: 3, PerSite: 3, WAN: Wire{Delay: 10 * time.Millisecond}})
	rt := g.Routing()
	// p1 (site 0) to p4 (site 1): via gateway 0, then gateway 3.
	if got := int(rt.Next[1][4]); got != 0 {
		t.Fatalf("geo Next[1][4]=%d, want gateway 0", got)
	}
	if got := int(rt.Next[0][4]); got != 3 {
		t.Fatalf("geo Next[0][4]=%d, want remote gateway 3", got)
	}
	if got := int(rt.Next[3][4]); got != 4 {
		t.Fatalf("geo Next[3][4]=%d, want direct LAN hop", got)
	}
	// The WAN hop's wire must carry the configured delay.
	w := rt.HopWire[0][4]
	if g.Wires[w].Delay != 10*time.Millisecond {
		t.Fatalf("geo WAN hop rides wire %d with delay %v, want 10ms", w, g.Wires[w].Delay)
	}
	cut := g.SiteCut(0)
	if len(cut) != 2 || len(cut[0]) != 3 || len(cut[1]) != 6 {
		t.Fatalf("SiteCut(0) = %v, want site 0 vs the rest", cut)
	}
	// A multicast from site 0 loses sites 1 and 2 if gateway 0's WAN
	// copies die: the subtree behind each remote gateway is its site.
	if got := int(rt.Sub[1][3]); got != 3 {
		t.Fatalf("geo Sub[1][gateway 3]=%d, want 3 (the whole site)", got)
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	bad := []*Topology{
		{Name: "n0", N: 0},
		{Name: "range", N: 2, Wires: []Wire{{}}, Edges: []Edge{{From: 0, To: 2, Wire: 0}}},
		{Name: "self", N: 2, Wires: []Wire{{}}, Edges: []Edge{{From: 1, To: 1, Wire: 0}}},
		{Name: "wire", N: 2, Wires: []Wire{{}}, Edges: []Edge{{From: 0, To: 1, Wire: 1}}},
		{Name: "dup", N: 2, Wires: []Wire{{}}, Edges: []Edge{{From: 0, To: 1, Wire: 0}, {From: 0, To: 1, Wire: 0}}},
		{Name: "loss", N: 2, Wires: []Wire{{Loss: 1.5}}, Edges: []Edge{{From: 0, To: 1, Wire: 0}}},
		{Name: "slot", N: 2, Wires: []Wire{{Slot: -time.Millisecond}}, Edges: []Edge{{From: 0, To: 1, Wire: 0}}},
		{Name: "group", N: 2, Wires: []Wire{{}}, Groups: [][]int{{0, 7}}},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted an invalid topology", tp.Name)
		}
	}
}

// A disconnected graph compiles: unreachable pairs are marked, Reach
// counts only the component.
func TestDisconnectedGraph(t *testing.T) {
	tp := &Topology{
		Name: "split", N: 4, Wires: []Wire{{}, {}},
		Edges: []Edge{
			{From: 0, To: 1, Wire: 0}, {From: 1, To: 0, Wire: 0},
			{From: 2, To: 3, Wire: 1}, {From: 3, To: 2, Wire: 1},
		},
	}
	rt := tp.Routing()
	if rt.Next[0][2] != -1 {
		t.Fatalf("Next[0][2]=%d, want -1 (unreachable)", rt.Next[0][2])
	}
	if rt.Reach[0] != 1 || rt.Reach[2] != 1 {
		t.Fatalf("Reach = %v, want 1 per node", rt.Reach)
	}
}
