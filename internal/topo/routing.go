package topo

import (
	"fmt"
	"sort"
)

// TxGroup is one transmission a node performs when forwarding a
// multicast: a single wire occupancy that reaches Dsts (the node's tree
// children discovered over that wire). Dsts are ascending.
type TxGroup struct {
	Wire int32
	Dsts []int32
}

// Routing holds the precompiled forwarding state of a Topology. All
// tables are built once (deterministically — ties broken by ascending
// wire then destination) so the network's per-message hot path is pure
// table lookup and allocates nothing.
//
// Storage is O(N²) int32 entries plus the trees — the one-time price
// for O(hops) per message instead of O(N) scans; at n = 4096 the tables
// are on the order of a few hundred MB, so topologies beyond that
// should shard the simulation instead.
type Routing struct {
	N int

	// Next[u][v] is the node u forwards to when relaying a unicast
	// bound for v; Next[u][u] = u, and -1 marks v unreachable from u.
	// Hops follow each relay's own shortest-path tree, so path length
	// strictly decreases and routing always terminates.
	Next [][]int32
	// HopWire[u][v] is the wire of the hop u -> Next[u][v]; -1 when
	// unreachable or u == v.
	HopWire [][]int32
	// Tree[o][u] lists the transmissions node u performs when a
	// multicast originated by o passes through it: the children of u in
	// o's shortest-path tree, grouped by discovering wire. Nil for
	// leaves.
	Tree [][][]TxGroup
	// Sub[o][v] is the size of v's subtree in o's tree including v
	// itself: the number of copies that die if v's copy is lost.
	Sub [][]int32
	// Reach[o] counts the nodes reachable from o, excluding o — the
	// number of remote copies a multicast from o creates.
	Reach []int32
}

// Routing compiles (once) and returns the topology's routing tables,
// panicking on an invalid topology.
func (t *Topology) Routing() *Routing {
	t.once.Do(func() {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		t.routing = compile(t)
	})
	return t.routing
}

// adj is a node's outgoing edges sorted by (wire, dst) — the canonical
// order every deterministic choice below derives from.
type adjEdge struct{ wire, dst int32 }

func compile(t *Topology) *Routing {
	n := t.N
	adjs := make([][]adjEdge, n)
	for _, e := range t.Edges {
		adjs[e.From] = append(adjs[e.From], adjEdge{wire: int32(e.Wire), dst: int32(e.To)})
	}
	complete := true
	for u := 0; u < n; u++ {
		a := adjs[u]
		sort.Slice(a, func(i, j int) bool {
			if a[i].wire != a[j].wire {
				return a[i].wire < a[j].wire
			}
			return a[i].dst < a[j].dst
		})
		if len(a) != n-1 {
			complete = false
		}
	}

	rt := &Routing{
		N:       n,
		Next:    newMatrix(n),
		HopWire: newMatrix(n),
		Tree:    make([][][]TxGroup, n),
		Sub:     make([][]int32, n),
		Reach:   make([]int32, n),
	}
	if complete {
		compileComplete(rt, adjs)
		return rt
	}
	parent := make([]int32, n)
	parentWire := make([]int32, n)
	order := make([]int32, 0, n)
	for o := 0; o < n; o++ {
		compileOrigin(rt, adjs, int32(o), parent, parentWire, order[:0])
	}
	return rt
}

// newMatrix allocates an n×n int32 matrix filled with -1, backed by one
// contiguous slab.
func newMatrix(n int) [][]int32 {
	slab := make([]int32, n*n)
	for i := range slab {
		slab[i] = -1
	}
	m := make([][]int32, n)
	for i := range m {
		m[i] = slab[i*n : (i+1)*n]
	}
	return m
}

// compileComplete fills the tables for a graph where every node is
// directly connected to every other — FullMesh and Clique — skipping
// the per-origin searches: every route is the single direct hop and
// every tree is one level deep.
func compileComplete(rt *Routing, adjs [][]adjEdge) {
	n := rt.N
	subSlab := make([]int32, n*n)
	for i := range subSlab {
		subSlab[i] = 1
	}
	for o := 0; o < n; o++ {
		rt.Next[o][o] = int32(o)
		for _, e := range adjs[o] {
			rt.Next[o][e.dst] = e.dst
			rt.HopWire[o][e.dst] = e.wire
		}
		rt.Tree[o] = make([][]TxGroup, n)
		rt.Tree[o][o] = groupByWire(adjs[o])
		rt.Sub[o] = subSlab[o*n : (o+1)*n]
		rt.Sub[o][o] = int32(n)
		rt.Reach[o] = int32(n - 1)
	}
}

// groupByWire folds a sorted adjacency into transmit groups, one per
// distinct wire.
func groupByWire(a []adjEdge) []TxGroup {
	var groups []TxGroup
	for _, e := range a {
		if len(groups) == 0 || groups[len(groups)-1].Wire != e.wire {
			groups = append(groups, TxGroup{Wire: e.wire})
		}
		g := &groups[len(groups)-1]
		g.Dsts = append(g.Dsts, e.dst)
	}
	return groups
}

// compileOrigin runs one deterministic BFS from o and derives o's rows
// of every table. The scratch slices are caller-owned to keep the per-
// origin cost allocation-light.
func compileOrigin(rt *Routing, adjs [][]adjEdge, o int32, parent, parentWire []int32, order []int32) {
	n := rt.N
	for i := range parent {
		parent[i] = -1
	}
	parent[o] = o
	order = append(order, o)
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, e := range adjs[u] {
			if parent[e.dst] < 0 {
				parent[e.dst] = u
				parentWire[e.dst] = e.wire
				order = append(order, e.dst)
			}
		}
	}

	next, hop := rt.Next[o], rt.HopWire[o]
	next[o] = o
	// BFS order guarantees a node's parent is resolved before the node,
	// so first-hop tables build incrementally in one pass.
	for _, v := range order[1:] {
		if parent[v] == o {
			next[v] = v
			hop[v] = parentWire[v]
		} else {
			next[v] = next[parent[v]]
			hop[v] = hop[parent[v]]
		}
	}

	tree := make([][]TxGroup, n)
	// Children appear in order grouped by parent discovery sequence;
	// within one parent they were discovered in (wire, dst) order, so a
	// linear fold yields wire-ascending groups with ascending dsts.
	for _, v := range order[1:] {
		u := parent[v]
		if len(tree[u]) == 0 || tree[u][len(tree[u])-1].Wire != parentWire[v] {
			tree[u] = append(tree[u], TxGroup{Wire: parentWire[v]})
		}
		g := &tree[u][len(tree[u])-1]
		g.Dsts = append(g.Dsts, v)
	}
	rt.Tree[o] = tree

	sub := make([]int32, n)
	for _, v := range order {
		sub[v] = 1
	}
	for i := len(order) - 1; i > 0; i-- {
		v := order[i]
		sub[parent[v]] += sub[v]
	}
	rt.Sub[o] = sub
	rt.Reach[o] = int32(len(order) - 1)
}

// SetRouting holds the pruned multicast tables for one destination set:
// the full topology's per-origin spanning trees with every branch that
// reaches no set member cut off. A multicast addressed to the set rides
// these tables — non-member relays still forward (the physical network
// carries the copy) but only members count as destinations.
type SetRouting struct {
	// Member[v] reports set membership.
	Member []bool
	// Tree[o][u] is the pruned transmit-group table: only children whose
	// subtree contains at least one member survive, in the full tree's
	// (wire, dst) order.
	Tree [][][]TxGroup
	// Sub[o][v] counts the set members in v's subtree of o's tree,
	// including v itself when it is a member: the member copies that die
	// if v's copy is lost.
	Sub [][]int32
	// Reach[o] counts the members reachable from o, excluding o — the
	// number of remote copies a set multicast from o creates.
	Reach []int32
}

// PruneSet derives the pruned multicast tables for a destination set
// from the compiled full trees. It panics on out-of-range or duplicated
// members — the set is code, not input.
func (r *Routing) PruneSet(members []int) *SetRouting {
	n := r.N
	member := make([]bool, n)
	for _, p := range members {
		if p < 0 || p >= n {
			panic(fmt.Sprintf("topo: set member %d out of range 0..%d", p, n-1))
		}
		if member[p] {
			panic(fmt.Sprintf("topo: set member %d listed twice", p))
		}
		member[p] = true
	}
	sr := &SetRouting{
		Member: member,
		Tree:   make([][][]TxGroup, n),
		Sub:    make([][]int32, n),
		Reach:  make([]int32, n),
	}
	subSlab := make([]int32, n*n)
	parent := make([]int32, n)
	order := make([]int32, 0, n)
	for o := 0; o < n; o++ {
		sub := subSlab[o*n : (o+1)*n]
		// Recover o's tree structure (parents and a top-down order) by
		// walking the compiled full tree from o.
		for i := range parent {
			parent[i] = -1
		}
		parent[o] = int32(o)
		order = append(order[:0], int32(o))
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, g := range r.Tree[o][u] {
				for _, v := range g.Dsts {
					parent[v] = u
					order = append(order, v)
				}
			}
		}
		// Member counts bottom-up over the reverse of the top-down order.
		for _, v := range order {
			if member[v] {
				sub[v] = 1
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			sub[parent[v]] += sub[v]
		}
		sr.Sub[o] = sub
		sr.Reach[o] = sub[o]
		if member[o] {
			sr.Reach[o]--
		}
		// Pruned transmit groups: keep children whose subtree holds a
		// member, preserving the full tree's group and destination order.
		tree := make([][]TxGroup, n)
		for _, u := range order {
			for _, g := range r.Tree[o][u] {
				var kept []int32
				for _, v := range g.Dsts {
					if sub[v] > 0 {
						kept = append(kept, v)
					}
				}
				if len(kept) > 0 {
					tree[u] = append(tree[u], TxGroup{Wire: g.Wire, Dsts: kept})
				}
			}
		}
		sr.Tree[o] = tree
	}
	return sr
}

// String summarises the topology for headers and diagnostics.
func (t *Topology) String() string {
	return fmt.Sprintf("%s (n=%d, %d wires, %d edges)", t.Name, t.N, len(t.Wires), len(t.Edges))
}
