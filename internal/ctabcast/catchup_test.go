package ctabcast

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// TestLongOutageRecoveryDeliversSuffix is the silent-wedge regression
// guard: a process that recovers after missing more than InstanceWindow
// decisions must still deliver the full suffix it missed. Peers have
// garbage-collected the consensus instances it needs, so ordinary
// decision forwarding cannot help — only the decision-log catch-up
// protocol can close the gap.
func TestLongOutageRecoveryDeliversSuffix(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	c.sys.CrashAt(2, at(100))
	// 150 spaced broadcasts while p2 is down — each far enough apart to
	// decide its own consensus instance, so the outage spans well over
	// InstanceWindow (64) decisions.
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	// The scenario is only meaningful if the gap really exceeds the
	// retention window at recovery time.
	c.eng.Schedule(recoverAt.Add(time.Millisecond), func() {
		gap := c.procs[0].NextInstance() - c.procs[2].NextInstance()
		if gap <= uint64(c.procs[0].cfg.InstanceWindow) {
			t.Errorf("outage spanned only %d decisions, want > InstanceWindow (%d)",
				gap, c.procs[0].cfg.InstanceWindow)
		}
	})
	// Post-recovery traffic: the straggler sees live consensus messages
	// tagged with instance numbers far beyond its own frontier — the
	// evidence that it is behind.
	for i := 0; i < 6; i++ {
		c.broadcastAt(proto.PID(i%3), recoverAt.Add(time.Duration(30*(i+1))*time.Millisecond))
	}
	c.run(20 * time.Second)
	c.checkTotalOrder(t)
	// The recovered process must hold the complete sequence: everything
	// decided during the outage plus everything after recovery.
	c.checkAllDelivered(t)
}
