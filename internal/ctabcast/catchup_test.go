package ctabcast

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
)

// TestLongOutageRecoveryDeliversSuffix is the silent-wedge regression
// guard: a process that recovers after missing more than InstanceWindow
// decisions must still deliver the full suffix it missed. Peers have
// garbage-collected the consensus instances it needs, so ordinary
// decision forwarding cannot help — only the decision-log catch-up
// protocol can close the gap.
func TestLongOutageRecoveryDeliversSuffix(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	c.sys.CrashAt(2, at(100))
	// 150 spaced broadcasts while p2 is down — each far enough apart to
	// decide its own consensus instance, so the outage spans well over
	// InstanceWindow (64) decisions.
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	// The scenario is only meaningful if the gap really exceeds the
	// retention window at recovery time.
	c.eng.Schedule(recoverAt.Add(time.Millisecond), func() {
		gap := c.procs[0].NextInstance() - c.procs[2].NextInstance()
		if gap <= uint64(c.procs[0].cfg.InstanceWindow) {
			t.Errorf("outage spanned only %d decisions, want > InstanceWindow (%d)",
				gap, c.procs[0].cfg.InstanceWindow)
		}
	})
	// Post-recovery traffic: the straggler sees live consensus messages
	// tagged with instance numbers far beyond its own frontier — the
	// evidence that it is behind.
	for i := 0; i < 6; i++ {
		c.broadcastAt(proto.PID(i%3), recoverAt.Add(time.Duration(30*(i+1))*time.Millisecond))
	}
	c.run(20 * time.Second)
	c.checkTotalOrder(t)
	// The recovered process must hold the complete sequence: everything
	// decided during the outage plus everything after recovery.
	c.checkAllDelivered(t)
}

// TestIdleSystemRecoveryUnwedges is the idle-wedge regression guard: a
// process that recovers into a *totally quiet* system sees no consensus
// traffic at all, so no lag evidence ever accumulates — neither the
// passive window trigger nor the evidence-gated probe can fire. The
// probe must not disarm forever on "no evidence": after a bounded number
// of idle checks it has to ask a peer directly, because from the
// straggler's seat "nothing to catch up on" and "everyone else is quiet"
// are indistinguishable.
func TestIdleSystemRecoveryUnwedges(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	c.sys.CrashAt(2, at(100))
	// An outage spanning far more than InstanceWindow decisions, exactly
	// like the long-outage scenario — but every broadcast has long
	// drained before the recovery instant, and nothing follows it.
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(4000)
	c.eng.Schedule(recoverAt, func() {
		c.sys.Recover(2, nil)
		// The harness arms the probe on recovery, as the experiment
		// layer's Recover path does.
		c.procs[2].Resume()
	})
	c.run(20 * time.Second)
	c.checkTotalOrder(t)
	// The recovered process must deliver the entire missed suffix even
	// though no post-recovery traffic ever supplied lag evidence.
	c.checkAllDelivered(t)
}

// TestIdleProbeOnCurrentProcessIsBounded: a process that is fully
// current when Resume fires in a quiet system still ends up asking a
// peer (it cannot know it is current), but the exchange must terminate
// on the first reply and send only a bounded handful of requests — no
// periodic polling, no endless retries.
func TestIdleProbeOnCurrentProcessIsBounded(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	for i := 0; i < 20; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(50+15*i)))
	}
	reqs := 0
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind == netmodel.TraceSend {
			if _, ok := ev.Payload.(*catchUpReq); ok {
				reqs++
			}
		}
	})
	// Long after everything drained: Resume a process that missed nothing.
	c.eng.Schedule(at(3000), func() { c.procs[1].Resume() })
	c.run(20 * time.Second)
	if reqs == 0 {
		t.Fatal("idle probe never asked a peer: the idle wedge is back")
	}
	if reqs > 3 {
		t.Fatalf("current process sent %d catch-up requests, want a bounded handful", reqs)
	}
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

// TestCatchUpRetriesAfterResponderCrash exercises the retry path: the
// first catch-up request goes to a peer that has just crashed, so the
// exchange only completes because the retry timer rotates to a live
// responder.
func TestCatchUpRetriesAfterResponderCrash(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	reqTo := make([]int, 3)
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind == netmodel.TraceSend && ev.To >= 0 {
			if _, ok := ev.Payload.(*catchUpReq); ok {
				reqTo[ev.To]++
			}
		}
	})
	c.sys.CrashAt(2, at(100))
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	c.sys.CrashAt(1, at(2500))
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	// The system is otherwise idle after p1's crash, so no passive
	// evidence flows; start the exchange directly, aimed at the freshly
	// crashed p1 — the worst possible first target.
	c.eng.Schedule(recoverAt.Add(time.Millisecond), func() {
		p := c.procs[2]
		p.maxSeen = c.procs[0].NextInstance() - 1
		p.maxSeenFrom = 1
		p.startCatchUp()
	})
	c.run(20 * time.Second)
	if reqTo[1] == 0 {
		t.Fatal("scenario broken: no catch-up request ever went to the crashed responder")
	}
	if reqTo[0] == 0 {
		t.Fatal("retry never rotated to a live responder")
	}
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

// TestTruncatedLogSnapshotFallback forces the full-snapshot handoff: with
// a tiny LogRetain the responders have trimmed the prefix the straggler
// needs, so the reply must carry a tracker snapshot. The straggler
// unwedges — it delivers the retained tail and everything after recovery
// — at the documented price of a delivery gap over the truncated prefix.
func TestTruncatedLogSnapshotFallback(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}, logRetain: 16})
	snapReplies := 0
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind != netmodel.TraceSend {
			return
		}
		if r, ok := ev.Payload.(*catchUpReply); ok && r.Snap != nil {
			snapReplies++
		}
	})
	c.sys.CrashAt(2, at(100))
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	for i := 0; i < 6; i++ {
		c.broadcastAt(proto.PID(i%3), recoverAt.Add(time.Duration(30*(i+1))*time.Millisecond))
	}
	c.run(20 * time.Second)
	if snapReplies == 0 {
		t.Fatal("expected at least one full-snapshot fallback reply")
	}
	p0, p2 := c.ids(0), c.ids(2)
	if len(p2) == 0 {
		t.Fatal("recovered process stayed wedged: delivered nothing")
	}
	if len(p2) >= len(p0) {
		t.Fatalf("expected a truncated prefix at p2: p2 delivered %d, p0 %d", len(p2), len(p0))
	}
	// Everything p2 did deliver is the exact tail of the total order.
	tail := p0[len(p0)-len(p2):]
	for i := range p2 {
		if p2[i] != tail[i] {
			t.Fatalf("suffix mismatch at %d: p2 has %v, total order has %v", i, p2[i], tail[i])
		}
	}
	// No post-recovery message may fall in the gap.
	got := make(map[proto.MsgID]bool, len(p2))
	for _, id := range p2 {
		got[id] = true
	}
	for id, sentAt := range c.sent {
		if sentAt >= recoverAt && !got[id] {
			t.Fatalf("post-recovery message %v never delivered at the recovered process", id)
		}
	}
}

// TestDuplicateCatchUpRepliesHarmless injects an unsolicited, duplicated
// suffix reply: p0 answers a request p2 never sent, twice. The first copy
// catches p2 up; the second must be a no-op — replies are idempotent, so
// nothing is delivered twice and the frontier never rewinds.
func TestDuplicateCatchUpRepliesHarmless(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	c.sys.CrashAt(2, at(100))
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	c.eng.Schedule(recoverAt.Add(5*time.Millisecond), func() {
		c.procs[0].onCatchUpReq(2, c.procs[2].NextInstance())
		c.procs[0].onCatchUpReq(2, c.procs[2].NextInstance())
	})
	for i := 0; i < 6; i++ {
		c.broadcastAt(proto.PID(i%3), recoverAt.Add(time.Duration(30*(i+1))*time.Millisecond))
	}
	c.run(20 * time.Second)
	seen := make(map[proto.MsgID]bool)
	for _, d := range c.deliveries[2] {
		if seen[d.id] {
			t.Fatalf("duplicate delivery of %v at recovered process", d.id)
		}
		seen[d.id] = true
	}
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

// TestCatchUpRacesNewDecisions keeps new broadcasts landing throughout
// the catch-up exchange: every suffix reply arrives slightly stale
// because decisions kept happening while it travelled, so the requester
// must keep going from its new frontier until it converges with the
// moving tip.
func TestCatchUpRacesNewDecisions(t *testing.T) {
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 10 * time.Millisecond}})
	c.sys.CrashAt(2, at(100))
	for i := 0; i < 150; i++ {
		c.broadcastAt(proto.PID(i%2), at(float64(150+15*i)))
	}
	recoverAt := at(2600)
	c.eng.Schedule(recoverAt, func() { c.sys.Recover(2, nil) })
	// Dense traffic from the moment of recovery: the exchange races a
	// constantly advancing frontier.
	for i := 0; i < 60; i++ {
		c.broadcastAt(proto.PID(i%2), recoverAt.Add(time.Duration(5+5*i)*time.Millisecond))
	}
	c.run(20 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}
