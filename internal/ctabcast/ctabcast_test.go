package ctabcast

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// cluster is an end-to-end test harness: n FD-algorithm processes over the
// full simulated network and failure-detector stack.
type cluster struct {
	eng   *sim.Engine
	sys   *proto.System
	procs []*Process
	// deliveries[p] is the A-delivery sequence observed at process p.
	deliveries [][]delivery
	sent       map[proto.MsgID]sim.Time
}

type delivery struct {
	id proto.MsgID
	at sim.Time
}

type clusterOpts struct {
	n         int
	qos       fd.QoS
	renumber  bool
	seed      uint64
	preCrash  []proto.PID
	logRetain int // decision-log retention; 0 = package default
}

func newCluster(o clusterOpts) *cluster {
	if o.seed == 0 {
		o.seed = 1
	}
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(o.n), o.qos, sim.NewRand(o.seed))
	c := &cluster{
		eng:        eng,
		sys:        sys,
		procs:      make([]*Process, o.n),
		deliveries: make([][]delivery, o.n),
		sent:       make(map[proto.MsgID]sim.Time),
	}
	for i := 0; i < o.n; i++ {
		i := i
		c.procs[i] = New(sys.Proc(proto.PID(i)), Config{
			Renumber:  o.renumber,
			LogRetain: o.logRetain,
			Deliver: func(id proto.MsgID, body any) {
				c.deliveries[i] = append(c.deliveries[i], delivery{id: id, at: eng.Now()})
			},
		})
		sys.SetHandler(proto.PID(i), c.procs[i])
	}
	for _, p := range o.preCrash {
		sys.PreCrash(p)
	}
	sys.Start()
	return c
}

// broadcastAt schedules an A-broadcast from p at instant at.
func (c *cluster) broadcastAt(p proto.PID, at sim.Time) {
	c.eng.Schedule(at, func() {
		id := c.procs[p].ABroadcast(fmt.Sprintf("m-%d-%v", p, at))
		c.sent[id] = at
	})
}

// run drives the simulation until quiescent or the horizon.
func (c *cluster) run(horizon time.Duration) {
	c.eng.RunUntil(sim.Time(0).Add(horizon))
}

// ids extracts the ID sequence of one process's deliveries.
func (c *cluster) ids(p int) []proto.MsgID {
	out := make([]proto.MsgID, len(c.deliveries[p]))
	for i, d := range c.deliveries[p] {
		out[i] = d.id
	}
	return out
}

// checkTotalOrder asserts the prefix-consistency of delivery sequences
// across all correct processes plus no-duplication.
func (c *cluster) checkTotalOrder(t *testing.T) {
	t.Helper()
	// Find the longest sequence among correct processes as reference.
	ref := -1
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		if ref < 0 || len(c.deliveries[p]) > len(c.deliveries[ref]) {
			ref = p
		}
	}
	if ref < 0 {
		t.Fatal("no correct process")
	}
	refIDs := c.ids(ref)
	seen := make(map[proto.MsgID]bool, len(refIDs))
	for _, id := range refIDs {
		if seen[id] {
			t.Fatalf("duplicate delivery of %v at p%d", id, ref)
		}
		seen[id] = true
	}
	for p := range c.procs {
		if p == ref || c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		ids := c.ids(p)
		if len(ids) > len(refIDs) {
			t.Fatalf("p%d delivered more than reference", p)
		}
		for i := range ids {
			if ids[i] != refIDs[i] {
				t.Fatalf("order mismatch at %d: p%d has %v, p%d has %v", i, p, ids[i], ref, refIDs[i])
			}
		}
	}
}

// checkAllDelivered asserts every correct process delivered every sent
// message (liveness at quiescence, valid when all senders are correct).
func (c *cluster) checkAllDelivered(t *testing.T) {
	t.Helper()
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		got := make(map[proto.MsgID]bool)
		for _, d := range c.deliveries[p] {
			got[d.id] = true
		}
		for id := range c.sent {
			if !got[id] {
				t.Fatalf("p%d never delivered %v (delivered %d/%d)", p, id, len(got), len(c.sent))
			}
		}
	}
}

// checkUniformAgreement asserts that any message delivered anywhere
// (including at crashed processes before their crash) is delivered at all
// correct processes.
func (c *cluster) checkUniformAgreement(t *testing.T) {
	t.Helper()
	everywhere := make(map[proto.MsgID]bool)
	for p := range c.procs {
		for _, d := range c.deliveries[p] {
			everywhere[d.id] = true
		}
	}
	for p := range c.procs {
		if c.sys.Proc(proto.PID(p)).Crashed() {
			continue
		}
		got := make(map[proto.MsgID]bool)
		for _, d := range c.deliveries[p] {
			got[d.id] = true
		}
		for id := range everywhere {
			if !got[id] {
				t.Fatalf("uniform agreement violated: %v delivered somewhere but not at correct p%d", id, p)
			}
		}
	}
}

func at(msf float64) sim.Time { return sim.Time(0).Add(sim.Millis(msf)) }

func TestSingleBroadcastLatency(t *testing.T) {
	// Hand-computed failure-free timing at λ=1 (the Fig. 1 pattern):
	// m: CPU₀ 0→1, wire 1→2, CPU₁/₂ 2→3. Proposal: CPU₀ 1→2, wire 2→3,
	// CPU 3→4. Ack from p1: 4→5, 5→6, 6→7 — majority at the coordinator,
	// which A-delivers at 7 ms. The redundant ack from p2 occupies CPU₀
	// 7→8, so the decision goes out 8→9, wire 9→10, CPU 10→11: the other
	// processes A-deliver at 11 ms. Latency (min over processes) = 7 ms.
	c := newCluster(clusterOpts{n: 3})
	c.broadcastAt(0, 0)
	c.run(time.Second)
	for p := 0; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("p%d delivered %d messages, want 1", p, len(c.deliveries[p]))
		}
	}
	if got := c.deliveries[0][0].at; got != at(7) {
		t.Fatalf("coordinator A-delivered at %v, want 7ms", got)
	}
	for p := 1; p < 3; p++ {
		if got := c.deliveries[p][0].at; got != at(11) {
			t.Fatalf("p%d A-delivered at %v, want 11ms", p, got)
		}
	}
}

func TestNonCoordinatorBroadcastLatency(t *testing.T) {
	// The sender being p2 does not change who decides first: the
	// coordinator p0 still A-delivers first.
	c := newCluster(clusterOpts{n: 3})
	c.broadcastAt(2, 0)
	c.run(time.Second)
	first := c.deliveries[0][0].at
	// m reaches p0 at 3 ms; proposal CPU₀ 3→4, wire 4→5, CPU 5→6; first
	// ack 6→7, 7→8, 8→9: the coordinator decides at 9 ms.
	if first != at(9) {
		t.Fatalf("coordinator delivered at %v, want 9ms", first)
	}
	c.checkTotalOrder(t)
}

func TestTotalOrderUnderConcurrentLoad(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	// 60 broadcasts from all 3 senders, bursts every 2 ms.
	for i := 0; i < 20; i++ {
		for p := 0; p < 3; p++ {
			c.broadcastAt(proto.PID(p), at(float64(2*i)))
		}
	}
	c.run(5 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestAggregationBatchesUnderLoad(t *testing.T) {
	// A burst of messages while instance 1 runs must be ordered by far
	// fewer consensus instances than messages.
	c := newCluster(clusterOpts{n: 3})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(i)/4)) // 4 msgs/ms burst
	}
	c.run(time.Second)
	c.checkAllDelivered(t)
	instances := c.procs[0].NextInstance() - 1
	if instances == 0 || instances >= 15 {
		t.Fatalf("30 messages used %d instances; aggregation broken", instances)
	}
}

func TestSevenProcesses(t *testing.T) {
	c := newCluster(clusterOpts{n: 7})
	for i := 0; i < 10; i++ {
		c.broadcastAt(proto.PID(i%7), at(float64(5*i)))
	}
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestCoordinatorCrashTransient(t *testing.T) {
	// p0 (round-1 coordinator) crashes exactly when p1 broadcasts. The
	// message must still be delivered after detection (TD) + round 2.
	td := 10 * time.Millisecond
	c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: td}})
	crash := at(50)
	c.sys.CrashAt(0, crash)
	c.broadcastAt(1, crash)
	c.run(2 * time.Second)
	for p := 1; p < 3; p++ {
		if len(c.deliveries[p]) != 1 {
			t.Fatalf("survivor p%d delivered %d, want 1", p, len(c.deliveries[p]))
		}
		if got := c.deliveries[p][0].at; got.Sub(crash) <= td {
			t.Fatalf("delivered at %v, impossibly before detection at %v", got, crash.Add(td))
		}
	}
	c.checkTotalOrder(t)
}

func TestCrashSteadyNonCoordinator(t *testing.T) {
	// A long-ago crash of a non-coordinator: everything works, nobody
	// waits for the dead process (majority is 2 of the original 3).
	c := newCluster(clusterOpts{n: 3, preCrash: []proto.PID{2}})
	c.broadcastAt(0, 0)
	c.broadcastAt(1, at(5))
	c.run(time.Second)
	for p := 0; p < 2; p++ {
		if len(c.deliveries[p]) != 2 {
			t.Fatalf("p%d delivered %d, want 2", p, len(c.deliveries[p]))
		}
	}
	if len(c.deliveries[2]) != 0 {
		t.Fatal("pre-crashed process delivered messages")
	}
	c.checkTotalOrder(t)
}

func TestCrashSteadyCoordinatorWithRenumbering(t *testing.T) {
	// The round-1 coordinator is long dead. With renumbering, after the
	// first decision the proposer (a live process) coordinates round 1 of
	// later instances: no nacks appear in the steady state.
	c := newCluster(clusterOpts{n: 3, preCrash: []proto.PID{0}, renumber: true})
	var nacksLate int
	cutoff := at(200)
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind != netmodel.TraceSend {
			return
		}
		if cm, ok := ev.Payload.(*consMsg); ok {
			if fmt.Sprintf("%T", cm.M) == "consensus.MsgNack" && ev.At > cutoff {
				nacksLate++
			}
		}
	})
	for i := 0; i < 40; i++ {
		c.broadcastAt(proto.PID(1+i%2), at(float64(10*i)))
	}
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	if nacksLate != 0 {
		t.Fatalf("renumbering left %d steady-state nacks", nacksLate)
	}
}

func TestCrashSteadyCoordinatorWithoutRenumbering(t *testing.T) {
	// Control for the renumbering ablation: without it, every instance
	// pays nacks against the dead round-1 coordinator, forever.
	c := newCluster(clusterOpts{n: 3, preCrash: []proto.PID{0}, renumber: false})
	var nacksLate int
	cutoff := at(200)
	c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
		if ev.Kind == netmodel.TraceSend {
			if cm, ok := ev.Payload.(*consMsg); ok && fmt.Sprintf("%T", cm.M) == "consensus.MsgNack" && ev.At > cutoff {
				nacksLate++
			}
		}
	})
	for i := 0; i < 40; i++ {
		c.broadcastAt(proto.PID(1+i%2), at(float64(10*i)))
	}
	c.run(2 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
	if nacksLate == 0 {
		t.Fatal("expected steady-state nacks without renumbering")
	}
}

func TestWrongSuspicionStillDelivers(t *testing.T) {
	// A transient wrong suspicion of the coordinator mid-instance burns a
	// round but loses nothing.
	c := newCluster(clusterOpts{n: 3})
	c.broadcastAt(1, at(10))
	c.eng.Schedule(at(11), func() {
		c.sys.FDs.InjectMistake(1, 0, 5*time.Millisecond)
		c.sys.FDs.InjectMistake(2, 0, 5*time.Millisecond)
	})
	c.run(time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestSuspicionStormSafety(t *testing.T) {
	// Aggressive wrong suspicions (TMR = 20ms, TM = 2ms) with load: the
	// algorithm must stay safe and eventually deliver everything.
	c := newCluster(clusterOpts{
		n:    3,
		qos:  fd.QoS{TMR: 20 * time.Millisecond, TM: 2 * time.Millisecond},
		seed: 99,
	})
	for i := 0; i < 30; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(20*i)))
	}
	c.run(20 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestUniformAgreementAcrossCrash(t *testing.T) {
	// Crash a process mid-run: everything it delivered must be delivered
	// by the survivors.
	for seed := uint64(1); seed <= 20; seed++ {
		c := newCluster(clusterOpts{n: 3, qos: fd.QoS{TD: 5 * time.Millisecond}, seed: seed})
		for i := 0; i < 20; i++ {
			c.broadcastAt(proto.PID(i%3), at(float64(3*i)))
		}
		victim := proto.PID(seed % 3)
		c.sys.CrashAt(victim, at(float64(20+seed*2)))
		c.run(5 * time.Second)
		c.checkTotalOrder(t)
		c.checkUniformAgreement(t)
	}
}

func TestRandomisedFaultSchedules(t *testing.T) {
	// Random crashes (minority) and random mistakes under load: safety
	// always, liveness for correct processes at quiescence.
	for seed := uint64(1); seed <= 15; seed++ {
		rng := sim.NewRand(seed * 1337)
		n := 3 + 2*rng.Intn(2) // 3 or 5
		c := newCluster(clusterOpts{
			n:    n,
			qos:  fd.QoS{TD: 10 * time.Millisecond, TMR: 300 * time.Millisecond, TM: 5 * time.Millisecond},
			seed: seed,
		})
		for i := 0; i < 25; i++ {
			sender := proto.PID(rng.Intn(n))
			c.broadcastAt(sender, at(float64(rng.Intn(400))))
		}
		crashes := rng.Intn((n-1)/2 + 1)
		crashedSet := map[proto.PID]bool{}
		for k := 0; k < crashes; k++ {
			victim := proto.PID(rng.Intn(n))
			if !crashedSet[victim] {
				crashedSet[victim] = true
				c.sys.CrashAt(victim, at(float64(100+rng.Intn(300))))
			}
		}
		c.run(30 * time.Second)
		c.checkTotalOrder(t)
		c.checkUniformAgreement(t)
		// Messages from correct senders must be everywhere; messages from
		// crashed senders may or may not have made it (validity only
		// covers correct senders).
		for id, when := range c.sent {
			if crashedSet[id.Origin] {
				continue
			}
			for p := 0; p < n; p++ {
				if c.sys.Proc(proto.PID(p)).Crashed() {
					continue
				}
				found := false
				for _, d := range c.deliveries[p] {
					if d.id == id {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: message %v (sent %v) missing at p%d", seed, id, when, p)
				}
			}
		}
	}
}

func TestDeliverCallbackRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil Deliver did not panic")
		}
	}()
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(1), fd.QoS{}, sim.NewRand(1))
	New(sys.Proc(0), Config{})
}

func TestGarbageCollectionBoundsState(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	// Enough spaced-out messages to force many instances.
	for i := 0; i < 200; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(15*i)))
	}
	c.run(10 * time.Second)
	c.checkAllDelivered(t)
	p := c.procs[0]
	if p.NextInstance() < 100 {
		t.Fatalf("expected many instances, got %d", p.NextInstance())
	}
	if len(p.instances) > p.cfg.InstanceWindow+2 {
		t.Fatalf("instance map grew to %d despite window %d", len(p.instances), p.cfg.InstanceWindow)
	}
	if len(p.bodies) != 0 || len(p.pending) != 0 {
		t.Fatalf("leftover state: %d bodies, %d pending", len(p.bodies), len(p.pending))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []delivery {
		c := newCluster(clusterOpts{
			n:    3,
			qos:  fd.QoS{TMR: 100 * time.Millisecond, TM: 3 * time.Millisecond},
			seed: 777,
		})
		for i := 0; i < 20; i++ {
			c.broadcastAt(proto.PID(i%3), at(float64(7*i)))
		}
		c.run(5 * time.Second)
		return c.deliveries[1]
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRenumberingUnderSustainedSuspicions(t *testing.T) {
	// With renumbering on and periodic wrong suspicions, instances keep
	// being created reactively before their predecessors are delivered,
	// exercising the buffered-consensus-message path (messages for
	// instance k+1 arriving before decision k fixes the coordinator
	// order).
	c := newCluster(clusterOpts{
		n:        3,
		renumber: true,
		qos:      fd.QoS{TMR: 60 * time.Millisecond, TM: 4 * time.Millisecond},
		seed:     31,
	})
	for i := 0; i < 60; i++ {
		c.broadcastAt(proto.PID(i%3), at(float64(3*i)))
	}
	c.run(10 * time.Second)
	c.checkTotalOrder(t)
	c.checkAllDelivered(t)
}

func TestHandlerSurface(t *testing.T) {
	c := newCluster(clusterOpts{n: 3})
	p := c.procs[0]
	p.Init()     // no-op, must not panic
	p.OnTrust(1) // FD algorithm ignores trust edges
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d on idle process", p.Pending())
	}
	c.broadcastAt(0, 0)
	c.run(20 * time.Millisecond)
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d after delivery", p.Pending())
	}
	// consMsg names its inner message for traces.
	s := consMsg{K: 3, M: consensus.MsgAck{Round: 1}}.String()
	if s != "MsgAck[k=3]" {
		t.Fatalf("consMsg.String() = %q", s)
	}
}

func TestUnknownPayloadPanics(t *testing.T) {
	c := newCluster(clusterOpts{n: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown payload did not panic")
		}
	}()
	c.procs[0].OnMessage(0, struct{ weird int }{1})
}

func TestVeryLateStragglerMessagesIgnored(t *testing.T) {
	// Messages for instances below the GC window are dropped silently.
	c := newCluster(clusterOpts{n: 3})
	p := c.procs[0]
	p.oldest = 100
	p.OnMessage(1, &consMsg{K: 5, M: consensus.MsgAck{Round: 1}})
	// Nothing to assert beyond "no panic and no instance created".
	if _, ok := p.instances[5]; ok {
		t.Fatal("GC'd instance resurrected")
	}
}
