package ctabcast

// Decision-log catch-up: the FD stack's recovery path for gaps that
// outlive the consensus instance window, mirroring the GM stack's state
// transfer.
//
// Every process appends each decided batch — IDs, payload references and
// the proposer — to a bounded decision log (Config.LogRetain entries,
// trimmed oldest-first). A process that falls behind detects its gap from
// the instance numbers piggy-backed on ordinary consensus traffic: a
// message for instance k proves its sender had delivered everything below
// k, so k strictly above our frontier is evidence of lag. Detection is
// two-fold:
//
//   - Passive: a message at least InstanceWindow ahead of the frontier
//     means peers have garbage-collected the instances we need; ordinary
//     decision forwarding can never close that gap, so catch-up starts
//     immediately.
//   - Probed: Resume() — armed by the harness on Recover and on partition
//     Heal — checks after CatchUpDelay whether any evidence of lag
//     accumulated and, if so, starts catch-up even for in-window gaps
//     (which otherwise wedge until a suspicion happens to trigger a
//     relay).
//
// Catch-up is a request/reply suffix transfer with deterministic
// timeout/retry over the simulated clock: CatchUpReq(from) goes to the
// most advanced peer observed; the reply carries the decision suffix
// [from, next) out of the responder's log, which the straggler re-delivers
// in order through the normal drain path. Retries rotate targets with
// doubling backoff (base CatchUpRetry, capped), so a crashed responder
// only costs one timeout. If even the responder's log no longer reaches
// back to `from`, the reply degrades to a full-snapshot handoff: the
// retained suffix plus a copy of the responder's delivery tracker. The
// straggler delivers what the log still holds, adopts the tracker for the
// truncated prefix and jumps its frontier — the messages of the truncated
// prefix are a documented delivery gap at that process, the price of
// unwedging (GM's state transfer pays the same price by construction: a
// rejoiner only receives the current service state).

import (
	"fmt"
	"time"

	"repro/internal/proto"
)

const (
	defaultLogRetain    = 1024
	defaultCatchUpDelay = 150 * time.Millisecond
	defaultCatchUpRetry = 100 * time.Millisecond
	// catchUpBackoffCap bounds the retry backoff at this multiple of
	// CatchUpRetry.
	catchUpBackoffCap = 16
	// maxIdleProbes is how many consecutive probe checks may observe a
	// totally silent network before the probe stops waiting for evidence
	// and asks a peer directly. From the probing process's seat, "no lag
	// evidence" amid silence is indistinguishable from "everyone else is
	// idle too" — only a direct question settles it.
	maxIdleProbes = 2
)

// logEntry is one decided batch in the decision log. ids is the decision
// value in proposal order, shared (immutably) with the decisions map and
// any shipped replies; bodies is parallel to ids, nil where the batch
// re-decided an ID an earlier batch already delivered (the earlier
// entry carries the body).
type logEntry struct {
	ids      []proto.MsgID
	bodies   []any
	proposer proto.PID
}

// catchUpReq asks a peer for the decision suffix starting at instance
// From. Wire copies are pooled boxes, like consMsg.
type catchUpReq struct {
	From uint64

	refs int32
	home *Process
}

// Retain implements the network's pooled-payload protocol.
func (m *catchUpReq) Retain(n int) { m.refs += int32(n) }

// Release drops one in-flight copy reference, returning the box to its
// Process's free list when none remain.
func (m *catchUpReq) Release() {
	if m.refs--; m.refs == 0 && m.home != nil {
		m.home.reqFree = append(m.home.reqFree, m)
	}
}

// String renders the request for traces.
func (m catchUpReq) String() string { return fmt.Sprintf("CatchUpReq[from=%d]", m.From) }

// catchUpReply carries the decision suffix [Start, Start+len(Entries))
// plus the responder's frontier Next and its renumbering seed for
// instance Next. Snap is non-nil only on the full-snapshot fallback.
type catchUpReply struct {
	Start      uint64
	Next       uint64
	Entries    []logEntry
	Snap       *proto.TrackerSnapshot
	FirstCoord proto.PID

	refs int32
	home *Process
}

// Retain implements the network's pooled-payload protocol.
func (m *catchUpReply) Retain(n int) { m.refs += int32(n) }

// Release drops one in-flight copy reference, returning the box to its
// Process's free list when none remain.
func (m *catchUpReply) Release() {
	if m.refs--; m.refs == 0 && m.home != nil {
		m.Entries, m.Snap = nil, nil
		m.home.replyFree = append(m.home.replyFree, m)
	}
}

// String renders the reply for traces.
func (m catchUpReply) String() string {
	if m.Snap != nil {
		return fmt.Sprintf("CatchUpReply[%d..%d snap]", m.Start, m.Next)
	}
	return fmt.Sprintf("CatchUpReply[%d..%d]", m.Start, m.Next)
}

// reqBox draws a catchUpReq wire box from the process free list.
func (p *Process) reqBox(from uint64) *catchUpReq {
	if n := len(p.reqFree); n > 0 {
		b := p.reqFree[n-1]
		p.reqFree = p.reqFree[:n-1]
		b.From = from
		return b
	}
	return &catchUpReq{From: from, home: p}
}

// replyBox draws a catchUpReply wire box from the process free list.
func (p *Process) replyBox() *catchUpReply {
	if n := len(p.replyFree); n > 0 {
		b := p.replyFree[n-1]
		p.replyFree = p.replyFree[:n-1]
		return b
	}
	return &catchUpReply{home: p}
}

// appendLog records the batch the drain is about to deliver (instance
// nextDeliver) in the decision log, capturing bodies before delivery
// deletes them. The log is trimmed to LogRetain entries with hysteresis,
// always onto a fresh backing array so sub-slices shipped in earlier
// replies stay immutable.
func (p *Process) appendLog(ids []proto.MsgID) {
	bodies := make([]any, len(ids))
	for i, id := range ids {
		bodies[i] = p.bodies[id]
	}
	p.log = append(p.log, logEntry{ids: ids, bodies: bodies, proposer: p.proposers[p.nextDeliver]})
	slack := p.cfg.LogRetain / 2
	if len(p.log) <= p.cfg.LogRetain+slack {
		return
	}
	fresh := make([]logEntry, p.cfg.LogRetain, p.cfg.LogRetain+slack)
	drop := len(p.log) - p.cfg.LogRetain
	copy(fresh, p.log[drop:])
	p.log = fresh
	p.logStart += uint64(drop)
}

// noteInstance digests the lag evidence carried by every incoming
// consensus message: processes only send for instances up to their own
// frontier, so a message for instance k proves its sender delivered
// everything below k. A message a whole retention window ahead means the
// instances we need are already garbage-collected at peers — only the
// decision log can help, so catch-up starts immediately.
func (p *Process) noteInstance(from proto.PID, k uint64) {
	if from != p.rt.ID() && k > p.maxSeen {
		p.maxSeen = k
		p.maxSeenFrom = from
	}
	if k >= p.nextDeliver+uint64(p.cfg.InstanceWindow) {
		p.startCatchUp()
	}
}

// Resume arms the catch-up probe. The harness calls it when the process
// recovers from an outage and, on every live process, when a partition
// heals: after CatchUpDelay the process checks whether evidence of lag
// has accumulated (a peer frontier above ours, or consensus messages
// buffered for instances we cannot build yet) and starts catch-up if so.
// With no evidence the probe's next move depends on what it heard in the
// meantime. Any received traffic that produced no evidence means the
// process is current, so the probe disarms silently — a process resumed
// into a live, healthy system sends nothing. Total silence is different:
// an idle system produces no evidence whether or not we are behind, so
// the probe re-arms, and after maxIdleProbes consecutive silent checks
// it sends one direct CatchUpReq anyway. The exchange self-terminates on
// the first reply (a current process sees the responder's matching
// frontier and stops), so probing a genuinely idle, current system costs
// one round trip. A newer Resume supersedes any probe chain in flight.
func (p *Process) Resume() {
	p.probeSeq++
	p.probeRx = p.rxCount
	p.probeIdle = 0
	p.armProbe(p.probeSeq)
}

// armProbe schedules the next probe check of chain seq.
func (p *Process) armProbe(seq uint64) {
	p.rt.After(p.cfg.CatchUpDelay, func() { p.probeCatchUp(seq) })
}

// probeCatchUp is the Resume probe body.
func (p *Process) probeCatchUp(seq uint64) {
	if p.cuActive || seq != p.probeSeq {
		return
	}
	if p.maxSeen > p.nextDeliver || len(p.buffered) > 0 {
		p.startCatchUp()
		return
	}
	if p.rxCount != p.probeRx {
		// Traffic arrived since the probe was armed and none of it was
		// lag evidence: the process is current. Disarm silently.
		return
	}
	if len(p.all) == 1 {
		return // no peer to ask
	}
	p.probeIdle++
	if p.probeIdle >= maxIdleProbes {
		// The system has been silent for the whole probe window, twice
		// over: stop waiting for evidence that silence can never produce
		// and ask a peer directly. The exchange gets one evidence-free
		// rotation through the peers, so a crashed first target does not
		// kill it, and still terminates if every peer is down.
		p.startCatchUp()
		p.cuBlind = len(p.all) - 1
		return
	}
	p.probeRx = p.rxCount
	p.armProbe(seq)
}

// startCatchUp opens the catch-up exchange against the most advanced
// peer observed. Idempotent while active.
func (p *Process) startCatchUp() {
	if p.cuActive {
		return
	}
	p.cuActive = true
	p.cuBackoff = p.cfg.CatchUpRetry
	p.cuBlind = 0
	p.cuTarget = p.maxSeenFrom
	p.sendCatchUpReq()
}

// sendCatchUpReq asks the current target for the suffix from our
// frontier and arms the retry timer: if the target crashed, or the
// request or reply was lost to a partition or link fault, the timer
// rotates to the next peer with doubled (capped) backoff.
func (p *Process) sendCatchUpReq() {
	if p.cuTarget == p.rt.ID() {
		p.cuTarget = proto.PID((int(p.cuTarget) + 1) % len(p.all))
	}
	p.rt.Send(p.cuTarget, p.reqBox(p.nextDeliver))
	p.cuSeq++
	seq := p.cuSeq
	d := p.cuBackoff
	if p.cuBackoff < catchUpBackoffCap*p.cfg.CatchUpRetry {
		p.cuBackoff *= 2
	}
	p.rt.After(d, func() { p.onCatchUpRetry(seq) })
}

// onCatchUpRetry fires when a request went unanswered for a full backoff
// period. Evidence is re-checked first: the gap may have closed through
// ordinary operation (a late reply, or in-window decision forwarding).
// A forced (evidence-free) exchange instead spends its bounded cuBlind
// budget before giving up, so one crashed responder cannot strand it.
func (p *Process) onCatchUpRetry(seq uint64) {
	if !p.cuActive || seq != p.cuSeq {
		return
	}
	if p.maxSeen <= p.nextDeliver && len(p.buffered) == 0 {
		if p.cuBlind == 0 {
			p.stopCatchUp()
			return
		}
		p.cuBlind--
	}
	p.cuTarget = proto.PID((int(p.cuTarget) + 1) % len(p.all))
	p.sendCatchUpReq()
}

// stopCatchUp closes the exchange and strands any pending retry timer.
func (p *Process) stopCatchUp() {
	p.cuActive = false
	p.cuSeq++
}

// onCatchUpReq answers a straggler with the decision suffix from its
// frontier. If the log has been trimmed below the request, the reply
// degrades to the full-snapshot handoff: everything the log still holds
// plus a copy of the delivery tracker. Replies always carry the current
// frontier, so even an empty reply tells the requester where the
// responder stands.
func (p *Process) onCatchUpReq(from proto.PID, reqFrom uint64) {
	r := p.replyBox()
	r.Next = p.nextDeliver
	r.FirstCoord = p.firstCoord
	if reqFrom >= p.logStart {
		i := min(reqFrom-p.logStart, uint64(len(p.log)))
		r.Start = p.logStart + i
		r.Entries = p.log[i:len(p.log):len(p.log)]
	} else {
		r.Start = p.logStart
		r.Entries = p.log[0:len(p.log):len(p.log)]
		r.Snap = p.adelivered.Snapshot()
	}
	p.rt.Send(from, r)
}

// onCatchUpReply applies a suffix (or snapshot) reply. Replies are
// idempotent: duplicates and overlaps re-apply harmlessly — delivery is
// deduplicated by adelivered and the frontier never rewinds — so a slow
// responder answering after a retry already succeeded costs nothing.
func (p *Process) onCatchUpReply(r *catchUpReply) {
	before := p.nextDeliver
	if r.Snap != nil && r.Start > p.nextDeliver {
		p.applySnapshot(r)
	} else {
		p.applySuffix(r)
	}
	if !p.cuActive {
		return
	}
	if p.maxSeen <= p.nextDeliver && len(p.buffered) == 0 {
		p.stopCatchUp()
		return
	}
	if p.nextDeliver > before {
		// Still behind, but the reply made progress (decisions kept
		// landing while the suffix travelled): go again immediately from
		// the new frontier, re-targeting the most advanced peer. A reply
		// that made no progress instead waits for the armed retry timer,
		// which rotates targets.
		p.cuBackoff = p.cfg.CatchUpRetry
		p.cuTarget = p.maxSeenFrom
		p.sendCatchUpReq()
	}
}

// applySuffix folds a contiguous decision suffix into the ordinary drain
// path: record each batch as a decision, stash its bodies, and drain.
func (p *Process) applySuffix(r *catchUpReply) {
	for i := range r.Entries {
		k := r.Start + uint64(i)
		if k < p.nextDeliver || k >= r.Next {
			continue
		}
		e := &r.Entries[i]
		if _, ok := p.decisions[k]; !ok {
			p.decisions[k] = e.ids
			p.proposers[k] = e.proposer
		}
		p.stashBodies(e)
	}
	p.drainDecisions()
}

// stashBodies makes a caught-up entry's payloads available to the drain.
// Decided IDs must not re-enter the pending set: they are already
// ordered, so stashing only fills the bodies map.
func (p *Process) stashBodies(e *logEntry) {
	for j, id := range e.ids {
		if e.bodies[j] == nil || p.adelivered.Seen(id) {
			continue
		}
		if _, have := p.bodies[id]; !have {
			p.bodies[id] = e.bodies[j]
		}
	}
}

// applySnapshot installs a full-snapshot handoff: the responder's log no
// longer reaches back to our frontier, so re-delivering every missed
// message is impossible. The retained suffix is delivered against our
// own dedup state first (merging the tracker earlier would mark those
// IDs seen and suppress their delivery), then the tracker covers the
// truncated prefix and the frontier jumps. The truncated prefix is a
// delivery gap at this process — the documented price of unwedging.
func (p *Process) applySnapshot(r *catchUpReply) {
	for i := range r.Entries {
		p.deliverEntry(&r.Entries[i])
	}
	p.adelivered.Merge(r.Snap)
	p.nextDeliver = r.Next
	p.firstCoord = r.FirstCoord
	// Adopt the responder's retained window as our own log: our previous
	// entries sit below the new frontier and the invariant
	// logStart+len(log) == nextDeliver must hold for our own replies.
	p.log = append(p.log[:0:0], r.Entries...)
	p.logStart = r.Start
	// Drop ordering state below the new frontier. Slot recycling order is
	// unobservable (slots are fully reset on reuse), so map iteration is
	// safe here.
	for k, s := range p.instances {
		if k < p.nextDeliver {
			s.inst.Close()
			delete(p.instances, k)
			p.slotFree = append(p.slotFree, s)
		}
	}
	for k := range p.decisions {
		if k < p.nextDeliver {
			delete(p.decisions, k)
			delete(p.proposers, k)
		}
	}
	for k := range p.buffered {
		if k < p.nextDeliver {
			delete(p.buffered, k)
		}
	}
	if p.oldest < p.nextDeliver {
		p.oldest = p.nextDeliver
	}
	// Pending messages the snapshot covers were delivered elsewhere:
	// withdraw them from future proposals and relays, in canonical order
	// so relay traffic cannot depend on map iteration.
	var done []proto.MsgID
	for id := range p.pending {
		if p.adelivered.Seen(id) {
			done = append(done, id)
		}
	}
	proto.SortMsgIDs(done)
	for _, id := range done {
		delete(p.pending, id)
		delete(p.bodies, id)
		p.rb.MarkStable(id)
	}
	p.drainDecisions()
}

// deliverEntry A-delivers one caught-up batch directly — the snapshot
// path cannot go through drainDecisions because the batch numbers lie
// beyond the contiguous frontier. Same per-batch semantics: sorted ID
// order, adelivered dedup, bodies preferred from local state.
func (p *Process) deliverEntry(e *logEntry) {
	p.sortScratch = append(p.sortScratch[:0], e.ids...)
	proto.SortMsgIDs(p.sortScratch)
	for _, id := range p.sortScratch {
		if !p.adelivered.Add(id) {
			continue
		}
		body := p.bodies[id]
		if body == nil {
			for j, eid := range e.ids {
				if eid == id {
					body = e.bodies[j]
					break
				}
			}
		}
		delete(p.bodies, id)
		delete(p.pending, id)
		p.rb.MarkStable(id)
		p.cfg.Deliver(id, body)
	}
}
