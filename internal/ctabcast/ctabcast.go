// Package ctabcast implements the Chandra–Toueg uniform atomic broadcast
// algorithm — the paper's "FD algorithm" (§4.1). It uses unreliable
// failure detectors directly:
//
//   - A-broadcast(m) reliably broadcasts m to all processes (one multicast
//     in the common case, see internal/rbcast).
//   - Received messages are buffered until their delivery position is
//     decided by a sequence of consensus instances #1, #2, ...; the value
//     of each instance is a set of message IDs.
//   - The messages decided by instance k are A-delivered before those of
//     instance k+1, and within a batch in the deterministic ID order.
//
// Aggregation falls out naturally: while instance k runs, arriving
// messages accumulate and instance k+1 orders them all at once — the
// mechanism that lets the algorithm "tolerate high load" (§4).
//
// The package also implements the crash-steady optimisation of §7: each
// decision carries its proposer, and subsequent instances rotate their
// coordinator order to start at that proposer, so crashed processes
// eventually stop being round-1 coordinators at no extra message cost.
package ctabcast

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/proto"
	"repro/internal/rbcast"
)

// consMsg tags a consensus message with its instance number. Wire copies
// travel as *consMsg boxes drawn from the sending Process's free list
// (the netmodel pooled-payload protocol): receivers copy K and M out
// before returning, and the box is recycled when its last in-flight copy
// is delivered or dropped.
type consMsg struct {
	K uint64
	M consensus.Msg

	refs int32
	home *Process
}

// Retain implements the network's pooled-payload protocol.
func (m *consMsg) Retain(n int) { m.refs += int32(n) }

// Release drops one in-flight copy reference, returning the box to its
// Process's free list when none remain.
func (m *consMsg) Release() {
	if m.refs--; m.refs == 0 && m.home != nil {
		m.M = nil
		m.home.msgFree = append(m.home.msgFree, m)
	}
}

// String names the wrapped message for traces: "MsgPropose[k=3]". The
// value receiver keeps the pooled pointer box rendering exactly like the
// value payload it replaced.
func (m consMsg) String() string {
	name := fmt.Sprintf("%T", m.M)
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s[k=%d]", name, m.K)
}

// Config parameterises the FD algorithm at one process.
type Config struct {
	// Deliver is the A-deliver upcall, invoked in total order.
	Deliver func(id proto.MsgID, body any)
	// Renumber enables the coordinator renumbering optimisation: the
	// proposer of decision k coordinates round 1 of instance k+1. All
	// processes must agree on this setting.
	Renumber bool
	// InstanceWindow bounds how many finished consensus instances are
	// retained for decision forwarding to stragglers. Zero selects a
	// sensible default.
	InstanceWindow int
	// LogRetain bounds the decision log kept for catch-up suffix
	// transfer — the recovery path for gaps wider than InstanceWindow
	// (see catchup.go). It should exceed InstanceWindow by a comfortable
	// margin; a straggler whose gap outgrows even the log falls back to
	// the full-snapshot handoff. Zero selects a sensible default.
	LogRetain int
	// CatchUpDelay is how long after Resume() the catch-up probe checks
	// for evidence of lag. Zero selects a sensible default.
	CatchUpDelay time.Duration
	// CatchUpRetry is the base retry backoff of the catch-up exchange
	// (doubling, capped). Zero selects a sensible default.
	CatchUpRetry time.Duration
}

const defaultInstanceWindow = 64

// Process is the FD atomic broadcast endpoint at one process. It
// implements proto.Handler.
type Process struct {
	rt  proto.Runtime
	cfg Config
	rb  *rbcast.Broadcaster

	all []proto.PID // all process IDs, the fixed participant set

	pending    map[proto.MsgID]struct{} // received, not yet A-delivered
	bodies     map[proto.MsgID]any
	adelivered *proto.IDTracker

	instances   map[uint64]*instSlot
	decisions   map[uint64][]proto.MsgID
	proposers   map[uint64]proto.PID
	buffered    map[uint64][]bufferedMsg // consensus msgs for instances we cannot build yet
	nextDeliver uint64                   // lowest instance whose decision is still undelivered
	firstCoord  proto.PID                // round-1 coordinator of instance nextDeliver
	oldest      uint64                   // lowest retained instance

	// Decision log and catch-up state (see catchup.go). The log covers
	// instances [logStart, logStart+len(log)), and logStart+len(log) ==
	// nextDeliver always holds.
	log         []logEntry
	logStart    uint64
	maxSeen     uint64        // highest instance seen in peer consensus traffic
	maxSeenFrom proto.PID     // sender of that traffic: the most advanced peer known
	cuActive    bool          // a catch-up exchange is in progress
	cuTarget    proto.PID     // peer currently asked
	cuBackoff   time.Duration // next retry delay
	cuSeq       uint64        // strands stale retry timers
	cuBlind     int           // evidence-free retries left (forced exchanges only)
	rxCount     uint64        // messages received, ever: the probe's idleness signal
	probeSeq    uint64        // strands superseded Resume probe chains
	probeRx     uint64        // rxCount when the live probe chain was (re)armed
	probeIdle   int           // consecutive probes that saw zero traffic

	// Free lists and cached callbacks: the high-rate allocation sites of
	// the hot path, each reused across instances and messages.
	msgFree     []*consMsg      // recycled consMsg wire boxes
	reqFree     []*catchUpReq   // recycled catch-up request boxes
	replyFree   []*catchUpReply // recycled catch-up reply boxes
	slotFree    []*instSlot     // recycled instance slots (GC'd instances)
	sortScratch []proto.MsgID
	suspectsFn  func(proto.PID) bool
	refreshFn   func() consensus.Value
}

// instSlot bundles one consensus instance with its per-instance
// callbacks, so a garbage-collected instance can be reset and reused —
// transport, decide closure and all — instead of reallocated. The
// transport is addressed as &slot.tr (a pointer into the slot), which
// boxes into the Transport interface without allocating, and the decide
// closure reads slot.tr.k at call time, so retargeting the slot to a new
// instance number is one field write.
type instSlot struct {
	inst   *consensus.Instance
	tr     consTransport
	decide func(v consensus.Value, proposer proto.PID)
}

type bufferedMsg struct {
	from proto.PID
	m    consensus.Msg
}

var _ proto.Handler = (*Process)(nil)

// New creates the FD algorithm endpoint for the process behind rt.
func New(rt proto.Runtime, cfg Config) *Process {
	if cfg.Deliver == nil {
		panic("ctabcast: nil Deliver")
	}
	if cfg.InstanceWindow <= 0 {
		cfg.InstanceWindow = defaultInstanceWindow
	}
	if cfg.LogRetain <= 0 {
		cfg.LogRetain = defaultLogRetain
	}
	if cfg.CatchUpDelay <= 0 {
		cfg.CatchUpDelay = defaultCatchUpDelay
	}
	if cfg.CatchUpRetry <= 0 {
		cfg.CatchUpRetry = defaultCatchUpRetry
	}
	p := &Process{
		rt:          rt,
		cfg:         cfg,
		pending:     make(map[proto.MsgID]struct{}),
		bodies:      make(map[proto.MsgID]any),
		adelivered:  proto.NewIDTracker(),
		instances:   make(map[uint64]*instSlot),
		decisions:   make(map[uint64][]proto.MsgID),
		proposers:   make(map[uint64]proto.PID),
		buffered:    make(map[uint64][]bufferedMsg),
		nextDeliver: 1,
		oldest:      1,
		logStart:    1,
	}
	p.all = make([]proto.PID, rt.N())
	for i := range p.all {
		p.all[i] = proto.PID(i)
	}
	// Bind the per-process callbacks once: a method value or closure built
	// inside instance() would allocate on every instance.
	p.suspectsFn = rt.Suspects
	p.refreshFn = func() consensus.Value {
		if len(p.pending) == 0 {
			return nil
		}
		return p.proposal()
	}
	p.rb = rbcast.New(rbcast.Config{
		Self:      rt.ID(),
		Multicast: func(m *rbcast.Msg) { rt.Multicast(m) },
		Deliver:   p.onRBDeliver,
	})
	return p
}

// Init implements proto.Handler.
func (p *Process) Init() {}

// ABroadcast atomically broadcasts body and returns its message ID.
func (p *Process) ABroadcast(body any) proto.MsgID {
	return p.rb.Broadcast(body)
}

// OnMessage implements proto.Handler.
func (p *Process) OnMessage(from proto.PID, payload any) {
	p.rxCount++
	switch m := payload.(type) {
	case *rbcast.Msg:
		p.rb.OnMessage(*m)
	case *consMsg:
		// Copy K and M out of the pooled box before it is released.
		p.onConsensusMsg(from, m.K, m.M)
	case *catchUpReq:
		p.onCatchUpReq(from, m.From)
	case *catchUpReply:
		// Handled synchronously before the pooled box is released; entry
		// slices taken from it are immutable shares of the responder's
		// log, the established cross-process idiom for decided values.
		p.onCatchUpReply(m)
	default:
		panic(fmt.Sprintf("ctabcast: unknown payload %T", payload))
	}
}

// OnSuspect implements proto.Handler: suspicion edges feed the reliable
// broadcast relay and every live consensus instance.
func (p *Process) OnSuspect(q proto.PID) {
	p.rb.OnSuspect(q)
	// Notify instances in ascending order: a suspicion can make an
	// instance send (round change), and send order must not depend on map
	// iteration order or simulations become nondeterministic.
	ks := make([]uint64, 0, len(p.instances))
	for k := range p.instances {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	for _, k := range ks {
		p.instances[k].inst.OnSuspect(q)
	}
}

// OnTrust implements proto.Handler. The FD algorithm is insensitive to
// trust edges: a burned round is never revisited.
func (p *Process) OnTrust(proto.PID) {}

// Pending returns the number of messages awaiting ordering (diagnostics).
func (p *Process) Pending() int { return len(p.pending) }

// NextInstance returns the lowest undelivered consensus instance
// (diagnostics).
func (p *Process) NextInstance() uint64 { return p.nextDeliver }

// onRBDeliver receives a reliably-broadcast message exactly once.
func (p *Process) onRBDeliver(id proto.MsgID, body any) {
	if p.adelivered.Seen(id) {
		return
	}
	p.bodies[id] = body
	p.pending[id] = struct{}{}
	// A decided batch may have been stalled waiting for this body.
	p.drainDecisions()
	p.maybePropose()
}

// maybePropose starts (or feeds a value into) the current consensus
// instance when there are unordered messages.
func (p *Process) maybePropose() {
	if len(p.pending) == 0 {
		return
	}
	inst := p.instance(p.nextDeliver)
	if inst.Decided() {
		return // drainDecisions will open the next instance
	}
	if inst.HasEstimate() {
		// Start keeps the first value, so snapshotting a fresh proposal
		// here would allocate only to be discarded.
		inst.Restart()
		return
	}
	if inst.Coordinator(1) == p.rt.ID() {
		inst.Start(p.proposal())
		return
	}
	// A non-coordinator's round-1 value is never transmitted: if the
	// instance ever reaches round 2 with our timestamp still zero, the
	// estimate is re-snapshotted through RefreshEstimate (the pending set
	// cannot drain under a started, undecided instance, so the refresh is
	// always non-nil). Starting lazily skips the snapshot allocation on
	// the fast path.
	inst.StartLazy()
}

// proposal snapshots the pending set in canonical order.
func (p *Process) proposal() consensus.Value {
	ids := make([]proto.MsgID, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, id)
	}
	proto.SortMsgIDs(ids)
	return ids
}

// instance returns (creating on demand) the consensus instance k.
// Callers must ensure the first coordinator for k is known:
// k <= nextDeliver, or renumbering disabled.
//
// Instances are pooled: a slot recycled by collectGarbage is retargeted
// to k and its consensus.Instance reset in place, so steady-state
// operation reuses the same handful of slots instead of allocating an
// instance, transport box, and callback closures per batch.
func (p *Process) instance(k uint64) *consensus.Instance {
	if s, ok := p.instances[k]; ok {
		return s.inst
	}
	first := proto.PID(0)
	if p.cfg.Renumber {
		first = p.firstCoordFor(k)
	}
	var s *instSlot
	if n := len(p.slotFree); n > 0 {
		s = p.slotFree[n-1]
		p.slotFree = p.slotFree[:n-1]
	} else {
		s = &instSlot{}
		s.tr.p = p
		s.decide = func(v consensus.Value, proposer proto.PID) {
			p.onDecide(s.tr.k, v, proposer)
		}
	}
	s.tr.k = k
	cfg := consensus.Config{
		Self:            p.rt.ID(),
		Participants:    p.all,
		FirstCoord:      first,
		Suspects:        p.suspectsFn,
		Decide:          s.decide,
		RefreshEstimate: p.refreshFn,
	}
	if s.inst == nil {
		s.inst = consensus.New(cfg, &s.tr)
	} else {
		s.inst.Reset(cfg, &s.tr)
	}
	p.instances[k] = s
	return s.inst
}

// firstCoordFor returns the round-1 coordinator of instance k under the
// renumbering optimisation. It is only defined for k <= nextDeliver (the
// proposers of all earlier instances are known).
func (p *Process) firstCoordFor(k uint64) proto.PID {
	if k == p.nextDeliver {
		return p.firstCoord
	}
	if prop, ok := p.proposers[k-1]; ok {
		return prop
	}
	return p.firstCoord
}

// onConsensusMsg routes a consensus message to its instance, creating it
// reactively. With renumbering, messages for instances beyond
// nextDeliver are buffered until the earlier decisions (which determine
// the coordinator order) arrive.
func (p *Process) onConsensusMsg(from proto.PID, k uint64, m consensus.Msg) {
	p.noteInstance(from, k)
	if k < p.oldest {
		return // instance already garbage-collected; peer is far behind
	}
	if p.cfg.Renumber && k > p.nextDeliver {
		if _, exists := p.instances[k]; !exists {
			p.buffered[k] = append(p.buffered[k], bufferedMsg{from: from, m: m})
			return
		}
	}
	p.instance(k).OnMessage(from, m)
}

// onDecide records the decision of instance k and delivers in order.
func (p *Process) onDecide(k uint64, v consensus.Value, proposer proto.PID) {
	ids, ok := v.([]proto.MsgID)
	if !ok {
		panic(fmt.Sprintf("ctabcast: decision of unexpected type %T", v))
	}
	p.decisions[k] = ids
	p.proposers[k] = proposer
	p.drainDecisions()
}

// drainDecisions A-delivers decided batches in instance order. A batch
// whose body has not arrived yet stalls the drain; it resumes from
// onRBDeliver.
func (p *Process) drainDecisions() {
	for {
		ids, ok := p.decisions[p.nextDeliver]
		if !ok {
			break
		}
		// All bodies must be present before the batch is delivered, so
		// delivery of the whole batch is atomic in ID order.
		ready := true
		for _, id := range ids {
			if _, have := p.bodies[id]; !have && !p.adelivered.Seen(id) {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		// Log the batch before delivery consumes the bodies: catch-up
		// serves stragglers from the log long after the consensus
		// instances themselves are garbage-collected.
		p.appendLog(ids)
		// Sort into a reused scratch slice; the decision slice itself must
		// stay in proposal order for decision forwarding. Deliver never
		// reenters drainDecisions synchronously (all sends go through the
		// event queue), so the scratch cannot be clobbered mid-iteration.
		p.sortScratch = append(p.sortScratch[:0], ids...)
		proto.SortMsgIDs(p.sortScratch)
		for _, id := range p.sortScratch {
			if !p.adelivered.Add(id) {
				continue // decided twice across batches; deliver once
			}
			body := p.bodies[id]
			delete(p.bodies, id)
			delete(p.pending, id)
			p.rb.MarkStable(id)
			p.cfg.Deliver(id, body)
		}
		if p.cfg.Renumber {
			p.firstCoord = p.proposers[p.nextDeliver]
		}
		p.nextDeliver++
		// The previous instance's decision is now superseded by this
		// delivery everywhere that matters: stop suspicion-triggered
		// relays for it (decision forwarding keeps answering stragglers).
		// Without this, a crash would trigger a relay storm across the
		// whole retained window.
		if p.nextDeliver >= 3 {
			if s, ok := p.instances[p.nextDeliver-2]; ok {
				s.inst.Close()
			}
		}
		p.collectGarbage()
		p.flushBuffered()
	}
	p.maybePropose()
}

// flushBuffered replays consensus messages that waited for the coordinator
// order of the now-current instance.
func (p *Process) flushBuffered() {
	msgs, ok := p.buffered[p.nextDeliver]
	if !ok {
		return
	}
	delete(p.buffered, p.nextDeliver)
	for _, bm := range msgs {
		p.instance(p.nextDeliver).OnMessage(bm.from, bm.m)
	}
}

// collectGarbage closes and drops instances that fell out of the retention
// window. Decision forwarding for recently finished instances keeps
// working inside the window.
func (p *Process) collectGarbage() {
	if p.nextDeliver < uint64(p.cfg.InstanceWindow) {
		return
	}
	floor := p.nextDeliver - uint64(p.cfg.InstanceWindow)
	for p.oldest < floor {
		if s, ok := p.instances[p.oldest]; ok {
			s.inst.Close()
			delete(p.instances, p.oldest)
			// The slot is safe to reuse: the oldest watermark now filters
			// any straggler message addressed to its previous instance.
			p.slotFree = append(p.slotFree, s)
		}
		delete(p.decisions, p.oldest)
		delete(p.proposers, p.oldest)
		delete(p.buffered, p.oldest)
		p.oldest++
	}
}

// consTransport adapts the process runtime to one instance's transport,
// adding the instance tag. It is embedded in an instSlot and addressed
// by pointer, so handing it to consensus as a Transport does not
// allocate.
type consTransport struct {
	p *Process
	k uint64
}

// box draws a consMsg wire box from the process free list.
func (p *Process) box(k uint64, m consensus.Msg) *consMsg {
	if n := len(p.msgFree); n > 0 {
		b := p.msgFree[n-1]
		p.msgFree = p.msgFree[:n-1]
		b.K, b.M = k, m
		return b
	}
	return &consMsg{K: k, M: m, home: p}
}

func (t *consTransport) Send(to proto.PID, m consensus.Msg) {
	t.p.rt.Send(to, t.p.box(t.k, m))
}

func (t *consTransport) Multicast(m consensus.Msg) {
	t.p.rt.Multicast(t.p.box(t.k, m))
}
