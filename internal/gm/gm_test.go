package gm

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// fakeApp is a scripted gm.App that records lifecycle events and serves a
// trivial delivered-counter state.
type fakeApp struct {
	id        proto.PID
	unstable  []UnstableMsg
	views     []View
	flushes   [][]UnstableMsg
	excluded  int
	synced    []View
	delivered uint64
}

func (a *fakeApp) Unstable() []UnstableMsg { return a.unstable }

func (a *fakeApp) InstallView(v View, flush []UnstableMsg) {
	a.views = append(a.views, v)
	a.flushes = append(a.flushes, flush)
	a.delivered += uint64(len(flush))
}

func (a *fakeApp) Excluded(View) { a.excluded++ }

func (a *fakeApp) SyncRequest() uint64 { return a.delivered }

func (a *fakeApp) SyncPayload(after uint64) any { return a.delivered - after }

func (a *fakeApp) InstallSync(v View, payload any) {
	a.synced = append(a.synced, v)
	if missing, ok := payload.(uint64); ok {
		a.delivered += missing
	}
}

// gmHandler adapts a GM to proto.Handler for standalone testing.
type gmHandler struct {
	g       *GM
	initial View
}

func (h *gmHandler) Init() { h.g.Start(h.initial) }

func (h *gmHandler) OnMessage(from proto.PID, payload any) {
	if !h.g.OnMessage(from, payload) {
		panic("gmHandler: unexpected payload")
	}
}

func (h *gmHandler) OnSuspect(p proto.PID) { h.g.OnSuspect(p) }
func (h *gmHandler) OnTrust(p proto.PID)   { h.g.OnTrust(p) }

type rig struct {
	eng  *sim.Engine
	sys  *proto.System
	gms  []*GM
	apps []*fakeApp
}

func newRig(n int, qos fd.QoS, initial []proto.PID) *rig {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(n), qos, sim.NewRand(1))
	r := &rig{eng: eng, sys: sys, gms: make([]*GM, n), apps: make([]*fakeApp, n)}
	if initial == nil {
		initial = make([]proto.PID, n)
		for i := range initial {
			initial[i] = proto.PID(i)
		}
	}
	for i := 0; i < n; i++ {
		app := &fakeApp{id: proto.PID(i)}
		g := New(sys.Proc(proto.PID(i)), Config{})
		g.SetApp(app)
		r.gms[i] = g
		r.apps[i] = app
		sys.SetHandler(proto.PID(i), &gmHandler{g: g, initial: View{ID: 1, Members: initial}})
	}
	sys.Start()
	return r
}

func (r *rig) run(d time.Duration) { r.eng.RunUntil(sim.Time(0).Add(d)) }

func ms(v float64) sim.Time { return sim.Time(0).Add(sim.Millis(v)) }

func TestInitialViewInstalled(t *testing.T) {
	r := newRig(3, fd.QoS{}, nil)
	r.run(time.Second)
	for i, g := range r.gms {
		v := g.View()
		if v.ID != 1 || len(v.Members) != 3 {
			t.Fatalf("p%d view = %v", i, v)
		}
		if !g.Normal() || !g.IsMember() {
			t.Fatalf("p%d not in normal member state", i)
		}
	}
}

func TestCrashExcludesMemberEverywhere(t *testing.T) {
	r := newRig(3, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(2, ms(10))
	r.run(time.Second)
	for i := 0; i < 2; i++ {
		v := r.gms[i].View()
		if v.ID != 2 || v.Contains(2) {
			t.Fatalf("p%d view = %v, want v2 without p2", i, v)
		}
	}
	// Survivors saw exactly one install each.
	for i := 0; i < 2; i++ {
		if len(r.apps[i].views) != 1 {
			t.Fatalf("p%d installs = %d, want 1", i, len(r.apps[i].views))
		}
	}
}

func TestViewAgreement(t *testing.T) {
	// Multiple overlapping suspicions: all members see the same sequence
	// of views.
	r := newRig(5, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(4, ms(10))
	r.sys.CrashAt(3, ms(12))
	r.run(2 * time.Second)
	var ref []View
	for i := 0; i < 3; i++ {
		views := r.apps[i].views
		if ref == nil {
			ref = views
			continue
		}
		if !reflect.DeepEqual(viewsOf(views), viewsOf(ref)) {
			t.Fatalf("view sequences differ: %v vs %v", views, ref)
		}
	}
	final := r.gms[0].View()
	if final.Contains(3) || final.Contains(4) {
		t.Fatalf("final view %v still contains crashed members", final)
	}
	if final.Primary() != 0 {
		t.Fatalf("sequencer = %d, want 0", final.Primary())
	}
}

func viewsOf(vs []View) [][]proto.PID {
	out := make([][]proto.PID, len(vs))
	for i, v := range vs {
		out[i] = v.Members
	}
	return out
}

func TestMemberOrderPreservedAcrossChanges(t *testing.T) {
	// Excluding the middle member keeps the others' relative order, so
	// the sequencer does not move.
	r := newRig(3, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(1, ms(10))
	r.run(time.Second)
	v := r.gms[0].View()
	want := []proto.PID{0, 2}
	if !reflect.DeepEqual(v.Members, want) {
		t.Fatalf("members = %v, want %v", v.Members, want)
	}
}

func TestInstantMistakeExcludesAndRejoins(t *testing.T) {
	// TM = 0: even an instantaneous wrong suspicion excludes its target —
	// the view change "reacts the same way as to a real crash" (§4.4) —
	// and the target rejoins immediately, since the mistake is already
	// over. Net cost: an exclusion change plus a join change, the Fig. 6
	// TM=0 per-mistake price.
	r := newRig(3, fd.QoS{}, nil)
	r.eng.Schedule(ms(10), func() { r.sys.FDs.InjectMistake(1, 0, 0) })
	r.run(time.Second)
	v := r.gms[1].View()
	if len(v.Members) != 3 {
		t.Fatalf("view = %v, want all members back after the rejoin", v)
	}
	if v.ID < 3 {
		t.Fatalf("view ID = %d, want >= 3 (exclusion + join)", v.ID)
	}
	if r.apps[0].excluded != 1 {
		t.Fatalf("p0 excluded %d times, want exactly 1", r.apps[0].excluded)
	}
	if len(r.apps[0].synced) != 1 {
		t.Fatalf("p0 synced %d times, want 1", len(r.apps[0].synced))
	}
	// The rejoined ex-sequencer sits at the back; p1 now sequences.
	if v.Primary() != 1 || v.Members[2] != 0 {
		t.Fatalf("members = %v, want [1 2 0]", v.Members)
	}
}

func TestLongMistakeExcludesAndRejoins(t *testing.T) {
	r := newRig(3, fd.QoS{}, nil)
	r.eng.Schedule(ms(10), func() { r.sys.FDs.InjectMistake(1, 2, 80*time.Millisecond) })
	r.run(2 * time.Second)
	// p2 was excluded once and rejoined via InstallSync.
	if r.apps[2].excluded != 1 {
		t.Fatalf("p2 excluded %d times, want 1", r.apps[2].excluded)
	}
	if len(r.apps[2].synced) != 1 {
		t.Fatalf("p2 synced %d times, want 1", len(r.apps[2].synced))
	}
	final := r.gms[0].View()
	if !final.Contains(2) {
		t.Fatalf("final view %v does not contain the rejoined p2", final)
	}
	// Rejoined members go to the back: sequencer unchanged.
	if final.Primary() != 0 {
		t.Fatalf("sequencer = %d, want 0", final.Primary())
	}
	if final.Members[len(final.Members)-1] != 2 {
		t.Fatalf("members = %v, want p2 appended last", final.Members)
	}
}

func TestFlushUnionReachesInstall(t *testing.T) {
	// A message known only to p1 (unstable) must appear in everyone's
	// install flush.
	r := newRig(3, fd.QoS{TD: 5 * time.Millisecond}, nil)
	um := UnstableMsg{ID: proto.MsgID{Origin: 1, Seq: 9}, Seq: -1, Body: "orphan"}
	r.apps[1].unstable = []UnstableMsg{um}
	r.sys.CrashAt(2, ms(10))
	r.run(time.Second)
	for i := 0; i < 2; i++ {
		if len(r.apps[i].flushes) != 1 {
			t.Fatalf("p%d flush sets = %d, want 1", i, len(r.apps[i].flushes))
		}
		flush := r.apps[i].flushes[0]
		found := false
		for _, got := range flush {
			if got.ID == um.ID && got.Body == "orphan" {
				found = true
			}
		}
		if !found {
			t.Fatalf("p%d install flush %v missing the orphan message", i, flush)
		}
	}
}

func TestFlushPrefersSequencedEntry(t *testing.T) {
	// Two flushes mention the same ID; the one with a sequence number
	// must win the merge, and sequenced entries precede unsequenced.
	g := &GM{flushes: map[proto.PID][]UnstableMsg{
		0: {{ID: proto.MsgID{Origin: 0, Seq: 1}, Seq: -1, Body: "x"}},
		1: {{ID: proto.MsgID{Origin: 0, Seq: 1}, Seq: 4, Body: "x"},
			{ID: proto.MsgID{Origin: 2, Seq: 7}, Seq: -1, Body: "y"}},
	}}
	merged := g.mergeFlushes()
	if len(merged) != 2 {
		t.Fatalf("merged = %v, want 2 entries", merged)
	}
	if merged[0].Seq != 4 {
		t.Fatalf("first entry = %+v, want the sequenced one", merged[0])
	}
	if merged[1].Seq != -1 || merged[1].Body != "y" {
		t.Fatalf("second entry = %+v, want the unsequenced one", merged[1])
	}
}

func TestPathologicalDetectorCannotEvictMajority(t *testing.T) {
	// p1 wrongly suspects both peers for 300 ms: honoring its exclusion
	// demands would evict a majority, so the primary-partition fallback
	// keeps the group live (at the price of churn). Once the mistake
	// ends, everyone converges on a common view containing a majority.
	r := newRig(3, fd.QoS{}, nil)
	r.eng.Schedule(ms(10), func() {
		r.sys.FDs.InjectMistake(1, 0, 300*time.Millisecond)
		r.sys.FDs.InjectMistake(1, 2, 300*time.Millisecond)
	})
	r.run(5 * time.Second)
	v0 := r.gms[0].View()
	if len(v0.Members) < 2 {
		t.Fatalf("final view %v lost the primary partition", v0)
	}
	for i := 1; i < 3; i++ {
		if !r.gms[i].IsMember() {
			continue // a process may legitimately end excluded mid-rejoin
		}
		if !reflect.DeepEqual(r.gms[i].View(), v0) {
			t.Fatalf("p%d view %v != p0 view %v after settling", i, r.gms[i].View(), v0)
		}
	}
}

func TestJoinRetryUntilWelcomed(t *testing.T) {
	// A process outside the initial view joins via the retry loop.
	r := newRig(3, fd.QoS{}, []proto.PID{0, 1})
	r.run(2 * time.Second)
	v := r.gms[0].View()
	if !v.Contains(2) {
		t.Fatalf("view %v never admitted p2", v)
	}
	if len(r.apps[2].synced) != 1 {
		t.Fatalf("p2 synced %d times, want 1", len(r.apps[2].synced))
	}
	if r.gms[2].View().ID != r.gms[0].View().ID {
		t.Fatalf("joiner view %v != member view %v", r.gms[2].View(), r.gms[0].View())
	}
}

func TestStartValidation(t *testing.T) {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(1), fd.QoS{}, sim.NewRand(1))
	g := New(sys.Proc(0), Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Start before SetApp did not panic")
			}
		}()
		g.Start(View{ID: 1, Members: []proto.PID{0}})
	}()
	g.SetApp(&fakeApp{})
	g.Start(View{ID: 1, Members: []proto.PID{0}})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Start did not panic")
			}
		}()
		g.Start(View{ID: 1, Members: []proto.PID{0}})
	}()
}

func TestViewHelpers(t *testing.T) {
	v := View{ID: 3, Members: []proto.PID{2, 0, 4}}
	if !v.Contains(4) || v.Contains(1) {
		t.Fatal("Contains broken")
	}
	if v.Primary() != 2 {
		t.Fatalf("Primary = %d, want 2 (first in order)", v.Primary())
	}
	c := v.clone()
	c.Members[0] = 9
	if v.Members[0] != 2 {
		t.Fatal("clone shares backing array")
	}
}

func TestConcurrentSuspicionsMergeIntoOneChange(t *testing.T) {
	// Both survivors suspect the crashed process at the same instant
	// (same TD): one view change, not two.
	r := newRig(3, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(0, ms(10))
	r.run(time.Second)
	for i := 1; i < 3; i++ {
		if len(r.apps[i].views) != 1 {
			t.Fatalf("p%d installed %d views, want 1", i, len(r.apps[i].views))
		}
		if got := r.gms[i].View(); got.ID != 2 || got.Primary() != 1 {
			t.Fatalf("p%d view = %v, want v2 led by p1", i, got)
		}
	}
}

func TestViewString(t *testing.T) {
	v := View{ID: 3, Members: []proto.PID{0, 2, 4}}
	if got := v.String(); got != "v3[0 2 4]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestStaleFlushIgnored(t *testing.T) {
	// A flush for a long-installed change must be dropped silently.
	r := newRig(3, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(2, ms(10))
	r.run(time.Second)
	g := r.gms[0]
	before := g.View()
	g.OnMessage(1, MsgFlush{VC: 0, Unstable: nil}) // ancient change
	if got := g.View(); !reflect.DeepEqual(got, before) {
		t.Fatalf("stale flush changed the view: %v -> %v", before, got)
	}
}

func TestFutureChangeMessagesBufferedAndReplayed(t *testing.T) {
	// Two back-to-back crashes: messages for change #2 can reach a
	// member before it has installed view 2; they must be buffered and
	// replayed, not lost (the replayFuture path).
	r := newRig(5, fd.QoS{TD: 5 * time.Millisecond}, nil)
	r.sys.CrashAt(4, ms(10))
	r.sys.CrashAt(3, ms(11))
	r.run(2 * time.Second)
	// All survivors agree on the final view, which excludes both.
	final := r.gms[0].View()
	if final.Contains(3) || final.Contains(4) {
		t.Fatalf("final view %v contains crashed members", final)
	}
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(r.gms[i].View(), final) {
			t.Fatalf("p%d view %v != %v", i, r.gms[i].View(), final)
		}
	}
}
