// Package gm implements the view-synchronous group membership service the
// paper's GM atomic broadcast relies on (§4.3, after Malloth & Schiper,
// "View synchronous communication in large scale distributed systems").
//
// The service maintains the view — the ordered list of processes believed
// correct — and guarantees that members see the same sequence of views
// (view agreement), deliver the same set of messages in each view (view
// synchrony) and deliver each message in one view (same view delivery).
//
// A view change follows the paper's protocol exactly:
//
//  1. A process that suspects a member multicasts a "view change" message.
//  2. As soon as a process learns about the change (the view-change
//     message, someone's flush, or a consensus message), it multicasts its
//     unstable messages to all members.
//  3. When a process has the flush of every member it does not suspect —
//     call that set P, required to be a majority (primary partition) — it
//     computes the union U of the unstable messages received and proposes
//     (P, U) to a consensus instance run among the old view's members.
//  4. The decision (P′, U′) is applied: deliver the messages of U′ not yet
//     delivered, in a deterministic order, and install P′ as the next
//     view.
//
// Joins run through the same protocol: a member that accepts a join
// request proposes a membership including the joiner, and after the
// install the joiner receives the new view together with an
// application-defined state snapshot (the paper's state transfer for
// wrongly excluded processes). Processes excluded from a view miss all
// later views until they rejoin.
//
// The consensus instance benefits from the round-1 fast path: the first
// member proposes its own (P, U) without an estimate exchange, giving the
// paper's view-change cost of 5 communication steps, about n multicasts
// and n unicasts.
package gm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/consensus"
	"repro/internal/proto"
)

// View is one membership epoch. Members are ordered: survivors keep their
// relative order across changes and joiners are appended, so Members[0] —
// the paper's sequencer — only changes when it is excluded.
type View struct {
	ID      uint64
	Members []proto.PID
}

// Contains reports whether p is a member of the view.
func (v View) Contains(p proto.PID) bool {
	for _, m := range v.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Primary returns the first member — the fixed sequencer of the GM atomic
// broadcast. It panics on an empty view, which is never installed.
func (v View) Primary() proto.PID { return v.Members[0] }

// String formats the view as "v3{0 2 4}".
func (v View) String() string { return fmt.Sprintf("v%d%v", v.ID, v.Members) }

// clone returns a deep copy; views are shared with the application.
func (v View) clone() View {
	out := View{ID: v.ID, Members: make([]proto.PID, len(v.Members))}
	copy(out.Members, v.Members)
	return out
}

// UnstableMsg is one element of a flush: a received message that is not
// known to be stable, with its sequence number if one is known (Seq < 0
// otherwise).
type UnstableMsg struct {
	ID   proto.MsgID
	Seq  int64
	Body any
}

// App is the view-synchronous application sitting on top of the service —
// the fixed-sequencer atomic broadcast in this repository.
type App interface {
	// Unstable snapshots the local flush set.
	Unstable() []UnstableMsg
	// InstallView applies a decided view change at a surviving member:
	// deliver every message of flush not yet delivered, in the given
	// order, then switch to v.
	InstallView(v View, flush []UnstableMsg)
	// Excluded tells the application it was dropped from the membership;
	// it should queue work until InstallSync. lastView is the last view
	// it belonged to.
	Excluded(lastView View)
	// SyncRequest returns the number of messages delivered locally, sent
	// with join requests so a member can compute the missing suffix.
	SyncRequest() uint64
	// SyncPayload builds the state-transfer snapshot for a joiner that
	// has delivered afterCount messages.
	SyncPayload(afterCount uint64) any
	// InstallSync applies a state snapshot and enters view v — the
	// joiner-side counterpart of InstallView.
	InstallSync(v View, payload any)
}

// Config parameterises the membership service.
type Config struct {
	// JoinRetry is the interval at which an excluded process re-sends its
	// join request. Zero selects the default (20 ms — several round trips
	// of the paper's network model; rejoining too eagerly would understate
	// the exclusion cost the paper charges to the GM algorithm).
	JoinRetry time.Duration
	// StaleTimeout is how long a member may stay behind buffered
	// future-view traffic, with no view installed meanwhile, before it
	// concludes the group reconfigured without it — it was partitioned
	// away and excluded in absentia — and rejoins through the join
	// protocol. A process excluded while reachable learns its exclusion
	// from the view-change decision it participates in; a partitioned one
	// cannot, and without this probe it would stay wedged in its old view
	// forever after the partition heals. Zero selects 5x JoinRetry.
	StaleTimeout time.Duration
}

const (
	defaultJoinRetry = 20 * time.Millisecond
	// maxExcludedBuffer bounds membership traffic buffered while excluded.
	maxExcludedBuffer = 4096
)

// Message types. They are routed to GM.OnMessage by the embedding
// protocol.
type (
	// MsgViewChange announces that a view change for the view with the
	// given ID has started. Targets lists the suspected processes whose
	// exclusion the initiator demands: every participant removes them
	// from its membership proposal, so a wrong suspicion excludes the
	// suspected process just like a real crash would (§4.4: "the
	// algorithms react to a wrong suspicion the same way as they react
	// to a real crash").
	MsgViewChange struct {
		VC      uint64
		Targets []proto.PID
	}
	// MsgFlush carries a member's unstable messages for a view change.
	MsgFlush struct {
		VC       uint64
		Unstable []UnstableMsg
	}
	// MsgConsensus wraps a consensus message of view change VC.
	MsgConsensus struct {
		VC uint64
		M  consensus.Msg
	}
	// MsgJoinReq is multicast by an excluded process asking back in.
	MsgJoinReq struct {
		P     proto.PID
		After uint64 // messages already delivered (state-transfer base)
	}
	// MsgWelcome hands a joiner its new view plus the state snapshot.
	MsgWelcome struct {
		View    View
		Payload any
	}
)

// proposal is the consensus value of a view change.
type proposal struct {
	Members []proto.PID
	Flush   []UnstableMsg
}

type state int

const (
	stateNormal   state = iota + 1 // member, no change in progress
	stateChanging                  // flush/consensus in progress
	stateExcluded                  // not a member; join loop running
)

// GM is the membership endpoint at one process.
type GM struct {
	rt  proto.Runtime
	cfg Config
	app App

	view    View
	state   state
	started bool

	// Current view change (keyed vc == view.ID).
	flushes      map[proto.PID][]UnstableMsg
	targets      map[proto.PID]bool // exclusion demands for this change
	inst         *consensus.Instance
	prevInst     *consensus.Instance // kept one change for stragglers
	pendingJoins map[proto.PID]uint64

	// Buffered messages for future view changes (we have not installed
	// the views that define their participant sets yet).
	future map[uint64][]futureMsg

	joinTimer proto.Timer
	// Staleness probe: armed while evidence of views beyond ours exists
	// (buffered future membership traffic, or higher-view protocol
	// messages reported through NoteHigherView), it self-excludes a
	// member the group reconfigured around (partition).
	staleTimer  proto.Timer
	staleViewID uint64
	maxSeenView uint64
}

type futureMsg struct {
	from    proto.PID
	payload any
}

// New creates the membership service. SetApp must be called before Start.
func New(rt proto.Runtime, cfg Config) *GM {
	if cfg.JoinRetry <= 0 {
		cfg.JoinRetry = defaultJoinRetry
	}
	if cfg.StaleTimeout <= 0 {
		cfg.StaleTimeout = 5 * cfg.JoinRetry
	}
	return &GM{
		rt:           rt,
		cfg:          cfg,
		flushes:      make(map[proto.PID][]UnstableMsg),
		targets:      make(map[proto.PID]bool),
		pendingJoins: make(map[proto.PID]uint64),
		future:       make(map[uint64][]futureMsg),
	}
}

// SetApp installs the view-synchronous application.
func (g *GM) SetApp(app App) { g.app = app }

// Start installs the initial view. A process outside the initial view
// starts excluded and immediately begins the join loop — this is how the
// crash-steady scenarios model long-ago reconfigurations.
func (g *GM) Start(initial View) {
	if g.app == nil {
		panic("gm: Start before SetApp")
	}
	if g.started {
		panic("gm: started twice")
	}
	g.started = true
	g.view = initial.clone()
	if g.view.Contains(g.rt.ID()) {
		g.state = stateNormal
	} else {
		g.state = stateExcluded
		g.startJoinLoop()
	}
}

// View returns the current view (the last one installed locally).
func (g *GM) View() View { return g.view }

// Normal reports whether the process is a member with no change in
// progress — the condition under which the sequencer protocol runs.
func (g *GM) Normal() bool { return g.state == stateNormal }

// IsMember reports whether the process belongs to its current view.
func (g *GM) IsMember() bool { return g.state != stateExcluded }

// OnMessage consumes membership-related payloads; it returns false for
// payloads that belong to other layers.
func (g *GM) OnMessage(from proto.PID, payload any) bool {
	switch m := payload.(type) {
	case MsgViewChange:
		g.onViewChange(from, m)
	case MsgFlush:
		g.onFlush(from, m)
	case MsgConsensus:
		g.onConsensus(from, m)
	case MsgJoinReq:
		g.onJoinReq(m)
	case MsgWelcome:
		g.onWelcome(m)
	default:
		return false
	}
	return true
}

// OnSuspect feeds a failure-detector suspicion edge: suspicion of a member
// starts a view change targeting it (the paper's trigger), and the
// consensus instance of an in-progress change reacts to coordinator
// suspicion.
func (g *GM) OnSuspect(p proto.PID) {
	switch g.state {
	case stateNormal:
		if g.view.Contains(p) && p != g.rt.ID() {
			g.startChange(p)
		}
	case stateChanging:
		if g.view.Contains(p) && p != g.rt.ID() {
			g.targets[p] = true // affects our proposal if not yet made
		}
		if g.inst != nil {
			g.inst.OnSuspect(p)
		}
		g.tryPropose()
	}
	if g.prevInst != nil {
		g.prevInst.OnSuspect(p)
	}
}

// OnTrust re-evaluates the flush condition: a trusted member re-enters P,
// so its flush may now be required.
func (g *GM) OnTrust(proto.PID) {
	if g.state == stateChanging {
		g.tryPropose()
	}
}

// startChange moves from Normal to Changing: announce (with exclusion
// targets) and flush.
func (g *GM) startChange(targets ...proto.PID) {
	g.rt.Multicast(MsgViewChange{VC: g.view.ID, Targets: targets})
	g.enterFlush()
	for _, p := range targets {
		if g.view.Contains(p) {
			g.targets[p] = true
		}
	}
}

// enterFlush is the "learned about a view change" transition: multicast
// the local unstable messages once.
func (g *GM) enterFlush() {
	if g.state != stateNormal {
		return
	}
	g.state = stateChanging
	g.flushes = make(map[proto.PID][]UnstableMsg)
	g.targets = make(map[proto.PID]bool)
	g.inst = nil
	g.rt.Multicast(MsgFlush{VC: g.view.ID, Unstable: g.app.Unstable()})
}

func (g *GM) onViewChange(from proto.PID, m MsgViewChange) {
	switch {
	case g.state == stateExcluded:
		g.bufferWhileExcluded(m.VC, from, m)
		return
	case m.VC < g.view.ID:
		return // stale
	case m.VC > g.view.ID:
		g.bufferFuture(m.VC, from, m)
	default:
		g.enterFlush()
		for _, p := range m.Targets {
			// A process records exclusion demands against itself too:
			// otherwise a wrongly suspected sequencer — the round-1
			// coordinator of the view-change consensus — would win the
			// fast path with its own full-membership proposal and never
			// be excluded, hiding the cost the paper charges to wrong
			// suspicions.
			if g.view.Contains(p) {
				g.targets[p] = true
			}
		}
		g.tryPropose()
	}
}

func (g *GM) onFlush(from proto.PID, m MsgFlush) {
	switch {
	case g.state == stateExcluded:
		g.bufferWhileExcluded(m.VC, from, m)
		return
	case m.VC < g.view.ID:
		return
	case m.VC > g.view.ID:
		g.bufferFuture(m.VC, from, m)
		return
	}
	g.enterFlush() // no-op if already changing
	if _, dup := g.flushes[from]; !dup {
		g.flushes[from] = m.Unstable
	}
	g.tryPropose()
}

func (g *GM) onConsensus(from proto.PID, m MsgConsensus) {
	switch {
	case g.state == stateExcluded:
		g.bufferWhileExcluded(m.VC, from, m)
		return
	case m.VC < g.view.ID:
		// A straggler's message for an old change: the retained previous
		// instance answers with its decision.
		if g.prevInst != nil && m.VC == g.view.ID-1 {
			g.prevInst.OnMessage(from, m.M)
		}
		return
	case m.VC > g.view.ID:
		g.bufferFuture(m.VC, from, m)
		return
	}
	g.enterFlush()
	g.instance().OnMessage(from, m.M)
}

func (g *GM) bufferFuture(vc uint64, from proto.PID, payload any) {
	g.future[vc] = append(g.future[vc], futureMsg{from: from, payload: payload})
	if g.state != stateExcluded {
		g.armStaleProbe()
	}
}

// NoteHigherView records evidence that views beyond ours exist: the
// application layer saw a protocol message tagged with a higher view
// number. A member mid-change sees those transiently; a partitioned-away
// member sees nothing else, which is what the staleness probe detects.
func (g *GM) NoteHigherView(vc uint64) {
	if g.state == stateExcluded || vc <= g.view.ID {
		return
	}
	if vc > g.maxSeenView {
		g.maxSeenView = vc
	}
	g.armStaleProbe()
}

// armStaleProbe watches a member that is buffering traffic of views it
// has not installed. One probe is armed at a time.
func (g *GM) armStaleProbe() {
	if g.staleTimer != nil {
		return
	}
	g.staleViewID = g.view.ID
	g.staleTimer = g.rt.After(g.cfg.StaleTimeout, g.staleCheck)
}

// staleCheck fires one StaleTimeout after future-view traffic appeared.
// If a view was installed meanwhile, the member is making progress and
// the probe re-arms; if not — a full timeout behind the group with no
// install — the group demonstrably reconfigured without us while we could
// not communicate, so conclude exclusion and rejoin.
func (g *GM) staleCheck() {
	g.staleTimer = nil
	if g.state == stateExcluded {
		return
	}
	stale := g.maxSeenView > g.view.ID
	for vc := range g.future {
		if vc > g.view.ID {
			stale = true
			break
		}
	}
	if !stale {
		return
	}
	if g.view.ID != g.staleViewID {
		g.armStaleProbe() // installs are happening; keep watching
		return
	}
	g.selfExclude()
}

// selfExclude is the partition-side counterpart of an exclusion decided
// in absentia: abandon any change in progress, tell the application, and
// enter the join loop — from here the rejoin path is identical to a
// wrongly excluded process's.
func (g *GM) selfExclude() {
	oldView := g.view
	g.inst = nil
	g.prevInst = nil
	g.flushes = make(map[proto.PID][]UnstableMsg)
	g.targets = make(map[proto.PID]bool)
	g.state = stateExcluded
	g.app.Excluded(oldView)
	g.startJoinLoop()
}

// bufferWhileExcluded retains membership traffic an excluded process
// cannot act on yet: if its Welcome admits it to the view this traffic
// belongs to, the replay lets it take part in an already-running change —
// without this, the group could wait forever for the rejoined member's
// flush. The buffer is bounded; join retries recover from overflow.
func (g *GM) bufferWhileExcluded(vc uint64, from proto.PID, payload any) {
	if vc < g.view.ID {
		return
	}
	total := 0
	for _, msgs := range g.future {
		total += len(msgs)
	}
	if total >= maxExcludedBuffer {
		return
	}
	g.bufferFuture(vc, from, payload)
}

// replayFuture feeds back messages buffered for the now-current change.
func (g *GM) replayFuture() {
	msgs, ok := g.future[g.view.ID]
	if !ok {
		return
	}
	delete(g.future, g.view.ID)
	for _, fm := range msgs {
		switch m := fm.payload.(type) {
		case MsgViewChange:
			g.onViewChange(fm.from, m)
		case MsgFlush:
			g.onFlush(fm.from, m)
		case MsgConsensus:
			g.onConsensus(fm.from, m)
		}
	}
}

// instance lazily creates the consensus instance of the current change.
// Participants are the old view's members in view order, so the round-1
// coordinator is the sequencer.
func (g *GM) instance() *consensus.Instance {
	if g.inst != nil {
		return g.inst
	}
	vc := g.view.ID
	g.inst = consensus.New(consensus.Config{
		Self:         g.rt.ID(),
		Participants: g.view.Members,
		FirstCoord:   g.view.Members[0],
		Suspects:     g.rt.Suspects,
		Decide:       func(v consensus.Value, _ proto.PID) { g.onDecide(vc, v) },
	}, gmTransport{g: g, vc: vc})
	return g.inst
}

// tryPropose proposes (P, U) once the flush of every non-suspected member
// has arrived and P is a majority of the view.
func (g *GM) tryPropose() {
	if g.state != stateChanging {
		return
	}
	self := g.rt.ID()
	majority := len(g.view.Members)/2 + 1
	// Survivors: members neither suspected nor targeted for exclusion.
	// If honoring the targets would destroy the primary partition (a
	// pathological detector demanding a majority's eviction), fall back
	// to suspicion only — progress beats spite.
	build := func(honorTargets bool) []proto.PID {
		var out []proto.PID
		for _, m := range g.view.Members {
			if m != self && g.rt.Suspects(m) {
				continue
			}
			if honorTargets && g.targets[m] {
				continue // targets bind even against ourselves
			}
			out = append(out, m)
		}
		return out
	}
	p := build(true)
	if len(p) < majority {
		p = build(false)
	}
	if len(p) < majority {
		return // primary-partition requirement: wait for trust edges
	}
	// The flush-completeness rule still counts targeted-but-trusted
	// members: they are alive, so their unstable messages must reach U.
	for _, m := range g.view.Members {
		if m != self && g.rt.Suspects(m) {
			continue
		}
		if _, ok := g.flushes[m]; !ok {
			return // still missing a flush we need
		}
	}
	// Joiners are appended in PID order after the survivors.
	joiners := make([]proto.PID, 0, len(g.pendingJoins))
	for j := range g.pendingJoins {
		if !g.view.Contains(j) {
			joiners = append(joiners, j)
		}
	}
	sort.Slice(joiners, func(i, k int) bool { return joiners[i] < joiners[k] })
	members := append(append([]proto.PID{}, p...), joiners...)
	g.instance().Start(proposal{Members: members, Flush: g.mergeFlushes()})
}

// mergeFlushes unions all received flush sets, preferring entries whose
// sequence number is known, in the canonical delivery order: sequenced
// messages by sequence number, then unsequenced ones by ID.
func (g *GM) mergeFlushes() []UnstableMsg {
	merged := make(map[proto.MsgID]UnstableMsg)
	for _, set := range g.flushes {
		for _, um := range set {
			prev, ok := merged[um.ID]
			if !ok || (prev.Seq < 0 && um.Seq >= 0) {
				merged[um.ID] = um
			}
		}
	}
	out := make([]UnstableMsg, 0, len(merged))
	for _, um := range merged {
		out = append(out, um)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Seq >= 0 && b.Seq >= 0:
			return a.Seq < b.Seq
		case a.Seq >= 0:
			return true
		case b.Seq >= 0:
			return false
		default:
			return a.ID.Less(b.ID)
		}
	})
	return out
}

// onDecide applies the decided view change.
func (g *GM) onDecide(vc uint64, v consensus.Value) {
	if vc != g.view.ID || g.state != stateChanging {
		return // decision of a change we already applied
	}
	dec, ok := v.(proposal)
	if !ok {
		panic(fmt.Sprintf("gm: decision of unexpected type %T", v))
	}
	self := g.rt.ID()
	oldView := g.view
	newView := View{ID: g.view.ID + 1, Members: dec.Members}

	// Retire the instance: keep it one generation for stragglers.
	g.prevInst = g.inst
	g.inst = nil
	g.flushes = make(map[proto.PID][]UnstableMsg)

	if !newView.Contains(self) {
		// Wrongly excluded (or leaving): miss this and all later views
		// until rejoin. The local delivered state freezes here.
		g.view = newView.clone() // remember the ID for join addressing
		g.state = stateExcluded
		g.app.Excluded(oldView)
		g.startJoinLoop()
		return
	}

	g.view = newView.clone()
	g.state = stateNormal
	g.app.InstallView(newView.clone(), dec.Flush)

	// Welcome new members: the first surviving old member sends each
	// joiner the view and its state snapshot.
	var welcomer proto.PID = -1
	for _, m := range newView.Members {
		if oldView.Contains(m) {
			welcomer = m
			break
		}
	}
	if welcomer == self {
		for _, m := range newView.Members {
			if oldView.Contains(m) {
				continue
			}
			after := g.pendingJoins[m]
			g.rt.Send(m, MsgWelcome{View: newView.clone(), Payload: g.app.SyncPayload(after)})
		}
	}
	for _, m := range newView.Members {
		delete(g.pendingJoins, m)
	}

	g.replayFuture()
	if g.state != stateNormal {
		return
	}
	// Residual suspicions or outstanding joins start the next change.
	for _, m := range g.view.Members {
		if m != self && g.rt.Suspects(m) {
			g.startChange()
			return
		}
	}
	if len(g.pendingJoins) > 0 {
		g.startChange()
	}
}

// onJoinReq records a join request and starts a view change for it. While
// a change is in progress the request is recorded and handled at install.
func (g *GM) onJoinReq(m MsgJoinReq) {
	if g.state == stateExcluded {
		return
	}
	if g.view.Contains(m.P) {
		// The joiner is in the view but clearly does not know it: its
		// Welcome was lost with a crashed welcomer. Any member can repair
		// that by re-welcoming. Duplicates collapse at the joiner.
		if m.P != g.rt.ID() {
			g.rt.Send(m.P, MsgWelcome{View: g.view.clone(), Payload: g.app.SyncPayload(m.After)})
		}
		return
	}
	if g.rt.Suspects(m.P) {
		return // the mistake persists; the joiner will retry
	}
	g.pendingJoins[m.P] = m.After
	if g.state == stateNormal {
		g.startChange()
	}
}

// onWelcome completes a rejoin at the excluded process.
func (g *GM) onWelcome(m MsgWelcome) {
	if g.state != stateExcluded || m.View.ID <= g.view.ID || !m.View.Contains(g.rt.ID()) {
		return
	}
	if g.joinTimer != nil {
		g.joinTimer.Cancel()
		g.joinTimer = nil
	}
	g.view = m.View.clone()
	g.state = stateNormal
	for vc := range g.future {
		if vc < g.view.ID {
			delete(g.future, vc)
		}
	}
	g.app.InstallSync(m.View.clone(), m.Payload)
	g.replayFuture()
}

// startJoinLoop multicasts join requests until welcomed back.
func (g *GM) startJoinLoop() {
	g.sendJoin()
	var tick func()
	tick = func() {
		if g.state != stateExcluded {
			return
		}
		g.sendJoin()
		g.joinTimer = g.rt.After(g.cfg.JoinRetry, tick)
	}
	g.joinTimer = g.rt.After(g.cfg.JoinRetry, tick)
}

func (g *GM) sendJoin() {
	g.rt.Multicast(MsgJoinReq{P: g.rt.ID(), After: g.app.SyncRequest()})
}

// gmTransport adapts the runtime to the view change's consensus instance.
type gmTransport struct {
	g  *GM
	vc uint64
}

func (t gmTransport) Send(to proto.PID, m consensus.Msg) {
	t.g.rt.Send(to, MsgConsensus{VC: t.vc, M: m})
}

func (t gmTransport) Multicast(m consensus.Msg) {
	t.g.rt.Multicast(MsgConsensus{VC: t.vc, M: m})
}
