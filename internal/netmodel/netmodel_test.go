package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// delivery records one completed delivery for assertions.
type delivery struct {
	to, from int
	payload  any
	at       sim.Time
}

// harness wires a network to a recording deliver function.
type harness struct {
	eng *sim.Engine
	nw  *Network
	got []delivery
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	h.nw = New(h.eng, cfg, func(to, from int, payload any) {
		h.got = append(h.got, delivery{to: to, from: from, payload: payload, at: h.eng.Now()})
	})
	return h
}

func ms(v float64) sim.Time { return sim.Time(0).Add(sim.Millis(v)) }

func (h *harness) deliveriesTo(p int) []delivery {
	var out []delivery
	for _, d := range h.got {
		if d.to == p {
			out = append(out, d)
		}
	}
	return out
}

func TestUnicastTiming(t *testing.T) {
	// λ=1, slot=1: CPU₀ 0→1, wire 1→2, CPU₁ 2→3.
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	if len(h.got) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(h.got))
	}
	if h.got[0].at != ms(3) {
		t.Fatalf("delivered at %v, want 3ms", h.got[0].at)
	}
	if h.got[0].from != 0 || h.got[0].to != 1 || h.got[0].payload != "m" {
		t.Fatalf("delivery = %+v", h.got[0])
	}
}

func TestSenderCPUQueueing(t *testing.T) {
	// Two messages sent back-to-back: the second waits λ on the sender CPU.
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 1, "a")
		h.nw.Send(0, 1, "b")
	})
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	if h.got[0].at != ms(3) || h.got[1].at != ms(4) {
		t.Fatalf("delivered at %v and %v, want 3ms and 4ms", h.got[0].at, h.got[1].at)
	}
	if h.got[0].payload != "a" || h.got[1].payload != "b" {
		t.Fatal("FIFO order violated on sender CPU")
	}
}

func TestWireContention(t *testing.T) {
	// Two senders transmit at once: their messages serialise on the wire.
	h := newHarness(t, DefaultConfig(3))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 2, "from0")
		h.nw.Send(1, 2, "from1")
	})
	h.eng.Run()
	// CPU₀ and CPU₁ both finish at 1; wire serves 1→2 then 2→3; CPU₂
	// serves 2→3 then 3→4.
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	if h.got[0].at != ms(3) || h.got[1].at != ms(4) {
		t.Fatalf("delivered at %v and %v, want 3ms and 4ms", h.got[0].at, h.got[1].at)
	}
	if h.got[0].payload != "from0" {
		t.Fatal("wire order should follow CPU-completion scheduling order")
	}
}

func TestMulticastFansOutInParallel(t *testing.T) {
	// Multicast occupies the wire once; all remote CPUs work in parallel.
	h := newHarness(t, DefaultConfig(5))
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	if len(h.got) != 5 {
		t.Fatalf("got %d deliveries, want 5 (4 remote + self)", len(h.got))
	}
	for _, d := range h.got {
		want := ms(3)
		if d.to == 0 {
			want = ms(0) // local copy is free
		}
		if d.at != want {
			t.Fatalf("delivery to p%d at %v, want %v", d.to, d.at, want)
		}
	}
	c := h.nw.Counters()
	if c.WireSlots != 1 {
		t.Fatalf("multicast used %d wire slots, want 1", c.WireSlots)
	}
	if c.Multicasts != 1 || c.Unicasts != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSelfSendIsLocalAndFree(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(ms(7), func() { h.nw.Send(1, 1, "self") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].at != ms(7) {
		t.Fatalf("self delivery = %+v, want at 7ms", h.got)
	}
	c := h.nw.Counters()
	if c.WireSlots != 0 || c.Unicasts != 0 || c.LocalSends != 1 {
		t.Fatalf("self-send touched network resources: %+v", c)
	}
}

func TestSelfDeliveryDoesNotReenterCaller(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	inCall := true
	reentered := false
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 0, "x")
		inCall = false
	})
	prev := h.nw.deliver
	h.nw.deliver = func(to, from int, payload any) {
		if inCall {
			reentered = true
		}
		prev(to, from, payload)
	}
	h.eng.Run()
	if reentered {
		t.Fatal("self delivery reentered the sending callback")
	}
	if len(h.got) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(h.got))
	}
}

func TestReceiverCPUSharedBetweenDirections(t *testing.T) {
	// p1 sends at t=2.5 while a message into p1 is occupying CPU₁.
	// Incoming: CPU₀ 0→1, wire 1→2, CPU₁ 2→3 (deliver 3).
	// Outgoing from p1 enqueued at t=2.5: CPU₁ is busy until 3, so 3→4;
	// wire 4→5; CPU₀ 5→6 (deliver 6).
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "in") })
	h.eng.Schedule(ms(2.5), func() { h.nw.Send(1, 0, "out") })
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	if h.got[0].at != ms(3) || h.got[1].at != ms(6) {
		t.Fatalf("deliveries at %v and %v, want 3ms and 6ms", h.got[0].at, h.got[1].at)
	}
}

func TestCrashStopsDeliveryButNotInFlightSends(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	// p1 sends at t=0 (in flight after crash), and a message to p1
	// arrives after its crash.
	h.eng.Schedule(0, func() {
		h.nw.Send(1, 2, "fromCrashing") // delivered at 3ms regardless
		h.nw.Send(0, 1, "toCrashing")   // would deliver at 3ms; dropped
	})
	h.eng.Schedule(ms(1.5), func() { h.nw.Crash(1) })
	h.eng.Run()
	if len(h.got) != 1 {
		t.Fatalf("got %d deliveries, want 1: %+v", len(h.got), h.got)
	}
	if h.got[0].to != 2 || h.got[0].payload != "fromCrashing" {
		t.Fatalf("surviving delivery = %+v", h.got[0])
	}
	c := h.nw.Counters()
	if c.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", c.Drops)
	}
}

func TestCrashedProcessCannotSend(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(0, func() { h.nw.Crash(0) })
	h.eng.Schedule(ms(1), func() {
		h.nw.Send(0, 1, "late")
		h.nw.Multicast(0, "late-mc")
	})
	h.eng.Run()
	if len(h.got) != 0 {
		t.Fatalf("crashed process delivered %d messages", len(h.got))
	}
	if c := h.nw.Counters(); c.WireSlots != 0 {
		t.Fatalf("crashed process used the wire: %+v", c)
	}
}

func TestMulticastToCrashedDestination(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	h.eng.Schedule(0, func() { h.nw.Crash(2) })
	h.eng.Schedule(ms(1), func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	// p0 (self) and p1 get it; p2 drops.
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	for _, d := range h.got {
		if d.to == 2 {
			t.Fatal("delivered to crashed process")
		}
	}
}

func TestZeroLambda(t *testing.T) {
	// λ=0 models infinitely fast hosts: only the wire costs time.
	h := newHarness(t, Config{N: 2, Lambda: 0, Slot: time.Millisecond})
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].at != ms(1) {
		t.Fatalf("delivery = %+v, want at 1ms", h.got)
	}
}

func TestLambdaTwo(t *testing.T) {
	// λ=2: CPU₀ 0→2, wire 2→3, CPU₁ 3→5.
	h := newHarness(t, Config{N: 2, Lambda: 2 * time.Millisecond, Slot: time.Millisecond})
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].at != ms(5) {
		t.Fatalf("delivery = %+v, want at 5ms", h.got)
	}
}

func TestThroughputSaturation(t *testing.T) {
	// The wire serves exactly one message per slot. Offered load of 2
	// messages per slot must drain at slot rate: k-th delivery at
	// 2 + k slots (CPU pipeline adds 2ms latency at both ends).
	h := newHarness(t, DefaultConfig(2))
	const msgs = 20
	h.eng.Schedule(0, func() {
		for i := 0; i < msgs; i++ {
			h.nw.Send(0, 1, i)
		}
	})
	h.eng.Run()
	if len(h.got) != msgs {
		t.Fatalf("got %d deliveries, want %d", len(h.got), msgs)
	}
	last := h.got[msgs-1].at
	// Sender CPU releases message k at k+1 ms; the wire is then the
	// bottleneck only if λ < slot. With λ = slot = 1ms the CPU is pacing:
	// message k (0-based) leaves CPU at k+1, wire k+1→k+2, CPU₁ k+2→k+3.
	want := ms(msgs + 2)
	if last != want {
		t.Fatalf("last delivery at %v, want %v", last, want)
	}
}

func TestTraceEventsCoverLifecycle(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	var kinds []TraceKind
	h.nw.SetTrace(func(ev TraceEvent) { kinds = append(kinds, ev.Kind) })
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	want := []TraceKind{TraceSend, TraceWire, TraceDeliver}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceSend.String() != "send" || TraceDrop.String() != "drop" {
		t.Fatal("TraceKind.String misnamed")
	}
	if TraceKind(99).String() == "" {
		t.Fatal("unknown TraceKind should still format")
	}
}

func TestCountersAccumulate(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 1, "u")
		h.nw.Multicast(1, "m")
		h.nw.Send(2, 2, "self")
	})
	h.eng.Run()
	c := h.nw.Counters()
	if c.Unicasts != 1 || c.Multicasts != 1 || c.LocalSends != 2 {
		t.Fatalf("counters = %+v", c)
	}
	if c.WireSlots != 2 {
		t.Fatalf("WireSlots = %d, want 2", c.WireSlots)
	}
	// Deliveries: unicast (1) + multicast to 3 incl. self (3) + self (1).
	if c.Deliveries != 5 {
		t.Fatalf("Deliveries = %d, want 5", c.Deliveries)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cases := map[string]Config{
		"zero N":          {N: 0, Lambda: 1, Slot: 1},
		"negative lambda": {N: 1, Lambda: -1, Slot: 1},
		"negative slot":   {N: 1, Lambda: 1, Slot: -1},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(sim.New(), cfg, func(int, int, any) {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil deliver did not panic")
			}
		}()
		New(sim.New(), DefaultConfig(1), nil)
	}()
}

func TestSingleProcessMulticast(t *testing.T) {
	h := newHarness(t, DefaultConfig(1))
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "solo") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].to != 0 {
		t.Fatalf("deliveries = %+v, want one local", h.got)
	}
	if c := h.nw.Counters(); c.WireSlots != 0 {
		t.Fatal("n=1 multicast should not use the wire")
	}
}

func TestPaperExampleRunTiming(t *testing.T) {
	// The round-trip from Fig. 1 reduced to its first exchange: p0
	// multicasts m (everyone has it at 3ms), p1 unicasts a reply as soon
	// as it receives m. Reply: CPU₁ 3→4, wire 4→5, CPU₀ 5→6.
	h := newHarness(t, DefaultConfig(3))
	h.nw.deliver = func(to, from int, payload any) {
		h.got = append(h.got, delivery{to: to, from: from, payload: payload, at: h.eng.Now()})
		if to == 1 && payload == "m" {
			h.nw.Send(1, 0, "ack")
		}
	}
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	var ackAt sim.Time
	for _, d := range h.got {
		if d.payload == "ack" {
			ackAt = d.at
		}
	}
	if ackAt != ms(6) {
		t.Fatalf("ack delivered at %v, want 6ms", ackAt)
	}
}

// TestTwoProcessMulticastWireTracesConcreteDestination: the wire hop of a
// multicast with exactly one remote destination (N = 2) records that
// destination, not the -1 broadcast marker — every one-destination wire
// occupation traces the same way, whether it came from Send or Multicast.
func TestTwoProcessMulticastWireTracesConcreteDestination(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	var wires []TraceEvent
	h.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceWire {
			wires = append(wires, ev)
		}
	})
	h.nw.Multicast(0, "m")
	h.nw.Send(1, 0, "u")
	h.eng.Run()
	if len(wires) != 2 {
		t.Fatalf("traced %d wire events, want 2", len(wires))
	}
	if wires[0].From != 0 || wires[0].To != 1 {
		t.Fatalf("multicast wire hop traced %d->%d, want 0->1", wires[0].From, wires[0].To)
	}
	if wires[1].From != 1 || wires[1].To != 0 {
		t.Fatalf("unicast wire hop traced %d->%d, want 1->0", wires[1].From, wires[1].To)
	}
}

// TestWiderMulticastWireTracesBroadcastMarker: with more than one remote
// destination the wire hop traces To = -1.
func TestWiderMulticastWireTracesBroadcastMarker(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	var wires []TraceEvent
	h.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceWire {
			wires = append(wires, ev)
		}
	})
	h.nw.Multicast(0, "m")
	h.eng.Run()
	if len(wires) != 1 || wires[0].To != -1 {
		t.Fatalf("3-process multicast wire trace = %+v, want one event with To=-1", wires)
	}
}
