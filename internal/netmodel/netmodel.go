// Package netmodel implements the contention-aware message transmission
// model of the paper's Section 6.1 (after Urbán, Défago, Schiper, "Contention-
// aware metrics for distributed algorithms", IC3N 2000).
//
// Two kinds of resources exist, each serving messages in FIFO order:
//
//   - one CPU resource per process, representing the network controller and
//     networking stack; every message occupies the sender's CPU for λ time
//     units when sent and the receiver's CPU for λ time units when received;
//   - a single network resource shared by all processes, representing an
//     Ethernet-like transmission medium; every message occupies it for
//     exactly one time unit (1 ms in all experiments, as in the paper).
//
// A message from pᵢ to pⱼ therefore uses CPUᵢ (λ), then the wire (1), then
// CPUⱼ (λ), queueing before each stage if the resource is busy. A multicast
// occupies the sender CPU and the wire once and then occupies every
// destination CPU in parallel — the Ethernet broadcast assumption the
// paper's message counts ("1 multicast and about 2n unicasts") rely on.
// Delivery to the sender itself is local and free.
//
// Crashes follow the paper's software-crash semantics: when pᵢ crashes at
// time t, no message passes between pᵢ and CPUᵢ after t — the process
// neither sends nor receives — but messages already handed to CPUᵢ and its
// queues are still transmitted.
//
// Beyond crashes the model supports dynamic environment faults, all
// applied at the wire→destination handoff so the fault-free hot path pays
// a single branch: partitions (SetPartition/ClearPartition — copies
// crossing groups are discarded before the destination CPU) and per-link
// faults (SetLink — probabilistic loss on an independent random stream,
// and extra delay entering the destination CPU).
//
// The three pipeline stages run on the engine's closure-free scheduling
// form (sim.ScheduleMsg): each in-flight message hop is a pooled event
// record carrying (stage, from, to, payload) and dispatching back into
// HandleMsg, so simulating a message allocates nothing — no closures, no
// per-multicast destination slice (those are precomputed per sender in
// New), no per-hop event allocation once the engine's free list is warm.
package netmodel

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Config parameterises the transmission model.
type Config struct {
	// N is the number of processes. It must be at least 1.
	N int
	// Lambda is the CPU occupancy per message send and per message
	// receive (the λ parameter of the paper). λ = 1 ms reproduces every
	// figure of the DSN paper; other values model other environments.
	Lambda time.Duration
	// Slot is the wire occupancy per message: the paper's time unit,
	// 1 ms in all experiments.
	Slot time.Duration
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: λ = 1 time unit, 1 time unit = 1 ms.
func DefaultConfig(n int) Config {
	return Config{N: n, Lambda: time.Millisecond, Slot: time.Millisecond}
}

func (c Config) validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("netmodel: N = %d, need at least 1", c.N)
	case c.Lambda < 0:
		return fmt.Errorf("netmodel: negative Lambda %v", c.Lambda)
	case c.Slot < 0:
		return fmt.Errorf("netmodel: negative Slot %v", c.Slot)
	}
	return nil
}

// DeliverFunc receives a message that completed all three stages. It runs
// at the virtual instant the destination process takes the message off its
// CPU.
type DeliverFunc func(to, from int, payload any)

// TraceKind labels points in a message's lifecycle for observers.
type TraceKind int

// Trace points, in lifecycle order.
const (
	TraceSend    TraceKind = iota + 1 // process hands message to its CPU
	TraceWire                         // message occupies the network
	TraceDeliver                      // destination process receives it
	TraceDrop                         // message discarded: destination crashed, partitioned away, or link loss
)

// String returns the lowercase name of the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceWire:
		return "wire"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent describes one lifecycle point of one message copy.
type TraceEvent struct {
	Kind    TraceKind
	At      sim.Time
	From    int
	To      int // -1 for wire events of multicasts
	Payload any
}

// Pooled is implemented by payloads drawn from a free list. The network
// reference-counts the in-flight copies of a pooled payload — one
// reference per copy that will reach a terminal lifecycle point
// (delivery, crash drop, partition/loss discard) — and releases each
// copy's reference at that point, after the delivery handler and any
// trace observer have returned. A payload whose count reaches zero may
// be reused by its owner, so handlers and observers must not retain it
// past their return. Non-pooled payloads are unaffected.
type Pooled interface {
	// Retain adds n references.
	Retain(n int)
	// Release drops one reference, recycling the payload at zero.
	Release()
}

func retain(payload any, n int) {
	if p, ok := payload.(Pooled); ok {
		p.Retain(n)
	}
}

func release(payload any) {
	if p, ok := payload.(Pooled); ok {
		p.Release()
	}
}

// Discard recycles a pooled payload that was never handed to the
// network — the escape hatch for senders that construct a payload and
// then hit an early return (a crashed-process guard upstream of Send or
// Multicast). Discarding a non-pooled payload is a no-op.
func Discard(payload any) {
	if p, ok := payload.(Pooled); ok {
		p.Retain(1)
		p.Release()
	}
}

// PayloadName renders a trace payload compactly, preferring the
// payload's own String method (protocol wrappers name their inner
// message). It is the canonical payload rendering of every trace
// consumer — the interactive cluster facade and the experiment layer's
// trace export use it, so their formats agree.
func PayloadName(p any) string {
	if s, ok := p.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", p)
}

// Counters aggregates network activity, used by load diagnostics and by
// the FD-vs-GM message-pattern equivalence tests.
type Counters struct {
	Unicasts   uint64 // point-to-point sends handed to a CPU
	Multicasts uint64 // multicast sends handed to a CPU
	WireSlots  uint64 // messages that occupied the network resource
	Deliveries uint64 // completed deliveries (per destination)
	Drops      uint64 // deliveries discarded because the target crashed
	LocalSends uint64 // self-deliveries (no resource usage)
	Lost       uint64 // copies discarded by a partition or a lossy link
}

// Pipeline stage opcodes for the closure-free scheduler. The (a, b)
// record fields hold (from, to); to is -1 on the multicast path, where
// the fan-out destinations come from the precomputed dsts table.
const (
	opSenderCPUDone = iota // sender CPU released the message: reserve the wire
	opWireDone             // wire slot over: fan out into destination CPUs
	opRecvCPUDone          // destination CPU done: deliver or drop
	opLocalDeliver         // zero-cost self-delivery
	opFaultArrive          // link extra delay elapsed: enter the destination CPU
)

// Network simulates the transmission model on top of a sim.Engine.
type Network struct {
	eng     *sim.Engine
	cfg     Config
	deliver DeliverFunc
	trace   func(TraceEvent)

	cpuBusy  []sim.Time // per-process CPU busy-until
	wireBusy sim.Time   // shared network busy-until
	crashed  []bool

	// dsts[p] lists every process except p in ascending order: the
	// multicast fan-out set, computed once instead of per multicast.
	dsts [][]int

	// Dynamic fault state, consulted at the wire→destination handoff only
	// while faults is set, so the fault-free hot path pays one branch.
	faults      bool
	group       []int             // partition labels; nil when no partition
	linkLoss    [][]float64       // per directed link loss probability
	linkDelay   [][]time.Duration // per directed link extra delay
	activeLinks int               // number of links with a non-zero fault
	faultRand   *sim.Rand         // loss stream; lazily defaulted

	counters Counters
}

// New creates a network. deliver must not be nil; it is invoked for every
// completed message. New panics on an invalid configuration — the
// configuration is code, not input.
func New(eng *sim.Engine, cfg Config, deliver DeliverFunc) *Network {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if deliver == nil {
		panic("netmodel: nil deliver callback")
	}
	dsts := make([][]int, cfg.N)
	for p := 0; p < cfg.N; p++ {
		dsts[p] = make([]int, 0, cfg.N-1)
		for q := 0; q < cfg.N; q++ {
			if q != p {
				dsts[p] = append(dsts[p], q)
			}
		}
	}
	return &Network{
		eng:     eng,
		cfg:     cfg,
		deliver: deliver,
		cpuBusy: make([]sim.Time, cfg.N),
		crashed: make([]bool, cfg.N),
		dsts:    dsts,
	}
}

// SetTrace installs an observer invoked at each message lifecycle point.
// Pass nil to remove it. Tracing is meant for tests, examples and the
// trace tool; it has no effect on timing.
func (nw *Network) SetTrace(fn func(TraceEvent)) { nw.trace = fn }

// Counters returns a snapshot of the activity counters.
func (nw *Network) Counters() Counters { return nw.counters }

// N returns the number of processes.
func (nw *Network) N() int { return nw.cfg.N }

// Config returns the model parameters.
func (nw *Network) Config() Config { return nw.cfg }

// Crashed reports whether process p has crashed.
func (nw *Network) Crashed(p int) bool { return nw.crashed[p] }

// Crash marks p as crashed as of the current instant. Messages already on
// p's CPU still go out; nothing is delivered to p from now on. Crashing a
// crashed process is a no-op.
func (nw *Network) Crash(p int) { nw.crashed[p] = true }

// Recover reverses Crash: messages flow to and from p again as of the
// current instant. Recovering a live process is a no-op.
func (nw *Network) Recover(p int) { nw.crashed[p] = false }

// SetFaultRand installs the random stream that decides lossy-link drops.
// Installing it up front keeps loss decisions on an independent stream, so
// a fault-free simulation is bit-identical whether or not the stream was
// installed. If a lossy link is configured without one, a fixed-seed
// default is used.
func (nw *Network) SetFaultRand(r *sim.Rand) { nw.faultRand = r }

// SetPartition splits the processes into isolated groups as of the current
// instant: a message copy whose source and destination are in different
// groups is discarded at the wire→destination handoff (the frame is on the
// medium but the partitioned NIC never receives it), costing the
// destination CPU nothing. A process listed in no group is isolated on its
// own. A partition replaces any previous one; ClearPartition heals it.
// Self-delivery is never partitioned. SetPartition panics on out-of-range
// or duplicated process indices — the configuration is code, not input.
func (nw *Network) SetPartition(groups [][]int) {
	label := make([]int, nw.cfg.N)
	for p := range label {
		label[p] = -(p + 1) // unlisted processes are isolated singletons
	}
	for gi, g := range groups {
		for _, p := range g {
			if p < 0 || p >= nw.cfg.N {
				panic(fmt.Sprintf("netmodel: partition group contains process %d, want 0..%d", p, nw.cfg.N-1))
			}
			if label[p] >= 0 {
				panic(fmt.Sprintf("netmodel: process %d appears in two partition groups", p))
			}
			label[p] = gi
		}
	}
	nw.group = label
	nw.faults = true
}

// ClearPartition heals the current partition, if any.
func (nw *Network) ClearPartition() {
	nw.group = nil
	nw.faults = nw.activeLinks > 0
}

// SetLink installs a fault on the directed link from → to: each message
// copy on the link is independently lost with probability loss, and
// surviving copies enter the destination CPU extraDelay late. Setting both
// to zero clears the link's fault. A new SetLink replaces the link's
// previous fault. It panics on invalid arguments.
func (nw *Network) SetLink(from, to int, loss float64, extraDelay time.Duration) {
	switch {
	case from < 0 || from >= nw.cfg.N || to < 0 || to >= nw.cfg.N:
		panic(fmt.Sprintf("netmodel: link %d->%d out of range for N=%d", from, to, nw.cfg.N))
	case from == to:
		panic("netmodel: self links carry local deliveries and cannot fault")
	case loss < 0 || loss > 1:
		panic(fmt.Sprintf("netmodel: link loss probability %v outside [0,1]", loss))
	case extraDelay < 0:
		panic(fmt.Sprintf("netmodel: negative link delay %v", extraDelay))
	}
	if nw.linkLoss == nil {
		nw.linkLoss = make([][]float64, nw.cfg.N)
		nw.linkDelay = make([][]time.Duration, nw.cfg.N)
		for p := 0; p < nw.cfg.N; p++ {
			nw.linkLoss[p] = make([]float64, nw.cfg.N)
			nw.linkDelay[p] = make([]time.Duration, nw.cfg.N)
		}
	}
	was := nw.linkLoss[from][to] != 0 || nw.linkDelay[from][to] != 0
	now := loss != 0 || extraDelay != 0
	nw.linkLoss[from][to] = loss
	nw.linkDelay[from][to] = extraDelay
	switch {
	case now && !was:
		nw.activeLinks++
	case was && !now:
		nw.activeLinks--
	}
	if loss > 0 && nw.faultRand == nil {
		nw.faultRand = sim.NewRand(1)
	}
	nw.faults = nw.group != nil || nw.activeLinks > 0
}

// reachable reports whether a copy from `from` may reach `to` under the
// current partition.
func (nw *Network) reachable(from, to int) bool {
	return nw.group == nil || nw.group[from] == nw.group[to]
}

func (nw *Network) emit(kind TraceKind, at sim.Time, from, to int, payload any) {
	if nw.trace != nil {
		nw.trace(TraceEvent{Kind: kind, At: at, From: from, To: to, Payload: payload})
	}
}

// Send transmits payload from process `from` to process `to` through the
// full CPU→wire→CPU pipeline. Sending to self delivers locally at the
// current instant with no resource usage. Sends from a crashed process are
// ignored.
func (nw *Network) Send(from, to int, payload any) {
	if nw.crashed[from] {
		Discard(payload)
		return
	}
	retain(payload, 1)
	if from == to {
		nw.localDeliver(from, payload)
		return
	}
	nw.counters.Unicasts++
	nw.emit(TraceSend, nw.eng.Now(), from, to, payload)
	nw.throughCPU(from, to, payload)
}

// Multicast transmits payload from process `from` to every process,
// including `from` itself. The sender CPU and the wire are occupied once;
// every remote destination CPU is occupied in parallel. The local copy is
// delivered immediately at no cost. Multicasts from a crashed process are
// ignored.
func (nw *Network) Multicast(from int, payload any) {
	if nw.crashed[from] {
		Discard(payload)
		return
	}
	// One reference for the local copy plus one per remote destination:
	// each copy reaches exactly one terminal point.
	retain(payload, 1+len(nw.dsts[from]))
	nw.counters.Multicasts++
	nw.emit(TraceSend, nw.eng.Now(), from, -1, payload)
	nw.localDeliver(from, payload)
	if nw.cfg.N == 1 {
		return
	}
	nw.throughCPU(from, -1, payload)
}

// HandleMsg advances one in-flight message to its next pipeline stage. It
// implements sim.MsgHandler; a and b carry (from, to).
func (nw *Network) HandleMsg(op uint8, a, b int, payload any) {
	switch op {
	case opSenderCPUDone:
		nw.throughWire(a, b, payload)
	case opWireDone:
		if b >= 0 {
			nw.arrive(b, a, payload)
		} else {
			for _, dst := range nw.dsts[a] {
				nw.arrive(dst, a, payload)
			}
		}
	case opRecvCPUDone:
		nw.deliverAt(b, a, payload)
	case opLocalDeliver:
		nw.deliverLocal(a, payload)
	case opFaultArrive:
		nw.intoCPU(b, a, payload)
	default:
		panic(fmt.Sprintf("netmodel: unknown pipeline op %d", op))
	}
}

// localDeliver schedules a zero-cost self-delivery at the current instant.
// It still goes through the event queue so that the delivery handler never
// reenters the caller.
func (nw *Network) localDeliver(p int, payload any) {
	nw.counters.LocalSends++
	nw.eng.AfterMsg(0, nw, opLocalDeliver, p, p, payload)
}

// deliverLocal completes a self-delivery, honouring a crash that happened
// between the send and this instant.
func (nw *Network) deliverLocal(p int, payload any) {
	if nw.crashed[p] {
		nw.counters.Drops++
		nw.emit(TraceDrop, nw.eng.Now(), p, p, payload)
		release(payload)
		return
	}
	nw.counters.Deliveries++
	nw.emit(TraceDeliver, nw.eng.Now(), p, p, payload)
	nw.deliver(p, p, payload)
	release(payload)
}

// throughCPU occupies the sender's CPU for λ and then hands the message to
// the wire stage. The CPU is FIFO: occupancy accumulates on a busy-until
// horizon. to is -1 for multicasts.
func (nw *Network) throughCPU(from, to int, payload any) {
	start := nw.eng.Now()
	if nw.cpuBusy[from] > start {
		start = nw.cpuBusy[from]
	}
	done := start.Add(nw.cfg.Lambda)
	nw.cpuBusy[from] = done
	nw.eng.ScheduleMsg(done, nw, opSenderCPUDone, from, to, payload)
}

// throughWire occupies the shared network resource for one slot, then fans
// the message out to every destination CPU. The wire is reserved at the
// moment the message leaves the sender CPU, which preserves the FIFO
// arrival order at the medium. to is -1 for multicasts.
func (nw *Network) throughWire(from, to int, payload any) {
	start := nw.eng.Now()
	if nw.wireBusy > start {
		start = nw.wireBusy
	}
	done := start.Add(nw.cfg.Slot)
	nw.wireBusy = done
	nw.counters.WireSlots++
	traceTo := to
	if to < 0 && len(nw.dsts[from]) == 1 {
		// A multicast with a single remote destination (N = 2) traces the
		// concrete destination, as every one-destination wire hop does.
		traceTo = nw.dsts[from][0]
	}
	nw.emit(TraceWire, start, from, traceTo, payload)
	nw.eng.ScheduleMsg(done, nw, opWireDone, from, to, payload)
}

// arrive is the wire→destination handoff, where partitions and link
// faults act: a copy addressed across a partition or lost on a lossy link
// is discarded before it occupies the destination CPU, and a link's extra
// delay postpones the CPU entry. Fault-free networks skip straight to
// intoCPU on one branch. Destinations are visited in fixed order, so the
// loss stream's draws are deterministic.
func (nw *Network) arrive(dst, from int, payload any) {
	if nw.faults {
		if !nw.reachable(from, dst) {
			nw.lose(from, dst, payload)
			return
		}
		if nw.linkLoss != nil {
			if loss := nw.linkLoss[from][dst]; loss > 0 && nw.faultRand.Float64() < loss {
				nw.lose(from, dst, payload)
				return
			}
			if d := nw.linkDelay[from][dst]; d > 0 {
				nw.eng.AfterMsg(d, nw, opFaultArrive, from, dst, payload)
				return
			}
		}
	}
	nw.intoCPU(dst, from, payload)
}

// lose discards a copy to a fault (partition or link loss).
func (nw *Network) lose(from, dst int, payload any) {
	nw.counters.Lost++
	nw.emit(TraceDrop, nw.eng.Now(), from, dst, payload)
	release(payload)
}

// intoCPU occupies the destination CPU for λ and hands the message to the
// process.
func (nw *Network) intoCPU(dst, from int, payload any) {
	start := nw.eng.Now()
	if nw.cpuBusy[dst] > start {
		start = nw.cpuBusy[dst]
	}
	done := start.Add(nw.cfg.Lambda)
	nw.cpuBusy[dst] = done
	nw.eng.ScheduleMsg(done, nw, opRecvCPUDone, from, dst, payload)
}

// deliverAt completes a remote delivery, unless the destination crashed
// while the message was in flight.
func (nw *Network) deliverAt(dst, from int, payload any) {
	if nw.crashed[dst] {
		nw.counters.Drops++
		nw.emit(TraceDrop, nw.eng.Now(), from, dst, payload)
		release(payload)
		return
	}
	nw.counters.Deliveries++
	nw.emit(TraceDeliver, nw.eng.Now(), from, dst, payload)
	nw.deliver(dst, from, payload)
	release(payload)
}
