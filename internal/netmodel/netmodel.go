// Package netmodel implements the contention-aware message transmission
// model of the paper's Section 6.1 (after Urbán, Défago, Schiper, "Contention-
// aware metrics for distributed algorithms", IC3N 2000), generalised to
// route over an explicit connectivity graph (internal/topo).
//
// Two kinds of resources exist, each serving messages in FIFO order:
//
//   - one CPU resource per process, representing the network controller and
//     networking stack; every message occupies the sender's CPU for λ time
//     units when sent and the receiver's CPU for λ time units when received;
//   - one network resource per topology wire, representing an Ethernet-like
//     transmission medium; every message hop occupies its wire for one slot
//     (the wire's own, or the model default — 1 ms in all the paper's
//     experiments).
//
// On the default FullMesh topology there is a single wire joining every
// process pair and the model reduces exactly — bit-identically — to the
// paper's: a message from pᵢ to pⱼ uses CPUᵢ (λ), then the wire (1), then
// CPUⱼ (λ), queueing before each stage if the resource is busy, and a
// multicast occupies the sender CPU and the wire once and then every
// destination CPU in parallel (the Ethernet broadcast assumption the
// paper's message counts rely on). Delivery to the sender itself is local
// and free.
//
// On a segmented topology, messages travel hop by hop along precompiled
// shortest paths: each relay pays receive-CPU λ, then send-CPU λ and a
// wire slot per onward transmission. A multicast follows the origin's
// spanning tree — one wire occupancy per tree segment reaches every
// destination discovered over that segment, and relays forward before
// handing their own copy up. Wires may add propagation delay (the hop
// arrives after the slot while the wire is already free) and per-copy
// loss; a lost relay copy loses the whole subtree behind it.
//
// Crashes follow the paper's software-crash semantics: when pᵢ crashes at
// time t, no message passes between pᵢ and CPUᵢ after t — the process
// neither sends nor receives, and on a multi-hop topology it stops
// relaying — but messages already handed to CPUᵢ and its queues are still
// transmitted.
//
// Beyond crashes the model supports dynamic environment faults, applied
// at each wire→destination handoff so the fault-free hot path pays a
// single branch: partitions (SetPartition/ClearPartition — copies whose
// hop crosses groups are discarded before the destination CPU) and
// per-link faults (SetLink — probabilistic loss on an independent random
// stream, and extra delay entering the destination CPU).
//
// The pipeline stages run on the engine's closure-free scheduling form
// (sim.ScheduleMsg): each in-flight hop is a pooled event record carrying
// (stage, origin·node, route, payload) and dispatching back into
// HandleMsg, so simulating a message allocates nothing — no closures, no
// per-multicast destination slice (fan-out reads the topology's compiled
// tables), no per-hop event allocation once the engine's free list is
// warm. Pooled payloads are reference-counted across their in-flight
// copies; the Pooled interface documents the Retain/Release contract
// handlers and observers must respect.
//
// Under the engine's parallel mode, each pipeline stage runs in the
// conflict domain of the process acting at that stage: send-CPU and wire
// occupancy in the sender's (a wire's transmitters always share a
// domain), receive-CPU and delivery in the destination's, with the
// wire→destination handoff as the one cross-domain step — its cost is
// what bounds the safe window. ConflictDomains derives the partition and
// the lookahead from a Config's wire structure; per-domain counters,
// deferred trace emission and deferred terminal releases keep every
// observable bit-identical to serial execution.
package netmodel

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Config parameterises the transmission model.
type Config struct {
	// N is the number of processes. It must be at least 1.
	N int
	// Lambda is the CPU occupancy per message send and per message
	// receive (the λ parameter of the paper). λ = 1 ms reproduces every
	// figure of the DSN paper; other values model other environments.
	Lambda time.Duration
	// Slot is the default wire occupancy per message: the paper's time
	// unit, 1 ms in all experiments. Wires with their own Slot override
	// it.
	Slot time.Duration
	// Topology is the connectivity graph messages route over. Nil means
	// topo.FullMesh(N) — the paper's single shared Ethernet, on which
	// the model is bit-identical to its pre-topology form.
	Topology *topo.Topology
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: λ = 1 time unit, 1 time unit = 1 ms, full mesh on one wire.
func DefaultConfig(n int) Config {
	return Config{N: n, Lambda: time.Millisecond, Slot: time.Millisecond}
}

func (c Config) validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("netmodel: N = %d, need at least 1", c.N)
	case c.Lambda < 0:
		return fmt.Errorf("netmodel: negative Lambda %v", c.Lambda)
	case c.Slot < 0:
		return fmt.Errorf("netmodel: negative Slot %v", c.Slot)
	case c.Topology != nil && c.Topology.N != c.N:
		return fmt.Errorf("netmodel: topology %q is for %d processes, config has N=%d", c.Topology.Name, c.Topology.N, c.N)
	}
	return nil
}

// DeliverFunc receives a message that completed all three stages. It runs
// at the virtual instant the destination process takes the message off its
// CPU.
type DeliverFunc func(to, from int, payload any)

// TraceKind labels points in a message's lifecycle for observers.
type TraceKind int

// Trace points, in lifecycle order.
const (
	TraceSend    TraceKind = iota + 1 // process hands message to its CPU
	TraceWire                         // message occupies a wire (From is the transmitting hop)
	TraceDeliver                      // destination process receives it
	TraceDrop                         // message discarded: destination crashed, partitioned away, or link loss
)

// String returns the lowercase name of the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceWire:
		return "wire"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent describes one lifecycle point of one message copy.
type TraceEvent struct {
	Kind    TraceKind
	At      sim.Time
	From    int
	To      int // -1 for wire events of multi-destination multicast hops
	Payload any
}

// Pooled is implemented by payloads drawn from a free list. The network
// reference-counts the in-flight copies of a pooled payload — one
// reference per copy that will reach a terminal lifecycle point
// (delivery, crash drop, partition/loss discard) — and releases each
// copy's reference at that point, after the delivery handler and any
// trace observer have returned. A payload whose count reaches zero may
// be reused by its owner, so handlers and observers must not retain it
// past their return. Non-pooled payloads are unaffected.
type Pooled interface {
	// Retain adds n references.
	Retain(n int)
	// Release drops one reference, recycling the payload at zero.
	Release()
}

func retain(payload any, n int) {
	if p, ok := payload.(Pooled); ok {
		p.Retain(n)
	}
}

func release(payload any) {
	if p, ok := payload.(Pooled); ok {
		p.Release()
	}
}

// Discard recycles a pooled payload that was never handed to the
// network — the escape hatch for senders that construct a payload and
// then hit an early return (a crashed-process guard upstream of Send or
// Multicast). Discarding a non-pooled payload is a no-op.
func Discard(payload any) {
	if p, ok := payload.(Pooled); ok {
		p.Retain(1)
		p.Release()
	}
}

// PayloadName renders a trace payload compactly, preferring the
// payload's own String method (protocol wrappers name their inner
// message). It is the canonical payload rendering of every trace
// consumer — the interactive cluster facade and the experiment layer's
// trace export use it, so their formats agree.
func PayloadName(p any) string {
	if s, ok := p.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", p)
}

// Counters aggregates network activity, used by load diagnostics and by
// the FD-vs-GM message-pattern equivalence tests.
type Counters struct {
	Unicasts   uint64 // point-to-point sends handed to a CPU
	Multicasts uint64 // multicast sends handed to a CPU
	WireSlots  uint64 // hops that occupied a network resource (one per relay hop)
	Deliveries uint64 // completed deliveries (per destination)
	Drops      uint64 // deliveries discarded because the target crashed
	LocalSends uint64 // self-deliveries (no resource usage)
	Lost       uint64 // copies discarded by a partition, a lossy link or wire, or a dead relay's subtree
}

// Pipeline stage opcodes for the closure-free scheduler. The a record
// field packs origin·N+node — the multicast origin (or unicast sender)
// and the hop currently holding the copy. The b field is the route: the
// final destination for unicasts, or -(group+1) naming a transmit group
// of the origin's tree at the holding node; opRecvCPUDone and
// opFaultArrive use b = -1 for multicast receive legs.
const (
	opSenderCPUDone = iota // sender CPU released the hop: reserve its wire
	opWireDone             // wire slot (plus propagation) over: arrive at the far end(s)
	opRecvCPUDone          // destination CPU done: deliver, forward, or drop
	opLocalDeliver         // zero-cost self-delivery
	opFaultArrive          // link extra delay elapsed: enter the destination CPU
)

// Network simulates the transmission model on top of a sim.Engine.
// Under the parallel engine every pipeline stage runs in the domain of
// the process acting at that stage: sends and wire occupancy in the
// transmitter's domain, arrival and receive CPU in the destination's.
// The wire→destination handoff is the one cross-domain step, and its
// cost — the wire's slot plus propagation delay — is exactly what the
// conflict partitioner (ConflictDomains) reports as the lookahead, so
// handoffs always clear the safe window.
type Network struct {
	eng     *sim.Engine
	engs    []*sim.Engine // per-process domain handles (all eng when serial)
	cfg     Config
	deliver DeliverFunc
	trace   func(TraceEvent)

	cpuBusy  []sim.Time // per-process CPU busy-until
	wireBusy []sim.Time // per-wire busy-until
	crashed  []bool

	// Routing tables and resolved per-wire parameters, compiled once
	// from the topology.
	rt        *topo.Routing
	sets      []*topo.SetRouting // pruned tables per registered destination set
	wireSlot  []time.Duration
	wireDelay []time.Duration
	wireLoss  []float64
	lossy     bool // any wire with non-zero Loss

	// Dynamic fault state, consulted at the wire→destination handoff only
	// while faults is set, so the fault-free hot path pays one branch.
	faults      bool
	group       []int             // partition labels; nil when no partition
	linkLoss    [][]float64       // per directed link loss probability
	linkDelay   [][]time.Duration // per directed link extra delay
	activeLinks int               // number of links with a non-zero fault
	faultRand   *sim.Rand         // loss stream; lazily defaulted

	// Activity counters, sharded by acting process so concurrent
	// domains never contend; Counters() sums the shards.
	ctrs []Counters
}

// New creates a network. deliver must not be nil; it is invoked for every
// completed message. New panics on an invalid configuration or topology —
// the configuration is code, not input.
func New(eng *sim.Engine, cfg Config, deliver DeliverFunc) *Network {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if deliver == nil {
		panic("netmodel: nil deliver callback")
	}
	t := cfg.Topology
	if t == nil {
		t = topo.SharedFullMesh(cfg.N)
		cfg.Topology = t
	}
	rt := t.Routing()
	nw := &Network{
		eng:       eng,
		engs:      make([]*sim.Engine, cfg.N),
		cfg:       cfg,
		deliver:   deliver,
		cpuBusy:   make([]sim.Time, cfg.N),
		wireBusy:  make([]sim.Time, len(t.Wires)),
		crashed:   make([]bool, cfg.N),
		rt:        rt,
		wireSlot:  make([]time.Duration, len(t.Wires)),
		wireDelay: make([]time.Duration, len(t.Wires)),
		wireLoss:  make([]float64, len(t.Wires)),
		ctrs:      make([]Counters, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		nw.engs[p] = eng.For(p)
	}
	for i, w := range t.Wires {
		nw.wireSlot[i] = w.Slot
		if w.Slot == 0 {
			nw.wireSlot[i] = cfg.Slot
		}
		nw.wireDelay[i] = w.Delay
		nw.wireLoss[i] = w.Loss
		if w.Loss > 0 {
			nw.lossy = true
		}
	}
	if nw.lossy {
		nw.faultRand = sim.NewRand(1)
	}
	return nw
}

// SetTrace installs an observer invoked at each message lifecycle point.
// Pass nil to remove it. Tracing is meant for tests, examples and the
// trace tool; it has no effect on timing.
func (nw *Network) SetTrace(fn func(TraceEvent)) { nw.trace = fn }

// Counters returns a snapshot of the activity counters, summed over the
// per-process shards.
func (nw *Network) Counters() Counters {
	var sum Counters
	for i := range nw.ctrs {
		c := &nw.ctrs[i]
		sum.Unicasts += c.Unicasts
		sum.Multicasts += c.Multicasts
		sum.WireSlots += c.WireSlots
		sum.Deliveries += c.Deliveries
		sum.Drops += c.Drops
		sum.LocalSends += c.LocalSends
		sum.Lost += c.Lost
	}
	return sum
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.cfg.N }

// Config returns the model parameters (with Topology resolved).
func (nw *Network) Config() Config { return nw.cfg }

// Topology returns the connectivity graph the network routes over.
func (nw *Network) Topology() *topo.Topology { return nw.cfg.Topology }

// Crashed reports whether process p has crashed.
func (nw *Network) Crashed(p int) bool { return nw.crashed[p] }

// Crash marks p as crashed as of the current instant. Messages already on
// p's CPU still go out; nothing is delivered to p from now on. Crashing a
// crashed process is a no-op.
func (nw *Network) Crash(p int) { nw.crashed[p] = true }

// Recover reverses Crash: messages flow to and from p again as of the
// current instant. Recovering a live process is a no-op.
func (nw *Network) Recover(p int) { nw.crashed[p] = false }

// SetFaultRand installs the random stream that decides lossy-link and
// lossy-wire drops. Installing it up front keeps loss decisions on an
// independent stream, so a fault-free simulation is bit-identical whether
// or not the stream was installed. If a lossy link is configured without
// one, a fixed-seed default is used (a topology with lossy wires installs
// that default at construction).
func (nw *Network) SetFaultRand(r *sim.Rand) { nw.faultRand = r }

// SetPartition splits the processes into isolated groups as of the current
// instant: a message copy whose current hop crosses two groups is
// discarded at the wire→destination handoff (the frame is on the medium
// but the partitioned NIC never receives it), costing the destination CPU
// nothing. On a multi-hop topology the check is per hop, so traffic whose
// whole route stays inside one group is unaffected even when the endpoints
// could also be reached across the cut. A process listed in no group is
// isolated on its own. A partition replaces any previous one;
// ClearPartition heals it. Self-delivery is never partitioned.
// SetPartition panics on out-of-range or duplicated process indices — the
// configuration is code, not input.
func (nw *Network) SetPartition(groups [][]int) {
	label := make([]int, nw.cfg.N)
	for p := range label {
		label[p] = -(p + 1) // unlisted processes are isolated singletons
	}
	for gi, g := range groups {
		for _, p := range g {
			if p < 0 || p >= nw.cfg.N {
				panic(fmt.Sprintf("netmodel: partition group contains process %d, want 0..%d", p, nw.cfg.N-1))
			}
			if label[p] >= 0 {
				panic(fmt.Sprintf("netmodel: process %d appears in two partition groups", p))
			}
			label[p] = gi
		}
	}
	nw.group = label
	nw.faults = true
}

// ClearPartition heals the current partition, if any.
func (nw *Network) ClearPartition() {
	nw.group = nil
	nw.faults = nw.activeLinks > 0
}

// SetLink installs a fault on the directed link from → to: each message
// copy hopping from → to is independently lost with probability loss, and
// surviving copies enter the destination CPU extraDelay late. On a
// multi-hop topology the link names one hop, not an end-to-end path.
// Setting both to zero clears the link's fault. A new SetLink replaces the
// link's previous fault. It panics on invalid arguments.
func (nw *Network) SetLink(from, to int, loss float64, extraDelay time.Duration) {
	switch {
	case from < 0 || from >= nw.cfg.N || to < 0 || to >= nw.cfg.N:
		panic(fmt.Sprintf("netmodel: link %d->%d out of range for N=%d", from, to, nw.cfg.N))
	case from == to:
		panic("netmodel: self links carry local deliveries and cannot fault")
	case loss < 0 || loss > 1:
		panic(fmt.Sprintf("netmodel: link loss probability %v outside [0,1]", loss))
	case extraDelay < 0:
		panic(fmt.Sprintf("netmodel: negative link delay %v", extraDelay))
	}
	if loss > 0 && nw.eng.Domains() > 1 {
		// A lossy link draws from the shared faultRand stream at every
		// affected handoff — unserialisable across domains. The experiment
		// layer forces a single domain when a plan contains loss; reaching
		// this panic means a caller bypassed that gate.
		panic("netmodel: SetLink with loss requires a single conflict domain (lossy plans must disable multi-domain parallel execution)")
	}
	if nw.linkLoss == nil {
		nw.linkLoss = make([][]float64, nw.cfg.N)
		nw.linkDelay = make([][]time.Duration, nw.cfg.N)
		for p := 0; p < nw.cfg.N; p++ {
			nw.linkLoss[p] = make([]float64, nw.cfg.N)
			nw.linkDelay[p] = make([]time.Duration, nw.cfg.N)
		}
	}
	was := nw.linkLoss[from][to] != 0 || nw.linkDelay[from][to] != 0
	now := loss != 0 || extraDelay != 0
	nw.linkLoss[from][to] = loss
	nw.linkDelay[from][to] = extraDelay
	switch {
	case now && !was:
		nw.activeLinks++
	case was && !now:
		nw.activeLinks--
	}
	if loss > 0 && nw.faultRand == nil {
		nw.faultRand = sim.NewRand(1)
	}
	nw.faults = nw.group != nil || nw.activeLinks > 0
}

// reachable reports whether a hop from `from` to `to` passes the current
// partition.
func (nw *Network) reachable(from, to int) bool {
	return nw.group == nil || nw.group[from] == nw.group[to]
}

// emit reports one lifecycle point to the trace observer. h is the
// acting process's engine handle: inside a parallel window drain the
// observer call is deferred to the window commit, where it runs in
// exact serial order relative to every other emission.
func (nw *Network) emit(h *sim.Engine, kind TraceKind, at sim.Time, from, to int, payload any) {
	if nw.trace == nil {
		return
	}
	if h.Deferring() {
		h.Emit(func() {
			nw.trace(TraceEvent{Kind: kind, At: at, From: from, To: to, Payload: payload})
		})
		return
	}
	nw.trace(TraceEvent{Kind: kind, At: at, From: from, To: to, Payload: payload})
}

// releaseOn releases n terminal references to payload. Inside a
// parallel window drain the release is deferred to the window commit:
// deferred trace emissions may still reference the payload, pooled free
// lists live in other domains, and running all terminal releases on the
// committing goroutine in serial order keeps both safe and keeps the
// pools' reuse order bit-identical to serial execution.
func releaseOn(h *sim.Engine, payload any, n int) {
	p, ok := payload.(Pooled)
	if !ok || n == 0 {
		return
	}
	if h.Deferring() {
		h.Emit(func() {
			for i := 0; i < n; i++ {
				p.Release()
			}
		})
		return
	}
	for i := 0; i < n; i++ {
		p.Release()
	}
}

// pack folds (set, origin, node) into one event record field; set -1 is
// the full-topology multicast (and every unicast), whose packed value is
// origin·N+node exactly as before destination sets existed.
func (nw *Network) pack(set, origin, node int) int {
	return ((set+1)*nw.cfg.N+origin)*nw.cfg.N + node
}

// treeRow returns the transmit groups node performs for origin's
// multicast: the full spanning tree, or the set's pruned one.
func (nw *Network) treeRow(set, origin, node int) []topo.TxGroup {
	if set >= 0 {
		return nw.sets[set].Tree[origin][node]
	}
	return nw.rt.Tree[origin][node]
}

// subCopies counts the in-flight references behind dst in origin's tree:
// all nodes for a full multicast, set members only for a set multicast.
func (nw *Network) subCopies(set, origin, dst int) int {
	if set >= 0 {
		return int(nw.sets[set].Sub[origin][dst])
	}
	return int(nw.rt.Sub[origin][dst])
}

// Send transmits payload from process `from` to process `to` through the
// CPU→wire→CPU pipeline of every hop on the route. Sending to self
// delivers locally at the current instant with no resource usage. Sends
// from a crashed process are ignored; a send with no route to the
// destination is counted and dropped at the sender's NIC.
func (nw *Network) Send(from, to int, payload any) {
	if nw.crashed[from] {
		Discard(payload)
		return
	}
	retain(payload, 1)
	if from == to {
		nw.localDeliver(from, payload)
		return
	}
	nw.ctrs[from].Unicasts++
	nw.emit(nw.engs[from], TraceSend, nw.engs[from].Now(), from, to, payload)
	if nw.rt.Next[from][to] < 0 {
		nw.lose(from, -1, from, from, to, to, payload)
		return
	}
	nw.throughCPU(-1, from, from, to, payload)
}

// Multicast transmits payload from process `from` to every process
// reachable from it, including `from` itself. The copy fans out along
// `from`'s spanning tree: each tree segment is one wire occupancy
// reaching all destinations discovered over it, and every destination CPU
// on a segment is occupied in parallel (on the default full mesh: sender
// CPU and the single wire once, then all remote CPUs — the paper's
// model). The local copy is delivered immediately at no cost. Multicasts
// from a crashed process are ignored.
func (nw *Network) Multicast(from int, payload any) {
	if nw.crashed[from] {
		Discard(payload)
		return
	}
	// One reference for the local copy plus one per reachable remote
	// destination: each copy reaches exactly one terminal point.
	retain(payload, 1+int(nw.rt.Reach[from]))
	nw.ctrs[from].Multicasts++
	nw.emit(nw.engs[from], TraceSend, nw.engs[from].Now(), from, -1, payload)
	nw.localDeliver(from, payload)
	nw.forward(-1, from, from, payload)
}

// SetID names a destination set registered with RegisterSet.
type SetID int32

// RegisterSet precompiles pruned multicast routing for a destination
// set — the address of MulticastSet. Registration is setup-time work:
// each set costs O(N²) table space, like the full routing itself.
func (nw *Network) RegisterSet(members []int) SetID {
	nw.sets = append(nw.sets, nw.rt.PruneSet(members))
	return SetID(len(nw.sets) - 1)
}

// MulticastSet transmits payload from process `from` to every member of
// a registered destination set, along the pruned spanning tree of the
// origin: non-member relays forward copies without receiving them as
// destinations, and only members deliver. The sender delivers locally
// (free) only if it is itself a member. Resource usage per hop is the
// same as Multicast's; only the fan-out is narrower. Sends from a
// crashed process are ignored.
func (nw *Network) MulticastSet(from int, set SetID, payload any) {
	if nw.crashed[from] {
		Discard(payload)
		return
	}
	sr := nw.sets[set]
	local := 0
	if sr.Member[from] {
		local = 1
	}
	if local+int(sr.Reach[from]) == 0 {
		Discard(payload)
		return
	}
	retain(payload, local+int(sr.Reach[from]))
	nw.ctrs[from].Multicasts++
	nw.emit(nw.engs[from], TraceSend, nw.engs[from].Now(), from, -1, payload)
	if local == 1 {
		nw.localDeliver(from, payload)
	}
	nw.forward(int(set), from, from, payload)
}

// forward starts the transmit stage for every tree segment of origin's
// multicast at the holding node — one send-CPU occupancy per segment.
func (nw *Network) forward(set, origin, node int, payload any) {
	for gi := range nw.treeRow(set, origin, node) {
		nw.throughCPU(set, origin, node, -(gi + 1), payload)
	}
}

// HandleMsg advances one in-flight hop to its next pipeline stage. It
// implements sim.MsgHandler; a packs (set+1)·N²+origin·N+node, b is the
// route code.
func (nw *Network) HandleMsg(op uint8, a, b int, payload any) {
	node := a % nw.cfg.N
	rest := a / nw.cfg.N
	origin, set := rest%nw.cfg.N, rest/nw.cfg.N-1
	switch op {
	case opSenderCPUDone:
		nw.throughWire(set, origin, node, b, payload)
	case opWireDone:
		// Runs in the receiving side's domain: throughWire scheduled it
		// there (every destination of a tree segment shares a domain, by
		// the conflict partition).
		if b >= 0 {
			next := int(nw.rt.Next[node][b])
			nw.arrive(set, origin, node, next, int(nw.rt.HopWire[node][b]), b, payload)
		} else {
			g := &nw.treeRow(set, origin, node)[-b-1]
			for _, dst := range g.Dsts {
				nw.arrive(set, origin, node, int(dst), int(g.Wire), -1, payload)
			}
		}
	case opRecvCPUDone:
		nw.received(set, origin, node, b, payload)
	case opLocalDeliver:
		nw.deliverLocal(node, payload)
	case opFaultArrive:
		nw.intoCPU(set, origin, node, b, payload)
	default:
		panic(fmt.Sprintf("netmodel: unknown pipeline op %d", op))
	}
}

// localDeliver schedules a zero-cost self-delivery at the current instant.
// It still goes through the event queue so that the delivery handler never
// reenters the caller.
func (nw *Network) localDeliver(p int, payload any) {
	nw.ctrs[p].LocalSends++
	nw.engs[p].AfterMsg(0, nw, opLocalDeliver, nw.pack(-1, p, p), p, payload)
}

// deliverLocal completes a self-delivery, honouring a crash that happened
// between the send and this instant.
func (nw *Network) deliverLocal(p int, payload any) {
	h := nw.engs[p]
	if nw.crashed[p] {
		nw.ctrs[p].Drops++
		nw.emit(h, TraceDrop, h.Now(), p, p, payload)
		releaseOn(h, payload, 1)
		return
	}
	nw.ctrs[p].Deliveries++
	nw.emit(h, TraceDeliver, h.Now(), p, p, payload)
	nw.deliver(p, p, payload)
	releaseOn(h, payload, 1)
}

// throughCPU occupies node's CPU for λ and then hands the hop to the wire
// stage. The CPU is FIFO: occupancy accumulates on a busy-until horizon.
func (nw *Network) throughCPU(set, origin, node, b int, payload any) {
	h := nw.engs[node]
	start := h.Now()
	if nw.cpuBusy[node] > start {
		start = nw.cpuBusy[node]
	}
	done := start.Add(nw.cfg.Lambda)
	nw.cpuBusy[node] = done
	h.ScheduleMsg(done, nw, opSenderCPUDone, nw.pack(set, origin, node), b, payload)
}

// throughWire occupies the hop's wire for its slot, then fans the hop out
// to the far end(s). The wire is reserved at the moment the hop leaves
// the sending CPU, which preserves the FIFO arrival order at the medium;
// the wire's propagation delay postpones arrival without extending the
// occupancy.
func (nw *Network) throughWire(set, origin, node, b int, payload any) {
	var wire int32
	traceTo := b
	owner := b // domain that executes the arrival
	if b >= 0 {
		wire = nw.rt.HopWire[node][b]
		owner = int(nw.rt.Next[node][b])
	} else {
		g := &nw.treeRow(set, origin, node)[-b-1]
		wire = g.Wire
		// Every destination of the segment shares a conflict domain, so
		// the fan-out event is owned by any of them.
		owner = int(g.Dsts[0])
		if len(g.Dsts) == 1 {
			// A segment with a single destination traces the concrete
			// destination, as every one-destination wire hop does.
			traceTo = int(g.Dsts[0])
		} else {
			traceTo = -1
		}
	}
	h := nw.engs[node]
	start := h.Now()
	if nw.wireBusy[wire] > start {
		start = nw.wireBusy[wire]
	}
	done := start.Add(nw.wireSlot[wire])
	nw.wireBusy[wire] = done
	nw.ctrs[node].WireSlots++
	nw.emit(h, TraceWire, start, node, traceTo, payload)
	// The one cross-domain step: slot + propagation delay is at least
	// the partition's lookahead, so the handoff clears the safe window.
	h.ScheduleMsgOn(nw.engs[owner], done.Add(nw.wireDelay[wire]), nw, opWireDone, nw.pack(set, origin, node), b, payload)
}

// arrive is the wire→destination handoff of one hop, where partitions,
// link faults and wire loss act: a copy whose hop crosses a partition or
// is lost on a lossy link or wire is discarded before it occupies the
// destination CPU, and a link's extra delay postpones the CPU entry.
// Fault-free perfect-wire networks skip straight to intoCPU. Destinations
// of a segment are visited in fixed ascending order, so the loss stream's
// draws are deterministic.
func (nw *Network) arrive(set, origin, node, dst, wire, b int, payload any) {
	if nw.faults {
		if !nw.reachable(node, dst) {
			nw.lose(dst, set, origin, node, dst, b, payload)
			return
		}
		if nw.linkLoss != nil {
			if loss := nw.linkLoss[node][dst]; loss > 0 && nw.faultRand.Float64() < loss {
				nw.lose(dst, set, origin, node, dst, b, payload)
				return
			}
		}
	}
	if wl := nw.wireLoss[wire]; wl > 0 && nw.faultRand.Float64() < wl {
		nw.lose(dst, set, origin, node, dst, b, payload)
		return
	}
	if nw.faults && nw.linkDelay != nil {
		if d := nw.linkDelay[node][dst]; d > 0 {
			// The extra delay acts on the destination side of the handoff
			// — scheduled here, in dst's own domain — so SetLink never
			// shrinks the cross-domain lookahead.
			nw.engs[dst].AfterMsg(d, nw, opFaultArrive, nw.pack(set, origin, dst), b, payload)
			return
		}
	}
	nw.intoCPU(set, origin, dst, b, payload)
}

// lose discards a copy to a fault (partition, link or wire loss, or a
// route that does not exist). For a multicast hop (b < 0) the whole
// subtree behind dst dies with it: every copy it would have fanned into
// is released and counted lost, under one drop trace. acting is the
// process in whose domain the loss is decided — the sender for a
// no-route drop, the destination for every handoff fault.
func (nw *Network) lose(acting, set, origin, node, dst, b int, payload any) {
	copies := 1
	if b < 0 {
		copies = nw.subCopies(set, origin, dst)
	}
	h := nw.engs[acting]
	nw.emit(h, TraceDrop, h.Now(), node, dst, payload)
	nw.ctrs[acting].Lost += uint64(copies)
	releaseOn(h, payload, copies)
}

// intoCPU occupies the destination CPU for λ and hands the hop to the
// receive stage.
func (nw *Network) intoCPU(set, origin, dst, b int, payload any) {
	h := nw.engs[dst]
	start := h.Now()
	if nw.cpuBusy[dst] > start {
		start = nw.cpuBusy[dst]
	}
	done := start.Add(nw.cfg.Lambda)
	nw.cpuBusy[dst] = done
	h.ScheduleMsg(done, nw, opRecvCPUDone, nw.pack(set, origin, dst), b, payload)
}

// received completes a hop's receive stage at node: final deliveries go
// up to the process, relay hops forward — unless the node crashed while
// the hop was in flight, which on a multicast kills the whole subtree.
func (nw *Network) received(set, origin, node, b int, payload any) {
	h := nw.engs[node]
	if b >= 0 && node != b {
		// Unicast relay: forward toward b, unless this relay is dead.
		if nw.crashed[node] {
			nw.ctrs[node].Drops++
			nw.emit(h, TraceDrop, h.Now(), origin, node, payload)
			releaseOn(h, payload, 1)
			return
		}
		nw.throughCPU(set, origin, node, b, payload)
		return
	}
	if b < 0 && set >= 0 && !nw.sets[set].Member[node] {
		// Non-member relay of a set multicast: the copy passes through
		// without being a destination, so it holds no reference. A dead
		// relay still kills every member behind it.
		if nw.crashed[node] {
			sub := nw.subCopies(set, origin, node)
			nw.emit(h, TraceDrop, h.Now(), origin, node, payload)
			nw.ctrs[node].Lost += uint64(sub)
			releaseOn(h, payload, sub)
			return
		}
		nw.forward(set, origin, node, payload)
		return
	}
	if nw.crashed[node] {
		nw.ctrs[node].Drops++
		nw.emit(h, TraceDrop, h.Now(), origin, node, payload)
		if b < 0 {
			// The dead node's copy is a crash drop; the subtree behind it
			// is lost to the environment.
			if sub := nw.subCopies(set, origin, node); sub > 1 {
				nw.ctrs[node].Lost += uint64(sub - 1)
				releaseOn(h, payload, sub-1)
			}
		}
		releaseOn(h, payload, 1)
		return
	}
	if b < 0 {
		// Relay before delivering: the NIC forwards the multicast down
		// the tree, then the local copy goes up to the process.
		nw.forward(set, origin, node, payload)
	}
	nw.ctrs[node].Deliveries++
	nw.emit(h, TraceDeliver, h.Now(), origin, node, payload)
	nw.deliver(node, origin, payload)
	releaseOn(h, payload, 1)
}
