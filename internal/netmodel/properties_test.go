package netmodel

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestPhysicalLatencyFloorProperty: no delivery can beat the pipeline
// minimum 2λ + slot, whatever the send schedule.
func TestPhysicalLatencyFloorProperty(t *testing.T) {
	type send struct {
		At   uint16 // ms
		From uint8
		To   uint8
	}
	f := func(sends []send) bool {
		const n = 4
		eng := sim.New()
		floor := 3 * time.Millisecond // λ + slot + λ with λ = slot = 1ms
		sentAt := make(map[int][]sim.Time)
		ok := true
		var nw *Network
		nw = New(eng, DefaultConfig(n), func(to, from int, payload any) {
			key := payload.(int)
			t0 := sentAt[key][0]
			sentAt[key] = sentAt[key][1:]
			if from != to && eng.Now().Sub(t0) < floor {
				ok = false
			}
		})
		for i, s := range sends {
			i, s := i, s
			from, to := int(s.From%n), int(s.To%n)
			at := sim.Time(0).Add(time.Duration(s.At) * time.Millisecond)
			eng.Schedule(at, func() {
				sentAt[i] = append(sentAt[i], eng.Now())
				nw.Send(from, to, i)
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPerPathFIFOProperty: two messages from the same sender to the same
// receiver are delivered in send order — the quasi-reliable channel
// assumption of §3.1.
func TestPerPathFIFOProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		eng := sim.New()
		var got []int
		nw := New(eng, DefaultConfig(2), func(to, from int, payload any) {
			got = append(got, payload.(int))
		})
		at := sim.Time(0)
		for i, g := range gaps {
			i := i
			at = at.Add(time.Duration(g%5) * 500 * time.Microsecond)
			eng.Schedule(at, func() { nw.Send(0, 1, i) })
		}
		eng.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(gaps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWireConservationProperty: the number of wire occupations equals
// unicasts plus multicasts (each occupies the medium exactly once),
// regardless of schedule and crashes.
func TestWireConservationProperty(t *testing.T) {
	type action struct {
		At        uint16
		Actor     uint8
		Multicast bool
		Crash     bool
	}
	f := func(actions []action) bool {
		const n = 3
		eng := sim.New()
		nw := New(eng, DefaultConfig(n), func(int, int, any) {})
		for i, a := range actions {
			i, a := i, a
			actor := int(a.Actor % n)
			at := sim.Time(0).Add(time.Duration(a.At%200) * time.Millisecond)
			eng.Schedule(at, func() {
				switch {
				case a.Crash:
					nw.Crash(actor)
				case a.Multicast:
					nw.Multicast(actor, i)
				default:
					nw.Send(actor, (actor+1)%n, i)
				}
			})
		}
		eng.Run()
		c := nw.Counters()
		return c.WireSlots == c.Unicasts+c.Multicasts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryConservationProperty: without crashes, every unicast
// delivers exactly once and every multicast delivers n times.
func TestDeliveryConservationProperty(t *testing.T) {
	f := func(kinds []bool) bool {
		const n = 4
		eng := sim.New()
		var deliveries uint64
		nw := New(eng, DefaultConfig(n), func(int, int, any) { deliveries++ })
		want := uint64(0)
		for i, multicast := range kinds {
			i := i
			m := multicast
			eng.Schedule(sim.Time(0).Add(time.Duration(i)*100*time.Microsecond), func() {
				if m {
					nw.Multicast(i%n, i)
				} else {
					nw.Send(i%n, (i+1)%n, i)
				}
			})
			if multicast {
				want += n
			} else {
				want++
			}
		}
		eng.Run()
		return deliveries == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
