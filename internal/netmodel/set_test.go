package netmodel

import (
	"testing"

	"repro/internal/topo"
)

// A set multicast on the full mesh reaches exactly the set's members:
// the local copy immediately, the rest with the usual pipeline costs.
func TestSetMulticastReachesMembersOnly(t *testing.T) {
	h := newHarness(t, DefaultConfig(5))
	set := h.nw.RegisterSet([]int{0, 2, 4})
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, "m") })
	h.eng.Run()
	if len(h.got) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(h.got))
	}
	for _, d := range h.got {
		if d.to != 0 && d.to != 2 && d.to != 4 {
			t.Fatalf("delivered to non-member %d", d.to)
		}
	}
	if at := h.deliveriesTo(0)[0].at; at != ms(0) {
		t.Fatalf("local copy at %v, want immediate", at)
	}
	c := h.nw.Counters()
	if c.Multicasts != 1 || c.Deliveries != 3 {
		t.Fatalf("counters = %+v, want 1 multicast, 3 deliveries", c)
	}
}

// A non-member sender addresses the set like anyone else and gets no
// local copy.
func TestSetMulticastFromNonMember(t *testing.T) {
	h := newHarness(t, DefaultConfig(4))
	set := h.nw.RegisterSet([]int{1, 3})
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, "m") })
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	for _, d := range h.got {
		if d.to == 0 {
			t.Fatalf("non-member sender got a local copy")
		}
	}
}

// On a ring the copy to a far member is relayed through a non-member,
// which forwards without delivering; only the wires on the pruned branch
// are occupied.
func TestSetMulticastRelaysThroughNonMember(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Ring(5)))
	set := h.nw.RegisterSet([]int{0, 2})
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, "m") })
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2 (members only), got %+v", len(h.got), h.got)
	}
	// p1 relays: sender CPU + wire + relay in + relay out + wire + p2 CPU.
	if at := h.deliveriesTo(2)[0].at; at != ms(6) {
		t.Fatalf("far member delivered at %v, want 6ms via relay", at)
	}
	c := h.nw.Counters()
	if c.WireSlots != 2 {
		t.Fatalf("WireSlots = %d, want 2 (pruned branch only)", c.WireSlots)
	}
}

// A crashed non-member relay loses the member subtree behind it as Lost
// copies, not Drops — the relay was never a destination.
func TestSetMulticastCrashedRelayLosesSubtree(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Ring(5)))
	set := h.nw.RegisterSet([]int{0, 2})
	h.nw.Crash(1)
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, "m") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].to != 0 {
		t.Fatalf("deliveries = %+v, want only the local copy", h.got)
	}
	c := h.nw.Counters()
	if c.Drops != 0 || c.Lost != 1 {
		t.Fatalf("counters = %+v, want 0 drops, 1 lost (member 2 behind dead relay)", c)
	}
}

// A crashed member drops its own copy and loses the rest of its subtree.
func TestSetMulticastCrashedMember(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Ring(5)))
	set := h.nw.RegisterSet([]int{0, 1, 2})
	h.nw.Crash(1)
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, "m") })
	h.eng.Run()
	c := h.nw.Counters()
	if c.Drops != 1 || c.Lost != 1 {
		t.Fatalf("counters = %+v, want 1 drop (member 1) + 1 lost (member 2 behind it)", c)
	}
}

// countedPayload tracks its reference count for leak assertions.
type countedPayload struct{ refs, releases int }

func (c *countedPayload) Retain(n int) { c.refs += n }
func (c *countedPayload) Release()     { c.refs--; c.releases++ }

// Pooled payloads addressed to a set are retained once per member copy
// and fully released when every copy lands, including when relays and
// crashes kill part of the tree.
func TestSetMulticastPooledBalance(t *testing.T) {
	for name, crash := range map[string]int{"all-live": -1, "dead-relay": 1, "dead-member": 2} {
		h := newHarness(t, topoConfig(topo.Ring(5)))
		set := h.nw.RegisterSet([]int{0, 2, 3})
		if crash >= 0 {
			h.nw.Crash(crash)
		}
		p := &countedPayload{}
		h.eng.Schedule(0, func() { h.nw.MulticastSet(0, set, p) })
		h.eng.Run()
		if p.refs != 0 {
			t.Fatalf("%s: payload refs = %d after run, want 0 (releases %d)", name, p.refs, p.releases)
		}
		if p.releases == 0 {
			t.Fatalf("%s: payload never retained/released", name)
		}
	}
}

// A set whose only member is the sender delivers locally and touches no
// wire; a set multicast from a crashed process goes nowhere.
func TestSetMulticastDegenerateCases(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	solo := h.nw.RegisterSet([]int{0})
	h.eng.Schedule(0, func() { h.nw.MulticastSet(0, solo, "m") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].to != 0 || h.nw.Counters().WireSlots != 0 {
		t.Fatalf("solo set: deliveries %+v, counters %+v", h.got, h.nw.Counters())
	}

	h2 := newHarness(t, DefaultConfig(3))
	pair := h2.nw.RegisterSet([]int{1, 2})
	h2.nw.Crash(0)
	p := &countedPayload{}
	h2.eng.Schedule(0, func() { h2.nw.MulticastSet(0, pair, p) })
	h2.eng.Run()
	if len(h2.got) != 0 {
		t.Fatalf("crashed sender delivered: %+v", h2.got)
	}
	if p.refs != 0 {
		t.Fatalf("crashed sender leaked payload refs: %d", p.refs)
	}
}
