package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

func topoConfig(t *topo.Topology) Config {
	cfg := DefaultConfig(t.N)
	cfg.Topology = t
	return cfg
}

// On a ring, a unicast to a node two hops away is relayed: sender CPU λ,
// wire slot, relay receive λ, relay send λ, wire slot, receiver CPU λ.
func TestRingUnicastRelayTiming(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Ring(5)))
	h.eng.Schedule(0, func() { h.nw.Send(0, 2, "m") })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].to != 2 || h.got[0].from != 0 {
		t.Fatalf("deliveries = %+v, want one to p2 from p0", h.got)
	}
	if h.got[0].at != ms(6) {
		t.Fatalf("two-hop unicast delivered at %v, want 6ms (2 hops x (λ+slot+λ) - shared relay λ... 1+1+1+1+1+1)", h.got[0].at)
	}
	c := h.nw.Counters()
	if c.Unicasts != 1 || c.WireSlots != 2 || c.Deliveries != 1 {
		t.Fatalf("counters = %+v, want 1 unicast over 2 wire slots", c)
	}
}

// A ring multicast reaches everyone by relaying both ways around; each
// relay hop adds λ+slot+λ, so the farthest node on a 5-ring delivers at
// 2 hops' depth.
func TestRingMulticastRelays(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Ring(5)))
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	if len(h.got) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(h.got))
	}
	at := make(map[int]sim.Time)
	for _, d := range h.got {
		if d.from != 0 {
			t.Fatalf("delivery from %d, want origin 0", d.from)
		}
		at[d.to] = d.at
	}
	if at[0] != ms(0) {
		t.Fatalf("local copy at %v, want immediate", at[0])
	}
	// Neighbours: the origin occupies its CPU for each of its two
	// segments in wire order (wire 0 to p1, then wire 4 to p4), so p1
	// hears its slot first.
	if at[1] != ms(3) || at[4] != ms(4) {
		t.Fatalf("neighbours delivered at %v / %v, want 3ms / 4ms", at[1], at[4])
	}
	// Second ring positions ride one relay each behind the neighbours.
	if at[2] != at[1].Add(3*time.Millisecond) || at[3] != at[4].Add(3*time.Millisecond) {
		t.Fatalf("far nodes delivered at %v / %v, want one relay (3ms) behind %v / %v", at[2], at[3], at[1], at[4])
	}
	c := h.nw.Counters()
	if c.Multicasts != 1 || c.WireSlots != 4 {
		t.Fatalf("counters = %+v, want 1 multicast over 4 wire slots", c)
	}
}

// Clique wires never contend with each other: two simultaneous unicasts
// on different pairs deliver in parallel, unlike the shared full-mesh
// Ethernet where one would queue behind the other.
func TestCliqueWiresDoNotContend(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Clique(4)))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 1, "a")
		h.nw.Send(2, 3, "b")
	})
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	for _, d := range h.got {
		if d.at != ms(3) {
			t.Fatalf("delivery %+v at %v, want 3ms (no wire contention)", d, d.at)
		}
	}
	// Same experiment on the paper's mesh: the second send queues one
	// slot behind the first on the shared wire.
	m := newHarness(t, DefaultConfig(4))
	m.eng.Schedule(0, func() {
		m.nw.Send(0, 1, "a")
		m.nw.Send(2, 3, "b")
	})
	m.eng.Run()
	var late sim.Time
	for _, d := range m.got {
		if d.at > late {
			late = d.at
		}
	}
	if late != ms(4) {
		t.Fatalf("mesh straggler at %v, want 4ms (queued slot)", late)
	}
}

// A wire's Delay adds propagation time without extending the occupancy:
// back-to-back sends on a delayed wire still pipeline one slot apart.
func TestWireDelayIsPropagationNotOccupancy(t *testing.T) {
	tp := &topo.Topology{
		Name: "wan-pair", N: 2,
		Wires: []topo.Wire{{Delay: 20 * time.Millisecond}},
		Edges: []topo.Edge{{From: 0, To: 1, Wire: 0}, {From: 1, To: 0, Wire: 0}},
	}
	h := newHarness(t, topoConfig(tp))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 1, "a")
		h.nw.Send(0, 1, "b")
	})
	h.eng.Run()
	if len(h.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(h.got))
	}
	// First: CPU 0→1, slot 1→2, +20ms propagation = 22, CPU λ → 23.
	// Second rides one λ and one slot later → 24: the wire was free
	// again at 2ms even though the first copy was still propagating.
	if h.got[0].at != ms(23) || h.got[1].at != ms(24) {
		t.Fatalf("delivered at %v and %v, want 23ms and 24ms", h.got[0].at, h.got[1].at)
	}
}

// A wire's Slot overrides the model default: a fat LAN pipe drains
// back-to-back messages faster than the paper's 1 ms medium.
func TestWireSlotOverride(t *testing.T) {
	tp := &topo.Topology{
		Name: "fat-pair", N: 2,
		Wires: []topo.Wire{{Slot: 250 * time.Microsecond}},
		Edges: []topo.Edge{{From: 0, To: 1, Wire: 0}, {From: 1, To: 0, Wire: 0}},
	}
	h := newHarness(t, topoConfig(tp))
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "a") })
	h.eng.Run()
	if h.got[0].at != ms(2.25) {
		t.Fatalf("delivered at %v, want 2.25ms (λ + 0.25 slot + λ)", h.got[0].at)
	}
}

// Wire loss draws per copy on the fault stream; Loss=1 kills every copy
// crossing the wire and releases the whole subtree behind it.
func TestWireLossKillsSubtree(t *testing.T) {
	g := topo.Geo(topo.GeoConfig{Sites: 2, PerSite: 3, WAN: topo.Wire{Loss: 1}})
	h := newHarness(t, topoConfig(g))
	drops := 0
	h.nw.SetTrace(func(ev TraceEvent) {
		if ev.Kind == TraceDrop {
			drops++
		}
	})
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	// Only site 0 hears it: the WAN copy to gateway 3 dies, taking the
	// remote site's three copies with it.
	if len(h.got) != 3 {
		t.Fatalf("got %d deliveries, want 3 (own site only)", len(h.got))
	}
	c := h.nw.Counters()
	if c.Lost != 3 {
		t.Fatalf("Lost = %d, want 3 (remote site's subtree)", c.Lost)
	}
	if drops != 1 {
		t.Fatalf("drop traces = %d, want 1 (one observable loss event)", drops)
	}
}

// A crashed relay stops forwarding: its own copy is a crash drop and the
// subtree behind it is lost to the environment.
func TestCrashedRelayLosesSubtree(t *testing.T) {
	h := newHarness(t, topoConfig(topo.Star(4)))
	h.eng.Schedule(0, func() { h.nw.Multicast(1, "m") })
	// The hub crashes while the spoke hop is in flight.
	h.eng.Schedule(ms(2), func() { h.nw.Crash(0) })
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].to != 1 {
		t.Fatalf("deliveries = %+v, want only the local copy", h.got)
	}
	c := h.nw.Counters()
	if c.Drops != 1 {
		t.Fatalf("Drops = %d, want 1 (the hub's own copy)", c.Drops)
	}
	if c.Lost != 2 {
		t.Fatalf("Lost = %d, want 2 (the spokes behind the dead hub)", c.Lost)
	}
}

// Sending to a graph-unreachable destination is counted and dropped at
// the sender's NIC instead of hanging the refcount.
func TestUnreachableDestinationDrops(t *testing.T) {
	tp := &topo.Topology{
		Name: "one-way", N: 2, Wires: []topo.Wire{{}},
		Edges: []topo.Edge{{From: 0, To: 1, Wire: 0}},
	}
	h := newHarness(t, topoConfig(tp))
	h.eng.Schedule(0, func() { h.nw.Send(1, 0, "m") })
	h.eng.Run()
	if len(h.got) != 0 {
		t.Fatalf("deliveries = %+v, want none", h.got)
	}
	c := h.nw.Counters()
	if c.Unicasts != 1 || c.Lost != 1 {
		t.Fatalf("counters = %+v, want the send counted and lost", c)
	}
}

// Partitions act per hop: on a geo topology, cutting along the WAN
// leaves intra-site traffic untouched even though the fault-free route
// between the sites exists.
func TestGeoPartitionAlongWANCut(t *testing.T) {
	g := topo.Geo(topo.GeoConfig{Sites: 2, PerSite: 2})
	h := newHarness(t, topoConfig(g))
	h.nw.SetPartition(g.SiteCut(0))
	h.eng.Schedule(0, func() {
		h.nw.Send(0, 1, "lan")
		h.nw.Send(1, 3, "wan")
	})
	h.eng.Run()
	if len(h.got) != 1 || h.got[0].payload != "lan" {
		t.Fatalf("deliveries = %+v, want only the intra-site send", h.got)
	}
	h.nw.ClearPartition()
	h.eng.Schedule(h.eng.Now(), func() { h.nw.Send(1, 3, "wan2") })
	h.eng.Run()
	if len(h.got) != 2 || h.got[1].payload != "wan2" {
		t.Fatalf("deliveries after heal = %+v, want the cross-site send through", h.got)
	}
}

// --- Satellite: fault interactions the topology rewire must preserve ---

// A link with loss and delay that is then partitioned: the partition
// wins (copies die at the handoff before the loss draw), and healing the
// partition restores the link fault exactly as configured.
func TestLinkFaultThenPartitioned(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	h.nw.SetFaultRand(sim.NewRand(7))
	h.nw.SetLink(0, 1, 0.5, 2*time.Millisecond)
	h.nw.SetPartition([][]int{{0, 2}, {1}})
	sent := 0
	h.eng.Schedule(0, func() {
		for i := 0; i < 8; i++ {
			h.eng.After(sim.Millis(float64(10*i)), func() { h.nw.Send(0, 1, "m"); sent++ })
		}
	})
	h.eng.Run()
	if len(h.got) != 0 {
		t.Fatalf("deliveries across a partition: %+v", h.got)
	}
	if c := h.nw.Counters(); c.Lost != 8 {
		t.Fatalf("Lost = %d, want all 8 partitioned copies", c.Lost)
	}
	// Heal: the link fault must still be armed — half the copies drop,
	// survivors arrive 2ms late (λ+slot+delay+λ = 5ms after send).
	h.nw.ClearPartition()
	base := h.eng.Now()
	for i := 0; i < 40; i++ {
		off := sim.Millis(float64(10 * (i + 1)))
		h.eng.Schedule(base.Add(off), func() { h.nw.Send(0, 1, "m2") })
	}
	h.eng.Run()
	if len(h.got) == 0 || len(h.got) == 40 {
		t.Fatalf("after heal got %d deliveries of 40, want lossy subset", len(h.got))
	}
	for _, d := range h.got {
		if d.at.Sub(base)%sim.Millis(10) != sim.Millis(5) {
			t.Fatalf("survivor at %v, want sends+5ms (link delay preserved)", d.at)
		}
	}
}

// ClearPartition must not clear link faults: the faults flag stays up
// while any SetLink is active.
func TestSetLinkSurvivesClearPartition(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.nw.SetLink(0, 1, 1, 0)
	h.nw.SetPartition([][]int{{0}, {1}})
	h.nw.ClearPartition()
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	if len(h.got) != 0 {
		t.Fatalf("lossy link forgot its fault after ClearPartition: %+v", h.got)
	}
	if c := h.nw.Counters(); c.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", c.Lost)
	}
	// Clearing the link too restores a perfect network.
	h.nw.SetLink(0, 1, 0, 0)
	h.eng.Schedule(h.eng.Now(), func() { h.nw.Send(0, 1, "m2") })
	h.eng.Run()
	if len(h.got) != 1 {
		t.Fatalf("cleared link still faulty: %d deliveries", len(h.got))
	}
}

// Recover of a process behind a lossy WAN edge: the crash drop path and
// the wire loss path compose — after recovery, copies that survive the
// WAN draw are delivered again.
func TestRecoverBehindLossyWANEdge(t *testing.T) {
	g := topo.Geo(topo.GeoConfig{Sites: 2, PerSite: 2, WAN: topo.Wire{Loss: 0.5}})
	h := newHarness(t, topoConfig(g))
	h.nw.SetFaultRand(sim.NewRand(11))
	h.nw.Crash(3)
	h.eng.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			h.eng.After(sim.Millis(float64(10*i)), func() { h.nw.Send(0, 3, "down") })
		}
	})
	h.eng.Run()
	crashDrops := h.nw.Counters().Drops
	if crashDrops == 0 {
		t.Fatal("no copy survived the WAN to be crash-dropped — scenario broken")
	}
	if len(h.got) != 0 {
		t.Fatalf("delivered to a crashed process: %+v", h.got)
	}
	h.nw.Recover(3)
	base := h.eng.Now()
	for i := 0; i < 30; i++ {
		off := sim.Millis(float64(10 * (i + 1)))
		h.eng.Schedule(base.Add(off), func() { h.nw.Send(0, 3, "up") })
	}
	h.eng.Run()
	if len(h.got) == 0 || len(h.got) == 30 {
		t.Fatalf("after recovery got %d of 30, want lossy-but-flowing", len(h.got))
	}
	for _, d := range h.got {
		if d.to != 3 || d.payload != "up" {
			t.Fatalf("unexpected delivery %+v", d)
		}
	}
	if c := h.nw.Counters(); c.Drops != crashDrops {
		t.Fatalf("Drops moved %d -> %d after recovery; survivors must deliver", crashDrops, c.Drops)
	}
}

// Large-N sanity: a geo multicast on hundreds of processes reaches every
// process exactly once with hop-proportional work, and the hot path
// reuses pooled events (covered by the alloc budgets elsewhere).
func TestLargeNGeoMulticastReachesAll(t *testing.T) {
	g := topo.Geo(topo.GeoConfig{Sites: 16, PerSite: 16})
	h := newHarness(t, topoConfig(g))
	h.eng.Schedule(0, func() { h.nw.Multicast(17, "m") })
	h.eng.Run()
	if len(h.got) != 256 {
		t.Fatalf("got %d deliveries, want 256", len(h.got))
	}
	seen := make(map[int]bool)
	for _, d := range h.got {
		if seen[d.to] {
			t.Fatalf("double delivery to %d", d.to)
		}
		seen[d.to] = true
	}
	c := h.nw.Counters()
	// One LAN slot per site reaches its members; WAN slots pairwise from
	// the origin site. Far fewer than 255 point-to-point slots.
	if c.WireSlots >= 255 {
		t.Fatalf("WireSlots = %d, want tree fan-out, not per-destination slots", c.WireSlots)
	}
}
