package netmodel

import (
	"math"

	"repro/internal/sim"
	"repro/internal/topo"
)

// ConflictDomains partitions the processes of a topology into conflict
// domains for sim.EnableParallel, and computes the matching lookahead.
// Two processes land in the same domain whenever the transmission model
// could touch shared mutable state on their behalf inside a window:
//
//   - all senders over one wire share its busy-until horizon
//     (throughWire reserves the wire from the transmitting hop's
//     domain), so every edge source of a wire is merged;
//   - a wire whose resolved cost (slot + propagation delay) is zero
//     cannot clear any positive lookahead, so its endpoints are merged
//     and its hops become domain-local;
//   - every destination set of a multicast tree segment is reached by
//     one fan-out event executing in a single domain, so the segment's
//     destinations are merged (the unicast next hop is a one-element
//     case of this, and pruned set trees are subsets of the full
//     trees);
//   - the optional groups argument lists process sets that share
//     protocol-layer state outside the network — the shard memberships
//     of groups mode, whose router instances exchange envelopes and
//     pool state; each set is merged.
//
// A topology with a lossy wire collapses to a single domain: loss draws
// from one shared random stream at every affected handoff, and the draw
// order must match serial execution exactly. (Dynamic per-link loss via
// SetLink is the experiment layer's concern — it forces a single domain
// before construction, and SetLink panics if that gate is bypassed.)
//
// The returned lookahead is the minimum resolved cost over wires that
// carry a cross-domain edge — the cheapest possible cross-domain
// interaction, which is exactly the safe-window bound EnableParallel
// needs — or math.MaxInt64 when every edge is domain-local (including
// the single-domain case, where windows are unbounded).
//
// domainOf uses compact ids in order of first appearance, so domain 0
// always contains process 0.
func ConflictDomains(cfg Config, groups [][]int) (domainOf []int, lookahead sim.Time) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	t := cfg.Topology
	if t == nil {
		t = topo.SharedFullMesh(cfg.N)
	}
	n := cfg.N
	parent := make([]int, n)
	for p := range parent {
		parent[p] = p
	}
	var find func(int) int
	find = func(p int) int {
		for parent[p] != p {
			parent[p] = parent[parent[p]]
			p = parent[p]
		}
		return p
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	lossy := false
	wireCost := make([]sim.Time, len(t.Wires))
	for i, w := range t.Wires {
		slot := w.Slot
		if slot == 0 {
			slot = cfg.Slot
		}
		wireCost[i] = sim.Time(slot + w.Delay)
		if w.Loss > 0 {
			lossy = true
		}
	}
	if lossy {
		// One shared loss stream: serial draw order is only preserved
		// with everything in one domain.
		return make([]int, n), sim.Time(math.MaxInt64)
	}

	// Wire contention: all transmitters over a wire share its horizon.
	// Zero-cost wires additionally pull in their receivers.
	wireHead := make([]int, len(t.Wires))
	for i := range wireHead {
		wireHead[i] = -1
	}
	for _, e := range t.Edges {
		if wireHead[e.Wire] < 0 {
			wireHead[e.Wire] = e.From
		} else {
			union(wireHead[e.Wire], e.From)
		}
		if wireCost[e.Wire] <= 0 {
			union(e.From, e.To)
		}
	}

	// Multicast fan-out: one event arrives for all destinations of a
	// tree segment, so they must be co-domain.
	rt := t.Routing()
	for origin := 0; origin < n; origin++ {
		for node := 0; node < n; node++ {
			for gi := range rt.Tree[origin][node] {
				dsts := rt.Tree[origin][node][gi].Dsts
				for _, d := range dsts[1:] {
					union(int(dsts[0]), int(d))
				}
			}
		}
	}

	// Protocol-layer shared state outside the network.
	for _, g := range groups {
		for _, p := range g[1:] {
			union(g[0], p)
		}
	}

	domainOf = make([]int, n)
	id := make(map[int]int, n)
	for p := 0; p < n; p++ {
		r := find(p)
		d, ok := id[r]
		if !ok {
			d = len(id)
			id[r] = d
		}
		domainOf[p] = d
	}

	lookahead = sim.Time(math.MaxInt64)
	for _, e := range t.Edges {
		if domainOf[e.From] != domainOf[e.To] && wireCost[e.Wire] < lookahead {
			lookahead = wireCost[e.Wire]
		}
	}
	return domainOf, lookahead
}
