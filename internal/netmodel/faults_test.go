package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPartitionDropsCrossGroupCopies(t *testing.T) {
	h := newHarness(t, DefaultConfig(4))
	h.nw.SetPartition([][]int{{0, 1}, {2, 3}})
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	// p0 (local) and p1 receive; p2, p3 are partitioned away.
	if got := len(h.deliveriesTo(0)); got != 1 {
		t.Fatalf("p0 got %d deliveries, want 1 (local)", got)
	}
	if got := len(h.deliveriesTo(1)); got != 1 {
		t.Fatalf("p1 got %d deliveries, want 1", got)
	}
	if got := len(h.deliveriesTo(2)) + len(h.deliveriesTo(3)); got != 0 {
		t.Fatalf("cross-partition deliveries = %d, want 0", got)
	}
	if lost := h.nw.Counters().Lost; lost != 2 {
		t.Fatalf("Lost = %d, want 2", lost)
	}
}

func TestPartitionIsolatesUnlistedProcesses(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	h.nw.SetPartition([][]int{{0, 1}}) // p2 in no group: isolated
	h.eng.Schedule(0, func() {
		h.nw.Multicast(2, "from-isolated")
		h.nw.Send(0, 2, "to-isolated")
	})
	h.eng.Run()
	// p2 only ever sees its own local copy.
	d2 := h.deliveriesTo(2)
	if len(d2) != 1 || d2[0].from != 2 {
		t.Fatalf("isolated p2 deliveries = %+v, want only its local copy", d2)
	}
	if got := len(h.deliveriesTo(0)) + len(h.deliveriesTo(1)); got != 0 {
		t.Fatalf("deliveries from isolated p2 = %d, want 0", got)
	}
}

func TestClearPartitionRestoresReachability(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.nw.SetPartition([][]int{{0}, {1}})
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "lost") })
	h.eng.Schedule(ms(10), func() {
		h.nw.ClearPartition()
		h.nw.Send(0, 1, "delivered")
	})
	h.eng.Run()
	d := h.deliveriesTo(1)
	if len(d) != 1 || d[0].payload != "delivered" {
		t.Fatalf("post-heal deliveries = %+v, want exactly the healed send", d)
	}
}

func TestLinkLossIsDeterministicPerSeed(t *testing.T) {
	run := func() []delivery {
		h := newHarness(t, DefaultConfig(2))
		h.nw.SetFaultRand(sim.NewRand(7))
		h.nw.SetLink(0, 1, 0.5, 0)
		for i := 0; i < 40; i++ {
			i := i
			h.eng.Schedule(ms(float64(i*5)), func() { h.nw.Send(0, 1, i) })
		}
		h.eng.Run()
		return h.deliveriesTo(1)
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("loss 0.5 delivered %d of 40: want a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("two identical runs delivered %d and %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLinkLossOneDropsEverything(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	h.nw.SetFaultRand(sim.NewRand(1))
	h.nw.SetLink(0, 1, 1, 0)
	h.eng.Schedule(0, func() { h.nw.Multicast(0, "m") })
	h.eng.Run()
	if got := len(h.deliveriesTo(1)); got != 0 {
		t.Fatalf("fully lossy link delivered %d copies", got)
	}
	// The multicast's other destination is unaffected.
	if got := len(h.deliveriesTo(2)); got != 1 {
		t.Fatalf("p2 got %d deliveries, want 1", got)
	}
	if lost := h.nw.Counters().Lost; lost != 1 {
		t.Fatalf("Lost = %d, want 1", lost)
	}
}

func TestLinkExtraDelayPostponesCPUEntry(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.nw.SetLink(0, 1, 0, 5*time.Millisecond)
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	d := h.deliveriesTo(1)
	if len(d) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(d))
	}
	// CPU₀ 0→1, wire 1→2, +5 delay → enters CPU₁ at 7, delivered at 8.
	if d[0].at != ms(8) {
		t.Fatalf("delayed delivery at %v, want 8ms", d[0].at)
	}
}

func TestClearingLinkFaultDisablesFaultPath(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.nw.SetLink(0, 1, 1, 0)
	if !h.nw.faults {
		t.Fatal("fault flag not set after SetLink")
	}
	h.nw.SetLink(0, 1, 0, 0)
	if h.nw.faults {
		t.Fatal("fault flag still set after clearing the only link fault")
	}
	h.eng.Schedule(0, func() { h.nw.Send(0, 1, "m") })
	h.eng.Run()
	if got := len(h.deliveriesTo(1)); got != 1 {
		t.Fatalf("cleared link delivered %d, want 1", got)
	}
}

func TestSetLinkValidation(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	for name, fn := range map[string]func(){
		"self link":     func() { h.nw.SetLink(0, 0, 0.5, 0) },
		"loss above 1":  func() { h.nw.SetLink(0, 1, 1.5, 0) },
		"negative loss": func() { h.nw.SetLink(0, 1, -0.1, 0) },
		"out of range":  func() { h.nw.SetLink(0, 2, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPartitionValidation(t *testing.T) {
	h := newHarness(t, DefaultConfig(3))
	for name, groups := range map[string][][]int{
		"out of range": {{0, 3}},
		"duplicate":    {{0, 1}, {1, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			h.nw.SetPartition(groups)
		}()
	}
}

func TestRecoverReversesCrash(t *testing.T) {
	h := newHarness(t, DefaultConfig(2))
	h.eng.Schedule(0, func() { h.nw.Crash(1) })
	h.eng.Schedule(ms(1), func() { h.nw.Send(0, 1, "dropped") })
	h.eng.Schedule(ms(10), func() {
		h.nw.Recover(1)
		h.nw.Send(0, 1, "delivered")
		h.nw.Send(1, 0, "outbound")
	})
	h.eng.Run()
	d1 := h.deliveriesTo(1)
	if len(d1) != 1 || d1[0].payload != "delivered" {
		t.Fatalf("post-recovery deliveries to p1 = %+v", d1)
	}
	if d0 := h.deliveriesTo(0); len(d0) != 1 || d0[0].payload != "outbound" {
		t.Fatalf("recovered process could not send: %+v", d0)
	}
}
