package experiment

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/groups"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Trace is a cross-cutting observer that streams every observed
// replication to an io.Writer in a replayable text format, so any sweep
// point can be re-run and inspected offline. Each replication records
// its full configuration, every A-broadcast, every message lifecycle
// point of the network model (send, wire, deliver, drop), every fault-
// plan event as it applies and every A-delivery, and closes with an
// FNV-1a digest of its delivery records.
// Replay re-executes a trace's replications from the recorded
// configurations and checks the digests match — the simulations are
// deterministic in virtual time, so a trace replays identically on any
// machine.
//
// Attach it by appending its Observer method to Config.Observers. Events
// are buffered per replication; call Flush after the run to write the
// buffers in canonical (point, replication) order, which makes the
// output bit-identical at any Runner.Workers count.
//
// The format is line-oriented; times are virtual nanoseconds:
//
//	C <config JSON>                    replication header (see traceHeader)
//	B <sender> <origin> <seq> <at>     A-broadcast
//	N <stage> <from> <to> <at> <name>  network lifecycle point
//	F <at> <event>                     fault-plan event applied
//	L <at> <event>                     load-plan event applied
//	D <process> <origin> <seq> <at>    A-delivery
//	T <dropped>                        N records dropped to the buffer bound
//	E <fnv1a digest of the D records>  end of replication
type Trace struct {
	mu   sync.Mutex
	w    io.Writer
	reps map[repKey]*traceRep

	gzipOut  bool
	bufLimit int
}

// TraceOption configures a Trace at construction.
type TraceOption func(*Trace)

// TraceGzip makes Flush gzip-compress its output: each Flush writes one
// gzip member, so appending several runs to one file still yields a valid
// stream. ReplayTrace detects compression automatically, so traces stay
// replayable either way. Long traces are dominated by repetitive N
// records and compress by an order of magnitude.
func TraceGzip() TraceOption { return func(t *Trace) { t.gzipOut = true } }

// TraceBufferLimit bounds each replication's in-memory buffer to roughly
// the given number of bytes: once a replication's buffer reaches the
// limit, further N (network lifecycle) records are dropped and counted,
// and the replication closes with a "T <dropped>" marker. B and D records
// are always kept — they are small, and the D records carry the replay
// digest — so a bounded trace still replays and verifies. Multi-minute
// replications are dominated by N records (tens per message), which is
// what makes the bound effective.
func TraceBufferLimit(bytes int) TraceOption {
	if bytes <= 0 {
		panic(fmt.Sprintf("experiment: TraceBufferLimit(%d) is not positive", bytes))
	}
	return func(t *Trace) { t.bufLimit = bytes }
}

// NewTrace creates a trace exporter writing to w.
func NewTrace(w io.Writer, opts ...TraceOption) *Trace {
	t := &Trace{w: w, reps: make(map[repKey]*traceRep)}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Observer is the ObserverFactory of the exporter: pass it in
// Config.Observers.
func (t *Trace) Observer(point, rep int, cfg Config) Observer {
	r := &traceRep{limit: t.bufLimit}
	hdr := headerFromConfig(cfg, point, rep)
	b, err := json.Marshal(hdr)
	if err != nil {
		// The header is plain numbers and slices; failure is a bug here.
		panic(fmt.Sprintf("experiment: trace header: %v", err))
	}
	r.buf.WriteString("C ")
	r.buf.Write(b)
	r.buf.WriteByte('\n')
	t.mu.Lock()
	t.reps[repKey{point, rep}] = r
	t.mu.Unlock()
	return r
}

// Flush writes every buffered replication to the writer in canonical
// (point, replication) order and drops the buffers. Call it once after
// the run; a Trace can be reused for another run afterwards.
func (t *Trace) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.w
	var gz *gzip.Writer
	if t.gzipOut {
		gz = gzip.NewWriter(t.w)
		w = gz
	}
	for _, k := range t.sortedKeys() {
		r := t.reps[k]
		if _, err := w.Write(r.buf.Bytes()); err != nil {
			return err
		}
		if r.droppedNet > 0 {
			if _, err := fmt.Fprintf(w, "T %d\n", r.droppedNet); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "E %016x\n", r.digest()); err != nil {
			return err
		}
	}
	t.reps = make(map[repKey]*traceRep)
	if gz != nil {
		return gz.Close()
	}
	return nil
}

// Digests returns the delivery digest of every buffered replication in
// canonical (point, replication) order, without flushing.
func (t *Trace) Digests() []TraceDigest {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceDigest, 0, len(t.reps))
	for _, k := range t.sortedKeys() {
		out = append(out, TraceDigest{Point: k.point, Rep: k.rep, Digest: t.reps[k].digest()})
	}
	return out
}

// sortedKeys returns the buffered replication keys in canonical order.
// Callers must hold t.mu.
func (t *Trace) sortedKeys() []repKey {
	keys := make([]repKey, 0, len(t.reps))
	for k := range t.reps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].point != keys[j].point {
			return keys[i].point < keys[j].point
		}
		return keys[i].rep < keys[j].rep
	})
	return keys
}

// TraceDigest names one replication's delivery digest.
type TraceDigest struct {
	Point, Rep int
	Digest     uint64
}

// traceRep buffers one replication's records. It runs on the
// replication's goroutine only; the Trace mutex guards only the registry.
type traceRep struct {
	buf    bytes.Buffer
	dLines bytes.Buffer // delivery records only, the digested subset
	// limit bounds buf: at or past it, N records are dropped and counted
	// instead of appended. Zero means unbounded.
	limit      int
	droppedNet int
}

func (r *traceRep) ObserveBroadcast(b Broadcast) {
	fmt.Fprintf(&r.buf, "B %d %d %d %d\n", b.Sender, b.ID.Origin, b.ID.Seq, int64(b.At))
}

func (r *traceRep) ObserveDelivery(d Delivery) {
	line := fmt.Sprintf("D %d %d %d %d\n", d.Process, d.ID.Origin, d.ID.Seq, int64(d.At))
	r.buf.WriteString(line)
	r.dLines.WriteString(line)
}

func (r *traceRep) ObserveNet(ev netmodel.TraceEvent) {
	if r.limit > 0 && r.buf.Len() >= r.limit {
		r.droppedNet++
		return
	}
	fmt.Fprintf(&r.buf, "N %s %d %d %d %s\n",
		ev.Kind, ev.From, ev.To, int64(ev.At), netmodel.PayloadName(ev.Payload))
}

func (r *traceRep) ObservePlan(at sim.Time, ev PlanEvent) {
	fmt.Fprintf(&r.buf, "F %d %s\n", int64(at), ev)
}

func (r *traceRep) ObserveLoad(at sim.Time, ev LoadEvent) {
	fmt.Fprintf(&r.buf, "L %d %s\n", int64(at), ev)
}

// digest folds the replication's delivery records into FNV-1a.
func (r *traceRep) digest() uint64 {
	h := fnv.New64a()
	h.Write(r.dLines.Bytes())
	return h.Sum64()
}

// traceHeader is the serialisable image of one replication's
// configuration: enough to re-run it. Durations are nanoseconds.
type traceHeader struct {
	Kind            string  `json:"kind"` // "steady" or "transient"
	Point           int     `json:"point"`
	Rep             int     `json:"rep"`
	Algorithm       int     `json:"alg"`
	N               int     `json:"n"`
	Throughput      float64 `json:"throughput"`
	Lambda          float64 `json:"lambda,omitempty"`
	TD              int64   `json:"td,omitempty"`
	TMR             int64   `json:"tmr,omitempty"`
	TM              int64   `json:"tm,omitempty"`
	Crashed         []int   `json:"crashed,omitempty"`
	DisableRenumber bool    `json:"disableRenumber,omitempty"`
	DistSketch      float64 `json:"distSketch,omitempty"`
	Seed            uint64  `json:"seed"`
	Warmup          int64   `json:"warmup"`
	Measure         int64   `json:"measure"`
	Drain           int64   `json:"drain"`
	Replications    int     `json:"replications"`
	HbInterval      int64   `json:"hbInterval,omitempty"`
	HbTimeout       int64   `json:"hbTimeout,omitempty"`
	Crash           int     `json:"crash,omitempty"`
	Sender          int     `json:"sender,omitempty"`
	// Topo is the configuration's topology, as a generator call or a raw
	// graph dump, so topology replications replay from the header alone.
	Topo *topo.Spec `json:"topo,omitempty"`
	// Groups is the configuration's group map, as a generator call or raw
	// member lists, so grouped replications replay from the header alone.
	Groups *groups.Spec `json:"groups,omitempty"`
	// CrossShard is the starting cross-shard traffic fraction (groups
	// mode).
	CrossShard float64 `json:"crossShard,omitempty"`
	// ParallelSim and SimWorkers record the execution mode the trace was
	// recorded under. Parallel execution is bit-identical to serial, so
	// replay honours the mode for fidelity, not for correctness.
	ParallelSim bool `json:"parallelSim,omitempty"`
	SimWorkers  int  `json:"simWorkers,omitempty"`
	// Plan is the configuration's fault plan, flattened one event per
	// entry, so planned replications replay from the header alone.
	Plan []planEventJSON `json:"plan,omitempty"`
	// Load is the configuration's load plan, flattened the same way.
	Load []loadEventJSON `json:"load,omitempty"`
}

// planEventJSON is the flat, kind-tagged image of one PlanEvent.
type planEventJSON struct {
	Kind   string  `json:"kind"`
	At     int64   `json:"at,omitempty"`
	P      int     `json:"p,omitempty"`
	For    int64   `json:"for,omitempty"`
	By     []int   `json:"by,omitempty"`
	Groups [][]int `json:"groups,omitempty"`
	From   int     `json:"from,omitempty"`
	To     int     `json:"to,omitempty"`
	Loss   float64 `json:"loss,omitempty"`
	Delay  int64   `json:"delay,omitempty"`
}

// planToJSON flattens a plan for the trace header. A nil plan yields nil.
func planToJSON(plan *FaultPlan) []planEventJSON {
	if plan == nil {
		return nil
	}
	out := make([]planEventJSON, 0, len(plan.Events))
	for _, ev := range plan.Events {
		var j planEventJSON
		switch e := ev.(type) {
		case Crash:
			j = planEventJSON{Kind: "crash", At: int64(e.At), P: int(e.P)}
		case Recover:
			j = planEventJSON{Kind: "recover", At: int64(e.At), P: int(e.P)}
		case SuspicionBurst:
			j = planEventJSON{Kind: "suspect", At: int64(e.At), P: int(e.P), For: int64(e.For)}
			for _, q := range e.By {
				j.By = append(j.By, int(q))
			}
		case Partition:
			j = planEventJSON{Kind: "partition", At: int64(e.At)}
			j.Groups = make([][]int, len(e.Groups))
			for gi, g := range e.Groups {
				j.Groups[gi] = make([]int, len(g))
				for i, p := range g {
					j.Groups[gi][i] = int(p)
				}
			}
		case Heal:
			j = planEventJSON{Kind: "heal", At: int64(e.At)}
		case LinkFault:
			j = planEventJSON{Kind: "link", At: int64(e.At), From: int(e.From), To: int(e.To),
				Loss: e.Loss, Delay: int64(e.ExtraDelay)}
		case PreCrash:
			j = planEventJSON{Kind: "precrash", P: int(e.P)}
		default:
			panic(fmt.Sprintf("experiment: unknown plan event type %T", ev))
		}
		out = append(out, j)
	}
	return out
}

// planFromJSON rebuilds a plan from its header image. Unknown kinds are
// an error: replaying a trace from a newer writer must fail loudly, not
// silently skip faults.
func planFromJSON(events []planEventJSON) (*FaultPlan, error) {
	if len(events) == 0 {
		return nil, nil
	}
	plan := &FaultPlan{Events: make([]PlanEvent, 0, len(events))}
	for _, j := range events {
		switch j.Kind {
		case "crash":
			plan.Events = append(plan.Events, Crash{At: time.Duration(j.At), P: proto.PID(j.P)})
		case "recover":
			plan.Events = append(plan.Events, Recover{At: time.Duration(j.At), P: proto.PID(j.P)})
		case "suspect":
			e := SuspicionBurst{At: time.Duration(j.At), P: proto.PID(j.P), For: time.Duration(j.For)}
			for _, q := range j.By {
				e.By = append(e.By, proto.PID(q))
			}
			plan.Events = append(plan.Events, e)
		case "partition":
			e := Partition{At: time.Duration(j.At), Groups: make([][]proto.PID, len(j.Groups))}
			for gi, g := range j.Groups {
				e.Groups[gi] = make([]proto.PID, len(g))
				for i, p := range g {
					e.Groups[gi][i] = proto.PID(p)
				}
			}
			plan.Events = append(plan.Events, e)
		case "heal":
			plan.Events = append(plan.Events, Heal{At: time.Duration(j.At)})
		case "link":
			plan.Events = append(plan.Events, LinkFault{At: time.Duration(j.At),
				From: proto.PID(j.From), To: proto.PID(j.To),
				Loss: j.Loss, ExtraDelay: time.Duration(j.Delay)})
		case "precrash":
			plan.Events = append(plan.Events, PreCrash{P: proto.PID(j.P)})
		default:
			return nil, fmt.Errorf("experiment: trace header has unknown plan event kind %q", j.Kind)
		}
	}
	return plan, nil
}

// loadEventJSON is the flat, kind-tagged image of one LoadEvent.
// AllSenders marshals as its literal value, -1.
type loadEventJSON struct {
	Kind     string  `json:"kind"`
	At       int64   `json:"at,omitempty"`
	Sender   int     `json:"sender,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	For      int64   `json:"for,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
}

// loadToJSON flattens a load plan for the trace header. A nil plan yields
// nil.
func loadToJSON(plan *LoadPlan) []loadEventJSON {
	if plan == nil {
		return nil
	}
	out := make([]loadEventJSON, 0, len(plan.Events))
	for _, ev := range plan.Events {
		var j loadEventJSON
		switch e := ev.(type) {
		case RateChange:
			j = loadEventJSON{Kind: "rate", At: int64(e.At), Sender: int(e.Sender), Rate: e.Rate}
		case Burst:
			j = loadEventJSON{Kind: "burst", At: int64(e.At), Sender: int(e.Sender), Factor: e.Factor, For: int64(e.For)}
		case Mute:
			j = loadEventJSON{Kind: "mute", At: int64(e.At), Sender: int(e.Sender)}
		case Unmute:
			j = loadEventJSON{Kind: "unmute", At: int64(e.At), Sender: int(e.Sender)}
		case Pause:
			j = loadEventJSON{Kind: "pause", At: int64(e.At)}
		case Resume:
			j = loadEventJSON{Kind: "resume", At: int64(e.At)}
		case ShardMix:
			j = loadEventJSON{Kind: "shardmix", At: int64(e.At), Fraction: e.Fraction}
		default:
			panic(fmt.Sprintf("experiment: unknown load event type %T", ev))
		}
		out = append(out, j)
	}
	return out
}

// loadFromJSON rebuilds a load plan from its header image. Unknown kinds
// are an error: replaying a trace from a newer writer must fail loudly,
// not silently skip load shaping.
func loadFromJSON(events []loadEventJSON) (*LoadPlan, error) {
	if len(events) == 0 {
		return nil, nil
	}
	plan := &LoadPlan{Events: make([]LoadEvent, 0, len(events))}
	for _, j := range events {
		switch j.Kind {
		case "rate":
			plan.Events = append(plan.Events, RateChange{At: time.Duration(j.At), Sender: proto.PID(j.Sender), Rate: j.Rate})
		case "burst":
			plan.Events = append(plan.Events, Burst{At: time.Duration(j.At), Sender: proto.PID(j.Sender), Factor: j.Factor, For: time.Duration(j.For)})
		case "mute":
			plan.Events = append(plan.Events, Mute{At: time.Duration(j.At), Sender: proto.PID(j.Sender)})
		case "unmute":
			plan.Events = append(plan.Events, Unmute{At: time.Duration(j.At), Sender: proto.PID(j.Sender)})
		case "pause":
			plan.Events = append(plan.Events, Pause{At: time.Duration(j.At)})
		case "resume":
			plan.Events = append(plan.Events, Resume{At: time.Duration(j.At)})
		case "shardmix":
			plan.Events = append(plan.Events, ShardMix{At: time.Duration(j.At), Fraction: j.Fraction})
		default:
			return nil, fmt.Errorf("experiment: trace header has unknown load event kind %q", j.Kind)
		}
	}
	return plan, nil
}

// headerFromConfig captures cfg (already defaulted by the runner) for
// the trace: kind "steady", or kind "transient" with the crash/sender
// pair when the runner marked the config as a transient replication.
func headerFromConfig(cfg Config, point, rep int) traceHeader {
	h := traceHeader{
		Kind:            "steady",
		Point:           point,
		Rep:             rep,
		Algorithm:       int(cfg.Algorithm),
		N:               cfg.N,
		Throughput:      cfg.Throughput,
		Lambda:          cfg.Lambda,
		TD:              int64(cfg.QoS.TD),
		TMR:             int64(cfg.QoS.TMR),
		TM:              int64(cfg.QoS.TM),
		DisableRenumber: cfg.DisableRenumber,
		DistSketch:      cfg.DistSketch,
		Seed:            cfg.Seed,
		Warmup:          int64(cfg.Warmup),
		Measure:         int64(cfg.Measure),
		Drain:           int64(cfg.Drain),
		Replications:    cfg.Replications,
		ParallelSim:     cfg.ParallelSim,
		SimWorkers:      cfg.SimWorkers,
	}
	for _, p := range cfg.Crashed {
		h.Crashed = append(h.Crashed, int(p))
	}
	if cfg.Detector != nil {
		h.HbInterval = int64(cfg.Detector.Interval)
		h.HbTimeout = int64(cfg.Detector.Timeout)
		if h.HbInterval == 0 {
			// Make the default explicit so the header is self-contained.
			h.HbInterval = int64(10 * time.Millisecond)
		}
		if h.HbTimeout == 0 {
			h.HbTimeout = 3 * h.HbInterval
		}
	}
	if cfg.Topology != nil {
		spec := cfg.Topology.Spec()
		h.Topo = &spec
	}
	if cfg.Groups != nil {
		h.Groups = cfg.Groups.Spec()
		h.CrossShard = cfg.CrossShard
	}
	h.Plan = planToJSON(cfg.Plan)
	h.Load = loadToJSON(cfg.Load)
	if ti := cfg.transient; ti != nil {
		h.Kind = "transient"
		h.Crash = int(ti.crash)
		h.Sender = int(ti.sender)
	}
	return h
}

// configFromHeader rebuilds the replication's Config (no observers).
func configFromHeader(h traceHeader) (Config, error) {
	cfg := Config{
		Algorithm:       Algorithm(h.Algorithm),
		N:               h.N,
		Throughput:      h.Throughput,
		Lambda:          h.Lambda,
		DisableRenumber: h.DisableRenumber,
		DistSketch:      h.DistSketch,
		Seed:            h.Seed,
		Warmup:          time.Duration(h.Warmup),
		Measure:         time.Duration(h.Measure),
		Drain:           time.Duration(h.Drain),
		Replications:    h.Replications,
		ParallelSim:     h.ParallelSim,
		SimWorkers:      h.SimWorkers,
	}
	cfg.QoS.TD = time.Duration(h.TD)
	cfg.QoS.TMR = time.Duration(h.TMR)
	cfg.QoS.TM = time.Duration(h.TM)
	for _, p := range h.Crashed {
		cfg.Crashed = append(cfg.Crashed, proto.PID(p))
	}
	if h.HbInterval != 0 || h.HbTimeout != 0 {
		cfg.Detector = &Heartbeat{
			Interval: time.Duration(h.HbInterval),
			Timeout:  time.Duration(h.HbTimeout),
		}
	}
	if h.Topo != nil {
		t, err := topo.FromSpec(*h.Topo)
		if err != nil {
			return cfg, err
		}
		cfg.Topology = t
	}
	if h.Groups != nil {
		m, err := groups.FromSpec(h.Groups)
		if err != nil {
			return cfg, err
		}
		cfg.Groups = m
		cfg.CrossShard = h.CrossShard
	}
	plan, err := planFromJSON(h.Plan)
	if err != nil {
		return cfg, err
	}
	cfg.Plan = plan
	load, err := loadFromJSON(h.Load)
	if err != nil {
		return cfg, err
	}
	cfg.Load = load
	return cfg, nil
}

// ReplayResult reports one replayed replication.
type ReplayResult struct {
	Point, Rep int
	// Recorded is the delivery digest stored in the trace; Replayed is
	// the digest of the re-run. Match means they agree bit for bit.
	Recorded, Replayed uint64
	Match              bool
}

// Replay re-executes every replication recorded in a trace from its
// embedded configuration and compares the delivery digests. The
// underlying simulations are deterministic, so a mismatch means either
// the trace was edited or the simulator's behaviour changed since the
// trace was recorded. Gzip-compressed traces (TraceGzip) are detected
// automatically.
func Replay(r io.Reader) ([]ReplayResult, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("experiment: gzip trace: %w", err)
		}
		defer gz.Close()
		return replayPlain(gz)
	}
	return replayPlain(br)
}

func replayPlain(r io.Reader) ([]ReplayResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []ReplayResult
	var hdr *traceHeader
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "C "):
			if hdr != nil {
				return out, fmt.Errorf("experiment: trace replication (point %d, rep %d) has no E record", hdr.Point, hdr.Rep)
			}
			var h traceHeader
			if err := json.Unmarshal([]byte(line[2:]), &h); err != nil {
				return out, fmt.Errorf("experiment: bad trace header: %w", err)
			}
			hdr = &h
		case strings.HasPrefix(line, "E "):
			if hdr == nil {
				return out, fmt.Errorf("experiment: E record without a preceding C header")
			}
			var recorded uint64
			if _, err := fmt.Sscanf(line[2:], "%x", &recorded); err != nil {
				return out, fmt.Errorf("experiment: bad digest %q: %w", line[2:], err)
			}
			replayed, err := replayOne(*hdr)
			if err != nil {
				return out, err
			}
			out = append(out, ReplayResult{
				Point:    hdr.Point,
				Rep:      hdr.Rep,
				Recorded: recorded,
				Replayed: replayed,
				Match:    recorded == replayed,
			})
			hdr = nil
		}
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if hdr != nil {
		return out, fmt.Errorf("experiment: trace ends mid-replication (point %d, rep %d)", hdr.Point, hdr.Rep)
	}
	return out, nil
}

// replayOne re-runs a single recorded replication and returns the
// delivery digest of the re-run.
func replayOne(h traceHeader) (uint64, error) {
	cfg, err := configFromHeader(h)
	if err != nil {
		return 0, err
	}
	if err := cfg.validate(); err != nil {
		return 0, fmt.Errorf("experiment: trace header invalid: %w", err)
	}
	rec := &traceRep{}
	cfg.Observers = []ObserverFactory{
		func(int, int, Config) Observer { return rec },
	}
	switch h.Kind {
	case "steady":
		runReplication(cfg, h.Point, h.Rep, newSteadyScenario(cfg, h.Rep))
	case "transient":
		tc := TransientConfig{Config: cfg, Crash: proto.PID(h.Crash), Sender: proto.PID(h.Sender)}
		runReplication(cfg, h.Point, h.Rep, CrashTransient(tc, h.Rep))
	default:
		return 0, fmt.Errorf("experiment: unknown trace kind %q", h.Kind)
	}
	return rec.digest(), nil
}
