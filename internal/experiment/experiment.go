// Package experiment implements the paper's benchmark methodology (§5):
// repeatable scenarios specifying the workload, the occurrence of crashes
// and suspicions, and the latency metric, with failure detectors described
// only by their QoS parameters.
//
// Latency of one atomic broadcast is the time from A-broadcast(m) to the
// earliest A-delivery of m on any process (§5.1). A run reports the mean
// over many messages; an experiment aggregates several independent
// replications into a mean with a 95% confidence interval — the error
// bars of every figure in §7.
//
// The four scenarios:
//
//   - normal-steady: no crashes, no suspicions (Fig. 4);
//   - crash-steady: some processes crashed long before the measurement —
//     failure detectors suspect them from the start and the GM view never
//     contained them (Fig. 5);
//   - suspicion-steady: no crashes, wrong suspicions at QoS (TMR, TM)
//     (Figs. 6 and 7);
//   - crash-transient: a forced crash of one process with a probe message
//     A-broadcast at the crash instant; the metric is the probe's latency,
//     worst-cased over the crashed/sender pair (Fig. 8).
//
// Parallelism exists at two independent levels, neither of which changes
// a single bit of output: Runner.Workers fans the (point, replication)
// grid out over a worker pool (each replication is its own simulation),
// and Config.ParallelSim executes conflict domains concurrently inside
// one simulation (see internal/sim and netmodel.ConflictDomains).
package experiment

import (
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Algorithm selects which atomic broadcast runs.
type Algorithm int

// The algorithms under comparison.
const (
	// FD is the Chandra–Toueg atomic broadcast on unreliable failure
	// detectors (§4.1).
	FD Algorithm = iota + 1
	// GM is the fixed-sequencer atomic broadcast on group membership
	// (§4.2), uniform variant.
	GM
	// GMNonUniform is the two-multicast non-uniform variant (§8).
	GMNonUniform
)

// String returns the short name used in figure legends.
func (a Algorithm) String() string {
	switch a {
	case FD:
		return "FD"
	case GM:
		return "GM"
	case GMNonUniform:
		return "GM-nu"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config describes one experiment point.
type Config struct {
	// Algorithm selects the protocol under test.
	Algorithm Algorithm
	// N is the number of processes (the paper uses 3 and 7).
	N int
	// Throughput is the overall nominal A-broadcast rate in messages per
	// second; each process sends at Throughput/N.
	Throughput float64
	// Lambda is the network model's CPU/wire cost ratio; zero selects
	// λ = 1, the value of every figure in the DSN paper.
	Lambda float64
	// Topology is the connectivity graph the network routes over: nil
	// selects the paper's model, a full mesh on one shared wire
	// (topo.FullMesh(N)), bit-identical to the pre-topology stack. Any
	// other graph — ring, clique, star, a geo-replicated layout of
	// datacenter cliques joined by WAN links, or a hand-built Topology —
	// changes the routes, the contention domains and the per-wire
	// delay/loss while every other axis (plans, loads, detectors, ...)
	// composes unchanged. The topology's N must equal Config.N. Trace
	// headers embed it, so topology runs replay.
	Topology *topo.Topology
	// Groups, if non-nil and non-trivial, shards the system into groups
	// (possibly overlapping; see internal/groups): each group runs its
	// own protocol instance over its topology subgraph and the workload
	// becomes genuine atomic multicast — each broadcast is addressed to
	// the sender's home group, plus one other group with probability
	// CrossShard. Groups must cover exactly N processes and, with a
	// Topology, every group must be internally connected. A trivial map
	// (one group covering everyone) is normalized away and bit-identical
	// to nil. Trace headers embed the map, so grouped runs replay.
	Groups *groups.GroupMap
	// CrossShard is the fraction of generated broadcasts addressed to a
	// second group besides the sender's home group (groups mode only),
	// in [0, 1]. A ShardMix load event changes it mid-run.
	CrossShard float64
	// QoS parameterises the failure detectors (§6.2). Ignored when
	// Detector selects the concrete heartbeat implementation.
	QoS fd.QoS
	// Detector, if non-nil, replaces the abstract QoS failure-detector
	// model with the concrete heartbeat detector of internal/hbfd: every
	// process multicasts heartbeats through the same contended network as
	// protocol messages, so detection quality degrades with load instead
	// of following prescribed QoS metrics. The QoS field is then ignored
	// (the modelled detectors stay silent), which lets a Sweep cross a
	// QoS axis with a Detectors axis without invalid points.
	Detector *Heartbeat
	// Crashed lists pre-crashed processes (crash-steady): suspected from
	// the start, outside the initial GM view, sending nothing. It is a
	// constructor for the plan's PreCrash events — listing a process here
	// and planning PreCrash for it produce bit-identical runs.
	Crashed []proto.PID
	// Plan is the replication's fault- and environment-injection timeline:
	// crashes and recoveries, suspicion bursts, partitions and heals,
	// per-link loss and delay. Every scenario installs it through the same
	// machinery (see FaultPlan and Faults), and it composes with sweeps
	// via Sweep.Plans, with observers via PlanObserver, and with trace
	// export — trace headers embed the plan, so planned replications
	// replay. A nil plan is the fault-free timeline.
	Plan *FaultPlan
	// Load is the replication's workload-shaping timeline: rate changes
	// (global or per-sender), bursts, per-sender mutes, whole-workload
	// pauses. It is FaultPlan's load-side sibling and composes the same
	// way — Sweep.Loads crosses shaping schedules with every other axis
	// (Sweep.Plans included, so "overload while partitioned" is one grid
	// point), LoadObserver watches events apply, and trace headers embed
	// the plan for replay. A nil plan is the constant-rate workload.
	Load *LoadPlan
	// Renumber enables the FD algorithm's coordinator renumbering
	// optimisation (§7, crash-steady discussion). On by default through
	// DisableRenumber.
	DisableRenumber bool
	// ParallelSim enables conservative parallel execution inside each
	// replication's simulation: the topology (and groups map) is
	// partitioned into conflict domains that advance concurrently inside
	// safe windows bounded by the minimum cross-domain wire cost. The
	// run's observable behavior — deliveries, views, traces, figures —
	// is bit-identical to the serial engine at any worker count.
	// Topologies whose wires are all shared (the paper's full mesh)
	// collapse to one domain and run serially regardless; configurations
	// that draw from shared random streams mid-window (lossy link plans,
	// cross-shard mixing) are serialised automatically. Trace headers
	// record the mode.
	ParallelSim bool
	// SimWorkers bounds the goroutines draining conflict domains when
	// ParallelSim is set. Zero (or any value below 1) means 1; values
	// above the domain count are clamped.
	SimWorkers int
	// Seed makes the experiment reproducible. Zero means seed 1.
	Seed uint64
	// Warmup is discarded virtual time before measurement starts.
	Warmup time.Duration
	// Measure is the virtual time window whose messages are measured.
	Measure time.Duration
	// Drain bounds how long after the measure window the run waits for
	// outstanding deliveries; messages still missing mark the point
	// unstable.
	Drain time.Duration
	// Replications is the number of independent runs aggregated into the
	// confidence interval. Zero selects 5.
	Replications int
	// Observers lists cross-cutting observer factories; the replication
	// engine builds one observer per replication from each and feeds it
	// the replication's events alongside the scenario. See Observer,
	// LatencyDist and Trace.
	Observers []ObserverFactory
	// DistSketch switches the per-point latency distributions
	// (Result.Dist, RepStats.Latencies, LatencyDist) from exact raw-value
	// retention to a mergeable streaming quantile sketch with relative
	// error at most DistSketch (see stats.Sketch): a huge point then
	// costs O(sketch) memory instead of O(messages). Mean, CI95 and the
	// extrema stay exact; quantiles carry the bound; Dist.Values becomes
	// nil. Zero (the default) keeps exact mode; values must lie in
	// [0, 1). Sketch-mode results remain bit-identical at any worker
	// count — bucket-count merges commute.
	DistSketch float64
	// transient carries the crash-transient parameters down to observers
	// when the runner executes the transient scenario, so a trace records
	// the replayable scenario kind. Set by Runner.TransientAll only.
	transient *transientInfo
}

// transientInfo is the crash-transient scenario's identity as seen by
// observers.
type transientInfo struct {
	crash, sender proto.PID
}

// Heartbeat tunes the concrete heartbeat failure detector selected by
// Config.Detector (see internal/hbfd).
type Heartbeat struct {
	// Interval between heartbeats. Zero selects 10 ms.
	Interval time.Duration
	// Timeout of silence before suspicion. Zero selects 3x Interval.
	Timeout time.Duration
}

// Defaults used when Config fields are zero.
const (
	DefaultWarmup       = 2 * time.Second
	DefaultMeasure      = 20 * time.Second
	DefaultDrain        = 30 * time.Second
	DefaultReplications = 5
)

func (c Config) withDefaults() Config {
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultWarmup
	}
	if c.Measure == 0 {
		c.Measure = DefaultMeasure
	}
	if c.Drain == 0 {
		c.Drain = DefaultDrain
	}
	if c.Replications == 0 {
		c.Replications = DefaultReplications
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Algorithm < FD || c.Algorithm > GMNonUniform:
		return fmt.Errorf("experiment: unknown algorithm %d", int(c.Algorithm))
	case c.N < 1:
		return fmt.Errorf("experiment: N = %d", c.N)
	case c.Throughput < 0:
		return fmt.Errorf("experiment: negative throughput")
	case c.DistSketch < 0 || c.DistSketch >= 1:
		return fmt.Errorf("experiment: DistSketch = %v, want 0 (exact) or a relative error in (0, 1)", c.DistSketch)
	case c.Topology != nil && c.Topology.N != c.N:
		return fmt.Errorf("experiment: topology %q is for %d processes, config has N=%d", c.Topology.Name, c.Topology.N, c.N)
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	if err := c.Plan.validate(c.N); err != nil {
		return err
	}
	if err := c.Load.validate(c.N); err != nil {
		return err
	}
	if c.Groups != nil {
		if err := c.Groups.Validate(c.N, c.Topology); err != nil {
			return err
		}
		if c.Algorithm != FD && !c.Groups.Trivial() && c.Plan.hasRecover() {
			return fmt.Errorf("experiment: crash-recovery is unsupported for the GM algorithms in groups mode (group instances have no per-group rejoin)")
		}
	}
	if c.CrossShard < 0 || c.CrossShard > 1 || c.CrossShard != c.CrossShard {
		return fmt.Errorf("experiment: CrossShard = %v, want a fraction in [0, 1]", c.CrossShard)
	}
	if c.Groups == nil || c.Groups.Trivial() {
		if c.CrossShard != 0 {
			return fmt.Errorf("experiment: CrossShard without a (non-trivial) Groups map")
		}
		if c.Load.hasShardMix() {
			return fmt.Errorf("experiment: load plan carries a shardmix event without a (non-trivial) Groups map")
		}
	}
	if pre := len(c.preCrashOrder()); pre >= (c.N+1)/2 {
		return fmt.Errorf("experiment: %d pre-crashes exceed the f < n/2 bound for n = %d", pre, c.N)
	}
	return nil
}

// newDistCollector returns an empty latency collector in the mode
// DistSketch selects: exact by default, sketch-backed when a relative
// error bound is configured.
func (c Config) newDistCollector() stats.Collector {
	if c.DistSketch > 0 {
		return stats.NewSketchCollector(c.DistSketch)
	}
	return stats.Collector{}
}

// preCrashOrder returns the processes crashed before the run starts —
// Config.Crashed first, then the plan's PreCrash events — in declaration
// order with duplicates dropped.
func (c Config) preCrashOrder() []proto.PID {
	out := make([]proto.PID, 0, len(c.Crashed))
	seen := make(map[proto.PID]bool, len(c.Crashed))
	for _, p := range c.Crashed {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range c.Plan.preCrashes() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Result aggregates an experiment's replications.
type Result struct {
	Config Config
	// Latency is the distribution of replication means, in milliseconds:
	// its Mean and CI95 are what the paper plots.
	Latency stats.Summary
	// PerMessage pools every measured message across replications.
	PerMessage stats.Summary
	// Dist is the full pooled latency distribution behind PerMessage,
	// merged in canonical replication order: quantiles, histograms and
	// early/late splits of the same observations. It exposes the shape
	// that a mean with a confidence interval cannot — the crash and
	// suspicion scenarios' split into an early (failure-free latency) and
	// a late (detection- or view-change-delayed) population.
	Dist stats.Collector
	// Quantiles snapshots Dist's order statistics (P50/P90/P99).
	Quantiles stats.Quantiles
	// Messages is the total number of measured (delivered) messages.
	Messages int
	// Undelivered counts measured messages never delivered within the
	// drain window, across replications.
	Undelivered int
	// Stable is false when messages were left undelivered — the regime
	// where the paper omits the GM curve.
	Stable bool
	// Diverged is true when a replication was aborted because its
	// undelivered backlog exceeded DivergenceBacklog: the offered load
	// plus failure handling exceeded the system's capacity.
	Diverged bool
}

// DivergenceBacklog is the undelivered-message backlog beyond which a
// steady-state run is declared divergent and aborted. Transient backlogs
// under legitimate load are orders of magnitude smaller.
const DivergenceBacklog = 2000

// cluster assembles one simulated system running one algorithm. The
// engine, network, detectors and per-process protocol stacks are built
// by the shared Core builder (see builder.go); cluster adds the
// experiment harness's concerns — backlog accounting, observers, fault
// and load installation.
type cluster struct {
	cfg   Config
	core  *Core
	eng   *sim.Engine
	sys   *proto.System
	bcast []func(body any) proto.MsgID
	// faults is the replication's single fault-injection path: the plan
	// installs through it and scripted scenario faults fire through it.
	faults *Faults
	// loads is the replication's single workload-shaping path, built by
	// setupLoad when the scenario installs its workload; Config.Load
	// installs through it.
	loads *Loads
	// sentBy counts the A-broadcasts issued per process, the ID-sequence
	// base a recovered GM incarnation continues from (Core.SentBy).
	sentBy []uint64
	// onDeliver is invoked for every A-delivery at every process; at is
	// the delivery instant (passed explicitly: under the parallel engine
	// the callback runs at the window commit, when the root clock no
	// longer reads the delivery instant).
	onDeliver func(p proto.PID, id proto.MsgID, at sim.Time)
	// onBroadcast, if non-nil, is invoked for every A-broadcast issued
	// through broadcast() — the feed of BroadcastObservers; at is the
	// broadcast instant, explicit for the same reason as onDeliver's.
	onBroadcast func(sender proto.PID, id proto.MsgID, at sim.Time)
	// onPlanEvent, if non-nil, observes plan events as they apply — the
	// feed of PlanObservers.
	onPlanEvent func(ev PlanEvent)
	// onLoadEvent, if non-nil, observes load events as they apply — the
	// feed of LoadObservers.
	onLoadEvent func(ev LoadEvent)
	// broadcasts and deliveredAt0 are the backlog accounting used for
	// divergence detection: every broadcast issued through broadcast()
	// versus deliveries observed at process 0 (always alive in steady
	// scenarios: crash-steady crashes the highest PIDs). In groups mode
	// only multicasts whose destination groups contain p0 count — p0
	// never delivers the rest.
	broadcasts   int
	deliveredAt0 int
	// crossFrac and mixRng drive the groups-mode destination choice:
	// each broadcast goes to the sender's home group, plus one other
	// group with probability crossFrac, drawn from the dedicated "mix"
	// stream (unused in broadcast mode, so a zero fraction consumes no
	// randomness and shard-local-only runs are insensitive to it).
	crossFrac float64
	mixRng    *sim.Rand
	// mixDests is per-sender destination scratch: sources in different
	// conflict domains fire concurrently, so the scratch cannot be
	// shared.
	mixDests [][2]int
}

// broadcast A-broadcasts body from sender and maintains the backlog
// accounting. Scenarios must broadcast through it rather than calling
// bcast directly. A crashed sender generates no load: the zero MsgID is
// returned and nothing is counted (a message ID's Seq is always >= 1, so
// the zero ID is unambiguous).
func (c *cluster) broadcast(sender int, body any) proto.MsgID {
	if c.sys.Proc(proto.PID(sender)).Crashed() {
		return proto.MsgID{}
	}
	if m := c.cfg.Groups; m != nil {
		return c.multicastMixed(m, sender, body)
	}
	c.sentBy[sender]++
	id := c.bcast[sender](body)
	c.countBroadcast(sender, id, true)
	return id
}

// countBroadcast updates the shared backlog counter and feeds the
// broadcast observers. Inside a parallel window the update is deferred
// to the window commit — the counter and the observers are shared
// across domains — where it runs in exact serial order.
func (c *cluster) countBroadcast(sender int, id proto.MsgID, counts bool) {
	h := c.eng.For(sender)
	at := h.Now()
	apply := func() {
		if counts {
			c.broadcasts++
		}
		if c.onBroadcast != nil {
			c.onBroadcast(proto.PID(sender), id, at)
		}
	}
	if h.Deferring() {
		h.Emit(apply)
		return
	}
	apply()
}

// multicastMixed issues one groups-mode broadcast: to the sender's home
// group, plus one uniformly-drawn other group with probability
// crossFrac. Only messages whose destinations contain p0 count toward
// the divergence backlog — p0 never delivers the rest.
func (c *cluster) multicastMixed(m *groups.GroupMap, sender int, body any) proto.MsgID {
	home := m.Home(proto.PID(sender))
	dests := c.mixDests[sender][:1]
	dests[0] = home
	if c.crossFrac > 0 && m.NumGroups() > 1 && c.mixRng.Float64() < c.crossFrac {
		other := c.mixRng.Intn(m.NumGroups() - 1)
		if other >= home {
			other++
		}
		if other < home {
			dests = append(dests[:0], other, home)
		} else {
			dests = append(dests, other)
		}
	}
	c.sentBy[sender]++
	counts := false
	for _, g := range dests {
		if m.Contains(g, 0) {
			counts = true
			break
		}
	}
	id := c.core.Mcast(proto.PID(sender), dests, body)
	c.countBroadcast(sender, id, counts)
	return id
}

// backlog returns the number of broadcasts not yet delivered at p0.
func (c *cluster) backlog() int { return c.broadcasts - c.deliveredAt0 }

// newCluster builds engine + network + detectors + algorithm stack
// through the shared Core builder, and installs the configuration's
// fault plan.
func newCluster(cfg Config, seed uint64) *cluster {
	qos := cfg.QoS
	if cfg.Detector != nil {
		// The concrete heartbeat detector replaces the abstract model:
		// silence the modelled detectors so QoS is genuinely ignored and a
		// Detector point is bit-identical whatever QoS it inherited.
		qos = fd.QoS{}
	}
	if cfg.Groups != nil && cfg.Groups.Trivial() {
		// Normalize here too (NewCore normalizes its own copy): the
		// cluster's broadcast path keys off cfg.Groups.
		cfg.Groups = nil
	}
	c := &cluster{cfg: cfg}
	if cfg.Groups != nil {
		c.crossFrac = cfg.CrossShard
		c.mixRng = sim.NewRand(seed).Fork("mix")
		c.mixDests = make([][2]int, cfg.N)
	}
	// Configurations that draw from shared random streams mid-window —
	// a plan with lossy links, or groups-mode cross-shard mixing (active
	// now, or activatable by a ShardMix load event) — only preserve the
	// serial draw order inside a single conflict domain.
	serialDomains := cfg.Plan.hasLinkLoss() ||
		(cfg.Groups != nil && (cfg.CrossShard > 0 || cfg.Load.hasShardMix()))
	c.core = NewCore(CoreConfig{
		Algorithm:     cfg.Algorithm,
		N:             cfg.N,
		Lambda:        cfg.Lambda,
		Topology:      cfg.Topology,
		Groups:        cfg.Groups,
		QoS:           qos,
		Detector:      cfg.Detector,
		Renumber:      !cfg.DisableRenumber,
		Seed:          seed,
		Parallel:      cfg.ParallelSim,
		Workers:       cfg.SimWorkers,
		SerialDomains: serialDomains,
		PreCrashed:    cfg.preCrashOrder(),
		Deliver: func(pid proto.PID, id proto.MsgID, body any, at sim.Time) {
			if pid == 0 {
				c.deliveredAt0++
			}
			if c.onDeliver != nil {
				c.onDeliver(pid, id, at)
			}
		},
	})
	c.eng = c.core.Eng
	c.sys = c.core.Sys
	c.bcast = c.core.Bcast
	c.sentBy = c.core.SentBy
	c.faults = &Faults{
		Sys:     c.sys,
		Recover: c.core.Recover,
		Healed:  c.core.Healed,
		OnEvent: func(ev PlanEvent) {
			if c.onPlanEvent != nil {
				c.onPlanEvent(ev)
			}
		},
	}
	c.faults.Install(cfg.Plan)
	return c
}

// setupLoad installs the replication's Poisson workload — one source per
// live sender, exactly as workload.Spread always did — and the Loads
// installer that Config.Load (and, through it, every load event) acts on.
// Scenarios call it from Setup; fire receives each arriving broadcast's
// sender. With a nil Config.Load the installer schedules nothing and the
// sources run at their constant spread rate, bit-identical to the
// pre-LoadPlan behaviour.
func (c *cluster) setupLoad(cfg Config, rep int, fire func(sender int)) {
	rng := sim.NewRand(repSeed(cfg.Seed, rep)).Fork("load")
	c.loads = NewSpreadLoads(c.eng, rng, cfg.Throughput, cfg.N, liveSenders(cfg), fire)
	c.loads.OnEvent = func(ev LoadEvent) {
		if c.onLoadEvent != nil {
			c.onLoadEvent(ev)
		}
	}
	if cfg.Groups != nil {
		c.loads.OnShardMix = func(fraction float64) { c.crossFrac = fraction }
	}
	c.loads.Install(cfg.Load)
}

// liveSenders returns the processes that generate load: everyone not
// crashed before the run starts. Processes crashed by plan events keep
// their Poisson source, but broadcast() drops its firings while crashed.
func liveSenders(cfg Config) []int {
	crashed := make(map[proto.PID]bool)
	for _, p := range cfg.preCrashOrder() {
		crashed[p] = true
	}
	var out []int
	for p := 0; p < cfg.N; p++ {
		if !crashed[proto.PID(p)] {
			out = append(out, p)
		}
	}
	return out
}

// repSeed derives the seed of one replication.
func repSeed(base uint64, rep int) uint64 {
	r := sim.NewRand(base)
	return r.ForkN(rep).Uint64()
}

// RunSteady executes a steady-state experiment (normal-steady,
// crash-steady or suspicion-steady, depending on Config.Crashed and
// Config.QoS). It is a thin wrapper over a zero-value Runner, so
// replications run in parallel on GOMAXPROCS workers; the result is
// bit-identical to a serial run.
func RunSteady(cfg Config) Result {
	var r Runner
	return r.Steady(cfg)
}

// TransientConfig extends Config for the crash-transient scenario.
type TransientConfig struct {
	Config
	// Crash is the process forced to crash (the paper presents the worst
	// case: the coordinator/sequencer, process 0).
	Crash proto.PID
	// Sender is the process whose probe message is measured. It must
	// differ from Crash.
	Sender proto.PID
}

// TransientResult reports the crash-transient latency L(p, q).
type TransientResult struct {
	Config TransientConfig
	// Latency is the probe latency distribution over replications (ms).
	Latency stats.Summary
	// Overhead is Latency minus the detection time TD, the quantity
	// Fig. 8 plots.
	Overhead stats.Summary
	// Dist is the probe latency distribution across replications, merged
	// in canonical replication order (ms).
	Dist stats.Collector
	// Quantiles snapshots Dist's order statistics (P50/P90/P99).
	Quantiles stats.Quantiles
	// Lost counts replications whose probe was never delivered.
	Lost int
}

// RunTransient measures L(p, q): the latency of a message A-broadcast by
// Sender at the exact instant Crash crashes, after the system reached a
// steady state under background load. It is a thin wrapper over a
// zero-value Runner.
func RunTransient(cfg TransientConfig) TransientResult {
	var r Runner
	return r.Transient(cfg)
}

// WorstCaseTransient evaluates L(p, q) over every sender q for the given
// crashed process and returns the maximum mean — the paper's
// Lcrash = max L(p, q) restricted to the presented worst case p (the
// coordinator/sequencer). Set sweepCrash to also maximise over p. The
// whole crash × sender grid runs through a zero-value Runner's pool.
func WorstCaseTransient(cfg TransientConfig, sweepCrash bool) TransientResult {
	var r Runner
	return r.WorstCaseTransient(cfg, sweepCrash)
}
