package experiment

import (
	"sort"
	"sync"

	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Broadcast records one A-broadcast issued during a replication: the
// counterpart of Delivery on the sending side.
type Broadcast struct {
	Sender proto.PID
	ID     proto.MsgID
	At     sim.Time
}

// Observer receives a replication's observable events. Observers are the
// composable half of the scenario split: a Scenario decides what load and
// faults a replication runs and which statistic it collects, while
// observers attach cross-cutting measurement — latency distributions,
// trace export, anything event-driven — to any scenario without touching
// it. Config.Observers lists the factories; the replication engine builds
// one observer instance per replication and feeds it every A-delivery.
//
// An observer that also implements BroadcastObserver receives every
// A-broadcast, and one that implements NetObserver receives every
// message lifecycle point from the network model's tracer.
//
// Observer instances are confined to their replication (one goroutine);
// anything shared across replications must synchronise, and anything
// aggregated across replications must merge in canonical (point,
// replication) order to keep results bit-identical at any worker count —
// see LatencyDist for the pattern.
type Observer interface {
	// ObserveDelivery is invoked for every A-delivery at every process.
	ObserveDelivery(d Delivery)
}

// BroadcastObserver is implemented by observers that also want the
// sending side of every message.
type BroadcastObserver interface {
	// ObserveBroadcast is invoked for every A-broadcast issued by the
	// scenario, at the instant it is issued.
	ObserveBroadcast(b Broadcast)
}

// NetObserver is implemented by observers that also want the network
// model's message lifecycle points (send, wire, deliver, drop). The
// engine installs netmodel's tracer only when at least one observer of a
// replication asks for it, so replications without a NetObserver pay
// nothing.
type NetObserver interface {
	// ObserveNet is invoked at every message lifecycle point.
	ObserveNet(ev netmodel.TraceEvent)
}

// PlanObserver is implemented by observers that also want the fault
// plan's events — scripted crashes included — at the instants they apply.
// PreCrash events are initial conditions, not timeline events, and are
// not observed; they are part of the configuration instead.
type PlanObserver interface {
	// ObservePlan is invoked when a plan event applies.
	ObservePlan(at sim.Time, ev PlanEvent)
}

// LoadObserver is implemented by observers that also want the load
// plan's events at the instants they apply. Only plan (and interactively
// scheduled) events are observed, not their internal continuations: a
// Burst is one event, observed when the spike starts.
type LoadObserver interface {
	// ObserveLoad is invoked when a load event applies.
	ObserveLoad(at sim.Time, ev LoadEvent)
}

// ObserverFactory builds one observer instance for one replication.
// point is the index of the replication's config within the executed
// batch — a Sweep's canonical point order, a SteadyAll/TransientAll slice
// index, or 0 for single-point runs — and rep is the replication index
// within that point. Returning nil attaches nothing to the replication.
type ObserverFactory func(point, rep int, cfg Config) Observer

// repKey addresses one replication of one point in an observer's
// cross-replication state.
type repKey struct{ point, rep int }

// LatencyDist is a cross-cutting observer measuring the latency from
// every A-broadcast to its earliest A-delivery on any process, pooled
// per point into mergeable collectors. Unlike Result.Dist — which holds
// only the messages of the measurement window — LatencyDist sees every
// broadcast of the replication, warmup and drain included, and it
// composes with any scenario (the crash-transient scenario measures a
// single probe; attach a LatencyDist to see the background traffic's
// distribution around the crash).
//
// Attach it by appending its Observer method to Config.Observers: each
// replication gets a private instance,
// and per-replication collectors merge in canonical (point, replication)
// order on first read, so the reported distributions are bit-identical
// at any Runner.Workers count.
//
// One LatencyDist accumulates one run: point indices restart at 0 for
// every Runner call, so reusing the observer across runs would overwrite
// colliding (point, replication) slots. Call Reset between runs, or use
// a fresh LatencyDist per run.
type LatencyDist struct {
	mu   sync.Mutex
	reps map[repKey]*latencyDistRep
}

// NewLatencyDist creates an empty distribution observer.
func NewLatencyDist() *LatencyDist {
	return &LatencyDist{reps: make(map[repKey]*latencyDistRep)}
}

// Observer is the ObserverFactory of the distribution: pass it in
// Config.Observers.
func (l *LatencyDist) Observer(point, rep int, cfg Config) Observer {
	// The collector inherits the config's DistSketch mode, so sketch-mode
	// sweeps keep their per-point observers O(sketch) too.
	r := &latencyDistRep{sent: make(map[proto.MsgID]sim.Time), lat: cfg.newDistCollector()}
	l.mu.Lock()
	l.reps[repKey{point, rep}] = r
	l.mu.Unlock()
	return r
}

// Dist returns the point's pooled latency distribution (milliseconds),
// merged in replication order. Call it after the run; a point that was
// never observed returns an empty collector.
func (l *LatencyDist) Dist(point int) stats.Collector {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]repKey, 0, len(l.reps))
	for k := range l.reps {
		if k.point == point {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].rep < keys[j].rep })
	var out stats.Collector
	for _, k := range keys {
		out.Merge(&l.reps[k].lat)
	}
	return out
}

// Quantiles snapshots the point's order statistics (P50/P90/P99).
func (l *LatencyDist) Quantiles(point int) stats.Quantiles {
	d := l.Dist(point)
	return d.Quantiles()
}

// Reset drops every collected distribution, readying the observer for
// another run.
func (l *LatencyDist) Reset() {
	l.mu.Lock()
	l.reps = make(map[repKey]*latencyDistRep)
	l.mu.Unlock()
}

// Points lists the point indices observed so far, ascending.
func (l *LatencyDist) Points() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[int]bool)
	for k := range l.reps {
		seen[k.point] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// latencyDistRep is the per-replication instance: single-goroutine, no
// locking on the event path.
type latencyDistRep struct {
	sent map[proto.MsgID]sim.Time
	lat  stats.Collector
}

func (r *latencyDistRep) ObserveBroadcast(b Broadcast) { r.sent[b.ID] = b.At }

func (r *latencyDistRep) ObserveDelivery(d Delivery) {
	if t0, ok := r.sent[d.ID]; ok {
		r.lat.Add(d.At.Sub(t0).Seconds() * 1000) // milliseconds, like RepStats
		delete(r.sent, d.ID)                     // only the earliest delivery counts
	}
}
