package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/groups"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topo"
)

// FaultPlan is a deterministic, virtual-time-ordered timeline of typed
// fault- and environment-injection events. One plan expresses what used
// to take three ad-hoc surfaces: pre-crashed processes (Config.Crashed),
// scripted mid-run faults (the crash-transient scenario, the interactive
// Cluster's CrashAt/SuspectAt) and everything neither could say —
// recoveries, partitions and heals, per-link loss and delay.
//
// Plans compose with every other axis: carry one on Config.Plan, cross
// several in a sweep through Sweep.Plans, attach observers to watch the
// events fire (PlanObserver), and export replayable traces whose headers
// embed the plan. Replications of a planned experiment stay bit-identical
// at any Runner worker count, exactly like unplanned ones.
//
// Build a plan from literals, or with the chainable helpers:
//
//	plan := experiment.NewFaultPlan().
//		Partition(2500*time.Millisecond, []proto.PID{0, 1, 2}, []proto.PID{3, 4}).
//		Heal(4 * time.Second)
//
// Event times are absolute virtual instants from the start of the
// replication (the workload's warmup starts at zero); events beyond the
// replication's horizon (measure end plus drain) never apply. The
// steady scenarios' divergence abort observes the backlog at process 0,
// so plans that partition or crash p0 away from the majority should
// disable nothing but expect the run to be cut short once the backlog
// passes DivergenceBacklog.
type FaultPlan struct {
	// Events is the timeline. Order is irrelevant: installation sorts by
	// time, ties applying in slice order.
	Events []PlanEvent
}

// NewFaultPlan creates a plan from the given events; the chainable
// helpers below append further ones.
func NewFaultPlan(events ...PlanEvent) *FaultPlan {
	return &FaultPlan{Events: events}
}

// PlanEvent is one typed event on a FaultPlan's timeline. The concrete
// types are Crash, Recover, SuspicionBurst, Partition, Heal, LinkFault
// and PreCrash; the set is closed because every consumer (the installer,
// the trace format, validation) must understand every event.
type PlanEvent interface {
	// When returns the virtual instant the event applies at.
	When() time.Duration
	// String renders the event canonically — the trace format's F lines
	// and error messages use it.
	String() string
	planEvent()
}

// Crash kills process P at instant At: the network stops carrying its
// messages (in-flight ones still arrive), failure detectors begin
// detection, and its handler never runs again — until a Recover.
type Crash struct {
	At time.Duration
	P  proto.PID
}

// Recover revives process P at instant At. The network and failure
// detectors treat P as alive again immediately; what the algorithm does
// depends on what it can do. The GM algorithms model a true
// crash-recovery: a fresh incarnation starts excluded, rejoins through
// the membership service's join protocol and catches up via state
// transfer. The FD algorithm is crash-stop — it has no rejoin protocol —
// so recovery is modelled as the end of a long outage: the process
// resumes with its state intact and closes its decision gap through
// decision-log catch-up (a suffix transfer from a live peer, robust to
// outages far longer than the consensus instance window).
type Recover struct {
	At time.Duration
	P  proto.PID
}

// SuspicionBurst injects a scripted wrong suspicion of P at instant At,
// lasting For (zero is an instantaneous mistake whose suspect and trust
// edges still fire). By lists the monitors that make the mistake; nil
// means every other process — the burst the name promises. Suspicions of
// an already-detected crashed process merge into the permanent one.
type SuspicionBurst struct {
	At  time.Duration
	P   proto.PID
	For time.Duration
	By  []proto.PID
}

// Partition splits the system into isolated groups at instant At: message
// copies crossing groups are discarded before the destination CPU, and
// every failure detector treats unreachable processes like crashed ones
// (suspicion TD after the split, trust on heal). A process listed in no
// group is isolated on its own. A new Partition replaces the previous
// one; Heal removes it.
type Partition struct {
	At     time.Duration
	Groups [][]proto.PID
}

// Heal removes the partition in force at instant At, restoring
// reachability and withdrawing every suspicion the split caused.
type Heal struct {
	At time.Duration
}

// LinkFault degrades the directed link From → To at instant At: each
// message copy on the link is independently lost with probability Loss
// (drawn from a dedicated deterministic stream), and surviving copies
// enter the destination CPU ExtraDelay late. A LinkFault with both zero
// clears the link's fault; a new LinkFault replaces the previous one.
type LinkFault struct {
	At         time.Duration
	From, To   proto.PID
	Loss       float64
	ExtraDelay time.Duration
}

// PreCrash establishes the crash-steady initial condition for P: crashed
// long before the run, suspected by every detector from time zero with no
// edges fired, outside the initial GM view. It applies before the system
// starts (When is always zero). Config.Crashed is a constructor for this
// event: the two spellings produce bit-identical runs.
type PreCrash struct {
	P proto.PID
}

func (e Crash) When() time.Duration          { return e.At }
func (e Recover) When() time.Duration        { return e.At }
func (e SuspicionBurst) When() time.Duration { return e.At }
func (e Partition) When() time.Duration      { return e.At }
func (e Heal) When() time.Duration           { return e.At }
func (e LinkFault) When() time.Duration      { return e.At }
func (e PreCrash) When() time.Duration       { return 0 }

func (Crash) planEvent()          {}
func (Recover) planEvent()        {}
func (SuspicionBurst) planEvent() {}
func (Partition) planEvent()      {}
func (Heal) planEvent()           {}
func (LinkFault) planEvent()      {}
func (PreCrash) planEvent()       {}

func (e Crash) String() string   { return fmt.Sprintf("crash p%d", e.P) }
func (e Recover) String() string { return fmt.Sprintf("recover p%d", e.P) }

func (e SuspicionBurst) String() string {
	by := "all"
	if e.By != nil {
		parts := make([]string, len(e.By))
		for i, q := range e.By {
			parts[i] = fmt.Sprintf("p%d", q)
		}
		by = strings.Join(parts, ",")
	}
	return fmt.Sprintf("suspect p%d for %v by %s", e.P, e.For, by)
}

func (e Partition) String() string {
	parts := make([]string, len(e.Groups))
	for i, g := range e.Groups {
		ms := make([]string, len(g))
		for k, p := range g {
			ms[k] = fmt.Sprintf("%d", p)
		}
		parts[i] = "{" + strings.Join(ms, " ") + "}"
	}
	return "partition " + strings.Join(parts, "|")
}

func (e Heal) String() string { return "heal" }

func (e LinkFault) String() string {
	return fmt.Sprintf("link p%d->p%d loss=%g delay=%v", e.From, e.To, e.Loss, e.ExtraDelay)
}

func (e PreCrash) String() string { return fmt.Sprintf("precrash p%d", e.P) }

// Crash appends a Crash event and returns the plan for chaining.
func (p *FaultPlan) Crash(at time.Duration, pid proto.PID) *FaultPlan {
	p.Events = append(p.Events, Crash{At: at, P: pid})
	return p
}

// Recover appends a Recover event.
func (p *FaultPlan) Recover(at time.Duration, pid proto.PID) *FaultPlan {
	p.Events = append(p.Events, Recover{At: at, P: pid})
	return p
}

// Suspect appends a SuspicionBurst of pid lasting d; by selects the
// monitors (none means all).
func (p *FaultPlan) Suspect(at time.Duration, pid proto.PID, d time.Duration, by ...proto.PID) *FaultPlan {
	p.Events = append(p.Events, SuspicionBurst{At: at, P: pid, For: d, By: by})
	return p
}

// Partition appends a Partition event with the given groups.
func (p *FaultPlan) Partition(at time.Duration, groups ...[]proto.PID) *FaultPlan {
	p.Events = append(p.Events, Partition{At: at, Groups: groups})
	return p
}

// Heal appends a Heal event.
func (p *FaultPlan) Heal(at time.Duration) *FaultPlan {
	p.Events = append(p.Events, Heal{At: at})
	return p
}

// PartitionSites appends a Partition event along the topology's WAN cut:
// the listed sites of a Geo (or any grouped) topology on one side,
// everyone else on the other — the "datacenter falls off the WAN" fault
// as a first-class constructor. It panics if the topology records no
// site groups, exactly like Topology.SiteCut.
func (p *FaultPlan) PartitionSites(at time.Duration, t *topo.Topology, sites ...int) *FaultPlan {
	cut := t.SiteCut(sites...)
	groups := make([][]proto.PID, len(cut))
	for i, g := range cut {
		groups[i] = make([]proto.PID, len(g))
		for k, pid := range g {
			groups[i][k] = proto.PID(pid)
		}
	}
	return p.Partition(at, groups...)
}

// PartitionGroups appends a Partition event isolating the listed groups
// of a GroupMap: the union of their members on one side, everyone else
// on the other. It is PartitionSites' group-layer sibling — "one shard
// falls off the network" as a first-class constructor — and composes
// with overlapping maps (a bridge member of a listed and an unlisted
// group lands on the isolated side).
func (p *FaultPlan) PartitionGroups(at time.Duration, m *groups.GroupMap, gids ...int) *FaultPlan {
	if len(gids) == 0 {
		panic("experiment: PartitionGroups with no groups")
	}
	inA := make([]bool, m.N())
	for _, g := range gids {
		for _, pid := range m.Members(g) {
			inA[pid] = true
		}
	}
	var a, b []proto.PID
	for pid := 0; pid < m.N(); pid++ {
		if inA[pid] {
			a = append(a, proto.PID(pid))
		} else {
			b = append(b, proto.PID(pid))
		}
	}
	if len(b) == 0 {
		panic(fmt.Sprintf("experiment: PartitionGroups(%v) isolates every process", gids))
	}
	return p.Partition(at, a, b)
}

// Link appends a LinkFault event.
func (p *FaultPlan) Link(at time.Duration, from, to proto.PID, loss float64, extraDelay time.Duration) *FaultPlan {
	p.Events = append(p.Events, LinkFault{At: at, From: from, To: to, Loss: loss, ExtraDelay: extraDelay})
	return p
}

// PreCrash appends a PreCrash event.
func (p *FaultPlan) PreCrash(pid proto.PID) *FaultPlan {
	p.Events = append(p.Events, PreCrash{P: pid})
	return p
}

// timed returns the plan's non-PreCrash events sorted by time, stable so
// same-instant events apply in slice order. A nil plan yields nil.
func (p *FaultPlan) timed() []PlanEvent {
	if p == nil {
		return nil
	}
	out := make([]PlanEvent, 0, len(p.Events))
	for _, ev := range p.Events {
		if _, pre := ev.(PreCrash); !pre {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].When() < out[j].When() })
	return out
}

// preCrashes returns the plan's PreCrash targets in slice order. A nil
// plan yields nil.
func (p *FaultPlan) preCrashes() []proto.PID {
	if p == nil {
		return nil
	}
	var out []proto.PID
	for _, ev := range p.Events {
		if pre, ok := ev.(PreCrash); ok {
			out = append(out, pre.P)
		}
	}
	return out
}

// hasRecover reports whether the plan schedules a Recover event, which
// groups mode only supports for the FD algorithm.
func (p *FaultPlan) hasRecover() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if _, ok := ev.(Recover); ok {
			return true
		}
	}
	return false
}

// hasLinkLoss reports whether the plan schedules a lossy link fault.
// Lossy links draw from the network's shared fault stream at every
// affected handoff, which parallel execution only preserves with a
// single conflict domain — the builder serialises such runs.
func (p *FaultPlan) hasLinkLoss() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if lf, ok := ev.(LinkFault); ok && lf.Loss > 0 {
			return true
		}
	}
	return false
}

// Validate checks every event against a system of n processes: process
// IDs in range, non-negative times and durations, loss probabilities in
// [0, 1], partition groups disjoint. A nil plan is valid.
func (p *FaultPlan) Validate(n int) error { return p.validate(n) }

// validate checks every event against a system of n processes.
func (p *FaultPlan) validate(n int) error {
	if p == nil {
		return nil
	}
	checkPID := func(pid proto.PID, what string) error {
		if int(pid) < 0 || int(pid) >= n {
			return fmt.Errorf("experiment: plan %s names process %d, want 0..%d", what, pid, n-1)
		}
		return nil
	}
	for _, ev := range p.Events {
		if ev.When() < 0 {
			return fmt.Errorf("experiment: plan event %q at negative time %v", ev, ev.When())
		}
		switch e := ev.(type) {
		case Crash:
			if err := checkPID(e.P, "crash"); err != nil {
				return err
			}
		case Recover:
			if err := checkPID(e.P, "recover"); err != nil {
				return err
			}
		case PreCrash:
			if err := checkPID(e.P, "precrash"); err != nil {
				return err
			}
		case SuspicionBurst:
			if err := checkPID(e.P, "suspicion"); err != nil {
				return err
			}
			if e.For < 0 {
				return fmt.Errorf("experiment: plan suspicion of p%d with negative duration %v", e.P, e.For)
			}
			for _, q := range e.By {
				if err := checkPID(q, "suspicion monitor"); err != nil {
					return err
				}
			}
		case Partition:
			seen := make(map[proto.PID]bool)
			for _, g := range e.Groups {
				for _, pid := range g {
					if err := checkPID(pid, "partition"); err != nil {
						return err
					}
					if seen[pid] {
						return fmt.Errorf("experiment: plan partition lists process %d twice", pid)
					}
					seen[pid] = true
				}
			}
		case Heal:
			// Nothing to check; healing a whole network is a no-op.
		case LinkFault:
			if err := checkPID(e.From, "link source"); err != nil {
				return err
			}
			if err := checkPID(e.To, "link destination"); err != nil {
				return err
			}
			if e.From == e.To {
				return fmt.Errorf("experiment: plan link fault on self link p%d", e.From)
			}
			if e.Loss < 0 || e.Loss > 1 {
				return fmt.Errorf("experiment: plan link loss %v outside [0,1]", e.Loss)
			}
			if e.ExtraDelay < 0 {
				return fmt.Errorf("experiment: plan link delay %v negative", e.ExtraDelay)
			}
		default:
			return fmt.Errorf("experiment: unknown plan event type %T", ev)
		}
	}
	return nil
}

// Faults applies plan events to a running system. It is the single fault
// injection path: the replication engine installs Config.Plan through it,
// the crash-transient scenario fires its scripted crash through it, and
// the interactive Cluster's fault methods schedule through it, so every
// current and future scenario shares one set of semantics.
type Faults struct {
	// Sys is the system the events act on.
	Sys *proto.System
	// Recover performs algorithm-aware recovery of a process; it must be
	// set before a Recover event applies.
	Recover func(p proto.PID)
	// Healed, if non-nil, runs after a Heal event restores reachability —
	// the hook algorithm-aware builders use to arm catch-up probes on
	// processes a partition left behind (see Core.Healed).
	Healed func()
	// OnEvent, if non-nil, observes each event at the instant it applies.
	OnEvent func(ev PlanEvent)
}

// Install schedules every timed event of the plan on the system's engine,
// sorted by time with ties in slice order. PreCrash events are not
// installed here: builders apply them before the system starts.
func (f *Faults) Install(plan *FaultPlan) {
	for _, ev := range plan.timed() {
		f.Schedule(ev)
	}
}

// Schedule arms one event to apply at its instant. Scheduling an event in
// the simulation's past panics, as any scheduling in the past does.
func (f *Faults) Schedule(ev PlanEvent) {
	f.Sys.Eng.Schedule(sim.Time(ev.When()), func() { f.Fire(ev) })
}

// Fire applies one event at the current instant, regardless of its When.
func (f *Faults) Fire(ev PlanEvent) {
	switch e := ev.(type) {
	case Crash:
		f.Sys.Crash(e.P)
	case Recover:
		if f.Recover == nil {
			panic("experiment: Recover event without a recovery hook")
		}
		f.Recover(e.P)
	case SuspicionBurst:
		if e.By != nil {
			for _, q := range e.By {
				f.Sys.FDs.InjectMistake(int(q), int(e.P), e.For)
			}
		} else {
			for q := 0; q < f.Sys.N(); q++ {
				if proto.PID(q) != e.P {
					f.Sys.FDs.InjectMistake(q, int(e.P), e.For)
				}
			}
		}
	case Partition:
		f.Sys.Partition(e.Groups)
	case Heal:
		f.Sys.Heal()
		if f.Healed != nil {
			f.Healed()
		}
	case LinkFault:
		f.Sys.Net.SetLink(int(e.From), int(e.To), e.Loss, e.ExtraDelay)
	case PreCrash:
		panic("experiment: PreCrash applies before the system starts, not on the timeline")
	default:
		panic(fmt.Sprintf("experiment: unknown plan event type %T", ev))
	}
	if f.OnEvent != nil {
		f.OnEvent(ev)
	}
}
