package experiment

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AllSenders addresses every sender at once in a load event: a global
// rate change, a system-wide burst, a mute of everyone.
const AllSenders proto.PID = -1

// LoadPlan is a deterministic, virtual-time-ordered timeline of typed
// workload-shaping events — the load-side sibling of FaultPlan. Where a
// FaultPlan decides what breaks, a LoadPlan decides what the system is
// asked to absorb while it breaks: rate changes (global or per-sender),
// bursts, per-sender mutes, whole-workload pauses.
//
// Plans compose with every other axis: carry one on Config.Load, cross
// several in a sweep through Sweep.Loads (and against whole failure
// schedules through Sweep.Plans — "overload while partitioned" is one
// grid point), attach observers to watch the events fire (LoadObserver),
// and export replayable traces whose headers embed the plan. Replications
// of a shaped experiment stay bit-identical at any Runner worker count.
//
// Build a plan from literals, or with the chainable helpers:
//
//	load := experiment.NewLoadPlan().
//		Burst(2500*time.Millisecond, 500*time.Millisecond, experiment.AllSenders, 10).
//		Mute(4*time.Second, 2).
//		Unmute(5*time.Second, 2)
//
// Event times are absolute virtual instants from the start of the
// replication, exactly as in FaultPlan. Rate changes consume no
// randomness: the gap in flight rescales deterministically (the
// exponential is memoryless), so a plan whose events leave every rate
// where it already was is bit-identical to no plan at all. Offered load
// beyond capacity still trips the steady scenarios' DivergenceBacklog
// abort — a plan that floods the system is expected to cut the run short.
type LoadPlan struct {
	// Events is the timeline. Order is irrelevant: installation sorts by
	// time, ties applying in slice order.
	Events []LoadEvent
}

// NewLoadPlan creates a plan from the given events; the chainable
// helpers below append further ones.
func NewLoadPlan(events ...LoadEvent) *LoadPlan {
	return &LoadPlan{Events: events}
}

// LoadEvent is one typed event on a LoadPlan's timeline. The concrete
// types are RateChange, Burst, Mute, Unmute, Pause and Resume; the set is
// closed because every consumer (the installer, the trace format,
// validation) must understand every event.
type LoadEvent interface {
	// When returns the virtual instant the event applies at.
	When() time.Duration
	// String renders the event canonically — the trace format's L lines
	// and error messages use it.
	String() string
	loadEvent()
}

// RateChange sets the A-broadcast rate at instant At. Sender AllSenders
// re-spreads Rate as a new total nominal throughput — the per-sender rate
// becomes Rate/N for the nominal system size N, exactly like
// Config.Throughput — while a concrete Sender sets that one sender's
// absolute rate in messages per second. A rate change lands mid-gap: the
// gap in flight rescales to the new mean deterministically, consuming no
// randomness (so changing a rate to its current value is a bit-identical
// no-op).
type RateChange struct {
	At     time.Duration
	Sender proto.PID
	Rate   float64
}

// Burst multiplies the rate of Sender (AllSenders for everyone) by Factor
// during [At, At+For): the spike the overload figures sweep. Bursts
// compose multiplicatively with rate changes and with each other; when a
// burst ends, its factor divides back out (exact for non-overlapping
// bursts). A Factor below 1 is a lull.
type Burst struct {
	At     time.Duration
	For    time.Duration
	Sender proto.PID
	Factor float64
}

// Mute silences Sender (AllSenders for everyone) at instant At: its
// Poisson source stops firing, but remembers both its logical rate —
// later RateChanges apply to it — and the gap in flight, frozen until
// Unmute. Muting a crashed sender is harmless: the source keeps running
// and the cluster already drops a crashed sender's broadcasts.
type Mute struct {
	At     time.Duration
	Sender proto.PID
}

// Unmute lifts a Mute of Sender at instant At, resuming the frozen gap at
// the sender's current logical rate. Unmuting a sender that was never
// muted is a no-op.
type Unmute struct {
	At     time.Duration
	Sender proto.PID
}

// Pause silences every sender at instant At, independently of per-sender
// mutes: Resume lifts the pause, but muted senders stay muted. Pause is
// the workload analogue of stopping the world — gaps freeze exactly where
// they are.
type Pause struct {
	At time.Duration
}

// Resume lifts the Pause in force at instant At.
type Resume struct {
	At time.Duration
}

// ShardMix sets the workload's cross-shard fraction at instant At
// (groups mode only, see Config.Groups): from this instant each
// generated broadcast is addressed to the sender's home group plus one
// other group with probability Fraction, and stays shard-local
// otherwise. It is how a sweep point walks the shard-local/cross-shard
// spectrum mid-run; Config.CrossShard sets the fraction the run starts
// with.
type ShardMix struct {
	At       time.Duration
	Fraction float64
}

func (e RateChange) When() time.Duration { return e.At }
func (e Burst) When() time.Duration      { return e.At }
func (e Mute) When() time.Duration       { return e.At }
func (e Unmute) When() time.Duration     { return e.At }
func (e Pause) When() time.Duration      { return e.At }
func (e Resume) When() time.Duration     { return e.At }
func (e ShardMix) When() time.Duration   { return e.At }

func (RateChange) loadEvent() {}
func (Burst) loadEvent()      {}
func (Mute) loadEvent()       {}
func (Unmute) loadEvent()     {}
func (Pause) loadEvent()      {}
func (Resume) loadEvent()     {}
func (ShardMix) loadEvent()   {}

// senderName renders a load event's target: "all" or "p<i>".
func senderName(p proto.PID) string {
	if p == AllSenders {
		return "all"
	}
	return fmt.Sprintf("p%d", p)
}

func (e RateChange) String() string {
	return fmt.Sprintf("rate %s=%g/s", senderName(e.Sender), e.Rate)
}

func (e Burst) String() string {
	return fmt.Sprintf("burst %s x%g for %v", senderName(e.Sender), e.Factor, e.For)
}

func (e Mute) String() string     { return "mute " + senderName(e.Sender) }
func (e Unmute) String() string   { return "unmute " + senderName(e.Sender) }
func (e Pause) String() string    { return "pause" }
func (e Resume) String() string   { return "resume" }
func (e ShardMix) String() string { return fmt.Sprintf("shardmix f=%g", e.Fraction) }

// Rate appends a RateChange event and returns the plan for chaining;
// sender AllSenders re-spreads rate as a new total throughput.
func (p *LoadPlan) Rate(at time.Duration, sender proto.PID, rate float64) *LoadPlan {
	p.Events = append(p.Events, RateChange{At: at, Sender: sender, Rate: rate})
	return p
}

// Burst appends a Burst event: sender's rate (or everyone's, with
// AllSenders) multiplied by factor during [at, at+d).
func (p *LoadPlan) Burst(at, d time.Duration, sender proto.PID, factor float64) *LoadPlan {
	p.Events = append(p.Events, Burst{At: at, For: d, Sender: sender, Factor: factor})
	return p
}

// Mute appends a Mute event.
func (p *LoadPlan) Mute(at time.Duration, sender proto.PID) *LoadPlan {
	p.Events = append(p.Events, Mute{At: at, Sender: sender})
	return p
}

// Unmute appends an Unmute event.
func (p *LoadPlan) Unmute(at time.Duration, sender proto.PID) *LoadPlan {
	p.Events = append(p.Events, Unmute{At: at, Sender: sender})
	return p
}

// Pause appends a Pause event.
func (p *LoadPlan) Pause(at time.Duration) *LoadPlan {
	p.Events = append(p.Events, Pause{At: at})
	return p
}

// Resume appends a Resume event.
func (p *LoadPlan) Resume(at time.Duration) *LoadPlan {
	p.Events = append(p.Events, Resume{At: at})
	return p
}

// Mix appends a ShardMix event setting the cross-shard fraction.
func (p *LoadPlan) Mix(at time.Duration, fraction float64) *LoadPlan {
	p.Events = append(p.Events, ShardMix{At: at, Fraction: fraction})
	return p
}

// hasShardMix reports whether the plan carries a ShardMix event, which
// only a groups-mode configuration can honour.
func (p *LoadPlan) hasShardMix() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if _, ok := ev.(ShardMix); ok {
			return true
		}
	}
	return false
}

// timed returns the plan's events sorted by time, stable so same-instant
// events apply in slice order. A nil plan yields nil.
func (p *LoadPlan) timed() []LoadEvent {
	if p == nil {
		return nil
	}
	out := make([]LoadEvent, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].When() < out[j].When() })
	return out
}

// Validate checks every event against a system of n processes: sender IDs
// in range or AllSenders, non-negative times and durations, finite
// non-negative rates, positive finite burst factors. A nil plan is valid.
func (p *LoadPlan) Validate(n int) error { return p.validate(n) }

func (p *LoadPlan) validate(n int) error {
	if p == nil {
		return nil
	}
	checkSender := func(s proto.PID, what string) error {
		if s != AllSenders && (int(s) < 0 || int(s) >= n) {
			return fmt.Errorf("experiment: load %s names sender %d, want 0..%d or AllSenders", what, s, n-1)
		}
		return nil
	}
	for _, ev := range p.Events {
		if ev.When() < 0 {
			return fmt.Errorf("experiment: load event %q at negative time %v", ev, ev.When())
		}
		switch e := ev.(type) {
		case RateChange:
			if err := checkSender(e.Sender, "rate change"); err != nil {
				return err
			}
			if e.Rate < 0 || e.Rate != e.Rate || e.Rate > maxRate {
				return fmt.Errorf("experiment: load rate change to invalid rate %v (want 0..%g msgs/s)", e.Rate, float64(maxRate))
			}
		case Burst:
			if err := checkSender(e.Sender, "burst"); err != nil {
				return err
			}
			if !(e.Factor > 0) || e.Factor > maxBurstFactor {
				return fmt.Errorf("experiment: load burst with invalid factor %v (want 0..%g]", e.Factor, float64(maxBurstFactor))
			}
			if e.For < 0 {
				return fmt.Errorf("experiment: load burst with negative duration %v", e.For)
			}
		case Mute:
			if err := checkSender(e.Sender, "mute"); err != nil {
				return err
			}
		case Unmute:
			if err := checkSender(e.Sender, "unmute"); err != nil {
				return err
			}
		case Pause, Resume:
			// Nothing beyond the time check.
		case ShardMix:
			if e.Fraction < 0 || e.Fraction > 1 || e.Fraction != e.Fraction {
				return fmt.Errorf("experiment: load shardmix with invalid fraction %v (want 0..1)", e.Fraction)
			}
		default:
			return fmt.Errorf("experiment: unknown load event type %T", ev)
		}
	}
	return nil
}

// maxRate bounds any per-sender rate a load plan can produce, and
// maxBurstFactor any single burst's multiplier. The cap keeps the
// Poisson mean gap at or above one virtual nanosecond even under
// stacked bursts (the installer clamps the effective rate at maxRate
// too), so virtual time always advances; rates anywhere near the cap
// are far beyond the modelled wire's capacity and trip the divergence
// abort long before the cap matters.
const (
	maxRate        = 1e9
	maxBurstFactor = 1e6
)

// Loads applies load events to a replication's workload sources. It is
// the single workload-shaping path: scenarios install Config.Load through
// it and the interactive Cluster's load methods schedule through it, so
// every surface shares one set of semantics.
//
// The installer keeps the logical state — per-sender base rate, the
// product of active burst factors, mute flags and the global pause — and
// pushes the effective rate (zero when paused or muted, base×factors
// otherwise) to the underlying Poisson sources. Pushing an unchanged rate
// is a no-op in the source, so events that leave a sender's rate where it
// was cost nothing, bit for bit.
type Loads struct {
	eng *sim.Engine
	// nominal is the nominal system size: a global RateChange re-spreads
	// its rate over it, exactly like Config.Throughput.
	nominal int
	// sources are the per-sender Poisson sources, indexed by PID; nil
	// entries (pre-crashed senders, which generate no load) absorb events
	// as no-ops.
	sources []*workload.Poisson
	// OnEvent, if non-nil, observes each event at the instant it applies.
	OnEvent func(ev LoadEvent)
	// OnShardMix, if non-nil, receives ShardMix events' fractions — the
	// groups-mode cluster hooks it to retarget generated traffic. Without
	// the hook the event is a no-op (validation rejects the combination).
	OnShardMix func(fraction float64)

	base   []float64 // logical per-sender rate, msgs/s
	factor []float64 // product of the sender's active burst factors
	muted  []bool
	paused bool
}

// NewSpreadLoads starts the paper's spread workload — one Poisson source
// per listed sender at rate total/nominal, exactly workload.Spread — and
// returns its Loads installer. It is the shared workload construction of
// the experiment scenarios and the interactive Cluster: one place owns
// the sender→source mapping that load events act on.
func NewSpreadLoads(eng *sim.Engine, rng *sim.Rand, total float64, nominal int, senders []int, fire func(sender int)) *Loads {
	sources := workload.Spread(eng, rng, total, nominal, senders, fire)
	byPID := make([]*workload.Poisson, nominal)
	for i, s := range senders {
		byPID[s] = sources[i]
	}
	return NewLoads(eng, total, nominal, byPID)
}

// NewLoads creates the installer for one replication's workload: total is
// the configured throughput (spread as total/nominal over each non-nil
// source, mirroring workload.Spread) and sources is PID-indexed.
func NewLoads(eng *sim.Engine, total float64, nominal int, sources []*workload.Poisson) *Loads {
	l := &Loads{
		eng:     eng,
		nominal: nominal,
		sources: sources,
		base:    make([]float64, len(sources)),
		factor:  make([]float64, len(sources)),
		muted:   make([]bool, len(sources)),
	}
	per := total / float64(nominal)
	for i := range sources {
		l.factor[i] = 1
		if sources[i] != nil {
			l.base[i] = per
		}
	}
	return l
}

// Install schedules every event of the plan on the engine, sorted by time
// with ties in slice order.
func (l *Loads) Install(plan *LoadPlan) {
	for _, ev := range plan.timed() {
		l.Schedule(ev)
	}
}

// Schedule arms one event to apply at its instant. Scheduling an event in
// the simulation's past panics, as any scheduling in the past does.
func (l *Loads) Schedule(ev LoadEvent) {
	l.eng.Schedule(sim.Time(ev.When()), func() { l.Fire(ev) })
}

// Fire applies one event at the current instant, regardless of its When.
// A Burst schedules its own end (the factor divides back out For later);
// only the burst's start is observed as an event.
func (l *Loads) Fire(ev LoadEvent) {
	switch e := ev.(type) {
	case RateChange:
		if e.Sender == AllSenders {
			per := e.Rate / float64(l.nominal)
			for i := range l.base {
				if l.sources[i] != nil {
					l.base[i] = per
				}
			}
		} else {
			l.base[e.Sender] = e.Rate
		}
		l.apply(e.Sender)
	case Burst:
		l.scale(e.Sender, e.Factor, false)
		l.eng.After(e.For, func() { l.scale(e.Sender, e.Factor, true) })
	case Mute:
		l.setMuted(e.Sender, true)
	case Unmute:
		l.setMuted(e.Sender, false)
	case Pause:
		l.paused = true
		l.apply(AllSenders)
	case Resume:
		l.paused = false
		l.apply(AllSenders)
	case ShardMix:
		if l.OnShardMix != nil {
			l.OnShardMix(e.Fraction)
		}
	default:
		panic(fmt.Sprintf("experiment: unknown load event type %T", ev))
	}
	if l.OnEvent != nil {
		l.OnEvent(ev)
	}
}

// scale multiplies (or, on undo, divides) the burst factor of the
// targeted senders and reapplies their effective rates. x*f/f == x
// exactly when no other burst overlaps (f/f is exactly 1).
func (l *Loads) scale(sender proto.PID, f float64, undo bool) {
	each := func(i int) {
		if undo {
			l.factor[i] /= f
		} else {
			l.factor[i] *= f
		}
	}
	if sender == AllSenders {
		for i := range l.factor {
			each(i)
		}
	} else {
		each(int(sender))
	}
	l.apply(sender)
}

func (l *Loads) setMuted(sender proto.PID, m bool) {
	if sender == AllSenders {
		for i := range l.muted {
			l.muted[i] = m
		}
	} else {
		l.muted[int(sender)] = m
	}
	l.apply(sender)
}

// apply pushes the effective rate of the targeted sender (or all) to the
// underlying sources.
func (l *Loads) apply(sender proto.PID) {
	if sender == AllSenders {
		for i := range l.sources {
			l.applyOne(i)
		}
		return
	}
	l.applyOne(int(sender))
}

func (l *Loads) applyOne(i int) {
	src := l.sources[i]
	if src == nil {
		return
	}
	if l.paused || l.muted[i] {
		src.SetRate(0)
		return
	}
	eff := l.base[i] * l.factor[i]
	if eff > maxRate {
		eff = maxRate // stacked bursts cannot stall virtual time
	}
	src.SetRate(eff)
}
