package experiment

import (
	"math"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
	"repro/internal/stats"
)

// goldenConfigs mirrors the nine golden-digest scenarios of the
// repository root (golden_test.go) as steady experiment points: the same
// algorithm / size / seed / QoS / lambda / pre-crash / detector axes,
// scaled to test-suite durations. They cover FD, GM and GM-nu; n = 2, 3,
// 5 and 7; stochastic suspicions; pre-crashes; λ = 2; and the concrete
// heartbeat detector.
func goldenConfigs() []Config {
	qos := func(tdMs, tmrMs, tmMs float64) fd.QoS {
		return fd.QoS{
			TD:  time.Duration(tdMs * float64(time.Millisecond)),
			TMR: time.Duration(tmrMs * float64(time.Millisecond)),
			TM:  time.Duration(tmMs * float64(time.Millisecond)),
		}
	}
	base := Config{
		Throughput:   50,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        6 * time.Second,
		Replications: 3,
	}
	mk := func(alg Algorithm, n int, seed uint64, mod func(*Config)) Config {
		cfg := base
		cfg.Algorithm, cfg.N, cfg.Seed = alg, n, seed
		if mod != nil {
			mod(&cfg)
		}
		return cfg
	}
	return []Config{
		mk(FD, 3, 41, func(c *Config) { c.QoS = qos(10, 0, 0) }),
		mk(GM, 3, 41, func(c *Config) { c.QoS = qos(10, 0, 0) }),
		mk(GMNonUniform, 3, 7, nil),
		mk(FD, 7, 13, func(c *Config) { c.Crashed = []proto.PID{5, 6}; c.QoS = qos(0, 400, 20) }),
		mk(GM, 7, 13, func(c *Config) { c.Crashed = []proto.PID{5, 6}; c.QoS = qos(0, 400, 20) }),
		mk(FD, 3, 23, func(c *Config) {
			c.Detector = &Heartbeat{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond}
		}),
		mk(FD, 3, 3, func(c *Config) { c.Lambda = 2; c.QoS = qos(20, 0, 0) }),
		mk(FD, 2, 5, func(c *Config) { c.QoS = qos(10, 0, 0) }),
		mk(GM, 5, 99, func(c *Config) { c.QoS = qos(5, 0, 0) }),
	}
}

// TestCollectorMergeDeterministicAcrossWorkers is the distribution-level
// worker-count contract: across all nine golden-scenario configurations,
// the pooled latency collector — raw values, quantiles and histogram
// bins — must be bit-identical between Workers = 1 and Workers = N, not
// just the means the older tests pinned.
func TestCollectorMergeDeterministicAcrossWorkers(t *testing.T) {
	cfgs := goldenConfigs()
	serial := (&Runner{Workers: 1}).SteadyAll(cfgs)
	parallel := (&Runner{Workers: 7}).SteadyAll(cfgs)
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result counts: %d serial, %d parallel, want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		s, p := serial[i], parallel[i]
		name := s.Config.Algorithm.String()
		if s.Messages == 0 {
			t.Fatalf("config %d (%s/n=%d) measured nothing", i, name, s.Config.N)
		}
		// Raw value streams, in merge order.
		sv, pv := s.Dist.Values(), p.Dist.Values()
		if len(sv) != len(pv) {
			t.Fatalf("config %d (%s/n=%d): %d vs %d pooled values", i, name, s.Config.N, len(sv), len(pv))
		}
		for k := range sv {
			if math.Float64bits(sv[k]) != math.Float64bits(pv[k]) {
				t.Fatalf("config %d (%s/n=%d): value %d differs: %v vs %v",
					i, name, s.Config.N, k, sv[k], pv[k])
			}
		}
		// Quantile snapshots.
		if !quantilesBitIdentical(s.Quantiles, p.Quantiles) {
			t.Fatalf("config %d (%s/n=%d): quantiles differ:\nserial:   %+v\nparallel: %+v",
				i, name, s.Config.N, s.Quantiles, p.Quantiles)
		}
		// Histogram bins over a fixed grid.
		sh := s.Dist.Histogram(0, 200, 64)
		ph := p.Dist.Histogram(0, 200, 64)
		for b := range sh.Counts {
			if sh.Counts[b] != ph.Counts[b] {
				t.Fatalf("config %d (%s/n=%d): histogram bin %d = %d vs %d",
					i, name, s.Config.N, b, sh.Counts[b], ph.Counts[b])
			}
		}
		// And the summaries still agree, as before the redesign.
		if !summariesBitIdentical(s.Latency, p.Latency) || !summariesBitIdentical(s.PerMessage, p.PerMessage) {
			t.Fatalf("config %d (%s/n=%d): summaries differ", i, name, s.Config.N)
		}
	}
}

func quantilesBitIdentical(a, b stats.Quantiles) bool {
	return a.N == b.N &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.P50) == math.Float64bits(b.P50) &&
		math.Float64bits(a.P90) == math.Float64bits(b.P90) &&
		math.Float64bits(a.P99) == math.Float64bits(b.P99) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}
