package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Runner executes experiments, fanning independent replications out over
// a bounded worker pool. Every replication is a self-contained
// deterministic simulation keyed by (point, replication seed), and
// results are merged in canonical (point, replication) order, so a
// Runner's output is bit-identical to the serial path regardless of the
// worker count. The zero value runs with GOMAXPROCS workers.
type Runner struct {
	// Workers bounds concurrent replications: 0 selects GOMAXPROCS, 1 is
	// fully serial.
	Workers int
	// Progress, if non-nil, is called after each completed replication
	// with the number of finished and total replications of the current
	// call. It may be invoked concurrently from worker goroutines.
	Progress func(done, total int)
}

// workers resolves the effective pool size for n jobs.
func (r *Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// runJobs executes n independent jobs, indices 0..n-1, on the pool.
func (r *Runner) runJobs(n int, job func(i int)) {
	if n == 0 {
		return
	}
	if r.workers(n) == 1 {
		for i := 0; i < n; i++ {
			job(i)
			if r.Progress != nil {
				r.Progress(i+1, n)
			}
		}
		return
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
				if r.Progress != nil {
					r.Progress(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
}

// runGrid fans a (point, replication) grid out over the pool:
// replications[i] jobs for point i, in canonical (point, replication)
// order.
func (r *Runner) runGrid(replications []int, run func(point, rep int)) {
	type job struct{ point, rep int }
	var jobs []job
	for i, n := range replications {
		for rep := 0; rep < n; rep++ {
			jobs = append(jobs, job{i, rep})
		}
	}
	r.runJobs(len(jobs), func(k int) { run(jobs[k].point, jobs[k].rep) })
}

// Steady runs one steady-state experiment point, replications in
// parallel.
func (r *Runner) Steady(cfg Config) Result {
	return r.SteadyAll([]Config{cfg})[0]
}

// SteadyAll runs several steady-state points at once, fanning every
// (point, replication) pair out over the pool. Results come back in
// point order and are identical to running each point serially.
func (r *Runner) SteadyAll(cfgs []Config) []Result {
	pts := make([]Config, len(cfgs))
	counts := make([]int, len(cfgs))
	reps := make([][]RepStats, len(cfgs))
	for i, cfg := range cfgs {
		cfg = cfg.withDefaults()
		if err := cfg.validate(); err != nil {
			panic(err)
		}
		pts[i] = cfg
		counts[i] = cfg.Replications
		reps[i] = make([]RepStats, cfg.Replications)
	}
	r.runGrid(counts, func(point, rep int) {
		reps[point][rep] = runReplication(pts[point], point, rep, newSteadyScenario(pts[point], rep))
	})
	out := make([]Result, len(pts))
	for i := range pts {
		out[i] = aggregateSteady(pts[i], reps[i])
	}
	return out
}

// Transient runs one crash-transient point, replications in parallel.
func (r *Runner) Transient(cfg TransientConfig) TransientResult {
	return r.TransientAll([]TransientConfig{cfg})[0]
}

// TransientAll runs several crash-transient points at once, fanning every
// (point, replication) pair out over the pool.
func (r *Runner) TransientAll(cfgs []TransientConfig) []TransientResult {
	pts := make([]TransientConfig, len(cfgs))
	counts := make([]int, len(cfgs))
	reps := make([][]RepStats, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Config = cfg.Config.withDefaults()
		if err := cfg.Config.validate(); err != nil {
			panic(err)
		}
		if cfg.Crash == cfg.Sender {
			panic("experiment: crash-transient sender must differ from the crashed process")
		}
		pts[i] = cfg
		counts[i] = cfg.Replications
		reps[i] = make([]RepStats, cfg.Replications)
	}
	r.runGrid(counts, func(point, rep int) {
		cfg := pts[point].Config
		cfg.transient = &transientInfo{crash: pts[point].Crash, sender: pts[point].Sender}
		reps[point][rep] = runReplication(cfg, point, rep, CrashTransient(pts[point], rep))
	})
	out := make([]TransientResult, len(pts))
	for i := range pts {
		out[i] = aggregateTransient(pts[i], reps[i])
	}
	return out
}

// WorstCaseTransient evaluates L(p, q) over every sender q for the given
// crashed process (and every p too when sweepCrash is set), running the
// whole grid's replications through the pool, and returns the maximum
// mean — the paper's Lcrash.
func (r *Runner) WorstCaseTransient(cfg TransientConfig, sweepCrash bool) TransientResult {
	crashes := []proto.PID{cfg.Crash}
	if sweepCrash {
		crashes = crashes[:0]
		for p := 0; p < cfg.N; p++ {
			crashes = append(crashes, proto.PID(p))
		}
	}
	var points []TransientConfig
	for _, crash := range crashes {
		for q := 0; q < cfg.N; q++ {
			if proto.PID(q) == crash {
				continue
			}
			point := cfg
			point.Crash = crash
			point.Sender = proto.PID(q)
			points = append(points, point)
		}
	}
	results := r.TransientAll(points)
	// Pick the maximum in canonical grid order, so ties resolve the same
	// way at any worker count.
	var worst TransientResult
	have := false
	for _, res := range results {
		if res.Latency.N == 0 {
			continue
		}
		if !have || res.Latency.Mean > worst.Latency.Mean {
			worst = res
			have = true
		}
	}
	return worst
}

// Sweep describes a grid of steady-state experiment points over
// Algorithm × N × Throughput × QoS × Lambda × Crashed × Detector × Plan
// × Load × Topology. Base
// supplies every other field; a nil axis inherits the Base value, so a
// Sweep with all axes nil is the single point Base. Observers attached
// to Base see every point of the grid, keyed by its canonical index.
type Sweep struct {
	// Base supplies every non-swept field, including the DistSketch
	// knob: set Base.DistSketch to run the whole grid's distributions in
	// bounded-memory sketch mode.
	Base        Config
	Algorithms  []Algorithm
	Ns          []int
	Throughputs []float64
	QoS         []fd.QoS
	// Lambdas sweeps the network model's λ parameter (the §6.1 CPU/wire
	// cost ratio; the extended TR's ablation). A zero entry selects λ = 1,
	// as in Config.
	Lambdas []float64
	// CrashSets sweeps the crash-steady initial condition: each entry is
	// one Config.Crashed list (Fig. 5 varies the number of crashed
	// processes). A nil entry is the no-crash point.
	CrashSets [][]proto.PID
	// Detectors sweeps the failure-detector implementation: each entry is
	// one Config.Detector — a concrete heartbeat tuning, or nil for the
	// abstract QoS model. The axis compares the modelled detector with
	// real heartbeat traffic on the contended network at otherwise
	// identical points.
	Detectors []*Heartbeat
	// Plans sweeps the fault plan: each entry is one Config.Plan — a full
	// fault/environment timeline (crashes, recoveries, suspicion bursts,
	// partitions, link faults), or nil for the fault-free point. The axis
	// crosses whole failure schedules with every other dimension, e.g.
	// the same partition-and-heal timeline under both algorithms at
	// several throughputs.
	Plans []*FaultPlan
	// Loads sweeps the load plan: each entry is one Config.Load — a full
	// workload-shaping timeline (rate changes, bursts, mutes, pauses), or
	// nil for the constant-rate point. Crossed with Plans, one grid
	// expresses "the same burst under the same partition for both
	// algorithms at every throughput" — scenarios as data.
	Loads []*LoadPlan
	// Topologies sweeps the connectivity graph: each entry is one
	// Config.Topology — a generated or hand-built topo.Topology, or nil
	// for the paper's full mesh. Crossed with Plans and Loads, "a WAN
	// partition under an overload burst on a geo topology" is a single
	// grid point. Entries must match the point's N, so a grid sweeping
	// both Ns and Topologies should derive one from the other (build the
	// grid in two Sweeps, or fix N and vary only the graph).
	Topologies []*topo.Topology
	// GroupMaps sweeps the group assignment: each entry is one
	// Config.Groups — a generated or raw groups.GroupMap, or nil for the
	// ungrouped broadcast point. Crossed with Loads (ShardMix events) and
	// Throughputs, one grid walks shard-local scaling against group count
	// and cross-shard fraction. Entries must cover the point's N.
	GroupMaps []*groups.GroupMap
}

// Points expands the grid in canonical order: Algorithm outermost, then
// N, then Throughput, then QoS, then Lambda, then CrashSet, then
// Detector, then Plan, then Load, then Topology, then GroupMap
// innermost.
func (s Sweep) Points() []Config {
	algs := s.Algorithms
	if len(algs) == 0 {
		algs = []Algorithm{s.Base.Algorithm}
	}
	ns := s.Ns
	if len(ns) == 0 {
		ns = []int{s.Base.N}
	}
	thrs := s.Throughputs
	if len(thrs) == 0 {
		thrs = []float64{s.Base.Throughput}
	}
	qos := s.QoS
	if len(qos) == 0 {
		qos = []fd.QoS{s.Base.QoS}
	}
	lambdas := s.Lambdas
	if len(lambdas) == 0 {
		lambdas = []float64{s.Base.Lambda}
	}
	crashes := s.CrashSets
	if len(crashes) == 0 {
		crashes = [][]proto.PID{s.Base.Crashed}
	}
	dets := s.Detectors
	if len(dets) == 0 {
		dets = []*Heartbeat{s.Base.Detector}
	}
	plans := s.Plans
	if len(plans) == 0 {
		plans = []*FaultPlan{s.Base.Plan}
	}
	loads := s.Loads
	if len(loads) == 0 {
		loads = []*LoadPlan{s.Base.Load}
	}
	topos := s.Topologies
	if len(topos) == 0 {
		topos = []*topo.Topology{s.Base.Topology}
	}
	gmaps := s.GroupMaps
	if len(gmaps) == 0 {
		gmaps = []*groups.GroupMap{s.Base.Groups}
	}
	out := make([]Config, 0, len(algs)*len(ns)*len(thrs)*len(qos)*len(lambdas)*len(crashes)*len(dets)*len(plans)*len(loads)*len(topos)*len(gmaps))
	for _, a := range algs {
		for _, n := range ns {
			for _, t := range thrs {
				for _, q := range qos {
					for _, l := range lambdas {
						for _, cr := range crashes {
							for _, det := range dets {
								for _, plan := range plans {
									for _, load := range loads {
										for _, tp := range topos {
											for _, gmap := range gmaps {
												cfg := s.Base
												cfg.Algorithm, cfg.N, cfg.Throughput, cfg.QoS = a, n, t, q
												cfg.Lambda, cfg.Crashed, cfg.Detector, cfg.Plan = l, cr, det, plan
												cfg.Load, cfg.Topology, cfg.Groups = load, tp, gmap
												out = append(out, cfg)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Sweep runs every point of the grid, fanning all (point, replication)
// pairs out over the pool, and returns results in Points order.
func (r *Runner) Sweep(s Sweep) []Result {
	return r.SteadyAll(s.Points())
}

// aggregateSteady merges one point's replications, in replication order,
// into the reported Result. The canonical merge order keeps every
// statistic — means, and now quantiles and histograms through Dist —
// bit-identical at any worker count.
func aggregateSteady(cfg Config, reps []RepStats) Result {
	var repMeans stats.Sample
	pooled := cfg.newDistCollector()
	messages, undelivered := 0, 0
	diverged := false
	for i := range reps {
		rs := &reps[i]
		if rs.Diverged {
			diverged = true
		}
		undelivered += rs.Undelivered
		messages += rs.Latencies.N()
		if rs.Latencies.N() > 0 {
			repMeans.Add(rs.Latencies.Mean())
		}
		pooled.Merge(&rs.Latencies)
	}
	return Result{
		Config:      cfg,
		Latency:     repMeans.Summarize(),
		PerMessage:  pooled.Summarize(),
		Dist:        pooled,
		Quantiles:   pooled.Quantiles(),
		Messages:    messages,
		Undelivered: undelivered,
		Stable:      undelivered == 0 && messages > 0 && !diverged,
		Diverged:    diverged,
	}
}

// aggregateTransient merges one point's replications, in replication
// order, into the reported TransientResult.
func aggregateTransient(cfg TransientConfig, reps []RepStats) TransientResult {
	var lat stats.Collector
	var overhead stats.Sample
	lost := 0
	tdMs := float64(cfg.QoS.TD) / float64(time.Millisecond)
	for i := range reps {
		rs := &reps[i]
		if rs.Latencies.N() == 0 {
			lost++
			continue
		}
		l := rs.Latencies.Mean() // exactly one probe observation
		lat.Add(l)
		overhead.Add(l - tdMs)
	}
	return TransientResult{
		Config:    cfg,
		Latency:   lat.Summarize(),
		Overhead:  overhead.Summarize(),
		Dist:      lat,
		Quantiles: lat.Quantiles(),
		Lost:      lost,
	}
}
