package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fd"
)

// traceSweep is a small two-point grid — abstract QoS model versus the
// concrete heartbeat detector — used by the trace round-trip tests.
func traceSweep(tr *Trace) Sweep {
	return Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            3,
			Throughput:   50,
			Seed:         7,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        5 * time.Second,
			Replications: 2,
			Observers:    []ObserverFactory{tr.Observer},
		},
		Detectors: []*Heartbeat{nil, {Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond}},
	}
}

// TestTraceReplayRoundTrip is the acceptance path: a sweep that includes
// a heartbeat-FD point runs end to end with the trace observer, and the
// resulting trace replays to the same delivery digest for every
// replication.
func TestTraceReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	var r Runner
	res := r.Sweep(traceSweep(tr))
	if len(res) != 2 || !res[0].Stable || !res[1].Stable {
		t.Fatalf("sweep failed: %+v", res)
	}
	digests := tr.Digests()
	if len(digests) != 4 { // 2 points x 2 replications
		t.Fatalf("got %d digests, want 4", len(digests))
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(tr.Digests()) != 0 {
		t.Fatal("Flush did not drop the buffers")
	}

	text := buf.String()
	for _, marker := range []string{"C {", "\nB ", "\nN wire ", "\nD ", "\nE "} {
		if !strings.Contains(text, marker) {
			t.Fatalf("trace lacks %q records:\n%.400s", marker, text)
		}
	}

	results, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("replayed %d replications, want 4", len(results))
	}
	for i, rr := range results {
		if !rr.Match {
			t.Fatalf("replication (point %d, rep %d) does not replay: recorded %016x, replayed %016x",
				rr.Point, rr.Rep, rr.Recorded, rr.Replayed)
		}
		if rr.Recorded != digests[i].Digest || rr.Point != digests[i].Point || rr.Rep != digests[i].Rep {
			t.Fatalf("replay %d = %+v, digest listing said %+v", i, rr, digests[i])
		}
	}
}

// TestTraceDeterministicAcrossWorkers pins the flushed trace bytes to
// the same content at any worker count.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		var buf bytes.Buffer
		tr := NewTrace(&buf)
		(&Runner{Workers: workers}).Sweep(traceSweep(tr))
		if err := tr.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(5)) {
		t.Fatal("trace bytes differ between 1 and 5 workers")
	}
}

// TestTraceReplayTransient records and replays the crash-transient
// scenario, whose workload and fault schedule differ from steady state.
func TestTraceReplayTransient(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := TransientConfig{
		Config: Config{
			Algorithm:    GM,
			N:            3,
			Throughput:   30,
			QoS:          fd.QoS{TD: 10 * time.Millisecond},
			Warmup:       300 * time.Millisecond,
			Drain:        8 * time.Second,
			Replications: 2,
			Observers:    []ObserverFactory{tr.Observer},
		},
		Crash:  0,
		Sender: 1,
	}
	res := RunTransient(cfg)
	if res.Lost > 0 {
		t.Fatalf("lost probes: %+v", res)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !strings.Contains(buf.String(), `"kind":"transient"`) {
		t.Fatalf("transient trace not marked as such:\n%.200s", buf.String())
	}
	results, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(results))
	}
	for _, rr := range results {
		if !rr.Match {
			t.Fatalf("transient replication rep %d does not replay: %+v", rr.Rep, rr)
		}
	}
}

// TestReplayDetectsTampering flips one digest and expects the replay to
// report a mismatch rather than silently agree.
func TestReplayDetectsTampering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   20,
		Warmup:       200 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Drain:        5 * time.Second,
		Replications: 1,
		Observers:    []ObserverFactory{tr.Observer},
	}
	RunSteady(cfg)
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tampered := []byte(buf.String())
	i := bytes.Index(tampered, []byte("\nE ")) + len("\nE ")
	if tampered[i] == '0' {
		tampered[i] = '1'
	} else {
		tampered[i] = '0'
	}
	results, err := Replay(bytes.NewReader(tampered))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(results) != 1 || results[0].Match {
		t.Fatalf("tampered digest replayed as a match: %+v", results)
	}
}

// TestReplayRejectsTruncatedTrace checks the error paths: a trace cut
// mid-replication and an orphan digest record both fail loudly.
func TestReplayRejectsTruncatedTrace(t *testing.T) {
	if _, err := Replay(strings.NewReader(`C {"kind":"steady","alg":1,"n":3,"throughput":10,"seed":1,"warmup":1,"measure":1,"drain":1,"replications":1}` + "\n")); err == nil {
		t.Fatal("truncated trace did not error")
	}
	if _, err := Replay(strings.NewReader("E 0000000000000000\n")); err == nil {
		t.Fatal("orphan E record did not error")
	}
	if _, err := Replay(strings.NewReader("C not-json\n")); err == nil {
		t.Fatal("bad header did not error")
	}
}
