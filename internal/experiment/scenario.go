package experiment

import (
	"time"

	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Delivery is one A-delivery observed by a scenario during a replication.
type Delivery struct {
	Process proto.PID
	ID      proto.MsgID
	At      sim.Time
}

// RepStats carries one replication's raw results back to the aggregator.
// Latencies are accumulated in canonical message order inside the
// replication, so merging replications in index order reproduces the
// serial path bit for bit.
type RepStats struct {
	// Latencies holds the replication's measured latencies in
	// milliseconds: one per delivered tracked message (steady scenarios)
	// or at most one probe latency (crash-transient). The collector
	// carries the full distribution, so aggregation reports quantiles and
	// histograms alongside the mean.
	Latencies stats.Collector
	// Undelivered counts awaited messages never delivered within the
	// drain window.
	Undelivered int
	// Diverged is set by the engine when the replication was aborted on a
	// backlog beyond DivergenceBacklog.
	Diverged bool
}

// phases describes the temporal structure of one replication: a measure
// phase up to measureEnd, then a drain phase of at most drain. The slice
// durations set how often the engine pauses the simulation to check for
// divergence (measure) and early completion (drain).
type phases struct {
	measureEnd   sim.Time
	drain        time.Duration
	measureSlice time.Duration
	drainSlice   time.Duration
	// divergence enables the DivergenceBacklog abort. Steady scenarios
	// need it (offered load can exceed capacity indefinitely); the
	// crash-transient scenario is bounded by its drain deadline.
	divergence bool
}

// Scenario is the per-replication behaviour of one benchmark scenario.
// The shared replication engine (runReplication) owns cluster
// construction, the measure/drain slicing and the DivergenceBacklog
// abort; a scenario only installs load and faults, observes deliveries
// (it is the head of the replication's observer chain), signals
// completion and collects statistics. Cross-cutting measurement that
// composes with any scenario belongs in an Observer (Config.Observers),
// not in a new scenario.
type Scenario interface {
	// Phases reports the replication's time structure to the engine.
	Phases() phases
	// Setup installs the replication's workload and scheduled faults on a
	// freshly built cluster, before any virtual time elapses.
	Setup(c *cluster)
	// Observer delivers every A-delivery at every process to the
	// scenario, ahead of the configured observers.
	Observer
	// Done reports whether every awaited delivery has been observed, so
	// the drain phase can stop early.
	Done() bool
	// Collect returns the replication's statistics after the run.
	Collect() RepStats
}

// runReplication is the shared replication engine: it builds the cluster,
// attaches the observer chain (scenario first, then one instance per
// Config.Observers factory), runs the measure phase in divergence-checked
// slices, then drains until the scenario reports Done or the drain budget
// runs out. Each invocation is an independent deterministic simulation
// keyed by (cfg.Seed, rep), so replications can run on any goroutine in
// any order; point and rep only name the replication to its observers.
func runReplication(cfg Config, point, rep int, s Scenario) RepStats {
	c := newCluster(cfg, repSeed(cfg.Seed, rep))

	var observers []Observer
	var bcastObservers []BroadcastObserver
	var netObservers []NetObserver
	var planObservers []PlanObserver
	var loadObservers []LoadObserver
	for _, factory := range cfg.Observers {
		o := factory(point, rep, cfg)
		if o == nil {
			continue
		}
		observers = append(observers, o)
		if bo, ok := o.(BroadcastObserver); ok {
			bcastObservers = append(bcastObservers, bo)
		}
		if no, ok := o.(NetObserver); ok {
			netObservers = append(netObservers, no)
		}
		if po, ok := o.(PlanObserver); ok {
			planObservers = append(planObservers, po)
		}
		if lo, ok := o.(LoadObserver); ok {
			loadObservers = append(loadObservers, lo)
		}
	}

	c.onDeliver = func(p proto.PID, id proto.MsgID, at sim.Time) {
		d := Delivery{Process: p, ID: id, At: at}
		s.ObserveDelivery(d)
		for _, o := range observers {
			o.ObserveDelivery(d)
		}
	}
	if len(bcastObservers) > 0 {
		c.onBroadcast = func(sender proto.PID, id proto.MsgID, at sim.Time) {
			b := Broadcast{Sender: sender, ID: id, At: at}
			for _, o := range bcastObservers {
				o.ObserveBroadcast(b)
			}
		}
	}
	if len(netObservers) > 0 {
		c.sys.Net.SetTrace(func(ev netmodel.TraceEvent) {
			for _, o := range netObservers {
				o.ObserveNet(ev)
			}
		})
	}
	if len(planObservers) > 0 {
		c.onPlanEvent = func(ev PlanEvent) {
			at := c.eng.Now()
			for _, o := range planObservers {
				o.ObservePlan(at, ev)
			}
		}
	}
	if len(loadObservers) > 0 {
		c.onLoadEvent = func(ev LoadEvent) {
			at := c.eng.Now()
			for _, o := range loadObservers {
				o.ObserveLoad(at, ev)
			}
		}
	}

	s.Setup(c)
	ph := s.Phases()

	// Measure phase. Run in slices so a diverging system (backlog beyond
	// any legitimate transient) is cut short instead of simulated in
	// quadratic agony.
	diverged := false
	if ph.divergence {
		for c.eng.Now() < ph.measureEnd {
			step := c.eng.Now().Add(ph.measureSlice)
			if step > ph.measureEnd {
				step = ph.measureEnd
			}
			c.eng.RunUntil(step)
			if c.backlog() > DivergenceBacklog {
				diverged = true
				break
			}
		}
	} else {
		c.eng.RunUntil(ph.measureEnd)
	}

	// Drain phase, in slices so the run can stop early once every awaited
	// delivery landed.
	deadline := ph.measureEnd.Add(ph.drain)
	for !diverged && c.eng.Now() < deadline && !s.Done() {
		step := c.eng.Now().Add(ph.drainSlice)
		if step > deadline {
			step = deadline
		}
		c.eng.RunUntil(step)
		if ph.divergence && c.backlog() > DivergenceBacklog {
			diverged = true
		}
	}

	rs := s.Collect()
	rs.Diverged = diverged
	return rs
}

// steadyScenario measures every message A-broadcast inside the measure
// window. It covers normal-steady, crash-steady and suspicion-steady,
// which differ only in Config (Crashed and QoS); the named constructors
// below document that correspondence.
type steadyScenario struct {
	cfg        Config
	rep        int
	start, end sim.Time
	sent       map[proto.MsgID]sim.Time
	first      map[proto.MsgID]sim.Time
}

// newSteadyScenario builds the scenario for one replication of a steady
// experiment; cfg must already have defaults applied.
func newSteadyScenario(cfg Config, rep int) *steadyScenario {
	start := sim.Time(0).Add(cfg.Warmup)
	return &steadyScenario{
		cfg:   cfg,
		rep:   rep,
		start: start,
		end:   start.Add(cfg.Measure),
		sent:  make(map[proto.MsgID]sim.Time),
		first: make(map[proto.MsgID]sim.Time),
	}
}

// NormalSteady is the no-crash, no-suspicion scenario (Fig. 4).
func NormalSteady(cfg Config, rep int) Scenario { return newSteadyScenario(cfg, rep) }

// CrashSteady is the scenario with processes crashed long before the
// measurement (Fig. 5); cfg.Crashed selects them.
func CrashSteady(cfg Config, rep int) Scenario { return newSteadyScenario(cfg, rep) }

// SuspicionSteady is the scenario with wrong suspicions at QoS (TMR, TM)
// but no crashes (Figs. 6, 7); cfg.QoS selects the mistake rate.
func SuspicionSteady(cfg Config, rep int) Scenario { return newSteadyScenario(cfg, rep) }

func (s *steadyScenario) Phases() phases {
	return phases{
		measureEnd:   s.end,
		drain:        s.cfg.Drain,
		measureSlice: 500 * time.Millisecond,
		drainSlice:   100 * time.Millisecond,
		divergence:   true,
	}
}

func (s *steadyScenario) Setup(c *cluster) {
	c.setupLoad(s.cfg, s.rep, func(sender int) {
		id := c.broadcast(sender, nil)
		if id.Seq == 0 {
			return // crashed sender (plan-driven): no load generated
		}
		// The firing runs in the sender's conflict domain: read its own
		// clock, and defer the shared sent-map write to the window commit.
		h := c.eng.For(sender)
		now := h.Now()
		if now >= s.start && now < s.end {
			if h.Deferring() {
				h.Emit(func() { s.sent[id] = now })
			} else {
				s.sent[id] = now
			}
		}
	})
}

func (s *steadyScenario) ObserveDelivery(d Delivery) {
	if _, tracked := s.sent[d.ID]; tracked {
		if _, seen := s.first[d.ID]; !seen {
			s.first[d.ID] = d.At
		}
	}
}

func (s *steadyScenario) Done() bool { return len(s.first) >= len(s.sent) }

func (s *steadyScenario) Collect() RepStats {
	// Accumulate in canonical ID order: floating-point summation is
	// order-sensitive, and map iteration would make results differ across
	// runs (and between the two algorithms) in the last bits.
	ids := make([]proto.MsgID, 0, len(s.sent))
	for id := range s.sent {
		ids = append(ids, id)
	}
	proto.SortMsgIDs(ids)
	rs := RepStats{Latencies: s.cfg.newDistCollector()}
	for _, id := range ids {
		t1, ok := s.first[id]
		if !ok {
			rs.Undelivered++
			continue
		}
		rs.Latencies.Add(t1.Sub(s.sent[id]).Seconds() * 1000) // milliseconds
	}
	return rs
}

// transientScenario measures the probe message A-broadcast at the exact
// instant of a forced crash (Fig. 8): CrashTransient below.
type transientScenario struct {
	cfg                       TransientConfig
	rep                       int
	crashAt                   sim.Time
	probe                     proto.MsgID
	probeSent, probeDelivered sim.Time
	delivered                 bool
}

// CrashTransient builds the crash-transient scenario for one replication;
// cfg must already have defaults applied.
func CrashTransient(cfg TransientConfig, rep int) Scenario {
	return &transientScenario{cfg: cfg, rep: rep, crashAt: sim.Time(0).Add(cfg.Warmup)}
}

func (t *transientScenario) Phases() phases {
	return phases{
		measureEnd: t.crashAt,
		drain:      t.cfg.Drain,
		drainSlice: 50 * time.Millisecond,
	}
}

func (t *transientScenario) Setup(c *cluster) {
	c.setupLoad(t.cfg.Config, t.rep, func(sender int) {
		c.broadcast(sender, nil)
	})
	// The scripted crash is a plan event fired through the shared fault
	// machinery, in the same instant and before the probe broadcast.
	c.eng.Schedule(t.crashAt, func() {
		c.faults.Fire(Crash{At: t.crashAt.Duration(), P: t.cfg.Crash})
		t.probe = c.broadcast(int(t.cfg.Sender), "probe")
		t.probeSent = c.eng.Now()
	})
}

func (t *transientScenario) ObserveDelivery(d Delivery) {
	if !t.delivered && d.ID == t.probe && t.probeSent > 0 {
		t.delivered = true
		t.probeDelivered = d.At
	}
}

func (t *transientScenario) Done() bool { return t.delivered }

func (t *transientScenario) Collect() RepStats {
	var rs RepStats
	if !t.delivered {
		rs.Undelivered = 1
		return rs
	}
	rs.Latencies = t.cfg.newDistCollector()
	rs.Latencies.Add(t.probeDelivered.Sub(t.probeSent).Seconds() * 1000)
	return rs
}
