package experiment

import (
	"math"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/topo"
)

// The experiment-level parallel-execution contract: with ParallelSim
// enabled, every observable of a run — each delivery (process, id,
// instant) in order, each broadcast, the latency distributions — is
// bit-identical to the serial engine, at any worker count, on
// multi-domain topologies, under fault plans that cross domains, and
// including a SetLink whose extra delay shrinks mid-run (the delay acts
// on the destination side of the wire handoff, so it may drop below the
// lookahead without violating the window invariant).

// deliveryRecorder captures every delivery of one replication in order.
type deliveryRecorder struct{ sink *[]Delivery }

func (r *deliveryRecorder) ObserveDelivery(d Delivery) { *r.sink = append(*r.sink, d) }

// runRecorded executes a steady experiment with one recorder per
// replication (replications run serially so recording order is the
// replication order) and returns the per-replication delivery logs.
func runRecorded(cfg Config) ([][]Delivery, Result) {
	cfg = cfg.withDefaults()
	recs := make([][]Delivery, cfg.Replications)
	cfg.Observers = append(cfg.Observers, func(point, rep int, _ Config) Observer {
		return &deliveryRecorder{sink: &recs[rep]}
	})
	r := Runner{Workers: 1}
	return recs, r.Steady(cfg)
}

func requireSameRuns(t *testing.T, name string, wantRecs, gotRecs [][]Delivery, want, got Result) {
	t.Helper()
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("%s: %d replications, serial %d", name, len(gotRecs), len(wantRecs))
	}
	for rep := range wantRecs {
		w, g := wantRecs[rep], gotRecs[rep]
		if len(g) != len(w) {
			t.Fatalf("%s rep %d: %d deliveries, serial %d", name, rep, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s rep %d: delivery %d = %+v, serial %+v", name, rep, i, g[i], w[i])
			}
		}
	}
	if got.Messages != want.Messages || got.Undelivered != want.Undelivered || got.Stable != want.Stable {
		t.Fatalf("%s: result (%d msg, %d undelivered, stable=%v), serial (%d, %d, %v)",
			name, got.Messages, got.Undelivered, got.Stable,
			want.Messages, want.Undelivered, want.Stable)
	}
	wv, gv := want.Dist.Values(), got.Dist.Values()
	if len(wv) != len(gv) {
		t.Fatalf("%s: %d pooled latencies, serial %d", name, len(gv), len(wv))
	}
	for i := range wv {
		if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
			t.Fatalf("%s: latency %d = %v, serial %v", name, i, gv[i], wv[i])
		}
	}
}

// TestParallelSimMatchesSerial cross-checks serial and parallel
// execution delivery for delivery on genuinely multi-domain topologies:
// the one-way ring (n conflict domains, lookahead one wire slot) plain,
// under a crash, under suspicion bursts, and under a link fault whose
// extra delay shrinks and then clears mid-run.
func TestParallelSimMatchesSerial(t *testing.T) {
	base := Config{
		N:            7,
		Topology:     topo.OneWayRing(7),
		Throughput:   60,
		Warmup:       100 * time.Millisecond,
		Measure:      800 * time.Millisecond,
		Drain:        8 * time.Second,
		Replications: 2,
		Seed:         11,
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"fd-plain", func(c *Config) {
			c.Algorithm = FD
			c.QoS = fd.QoS{TD: 10 * time.Millisecond}
		}},
		{"gm-suspicions", func(c *Config) {
			c.Algorithm = GM
			c.QoS = fd.QoS{TMR: 600 * time.Millisecond, TM: 15 * time.Millisecond}
		}},
		{"fd-crash-recover", func(c *Config) {
			c.Algorithm = FD
			c.QoS = fd.QoS{TD: 10 * time.Millisecond}
			c.Plan = new(FaultPlan).
				Crash(300*time.Millisecond, 4).
				Recover(600*time.Millisecond, 4)
		}},
		{"gm-shrinking-link-delay", func(c *Config) {
			c.Algorithm = GM
			c.QoS = fd.QoS{TD: 10 * time.Millisecond}
			// The extra delay starts above the lookahead (1 ms wire
			// slot), shrinks below it mid-run, then clears: correctness
			// must not depend on the delay's relation to the window.
			c.Plan = new(FaultPlan).
				Link(200*time.Millisecond, 2, 3, 0, 5*time.Millisecond).
				Link(450*time.Millisecond, 2, 3, 0, 400*time.Microsecond).
				Link(700*time.Millisecond, 2, 3, 0, 0)
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		wantRecs, want := runRecorded(cfg)
		if want.Messages == 0 {
			t.Fatalf("%s: serial run measured nothing", tc.name)
		}
		for _, workers := range []int{1, 2, 4} {
			pcfg := cfg
			pcfg.ParallelSim = true
			pcfg.SimWorkers = workers
			gotRecs, got := runRecorded(pcfg)
			requireSameRuns(t, tc.name, wantRecs, gotRecs, want, got)
		}
	}
}

// TestParallelSimSingleDomainTopologies pins the trivial-partition path:
// shared-wire topologies collapse to one conflict domain, and a
// parallel run over them must still be bit-identical (it exercises the
// window/commit machinery with concurrency degree one).
func TestParallelSimSingleDomainTopologies(t *testing.T) {
	cfg := Config{
		Algorithm:    GMNonUniform,
		N:            5,
		Throughput:   60,
		Warmup:       100 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Drain:        5 * time.Second,
		Replications: 2,
		Seed:         5,
	}
	wantRecs, want := runRecorded(cfg)
	pcfg := cfg
	pcfg.ParallelSim = true
	pcfg.SimWorkers = 4
	gotRecs, got := runRecorded(pcfg)
	requireSameRuns(t, "fullmesh", wantRecs, gotRecs, want, got)
}

// TestParallelSimGroupsSerialised pins the gating rule: groups mode
// with cross-shard mixing draws from a shared stream, so the builder
// forces a single domain — and the run stays bit-identical to serial.
func TestParallelSimGroupsSerialised(t *testing.T) {
	m := groups.Disjoint(6, 2)
	cfg := Config{
		Algorithm:    FD,
		N:            6,
		Groups:       m,
		CrossShard:   0.3,
		QoS:          fd.QoS{TD: 10 * time.Millisecond},
		Throughput:   60,
		Warmup:       100 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Drain:        5 * time.Second,
		Replications: 2,
		Seed:         9,
	}
	wantRecs, want := runRecorded(cfg)
	pcfg := cfg
	pcfg.ParallelSim = true
	pcfg.SimWorkers = 4
	gotRecs, got := runRecorded(pcfg)
	requireSameRuns(t, "groups-mixed", wantRecs, gotRecs, want, got)
}

// TestParallelSimGroupsMultiDomain runs groups mode where parallelism is
// genuinely reachable: disjoint shards on a one-way ring with no
// cross-shard mixing partition into one conflict domain per shard.
func TestParallelSimGroupsMultiDomain(t *testing.T) {
	m := groups.Disjoint(6, 2)
	cfg := Config{
		Algorithm:    FD,
		N:            6,
		Topology:     topo.OneWayRing(6),
		Groups:       m,
		QoS:          fd.QoS{TD: 10 * time.Millisecond},
		Throughput:   60,
		Warmup:       100 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Drain:        5 * time.Second,
		Replications: 2,
		Seed:         13,
	}
	wantRecs, want := runRecorded(cfg)
	if want.Messages == 0 {
		t.Fatal("serial run measured nothing")
	}
	for _, workers := range []int{1, 2, 4} {
		pcfg := cfg
		pcfg.ParallelSim = true
		pcfg.SimWorkers = workers
		gotRecs, got := runRecorded(pcfg)
		requireSameRuns(t, "groups-multidomain", wantRecs, gotRecs, want, got)
	}
}

// TestConflictDomainsShapes pins the partitioner's structural results on
// the generator zoo.
func TestConflictDomainsShapes(t *testing.T) {
	mk := func(tp *topo.Topology) netmodel.Config {
		return netmodel.Config{N: tp.N, Lambda: time.Millisecond, Slot: time.Millisecond, Topology: tp}
	}
	countDomains := func(domainOf []int) int {
		max := 0
		for _, d := range domainOf {
			if d > max {
				max = d
			}
		}
		return max + 1
	}
	for _, tc := range []struct {
		tp   *topo.Topology
		want int
	}{
		{topo.FullMesh(7), 1},
		{topo.Ring(8), 1},
		{topo.Star(5), 1},
		{topo.Clique(4), 1},
		{topo.Geo(topo.GeoConfig{Sites: 3, PerSite: 3}), 1},
		{topo.OneWayRing(6), 6},
		{topo.OneWayRing(2), 2},
	} {
		domainOf, lookahead := netmodel.ConflictDomains(mk(tc.tp), nil)
		if got := countDomains(domainOf); got != tc.want {
			t.Fatalf("%s: %d domains, want %d", tc.tp.Name, got, tc.want)
		}
		if tc.want > 1 && lookahead != 1_000_000 { // 1 ms slot, zero delay
			t.Fatalf("%s: lookahead %d, want 1ms", tc.tp.Name, lookahead)
		}
	}
	// A lossy wire collapses everything into one domain.
	lossyRing := topo.OneWayRing(5)
	lossyRing.Wires[2].Loss = 0.1
	domainOf, _ := netmodel.ConflictDomains(mk(lossyRing), nil)
	if got := countDomains(domainOf); got != 1 {
		t.Fatalf("lossy one-way ring: %d domains, want 1", got)
	}
	// Groups-mode shard membership merges domains.
	domainOf, _ = netmodel.ConflictDomains(mk(topo.OneWayRing(6)), [][]int{{0, 1, 2}, {3, 4, 5}})
	if got := countDomains(domainOf); got != 2 {
		t.Fatalf("sharded one-way ring: %d domains, want 2", got)
	}
	for p, want := range []int{0, 0, 0, 1, 1, 1} {
		if domainOf[p] != want {
			t.Fatalf("sharded one-way ring: domainOf[%d] = %d, want %d", p, domainOf[p], want)
		}
	}
	// Transient proto.PID reference keeps the import honest if the golden
	// helpers above change.
	_ = proto.PID(0)
}
