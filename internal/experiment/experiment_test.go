package experiment

import (
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// fast shrinks an experiment to test-suite scale.
func fast(cfg Config) Config {
	cfg.Warmup = 500 * time.Millisecond
	cfg.Measure = 4 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.Replications = 2
	return cfg
}

func TestNormalSteadyLowLoadLatency(t *testing.T) {
	// n=3, λ=1, light load: the Fig. 1 execution dominates. The minimum
	// possible latency is 7 ms (coordinator decides); senders other than
	// the coordinator see ~9 ms, so the mean sits between.
	res := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 10}))
	if !res.Stable {
		t.Fatalf("unstable at trivial load: %+v", res)
	}
	if res.Latency.Mean < 7 || res.Latency.Mean > 12 {
		t.Fatalf("mean latency = %v ms, want ~7-12 ms", res.Latency.Mean)
	}
	if res.PerMessage.Min < 7 {
		t.Fatalf("min latency = %v ms, below the physical floor of 7 ms", res.PerMessage.Min)
	}
	if res.Messages < 20 {
		t.Fatalf("only %d messages measured", res.Messages)
	}
}

func TestFDAndGMIdenticalWithoutFailures(t *testing.T) {
	// §4.4's central claim: identical message pattern => identical
	// latency. With the same seed the two algorithms must agree exactly,
	// message for message.
	for _, thr := range []float64{10, 200} {
		fdRes := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: thr, Seed: 7}))
		gmRes := RunSteady(fast(Config{Algorithm: GM, N: 3, Throughput: thr, Seed: 7}))
		if !fdRes.Stable || !gmRes.Stable {
			t.Fatalf("unstable failure-free runs at T=%v", thr)
		}
		if fdRes.Messages != gmRes.Messages {
			t.Fatalf("T=%v: message counts differ: %d vs %d", thr, fdRes.Messages, gmRes.Messages)
		}
		if fdRes.PerMessage.Mean != gmRes.PerMessage.Mean {
			t.Fatalf("T=%v: FD mean %v != GM mean %v — patterns diverged",
				thr, fdRes.PerMessage.Mean, gmRes.PerMessage.Mean)
		}
		if fdRes.PerMessage.Max != gmRes.PerMessage.Max {
			t.Fatalf("T=%v: FD max %v != GM max %v", thr, fdRes.PerMessage.Max, gmRes.PerMessage.Max)
		}
	}
}

func TestLatencyGrowsWithThroughput(t *testing.T) {
	low := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 20}))
	high := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 500}))
	if !low.Stable || !high.Stable {
		t.Fatal("unstable runs")
	}
	if high.Latency.Mean <= low.Latency.Mean {
		t.Fatalf("latency did not grow with load: %v at 20/s vs %v at 500/s",
			low.Latency.Mean, high.Latency.Mean)
	}
}

func TestSevenSlowerThanThree(t *testing.T) {
	three := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 100}))
	seven := RunSteady(fast(Config{Algorithm: FD, N: 7, Throughput: 100}))
	if seven.Latency.Mean <= three.Latency.Mean {
		t.Fatalf("n=7 (%v ms) not slower than n=3 (%v ms)",
			seven.Latency.Mean, three.Latency.Mean)
	}
}

func TestCrashSteadyReducesLatency(t *testing.T) {
	// Fig. 5: old crashes reduce load, so latency drops, for both
	// algorithms; and GM (smaller view, fewer acks) is at or below FD.
	base := fast(Config{Algorithm: FD, N: 3, Throughput: 300})
	noCrash := RunSteady(base)
	crashCfg := base
	crashCfg.Crashed = []proto.PID{2}
	fdCrash := RunSteady(crashCfg)
	gmCfg := crashCfg
	gmCfg.Algorithm = GM
	gmCrash := RunSteady(gmCfg)
	if !noCrash.Stable || !fdCrash.Stable || !gmCrash.Stable {
		t.Fatal("unstable crash-steady runs")
	}
	if fdCrash.Latency.Mean >= noCrash.Latency.Mean {
		t.Fatalf("FD with crash (%v) not below no-crash (%v)",
			fdCrash.Latency.Mean, noCrash.Latency.Mean)
	}
	if gmCrash.Latency.Mean > fdCrash.Latency.Mean+0.5 {
		t.Fatalf("GM with crash (%v) clearly above FD with crash (%v)",
			gmCrash.Latency.Mean, fdCrash.Latency.Mean)
	}
}

func TestSuspicionSteadyHurtsGMMoreThanFD(t *testing.T) {
	// Fig. 6 regime: TM=0, TMR=100ms at n=3, T=10/s: FD barely affected,
	// GM pays a view change per mistake.
	qos := fd.QoS{TMR: 100 * time.Millisecond}
	fdRes := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 10, QoS: qos}))
	gmRes := RunSteady(fast(Config{Algorithm: GM, N: 3, Throughput: 10, QoS: qos}))
	if !fdRes.Stable {
		t.Fatalf("FD unstable under mild suspicions: %+v", fdRes)
	}
	if gmRes.Messages == 0 {
		t.Fatal("GM delivered nothing")
	}
	if gmRes.PerMessage.Mean < 1.5*fdRes.PerMessage.Mean {
		t.Fatalf("GM (%v ms) not clearly above FD (%v ms) under suspicions",
			gmRes.PerMessage.Mean, fdRes.PerMessage.Mean)
	}
}

func TestGMUnstableAtVeryLowTMRWhileFDSurvives(t *testing.T) {
	// Fig. 6's defining feature: at TMR=10ms and n=3, T=10/s the FD
	// algorithm still works while the GM algorithm does not.
	qos := fd.QoS{TMR: 10 * time.Millisecond}
	cfg := fast(Config{N: 3, Throughput: 10, QoS: qos})
	cfg.Drain = 5 * time.Second
	fdCfg := cfg
	fdCfg.Algorithm = FD
	fdRes := RunSteady(fdCfg)
	if !fdRes.Stable {
		t.Fatalf("FD unstable at TMR=10ms: %d undelivered", fdRes.Undelivered)
	}
	gmCfg := cfg
	gmCfg.Algorithm = GM
	gmRes := RunSteady(gmCfg)
	// GM is either unstable or severely degraded (the paper's simulation
	// did not work at all here; ours degrades hard but keeps delivering
	// through view-change flushes — see EXPERIMENTS.md).
	if gmRes.Stable && gmRes.PerMessage.Mean < 2.5*fdRes.PerMessage.Mean {
		t.Fatalf("GM unexpectedly healthy at TMR=10ms: %+v vs FD %v",
			gmRes.PerMessage, fdRes.PerMessage.Mean)
	}
}

func TestCrashTransientFDBeatsGM(t *testing.T) {
	// Fig. 8: after the coordinator/sequencer crash, the FD algorithm's
	// round-2 recovery is cheaper than the GM view change.
	base := TransientConfig{
		Config: Config{
			N:          3,
			Throughput: 50,
			QoS:        fd.QoS{TD: 10 * time.Millisecond},
			Warmup:     500 * time.Millisecond,
			Drain:      10 * time.Second,
			Measure:    time.Second, // unused by transient but validated
		},
		Crash:  0,
		Sender: 1,
	}
	base.Replications = 5
	fdCfg := base
	fdCfg.Algorithm = FD
	fdRes := RunTransient(fdCfg)
	gmCfg := base
	gmCfg.Algorithm = GM
	gmRes := RunTransient(gmCfg)
	if fdRes.Lost > 0 || gmRes.Lost > 0 {
		t.Fatalf("lost probes: FD %d, GM %d", fdRes.Lost, gmRes.Lost)
	}
	td := 10.0
	if fdRes.Latency.Mean <= td || gmRes.Latency.Mean <= td {
		t.Fatalf("latency below detection time: FD %v, GM %v", fdRes.Latency.Mean, gmRes.Latency.Mean)
	}
	if fdRes.Latency.Mean >= gmRes.Latency.Mean {
		t.Fatalf("FD (%v ms) not faster than GM (%v ms) after the crash",
			fdRes.Latency.Mean, gmRes.Latency.Mean)
	}
	if got, want := fdRes.Overhead.Mean, fdRes.Latency.Mean-td; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("overhead = %v, want latency-TD = %v", got, want)
	}
}

func TestCrashTransientNonCoordinatorCheapForFD(t *testing.T) {
	// §7: for the FD algorithm only the coordinator's crash matters; a
	// bystander crash costs nothing beyond steady state.
	base := TransientConfig{
		Config: Config{
			Algorithm:  FD,
			N:          3,
			Throughput: 50,
			QoS:        fd.QoS{TD: 10 * time.Millisecond},
			Warmup:     500 * time.Millisecond,
			Drain:      10 * time.Second,
		},
	}
	base.Replications = 4
	coord := base
	coord.Crash, coord.Sender = 0, 1
	bystander := base
	bystander.Crash, bystander.Sender = 2, 1
	coordRes := RunTransient(coord)
	byRes := RunTransient(bystander)
	if byRes.Latency.Mean >= coordRes.Latency.Mean {
		t.Fatalf("bystander crash (%v ms) not cheaper than coordinator crash (%v ms)",
			byRes.Latency.Mean, coordRes.Latency.Mean)
	}
	// A bystander crash does not even require detection: latency can be
	// below TD and stays near steady state.
	if byRes.Latency.Mean > 25 {
		t.Fatalf("bystander-crash latency = %v ms, want near steady state", byRes.Latency.Mean)
	}
}

func TestWorstCaseTransientPicksMaximum(t *testing.T) {
	cfg := TransientConfig{
		Config: Config{
			Algorithm:  FD,
			N:          3,
			Throughput: 20,
			QoS:        fd.QoS{TD: 5 * time.Millisecond},
			Warmup:     300 * time.Millisecond,
			Drain:      5 * time.Second,
		},
		Crash: 0,
	}
	cfg.Replications = 2
	worst := WorstCaseTransient(cfg, false)
	if worst.Latency.N == 0 {
		t.Fatal("no worst case found")
	}
	// The worst case must be at least as bad as any single pair.
	single := cfg
	single.Sender = 1
	res := RunTransient(single)
	if worst.Latency.Mean < res.Latency.Mean {
		t.Fatalf("worst case %v below a sampled pair %v", worst.Latency.Mean, res.Latency.Mean)
	}
}

func TestNonUniformFasterThanUniform(t *testing.T) {
	// §8: dropping uniformity saves the ack round trip.
	uni := RunSteady(fast(Config{Algorithm: GM, N: 3, Throughput: 100}))
	non := RunSteady(fast(Config{Algorithm: GMNonUniform, N: 3, Throughput: 100}))
	if !uni.Stable || !non.Stable {
		t.Fatal("unstable runs")
	}
	if non.Latency.Mean >= uni.Latency.Mean {
		t.Fatalf("non-uniform (%v ms) not faster than uniform (%v ms)",
			non.Latency.Mean, uni.Latency.Mean)
	}
}

func TestValidation(t *testing.T) {
	cases := map[string]Config{
		"unknown algorithm": {N: 3},
		"zero N":            {Algorithm: FD},
		"too many crashes":  {Algorithm: FD, N: 3, Crashed: []proto.PID{1, 2}},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			RunSteady(fast(cfg))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("crash == sender did not panic")
			}
		}()
		RunTransient(TransientConfig{
			Config: fast(Config{Algorithm: FD, N: 3}),
			Crash:  1, Sender: 1,
		})
	}()
}

func TestReproducibility(t *testing.T) {
	cfg := fast(Config{Algorithm: GM, N: 3, Throughput: 100, Seed: 99,
		QoS: fd.QoS{TMR: 500 * time.Millisecond, TM: 5 * time.Millisecond}})
	a := RunSteady(cfg)
	b := RunSteady(cfg)
	if a.Latency.Mean != b.Latency.Mean || a.Messages != b.Messages {
		t.Fatalf("experiment not reproducible: %+v vs %+v", a.Latency, b.Latency)
	}
}

func TestAlgorithmString(t *testing.T) {
	if FD.String() != "FD" || GM.String() != "GM" || GMNonUniform.String() != "GM-nu" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm must still format")
	}
}

func TestOverloadDetectedAsDivergence(t *testing.T) {
	// Offered load far above the wire's capacity (1000 msgs/s total, and
	// each broadcast needs >1 wire message): the backlog must trip the
	// divergence detector rather than grind the simulation forever.
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   2500,
		Warmup:       500 * time.Millisecond,
		Measure:      20 * time.Second,
		Drain:        5 * time.Second,
		Replications: 1,
	}
	res := RunSteady(cfg)
	if res.Stable {
		t.Fatalf("overloaded run reported stable: %+v", res.Latency)
	}
	if !res.Diverged {
		t.Fatal("overloaded run not flagged as diverged")
	}
}

func TestWorstCaseTransientSweepsCrashes(t *testing.T) {
	cfg := TransientConfig{
		Config: Config{
			Algorithm:    FD,
			N:            3,
			Throughput:   20,
			QoS:          fd.QoS{TD: 5 * time.Millisecond},
			Warmup:       300 * time.Millisecond,
			Drain:        5 * time.Second,
			Replications: 1,
		},
	}
	full := WorstCaseTransient(cfg, true) // maximise over p and q
	if full.Latency.N == 0 {
		t.Fatal("sweep found nothing")
	}
	// The coordinator crash dominates all bystander crashes.
	if full.Config.Crash != 0 {
		t.Fatalf("worst crash = p%d, want the coordinator p0", full.Config.Crash)
	}
}

func TestLambdaScalesLatency(t *testing.T) {
	fastCPU := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 50, Lambda: 0.5}))
	slowCPU := RunSteady(fast(Config{Algorithm: FD, N: 3, Throughput: 50, Lambda: 3}))
	if !fastCPU.Stable || !slowCPU.Stable {
		t.Fatal("unstable lambda runs")
	}
	if slowCPU.Latency.Mean <= 2*fastCPU.Latency.Mean {
		t.Fatalf("lambda=3 (%v) not clearly slower than lambda=0.5 (%v)",
			slowCPU.Latency.Mean, fastCPU.Latency.Mean)
	}
}
