package experiment

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// fastTransient shrinks a crash-transient experiment to test-suite scale.
func fastTransient(alg Algorithm) TransientConfig {
	return TransientConfig{
		Config: Config{
			Algorithm:    alg,
			N:            3,
			Throughput:   20,
			QoS:          fd.QoS{TD: 5 * time.Millisecond},
			Warmup:       300 * time.Millisecond,
			Drain:        5 * time.Second,
			Replications: 2,
		},
		Crash: 0,
	}
}

// TestWorstCaseTransientCoversFullGrid checks that the sweepCrash grid
// really evaluates every (crash, sender) pair: the maximum it returns
// must equal the maximum over explicitly enumerated pairs.
func TestWorstCaseTransientCoversFullGrid(t *testing.T) {
	cfg := fastTransient(FD)
	cfg.Replications = 1
	worst := WorstCaseTransient(cfg, true)
	if worst.Latency.N == 0 {
		t.Fatal("sweep found nothing")
	}
	best := math.Inf(-1)
	var bestCfg TransientConfig
	for p := 0; p < cfg.N; p++ {
		for q := 0; q < cfg.N; q++ {
			if p == q {
				continue
			}
			point := cfg
			point.Crash, point.Sender = proto.PID(p), proto.PID(q)
			res := RunTransient(point)
			if res.Latency.N > 0 && res.Latency.Mean > best {
				best = res.Latency.Mean
				bestCfg = point
			}
		}
	}
	if worst.Latency.Mean != best {
		t.Fatalf("sweep max %v != enumerated max %v (at crash=p%d sender=p%d)",
			worst.Latency.Mean, best, bestCfg.Crash, bestCfg.Sender)
	}
}

// TestWorstCaseTransientAllProbesLost exercises the "no delivered probe
// at any grid point" path: with a drain window too short for any
// delivery, the sweep must return the zero result rather than a bogus
// maximum.
func TestWorstCaseTransientAllProbesLost(t *testing.T) {
	cfg := fastTransient(FD)
	cfg.Drain = time.Millisecond // no probe can be ordered this fast
	cfg.Replications = 1
	res := WorstCaseTransient(cfg, true)
	if res.Latency.N != 0 {
		t.Fatalf("expected no delivered probe, got %+v", res.Latency)
	}
	if res.Lost != 0 || res.Config.N != 0 {
		t.Fatalf("all-lost sweep must return the zero TransientResult, got %+v", res)
	}
	// A single lost point (not a sweep) still reports its Lost count.
	single := cfg
	single.Sender = 1
	direct := RunTransient(single)
	if direct.Lost != 1 || direct.Latency.N != 0 {
		t.Fatalf("lost probe not reported: %+v", direct)
	}
}

// TestWorstCaseTransientParallelMatchesSerial pins the worst-case sweep
// to the same bits at any worker count, including its canonical-order
// tie-breaking.
func TestWorstCaseTransientParallelMatchesSerial(t *testing.T) {
	for _, alg := range []Algorithm{FD, GM} {
		cfg := fastTransient(alg)
		serial := (&Runner{Workers: 1}).WorstCaseTransient(cfg, true)
		parallel := (&Runner{Workers: 6}).WorstCaseTransient(cfg, true)
		if serial.Config.Crash != parallel.Config.Crash || serial.Config.Sender != parallel.Config.Sender {
			t.Fatalf("%v: worst pair differs: serial (crash=p%d sender=p%d) vs parallel (crash=p%d sender=p%d)",
				alg, serial.Config.Crash, serial.Config.Sender,
				parallel.Config.Crash, parallel.Config.Sender)
		}
		if !summariesBitIdentical(serial.Latency, parallel.Latency) ||
			!summariesBitIdentical(serial.Overhead, parallel.Overhead) ||
			serial.Lost != parallel.Lost {
			t.Fatalf("%v: results differ:\nserial:   %+v\nparallel: %+v", alg, serial, parallel)
		}
	}
}

func TestSweepPoints(t *testing.T) {
	s := Sweep{
		Base:        Config{Algorithm: FD, N: 3, Throughput: 10, Seed: 3},
		Algorithms:  []Algorithm{FD, GM},
		Ns:          []int{3, 7},
		Throughputs: []float64{10, 100, 300},
	}
	pts := s.Points()
	if len(pts) != 12 {
		t.Fatalf("2x2x3 grid expanded to %d points", len(pts))
	}
	// Canonical order: Algorithm outermost, QoS innermost.
	if pts[0].Algorithm != FD || pts[0].N != 3 || pts[0].Throughput != 10 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[11].Algorithm != GM || pts[11].N != 7 || pts[11].Throughput != 300 {
		t.Fatalf("last point %+v", pts[11])
	}
	for _, p := range pts {
		if p.Seed != 3 {
			t.Fatalf("Base field not inherited: %+v", p)
		}
	}
	// Unset axes inherit Base: the degenerate sweep is the single Base point.
	single := Sweep{Base: Config{Algorithm: GM, N: 7, Throughput: 50}}.Points()
	if len(single) != 1 || single[0].Algorithm != GM || single[0].N != 7 || single[0].Throughput != 50 {
		t.Fatalf("degenerate sweep = %+v", single)
	}
}

func TestSweepPointsLambdaAndCrashAxes(t *testing.T) {
	s := Sweep{
		Base:      Config{Algorithm: FD, N: 7, Throughput: 100, Seed: 9},
		Lambdas:   []float64{0.5, 1, 2},
		CrashSets: [][]proto.PID{nil, {6}, {6, 5}},
	}
	pts := s.Points()
	if len(pts) != 9 {
		t.Fatalf("3x3 grid expanded to %d points", len(pts))
	}
	// Canonical order: Lambda outside CrashSet, CrashSet innermost.
	want := []struct {
		lambda  float64
		crashes int
	}{
		{0.5, 0}, {0.5, 1}, {0.5, 2},
		{1, 0}, {1, 1}, {1, 2},
		{2, 0}, {2, 1}, {2, 2},
	}
	for i, w := range want {
		if pts[i].Lambda != w.lambda || len(pts[i].Crashed) != w.crashes {
			t.Fatalf("point %d = lambda %v, crashed %v; want lambda %v, %d crashes",
				i, pts[i].Lambda, pts[i].Crashed, w.lambda, w.crashes)
		}
	}
	if pts[8].Crashed[0] != 6 || pts[8].Crashed[1] != 5 {
		t.Fatalf("crash set not threaded through: %v", pts[8].Crashed)
	}
	// The new axes compose with the old ones, innermost last.
	full := Sweep{
		Base:        Config{Algorithm: FD, N: 3, Throughput: 10},
		Algorithms:  []Algorithm{FD, GM},
		Throughputs: []float64{10, 100},
		Lambdas:     []float64{1, 2},
		CrashSets:   [][]proto.PID{nil, {2}},
	}.Points()
	if len(full) != 16 {
		t.Fatalf("2x2x2x2 grid expanded to %d points", len(full))
	}
	if full[1].Lambda != 1 || len(full[1].Crashed) != 1 {
		t.Fatalf("CrashSet should vary fastest: point 1 = %+v", full[1])
	}
	if full[15].Algorithm != GM || full[15].Throughput != 100 || full[15].Lambda != 2 || len(full[15].Crashed) != 1 {
		t.Fatalf("last point %+v", full[15])
	}
}

// TestSweepCrashAxisRuns exercises the crash axis end to end: a crash-steady
// sweep point must produce the same result as the equivalent hand-built
// config list (the fig5 conversion relies on this).
func TestSweepCrashAxisRuns(t *testing.T) {
	base := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   50,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        5 * time.Second,
		Replications: 2,
	}
	var r Runner
	swept := r.Sweep(Sweep{Base: base, CrashSets: [][]proto.PID{nil, {2}}})

	crashed := base
	crashed.Crashed = []proto.PID{2}
	hand := r.SteadyAll([]Config{base, crashed})
	for i := range hand {
		if swept[i].Latency != hand[i].Latency || swept[i].Messages != hand[i].Messages {
			t.Fatalf("sweep point %d = %+v, hand-built = %+v", i, swept[i], hand[i])
		}
	}
	if swept[0].Latency.Mean == swept[1].Latency.Mean && swept[0].Messages == swept[1].Messages {
		t.Fatal("crash axis had no effect on the swept point")
	}
}

func TestRunnerProgress(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	finals := 0
	r := &Runner{Workers: 3, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != 4 {
			t.Errorf("total = %d, want 4", total)
		}
		if done == total {
			finals++
		}
	}}
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   20,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        5 * time.Second,
		Replications: 4,
	}
	res := r.Steady(cfg)
	if !res.Stable {
		t.Fatalf("unstable trivial run: %+v", res)
	}
	if calls != 4 || finals != 1 {
		t.Fatalf("progress called %d times with %d completions, want 4 and 1", calls, finals)
	}
}

// TestRunnerValidatesBeforeFanout keeps configuration panics on the
// caller's goroutine: a bad point anywhere in a batch must panic before
// any worker starts.
func TestRunnerValidatesBeforeFanout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid point in a batch did not panic")
		}
	}()
	var r Runner
	r.SteadyAll([]Config{
		{Algorithm: FD, N: 3, Throughput: 10},
		{Algorithm: FD, N: 0}, // invalid
	})
}
