package experiment

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/groups"
	"repro/internal/proto"
	"repro/internal/sim"
)

// groupsHarness runs one groups-mode core and records every delivery in
// order per process.
type groupsHarness struct {
	core  *Core
	m     *groups.GroupMap
	seq   map[proto.PID][]proto.MsgID // delivery order per process
	count map[proto.MsgID]map[proto.PID]int
}

func newGroupsHarness(t *testing.T, alg Algorithm, m *groups.GroupMap, qos fd.QoS, pre []proto.PID) *groupsHarness {
	t.Helper()
	h := &groupsHarness{
		m:     m,
		seq:   make(map[proto.PID][]proto.MsgID),
		count: make(map[proto.MsgID]map[proto.PID]int),
	}
	h.core = NewCore(CoreConfig{
		Algorithm:  alg,
		N:          m.N(),
		Lambda:     1,
		Groups:     m,
		QoS:        qos,
		Renumber:   alg == FD,
		Seed:       42,
		PreCrashed: pre,
		Deliver: func(p proto.PID, id proto.MsgID, body any, at sim.Time) {
			h.seq[p] = append(h.seq[p], id)
			if h.count[id] == nil {
				h.count[id] = make(map[proto.PID]int)
			}
			h.count[id][p]++
		},
	})
	return h
}

// at schedules fn at t milliseconds of virtual time.
func (h *groupsHarness) at(msec float64, fn func()) {
	h.core.Eng.Schedule(sim.Time(0).Add(sim.Millis(msec)), fn)
}

// checkAgreement asserts the defining properties of genuine atomic
// multicast over the recorded run: (1) a message reaches every live
// member of its destination groups exactly once and nobody else;
// (2) any two processes deliver their common messages in the same
// relative order.
func (h *groupsHarness) checkAgreement(t *testing.T, dests map[proto.MsgID][]int, crashed map[proto.PID]bool) {
	t.Helper()
	for id, gs := range dests {
		for _, g := range gs {
			for _, p := range h.m.Members(g) {
				if crashed[p] {
					continue
				}
				if got := h.count[id][p]; got != 1 {
					t.Errorf("message %s to groups %v: member %d delivered %d times, want 1", id, gs, p, got)
				}
			}
		}
		for p, n := range h.count[id] {
			member := false
			for _, g := range gs {
				if h.m.Contains(g, p) {
					member = true
				}
			}
			if !member && n > 0 {
				t.Errorf("message %s to groups %v delivered at non-member %d", id, gs, p)
			}
		}
	}
	pids := make([]proto.PID, 0, h.m.N())
	for p := 0; p < h.m.N(); p++ {
		pids = append(pids, proto.PID(p))
	}
	for i, p := range pids {
		for _, q := range pids[i+1:] {
			common := func(a, b proto.PID) []proto.MsgID {
				var out []proto.MsgID
				for _, id := range h.seq[a] {
					if h.count[id][b] > 0 {
						out = append(out, id)
					}
				}
				return out
			}
			cp, cq := common(p, q), common(q, p)
			if len(cp) != len(cq) {
				t.Fatalf("processes %d/%d deliver different common sets: %d vs %d", p, q, len(cp), len(cq))
			}
			for k := range cp {
				if cp[k] != cq[k] {
					t.Fatalf("processes %d and %d disagree on order: position %d is %s vs %s\n p%d: %v\n p%d: %v",
						p, q, k, cp[k], cq[k], p, cp, q, cq)
				}
			}
		}
	}
}

// Shard-local traffic on a disjoint map stays inside each shard and
// every shard agrees internally.
func TestGroupsDisjointShardLocalOrder(t *testing.T) {
	m := groups.Disjoint(6, 2)
	h := newGroupsHarness(t, FD, m, fd.QoS{}, nil)
	dests := make(map[proto.MsgID][]int)
	for i := 0; i < 12; i++ {
		p := proto.PID(i % 6)
		home := m.Home(p)
		i := i
		h.at(float64(i*7), func() {
			id := h.core.Bcast[p](i)
			dests[id] = []int{home}
		})
	}
	h.core.Eng.Run()
	h.checkAgreement(t, dests, nil)
	if len(dests) != 12 {
		t.Fatalf("issued %d messages, want 12", len(dests))
	}
}

// Cross-group multicasts on an overlapping chained map are totally
// ordered against shard-local traffic at every process — including the
// bridges, which see both streams.
func TestGroupsChainedCrossGroupOrder(t *testing.T) {
	m := groups.Chained(7, 3)
	for _, alg := range []Algorithm{FD, GM} {
		h := newGroupsHarness(t, alg, m, fd.QoS{}, nil)
		dests := make(map[proto.MsgID][]int)
		record := func(id proto.MsgID, gs ...int) { dests[id] = gs }
		// Interleave shard-local sends from every process with
		// multi-group sends spanning adjacent and distant groups.
		for i := 0; i < 9; i++ {
			p := proto.PID(i % 7)
			home := m.Home(p)
			i := i
			h.at(float64(i*11), func() { record(h.core.Bcast[p](i), home) })
		}
		h.at(5, func() { record(h.core.Mcast(0, []int{0, 1}, "a"), 0, 1) })
		h.at(17, func() { record(h.core.Mcast(6, []int{0, 2}, "b"), 0, 2) })
		h.at(23, func() { record(h.core.Mcast(3, []int{0, 1, 2}, "c"), 0, 1, 2) })
		h.at(31, func() { record(h.core.Mcast(5, []int{1, 2}, "d"), 1, 2) })
		h.core.Eng.Run()
		h.checkAgreement(t, dests, nil)
		if len(dests) != 13 {
			t.Fatalf("%v: issued %d messages, want 13", alg, len(dests))
		}
	}
}

// The dense end of the overlap spectrum: a hub member in every group
// orders every cross-group message pair through its own clocks.
func TestGroupsCliqueOverlapOrder(t *testing.T) {
	m := groups.CliqueOverlap(7, 3)
	h := newGroupsHarness(t, FD, m, fd.QoS{}, nil)
	dests := make(map[proto.MsgID][]int)
	for i := 0; i < 6; i++ {
		p := proto.PID((i % 6) + 1)
		home := m.Home(p)
		i := i
		h.at(float64(i*13), func() { dests[h.core.Bcast[p](i)] = []int{home} })
	}
	h.at(9, func() { dests[h.core.Mcast(0, []int{0, 1, 2}, "x")] = []int{0, 1, 2} })
	h.at(29, func() { dests[h.core.Mcast(2, []int{0, 2}, "y")] = []int{0, 2} })
	h.core.Eng.Run()
	h.checkAgreement(t, dests, nil)
}

// A crash in one shard leaves the other shard's members agreeing and
// delivering everything; the survivors of the crashed shard keep
// agreeing among themselves once the detector excludes the dead member.
func TestGroupsCrashInOneShard(t *testing.T) {
	m := groups.Disjoint(6, 2)
	qos := fd.QoS{TD: 30 * time.Millisecond}
	h := newGroupsHarness(t, FD, m, qos, nil)
	dests := make(map[proto.MsgID][]int)
	crashed := map[proto.PID]bool{5: true}
	h.at(40, func() { h.core.Sys.Crash(5) })
	for i := 0; i < 12; i++ {
		p := proto.PID(i % 5) // senders stay alive
		home := m.Home(p)
		i := i
		h.at(float64(i*15), func() { dests[h.core.Bcast[p](i)] = []int{home} })
	}
	h.core.Eng.Run()
	h.checkAgreement(t, dests, crashed)
}

// Regression: a cross-shard message whose dissemination gram is lost to
// a partition must still deliver after the heal. The sending shard
// proposes and then stalls head-of-line; the receiving shard has no
// record of the message at all, so timestamp requests alone cannot
// revive it — the stall probe must retransmit the gram from the body
// the stalled side holds. Before that retransmit existed, the sending
// shard wedged forever and the message never reached the cut shard.
func TestGroupsCrossShardSurvivesPartitionedGram(t *testing.T) {
	m := groups.Disjoint(6, 2)
	h := newGroupsHarness(t, FD, m, fd.QoS{TD: 10 * time.Millisecond}, nil)
	dests := make(map[proto.MsgID][]int)
	// Cut shard 1 off before the cross-shard message is sent.
	h.at(20, func() {
		h.core.Sys.Partition([][]proto.PID{{0, 1, 2}, {3, 4, 5}})
	})
	h.at(50, func() { dests[h.core.Mcast(0, []int{0, 1}, "x")] = []int{0, 1} })
	// Shard-local traffic keeps both shards' agreed streams moving
	// through the cut — the wedge is purely in the cross-shard merge.
	for i := 0; i < 8; i++ {
		p := proto.PID(i % 6)
		home := m.Home(p)
		i := i
		h.at(float64(30+i*17), func() { dests[h.core.Bcast[p](i)] = []int{home} })
	}
	h.at(600, func() {
		h.core.Sys.Heal()
		h.core.Healed()
	})
	// Without the retransmit the stall probe re-arms forever; bound the
	// run instead of relying on event exhaustion.
	h.at(5000, func() { h.core.Eng.Stop() })
	h.core.Eng.Run()
	h.checkAgreement(t, dests, nil)
}

// A pre-crashed member never participates: GM instances start with the
// surviving membership and the group still orders its traffic.
func TestGroupsPreCrashedMember(t *testing.T) {
	m := groups.Disjoint(6, 2)
	h := newGroupsHarness(t, GM, m, fd.QoS{}, []proto.PID{4})
	dests := make(map[proto.MsgID][]int)
	for i := 0; i < 8; i++ {
		p := proto.PID(i % 4) // skip group 1's crashed member and 5
		home := m.Home(p)
		i := i
		h.at(float64(i*9), func() { dests[h.core.Bcast[p](i)] = []int{home} })
	}
	h.core.Eng.Run()
	h.checkAgreement(t, dests, map[proto.PID]bool{4: true})
}

// A GroupMaps sweep is bit-identical at any worker count, trace digests
// included — the groups layer introduces no scheduling sensitivity.
func TestGroupsSweepDeterministicAcrossWorkers(t *testing.T) {
	sweep := Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            8,
			Throughput:   40,
			Warmup:       200 * time.Millisecond,
			Measure:      time.Second,
			Drain:        4 * time.Second,
			Replications: 2,
			Seed:         17,
			CrossShard:   0.25,
			Load:         NewLoadPlan().Mix(600*time.Millisecond, 0.5),
		},
		GroupMaps: []*groups.GroupMap{
			groups.Disjoint(8, 2),
			groups.Disjoint(8, 4),
			groups.Chained(8, 3),
		},
	}
	run := func(workers int) ([]Result, []TraceDigest) {
		var buf bytes.Buffer
		tr := NewTrace(&buf)
		pts := sweep.Points()
		for i := range pts {
			pts[i].Observers = []ObserverFactory{tr.Observer}
		}
		res := (&Runner{Workers: workers}).SteadyAll(pts)
		return res, tr.Digests()
	}
	sRes, sDig := run(1)
	pRes, pDig := run(8)
	if len(sRes) != 3 || len(pRes) != 3 {
		t.Fatalf("point counts: %d vs %d, want 3", len(sRes), len(pRes))
	}
	for i := range sRes {
		if sRes[i].Messages == 0 {
			t.Fatalf("point %d measured nothing", i)
		}
		if sRes[i].Latency.Mean != pRes[i].Latency.Mean || sRes[i].Messages != pRes[i].Messages {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v", i, sRes[i].Latency, pRes[i].Latency)
		}
	}
	if len(sDig) != len(pDig) {
		t.Fatalf("digest counts: %d vs %d", len(sDig), len(pDig))
	}
	for i := range sDig {
		if sDig[i] != pDig[i] {
			t.Fatalf("digest %d differs across worker counts: %+v vs %+v", i, sDig[i], pDig[i])
		}
	}
}

// A grouped run's trace replays from its header alone: the GroupMap and
// cross-shard fraction round-trip through the embedded spec.
func TestGroupsTraceReplays(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := Config{
		Algorithm:    FD,
		N:            6,
		Throughput:   30,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        4 * time.Second,
		Replications: 2,
		Seed:         11,
		Groups:       groups.Chained(6, 2),
		CrossShard:   0.3,
		Load:         NewLoadPlan().Mix(700*time.Millisecond, 0.6),
		Observers:    []ObserverFactory{tr.Observer},
	}
	res := RunSteady(cfg)
	if res.Messages == 0 {
		t.Fatal("grouped run measured nothing")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	results, err := Replay(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Fatalf("replication (point %d, rep %d) does not replay: recorded %016x, replayed %016x",
				r.Point, r.Rep, r.Recorded, r.Replayed)
		}
	}
}

// Groups-mode configuration errors are rejected up front.
func TestGroupsConfigValidation(t *testing.T) {
	base := Config{Algorithm: GM, N: 6, Throughput: 10, Groups: groups.Disjoint(6, 2)}
	cases := []func(*Config){
		func(c *Config) { c.Groups = groups.Disjoint(7, 2) },                                        // N mismatch
		func(c *Config) { c.CrossShard = 1.5 },                                                      // fraction out of range
		func(c *Config) { c.Groups = nil; c.CrossShard = 0.5 },                                      // cross-shard without groups
		func(c *Config) { c.Groups = nil; c.Load = NewLoadPlan().Mix(0, 0.5) },                      // shardmix without groups
		func(c *Config) { c.Plan = NewFaultPlan().Crash(time.Second, 5).Recover(2*time.Second, 5) }, // GM recovery
	}
	for i, mod := range cases {
		cfg := base
		mod(&cfg)
		if err := cfg.withDefaults().validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	good := base
	good.CrossShard = 0.5
	if err := good.withDefaults().validate(); err != nil {
		t.Fatalf("valid groups config rejected: %v", err)
	}
	fdRec := base
	fdRec.Algorithm = FD
	fdRec.Plan = NewFaultPlan().Crash(time.Second, 5).Recover(2*time.Second, 5)
	if err := fdRec.withDefaults().validate(); err != nil {
		t.Fatalf("FD groups recovery rejected: %v", err)
	}
}

// A trivial one-group map is normalized away: the run is bit-identical
// to a nil Groups configuration, delivery for delivery.
func TestGroupsTrivialMapMatchesNil(t *testing.T) {
	type d struct {
		p  proto.PID
		id proto.MsgID
		at sim.Time
	}
	run := func(m *groups.GroupMap) []d {
		var out []d
		core := NewCore(CoreConfig{
			Algorithm: FD,
			N:         4,
			Lambda:    1,
			Groups:    m,
			Renumber:  true,
			Seed:      7,
			Deliver: func(p proto.PID, id proto.MsgID, body any, at sim.Time) {
				out = append(out, d{p, id, at})
			},
		})
		for i := 0; i < 8; i++ {
			p := i % 4
			i := i
			core.Eng.Schedule(sim.Time(0).Add(sim.Millis(float64(i*7))), func() {
				core.Bcast[p](i)
			})
		}
		core.Eng.Run()
		return out
	}
	a, b := run(nil), run(groups.Disjoint(4, 1))
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
