package experiment

import (
	"math"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
)

// countingObserver records every event kind the chain can feed it.
type countingObserver struct {
	deliveries, broadcasts, netEvents int
}

func (o *countingObserver) ObserveDelivery(Delivery)          { o.deliveries++ }
func (o *countingObserver) ObserveBroadcast(Broadcast)        { o.broadcasts++ }
func (o *countingObserver) ObserveNet(ev netmodel.TraceEvent) { o.netEvents++ }

// TestObserverChainFeedsAllEventKinds runs one serial steady point with a
// full-surface observer and checks each event stream arrives and is
// consistent with the run's own accounting.
func TestObserverChainFeedsAllEventKinds(t *testing.T) {
	obs := make(map[int]*countingObserver)
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   50,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        5 * time.Second,
		Replications: 2,
		Observers: []ObserverFactory{
			func(point, rep int, cfg Config) Observer {
				o := &countingObserver{}
				obs[rep] = o
				return o
			},
		},
	}
	res := (&Runner{Workers: 1}).Steady(cfg)
	if !res.Stable {
		t.Fatalf("unstable run: %+v", res)
	}
	if len(obs) != 2 {
		t.Fatalf("factory built %d observers, want one per replication", len(obs))
	}
	for rep, o := range obs {
		if o.broadcasts == 0 || o.deliveries == 0 || o.netEvents == 0 {
			t.Fatalf("rep %d: events = %+v, want all three streams", rep, *o)
		}
		// Every broadcast is delivered at all 3 live processes.
		if o.deliveries != 3*o.broadcasts {
			t.Fatalf("rep %d: %d deliveries for %d broadcasts, want 3x", rep, o.deliveries, o.broadcasts)
		}
		if o.netEvents < o.broadcasts {
			t.Fatalf("rep %d: %d net events for %d broadcasts", rep, o.netEvents, o.broadcasts)
		}
	}
}

// TestNilObserverFactorySkipped keeps a factory that declines (returns
// nil) from crashing the chain.
func TestNilObserverFactorySkipped(t *testing.T) {
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   20,
		Warmup:       200 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Drain:        5 * time.Second,
		Replications: 1,
		Observers: []ObserverFactory{
			func(int, int, Config) Observer { return nil },
		},
	}
	if res := RunSteady(cfg); !res.Stable {
		t.Fatalf("unstable run with nil observer: %+v", res)
	}
}

// TestLatencyDistComposesWithSteady checks the cross-cutting latency
// observer against the scenario's own measurement: the observer sees at
// least the measured messages (it also sees warmup and drain traffic)
// and its quantiles respect the physical floor.
func TestLatencyDistComposesWithSteady(t *testing.T) {
	ld := NewLatencyDist()
	cfg := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   50,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        5 * time.Second,
		Replications: 2,
		Observers:    []ObserverFactory{ld.Observer},
	}
	res := RunSteady(cfg)
	if !res.Stable {
		t.Fatalf("unstable run: %+v", res)
	}
	d := ld.Dist(0)
	if d.N() < res.Messages {
		t.Fatalf("observer saw %d latencies, scenario measured %d", d.N(), res.Messages)
	}
	q := ld.Quantiles(0)
	if q.Min < 7 {
		t.Fatalf("observer min latency %v below the 7 ms physical floor", q.Min)
	}
	if q.P50 > q.P90 || q.P90 > q.P99 {
		t.Fatalf("quantiles out of order: %+v", q)
	}
	if pts := ld.Points(); len(pts) != 1 || pts[0] != 0 {
		t.Fatalf("Points = %v, want [0]", pts)
	}
	if unseen := ld.Dist(42); unseen.N() != 0 {
		t.Fatalf("unobserved point has %d latencies", unseen.N())
	}
}

// TestLatencyDistComposesWithTransient attaches the observer to the
// crash-transient scenario — the composition the old Scenario.Observe
// could not express — and checks it captures the background traffic's
// distribution around the crash.
func TestLatencyDistComposesWithTransient(t *testing.T) {
	ld := NewLatencyDist()
	cfg := TransientConfig{
		Config: Config{
			Algorithm:    FD,
			N:            3,
			Throughput:   50,
			QoS:          fd.QoS{TD: 5 * time.Millisecond},
			Warmup:       300 * time.Millisecond,
			Drain:        5 * time.Second,
			Replications: 2,
			Observers:    []ObserverFactory{ld.Observer},
		},
		Crash:  0,
		Sender: 1,
	}
	res := RunTransient(cfg)
	if res.Lost > 0 {
		t.Fatalf("lost probes: %+v", res)
	}
	d := ld.Dist(0)
	// The scenario measures 1 probe per replication; the observer sees
	// the whole background workload too.
	if d.N() <= 2 {
		t.Fatalf("observer saw only %d latencies, expected background traffic", d.N())
	}
	// The probe's latency (crash recovery) must be inside the observed
	// distribution's range.
	if res.Latency.Mean < d.Quantile(0) || res.Latency.Mean > d.Quantile(1) {
		t.Fatalf("probe latency %v outside observed range [%v, %v]",
			res.Latency.Mean, d.Quantile(0), d.Quantile(1))
	}
}

// TestLatencyDistDeterministicAcrossWorkers pins the observer's merged
// distributions to the same bits at any worker count.
func TestLatencyDistDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		ld := NewLatencyDist()
		sweep := Sweep{
			Base: Config{
				Algorithm:    FD,
				N:            3,
				Seed:         17,
				Warmup:       200 * time.Millisecond,
				Measure:      time.Second,
				Drain:        5 * time.Second,
				Replications: 3,
				Observers:    []ObserverFactory{ld.Observer},
			},
			Algorithms:  []Algorithm{FD, GM},
			Throughputs: []float64{30, 150},
		}
		(&Runner{Workers: workers}).Sweep(sweep)
		var all []float64
		for _, p := range ld.Points() {
			d := ld.Dist(p)
			all = append(all, d.Values()...)
		}
		return all
	}
	serial, parallel := run(1), run(6)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("latency streams differ in size: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("latency %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

// TestDetectorAxisEndToEnd drives the concrete heartbeat detector
// through the Runner: the sweep's heartbeat point must run, stay stable,
// and show the detector's traffic in its latency (heartbeats contend for
// the same wire).
func TestDetectorAxisEndToEnd(t *testing.T) {
	sweep := Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            3,
			Throughput:   100,
			Warmup:       300 * time.Millisecond,
			Measure:      2 * time.Second,
			Drain:        8 * time.Second,
			Replications: 2,
		},
		Detectors: []*Heartbeat{nil, {Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond}},
	}
	var r Runner
	res := r.Sweep(sweep)
	if len(res) != 2 {
		t.Fatalf("detector axis expanded to %d points", len(res))
	}
	qos, hb := res[0], res[1]
	if qos.Config.Detector != nil || hb.Config.Detector == nil {
		t.Fatalf("axis order wrong: %+v / %+v", qos.Config.Detector, hb.Config.Detector)
	}
	if !qos.Stable || !hb.Stable {
		t.Fatalf("unstable points: qos=%v hb=%v", qos.Stable, hb.Stable)
	}
	// 3 processes beating every 5 ms add 600 multicasts/s to a wire that
	// also carries the protocol: latency must visibly rise.
	if hb.Latency.Mean <= qos.Latency.Mean {
		t.Fatalf("heartbeat contention invisible: hb %v <= qos %v",
			hb.Latency.Mean, qos.Latency.Mean)
	}
}

// TestDetectorCrashDetection checks the heartbeat detector actually
// detects: a crash-steady point under the heartbeat FD must still
// deliver (survivors suspect the dead process by heartbeat silence).
func TestDetectorCrashDetection(t *testing.T) {
	cfg := Config{
		Algorithm:    GM,
		N:            3,
		Throughput:   30,
		Crashed:      []proto.PID{2},
		Detector:     &Heartbeat{Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond},
		Warmup:       300 * time.Millisecond,
		Measure:      time.Second,
		Drain:        8 * time.Second,
		Replications: 2,
	}
	res := RunSteady(cfg)
	if !res.Stable || res.Messages == 0 {
		t.Fatalf("heartbeat crash-steady run failed: %+v", res)
	}
}

// TestDetectorIgnoresQoS pins the documented precedence: when Detector
// selects the concrete heartbeat model, the QoS field is ignored, so a
// Sweep can cross a QoS axis with a Detectors axis and the heartbeat
// points stay bit-identical whatever QoS they inherited.
func TestDetectorIgnoresQoS(t *testing.T) {
	base := Config{
		Algorithm:    FD,
		N:            3,
		Throughput:   30,
		Detector:     &Heartbeat{Interval: 10 * time.Millisecond, Timeout: 30 * time.Millisecond},
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Drain:        5 * time.Second,
		Replications: 2,
	}
	withQoS := base
	withQoS.QoS = fd.QoS{TD: 10 * time.Millisecond, TMR: 100 * time.Millisecond, TM: 5 * time.Millisecond}
	a, b := RunSteady(base), RunSteady(withQoS)
	if !a.Stable || !b.Stable {
		t.Fatalf("unstable heartbeat runs: %v / %v", a.Stable, b.Stable)
	}
	if !summariesBitIdentical(a.PerMessage, b.PerMessage) || a.Messages != b.Messages {
		t.Fatalf("QoS leaked into a Detector point:\nzero QoS: %+v\nwith QoS: %+v", a.PerMessage, b.PerMessage)
	}
}

// TestSweepPointsDetectorAxis checks the canonical expansion order with
// the new innermost axis.
func TestSweepPointsDetectorAxis(t *testing.T) {
	hb := &Heartbeat{Interval: 10 * time.Millisecond}
	s := Sweep{
		Base:        Config{Algorithm: FD, N: 3, Throughput: 10},
		Throughputs: []float64{10, 100},
		Detectors:   []*Heartbeat{nil, hb},
	}
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("2x2 grid expanded to %d points", len(pts))
	}
	want := []struct {
		thr float64
		det *Heartbeat
	}{
		{10, nil}, {10, hb}, {100, nil}, {100, hb},
	}
	for i, w := range want {
		if pts[i].Throughput != w.thr || pts[i].Detector != w.det {
			t.Fatalf("point %d = (T=%v, det=%v), want (T=%v, det=%v)",
				i, pts[i].Throughput, pts[i].Detector, w.thr, w.det)
		}
	}
	// An unset axis inherits Base.Detector.
	single := Sweep{Base: Config{Algorithm: FD, N: 3, Throughput: 10, Detector: hb}}.Points()
	if len(single) != 1 || single[0].Detector != hb {
		t.Fatalf("Base detector not inherited: %+v", single)
	}
}
