package experiment

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/seqabcast"
	"repro/internal/sim"
	"repro/internal/stats"
)

// runSchedule executes one algorithm against an explicit broadcast
// schedule and returns each message's first-delivery time plus network
// counters.
func runSchedule(alg Algorithm, n int, schedule []scheduledSend) (map[proto.MsgID]sim.Time, netmodel.Counters) {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(n), fd.QoS{}, sim.NewRand(1))
	first := make(map[proto.MsgID]sim.Time)
	bcast := make([]func(any) proto.MsgID, n)
	for i := 0; i < n; i++ {
		deliver := func(id proto.MsgID, body any) {
			if _, seen := first[id]; !seen {
				first[id] = eng.Now()
			}
		}
		switch alg {
		case FD:
			p := ctabcast.New(sys.Proc(proto.PID(i)), ctabcast.Config{Deliver: deliver, Renumber: true})
			sys.SetHandler(proto.PID(i), p)
			bcast[i] = p.ABroadcast
		case GM:
			p := seqabcast.New(sys.Proc(proto.PID(i)), seqabcast.Config{Deliver: deliver, Uniform: true})
			sys.SetHandler(proto.PID(i), p)
			bcast[i] = p.ABroadcast
		}
	}
	sys.Start()
	for _, s := range schedule {
		s := s
		eng.Schedule(s.at, func() { bcast[s.sender](nil) })
	}
	eng.Run()
	return first, sys.Net.Counters()
}

type scheduledSend struct {
	at     sim.Time
	sender int
}

// TestMessagePatternEquivalenceProperty is the §4.4 claim as a property
// test: for ANY failure-free arrival schedule, the FD and GM algorithms
// produce identical first-delivery instants for every message and use the
// wire identically.
func TestMessagePatternEquivalenceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := sim.NewRand(seed)
		n := []int{3, 5, 7}[rng.Intn(3)]
		count := 5 + rng.Intn(60)
		schedule := make([]scheduledSend, count)
		at := sim.Time(0)
		for i := range schedule {
			at = at.Add(time.Duration(rng.Intn(8000)) * time.Microsecond)
			schedule[i] = scheduledSend{at: at, sender: rng.Intn(n)}
		}
		fdTimes, fdCounters := runSchedule(FD, n, schedule)
		gmTimes, gmCounters := runSchedule(GM, n, schedule)
		if len(fdTimes) != count || len(gmTimes) != count {
			t.Fatalf("seed %d: delivered %d/%d messages (FD/GM), want %d",
				seed, len(fdTimes), len(gmTimes), count)
		}
		for id, ft := range fdTimes {
			gt, ok := gmTimes[id]
			if !ok {
				t.Fatalf("seed %d: %v missing under GM", seed, id)
			}
			if ft != gt {
				t.Fatalf("seed %d: first delivery of %v differs: FD %v vs GM %v",
					seed, id, ft, gt)
			}
		}
		if fdCounters.WireSlots != gmCounters.WireSlots ||
			fdCounters.Unicasts != gmCounters.Unicasts ||
			fdCounters.Multicasts != gmCounters.Multicasts {
			t.Fatalf("seed %d: wire usage differs: FD %+v vs GM %+v",
				seed, fdCounters, gmCounters)
		}
	}
}

// TestSweepDeterministicAcrossWorkers is the Runner's central contract:
// the same Sweep at 1 worker and at many workers produces bit-identical
// Results, because every replication is an independent deterministic
// simulation and aggregation merges them in canonical (point,
// replication) order regardless of completion order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	sweep := Sweep{
		Base: Config{
			Algorithm:    FD,
			N:            3,
			Seed:         11,
			Warmup:       300 * time.Millisecond,
			Measure:      2 * time.Second,
			Drain:        8 * time.Second,
			Replications: 3,
		},
		Algorithms:  []Algorithm{FD, GM},
		Throughputs: []float64{20, 200},
		QoS:         []fd.QoS{{}, {TMR: 500 * time.Millisecond}},
	}
	serial := (&Runner{Workers: 1}).Sweep(sweep)
	workerCounts := []int{runtime.GOMAXPROCS(0), 4, 7}
	for _, w := range workerCounts {
		parallel := (&Runner{Workers: w}).Sweep(sweep)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(parallel), len(serial))
		}
		for i := range serial {
			if !resultsBitIdentical(serial[i], parallel[i]) {
				t.Fatalf("workers=%d: point %d differs from the serial run:\nserial:   %+v\nparallel: %+v",
					w, i, serial[i], parallel[i])
			}
		}
	}
	// The grid must have the canonical point order and complete coverage.
	checkSweepCoverage(t, sweep, serial)
}

func checkSweepCoverage(t *testing.T, sweep Sweep, serial []Result) {
	t.Helper()
	pts := sweep.Points()
	if len(pts) != 8 || len(serial) != 8 {
		t.Fatalf("expected 2x2x2 = 8 points, got %d points and %d results", len(pts), len(serial))
	}
	for i, res := range serial {
		if res.Config.Algorithm != pts[i].Algorithm ||
			res.Config.Throughput != pts[i].Throughput ||
			res.Config.QoS != pts[i].QoS {
			t.Fatalf("result %d out of canonical order: got %+v, want axes of %+v", i, res.Config, pts[i])
		}
		if res.Messages == 0 {
			t.Fatalf("point %d measured nothing: %+v", i, res)
		}
	}
}

// resultsBitIdentical compares two Results field by field, with floats
// compared by bit pattern so NaNs (empty-sample statistics) compare equal
// to themselves.
func resultsBitIdentical(a, b Result) bool {
	return summariesBitIdentical(a.Latency, b.Latency) &&
		summariesBitIdentical(a.PerMessage, b.PerMessage) &&
		a.Messages == b.Messages &&
		a.Undelivered == b.Undelivered &&
		a.Stable == b.Stable &&
		a.Diverged == b.Diverged
}

func summariesBitIdentical(a, b stats.Summary) bool {
	return a.N == b.N &&
		math.Float64bits(a.Mean) == math.Float64bits(b.Mean) &&
		math.Float64bits(a.StdDev) == math.Float64bits(b.StdDev) &&
		math.Float64bits(a.CI95) == math.Float64bits(b.CI95) &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}
