package experiment

import (
	"testing"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/fd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/seqabcast"
	"repro/internal/sim"
)

// runSchedule executes one algorithm against an explicit broadcast
// schedule and returns each message's first-delivery time plus network
// counters.
func runSchedule(alg Algorithm, n int, schedule []scheduledSend) (map[proto.MsgID]sim.Time, netmodel.Counters) {
	eng := sim.New()
	sys := proto.NewSystem(eng, netmodel.DefaultConfig(n), fd.QoS{}, sim.NewRand(1))
	first := make(map[proto.MsgID]sim.Time)
	bcast := make([]func(any) proto.MsgID, n)
	for i := 0; i < n; i++ {
		deliver := func(id proto.MsgID, body any) {
			if _, seen := first[id]; !seen {
				first[id] = eng.Now()
			}
		}
		switch alg {
		case FD:
			p := ctabcast.New(sys.Proc(proto.PID(i)), ctabcast.Config{Deliver: deliver, Renumber: true})
			sys.SetHandler(proto.PID(i), p)
			bcast[i] = p.ABroadcast
		case GM:
			p := seqabcast.New(sys.Proc(proto.PID(i)), seqabcast.Config{Deliver: deliver, Uniform: true})
			sys.SetHandler(proto.PID(i), p)
			bcast[i] = p.ABroadcast
		}
	}
	sys.Start()
	for _, s := range schedule {
		s := s
		eng.Schedule(s.at, func() { bcast[s.sender](nil) })
	}
	eng.Run()
	return first, sys.Net.Counters()
}

type scheduledSend struct {
	at     sim.Time
	sender int
}

// TestMessagePatternEquivalenceProperty is the §4.4 claim as a property
// test: for ANY failure-free arrival schedule, the FD and GM algorithms
// produce identical first-delivery instants for every message and use the
// wire identically.
func TestMessagePatternEquivalenceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := sim.NewRand(seed)
		n := []int{3, 5, 7}[rng.Intn(3)]
		count := 5 + rng.Intn(60)
		schedule := make([]scheduledSend, count)
		at := sim.Time(0)
		for i := range schedule {
			at = at.Add(time.Duration(rng.Intn(8000)) * time.Microsecond)
			schedule[i] = scheduledSend{at: at, sender: rng.Intn(n)}
		}
		fdTimes, fdCounters := runSchedule(FD, n, schedule)
		gmTimes, gmCounters := runSchedule(GM, n, schedule)
		if len(fdTimes) != count || len(gmTimes) != count {
			t.Fatalf("seed %d: delivered %d/%d messages (FD/GM), want %d",
				seed, len(fdTimes), len(gmTimes), count)
		}
		for id, ft := range fdTimes {
			gt, ok := gmTimes[id]
			if !ok {
				t.Fatalf("seed %d: %v missing under GM", seed, id)
			}
			if ft != gt {
				t.Fatalf("seed %d: first delivery of %v differs: FD %v vs GM %v",
					seed, id, ft, gt)
			}
		}
		if fdCounters.WireSlots != gmCounters.WireSlots ||
			fdCounters.Unicasts != gmCounters.Unicasts ||
			fdCounters.Multicasts != gmCounters.Multicasts {
			t.Fatalf("seed %d: wire usage differs: FD %+v vs GM %+v",
				seed, fdCounters, gmCounters)
		}
	}
}
