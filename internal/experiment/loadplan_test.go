package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// overloadPlan is the load timeline the golden tests pin: a global burst,
// a per-sender rate change, a mute/unmute pair and a pause/resume pair,
// all inside the planBase measure window.
func overloadPlan() *LoadPlan {
	return NewLoadPlan().
		Burst(900*time.Millisecond, 300*time.Millisecond, AllSenders, 4).
		Rate(1400*time.Millisecond, 1, 250).
		Mute(1600*time.Millisecond, 2).
		Unmute(1900*time.Millisecond, 2).
		Pause(2100 * time.Millisecond).
		Resume(2200 * time.Millisecond)
}

// goldenLoadDigests pin the delivery digests of one shaped replication
// pair per algorithm. They were recorded when the LoadPlan machinery was
// introduced; a change means rate rescaling, burst bracketing or mute
// semantics retime events — a correctness bug, not a baseline to
// re-record.
//
// The burst+partition/FD entry was re-recorded once, when decision-log
// catch-up landed: the healed minority now requests the decision suffix
// it missed instead of staying wedged. The pure-load overload entries
// and every GM entry are untouched since their first recording.
var goldenLoadDigests = map[string][]uint64{
	"overload/FD":        {0x1d06062be6de9c5e, 0x0d75bcd71ae4e3fc},
	"overload/GM":        {0x6f805984c72e6026, 0x88bca1b565bf354e},
	"burst+partition/FD": {0x4513a5aa696b5a65, 0x2a5eac984a997750},
	"burst+partition/GM": {0x28d8ab6cd1ae0f67, 0xd085c75237e2aa9d},
}

// loadDigests runs cfg through a Runner with the given worker count and
// returns the per-replication delivery digests in canonical order.
func loadDigests(t *testing.T, cfg Config, workers int) []uint64 {
	t.Helper()
	tr := NewTrace(&bytes.Buffer{})
	cfg.Observers = append(cfg.Observers, tr.Observer)
	r := Runner{Workers: workers}
	r.Steady(cfg)
	ds := tr.Digests()
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Digest
	}
	return out
}

// TestLoadPlanGoldenDigests locks the shaped-workload scenario bit for
// bit, and asserts the digests are identical at 1 and 8 runner workers —
// rate changes mid-gap included (the burst start and end, the rate
// change and the unmute all land mid-gap with near certainty).
func TestLoadPlanGoldenDigests(t *testing.T) {
	for _, alg := range []Algorithm{FD, GM} {
		alg := alg
		name := "overload/" + alg.String()
		t.Run(name, func(t *testing.T) {
			cfg := planBase(alg)
			cfg.Load = overloadPlan()
			serial := loadDigests(t, cfg, 1)
			parallel := loadDigests(t, cfg, 8)
			want := goldenLoadDigests[name]
			if len(serial) != len(want) {
				t.Fatalf("got %d replication digests, want %d", len(serial), len(want))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("rep %d: serial digest %#016x != parallel digest %#016x", i, serial[i], parallel[i])
				}
				if serial[i] != want[i] {
					t.Fatalf("rep %d: digest %#016x, want golden %#016x", i, serial[i], want[i])
				}
			}
		})
	}
}

// TestNoOpLoadPlanIsBitIdentical asserts the tentpole's core contract: a
// plan whose events leave every rate exactly where it already was — a
// global RateChange to the configured throughput — produces the same
// bytes as no plan at all, because rate rescaling consumes no randomness
// and pushing an unchanged rate is a no-op.
func TestNoOpLoadPlanIsBitIdentical(t *testing.T) {
	plain := planBase(FD)
	shaped := planBase(FD)
	shaped.Load = NewLoadPlan().Rate(time.Second, AllSenders, shaped.Throughput)
	a := loadDigests(t, plain, 1)
	b := loadDigests(t, shaped, 1)
	if len(a) != len(b) {
		t.Fatalf("digest counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rep %d: unshaped digest %#016x != no-op-shaped digest %#016x", i, a[i], b[i])
		}
	}
}

// TestMuteOfCrashedSender: muting a sender that a fault plan already
// crashed must be harmless — the source keeps its (dropped) firing
// stream frozen, and deliveries are bit-identical to the crash alone,
// at any worker count.
func TestMuteOfCrashedSender(t *testing.T) {
	crashOnly := planBase(FD)
	crashOnly.Plan = NewFaultPlan().Crash(time.Second, 4)

	muted := planBase(FD)
	muted.Plan = NewFaultPlan().Crash(time.Second, 4)
	muted.Load = NewLoadPlan().Mute(1200*time.Millisecond, 4).Unmute(1700*time.Millisecond, 4)

	a := loadDigests(t, crashOnly, 1)
	b := loadDigests(t, muted, 1)
	c := loadDigests(t, muted, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rep %d: crash-only digest %#016x != crash+mute digest %#016x", i, a[i], b[i])
		}
		if b[i] != c[i] {
			t.Fatalf("rep %d: serial digest %#016x != parallel digest %#016x", i, b[i], c[i])
		}
	}
}

// TestBurstOverlappingPartition crosses the two plan kinds: a 4x burst
// opens while the network is partitioned and outlives the heal. The run
// must stay deterministic at any worker count, hold its golden digests,
// and round-trip through trace record → Replay.
func TestBurstOverlappingPartition(t *testing.T) {
	burst := NewLoadPlan().Burst(1400*time.Millisecond, 500*time.Millisecond, AllSenders, 4)
	for _, alg := range []Algorithm{FD, GM} {
		alg := alg
		name := "burst+partition/" + alg.String()
		t.Run(name, func(t *testing.T) {
			cfg := planBase(alg)
			cfg.Plan = partitionHealPlan()
			cfg.Load = burst
			serial := loadDigests(t, cfg, 1)
			parallel := loadDigests(t, cfg, 8)
			want := goldenLoadDigests[name]
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("rep %d: serial digest %#016x != parallel digest %#016x", i, serial[i], parallel[i])
				}
				if serial[i] != want[i] {
					t.Fatalf("rep %d: digest %#016x, want golden %#016x", i, serial[i], want[i])
				}
			}
		})
	}
}

// TestLoadTraceReplays records a shaped, partitioned sweep point and
// replays it from the trace alone: the header must carry both plans and
// the body the L lines.
func TestLoadTraceReplays(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := planBase(GM)
	cfg.Plan = partitionHealPlan()
	cfg.Load = overloadPlan()
	cfg.Observers = []ObserverFactory{tr.Observer}
	var r Runner
	r.Steady(cfg)
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, `"load":[{"kind":"burst"`) {
		t.Fatal("trace header does not embed the load plan")
	}
	if !strings.Contains(s, "\nL ") {
		t.Fatal("trace body records no L (load event) lines")
	}
	if !strings.Contains(s, "mute p2") || !strings.Contains(s, "pause") {
		t.Fatal("trace L lines are missing events of the plan")
	}
	results, err := Replay(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(results))
	}
	for _, res := range results {
		if !res.Match {
			t.Fatalf("replication (point %d, rep %d) diverged: recorded %#016x, replayed %#016x",
				res.Point, res.Rep, res.Recorded, res.Replayed)
		}
	}
}

// broadcastWindowCounter counts A-broadcasts falling inside a window.
type broadcastWindowCounter struct {
	from, to sim.Time
	in, out  int
}

func (b *broadcastWindowCounter) ObserveDelivery(Delivery) {}
func (b *broadcastWindowCounter) ObserveBroadcast(bc Broadcast) {
	if bc.At >= b.from && bc.At < b.to {
		b.in++
	} else {
		b.out++
	}
}

// TestPauseResumeSilencesWorkload: no A-broadcast may fall inside a
// paused window, while traffic flows before and after it.
func TestPauseResumeSilencesWorkload(t *testing.T) {
	cfg := planBase(FD)
	cfg.Replications = 1
	pauseFrom := sim.Time(0).Add(time.Second)
	pauseTo := sim.Time(0).Add(1500 * time.Millisecond)
	cfg.Load = NewLoadPlan().Pause(time.Second).Resume(1500 * time.Millisecond)
	ctr := &broadcastWindowCounter{from: pauseFrom, to: pauseTo}
	cfg.Observers = []ObserverFactory{
		func(int, int, Config) Observer { return ctr },
	}
	var r Runner
	r.Steady(cfg)
	if ctr.in != 0 {
		t.Fatalf("%d broadcasts landed inside the paused window", ctr.in)
	}
	if ctr.out == 0 {
		t.Fatal("no broadcasts outside the paused window; workload never ran")
	}
}

// TestSweepLoadsAxis checks the Loads axis expands innermost, inside
// Plans.
func TestSweepLoadsAxis(t *testing.T) {
	plan := crashRecoverPlan()
	load := overloadPlan()
	pts := Sweep{
		Base:  planBase(FD),
		Plans: []*FaultPlan{nil, plan},
		Loads: []*LoadPlan{nil, load},
	}.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	want := []struct {
		plan *FaultPlan
		load *LoadPlan
	}{{nil, nil}, {nil, load}, {plan, nil}, {plan, load}}
	for i, w := range want {
		if pts[i].Plan != w.plan || pts[i].Load != w.load {
			t.Fatalf("point %d = (%p, %p), want (%p, %p)", i, pts[i].Plan, pts[i].Load, w.plan, w.load)
		}
	}
}

// TestLoadValidation exercises the load-plan validator through Config.
func TestLoadValidation(t *testing.T) {
	bad := map[string]*LoadPlan{
		"sender out of range": NewLoadPlan().Rate(time.Second, 9, 100),
		"negative sender":     NewLoadPlan().Mute(time.Second, -2),
		"negative time":       NewLoadPlan().Pause(-time.Second),
		"negative rate":       NewLoadPlan().Rate(time.Second, 1, -5),
		"rate above cap":      NewLoadPlan().Rate(time.Second, 1, 2e9),
		"zero burst factor":   NewLoadPlan().Burst(time.Second, time.Second, AllSenders, 0),
		"factor above cap":    NewLoadPlan().Burst(time.Second, time.Second, AllSenders, 2e6),
		"negative burst":      NewLoadPlan().Burst(time.Second, -time.Second, AllSenders, 2),
	}
	for name, plan := range bad {
		cfg := planBase(FD)
		cfg.Load = plan
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("%s: validate accepted %v", name, plan.Events)
		}
	}
	good := planBase(FD)
	good.Load = overloadPlan()
	if err := good.withDefaults().validate(); err != nil {
		t.Errorf("valid load plan rejected: %v", err)
	}
}

// TestLoadEventStrings pins the canonical rendering the trace's L lines
// use.
func TestLoadEventStrings(t *testing.T) {
	cases := map[string]LoadEvent{
		"rate all=300/s":       RateChange{Sender: AllSenders, Rate: 300},
		"rate p2=42.5/s":       RateChange{Sender: 2, Rate: 42.5},
		"burst all x10 for 1s": Burst{Sender: AllSenders, Factor: 10, For: time.Second},
		"burst p1 x0.5 for 2s": Burst{Sender: 1, Factor: 0.5, For: 2 * time.Second},
		"mute p3":              Mute{Sender: 3},
		"unmute all":           Unmute{Sender: AllSenders},
		"pause":                Pause{},
		"resume":               Resume{},
	}
	for want, ev := range cases {
		if got := ev.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", ev, got, want)
		}
	}
}

// TestTinyRateNeverFiresWithoutPanic: a positive rate so small that the
// next gap exceeds the representable duration must behave as "never
// fires" (sim.Millis saturates), not panic on a negative duration or
// stall the run.
func TestTinyRateNeverFiresWithoutPanic(t *testing.T) {
	cfg := planBase(FD)
	cfg.Replications = 1
	cfg.Load = NewLoadPlan().Rate(time.Second, AllSenders, 1e-300)
	ctr := &broadcastWindowCounter{from: sim.Time(0).Add(time.Second), to: sim.Time(1 << 62)}
	cfg.Observers = []ObserverFactory{
		func(int, int, Config) Observer { return ctr },
	}
	var r Runner
	r.Steady(cfg) // must terminate; the post-change workload is silent
	if ctr.in != 0 {
		t.Fatalf("%d broadcasts after the rate dropped below one per epoch", ctr.in)
	}
	if ctr.out == 0 {
		t.Fatal("no broadcasts before the rate change; workload never ran")
	}
}

// TestMuteKeepsLogicalRate: a rate change landing while the sender is
// muted applies on unmute — the mute silences, it does not forget.
func TestMuteKeepsLogicalRate(t *testing.T) {
	// Directly exercise the installer against a real source.
	eng := sim.New()
	fired := 0
	src := workload.NewPoisson(eng, sim.NewRand(23), 100, func() { fired++ })
	l := NewLoads(eng, 100, 1, []*workload.Poisson{src})
	l.Fire(Mute{Sender: 0})
	l.Fire(RateChange{Sender: 0, Rate: 1000})
	eng.RunUntil(sim.Time(0).Add(2 * time.Second))
	if fired != 0 {
		t.Fatalf("muted source fired %d times", fired)
	}
	l.Fire(Unmute{Sender: 0})
	start := fired
	eng.RunUntil(eng.Now().Add(10 * time.Second))
	got := float64(fired - start)
	want := 1000 * 10.0
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("post-unmute events = %v, want ~%v (the while-muted rate change must stick)", got, want)
	}
}
