package experiment

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// planBase is the configuration the FaultPlan determinism tests run on:
// small enough for CI, long enough for the faults to open, resolve and
// drain their late deliveries.
func planBase(alg Algorithm) Config {
	return Config{
		Algorithm:    alg,
		N:            5,
		Throughput:   100,
		QoS:          fd.QoS{TD: 10 * time.Millisecond},
		Seed:         1,
		Warmup:       500 * time.Millisecond,
		Measure:      2 * time.Second,
		Drain:        8 * time.Second,
		Replications: 2,
	}
}

func partitionHealPlan() *FaultPlan {
	return NewFaultPlan().
		Partition(1200*time.Millisecond, []proto.PID{0, 1, 2}, []proto.PID{3, 4}).
		Heal(1800 * time.Millisecond)
}

func crashRecoverPlan() *FaultPlan {
	return NewFaultPlan().
		Crash(1000*time.Millisecond, 4).
		Recover(1600*time.Millisecond, 4)
}

// longOutagePlan keeps p4 down through two full seconds of steady
// traffic — a couple of hundred decisions, several times the FD
// consensus instance window — so peers garbage-collect every instance
// the crashed process misses and its recovery can only complete through
// decision-log catch-up.
func longOutagePlan() *FaultPlan {
	return NewFaultPlan().
		Crash(600*time.Millisecond, 4).
		Recover(2400*time.Millisecond, 4)
}

// goldenPlanDigests pin the delivery digests of one partition-heal and
// one crash-recover replication per algorithm. They were recorded when
// the FaultPlan machinery was introduced; a change means partitions,
// recoveries or their failure-detector coupling retime or reorder
// events — a correctness bug, not a baseline to re-record.
//
// The FD entries were re-recorded once, when decision-log catch-up
// landed: a recovered or heal-rejoined FD process now requests and
// re-delivers the decision suffix it missed instead of staying wedged,
// which changes (improves) the delivery sequences of both FD scenarios.
// The GM entries are untouched since their first recording — GM's own
// rejoin machinery predates catch-up and must not be affected by it.
var goldenPlanDigests = map[string][]uint64{
	"partition-heal/FD":  {0x04be297fb3fb5acf, 0xf4447bcf121c3191},
	"partition-heal/GM":  {0xefb9b221b3333887, 0x106d7618aebb358c},
	"crash-recover/FD":   {0x62a6a645e2a7b754, 0xc1160e12abb12c3d},
	"crash-recover/GM":   {0x5a6ab766452dd62d, 0x8d5ab070c873978b},
	"long-outage/FD":     {0xd84aa5c3358a1d50, 0x9064232003ef3eb5},
	"long-outage/GM":     {0x98d6538394389e39, 0x6377cca6da1207a7},
	"precrash-vs-legacy": {0xeb2f8b6ae97a4a10, 0xa1b4b43c17445f23},
}

// planDigests runs cfg through a Runner with the given worker count and
// returns the per-replication delivery digests in canonical order.
func planDigests(t *testing.T, cfg Config, workers int) []uint64 {
	t.Helper()
	tr := NewTrace(&bytes.Buffer{})
	cfg.Observers = []ObserverFactory{tr.Observer}
	r := Runner{Workers: workers}
	r.Steady(cfg)
	ds := tr.Digests()
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Digest
	}
	return out
}

// TestFaultPlanGoldenDigests locks the partition-heal and crash-recover
// scenarios bit for bit, and asserts the digests are identical at 1 and
// 8 runner workers.
func TestFaultPlanGoldenDigests(t *testing.T) {
	cases := []struct {
		name string
		alg  Algorithm
		plan *FaultPlan
	}{
		{"partition-heal/FD", FD, partitionHealPlan()},
		{"partition-heal/GM", GM, partitionHealPlan()},
		{"crash-recover/FD", FD, crashRecoverPlan()},
		{"crash-recover/GM", GM, crashRecoverPlan()},
		{"long-outage/FD", FD, longOutagePlan()},
		{"long-outage/GM", GM, longOutagePlan()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := planBase(tc.alg)
			cfg.Plan = tc.plan
			serial := planDigests(t, cfg, 1)
			parallel := planDigests(t, cfg, 8)
			want := goldenPlanDigests[tc.name]
			if len(serial) != len(want) {
				t.Fatalf("got %d replication digests, want %d", len(serial), len(want))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("rep %d: serial digest %#016x != parallel digest %#016x", i, serial[i], parallel[i])
				}
				if serial[i] != want[i] {
					t.Fatalf("rep %d: digest %#016x, want golden %#016x", i, serial[i], want[i])
				}
			}
		})
	}
}

// TestCrashedIsPreCrashConstructor asserts the acceptance criterion that
// Config.Crashed and a plan of PreCrash events are the same thing: the
// delivery digests agree bit for bit.
func TestCrashedIsPreCrashConstructor(t *testing.T) {
	legacy := planBase(GM)
	legacy.Crashed = []proto.PID{4, 3}

	planned := planBase(GM)
	planned.Plan = NewFaultPlan().PreCrash(4).PreCrash(3)

	a := planDigests(t, legacy, 1)
	b := planDigests(t, planned, 1)
	want := goldenPlanDigests["precrash-vs-legacy"]
	if len(a) != len(b) || len(a) != len(want) {
		t.Fatalf("digest counts differ: %d vs %d vs golden %d", len(a), len(b), len(want))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rep %d: Crashed digest %#016x != PreCrash plan digest %#016x", i, a[i], b[i])
		}
		if a[i] != want[i] {
			t.Fatalf("rep %d: digest %#016x, want golden %#016x", i, a[i], want[i])
		}
	}
}

// TestPartitionPlanRecoversThroughGM asserts the behavioural contrast the
// partition figure plots: under the same partition-and-heal plan the GM
// algorithm delivers every measured message (the minority rejoins with
// state transfer and re-announces what the partition swallowed), while
// the FD algorithm loses the minority's partition-era messages.
func TestPartitionPlanRecoversThroughGM(t *testing.T) {
	var r Runner
	res := r.Sweep(Sweep{
		Base:       planBase(FD),
		Algorithms: []Algorithm{FD, GM},
		Plans:      []*FaultPlan{partitionHealPlan()},
	})
	fdRes, gmRes := res[0], res[1]
	if fdRes.Undelivered == 0 {
		t.Fatal("FD lost nothing through the partition; expected minority messages to be lost")
	}
	if gmRes.Undelivered != 0 {
		t.Fatalf("GM left %d messages undelivered; rejoin + re-announcement should recover all", gmRes.Undelivered)
	}
	if gmRes.Quantiles.P99 < 100 {
		t.Fatalf("GM P99 = %.1fms; the recovered messages should form a late tail", gmRes.Quantiles.P99)
	}
}

// TestLongOutagePlanCatchUpTracedAndReplays runs the long-outage plan
// under FD with a full trace: the catch-up exchange must be visible as
// request/reply wire records, and the trace must replay bit for bit —
// catch-up is part of the deterministic event stream like everything
// else.
func TestLongOutagePlanCatchUpTracedAndReplays(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := planBase(FD)
	cfg.Plan = longOutagePlan()
	cfg.Observers = []ObserverFactory{tr.Observer}
	var r Runner
	r.Steady(cfg)
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "CatchUpReq[") {
		t.Fatal("trace records no catch-up requests; the recovered process never asked for its suffix")
	}
	if !strings.Contains(text, "CatchUpReply[") {
		t.Fatal("trace records no catch-up replies")
	}
	results, err := Replay(strings.NewReader(text))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(results))
	}
	for _, res := range results {
		if !res.Match {
			t.Fatalf("replication (point %d, rep %d) diverged: recorded %#016x, replayed %#016x",
				res.Point, res.Rep, res.Recorded, res.Replayed)
		}
	}
}

// TestPlanTraceReplays records a planned sweep point and replays it from
// the trace alone: the header must carry the plan.
func TestPlanTraceReplays(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := planBase(GM)
	cfg.Plan = partitionHealPlan()
	cfg.Observers = []ObserverFactory{tr.Observer}
	var r Runner
	r.Steady(cfg)
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !strings.Contains(buf.String(), `"plan":[{"kind":"partition"`) {
		t.Fatal("trace header does not embed the plan")
	}
	if !strings.Contains(buf.String(), "\nF ") {
		t.Fatal("trace body records no F (plan event) lines")
	}
	results, err := Replay(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications, want 2", len(results))
	}
	for _, res := range results {
		if !res.Match {
			t.Fatalf("replication (point %d, rep %d) diverged: recorded %#016x, replayed %#016x",
				res.Point, res.Rep, res.Recorded, res.Replayed)
		}
	}
}

// TestGzipTraceRoundTrip checks the TraceGzip option compresses and that
// Replay autodetects it.
func TestGzipTraceRoundTrip(t *testing.T) {
	var plain, packed bytes.Buffer
	trP := NewTrace(&plain)
	trG := NewTrace(&packed, TraceGzip())
	cfg := planBase(FD)
	cfg.Replications = 1
	for _, tr := range []*Trace{trP, trG} {
		c := cfg
		c.Observers = []ObserverFactory{tr.Observer}
		var r Runner
		r.Steady(c)
		if err := tr.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	if packed.Len() >= plain.Len() {
		t.Fatalf("gzip trace (%d bytes) not smaller than plain (%d bytes)", packed.Len(), plain.Len())
	}
	gz, err := gzip.NewReader(bytes.NewReader(packed.Bytes()))
	if err != nil {
		t.Fatalf("not a gzip stream: %v", err)
	}
	var unpacked bytes.Buffer
	if _, err := unpacked.ReadFrom(gz); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if unpacked.String() != plain.String() {
		t.Fatal("gzip trace decompresses to different content than the plain trace")
	}
	results, err := Replay(bytes.NewReader(packed.Bytes()))
	if err != nil {
		t.Fatalf("replay of gzip trace: %v", err)
	}
	for _, res := range results {
		if !res.Match {
			t.Fatalf("gzip replay diverged at point %d rep %d", res.Point, res.Rep)
		}
	}
}

// TestGzipTraceMultiFlush appends two runs as two gzip members and
// replays the whole file.
func TestGzipTraceMultiFlush(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, TraceGzip())
	cfg := planBase(FD)
	cfg.Replications = 1
	for i := 0; i < 2; i++ {
		c := cfg
		c.Observers = []ObserverFactory{tr.Observer}
		var r Runner
		r.Steady(c)
		if err := tr.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	results, err := Replay(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d replications across two flushes, want 2", len(results))
	}
}

// TestTraceBufferLimitBoundsNetRecords checks the bounded-buffer option:
// N records stop at the limit, a T marker reports the drop count, and
// the trace still replays (digests ride on D records, which are kept).
func TestTraceBufferLimitBoundsNetRecords(t *testing.T) {
	var bounded, full bytes.Buffer
	trB := NewTrace(&bounded, TraceBufferLimit(4096))
	trF := NewTrace(&full)
	cfg := planBase(FD)
	cfg.Replications = 1
	for _, tr := range []*Trace{trB, trF} {
		c := cfg
		c.Observers = []ObserverFactory{tr.Observer}
		var r Runner
		r.Steady(c)
		if err := tr.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	if bounded.Len() >= full.Len() {
		t.Fatalf("bounded trace (%d bytes) not smaller than unbounded (%d bytes)", bounded.Len(), full.Len())
	}
	if !strings.Contains(bounded.String(), "\nT ") {
		t.Fatal("bounded trace has no T truncation marker")
	}
	dCount := strings.Count(bounded.String(), "\nD ")
	dFull := strings.Count(full.String(), "\nD ")
	if dCount != dFull {
		t.Fatalf("bounded trace dropped D records: %d vs %d", dCount, dFull)
	}
	results, err := Replay(&bounded)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, res := range results {
		if !res.Match {
			t.Fatal("bounded trace no longer replays")
		}
	}
}

// TestSweepPlansAxis checks the Plans axis expands innermost.
func TestSweepPlansAxis(t *testing.T) {
	plan := crashRecoverPlan()
	pts := Sweep{
		Base:       planBase(FD),
		Algorithms: []Algorithm{FD, GM},
		Plans:      []*FaultPlan{nil, plan},
	}.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	want := []struct {
		alg  Algorithm
		plan *FaultPlan
	}{{FD, nil}, {FD, plan}, {GM, nil}, {GM, plan}}
	for i, w := range want {
		if pts[i].Algorithm != w.alg || pts[i].Plan != w.plan {
			t.Fatalf("point %d = (%v, %p), want (%v, %p)", i, pts[i].Algorithm, pts[i].Plan, w.alg, w.plan)
		}
	}
}

// TestPlanValidation exercises the plan validator through Config.
func TestPlanValidation(t *testing.T) {
	bad := map[string]*FaultPlan{
		"pid out of range":   NewFaultPlan().Crash(time.Second, 9),
		"negative time":      NewFaultPlan().Crash(-time.Second, 1),
		"loss above one":     NewFaultPlan().Link(0, 0, 1, 1.5, 0),
		"self link":          NewFaultPlan().Link(0, 1, 1, 0.5, 0),
		"duplicate in group": NewFaultPlan().Partition(0, []proto.PID{0, 1}, []proto.PID{1}),
		"negative duration":  NewFaultPlan().Suspect(0, 1, -time.Second),
		"bad monitor":        NewFaultPlan().Suspect(0, 1, 0, proto.PID(7)),
	}
	for name, plan := range bad {
		cfg := planBase(FD)
		cfg.Plan = plan
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("%s: validate accepted %v", name, plan.Events)
		}
	}
	good := planBase(FD)
	good.Plan = partitionHealPlan()
	if err := good.withDefaults().validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// PreCrash events count against the f < n/2 bound like Crashed does.
	over := planBase(FD)
	over.Plan = NewFaultPlan().PreCrash(1).PreCrash(2).PreCrash(3)
	if err := over.withDefaults().validate(); err == nil {
		t.Error("three pre-crashes of five accepted; want f < n/2 rejection")
	}
}

// TestTransientCrashObservedAsPlanEvent checks the crash-transient
// scenario fires its scripted crash through the shared fault machinery:
// a trace of a transient replication carries the F record.
func TestTransientCrashObservedAsPlanEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	cfg := TransientConfig{
		Config: Config{
			Algorithm:    FD,
			N:            3,
			Throughput:   50,
			QoS:          fd.QoS{TD: 10 * time.Millisecond},
			Seed:         1,
			Warmup:       300 * time.Millisecond,
			Drain:        5 * time.Second,
			Replications: 1,
			Observers:    []ObserverFactory{tr.Observer},
		},
		Crash:  0,
		Sender: 1,
	}
	var r Runner
	r.Transient(cfg)
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !strings.Contains(buf.String(), "F 300000000 crash p0\n") {
		t.Fatalf("transient trace records no plan event for the scripted crash:\n%.400s", buf.String())
	}
	results, err := Replay(&buf)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 1 || !results[0].Match {
		t.Fatalf("transient replay = %+v", results)
	}
}
