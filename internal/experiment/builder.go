package experiment

import (
	"fmt"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/fd"
	"repro/internal/gm"
	"repro/internal/groups"
	"repro/internal/hbfd"
	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/seqabcast"
	"repro/internal/sim"
	"repro/internal/topo"
)

// CoreConfig parameterises the shared cluster builder. Both the
// experiment harness (newCluster) and the interactive facade
// (repro.NewCluster) construct their simulated systems through NewCore,
// so the per-process endpoint and recovery bookkeeping — heartbeat
// wrapping, GM rejoin incarnations, broadcast-sequence bases — lives in
// exactly one place.
//
// Callers pass already-validated, already-defaulted values: NewCore
// panics on malformed configuration only as a backstop, because the
// configuration is code, not input.
type CoreConfig struct {
	// Algorithm selects the protocol stack (FD, GM or GMNonUniform).
	Algorithm Algorithm
	// N is the number of processes.
	N int
	// Lambda is the network model's CPU/wire cost ratio (already
	// defaulted; 1 reproduces the paper).
	Lambda float64
	// Topology is the connectivity graph to route over; nil selects the
	// paper's full mesh on one shared wire.
	Topology *topo.Topology
	// Groups, if non-nil and non-trivial, shards the system: every group
	// runs its own protocol instance (over the topology subgraph its
	// members span) and messages are genuine atomic multicasts addressed
	// to destination groups, cross-ordered by timestamp merge. A trivial
	// map (one group covering everyone) is normalized to nil, keeping the
	// plain broadcast path bit-identical.
	Groups *groups.GroupMap
	// QoS parameterises the modelled failure detectors. The experiment
	// harness silences it when a concrete Detector is configured; the
	// interactive facade passes it through as given. NewCore applies
	// whatever it receives.
	QoS fd.QoS
	// Detector, if non-nil, wraps every endpoint in the concrete
	// heartbeat failure detector of internal/hbfd.
	Detector *Heartbeat
	// Renumber enables the FD algorithm's coordinator renumbering.
	Renumber bool
	// Seed is the root seed of the run's random streams.
	Seed uint64
	// Parallel enables the engine's conservative parallel execution
	// mode: the topology (plus the groups map, if any) is partitioned
	// into conflict domains (netmodel.ConflictDomains) and independent
	// domains advance concurrently inside safe windows, with observable
	// behavior bit-identical to the serial engine.
	Parallel bool
	// Workers bounds the goroutines draining domains concurrently when
	// Parallel is set; values below 1 (or above the domain count) are
	// clamped.
	Workers int
	// SerialDomains forces a single conflict domain even when Parallel
	// is set. Callers use it when the run exercises features that draw
	// from shared random streams mid-window — lossy link faults,
	// cross-shard workload mixing — whose draw order only a single
	// domain preserves. The parallel window machinery still runs, so the
	// run remains a valid parallel-path check, just without concurrency.
	SerialDomains bool
	// PreCrashed lists processes crashed long before the start, deduped,
	// in declaration order. They are excluded from the initial GM view
	// and PreCrash-ed before Start.
	PreCrashed []proto.PID
	// Deliver observes every A-delivery at every process; at is the
	// delivery instant. It must be non-nil.
	Deliver func(p proto.PID, id proto.MsgID, body any, at sim.Time)
	// OnView, if non-nil, observes view installations (GM algorithms
	// only).
	OnView func(p proto.PID, v gm.View, at sim.Time)
}

// Core is one assembled simulated system: engine, network, detectors and
// per-process protocol stacks. The exported slices are live state shared
// with the caller — SentBy in particular is incremented by the caller on
// every A-broadcast and read back by recovered GM incarnations as their
// ID-sequence base.
type Core struct {
	Eng *sim.Engine
	Sys *proto.System
	// Bcast[p] is process p's A-broadcast entry point; recovery refreshes
	// the entries of rebuilt incarnations in place.
	Bcast []func(body any) proto.MsgID
	// Wrappers holds the heartbeat detectors when Detector is set.
	Wrappers []*hbfd.Wrapper
	// SentBy counts the A-broadcasts issued per process — callers
	// increment it; a recovered GM incarnation continues its ID sequence
	// from it.
	SentBy []uint64
	// Members lists the processes alive at start (everyone not
	// pre-crashed), ascending: the initial GM view.
	Members []proto.PID
	// FDProcs holds the ctabcast endpoints when Algorithm is FD (nil
	// entries otherwise): Recover and Healed arm their catch-up probes.
	FDProcs []*ctabcast.Process
	// Mcast is the destination-group-addressed multicast entry point,
	// non-nil only in groups mode: it initiates a genuine multicast from
	// p to the listed groups (sorted, unique) and returns its global id.
	Mcast func(p proto.PID, dests []int, body any) proto.MsgID
	// Coord is the group layer's coordinator, non-nil only in groups
	// mode.
	Coord *groups.Coordinator

	// endpoint[p] constructs one protocol-stack incarnation of process p;
	// Recover uses it to rebuild after a GM crash-recovery.
	endpoint []func(rt proto.Runtime, rejoin bool) proto.Handler
	alg      Algorithm
}

// NewCore builds engine + network + detectors + algorithm stacks and
// starts the system. The construction order — engine, network
// configuration, root random stream, protocol system, per-process
// endpoints, pre-crashes, start — is observable through the forked
// random streams and must not be reordered: simulations are bit-for-bit
// reproductions of it.
func NewCore(cfg CoreConfig) *Core {
	if cfg.Deliver == nil {
		panic("experiment: NewCore requires a Deliver callback")
	}
	if cfg.Groups != nil && cfg.Groups.Trivial() {
		// One group covering everyone is plain atomic broadcast: use the
		// ungrouped path so the run is bit-identical to a nil map.
		cfg.Groups = nil
	}
	eng := sim.New()
	netCfg := netmodel.Config{
		N:        cfg.N,
		Lambda:   sim.Millis(cfg.Lambda),
		Slot:     time.Millisecond,
		Topology: cfg.Topology,
	}
	if cfg.Parallel {
		// The engine must learn its domains before any component fetches
		// a handle, i.e. before the protocol system is built.
		var shards [][]int
		if cfg.Groups != nil {
			for g := 0; g < cfg.Groups.NumGroups(); g++ {
				ms := cfg.Groups.Members(g)
				shard := make([]int, len(ms))
				for i, m := range ms {
					shard[i] = int(m)
				}
				shards = append(shards, shard)
			}
		}
		domainOf, lookahead := netmodel.ConflictDomains(netCfg, shards)
		if cfg.SerialDomains {
			domainOf = make([]int, cfg.N)
			lookahead = 0
		}
		eng.EnableParallel(domainOf, lookahead, cfg.Workers)
	}
	sys := proto.NewSystem(eng, netCfg, cfg.QoS, sim.NewRand(cfg.Seed))
	c := &Core{
		Eng:      eng,
		Sys:      sys,
		Bcast:    make([]func(any) proto.MsgID, cfg.N),
		Wrappers: make([]*hbfd.Wrapper, cfg.N),
		SentBy:   make([]uint64, cfg.N),
		FDProcs:  make([]*ctabcast.Process, cfg.N),
		endpoint: make([]func(proto.Runtime, bool) proto.Handler, cfg.N),
		alg:      cfg.Algorithm,
	}

	crashed := make(map[proto.PID]bool, len(cfg.PreCrashed))
	for _, p := range cfg.PreCrashed {
		crashed[p] = true
	}
	for p := 0; p < cfg.N; p++ {
		if !crashed[proto.PID(p)] {
			c.Members = append(c.Members, proto.PID(p))
		}
	}

	if cfg.Groups != nil {
		c.buildGroups(cfg, sys)
		for _, p := range cfg.PreCrashed {
			sys.PreCrash(p)
		}
		sys.Start()
		return c
	}

	for p := 0; p < cfg.N; p++ {
		p := p
		pid := proto.PID(p)
		h := eng.For(p)
		// The delivery instant is read from the process's own domain
		// clock at the moment of delivery; inside a parallel window the
		// observer call itself is deferred to the window commit, where it
		// runs in exact serial order.
		deliver := func(id proto.MsgID, body any) {
			at := h.Now()
			if h.Deferring() {
				h.Emit(func() { cfg.Deliver(pid, id, body, at) })
				return
			}
			cfg.Deliver(pid, id, body, at)
		}
		// build constructs the algorithm endpoint against rt and returns
		// the handler plus the broadcast entry point; rt is the plain
		// process runtime, or the heartbeat wrapper's when Detector is
		// set. rejoin marks a recovered GM incarnation: its initial view
		// omits itself (so it starts excluded and rejoins through the
		// membership service) and its message IDs continue the previous
		// incarnations' sequence.
		build := func(rt proto.Runtime, rejoin bool) (proto.Handler, func(any) proto.MsgID) {
			switch cfg.Algorithm {
			case FD:
				proc := ctabcast.New(rt, ctabcast.Config{
					Deliver:  deliver,
					Renumber: cfg.Renumber,
				})
				c.FDProcs[p] = proc
				return proc, proc.ABroadcast
			case GM, GMNonUniform:
				scfg := seqabcast.Config{
					Deliver:        deliver,
					Uniform:        cfg.Algorithm == GM,
					InitialMembers: c.Members,
				}
				if rejoin {
					scfg.InitialMembers = withoutPID(c.Members, pid)
					scfg.SeqBase = c.SentBy[p]
				}
				if cfg.OnView != nil {
					scfg.OnView = func(v gm.View) {
						at := h.Now()
						if h.Deferring() {
							// Copy the member list: the observation runs at
							// the window commit, and the protocol may touch
							// its view state in later events of the window.
							cp := gm.View{ID: v.ID, Members: append([]proto.PID(nil), v.Members...)}
							h.Emit(func() { cfg.OnView(pid, cp, at) })
							return
						}
						cfg.OnView(pid, v, at)
					}
				}
				proc := seqabcast.New(rt, scfg)
				return proc, proc.ABroadcast
			default:
				panic(fmt.Sprintf("experiment: unknown algorithm %v", cfg.Algorithm))
			}
		}
		c.endpoint[p] = func(rt proto.Runtime, rejoin bool) proto.Handler {
			if hb := cfg.Detector; hb != nil {
				w := hbfd.Wrap(rt, hbfd.Config{Interval: hb.Interval, Timeout: hb.Timeout},
					func(inner proto.Runtime) proto.Handler {
						h, bc := build(inner, rejoin)
						c.Bcast[p] = bc
						return h
					})
				c.Wrappers[p] = w
				return w
			}
			h, bc := build(rt, rejoin)
			c.Bcast[p] = bc
			return h
		}
		sys.SetHandler(pid, c.endpoint[p](sys.Proc(pid), false))
	}
	for _, p := range cfg.PreCrashed {
		sys.PreCrash(p)
	}
	sys.Start()
	return c
}

// buildGroups assembles the groups-mode system: one groups.Router per
// process as the root handler, owning one protocol instance per group
// the process belongs to. Each instance is the same FD or GM stack the
// ungrouped path builds — constructed here through a factory that runs
// it in the group's local id space — and the router's timestamp merge
// provides the cross-group total order.
func (c *Core) buildGroups(cfg CoreConfig, sys *proto.System) {
	pre := make([]bool, cfg.N)
	for _, p := range cfg.PreCrashed {
		pre[p] = true
	}
	factory := func(ic groups.InstanceConfig) groups.Endpoint {
		var ep groups.Endpoint
		build := func(rt proto.Runtime) proto.Handler {
			switch cfg.Algorithm {
			case FD:
				proc := ctabcast.New(rt, ctabcast.Config{
					Deliver:  func(_ proto.MsgID, body any) { ic.Deliver(body) },
					Renumber: cfg.Renumber,
				})
				ep.ABroadcast = proc.ABroadcast
				ep.Resume = proc.Resume
				return proc
			case GM, GMNonUniform:
				scfg := seqabcast.Config{
					Deliver:        func(_ proto.MsgID, body any) { ic.Deliver(body) },
					Uniform:        cfg.Algorithm == GM,
					InitialMembers: ic.InitialLocal,
				}
				if cfg.OnView != nil {
					global := ic.Members[ic.Local]
					h := c.Eng.For(int(global))
					scfg.OnView = func(v gm.View) {
						// Report view members in global pids; the view id
						// sequence is the group's own.
						mapped := gm.View{ID: v.ID, Members: make([]proto.PID, len(v.Members))}
						for i, lq := range v.Members {
							mapped.Members[i] = ic.Members[lq]
						}
						at := h.Now()
						if h.Deferring() {
							h.Emit(func() { cfg.OnView(global, mapped, at) })
							return
						}
						cfg.OnView(global, mapped, at)
					}
				}
				proc := seqabcast.New(rt, scfg)
				ep.ABroadcast = proc.ABroadcast
				return proc
			default:
				panic(fmt.Sprintf("experiment: unknown algorithm %v", cfg.Algorithm))
			}
		}
		if hb := cfg.Detector; hb != nil {
			w := hbfd.Wrap(ic.Runtime, hbfd.Config{Interval: hb.Interval, Timeout: hb.Timeout}, build)
			ep.Restart = w.Restart
			ep.Handler = w
		} else {
			ep.Handler = build(ic.Runtime)
		}
		return ep
	}
	// The routers invoke the coordinator's deliver inline, from the
	// delivering process's domain; defer the observation to the window
	// commit (the router already captured the delivery instant).
	deliver := func(p proto.PID, id proto.MsgID, body any, at sim.Time) {
		h := c.Eng.For(int(p))
		if h.Deferring() {
			h.Emit(func() { cfg.Deliver(p, id, body, at) })
			return
		}
		cfg.Deliver(p, id, body, at)
	}
	coord := groups.NewCoordinator(sys, cfg.Groups, pre, factory, deliver)
	c.Coord = coord
	for p := 0; p < cfg.N; p++ {
		pid := proto.PID(p)
		r := coord.NewRouter(sys.Proc(pid))
		sys.SetHandler(pid, r)
		home := []int{cfg.Groups.Home(pid)}
		c.Bcast[p] = func(body any) proto.MsgID { return r.Multicast(home, body) }
	}
	c.Mcast = func(p proto.PID, dests []int, body any) proto.MsgID {
		return coord.Router(p).Multicast(dests, body)
	}
}

// Recover revives a crashed process, algorithm-aware: the GM algorithms
// model a true crash-recovery (a fresh incarnation starts excluded,
// rejoins through the membership service and catches up via state
// transfer), while the crash-stop FD algorithm models recovery as the
// end of a long outage — the process resumes with its state intact and
// closes its decision gap through decision-log catch-up (ctabcast's
// suffix transfer; Resume arms the probe). Either way the heartbeat
// detector, when configured, starts beating again. Recovering a live
// process is a no-op.
func (c *Core) Recover(p proto.PID) {
	if !c.Sys.Proc(p).Crashed() {
		return
	}
	if c.Coord != nil {
		// Groups mode: every group instance is an FD stack with its state
		// intact; restart the detector and arm each instance's catch-up
		// probe. The GM algorithms would need a per-group rejoin protocol,
		// which the group layer does not model — validate() rejects that
		// combination, so reaching here is a bug.
		if c.alg != FD {
			panic("experiment: crash-recovery is unsupported for the GM algorithms in groups mode")
		}
		c.Sys.Recover(p, nil)
		c.Coord.Router(p).Recovered()
		return
	}
	if c.alg == FD {
		c.Sys.Recover(p, nil)
		if w := c.Wrappers[p]; w != nil {
			w.Restart()
		}
		c.FDProcs[p].Resume()
		return
	}
	c.Sys.Recover(p, func(rt proto.Runtime) proto.Handler {
		return c.endpoint[p](rt, true)
	})
}

// Healed arms the FD catch-up probe on every live process after a
// partition heal: a healed minority segment has missed the majority's
// decisions and must ask for the suffix — decision forwarding alone
// cannot unwedge it once the gap is real. The GM algorithms run their
// own staleness probe off the heal's trust edges, so this is a no-op
// for them. Probes on processes that were not behind disarm silently.
func (c *Core) Healed() {
	if c.alg != FD {
		return
	}
	if c.Coord != nil {
		for p := 0; p < c.Coord.Map().N(); p++ {
			if !c.Sys.Proc(proto.PID(p)).Crashed() {
				c.Coord.Router(proto.PID(p)).Resumed()
			}
		}
		return
	}
	for p, proc := range c.FDProcs {
		if proc != nil && !c.Sys.Proc(proto.PID(p)).Crashed() {
			proc.Resume()
		}
	}
}

// withoutPID returns members minus p, freshly allocated.
func withoutPID(members []proto.PID, p proto.PID) []proto.PID {
	out := make([]proto.PID, 0, len(members))
	for _, m := range members {
		if m != p {
			out = append(out, m)
		}
	}
	return out
}
