package consensus

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/proto"
)

// FuzzScheduleAgreement drives a 3-process consensus with a byte-string
// interpreted as a schedule of deliveries, crashes and suspicions, and
// asserts agreement + validity at quiescence. Without -fuzz it runs the
// seed corpus as regular tests; with -fuzz it explores schedules.
func FuzzScheduleAgreement(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x11, 0x22, 0x33, 0x44})
	f.Add([]byte{0xff, 0x0f, 0xf0, 0x55, 0xaa, 0x01, 0x02, 0x03})
	f.Add([]byte("delivery order fuzzing"))
	f.Fuzz(func(t *testing.T, script []byte) {
		n := newTestNet(pids(3)...)
		n.build(0)
		proposals := map[proto.PID]Value{}
		for _, p := range n.participants {
			proposals[p] = fmt.Sprintf("v%d", p)
			n.insts[p].Start(proposals[p])
		}
		crashBudget := 1
		for _, b := range script {
			switch b % 4 {
			case 0: // deliver the message at index b%len(queue)
				if len(n.queue) > 0 {
					i := int(b) % len(n.queue)
					q := n.queue[i]
					n.queue = append(n.queue[:i], n.queue[i+1:]...)
					if !n.crashed[q.to] {
						n.insts[q.to].OnMessage(q.from, q.m)
					}
				}
			case 1: // crash
				victim := proto.PID(b) % 3
				if crashBudget > 0 && !n.crashed[victim] {
					n.crash(victim)
					crashBudget--
				}
			case 2: // transient suspicion
				q := proto.PID(b) % 3
				p := proto.PID(b>>2) % 3
				if q != p && !n.crashed[q] {
					n.suspect(q, p)
					n.trust(q, p)
				}
			case 3: // deliver head
				if len(n.queue) > 0 {
					q := n.queue[0]
					n.queue = n.queue[1:]
					if !n.crashed[q.to] {
						n.insts[q.to].OnMessage(q.from, q.m)
					}
				}
			}
		}
		// Quiesce: complete detection and drain.
		n.completeFD()
		n.runFIFO()
		n.completeFD()
		n.runFIFO()

		// Safety: all decided values equal and valid.
		var ref Value
		have := false
		for _, p := range n.participants {
			v, ok := n.decisions[p]
			if !ok {
				if !n.crashed[p] {
					t.Fatalf("correct process %d undecided at quiescence", p)
				}
				continue
			}
			if !have {
				ref, have = v, true
			} else if !reflect.DeepEqual(ref, v) {
				t.Fatalf("disagreement: %v vs %v", ref, v)
			}
		}
		if have {
			valid := false
			for _, prop := range proposals {
				if reflect.DeepEqual(prop, ref) {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("decided value %v was never proposed", ref)
			}
		}
	})
}
