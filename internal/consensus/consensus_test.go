package consensus

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

// testNet connects instances through an in-memory queue with pluggable
// scheduling, so protocol logic is tested independently of the network
// model. Multicasts deliver to every participant including the sender;
// sends to self deliver locally — matching netmodel semantics.
type testNet struct {
	participants []proto.PID
	insts        map[proto.PID]*Instance
	queue        []queued
	crashed      map[proto.PID]bool
	suspects     map[proto.PID]map[proto.PID]bool
	decisions    map[proto.PID]Value
	proposers    map[proto.PID]proto.PID
	sent         map[string]int // message type name -> count (non-local only)
}

type queued struct {
	from, to proto.PID
	m        Msg
}

func newTestNet(participants ...proto.PID) *testNet {
	return &testNet{
		participants: participants,
		insts:        make(map[proto.PID]*Instance),
		crashed:      make(map[proto.PID]bool),
		suspects:     make(map[proto.PID]map[proto.PID]bool),
		decisions:    make(map[proto.PID]Value),
		proposers:    make(map[proto.PID]proto.PID),
		sent:         make(map[string]int),
	}
}

// transport implements Transport for one process on the testNet.
type transport struct {
	net  *testNet
	self proto.PID
}

func (tr transport) Send(to proto.PID, m Msg) {
	if tr.net.crashed[tr.self] {
		return
	}
	if to != tr.self {
		tr.net.sent[fmt.Sprintf("%T", m)]++
	}
	tr.net.queue = append(tr.net.queue, queued{from: tr.self, to: to, m: m})
}

func (tr transport) Multicast(m Msg) {
	if tr.net.crashed[tr.self] {
		return
	}
	tr.net.sent[fmt.Sprintf("%T", m)]++
	for _, p := range tr.net.participants {
		tr.net.queue = append(tr.net.queue, queued{from: tr.self, to: p, m: m})
	}
}

// build creates an instance per participant with firstCoord as round-1
// coordinator.
func (n *testNet) build(firstCoord proto.PID) {
	for _, p := range n.participants {
		p := p
		n.suspects[p] = make(map[proto.PID]bool)
		cfg := Config{
			Self:         p,
			Participants: n.participants,
			FirstCoord:   firstCoord,
			Suspects:     func(q proto.PID) bool { return n.suspects[p][q] },
			Decide: func(v Value, proposer proto.PID) {
				n.decisions[p] = v
				n.proposers[p] = proposer
			},
		}
		n.insts[p] = New(cfg, transport{net: n, self: p})
	}
}

// runFIFO delivers queued messages in FIFO order until quiescent.
func (n *testNet) runFIFO() {
	for len(n.queue) > 0 {
		q := n.queue[0]
		n.queue = n.queue[1:]
		if n.crashed[q.to] {
			continue
		}
		n.insts[q.to].OnMessage(q.from, q.m)
	}
}

// runRandom delivers queued messages in a random order until quiescent.
func (n *testNet) runRandom(rng *sim.Rand) {
	for len(n.queue) > 0 {
		i := rng.Intn(len(n.queue))
		q := n.queue[i]
		n.queue = append(n.queue[:i], n.queue[i+1:]...)
		if n.crashed[q.to] {
			continue
		}
		n.insts[q.to].OnMessage(q.from, q.m)
	}
}

// crash kills p: its queued output is removed and it stops receiving.
func (n *testNet) crash(p proto.PID) {
	n.crashed[p] = true
	kept := n.queue[:0]
	for _, q := range n.queue {
		if q.from != p {
			kept = append(kept, q)
		}
	}
	n.queue = kept
}

// suspect makes q's detector suspect p and fires the edge.
func (n *testNet) suspect(q, p proto.PID) {
	if n.crashed[q] {
		return
	}
	n.suspects[q][p] = true
	n.insts[q].OnSuspect(p)
}

// trust clears q's suspicion of p (no edge: consensus ignores trust).
func (n *testNet) trust(q, p proto.PID) { n.suspects[q][p] = false }

// completeFD makes every correct process permanently suspect every
// crashed process — the strong-completeness half of ♦S.
func (n *testNet) completeFD() {
	for _, q := range n.participants {
		if n.crashed[q] {
			continue
		}
		for _, p := range n.participants {
			if n.crashed[p] && !n.suspects[q][p] {
				n.suspect(q, p)
			}
		}
	}
}

// checkAgreementAndValidity asserts that every correct process decided,
// all decisions are equal, and the decision is one of the proposals.
func (n *testNet) checkAgreementAndValidity(t *testing.T, proposals map[proto.PID]Value) {
	t.Helper()
	var ref Value
	have := false
	for _, p := range n.participants {
		if n.crashed[p] {
			continue
		}
		v, ok := n.decisions[p]
		if !ok {
			t.Fatalf("correct process %d did not decide", p)
		}
		if !have {
			ref, have = v, true
		} else if !reflect.DeepEqual(ref, v) {
			t.Fatalf("disagreement: %v vs %v", ref, v)
		}
	}
	if !have {
		t.Fatal("no correct process decided")
	}
	valid := false
	for _, prop := range proposals {
		if reflect.DeepEqual(prop, ref) {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decision %v was never proposed (proposals %v)", ref, proposals)
	}
}

func pids(n int) []proto.PID {
	out := make([]proto.PID, n)
	for i := range out {
		out[i] = proto.PID(i)
	}
	return out
}

func TestFailureFreeDecidesCoordinatorValue(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	proposals := map[proto.PID]Value{}
	for _, p := range n.participants {
		proposals[p] = fmt.Sprintf("v%d", p)
		n.insts[p].Start(proposals[p])
	}
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	if n.decisions[0] != "v0" {
		t.Fatalf("decision = %v, want the round-1 coordinator's value v0", n.decisions[0])
	}
	for _, p := range n.participants {
		if n.proposers[p] != 0 {
			t.Fatalf("proposer at %d = %d, want 0", p, n.proposers[p])
		}
	}
}

func TestFailureFreeMessagePattern(t *testing.T) {
	// Fig. 1 pattern: one proposal multicast, n-1 remote acks... plus the
	// coordinator's self-ack (local). The testNet counts non-local sends
	// and multicasts: expect 1 propose, 2 acks, 1 decide, nothing else.
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	want := map[string]int{
		"consensus.MsgPropose": 1,
		"consensus.MsgAck":     2,
		"consensus.MsgDecide":  1,
	}
	if !reflect.DeepEqual(n.sent, want) {
		t.Fatalf("message counts = %v, want %v", n.sent, want)
	}
}

func TestSingleProcessDecidesAlone(t *testing.T) {
	n := newTestNet(0)
	n.build(0)
	n.insts[0].Start("solo")
	n.runFIFO()
	if n.decisions[0] != "solo" {
		t.Fatalf("decision = %v, want solo", n.decisions[0])
	}
}

func TestFirstCoordRotation(t *testing.T) {
	// FirstCoord = 2 makes p2 the round-1 coordinator: its value decides.
	n := newTestNet(pids(3)...)
	n.build(2)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	if n.decisions[0] != "v2" {
		t.Fatalf("decision = %v, want v2", n.decisions[0])
	}
	if c := n.insts[0].Coordinator(2); c != 0 {
		t.Fatalf("coordinator of round 2 = %d, want 0 (rotation wraps)", c)
	}
}

func TestCoordinatorCrashBeforePropose(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	n.crash(0)
	proposals := map[proto.PID]Value{1: "v1", 2: "v2"}
	n.insts[1].Start("v1")
	n.insts[2].Start("v2")
	n.runFIFO() // nothing happens: both wait for p0's proposal
	if len(n.decisions) != 0 {
		t.Fatal("decided without coordinator")
	}
	n.completeFD() // both suspect p0 -> nack -> round 2 (coordinator p1)
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	if n.decisions[1] != "v1" {
		t.Fatalf("decision = %v, want round-2 coordinator's value v1", n.decisions[1])
	}
}

func TestCoordinatorCrashAfterProposeBeforeDecide(t *testing.T) {
	// p0 proposes, all ack, but p0 crashes before the acks arrive: no
	// decision is sent. Everyone is stuck in wait-decide until suspicion.
	n := newTestNet(pids(3)...)
	n.build(0)
	proposals := map[proto.PID]Value{0: "v0", 1: "v1", 2: "v2"}
	for p, v := range proposals {
		n.insts[p].Start(v)
	}
	// Deliver only the propose multicast: 3 copies at queue head after
	// start (self + remotes). Process messages until both 1 and 2 acked.
	for len(n.queue) > 0 {
		q := n.queue[0]
		n.queue = n.queue[1:]
		if n.crashed[q.to] {
			continue
		}
		n.insts[q.to].OnMessage(q.from, q.m)
		if _, isAck := q.m.(MsgAck); isAck && q.to == 0 {
			break // first remote ack about to be processed; crash now
		}
	}
	n.crash(0)
	n.runFIFO()
	if len(n.decisions) != 0 && n.decisions[1] != nil {
		// p0 may have decided before crashing depending on ack order;
		// uniform agreement then requires survivors to decide the same.
		// Handled below after completeFD.
		_ = n.decisions
	}
	n.completeFD()
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	// Locking: survivors adopted v0 with ts=1, so round 2 must re-decide v0.
	for _, p := range []proto.PID{1, 2} {
		if n.decisions[p] != "v0" {
			t.Fatalf("decision at %d = %v, want locked value v0", p, n.decisions[p])
		}
	}
}

func TestWrongSuspicionCausesAbortAndRoundTwo(t *testing.T) {
	// p2 wrongly suspects a correct coordinator before it proposes: nack
	// -> abort -> everyone moves to round 2, which decides.
	n := newTestNet(pids(3)...)
	n.build(0)
	proposals := map[proto.PID]Value{0: "v0", 1: "v1", 2: "v2"}
	n.insts[1].Start("v1")
	n.insts[2].Start("v2")
	// p0 has no value yet, so it cannot propose round 1.
	n.suspect(2, 0) // p2 nacks and moves to round 2
	n.insts[0].Start("v0")
	n.trust(2, 0)
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	if n.sent["consensus.MsgAbort"] == 0 {
		t.Fatal("no abort was sent despite a nack")
	}
}

func TestWrongSuspicionAfterAckIsSilent(t *testing.T) {
	// A process that already acked advances silently on suspicion; the
	// decision still reaches it. No abort, no nack.
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	// Deliver propose + let p1 ack; then p1 suspects p0; then the rest.
	for i := 0; i < 6 && len(n.queue) > 0; i++ {
		q := n.queue[0]
		n.queue = n.queue[1:]
		n.insts[q.to].OnMessage(q.from, q.m)
	}
	n.suspect(1, 0)
	n.trust(1, 0)
	n.runFIFO()
	if n.decisions[1] != "v0" {
		t.Fatalf("p1 decision = %v, want v0", n.decisions[1])
	}
	if n.sent["consensus.MsgAbort"] != 0 {
		t.Fatal("abort sent for a wait-decide suspicion")
	}
}

func TestSuspicionAtRoundEntryNacksImmediately(t *testing.T) {
	// The coordinator is suspected before the instance starts: entering
	// round 1 must nack and advance without waiting for a proposal.
	n := newTestNet(pids(3)...)
	n.build(0)
	n.crash(0)
	n.suspects[1][0] = true
	n.suspects[2][0] = true
	n.insts[1].Start("v1")
	n.insts[2].Start("v2")
	// Starting does not re-check suspicion by itself for non-coordinators
	// entering round 1; the edge must have fired or Start triggers the
	// check. Both paths below.
	n.insts[1].OnSuspect(0)
	n.insts[2].OnSuspect(0)
	n.runFIFO()
	if n.decisions[1] == nil || n.decisions[2] == nil {
		t.Fatal("survivors did not decide after immediate nack")
	}
}

func TestDecisionForwardingToStraggler(t *testing.T) {
	// p2 is isolated (its incoming messages withheld) while p0, p1
	// decide. When p2's late estimate reaches a decided process, the
	// decision is forwarded.
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	// Withhold deliveries to p2.
	var p2box []queued
	for len(n.queue) > 0 {
		q := n.queue[0]
		n.queue = n.queue[1:]
		if q.to == 2 {
			p2box = append(p2box, q)
			continue
		}
		n.insts[q.to].OnMessage(q.from, q.m)
	}
	if n.decisions[0] == nil || n.decisions[1] == nil {
		t.Fatal("majority did not decide without p2")
	}
	if n.decisions[2] != nil {
		t.Fatal("p2 decided while isolated")
	}
	// Drop p2's stale inbox (simulating loss through crash semantics is
	// not possible in the quasi-reliable model, but late arrival is; here
	// we exercise the recovery path: p2 suspects p0, nacks, and the
	// decided p0... is "crashed" from p2's perspective. Its nack reaches
	// p0, which forwards the decision.)
	p2box = nil
	n.suspect(2, 0)
	n.runFIFO()
	if n.decisions[2] != "v0" {
		t.Fatalf("straggler decision = %v, want v0", n.decisions[2])
	}
}

func TestDuplicateDecideUpcallImpossible(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	count := 0
	p0 := n.insts[0]
	p0.cfg.Decide = func(v Value, proposer proto.PID) { count++ }
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	// Feed a duplicate decide.
	p0.OnMessage(1, MsgDecide{Val: "v0", Proposer: 0})
	if count != 1 {
		t.Fatalf("decide upcall fired %d times, want 1", count)
	}
}

func TestFiveProcessesTwoCrashes(t *testing.T) {
	n := newTestNet(pids(5)...)
	n.build(0)
	proposals := map[proto.PID]Value{}
	for _, p := range n.participants {
		proposals[p] = fmt.Sprintf("v%d", p)
		n.insts[p].Start(proposals[p])
	}
	n.crash(0)
	n.crash(1)
	n.completeFD()
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	// Rounds 1 and 2 are coordinated by crashed processes; round 3 (p2)
	// decides.
	if n.decisions[2] != "v2" {
		t.Fatalf("decision = %v, want v2", n.decisions[2])
	}
}

func TestRefreshEstimateSuppliesLateValue(t *testing.T) {
	// p1 and p2 have no initial value when round 2 starts; the refresh
	// callback supplies the current value so the round can decide.
	n := newTestNet(pids(3)...)
	n.build(0)
	val := map[proto.PID]Value{1: nil, 2: nil}
	for _, p := range []proto.PID{1, 2} {
		p := p
		n.insts[p].cfg.RefreshEstimate = func() Value { return val[p] }
	}
	n.crash(0)
	val[1] = "late1" // value appears before suspicion drives round 2
	n.completeFD()
	n.runFIFO()
	if n.decisions[1] != "late1" || n.decisions[2] != "late1" {
		t.Fatalf("decisions = %v, want late1 via refresh", n.decisions)
	}
}

func TestNilStartIgnored(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	n.insts[0].Start(nil)
	n.runFIFO()
	if len(n.decisions) != 0 {
		t.Fatal("nil proposal led to a decision")
	}
	if n.insts[0].Decided() {
		t.Fatal("Decided() true without a decision")
	}
}

func TestDecidedAccessors(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	if !n.insts[1].Decided() {
		t.Fatal("Decided() = false after decision")
	}
	v, proposer := n.insts[1].Decision()
	if v != "v0" || proposer != 0 {
		t.Fatalf("Decision() = %v/%d, want v0/0", v, proposer)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Self:         0,
		Participants: pids(3),
		Suspects:     func(proto.PID) bool { return false },
		Decide:       func(Value, proto.PID) {},
	}
	cases := map[string]func(Config) Config{
		"no participants": func(c Config) Config { c.Participants = nil; return c },
		"nil decide":      func(c Config) Config { c.Decide = nil; return c },
		"nil suspects":    func(c Config) Config { c.Suspects = nil; return c },
		"self not member": func(c Config) Config { c.Self = 9; return c },
	}
	for name, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(mutate(base), transport{net: newTestNet(pids(3)...), self: 0})
		}()
	}
}

func TestSubsetParticipants(t *testing.T) {
	// Consensus among {1, 3, 4} of a 5-process system — the view-change
	// use case. PIDs outside the participant list never appear.
	members := []proto.PID{1, 3, 4}
	n := newTestNet(members...)
	n.build(3)
	proposals := map[proto.PID]Value{}
	for _, p := range members {
		proposals[p] = fmt.Sprintf("v%d", p)
		n.insts[p].Start(proposals[p])
	}
	n.runFIFO()
	n.checkAgreementAndValidity(t, proposals)
	if n.decisions[1] != "v3" {
		t.Fatalf("decision = %v, want first-coord p3's value", n.decisions[1])
	}
	if c := n.insts[1].Coordinator(2); c != 4 {
		t.Fatalf("round-2 coordinator = %d, want 4", c)
	}
}

// TestRandomisedAgreementAndTermination is the core property test: under
// random message ordering, random minority crashes and random transient
// wrong suspicions, every correct process decides the same proposed value
// once the failure detector becomes complete (the ♦S guarantee).
func TestRandomisedAgreementAndTermination(t *testing.T) {
	for seed := uint64(1); seed <= 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRand(seed)
			nProcs := 3 + rng.Intn(3)*2 // 3, 5 or 7
			n := newTestNet(pids(nProcs)...)
			n.build(proto.PID(rng.Intn(nProcs)))
			proposals := map[proto.PID]Value{}
			for _, p := range n.participants {
				proposals[p] = fmt.Sprintf("v%d", p)
				n.insts[p].Start(proposals[p])
			}
			maxCrashes := (nProcs - 1) / 2
			crashes := rng.Intn(maxCrashes + 1)

			// Interleave random deliveries with random fault events.
			for step := 0; step < 60; step++ {
				switch rng.Intn(4) {
				case 0: // deliver a few messages in random order
					for k := 0; k < 4 && len(n.queue) > 0; k++ {
						i := rng.Intn(len(n.queue))
						q := n.queue[i]
						n.queue = append(n.queue[:i], n.queue[i+1:]...)
						if !n.crashed[q.to] {
							n.insts[q.to].OnMessage(q.from, q.m)
						}
					}
				case 1: // crash someone, if budget remains
					if crashes > 0 {
						victim := proto.PID(rng.Intn(nProcs))
						if !n.crashed[victim] {
							n.crash(victim)
							crashes--
						}
					}
				case 2: // transient wrong suspicion
					q := proto.PID(rng.Intn(nProcs))
					p := proto.PID(rng.Intn(nProcs))
					if p != q && !n.crashed[q] && !n.crashed[p] {
						n.suspect(q, p)
						n.trust(q, p)
					}
				case 3: // crashed-process detection at one monitor
					for _, p := range n.participants {
						if n.crashed[p] {
							q := proto.PID(rng.Intn(nProcs))
							if !n.crashed[q] && !n.suspects[q][p] {
								n.suspect(q, p)
							}
							break
						}
					}
				}
			}

			// ♦S eventually: complete detection, stop mistakes, drain.
			n.completeFD()
			n.runRandom(rng)
			// A late straggler may still need a nudge: re-fire completeness
			// edges (idempotent) and drain again.
			n.completeFD()
			n.runRandom(rng)
			n.checkAgreementAndValidity(t, proposals)
		})
	}
}

// TestUniformAgreementWithCrashedDecider checks the uniform half of
// agreement: if a process decides v and then crashes, survivors must still
// decide v, never something else.
func TestUniformAgreementWithCrashedDecider(t *testing.T) {
	for seed := uint64(1); seed <= 80; seed++ {
		rng := sim.NewRand(seed * 7791)
		n := newTestNet(pids(3)...)
		n.build(0)
		proposals := map[proto.PID]Value{}
		for _, p := range n.participants {
			proposals[p] = fmt.Sprintf("v%d", p)
			n.insts[p].Start(proposals[p])
		}
		// Deliver randomly until the first decision, then crash that
		// process immediately.
		var firstDecider proto.PID = -1
		var firstValue Value
		for len(n.queue) > 0 && firstDecider < 0 {
			i := rng.Intn(len(n.queue))
			q := n.queue[i]
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			if n.crashed[q.to] {
				continue
			}
			n.insts[q.to].OnMessage(q.from, q.m)
			for _, p := range n.participants {
				if v, ok := n.decisions[p]; ok {
					firstDecider, firstValue = p, v
					break
				}
			}
		}
		if firstDecider < 0 {
			t.Fatalf("seed %d: no decision reached", seed)
		}
		n.crash(firstDecider)
		n.completeFD()
		n.runRandom(rng)
		for _, p := range n.participants {
			if n.crashed[p] {
				continue
			}
			v, ok := n.decisions[p]
			if !ok {
				t.Fatalf("seed %d: survivor %d undecided", seed, p)
			}
			if !reflect.DeepEqual(v, firstValue) {
				t.Fatalf("seed %d: survivor decided %v, crashed decider had %v", seed, v, firstValue)
			}
		}
	}
}

func TestDecisionRelayOnProposerSuspicion(t *testing.T) {
	// p4 decides and crashes; its decide multicast to p0 is lost. A
	// decided survivor that suspects p4 must relay the decision.
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	// Deliver until p1 decides, withholding everything addressed to p2.
	var withheld []queued
	for len(n.queue) > 0 && n.decisions[1] == nil {
		q := n.queue[0]
		n.queue = n.queue[1:]
		if q.to == 2 {
			withheld = append(withheld, q)
			continue
		}
		n.insts[q.to].OnMessage(q.from, q.m)
	}
	if n.decisions[1] == nil {
		t.Fatal("p1 did not decide")
	}
	n.crash(0)
	withheld = nil // p2's copies are gone with the crash
	// p2 never sends anything useful; p1's suspicion of p0 must save it.
	n.suspect(1, 0)
	n.suspect(2, 0)
	n.runFIFO()
	if n.decisions[2] != "v0" {
		t.Fatalf("p2 decision = %v, want relayed v0", n.decisions[2])
	}
}

func TestDecisionRelayHappensOnce(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	before := n.sent["consensus.MsgDecide"]
	n.suspect(1, 0)
	n.trust(1, 0)
	n.suspect(1, 0) // second edge: no second relay
	n.runFIFO()
	after := n.sent["consensus.MsgDecide"]
	if after != before+1 {
		t.Fatalf("relays sent = %d, want exactly 1", after-before)
	}
}

func TestClosedInstanceDoesNotRelay(t *testing.T) {
	n := newTestNet(pids(3)...)
	n.build(0)
	for _, p := range n.participants {
		n.insts[p].Start(fmt.Sprintf("v%d", p))
	}
	n.runFIFO()
	n.insts[1].Close()
	before := n.sent["consensus.MsgDecide"]
	n.suspect(1, 0)
	n.runFIFO()
	if n.sent["consensus.MsgDecide"] != before {
		t.Fatal("closed instance relayed its decision")
	}
	// Forwarding still answers explicitly late peers.
	n.insts[1].OnMessage(2, MsgEstimate{Round: 5, Est: "v2", Ts: 0})
	found := false
	for _, q := range n.queue {
		if _, ok := q.m.(MsgDecide); ok && q.to == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("closed instance stopped forwarding decisions")
	}
}
