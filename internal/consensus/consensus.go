// Package consensus implements the Chandra–Toueg ♦S consensus algorithm
// (Chandra & Toueg, "Unreliable failure detectors for reliable distributed
// systems", JACM 1996) with the practical optimisations the paper alludes
// to ("we included some easy optimizations in the algorithm", §4.1):
//
//   - Round-1 fast path: in the first round every timestamp is zero, so
//     the coordinator proposes its own initial value immediately, without
//     a phase-1 estimate exchange. A failure-free instance therefore costs
//     exactly proposal + acks + decision — the message pattern of Fig. 1.
//
//   - Lazy rounds: a process stays in round r until it has a reason to
//     leave (it suspects the coordinator, or learns the round was aborted,
//     or sees a higher round). The unconditional round-advance of the
//     textbook algorithm would add n estimate messages per instance even
//     in failure-free runs, breaking the Fig. 1 pattern.
//
//   - Explicit aborts: when the coordinator of round r receives a nack it
//     multicasts an abort for round r, so processes blocked waiting for
//     the decision of r move to round r+1 together. This reproduces the
//     paper's §4.4 cost model: one wrong suspicion of the coordinator
//     costs about one extra round (3 communication steps, 1 multicast and
//     about 2n unicasts).
//
//   - Decision forwarding: a decided process answers late estimates and
//     nacks with the decision, guaranteeing termination for stragglers.
//
// The instance takes a participant list, so the group-membership service
// can run consensus among the members of the current view only; the
// rotating-coordinator order starts at an arbitrary participant, which is
// what the crash-steady renumbering optimisation of §7 plugs into.
//
// Safety rests on the classic ♦S argument, untouched by the optimisations:
// the coordinator of round r proposes the estimate with the highest
// timestamp among a majority, a process acks at most once per round and
// never for a round below its current one, and a decision requires a
// majority of acks.
package consensus

import (
	"fmt"

	"repro/internal/proto"
)

// Value is an opaque consensus value. Instances never inspect it beyond
// nil checks: a nil value means "no initial value yet" and is never
// proposed or decided.
type Value any

// Msg is implemented by all consensus message types. The embedding
// protocol wraps Msg values with an instance tag before handing them to
// the transport.
type Msg interface{ isConsensusMsg() }

// MsgEstimate is the phase-1 message of rounds r ≥ 2: a participant sends
// its current estimate and timestamp to the round's coordinator.
type MsgEstimate struct {
	Round int
	Est   Value
	Ts    int
}

// MsgPropose is the coordinator's phase-2 proposal for a round.
type MsgPropose struct {
	Round int
	Est   Value
}

// MsgAck is a positive phase-3 reply to a proposal.
type MsgAck struct{ Round int }

// MsgNack is a negative phase-3 reply: the sender suspects the round's
// coordinator and has moved on.
type MsgNack struct{ Round int }

// MsgAbort is multicast by a round's coordinator after receiving a nack:
// everyone still in the round moves to the next one.
type MsgAbort struct{ Round int }

// MsgDecide carries the decision. Proposer is the coordinator whose
// proposal was decided; the crash-steady renumbering optimisation makes it
// the first coordinator of the next instance.
type MsgDecide struct {
	Val      Value
	Proposer proto.PID
}

func (MsgEstimate) isConsensusMsg() {}
func (MsgPropose) isConsensusMsg()  {}
func (MsgAck) isConsensusMsg()      {}
func (MsgNack) isConsensusMsg()     {}
func (MsgAbort) isConsensusMsg()    {}
func (MsgDecide) isConsensusMsg()   {}

// Boxing a control message into the Msg interface allocates. Rounds are
// small (round 1 in every failure-free instance), so the boxed forms of
// the round-only control messages are interned for low round numbers:
// one allocation per protocol message (the embedding protocol's instance
// tag) instead of two on the ack/nack/abort paths.
const internedRounds = 8

var ackBox, nackBox, abortBox [internedRounds + 1]Msg

func init() {
	for r := 1; r <= internedRounds; r++ {
		ackBox[r] = MsgAck{Round: r}
		nackBox[r] = MsgNack{Round: r}
		abortBox[r] = MsgAbort{Round: r}
	}
}

func ackMsg(r int) Msg {
	if r >= 1 && r <= internedRounds {
		return ackBox[r]
	}
	return MsgAck{Round: r}
}

func nackMsg(r int) Msg {
	if r >= 1 && r <= internedRounds {
		return nackBox[r]
	}
	return MsgNack{Round: r}
}

func abortMsg(r int) Msg {
	if r >= 1 && r <= internedRounds {
		return abortBox[r]
	}
	return MsgAbort{Round: r}
}

// Transport sends instance messages on behalf of the instance. The
// embedding protocol adds its instance tag and routes through the network.
// Send(self) must deliver locally; Multicast must deliver to all
// participants including the sender.
type Transport interface {
	Send(to proto.PID, m Msg)
	Multicast(m Msg)
}

// Config parameterises one consensus instance.
type Config struct {
	// Self is the local process.
	Self proto.PID
	// Participants lists the processes running this instance, in
	// coordinator-rotation order. It must be non-empty and contain Self.
	Participants []proto.PID
	// FirstCoord is the participant that coordinates round 1. The zero
	// value of a PID is participant 0's ID only by accident: a negative
	// value selects Participants[0]. The crash-steady renumbering
	// optimisation passes the previous decision's proposer here.
	FirstCoord proto.PID
	// Suspects reports the local failure detector's current output.
	Suspects func(p proto.PID) bool
	// Decide is the decision upcall; it fires exactly once.
	Decide func(v Value, proposer proto.PID)
	// RefreshEstimate, if non-nil, supplies the freshest initial value
	// when a timestamp-zero estimate is sent (rounds ≥ 2). The FD atomic
	// broadcast uses it to propose its current pending set.
	RefreshEstimate func() Value
}

type phase int

const (
	phaseWaitPropose phase = iota + 1 // waiting for the coordinator's proposal
	phaseWaitDecide                   // acked; waiting for decision or abort
	phaseDone                         // decided
)

// roundState is the coordinator-side bookkeeping for one round. It exists
// at a process only for rounds it coordinates. Participants are tracked
// by index into Config.Participants in one flat slice — participant sets
// are tiny, so a linear index lookup beats two maps and their bucket
// allocations.
type roundState struct {
	parts    []partRound // by participant index
	estCount int
	ackCount int
	proposed bool
	proposal Value
	aborted  bool
}

// partRound is one participant's contribution to a coordinated round.
type partRound struct {
	est    Value
	ts     int
	hasEst bool
	acked  bool
}

type estCand struct {
	est Value
	ts  int
}

// Instance is one consensus execution at one process. It is purely
// event-driven: feed it messages with OnMessage and failure-detector
// edges with OnSuspect.
type Instance struct {
	cfg       Config
	tr        Transport
	coordBase int // index of FirstCoord within Participants
	majority  int

	// Participant state. lazy marks an instance started without a
	// snapshotted initial value (StartLazy): it behaves exactly like a
	// started instance whose round-1 value was never needed, and the
	// value is materialised through RefreshEstimate if a round ≥ 2
	// estimate ever has to be sent.
	started  bool
	lazy     bool
	estimate Value
	ts       int
	round    int
	phase    phase

	// Coordinator state, keyed by round. rsFree recycles roundStates
	// across rounds and — via Reset — across instance reuses.
	rounds map[int]*roundState
	rsFree []*roundState

	// Decision state.
	decided   bool
	decision  Value
	proposer  proto.PID
	decideBox Msg // the boxed decision message, built once, reused by relays and forwards
	forwarded map[proto.PID]bool
	relayed   bool
	closed    bool
}

// New creates an instance. It panics on malformed configuration: instances
// are constructed by protocol code, not from external input.
func New(cfg Config, tr Transport) *Instance {
	inst := &Instance{}
	inst.Reset(cfg, tr)
	return inst
}

// Reset re-initialises the instance in place for a new execution,
// recycling its round bookkeeping: an embedding protocol that retires
// instances (the FD algorithm's instance window) can pool them instead
// of allocating one per batch. Resetting a live instance discards it;
// callers reset only instances they have retired. The configuration
// rules of New apply.
func (in *Instance) Reset(cfg Config, tr Transport) {
	if len(cfg.Participants) == 0 {
		panic("consensus: no participants")
	}
	if cfg.Decide == nil {
		panic("consensus: nil Decide callback")
	}
	if cfg.Suspects == nil {
		panic("consensus: nil Suspects callback")
	}
	base := -1
	selfIn := false
	for i, p := range cfg.Participants {
		if p == cfg.FirstCoord {
			base = i
		}
		if p == cfg.Self {
			selfIn = true
		}
	}
	if !selfIn {
		panic(fmt.Sprintf("consensus: self %d not among participants %v", cfg.Self, cfg.Participants))
	}
	if base < 0 {
		base = 0
	}
	// rounds and forwarded are created lazily: rounds only materialises at
	// processes that actually coordinate a round, forwarded only on the
	// post-decision catch-up path. In the failure-free fast path two of
	// three processes never touch either. On reuse the maps are kept but
	// emptied, their roundStates returned to the free list.
	for r, rs := range in.rounds {
		in.rsFree = append(in.rsFree, rs)
		delete(in.rounds, r)
	}
	clear(in.forwarded)
	in.cfg = cfg
	in.tr = tr
	in.coordBase = base
	in.majority = len(cfg.Participants)/2 + 1
	in.started = false
	in.lazy = false
	in.estimate = nil
	in.ts = 0
	in.round = 1
	in.phase = phaseWaitPropose
	in.decided = false
	in.decision = nil
	in.proposer = 0
	in.decideBox = nil
	in.relayed = false
	in.closed = false
}

// Coordinator returns the coordinator of round r (1-based).
func (in *Instance) Coordinator(r int) proto.PID {
	n := len(in.cfg.Participants)
	return in.cfg.Participants[(in.coordBase+r-1)%n]
}

// index returns p's position among the participants, or -1 for a
// non-participant (whose round messages are ignored).
func (in *Instance) index(p proto.PID) int {
	for i, q := range in.cfg.Participants {
		if q == p {
			return i
		}
	}
	return -1
}

// Decided reports whether the instance has decided locally.
func (in *Instance) Decided() bool { return in.decided }

// Decision returns the decided value and its proposer; it is only
// meaningful once Decided reports true.
func (in *Instance) Decision() (Value, proto.PID) { return in.decision, in.proposer }

// Round returns the participant round, for diagnostics.
func (in *Instance) Round() int { return in.round }

// Start supplies the local initial value (proposal). A nil value is
// ignored. Starting twice keeps the first value. If this process
// coordinates round 1, it proposes immediately — the round-1 fast path.
func (in *Instance) Start(v Value) {
	if in.decided || v == nil {
		return
	}
	if in.estimate == nil {
		in.estimate = v
	}
	in.Restart()
}

// StartLazy starts the instance without snapshotting an initial value,
// for processes that do not coordinate round 1: their round-1 value is
// never transmitted, and if the instance reaches a round ≥ 2 estimate
// exchange with the timestamp still zero, the value is materialised
// fresh through Config.RefreshEstimate at that point — exactly the
// value an eager Start would have been replaced with. Embedding
// protocols whose RefreshEstimate is always non-nil while the instance
// is live (the FD algorithm's pending set) get identical behaviour to
// Start at no snapshot cost. StartLazy after a decision, or after the
// instance already holds a value, is a no-op.
func (in *Instance) StartLazy() {
	if in.decided || in.lazy || in.estimate != nil {
		return
	}
	in.lazy = true
	in.started = true
	in.checkSuspicion()
}

// HasEstimate reports whether the instance already holds an initial
// value (possibly a lazy one), in which case Start would ignore a new
// one.
func (in *Instance) HasEstimate() bool { return in.estimate != nil || in.lazy }

// Restart re-runs Start's round-1 fast path and suspicion check without
// supplying a value. For an instance whose estimate is already set this is
// exactly Start(v) for any non-nil v — Start keeps the first value — so
// the embedding protocol can skip snapshotting a fresh proposal on every
// delivery. Restart on an instance that was never started is a no-op.
func (in *Instance) Restart() {
	if in.decided || (in.estimate == nil && !in.lazy) {
		return
	}
	in.started = true
	// The initial value doubles as this process's round-1 estimate; if we
	// coordinate round 1 we can propose it without a phase-1 exchange.
	if in.estimate != nil && in.Coordinator(1) == in.cfg.Self {
		rs := in.roundState(1)
		self := &rs.parts[in.index(in.cfg.Self)]
		if !self.hasEst || self.est == nil {
			if !self.hasEst {
				rs.estCount++
			}
			*self = partRound{est: in.estimate, ts: in.ts, hasEst: true, acked: self.acked}
		}
		in.tryPropose(1)
	}
	// Catch-up: if messages dragged us past round 1 before we had a
	// value, our estimate for the current round was nil; nothing to redo —
	// rounds ≥ 2 estimates were sent with RefreshEstimate or nil and the
	// coordinator waits for a non-nil candidate.
	in.checkSuspicion()
}

// OnMessage feeds one consensus message from a peer (or from the process
// itself, via local delivery) into the state machine.
func (in *Instance) OnMessage(from proto.PID, m Msg) {
	switch msg := m.(type) {
	case MsgEstimate:
		in.onEstimate(from, msg)
	case MsgPropose:
		in.onPropose(from, msg)
	case MsgAck:
		in.onAck(from, msg)
	case MsgNack:
		in.onNack(from, msg)
	case MsgAbort:
		in.onAbort(msg)
	case MsgDecide:
		in.decideNow(msg.Val, msg.Proposer)
	default:
		panic(fmt.Sprintf("consensus: unknown message %T", m))
	}
}

// OnSuspect feeds a failure-detector suspicion edge. Before the decision,
// only suspicion of the current round's coordinator matters — which is why
// the FD algorithm is cheap under wrong suspicions of bystanders. After
// the decision, suspicion of the decision's proposer triggers the lazy
// reliable-broadcast relay (Frolund/Pedone): the decision is re-multicast
// once, so correct processes that missed the (possibly crashed) proposer's
// multicast still decide.
func (in *Instance) OnSuspect(p proto.PID) {
	if in.decided {
		if p == in.proposer {
			in.relayDecision()
		}
		return
	}
	if p != in.Coordinator(in.round) {
		return
	}
	switch in.phase {
	case phaseWaitPropose:
		// Classic phase 3: nack tells a live coordinator to abort.
		in.tr.Send(in.Coordinator(in.round), nackMsg(in.round))
		in.enterRound(in.round + 1)
	case phaseWaitDecide:
		// Already acked; the decision may never come if the coordinator
		// crashed after proposing. Move on silently.
		in.enterRound(in.round + 1)
	}
}

// roundState returns (creating if needed) the coordinator bookkeeping for
// round r, drawing recycled states from the free list first.
func (in *Instance) roundState(r int) *roundState {
	rs, ok := in.rounds[r]
	if !ok {
		if n := len(in.rsFree); n > 0 {
			rs = in.rsFree[n-1]
			in.rsFree = in.rsFree[:n-1]
			rs.reset(len(in.cfg.Participants))
		} else {
			rs = &roundState{parts: make([]partRound, len(in.cfg.Participants))}
		}
		if in.rounds == nil {
			in.rounds = make(map[int]*roundState, 1)
		}
		in.rounds[r] = rs
	}
	return rs
}

// reset clears a recycled roundState for n participants, reusing its
// parts slice when large enough.
func (rs *roundState) reset(n int) {
	if cap(rs.parts) < n {
		rs.parts = make([]partRound, n)
	} else {
		rs.parts = rs.parts[:n]
		for i := range rs.parts {
			rs.parts[i] = partRound{}
		}
	}
	rs.estCount = 0
	rs.ackCount = 0
	rs.proposed = false
	rs.proposal = nil
	rs.aborted = false
}

// enterRound moves the participant to round r and sends its estimate to
// the new coordinator (rounds ≥ 2; round 1 has no estimate phase). If the
// new coordinator is already suspected the process nacks and advances
// again — bounded by the rotation returning to self, which is never
// self-suspected.
func (in *Instance) enterRound(r int) {
	if in.decided {
		return
	}
	in.round = r
	in.phase = phaseWaitPropose
	if r > 1 {
		est := in.estimate
		if in.ts == 0 && in.cfg.RefreshEstimate != nil {
			if fresh := in.cfg.RefreshEstimate(); fresh != nil {
				est = fresh
				in.estimate = fresh
			}
		}
		in.tr.Send(in.Coordinator(r), MsgEstimate{Round: r, Est: est, Ts: in.ts})
	}
	in.checkSuspicion()
}

// checkSuspicion applies the phase-3 suspicion rule against the current
// failure-detector output, used when entering a round or receiving a
// proposal while a mistake is in progress.
func (in *Instance) checkSuspicion() {
	if in.decided || in.phase != phaseWaitPropose {
		return
	}
	c := in.Coordinator(in.round)
	if c != in.cfg.Self && in.cfg.Suspects(c) {
		in.tr.Send(c, nackMsg(in.round))
		in.enterRound(in.round + 1)
	}
}

// onEstimate handles coordinator duty for round msg.Round, independent of
// the local participant round: estimates are buffered until a majority
// (with at least one usable value) is available.
func (in *Instance) onEstimate(from proto.PID, msg MsgEstimate) {
	if in.decided {
		in.forwardDecision(from)
		return
	}
	if in.Coordinator(msg.Round) != in.cfg.Self {
		return // misrouted; cannot happen with a correct transport
	}
	i := in.index(from)
	if i < 0 {
		return // not a participant of this instance
	}
	rs := in.roundState(msg.Round)
	if p := &rs.parts[i]; !p.hasEst {
		p.est, p.ts, p.hasEst = msg.Est, msg.Ts, true
		rs.estCount++
	}
	in.tryPropose(msg.Round)
}

// tryPropose proposes for round r once a majority of estimates (including
// a non-nil candidate) is available: the candidate with the highest
// timestamp wins — the ♦S locking rule — with ties broken toward non-nil
// values from the lowest process ID.
func (in *Instance) tryPropose(r int) {
	rs := in.roundState(r)
	if rs.proposed || rs.aborted || in.decided {
		return
	}
	if r == 1 {
		// Fast path: the round-1 coordinator proposes its own initial
		// value; no estimate quorum is needed because every timestamp in
		// the system is still zero.
		self := rs.parts[in.index(in.cfg.Self)]
		if !self.hasEst || self.est == nil {
			return
		}
		rs.proposed = true
		rs.proposal = self.est
		in.tr.Multicast(MsgPropose{Round: 1, Est: self.est})
		return
	}
	if rs.estCount < in.majority {
		return
	}
	best := estCand{}
	bestFrom := proto.PID(-1)
	for i, p := range in.cfg.Participants { // deterministic iteration order
		cand := rs.parts[i]
		if !cand.hasEst || cand.est == nil {
			continue
		}
		if bestFrom < 0 || cand.ts > best.ts {
			best = estCand{est: cand.est, ts: cand.ts}
			bestFrom = p
		}
	}
	if bestFrom < 0 {
		return // majority of nil estimates: wait for a process with a value
	}
	rs.proposed = true
	rs.proposal = best.est
	in.tr.Multicast(MsgPropose{Round: r, Est: best.est})
}

// onPropose handles the participant side of a proposal.
func (in *Instance) onPropose(from proto.PID, msg MsgPropose) {
	if in.decided {
		return
	}
	r := msg.Round
	switch {
	case r < in.round:
		return // stale round
	case r == in.round && in.phase != phaseWaitPropose:
		return // already acked this round
	}
	// Catch up to round r as a participant.
	in.round = r
	in.phase = phaseWaitPropose
	c := in.Coordinator(r)
	if c != in.cfg.Self && in.cfg.Suspects(c) {
		// The ♦S phase-3 disjunction resolved to "suspect" before the
		// proposal was processed.
		in.tr.Send(c, nackMsg(r))
		in.enterRound(r + 1)
		return
	}
	in.estimate = msg.Est
	in.ts = r
	in.started = true
	in.phase = phaseWaitDecide
	in.tr.Send(c, ackMsg(r))
}

// onAck handles coordinator duty: count acks, decide on a majority.
func (in *Instance) onAck(from proto.PID, msg MsgAck) {
	if in.decided {
		return
	}
	if in.Coordinator(msg.Round) != in.cfg.Self {
		return
	}
	i := in.index(from)
	if i < 0 {
		return // not a participant of this instance
	}
	rs := in.roundState(msg.Round)
	if !rs.parts[i].acked {
		rs.parts[i].acked = true
		rs.ackCount++
	}
	if rs.proposed && rs.ackCount >= in.majority {
		v := rs.proposal
		in.decideBox = MsgDecide{Val: v, Proposer: in.cfg.Self}
		in.tr.Multicast(in.decideBox)
		in.decideNow(v, in.cfg.Self)
	}
}

// onNack handles coordinator duty: the round is burned, tell everyone.
func (in *Instance) onNack(from proto.PID, msg MsgNack) {
	if in.decided {
		in.forwardDecision(from)
		return
	}
	if in.Coordinator(msg.Round) != in.cfg.Self {
		return
	}
	rs := in.roundState(msg.Round)
	if rs.aborted {
		return
	}
	rs.aborted = true
	in.tr.Multicast(abortMsg(msg.Round))
	// The abort reaches us through local delivery and advances our own
	// participant state in onAbort.
}

// onAbort moves the participant past an aborted round.
func (in *Instance) onAbort(msg MsgAbort) {
	if in.decided {
		return
	}
	if in.round <= msg.Round {
		in.enterRound(msg.Round + 1)
	}
}

// decideNow finalises the decision exactly once. If the proposer is
// already suspected at decision time, the relay fires immediately — the
// suspicion edge that would have triggered it has already passed.
func (in *Instance) decideNow(v Value, proposer proto.PID) {
	if in.decided {
		return
	}
	in.decided = true
	in.decision = v
	in.proposer = proposer
	in.phase = phaseDone
	in.cfg.Decide(v, proposer)
	if proposer != in.cfg.Self && in.cfg.Suspects(proposer) {
		in.relayDecision()
	}
}

// relayDecision re-multicasts the decision, at most once, while the
// instance is still open. This is the lazy reliable broadcast of the
// decision: free when nobody suspects the proposer (the common case), one
// multicast per suspecting process otherwise.
func (in *Instance) relayDecision() {
	if in.relayed || in.closed {
		return
	}
	in.relayed = true
	in.tr.Multicast(in.decidedMsg())
}

// decidedMsg returns the boxed decision message, building it at most
// once per instance.
func (in *Instance) decidedMsg() Msg {
	if in.decideBox == nil {
		in.decideBox = MsgDecide{Val: in.decision, Proposer: in.proposer}
	}
	return in.decideBox
}

// Close marks the instance as old: the embedding protocol has moved on and
// suspicion-triggered decision relays stop (decision forwarding to
// explicitly late peers continues). Closing bounds relay traffic in long
// runs with wrong suspicions.
func (in *Instance) Close() { in.closed = true }

// forwardDecision unicasts the decision to a process that demonstrably has
// not decided yet (it sent an estimate or nack). At most one copy per peer.
func (in *Instance) forwardDecision(to proto.PID) {
	if to == in.cfg.Self || in.forwarded[to] {
		return
	}
	if in.forwarded == nil {
		in.forwarded = make(map[proto.PID]bool, 1)
	}
	in.forwarded[to] = true
	in.tr.Send(to, in.decidedMsg())
}
