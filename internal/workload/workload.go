// Package workload generates the paper's benchmark load (§5.1): every
// process A-broadcasts messages drawn from a Poisson process, all senders
// at the same constant rate, so the overall arrival rate is the
// throughput T the latency-vs-throughput figures sweep.
package workload

import (
	"repro/internal/sim"
)

// Poisson schedules events with exponentially distributed gaps on a
// simulation engine.
type Poisson struct {
	eng     *sim.Engine
	rng     *sim.Rand
	meanGap float64 // milliseconds between events
	fire    func()
	next    *sim.Event
	stopped bool
}

// NewPoisson creates a source firing at the given rate (events per second
// of virtual time). A non-positive rate yields a source that never fires.
// The source starts immediately; the first event is one exponential gap
// away, making the process stationary from t=0.
func NewPoisson(eng *sim.Engine, rng *sim.Rand, rate float64, fire func()) *Poisson {
	p := &Poisson{eng: eng, rng: rng, fire: fire}
	if rate > 0 {
		p.meanGap = 1000 / rate
		p.schedule()
	}
	return p
}

func (p *Poisson) schedule() {
	gap := sim.Millis(p.rng.Exp(p.meanGap))
	p.next = p.eng.After(gap, func() {
		if p.stopped {
			return
		}
		p.fire()
		p.schedule()
	})
}

// Stop halts the source permanently.
func (p *Poisson) Stop() {
	p.stopped = true
	if p.next != nil {
		p.next.Cancel()
	}
}

// Spread starts one Poisson source per sender, each at rate
// total/nominal, and returns them. This is the paper's workload: the
// per-process rate is fixed by the nominal system size, so in the
// crash-steady scenarios crashed processes simply contribute nothing —
// the effective load drops, exactly as §7 describes.
func Spread(eng *sim.Engine, rng *sim.Rand, total float64, nominal int, senders []int, fire func(sender int)) []*Poisson {
	perProcess := total / float64(nominal)
	out := make([]*Poisson, 0, len(senders))
	for _, s := range senders {
		s := s
		out = append(out, NewPoisson(eng, rng.ForkN(s), perProcess, func() { fire(s) }))
	}
	return out
}
