// Package workload generates the paper's benchmark load (§5.1): every
// process A-broadcasts messages drawn from a Poisson process, all senders
// at the same constant rate, so the overall arrival rate is the
// throughput T the latency-vs-throughput figures sweep.
//
// Sources are dynamic: SetRate changes a source's rate mid-run,
// deterministically rescaling the gap already in flight, which is what
// the experiment layer's LoadPlan (rate changes, bursts, mutes, pauses)
// is built on. A source whose rate never changes behaves bit-identically
// to the original constant-rate implementation.
package workload

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Poisson schedules events with exponentially distributed gaps on a
// simulation engine. The rate can change at any instant through SetRate;
// the source stays a Poisson process piecewise, and the change consumes
// no randomness, so a run in which SetRate is never called (or called
// with the current rate) is bit-identical to a constant-rate run.
type Poisson struct {
	eng     *sim.Engine
	rng     *sim.Rand
	rate    float64 // events per second of virtual time; <= 0 is silent
	meanGap float64 // milliseconds between events; 0 when rate <= 0
	fire    func()
	next    *sim.Event
	// unitsLeft is the remainder of the inter-event gap in flight, in
	// units of the mean gap — an Exp(1) draw counting down as virtual
	// time passes. The exponential is memoryless, so on a rate change the
	// remainder simply re-stretches to the new mean; no fresh randomness
	// is needed. Negative means no gap has been drawn yet.
	unitsLeft float64
	armedAt   sim.Time
	stopped   bool
}

// NewPoisson creates a source firing at the given rate (events per second
// of virtual time). A non-positive rate yields a silent source that a
// later SetRate can start. The source starts immediately; the first event
// is one exponential gap away, making the process stationary from t=0.
func NewPoisson(eng *sim.Engine, rng *sim.Rand, rate float64, fire func()) *Poisson {
	p := &Poisson{eng: eng, rng: rng, fire: fire, unitsLeft: -1}
	if rate > 0 {
		p.rate = rate
		p.meanGap = 1000 / rate
		p.draw()
		p.arm()
	}
	return p
}

// draw samples the next inter-event gap, in mean-gap units.
func (p *Poisson) draw() { p.unitsLeft = p.rng.Exp(1) }

// arm schedules the in-flight gap's firing at the current rate. A gap so
// long that its absolute instant is unrepresentable (a rate of almost
// zero; sim.Millis saturates the conversion) is not scheduled at all —
// the source is silent until a SetRate shortens the remainder.
func (p *Poisson) arm() {
	now := p.eng.Now()
	p.armedAt = now
	gap := sim.Millis(p.unitsLeft * p.meanGap)
	if gap > math.MaxInt64-time.Duration(now) {
		p.next = nil
		return
	}
	p.next = p.eng.After(gap, p.fired)
}

func (p *Poisson) fired() {
	if p.stopped {
		return
	}
	p.next = nil
	p.unitsLeft = -1 // gap fully consumed
	p.fire()
	// fire may have stopped the source, silenced it, or — via SetRate —
	// already armed the next gap.
	if p.stopped || p.rate <= 0 || p.next != nil {
		return
	}
	p.draw()
	p.arm()
}

// Rate returns the current rate (events per second); 0 when silent.
func (p *Poisson) Rate() float64 { return p.rate }

// SetRate changes the source's rate at the current instant. The gap in
// flight is deterministically rescaled: its remainder — again Exp(1) in
// mean-gap units, by memorylessness — re-stretches to the new mean, so no
// randomness is consumed and the stream of future draws is unchanged.
// A non-positive rate silences the source, keeping the remainder frozen;
// a later SetRate back to a positive rate resumes it. Setting the current
// rate is a no-op, bit for bit. SetRate on a stopped source is a no-op.
func (p *Poisson) SetRate(rate float64) {
	if p.stopped {
		return
	}
	if rate < 0 {
		rate = 0
	}
	if rate == p.rate {
		return
	}
	if p.next != nil {
		// Consume the elapsed share of the in-flight gap.
		elapsedMs := p.eng.Now().Sub(p.armedAt).Seconds() * 1000
		p.unitsLeft -= elapsedMs / p.meanGap
		if p.unitsLeft < 0 {
			p.unitsLeft = 0
		}
		p.next.Cancel()
		p.next = nil
	}
	p.rate = rate
	if rate <= 0 {
		p.meanGap = 0 // silent; the remainder stays frozen for resumption
		return
	}
	p.meanGap = 1000 / rate
	if p.unitsLeft < 0 {
		p.draw()
	}
	p.arm()
}

// Stop halts the source permanently, releasing its pending event record.
func (p *Poisson) Stop() {
	p.stopped = true
	if p.next != nil {
		p.next.Cancel()
		p.next = nil
	}
}

// Spread starts one Poisson source per sender, each at rate
// total/nominal, and returns them in senders order. This is the paper's
// workload: the per-process rate is fixed by the nominal system size, so
// in the crash-steady scenarios crashed processes simply contribute
// nothing — the effective load drops, exactly as §7 describes.
func Spread(eng *sim.Engine, rng *sim.Rand, total float64, nominal int, senders []int, fire func(sender int)) []*Poisson {
	perProcess := total / float64(nominal)
	out := make([]*Poisson, 0, len(senders))
	for _, s := range senders {
		s := s
		// Each source lives in its sender's conflict domain, so the
		// broadcasts it fires originate inside the domain that owns them.
		out = append(out, NewPoisson(eng.For(s), rng.ForkN(s), perProcess, func() { fire(s) }))
	}
	return out
}
