package workload

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPoissonRate(t *testing.T) {
	eng := sim.New()
	count := 0
	NewPoisson(eng, sim.NewRand(1), 100, func() { count++ })
	horizon := 100 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	want := 100 * horizon.Seconds()
	if math.Abs(float64(count)-want)/want > 0.05 {
		t.Fatalf("events = %d, want ~%v", count, want)
	}
}

func TestPoissonInterArrivalDistribution(t *testing.T) {
	eng := sim.New()
	var times []sim.Time
	NewPoisson(eng, sim.NewRand(2), 50, func() { times = append(times, eng.Now()) })
	eng.RunUntil(sim.Time(0).Add(200 * time.Second))
	if len(times) < 1000 {
		t.Fatalf("only %d events", len(times))
	}
	// Mean gap should be 20ms; coefficient of variation ~1 (exponential).
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]).Seconds()*1000)
	}
	mean, m2 := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	sd := math.Sqrt(m2 / float64(len(gaps)-1))
	if math.Abs(mean-20)/20 > 0.06 {
		t.Fatalf("mean gap = %v, want ~20ms", mean)
	}
	if cv := sd / mean; math.Abs(cv-1) > 0.1 {
		t.Fatalf("cv = %v, want ~1 for exponential gaps", cv)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	eng := sim.New()
	fired := false
	NewPoisson(eng, sim.NewRand(1), 0, func() { fired = true })
	eng.RunUntil(sim.Time(0).Add(time.Hour))
	if fired {
		t.Fatal("zero-rate source fired")
	}
}

func TestStopHaltsSource(t *testing.T) {
	eng := sim.New()
	count := 0
	var p *Poisson
	p = NewPoisson(eng, sim.NewRand(3), 1000, func() {
		count++
		if count == 10 {
			p.Stop()
		}
	})
	eng.RunUntil(sim.Time(0).Add(time.Minute))
	if count != 10 {
		t.Fatalf("events after stop: %d total, want 10", count)
	}
}

func TestSpreadSplitsRateAcrossSenders(t *testing.T) {
	eng := sim.New()
	counts := make(map[int]int)
	Spread(eng, sim.NewRand(4), 300, 3, []int{0, 1, 2}, func(s int) { counts[s]++ })
	horizon := 50 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	for s := 0; s < 3; s++ {
		want := 100 * horizon.Seconds()
		if math.Abs(float64(counts[s])-want)/want > 0.07 {
			t.Fatalf("sender %d fired %d, want ~%v", s, counts[s], want)
		}
	}
}

func TestSpreadWithCrashedSendersKeepsPerProcessRate(t *testing.T) {
	// Crash-steady semantics: nominal n fixes the per-process rate, and
	// dead senders just drop out of the total.
	eng := sim.New()
	total := 0
	Spread(eng, sim.NewRand(5), 300, 3, []int{0, 1}, func(int) { total++ })
	horizon := 50 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	want := 200 * horizon.Seconds() // 2 of 3 senders alive
	if math.Abs(float64(total)-want)/want > 0.07 {
		t.Fatalf("total = %d, want ~%v", total, want)
	}
}

// TestSetRateSameRateIsNoOp: pushing the current rate must not consume
// randomness or perturb timing — the event stream matches a run that
// never called SetRate, bit for bit.
func TestSetRateSameRateIsNoOp(t *testing.T) {
	run := func(poke bool) []sim.Time {
		eng := sim.New()
		var times []sim.Time
		p := NewPoisson(eng, sim.NewRand(7), 200, func() { times = append(times, eng.Now()) })
		if poke {
			for i := 1; i <= 40; i++ {
				eng.Schedule(sim.Time(0).Add(time.Duration(i)*137*time.Millisecond), func() { p.SetRate(200) })
			}
		}
		eng.RunUntil(sim.Time(0).Add(10 * time.Second))
		return times
	}
	plain, poked := run(false), run(true)
	if len(plain) != len(poked) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(poked))
	}
	for i := range plain {
		if plain[i] != poked[i] {
			t.Fatalf("event %d: %v vs %v", i, plain[i], poked[i])
		}
	}
}

// TestSetRateMidGapRescalesRemainder: halving the rate mid-gap must
// exactly double the remaining wait, with no fresh randomness.
func TestSetRateMidGapRescalesRemainder(t *testing.T) {
	eng := sim.New()
	var fired []sim.Time
	p := NewPoisson(eng, sim.NewRand(11), 10, func() { fired = append(fired, eng.Now()) })
	full := p.next.When() // the first gap, at rate 10/s
	// Change the rate a quarter of the way into the gap: the remaining
	// three quarters should stretch 2x at half the rate.
	quarter := sim.Time(0).Add(full.Duration() / 4)
	eng.Schedule(quarter, func() { p.SetRate(5) })
	eng.RunUntil(sim.Time(0).Add(time.Hour))
	if len(fired) == 0 {
		t.Fatal("source never fired")
	}
	want := quarter.Add(2 * full.Sub(quarter)).Duration().Seconds()
	got := fired[0].Duration().Seconds()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("first event at %.9fs, want %.9fs (rescaled remainder)", got, want)
	}
}

// TestSetRateZeroThenResume: SetRate(0) freezes the gap in flight;
// resuming fires exactly the frozen remainder (rescaled) later, and the
// long-run rate afterwards is the resumed one.
func TestSetRateZeroThenResume(t *testing.T) {
	eng := sim.New()
	count := 0
	var first sim.Time
	p := NewPoisson(eng, sim.NewRand(13), 100, func() {
		if count == 0 {
			first = eng.Now()
		}
		count++
	})
	full := p.next.When()
	pauseAt := sim.Time(0).Add(full.Duration() / 2)
	resumeAt := sim.Time(0).Add(3 * time.Second)
	eng.Schedule(pauseAt, func() { p.SetRate(0) })
	eng.RunUntil(sim.Time(0).Add(2 * time.Second))
	if count != 0 {
		t.Fatalf("silenced source fired %d times", count)
	}
	if p.Rate() != 0 {
		t.Fatalf("Rate() = %v while silenced, want 0", p.Rate())
	}
	eng.Schedule(resumeAt, func() { p.SetRate(100) })
	horizon := 100 * time.Second
	eng.RunUntil(resumeAt.Add(horizon))
	// First firing: the remaining half gap, resumed at the same rate.
	want := resumeAt.Add(full.Duration() - pauseAt.Duration()).Duration().Seconds()
	if got := first.Duration().Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("first post-resume event at %.9fs, want %.9fs", got, want)
	}
	// Long-run rate is back to 100/s.
	wantN := 100 * horizon.Seconds()
	if math.Abs(float64(count)-wantN)/wantN > 0.05 {
		t.Fatalf("post-resume events = %d, want ~%v", count, wantN)
	}
}

// TestSetRateStartsSilentSource: a source built with rate 0 draws nothing
// until SetRate starts it.
func TestSetRateStartsSilentSource(t *testing.T) {
	eng := sim.New()
	count := 0
	p := NewPoisson(eng, sim.NewRand(17), 0, func() { count++ })
	eng.RunUntil(sim.Time(0).Add(time.Second))
	eng.Schedule(eng.Now(), func() { p.SetRate(1000) })
	horizon := 10 * time.Second
	eng.RunUntil(sim.Time(0).Add(time.Second).Add(horizon))
	want := 1000 * horizon.Seconds()
	if math.Abs(float64(count)-want)/want > 0.05 {
		t.Fatalf("events = %d, want ~%v", count, want)
	}
}

// TestStopReleasesEventRecord is the Poisson.Stop hygiene fix: the
// cancelled event record must be droppable, not pinned by p.next for the
// source's whole remaining lifetime.
func TestStopReleasesEventRecord(t *testing.T) {
	eng := sim.New()
	p := NewPoisson(eng, sim.NewRand(19), 1, func() {})
	collected := make(chan struct{})
	runtime.SetFinalizer(p.next, func(*sim.Event) { close(collected) })
	p.Stop()
	if p.next != nil {
		t.Fatal("Stop left p.next referencing the cancelled event")
	}
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			i = 50
		case <-time.After(10 * time.Millisecond):
		}
	}
	select {
	case <-collected:
	default:
		t.Fatal("cancelled event record was never garbage-collected after Stop")
	}
	// Keep the source itself reachable until here: the point is that the
	// event dies while the Poisson lives.
	runtime.KeepAlive(p)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.New()
		var times []sim.Time
		NewPoisson(eng, sim.NewRand(42), 200, func() { times = append(times, eng.Now()) })
		eng.RunUntil(sim.Time(0).Add(10 * time.Second))
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at event %d", i)
		}
	}
}
