package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPoissonRate(t *testing.T) {
	eng := sim.New()
	count := 0
	NewPoisson(eng, sim.NewRand(1), 100, func() { count++ })
	horizon := 100 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	want := 100 * horizon.Seconds()
	if math.Abs(float64(count)-want)/want > 0.05 {
		t.Fatalf("events = %d, want ~%v", count, want)
	}
}

func TestPoissonInterArrivalDistribution(t *testing.T) {
	eng := sim.New()
	var times []sim.Time
	NewPoisson(eng, sim.NewRand(2), 50, func() { times = append(times, eng.Now()) })
	eng.RunUntil(sim.Time(0).Add(200 * time.Second))
	if len(times) < 1000 {
		t.Fatalf("only %d events", len(times))
	}
	// Mean gap should be 20ms; coefficient of variation ~1 (exponential).
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]).Seconds()*1000)
	}
	mean, m2 := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	sd := math.Sqrt(m2 / float64(len(gaps)-1))
	if math.Abs(mean-20)/20 > 0.06 {
		t.Fatalf("mean gap = %v, want ~20ms", mean)
	}
	if cv := sd / mean; math.Abs(cv-1) > 0.1 {
		t.Fatalf("cv = %v, want ~1 for exponential gaps", cv)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	eng := sim.New()
	fired := false
	NewPoisson(eng, sim.NewRand(1), 0, func() { fired = true })
	eng.RunUntil(sim.Time(0).Add(time.Hour))
	if fired {
		t.Fatal("zero-rate source fired")
	}
}

func TestStopHaltsSource(t *testing.T) {
	eng := sim.New()
	count := 0
	var p *Poisson
	p = NewPoisson(eng, sim.NewRand(3), 1000, func() {
		count++
		if count == 10 {
			p.Stop()
		}
	})
	eng.RunUntil(sim.Time(0).Add(time.Minute))
	if count != 10 {
		t.Fatalf("events after stop: %d total, want 10", count)
	}
}

func TestSpreadSplitsRateAcrossSenders(t *testing.T) {
	eng := sim.New()
	counts := make(map[int]int)
	Spread(eng, sim.NewRand(4), 300, 3, []int{0, 1, 2}, func(s int) { counts[s]++ })
	horizon := 50 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	for s := 0; s < 3; s++ {
		want := 100 * horizon.Seconds()
		if math.Abs(float64(counts[s])-want)/want > 0.07 {
			t.Fatalf("sender %d fired %d, want ~%v", s, counts[s], want)
		}
	}
}

func TestSpreadWithCrashedSendersKeepsPerProcessRate(t *testing.T) {
	// Crash-steady semantics: nominal n fixes the per-process rate, and
	// dead senders just drop out of the total.
	eng := sim.New()
	total := 0
	Spread(eng, sim.NewRand(5), 300, 3, []int{0, 1}, func(int) { total++ })
	horizon := 50 * time.Second
	eng.RunUntil(sim.Time(0).Add(horizon))
	want := 200 * horizon.Seconds() // 2 of 3 senders alive
	if math.Abs(float64(total)-want)/want > 0.07 {
		t.Fatalf("total = %d, want ~%v", total, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.New()
		var times []sim.Time
		NewPoisson(eng, sim.NewRand(42), 200, func() { times = append(times, eng.Now()) })
		eng.RunUntil(sim.Time(0).Add(10 * time.Second))
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at event %d", i)
		}
	}
}
