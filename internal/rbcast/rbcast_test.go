package rbcast

import (
	"testing"

	"repro/internal/proto"
)

// fabric is an in-memory test network of broadcasters with controllable
// delivery and crash-loss semantics.
type fabric struct {
	n         int
	bcs       []*Broadcaster
	queue     []copyTo
	crashed   []bool
	delivered [][]proto.MsgID // per process, in delivery order
}

type copyTo struct {
	to int
	m  Msg
}

func newFabric(n int) *fabric {
	f := &fabric{
		n:         n,
		crashed:   make([]bool, n),
		delivered: make([][]proto.MsgID, n),
	}
	f.bcs = make([]*Broadcaster, n)
	for p := 0; p < n; p++ {
		p := p
		f.bcs[p] = New(Config{
			Self: proto.PID(p),
			Multicast: func(m *Msg) {
				if f.crashed[p] {
					return
				}
				// Copy the pooled box out: the fabric holds copies past
				// the callback's return.
				for q := 0; q < n; q++ {
					f.queue = append(f.queue, copyTo{to: q, m: Msg{ID: m.ID, Body: m.Body}})
				}
			},
			Deliver: func(id proto.MsgID, body any) {
				f.delivered[p] = append(f.delivered[p], id)
			},
		})
	}
	return f
}

func (f *fabric) run() {
	for len(f.queue) > 0 {
		c := f.queue[0]
		f.queue = f.queue[1:]
		if f.crashed[c.to] {
			continue
		}
		f.bcs[c.to].OnMessage(c.m)
	}
}

// crash drops p and all its undelivered copies (harsher than the network
// model: quasi-reliable networks may lose messages of crashed senders).
func (f *fabric) crash(p int) {
	f.crashed[p] = true
	kept := f.queue[:0]
	for _, c := range f.queue {
		if c.m.ID.Origin != proto.PID(p) || f.deliveredBySomeone(c.m.ID) {
			kept = append(kept, c)
		}
	}
	f.queue = kept
}

// crashLosingCopiesTo drops p and loses exactly the copies addressed to
// the given victims, modelling a crash midway through a multicast.
func (f *fabric) crashLosingCopiesTo(p int, victims ...int) {
	f.crashed[p] = true
	isVictim := make(map[int]bool)
	for _, v := range victims {
		isVictim[v] = true
	}
	kept := f.queue[:0]
	for _, c := range f.queue {
		if c.m.ID.Origin == proto.PID(p) && isVictim[c.to] {
			continue
		}
		kept = append(kept, c)
	}
	f.queue = kept
}

func (f *fabric) deliveredBySomeone(id proto.MsgID) bool {
	for p := 0; p < f.n; p++ {
		for _, got := range f.delivered[p] {
			if got == id {
				return true
			}
		}
	}
	return false
}

func TestBroadcastDeliversEverywhereOnce(t *testing.T) {
	f := newFabric(3)
	id := f.bcs[0].Broadcast("hello")
	f.run()
	for p := 0; p < 3; p++ {
		if len(f.delivered[p]) != 1 || f.delivered[p][0] != id {
			t.Fatalf("p%d delivered %v, want [%v]", p, f.delivered[p], id)
		}
	}
}

func TestSequentialIDs(t *testing.T) {
	f := newFabric(2)
	a := f.bcs[0].Broadcast("a")
	b := f.bcs[0].Broadcast("b")
	if a.Seq != 1 || b.Seq != 2 || a.Origin != 0 {
		t.Fatalf("ids = %v %v, want 0:1 0:2", a, b)
	}
}

func TestDuplicateCopiesAbsorbed(t *testing.T) {
	f := newFabric(2)
	id := f.bcs[0].Broadcast("x")
	f.run()
	f.bcs[1].OnMessage(Msg{ID: id, Body: "x"}) // stray duplicate
	if len(f.delivered[1]) != 1 {
		t.Fatalf("duplicate delivered: %v", f.delivered[1])
	}
}

func TestRelayOnSuspicionCoversCrashMidBroadcast(t *testing.T) {
	// p0 broadcasts; the copy to p2 is lost in the crash. p1's suspicion
	// of p0 triggers a relay, and p2 delivers.
	f := newFabric(3)
	f.bcs[0].Broadcast("m")
	f.crashLosingCopiesTo(0, 2)
	f.run()
	if len(f.delivered[1]) != 1 {
		t.Fatal("p1 missing the original copy")
	}
	if len(f.delivered[2]) != 0 {
		t.Fatal("p2 should have lost its copy")
	}
	f.bcs[1].OnSuspect(0)
	f.run()
	if len(f.delivered[2]) != 1 {
		t.Fatal("relay did not reach p2")
	}
	// Agreement: everyone delivered exactly once.
	for p := 1; p < 3; p++ {
		if len(f.delivered[p]) != 1 {
			t.Fatalf("p%d delivered %d times", p, len(f.delivered[p]))
		}
	}
}

func TestNoRelayAfterMarkStable(t *testing.T) {
	f := newFabric(3)
	id := f.bcs[0].Broadcast("m")
	f.run()
	f.bcs[1].MarkStable(id)
	before := len(f.queue)
	f.bcs[1].OnSuspect(0)
	if len(f.queue) != before {
		t.Fatal("stable message was relayed")
	}
	if f.bcs[1].UnstableCount() != 0 {
		t.Fatalf("UnstableCount = %d, want 0", f.bcs[1].UnstableCount())
	}
}

func TestRelayOnlyCoversSuspectedOrigin(t *testing.T) {
	f := newFabric(3)
	f.bcs[0].Broadcast("from0")
	f.bcs[1].Broadcast("from1")
	f.run()
	before := len(f.queue)
	f.bcs[2].OnSuspect(0)
	// Exactly one relay multicast (3 copies in this fabric).
	if got := len(f.queue) - before; got != 3 {
		t.Fatalf("relay produced %d copies, want 3 (one multicast)", got)
	}
	for _, c := range f.queue[before:] {
		if c.m.ID.Origin != 0 {
			t.Fatalf("relayed message from origin %d, want 0", c.m.ID.Origin)
		}
	}
}

func TestSuspicionFreeCostIsOneMulticast(t *testing.T) {
	// The defining property of the efficient algorithm: in suspicion-free
	// runs a broadcast costs exactly one multicast.
	sends := 0
	var deliverSelf func(m Msg)
	b := New(Config{
		Self:      0,
		Multicast: func(m *Msg) { sends++; deliverSelf(Msg{ID: m.ID, Body: m.Body}) },
		Deliver:   func(proto.MsgID, any) {},
	})
	deliverSelf = func(m Msg) { b.OnMessage(m) }
	b.Broadcast("a")
	b.Broadcast("b")
	if sends != 2 {
		t.Fatalf("sends = %d, want 2 (one multicast per broadcast)", sends)
	}
}

func TestMarkStableUnknownIDHarmless(t *testing.T) {
	f := newFabric(2)
	f.bcs[0].MarkStable(proto.MsgID{Origin: 1, Seq: 99})
}

func TestNilCallbacksPanic(t *testing.T) {
	for name, cfg := range map[string]Config{
		"nil multicast": {Deliver: func(proto.MsgID, any) {}},
		"nil deliver":   {Multicast: func(*Msg) {}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestIDTrackerWatermarkAbsorption(t *testing.T) {
	tr := proto.NewIDTracker()
	// Out of order: 2, 3 first (sparse), then 1 absorbs all.
	if !tr.Add(proto.MsgID{Origin: 0, Seq: 2}) || !tr.Add(proto.MsgID{Origin: 0, Seq: 3}) {
		t.Fatal("fresh adds reported as duplicates")
	}
	if tr.SparseLen() != 2 {
		t.Fatalf("sparse = %d, want 2", tr.SparseLen())
	}
	if !tr.Add(proto.MsgID{Origin: 0, Seq: 1}) {
		t.Fatal("seq 1 reported duplicate")
	}
	if tr.SparseLen() != 0 {
		t.Fatalf("sparse = %d after absorption, want 0", tr.SparseLen())
	}
	for s := uint64(1); s <= 3; s++ {
		if !tr.Seen(proto.MsgID{Origin: 0, Seq: s}) {
			t.Fatalf("seq %d not seen", s)
		}
	}
	if tr.Seen(proto.MsgID{Origin: 0, Seq: 4}) {
		t.Fatal("unseen id reported seen")
	}
	if tr.Add(proto.MsgID{Origin: 0, Seq: 2}) {
		t.Fatal("duplicate add returned true")
	}
}

func TestIDTrackerPerOriginIndependence(t *testing.T) {
	tr := proto.NewIDTracker()
	tr.Add(proto.MsgID{Origin: 0, Seq: 1})
	if tr.Seen(proto.MsgID{Origin: 1, Seq: 1}) {
		t.Fatal("origins share watermarks")
	}
}

func TestIDTrackerSteadyStateMemory(t *testing.T) {
	tr := proto.NewIDTracker()
	for s := uint64(1); s <= 10000; s++ {
		tr.Add(proto.MsgID{Origin: 3, Seq: s})
	}
	if tr.SparseLen() != 0 {
		t.Fatalf("in-order adds left %d sparse entries", tr.SparseLen())
	}
}
