// Package rbcast implements reliable broadcast the way the paper's FD
// atomic broadcast uses it (§4.1, footnote 3): an efficient algorithm,
// inspired by Frolund and Pedone's "Revisiting reliable broadcast", that
// costs a single multicast in the common case. Fault tolerance comes from
// lazy relaying: when a process suspects the origin of a message that is
// not yet known to be stable, it re-multicasts that message, so every
// correct process eventually delivers it even if the origin crashed midway
// through its broadcast.
//
// Properties (with a quasi-reliable network and ♦S-complete detectors):
// validity (a correct broadcaster's message is delivered), agreement (if a
// correct process delivers m, all correct processes do) and integrity
// (every message delivered at most once, and only if broadcast).
package rbcast

import (
	"repro/internal/proto"
)

// Msg is the wire format of one reliable broadcast. Relays carry the
// original ID and origin, so duplicates collapse at the receiver.
//
// Wire copies travel as *Msg boxes drawn from the sending Broadcaster's
// free list: the box implements the network layer's pooled-payload
// protocol (netmodel.Pooled) and returns to the list when the last
// in-flight copy is delivered or dropped, so a broadcast costs no
// per-message heap allocation once the list is warm. Receivers must
// copy what they need out of the box before returning.
type Msg struct {
	ID   proto.MsgID
	Body any

	refs int32
	home *Broadcaster
}

// Retain implements the network's pooled-payload protocol: it adds n
// in-flight copy references.
func (m *Msg) Retain(n int) { m.refs += int32(n) }

// Release drops one in-flight copy reference and returns the box to its
// Broadcaster's free list when none remain.
func (m *Msg) Release() {
	if m.refs--; m.refs == 0 && m.home != nil {
		m.Body = nil
		m.home.free = append(m.home.free, m)
	}
}

// String names the payload in traces. The pooled pointer box renders
// exactly like the value payload it replaced, keeping trace output (and
// the golden digests over it) unchanged.
func (m *Msg) String() string { return "rbcast.Msg" }

// Config wires a Broadcaster to its process.
type Config struct {
	// Self is the local process ID; it becomes the origin of broadcasts.
	Self proto.PID
	// Multicast transmits a Msg box to all processes including the
	// sender. The box is owned by the network layer from this call on.
	Multicast func(m *Msg)
	// Deliver is the upcall on first receipt of each message.
	Deliver func(id proto.MsgID, body any)
}

// Broadcaster is the per-process reliable broadcast endpoint.
type Broadcaster struct {
	cfg       Config
	seq       uint64
	delivered *proto.IDTracker
	// unstable holds the bodies of delivered-but-not-stable messages by
	// origin: the relay set. MarkStable prunes it, bounding relay
	// traffic and memory.
	unstable map[proto.PID]map[proto.MsgID]any
	// relayed marks messages this process already re-multicast: one relay
	// per message suffices for agreement, and without the cap a low-TMR
	// suspicion storm would re-relay the same pending messages every few
	// milliseconds.
	relayed *proto.IDTracker
	// free is the Msg box free list; boxes return to it when their last
	// in-flight copy reaches a terminal point in the network.
	free []*Msg
}

// New creates a Broadcaster. Both callbacks are required.
func New(cfg Config) *Broadcaster {
	if cfg.Multicast == nil {
		panic("rbcast: nil Multicast")
	}
	if cfg.Deliver == nil {
		panic("rbcast: nil Deliver")
	}
	return &Broadcaster{
		cfg:       cfg,
		delivered: proto.NewIDTracker(),
		unstable:  make(map[proto.PID]map[proto.MsgID]any),
		relayed:   proto.NewIDTracker(),
	}
}

// box draws a Msg box from the free list, allocating only when the list
// is dry.
func (b *Broadcaster) box(id proto.MsgID, body any) *Msg {
	if n := len(b.free); n > 0 {
		m := b.free[n-1]
		b.free = b.free[:n-1]
		m.ID, m.Body = id, body
		return m
	}
	return &Msg{ID: id, Body: body, home: b}
}

// Broadcast reliably broadcasts body and returns the assigned message ID.
// The local copy is delivered through the multicast's self-delivery.
func (b *Broadcaster) Broadcast(body any) proto.MsgID {
	b.seq++
	id := proto.MsgID{Origin: b.cfg.Self, Seq: b.seq}
	b.cfg.Multicast(b.box(id, body))
	return id
}

// OnMessage processes an incoming broadcast or relay copy. Duplicates are
// absorbed silently.
func (b *Broadcaster) OnMessage(m Msg) {
	if !b.delivered.Add(m.ID) {
		return
	}
	set, ok := b.unstable[m.ID.Origin]
	if !ok {
		set = make(map[proto.MsgID]any)
		b.unstable[m.ID.Origin] = set
	}
	set[m.ID] = m.Body
	b.cfg.Deliver(m.ID, m.Body)
}

// OnSuspect relays every unstable message originated by p that this
// process has not relayed before: the lazy fault-tolerance step. In the
// common (suspicion-free) case it never runs, preserving the
// one-multicast cost; under suspicion storms each message costs this
// process at most one extra multicast.
func (b *Broadcaster) OnSuspect(p proto.PID) {
	// Relay in canonical ID order: the multicast order decides how the
	// contended network serialises the relays, so map iteration order
	// here would make whole simulations nondeterministic.
	set := b.unstable[p]
	ids := make([]proto.MsgID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	proto.SortMsgIDs(ids)
	for _, id := range ids {
		if b.relayed.Add(id) {
			b.cfg.Multicast(b.box(id, set[id]))
		}
	}
}

// MarkStable records that id is known to be delivered everywhere it needs
// to be (for the FD algorithm: it was A-delivered, so the consensus
// decision guarantees system-wide receipt). Stable messages are no longer
// relayed and their memory is released.
func (b *Broadcaster) MarkStable(id proto.MsgID) {
	set := b.unstable[id.Origin]
	delete(set, id)
	if len(set) == 0 {
		delete(b.unstable, id.Origin)
	}
}

// UnstableCount returns the current relay-set size, for tests and
// diagnostics.
func (b *Broadcaster) UnstableCount() int {
	n := 0
	for _, set := range b.unstable {
		n += len(set)
	}
	return n
}
