// Package stats provides the small statistical toolkit the performance
// study needs: online mean/variance accumulation (Welford), 95% confidence
// intervals via the Student-t distribution, and order statistics.
//
// The paper reports the mean latency with a 95% confidence interval for
// every plotted point; Summary reproduces exactly that.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations online with Welford's algorithm, so a
// multi-million-message run needs O(1) memory for its mean and variance.
// The zero value is an empty sample ready for use.
//
// Empty-sample contract: with no observations, N reports 0 and Mean, Min,
// Max, Variance, StdDev, StdErr and CI95 all report NaN — never a
// misleading zero. AddSample treats an empty operand as the identity in
// either direction, so per-replication samples from replications that
// measured nothing (all messages undelivered, or an aborted divergent
// run) merge cleanly without poisoning the aggregate. Summarize of an
// empty sample carries the same values: N = 0 and NaN statistics.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddSample merges another sample into s (parallel Welford merge). An
// empty operand is the identity: merging it changes nothing, and merging
// anything into an empty s copies the operand exactly.
func (s *Sample) AddSample(o Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	delta := o.mean - s.mean
	total := s.n + o.n
	s.mean += delta * float64(o.n) / float64(total)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(total)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = total
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Variance returns the unbiased sample variance, or NaN with fewer than
// two observations.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using the Student-t distribution with n-1 degrees of freedom. With fewer
// than two observations it returns NaN.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return tQuantile975(s.n-1) * s.StdErr()
}

// Summary is a value snapshot of a sample, convenient for reporting.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize returns a snapshot of the sample's statistics.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.n,
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		CI95:   s.CI95(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// String formats the summary as "mean ± ci (n=...)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95, s.N)
}

// tTable holds two-sided 95% Student-t critical values t_{0.975,df} for
// small degrees of freedom; larger dfs interpolate toward the normal
// quantile 1.959964.
var tTable = map[int]float64{
	1: 12.7062, 2: 4.3027, 3: 3.1824, 4: 2.7764, 5: 2.5706,
	6: 2.4469, 7: 2.3646, 8: 2.3060, 9: 2.2622, 10: 2.2281,
	11: 2.2010, 12: 2.1788, 13: 2.1604, 14: 2.1448, 15: 2.1314,
	16: 2.1199, 17: 2.1098, 18: 2.1009, 19: 2.0930, 20: 2.0860,
	21: 2.0796, 22: 2.0739, 23: 2.0687, 24: 2.0639, 25: 2.0595,
	26: 2.0555, 27: 2.0518, 28: 2.0484, 29: 2.0452, 30: 2.0423,
	40: 2.0211, 50: 2.0086, 60: 2.0003, 80: 1.9901, 100: 1.9840,
	120: 1.9799,
}

// tQuantile975 returns the two-sided 95% critical value for df degrees of
// freedom, interpolating between tabulated points and falling back to the
// standard normal value for large df.
func tQuantile975(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	if df > 120 {
		return 1.959964
	}
	// Linear interpolation in 1/df between the nearest tabulated points,
	// which is the standard approach for t-table gaps.
	lo, hi := df, df
	for ; ; lo-- {
		if _, ok := tTable[lo]; ok {
			break
		}
	}
	for ; ; hi++ {
		if _, ok := tTable[hi]; ok {
			break
		}
	}
	tl, th := tTable[lo], tTable[hi]
	fl, fh, f := 1/float64(lo), 1/float64(hi), 1/float64(df)
	return th + (tl-th)*(f-fh)/(fl-fh)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using linear
// interpolation between order statistics. It copies and sorts the input.
// An empty slice returns NaN.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted reads the q-quantile from already-sorted data, so one
// sort serves several quantiles (Collector.Quantiles).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Mean returns the arithmetic mean of data, or NaN for an empty slice.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}

// Histogram counts observations into equal-width bins over [lo, hi).
// Observations outside the range land in the first or last bin. It is used
// by the latency-distribution diagnostics of the experiment harness.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
// It panics if bins <= 0 or hi <= lo, which are always caller bugs.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: histogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records n observations of the same value, the bulk form used
// when re-binning a quantile sketch's buckets. n <= 0 records nothing.
func (h *Histogram) AddN(x float64, n int) {
	if n <= 0 {
		return
	}
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i] += n
	h.total += n
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
