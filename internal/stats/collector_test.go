package stats

import (
	"math"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	var c Collector
	for _, x := range []float64{15, 20, 35, 40, 50} {
		c.Add(x)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d, want 5", c.N())
	}
	if c.Mean() != 32 {
		t.Fatalf("Mean = %v, want 32", c.Mean())
	}
	if got := c.Quantile(0.5); got != 35 {
		t.Fatalf("median = %v, want 35", got)
	}
	q := c.Quantiles()
	if q.N != 5 || q.Min != 15 || q.Max != 50 || q.P50 != 35 {
		t.Fatalf("Quantiles = %+v", q)
	}
	if q.P90 <= q.P50 || q.P99 < q.P90 || q.P99 > q.Max {
		t.Fatalf("quantiles out of order: %+v", q)
	}
	vals := c.Values()
	if len(vals) != 5 || vals[0] != 15 || vals[4] != 50 {
		t.Fatalf("Values = %v", vals)
	}
	vals[0] = -1 // must not alias the collector's storage
	if c.Values()[0] != 15 {
		t.Fatal("Values aliases internal storage")
	}
	if s := c.Summarize(); s.N != 5 || s.Mean != 32 {
		t.Fatalf("Summarize = %+v", s)
	}
}

// TestCollectorEmptyContract pins the documented zero-value behaviour:
// N = 0, NaN statistics, and Merge as the identity in both directions.
func TestCollectorEmptyContract(t *testing.T) {
	var c Collector
	if c.N() != 0 {
		t.Fatalf("N = %d, want 0", c.N())
	}
	for name, v := range map[string]float64{
		"Mean": c.Mean(), "Quantile": c.Quantile(0.5),
		"Min": c.Quantiles().Min, "P50": c.Quantiles().P50,
		"P99": c.Quantiles().P99, "Max": c.Quantiles().Max,
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s of empty collector = %v, want NaN", name, v)
		}
	}
	if c.Quantiles().String() != "empty" {
		t.Fatalf("empty Quantiles string = %q", c.Quantiles().String())
	}
	if len(c.Values()) != 0 {
		t.Fatalf("Values of empty collector = %v", c.Values())
	}

	var full Collector
	full.Add(3)
	full.Add(7)
	full.Merge(&c) // non-empty += empty: identity
	if full.N() != 2 || full.Mean() != 5 {
		t.Fatalf("merge of empty changed collector: %+v", full.Summarize())
	}
	var dst Collector
	dst.Merge(&full) // empty += non-empty: exact copy
	if dst.N() != 2 || dst.Mean() != 5 || dst.Quantile(0) != 3 {
		t.Fatalf("merge into empty lost data: %+v", dst.Summarize())
	}
	var a, b Collector
	a.Merge(&b) // empty += empty stays empty
	if a.N() != 0 || !math.IsNaN(a.Mean()) {
		t.Fatal("empty += empty is no longer empty")
	}
}

// TestCollectorMergeMatchesSequential is the determinism the experiment
// runner relies on: merging per-chunk collectors in chunk order must be
// bit-identical to accumulating the whole stream into one collector.
func TestCollectorMergeMatchesSequential(t *testing.T) {
	data := []float64{9.5, 2.25, 3, 8, 13, 0.125, -4, 9, 9, 2, 77, 1e-3}
	var whole Collector
	for _, x := range data {
		whole.Add(x)
	}
	// Three chunks, one of them empty, merged in order.
	var a, b, c, empty Collector
	for _, x := range data[:5] {
		a.Add(x)
	}
	for _, x := range data[5:] {
		b.Add(x)
	}
	c.Merge(&a)
	c.Merge(&empty)
	c.Merge(&b)
	if c.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", c.N(), whole.N())
	}
	cv, wv := c.Values(), whole.Values()
	for i := range wv {
		if math.Float64bits(cv[i]) != math.Float64bits(wv[i]) {
			t.Fatalf("value %d = %v, want %v (order not preserved)", i, cv[i], wv[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if math.Float64bits(c.Quantile(q)) != math.Float64bits(whole.Quantile(q)) {
			t.Fatalf("quantile %v differs after merge: %v vs %v", q, c.Quantile(q), whole.Quantile(q))
		}
	}
	ch, wh := c.Histogram(-5, 80, 17), whole.Histogram(-5, 80, 17)
	for i := range wh.Counts {
		if ch.Counts[i] != wh.Counts[i] {
			t.Fatalf("histogram bin %d = %d, want %d", i, ch.Counts[i], wh.Counts[i])
		}
	}
}

func TestCollectorHistogram(t *testing.T) {
	var c Collector
	for _, x := range []float64{1, 2, 3, 11, 12, 25} {
		c.Add(x)
	}
	h := c.Histogram(0, 30, 3)
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
}

func TestCollectorSplitAt(t *testing.T) {
	var c Collector
	// A bimodal population: the paper's early/late latency split.
	for _, x := range []float64{8, 9, 8.5, 9.5, 8, 110, 140, 9} {
		c.Add(x)
	}
	early, late := c.SplitAt(50)
	if early.N() != 6 || late.N() != 2 {
		t.Fatalf("split = %d early, %d late; want 6 and 2", early.N(), late.N())
	}
	if early.Quantiles().Max >= 50 || late.Quantiles().Min < 50 {
		t.Fatalf("split boundaries wrong: early max %v, late min %v",
			early.Quantiles().Max, late.Quantiles().Min)
	}
	// Order preserved within each side.
	if v := late.Values(); v[0] != 110 || v[1] != 140 {
		t.Fatalf("late values = %v", v)
	}
	// Threshold is inclusive on the late side.
	e2, l2 := c.SplitAt(110)
	if e2.N() != 6 || l2.N() != 2 {
		t.Fatalf("threshold not inclusive-late: %d/%d", e2.N(), l2.N())
	}
	if s := c.Quantiles().String(); s == "" || s == "empty" {
		t.Fatalf("non-empty Quantiles string = %q", s)
	}
}

// TestSampleEmptySummarize pins the empty-sample contract end to end
// through Summarize, which aggregation code snapshots directly.
func TestSampleEmptySummarize(t *testing.T) {
	var s Sample
	sum := s.Summarize()
	if sum.N != 0 {
		t.Fatalf("empty Summarize N = %d", sum.N)
	}
	for name, v := range map[string]float64{
		"Mean": sum.Mean, "StdDev": sum.StdDev, "CI95": sum.CI95,
		"Min": sum.Min, "Max": sum.Max,
	} {
		if !math.IsNaN(v) {
			t.Fatalf("empty Summarize %s = %v, want NaN", name, v)
		}
	}
}
