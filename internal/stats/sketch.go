package stats

import (
	"fmt"
	"math"
	"sort"
)

// sketchMinValue is the smallest positive observation the sketch
// resolves. Anything below it (including zero and negative inputs,
// which latencies never produce) lands in the dedicated zero bucket and
// is reported as 0, clamped into the observed range.
const sketchMinValue = 1e-9

// Sketch is a mergeable streaming quantile sketch over a fixed
// logarithmic bucket layout, in the style of DDSketch (Masson, Rim and
// Lee, "DDSketch: a fast and fully-mergeable quantile sketch with
// relative-error guarantees", VLDB 2019): bucket i counts observations
// in (γ^(i-1), γ^i] with γ = (1+α)/(1−α), so any quantile estimate is
// within relative error α of a true quantile of the inserted data —
// |est − true| ≤ α·true for observations ≥ 1e-9 — using O(log(max/min)/α)
// memory regardless of how many observations were inserted.
//
// Merging adds integer bucket counts, which commutes and associates
// exactly: any merge order over any partition of the observations
// yields bit-identical sketch state. That makes sketch-mode sweep
// results independent of the worker count that produced them.
//
// The zero value is not usable; construct with NewSketch. A Sketch is
// not safe for concurrent use.
type Sketch struct {
	alpha   float64
	gamma   float64
	lgGamma float64
	counts  map[int]uint64
	zero    uint64 // observations below sketchMinValue
	total   uint64
	min     float64
	max     float64
}

// NewSketch creates a sketch with relative-error bound alpha. It panics
// unless 0 < alpha < 1 — the accuracy is code, not input.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: sketch alpha %v outside (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lgGamma: math.Log(gamma),
		counts:  make(map[int]uint64),
	}
}

// Alpha returns the sketch's relative-error bound.
func (sk *Sketch) Alpha() float64 { return sk.alpha }

// N returns the number of observations inserted.
func (sk *Sketch) N() int { return int(sk.total) }

// Add inserts one observation.
func (sk *Sketch) Add(x float64) {
	if sk.total == 0 {
		sk.min, sk.max = x, x
	} else {
		if x < sk.min {
			sk.min = x
		}
		if x > sk.max {
			sk.max = x
		}
	}
	sk.total++
	if x < sketchMinValue {
		sk.zero++
		return
	}
	sk.counts[sk.index(x)]++
}

// index maps a positive observation to its bucket: the smallest i with
// γ^i >= x, so bucket i covers (γ^(i-1), γ^i].
func (sk *Sketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / sk.lgGamma))
}

// value returns the estimate reported for bucket i: 2γ^i/(γ+1), the
// point whose maximum relative distance to any value in (γ^(i-1), γ^i]
// is exactly α.
func (sk *Sketch) value(i int) float64 {
	return 2 * math.Pow(sk.gamma, float64(i)) / (sk.gamma + 1)
}

// Merge adds another sketch's counts into sk. Both sketches must share
// the same alpha (bucket layout); Merge panics otherwise. Merging is
// commutative and associative bit for bit, and merging an empty sketch
// is a no-op.
func (sk *Sketch) Merge(o *Sketch) {
	if o.alpha != sk.alpha {
		panic(fmt.Sprintf("stats: merging sketches with different alphas %v and %v", sk.alpha, o.alpha))
	}
	if o.total == 0 {
		return
	}
	if sk.total == 0 {
		sk.min, sk.max = o.min, o.max
	} else {
		if o.min < sk.min {
			sk.min = o.min
		}
		if o.max > sk.max {
			sk.max = o.max
		}
	}
	sk.total += o.total
	sk.zero += o.zero
	for i, n := range o.counts {
		sk.counts[i] += n
	}
}

// Quantile returns the estimated q-quantile (0 <= q <= 1). Estimates
// are clamped into the exact observed [min, max]; q = 0 and q = 1
// return the exact extrema. An empty sketch, or q outside [0, 1],
// returns NaN.
func (sk *Sketch) Quantile(q float64) float64 {
	return sk.quantileKeys(sk.sortedKeys(), q)
}

// sortedKeys returns the occupied bucket indices in ascending order, so
// one sort can serve several quantile reads.
func (sk *Sketch) sortedKeys() []int {
	keys := make([]int, 0, len(sk.counts))
	for i := range sk.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	return keys
}

// quantileKeys reads the q-quantile given the pre-sorted bucket keys.
func (sk *Sketch) quantileKeys(keys []int, q float64) float64 {
	if sk.total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return sk.min
	}
	if q == 1 {
		return sk.max
	}
	rank := uint64(math.Ceil(q * float64(sk.total)))
	if rank < 1 {
		rank = 1
	}
	cum := sk.zero
	est := 0.0 // the zero bucket reports 0, clamped below
	if cum < rank {
		for _, i := range keys {
			cum += sk.counts[i]
			if cum >= rank {
				est = sk.value(i)
				break
			}
		}
	}
	if est < sk.min {
		est = sk.min
	}
	if est > sk.max {
		est = sk.max
	}
	return est
}
