package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// sketchStream generates a deterministic, heavy-tailed observation
// stream spanning several orders of magnitude (the shape of latency
// data), seeded so different streams don't overlap.
func sketchStream(seed uint64, n int) []float64 {
	out := make([]float64, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		u := float64(x>>11) / float64(1<<53) // uniform in [0, 1)
		// Exponentiate into roughly [0.1ms, 1000ms].
		out[i] = 0.1 * math.Pow(10, 4*u)
	}
	return out
}

// rankStat returns the exact order statistic the sketch estimates: the
// value at rank ceil(q*n) of the sorted data.
func rankStat(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestNewSketchPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSketch(%v) did not panic", alpha)
				}
			}()
			NewSketch(alpha)
		}()
	}
}

// TestSketchErrorBound checks the documented guarantee on a heavy-tailed
// stream: every quantile estimate is within relative error alpha of the
// exact order statistic at the same rank.
func TestSketchErrorBound(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05, 0.1} {
		sk := NewSketch(alpha)
		values := sketchStream(1, 20000)
		for _, x := range values {
			sk.Add(x)
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
			want := rankStat(sorted, q)
			got := sk.Quantile(q)
			if err := math.Abs(got-want) / want; err > alpha {
				t.Errorf("alpha=%v q=%v: estimate %v vs exact %v, relative error %v > %v",
					alpha, q, got, want, err, alpha)
			}
		}
		if sk.Quantile(0) != sorted[0] || sk.Quantile(1) != sorted[len(sorted)-1] {
			t.Errorf("alpha=%v: extrema not exact: got [%v, %v], want [%v, %v]",
				alpha, sk.Quantile(0), sk.Quantile(1), sorted[0], sorted[len(sorted)-1])
		}
	}
}

func TestSketchEmptyAndRangeContract(t *testing.T) {
	sk := NewSketch(0.05)
	if sk.N() != 0 {
		t.Fatalf("empty sketch N = %d", sk.N())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(sk.Quantile(q)) {
			t.Fatalf("empty sketch Quantile(%v) = %v, want NaN", q, sk.Quantile(q))
		}
	}
	sk.Add(3)
	for _, q := range []float64{-0.1, 1.1} {
		if !math.IsNaN(sk.Quantile(q)) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, sk.Quantile(q))
		}
	}
	if got := sk.Quantile(0.5); got < 3*(1-0.05) || got > 3*(1+0.05) {
		t.Fatalf("single-observation quantile %v outside bound around 3", got)
	}
}

// TestSketchZeroBucket pins the sub-resolution path: zeros (and any
// value below the resolution floor) are counted, keep N and the exact
// extrema right, and report as the clamped minimum.
func TestSketchZeroBucket(t *testing.T) {
	sk := NewSketch(0.05)
	sk.Add(0)
	sk.Add(0)
	sk.Add(0)
	sk.Add(5)
	if sk.N() != 4 {
		t.Fatalf("N = %d, want 4", sk.N())
	}
	if got := sk.Quantile(0.5); got != 0 {
		t.Fatalf("median of {0,0,0,5} = %v, want 0 (zero bucket)", got)
	}
	if got := sk.Quantile(1); got != 5 {
		t.Fatalf("max = %v, want 5 exactly", got)
	}
}

// TestSketchMergeBitIdentical pins the worker-independence property the
// Collector relies on: merging any partition of a stream, in any order
// and grouping, reproduces the serially-built sketch state bit for bit.
func TestSketchMergeBitIdentical(t *testing.T) {
	const alpha = 0.02
	streams := [][]float64{sketchStream(2, 700), sketchStream(3, 1100), sketchStream(4, 301)}
	build := func(vals []float64) *Sketch {
		sk := NewSketch(alpha)
		for _, x := range vals {
			sk.Add(x)
		}
		return sk
	}

	serial := NewSketch(alpha)
	for _, s := range streams {
		for _, x := range s {
			serial.Add(x)
		}
	}

	// (a⊕b)⊕c, a⊕(b⊕c) and c⊕b⊕a — associativity and commutativity.
	ab := build(streams[0])
	ab.Merge(build(streams[1]))
	ab.Merge(build(streams[2]))

	bc := build(streams[1])
	bc.Merge(build(streams[2]))
	abc := build(streams[0])
	abc.Merge(bc)

	cba := build(streams[2])
	cba.Merge(build(streams[1]))
	cba.Merge(build(streams[0]))

	for name, got := range map[string]*Sketch{"(a+b)+c": ab, "a+(b+c)": abc, "c+b+a": cba} {
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("merge order %s does not reproduce the serial sketch bit for bit", name)
		}
	}
}

func TestSketchMergeEmptyAndMismatch(t *testing.T) {
	sk := NewSketch(0.05)
	sk.Add(1)
	sk.Add(2)
	before := *sk
	sk.Merge(NewSketch(0.05)) // empty operand: no-op
	if !reflect.DeepEqual(*sk, before) {
		t.Fatal("merging an empty sketch changed the target")
	}

	empty := NewSketch(0.05)
	empty.Merge(sk)
	if empty.N() != 2 || empty.Quantile(0) != 1 || empty.Quantile(1) != 2 {
		t.Fatalf("merge into empty sketch lost state: n=%d extrema [%v, %v]",
			empty.N(), empty.Quantile(0), empty.Quantile(1))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different alphas did not panic")
		}
	}()
	sk.Merge(NewSketch(0.1))
}

// TestSketchCollectorContract pins the Collector facade of sketch mode:
// exact moments and extrema, bounded quantiles, nil Values, SplitAt
// panic, and the empty-collector contract matching exact mode.
func TestSketchCollectorContract(t *testing.T) {
	const alpha = 0.05
	empty := NewSketchCollector(alpha)
	if !empty.Sketched() {
		t.Fatal("NewSketchCollector not in sketch mode")
	}
	if empty.N() != 0 || !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatalf("empty sketch collector: N=%d Mean=%v P50=%v, want 0/NaN/NaN",
			empty.N(), empty.Mean(), empty.Quantile(0.5))
	}

	values := sketchStream(5, 5000)
	var exact Collector
	sk := NewSketchCollector(alpha)
	for _, x := range values {
		exact.Add(x)
		sk.Add(x)
	}

	// The Welford accumulator is shared, so moments and extrema are not
	// merely close — they are the same bits.
	if math.Float64bits(sk.Mean()) != math.Float64bits(exact.Mean()) {
		t.Errorf("sketch-mode Mean %v differs from exact %v", sk.Mean(), exact.Mean())
	}
	eq, sq := exact.Quantiles(), sk.Quantiles()
	if sq.N != eq.N || sq.Min != eq.Min || sq.Max != eq.Max {
		t.Errorf("sketch-mode N/Min/Max (%d, %v, %v) differ from exact (%d, %v, %v)",
			sq.N, sq.Min, sq.Max, eq.N, eq.Min, eq.Max)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for q, got := range map[float64]float64{0.50: sq.P50, 0.90: sq.P90, 0.99: sq.P99} {
		want := rankStat(sorted, q)
		if math.Abs(got-want)/want > alpha {
			t.Errorf("P%v: sketch %v vs exact %v beyond relative error %v", q*100, got, want, alpha)
		}
	}

	if sk.Values() != nil {
		t.Error("sketch-mode Values() did not return nil")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("sketch-mode SplitAt did not panic")
			}
		}()
		sk.SplitAt(1)
	}()

	// Histograms keep exact totals.
	if got, want := sk.Histogram(0, 1000, 10).Total(), exact.Histogram(0, 1000, 10).Total(); got != want {
		t.Errorf("sketch-mode histogram total %d, want %d", got, want)
	}
}

// TestCollectorMixedModeMerge pins the promotion rules: exact values
// folded into a sketch target, and an exact target promoted by a sketch
// operand, both land in the same state as feeding the sketch directly.
func TestCollectorMixedModeMerge(t *testing.T) {
	const alpha = 0.05
	a, b := sketchStream(6, 400), sketchStream(7, 600)

	feed := func(c *Collector, vals []float64) {
		for _, x := range vals {
			c.Add(x)
		}
	}
	reference := NewSketchCollector(alpha)
	feed(&reference, a)
	feed(&reference, b)

	// Sketch target, exact operand: operand values fold into the sketch.
	skTarget := NewSketchCollector(alpha)
	feed(&skTarget, a)
	var exactOperand Collector
	feed(&exactOperand, b)
	skTarget.Merge(&exactOperand)

	// Exact target, sketch operand: target promotes to the operand's layout.
	var exactTarget Collector
	feed(&exactTarget, a)
	skOperand := NewSketchCollector(alpha)
	feed(&skOperand, b)
	exactTarget.Merge(&skOperand)
	if !exactTarget.Sketched() {
		t.Fatal("merging a sketch operand did not promote the exact target")
	}

	// A zero-value target (the aggregation pattern) adopts the operand mode.
	var zeroTarget Collector
	skBoth := NewSketchCollector(alpha)
	feed(&skBoth, a)
	zeroTarget.Merge(&skBoth)
	var skB Collector = NewSketchCollector(alpha)
	feed(&skB, b)
	zeroTarget.Merge(&skB)
	if !zeroTarget.Sketched() {
		t.Fatal("zero-value target did not adopt sketch mode")
	}

	for name, got := range map[string]Collector{
		"sketch<-exact": skTarget, "exact<-sketch": exactTarget, "zero<-sketch": zeroTarget,
	} {
		if got.N() != reference.N() {
			t.Errorf("%s: N=%d, want %d", name, got.N(), reference.N())
			continue
		}
		gq, rq := got.Quantiles(), reference.Quantiles()
		for stat, pair := range map[string][2]float64{
			"Min": {gq.Min, rq.Min}, "P50": {gq.P50, rq.P50}, "P90": {gq.P90, rq.P90},
			"P99": {gq.P99, rq.P99}, "Max": {gq.Max, rq.Max},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Errorf("%s: %s = %v, want %v bit-identically", name, stat, pair[0], pair[1])
			}
		}
	}

	// Empty merges stay exact in both directions, preserving mode.
	var exact Collector
	feed(&exact, a)
	exact.Merge(&Collector{})
	emptySketch := NewSketchCollector(alpha)
	exact.Merge(&emptySketch)
	if exact.Sketched() {
		t.Error("merging an empty sketch collector promoted the target")
	}
	if exact.N() != len(a) {
		t.Errorf("empty merges changed N: %d, want %d", exact.N(), len(a))
	}
}
