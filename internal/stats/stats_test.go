package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 {
		t.Fatalf("N() = %d, want 0", s.N())
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Variance": s.Variance(), "CI95": s.CI95(),
		"Min": s.Min(), "Max": s.Max(),
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s of empty sample = %v, want NaN", name, v)
		}
	}
}

func TestSampleMeanAndVariance(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic dataset is 4; unbiased sample
	// variance is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Mean() != 42 {
		t.Fatalf("Mean = %v, want 42", s.Mean())
	}
	if !math.IsNaN(s.Variance()) {
		t.Fatalf("Variance of n=1 = %v, want NaN", s.Variance())
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("Min/Max = %v/%v, want 42/42", s.Min(), s.Max())
	}
}

func TestAddSampleMergeMatchesSequential(t *testing.T) {
	data := []float64{1.5, 2.5, 3, 8, 13, 0.25, -4, 9, 9, 2}
	var whole Sample
	for _, x := range data {
		whole.Add(x)
	}
	var a, b Sample
	for _, x := range data[:4] {
		a.Add(x)
	}
	for _, x := range data[4:] {
		b.Add(x)
	}
	a.AddSample(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged Variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestAddSampleEmptyCases(t *testing.T) {
	var a, b Sample
	b.Add(3)
	b.Add(5)
	a.AddSample(b) // empty += non-empty
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("empty+=b gives N=%d Mean=%v", a.N(), a.Mean())
	}
	var c Sample
	a.AddSample(c) // non-empty += empty
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("a+=empty changed sample: N=%d Mean=%v", a.N(), a.Mean())
	}
}

func TestMergePropertyRandom(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		// Filter non-finite values that quick may generate.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsInf(x, 0) && !math.IsNaN(x) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		k := int(split) % len(clean)
		var whole, a, b Sample
		for _, x := range clean {
			whole.Add(x)
		}
		for _, x := range clean[:k] {
			a.Add(x)
		}
		for _, x := range clean[k:] {
			b.Add(x)
		}
		a.AddSample(b)
		return a.N() == whole.N() &&
			almostEqual(a.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5 observations 1..5: mean 3, sd sqrt(2.5), se sqrt(0.5),
	// t_{0.975,4} = 2.7764 -> CI = 2.7764*sqrt(0.5) = 1.9632...
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	want := 2.7764 * math.Sqrt(0.5)
	if !almostEqual(s.CI95(), want, 1e-3) {
		t.Fatalf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	// Same spread, more data -> smaller CI.
	mk := func(reps int) float64 {
		var s Sample
		for i := 0; i < reps; i++ {
			s.Add(float64(i % 10))
		}
		return s.CI95()
	}
	small, large := mk(20), mk(2000)
	if large >= small {
		t.Fatalf("CI95 did not shrink: n=20 gives %v, n=2000 gives %v", small, large)
	}
}

func TestTQuantileTableAndInterpolation(t *testing.T) {
	cases := []struct {
		df   int
		want float64
		tol  float64
	}{
		{1, 12.7062, 1e-9},
		{10, 2.2281, 1e-9},
		{30, 2.0423, 1e-9},
		{35, 2.030, 0.005}, // interpolated between 30 and 40
		{1000, 1.959964, 1e-9},
	}
	for _, c := range cases {
		if got := tQuantile975(c.df); !almostEqual(got, c.want, c.tol) {
			t.Errorf("tQuantile975(%d) = %v, want %v±%v", c.df, got, c.want, c.tol)
		}
	}
	if !math.IsNaN(tQuantile975(0)) {
		t.Error("tQuantile975(0) should be NaN")
	}
}

func TestTQuantileMonotonicDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tQuantile975(df)
		if v > prev+1e-9 {
			t.Fatalf("t quantile increased at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{15, 20, 35, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 15},
		{1, 50},
		{0.5, 35},
		{0.25, 20},
		{0.75, 40},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if data[0] != 15 || data[4] != 50 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) {
		t.Error("Quantile(q<0) should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("Quantile(q>1) should be NaN")
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("Quantile single = %v, want 7", got)
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	str := s.Summarize().String()
	if str == "" {
		t.Fatal("empty summary string")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1.5, 2.5, 9.9, -3, 15} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	// Bins have width 2; -3 clamps to bin 0 and 15 clamps to bin 4.
	if h.Counts[0] != 3 { // 0.5, 1.5 and -3
		t.Fatalf("bin 0 count = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2.5
		t.Fatalf("bin 1 count = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 2 { // 9.9 and 15
		t.Fatalf("bin 4 count = %d, want 2", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHistogram(0, 1, 0) },
		"hi<=lo":    func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset + small variance is the classic catastrophic
	// cancellation case for naive two-pass variance.
	var s Sample
	const offset = 1e9
	for _, x := range []float64{offset + 4, offset + 7, offset + 13, offset + 16} {
		s.Add(x)
	}
	if !almostEqual(s.Mean(), offset+10, 1e-3) {
		t.Fatalf("Mean = %v, want %v", s.Mean(), offset+10.0)
	}
	if !almostEqual(s.Variance(), 30, 1e-3) {
		t.Fatalf("Variance = %v, want 30", s.Variance())
	}
}

func TestCI95Calibration(t *testing.T) {
	// Statistical validation of the confidence-interval machinery: draw
	// many samples of n=10 observations from a known distribution and
	// check that the 95% CI covers the true mean close to 95% of the
	// time. Deterministic LCG so the test is stable.
	const (
		trials   = 4000
		perTrial = 10
		trueMean = 50.0
	)
	state := uint64(987654321)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var s Sample
		for i := 0; i < perTrial; i++ {
			// Uniform on [0, 100): mean 50.
			s.Add(next() * 100)
		}
		ci := s.CI95()
		if s.Mean()-ci <= trueMean && trueMean <= s.Mean()+ci {
			covered++
		}
	}
	rate := float64(covered) / trials
	// The t-based interval on uniform data should land near 0.95;
	// allow a generous band for finite-sample effects.
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("CI95 coverage = %.3f, want ~0.95", rate)
	}
}
