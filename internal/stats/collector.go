package stats

import (
	"fmt"
	"sort"
)

// Collector accumulates a full distribution: the Welford moments of
// Sample plus every raw observation, so exact quantiles, histograms and
// population splits can be computed after the run. The paper's figures
// are distributions in disguise — the crash and suspicion scenarios
// split into early- and late-latency populations that a mean with a 95%
// confidence interval cannot show — and Collector is the carrier that
// lets every experiment report that shape.
//
// Collectors are mergeable: Merge appends the other collector's
// observations in their original order, so merging per-replication
// collectors in canonical replication order reproduces the serial
// accumulation bit for bit regardless of which worker ran which
// replication. The zero value is an empty collector ready for use.
//
// A collector can alternatively run in sketch mode (NewSketchCollector):
// instead of retaining raw observations it feeds them into a mergeable
// streaming quantile sketch (see Sketch), so a multi-million-message
// point costs O(sketch) memory instead of O(messages). Mean, variance,
// CI95 and the extrema stay exact (the Welford accumulator is kept
// either way); quantiles, and anything derived from them, carry the
// sketch's documented relative-error bound; Values returns nil and
// SplitAt panics, as both need the raw observations. Merging an exact
// collector into a sketch-mode one folds its retained values into the
// sketch; merging a sketch-mode collector into an exact one promotes
// the target to sketch mode first. Sketch-mode merge results are
// bit-identical under any merge grouping of the same observations.
//
// Empty-collector contract: N is 0, Mean and every quantile are NaN,
// Merge with an empty collector (in either direction) is exact — the
// same contract as the underlying Sample.
type Collector struct {
	sample Sample
	values []float64
	sketch *Sketch
}

// NewSketchCollector creates an empty collector in sketch mode with
// relative-error bound alpha (see NewSketch for the constraint on
// alpha).
func NewSketchCollector(alpha float64) Collector {
	return Collector{sketch: NewSketch(alpha)}
}

// Sketched reports whether the collector runs in sketch mode.
func (c Collector) Sketched() bool { return c.sketch != nil }

// Add records one observation.
func (c *Collector) Add(x float64) {
	c.sample.Add(x)
	if c.sketch != nil {
		c.sketch.Add(x)
		return
	}
	c.values = append(c.values, x)
}

// Merge appends another collector's observations, in their original
// order, and merges the moment accumulators (parallel Welford merge).
// Merging an empty collector is a no-op; merging into an empty collector
// copies o exactly (including its mode). Mixed-mode merges converge on
// sketch mode; merging two sketch-mode collectors requires matching
// alphas.
func (c *Collector) Merge(o *Collector) {
	if o.N() == 0 {
		return
	}
	c.sample.AddSample(o.sample)
	switch {
	case c.sketch != nil && o.sketch != nil:
		c.sketch.Merge(o.sketch)
	case c.sketch != nil:
		for _, x := range o.values {
			c.sketch.Add(x)
		}
	case o.sketch != nil:
		// Promote to sketch mode: fold the retained exact values into a
		// fresh sketch with the operand's layout, then merge.
		sk := NewSketch(o.sketch.Alpha())
		for _, x := range c.values {
			sk.Add(x)
		}
		sk.Merge(o.sketch)
		c.sketch = sk
		c.values = nil
	default:
		c.values = append(c.values, o.values...)
	}
}

// N returns the number of observations.
func (c Collector) N() int { return c.sample.N() }

// Mean returns the mean observation, or NaN when empty.
func (c Collector) Mean() float64 { return c.sample.Mean() }

// Sample returns a copy of the Welford accumulator over the collected
// observations.
func (c Collector) Sample() Sample { return c.sample }

// Summarize snapshots mean, deviation, CI95 and extrema.
func (c Collector) Summarize() Summary { return c.sample.Summarize() }

// Values returns the observations in insertion order. The slice is
// freshly allocated. A sketch-mode collector does not retain raw
// observations and returns nil.
func (c Collector) Values() []float64 {
	if c.sketch != nil {
		return nil
	}
	out := make([]float64, len(c.values))
	copy(out, c.values)
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of the collected
// observations, interpolating between order statistics — or, in sketch
// mode, the sketch's estimate within its relative-error bound. Empty
// collectors return NaN.
func (c Collector) Quantile(q float64) float64 {
	if c.sketch != nil {
		return c.sketch.Quantile(q)
	}
	return Quantile(c.values, q)
}

// Quantiles snapshots the canonical order statistics of the collection:
// the per-point distribution shape the figures report. An empty
// collector yields N = 0 and NaN everywhere else. The values (or the
// sketch's buckets) are sorted once for all three quantiles; Min and
// Max are exact in both modes.
func (c Collector) Quantiles() Quantiles {
	if c.sketch != nil {
		keys := c.sketch.sortedKeys()
		return Quantiles{
			N:   c.N(),
			Min: c.sample.Min(),
			P50: c.sketch.quantileKeys(keys, 0.50),
			P90: c.sketch.quantileKeys(keys, 0.90),
			P99: c.sketch.quantileKeys(keys, 0.99),
			Max: c.sample.Max(),
		}
	}
	sorted := make([]float64, len(c.values))
	copy(sorted, c.values)
	sort.Float64s(sorted)
	return Quantiles{
		N:   c.N(),
		Min: c.sample.Min(),
		P50: quantileSorted(sorted, 0.50),
		P90: quantileSorted(sorted, 0.90),
		P99: quantileSorted(sorted, 0.99),
		Max: c.sample.Max(),
	}
}

// Histogram bins the collected observations into bins equal-width bins
// over [lo, hi); out-of-range observations clamp into the first or last
// bin, as Histogram.Add documents. A sketch-mode collector bins its
// bucket estimates weighted by count, so bin totals are exact while bin
// boundaries blur by at most the sketch's relative error.
func (c Collector) Histogram(lo, hi float64, bins int) *Histogram {
	h := NewHistogram(lo, hi, bins)
	if sk := c.sketch; sk != nil {
		h.AddN(0, int(sk.zero))
		for i, n := range sk.counts {
			h.AddN(sk.value(i), int(n))
		}
		return h
	}
	for _, x := range c.values {
		h.Add(x)
	}
	return h
}

// SplitAt partitions the collection at the threshold x: early holds the
// observations strictly below x, late the rest, both in their original
// order. It exposes the paper's early/late latency split — in the crash
// and suspicion scenarios most messages deliver at failure-free latency
// while a second population is delayed by detection or a view change,
// and the two populations are only visible once the mean is taken apart.
// SplitAt needs the raw observations and panics on a sketch-mode
// collector.
func (c Collector) SplitAt(x float64) (early, late Collector) {
	if c.sketch != nil {
		panic("stats: SplitAt needs raw observations; collector is in sketch mode")
	}
	for _, v := range c.values {
		if v < x {
			early.Add(v)
		} else {
			late.Add(v)
		}
	}
	return early, late
}

// Quantiles is a value snapshot of a distribution's order statistics,
// convenient for reporting: observation count, extrema and the P50, P90
// and P99 latency quantiles the extended figures plot. The zero count
// carries NaN in every statistic.
type Quantiles struct {
	N                       int
	Min, P50, P90, P99, Max float64
}

// String formats the snapshot as "p50/p90/p99 (n=...)".
func (q Quantiles) String() string {
	if q.N == 0 {
		return "empty"
	}
	return fmt.Sprintf("%.3f/%.3f/%.3f (n=%d)", q.P50, q.P90, q.P99, q.N)
}
