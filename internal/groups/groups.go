// Package groups generalizes the stack from atomic broadcast to genuine
// atomic multicast: processes are assigned to (possibly overlapping)
// groups, each group runs its own atomic broadcast instance over its
// topology subgraph, and a message addressed to several groups is
// ordered across them by a deterministic timestamp merge in the style of
// fault-tolerant multi-group total order protocols (Fritzke et al.;
// Sutra's "The Weakest Failure Detector for Genuine Atomic Multicast"
// frames the problem). The protocol is genuine: only members of a
// message's destination groups take protocol steps for it — other
// groups neither see the message nor pay ordering work, which is what
// makes aggregate shard-local throughput scale with the group count.
//
// The package has two halves:
//
//   - GroupMap (this file): the assignment of processes to groups, with
//     generators spanning the overlap spectrum — Disjoint, Chained
//     (adjacent groups share a bridge process), CliqueOverlap (every
//     group shares one hub) — plus FromSites (a Geo topology's sites,
//     1:1) and a compact Spec for trace headers;
//   - Router (router.go): the per-process protocol layer that owns the
//     per-group instances, disseminates destination-group-addressed
//     messages, and merges the per-group timestamp streams into one
//     total order on multi-group messages.
package groups

import (
	"fmt"
	"sort"

	"repro/internal/proto"
	"repro/internal/topo"
)

// GroupMap assigns the N processes of a simulation to groups. Groups may
// overlap; every process must belong to at least one group. Build one
// with a generator (Disjoint, Chained, CliqueOverlap, FromSites) or from
// raw member lists via New, then carry it on Config.Groups /
// ClusterConfig.Groups or sweep it via Sweep.GroupMaps.
type GroupMap struct {
	n      int
	groups [][]proto.PID // per group, strictly ascending members
	of     [][]int       // per process, ascending group ids
	local  [][]int32     // local[g][p] = p's index within group g, -1 if absent
	gen    *Spec         // generator call, when built by one
}

// New builds a GroupMap from raw member lists. It panics on invalid
// input — the map is code, not input: members must be in 0..n-1, listed
// once per group, every group non-empty, and every process in at least
// one group.
func New(n int, members [][]proto.PID) *GroupMap {
	if n < 1 {
		panic(fmt.Sprintf("groups: n = %d, need at least 1", n))
	}
	if len(members) == 0 {
		panic("groups: no groups")
	}
	m := &GroupMap{
		n:      n,
		groups: make([][]proto.PID, len(members)),
		of:     make([][]int, n),
		local:  make([][]int32, len(members)),
	}
	for g, ms := range members {
		if len(ms) == 0 {
			panic(fmt.Sprintf("groups: group %d is empty", g))
		}
		own := append([]proto.PID(nil), ms...)
		sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
		m.local[g] = make([]int32, n)
		for i := range m.local[g] {
			m.local[g][i] = -1
		}
		for i, p := range own {
			if p < 0 || int(p) >= n {
				panic(fmt.Sprintf("groups: group %d member %d out of range 0..%d", g, p, n-1))
			}
			if i > 0 && own[i-1] == p {
				panic(fmt.Sprintf("groups: group %d lists member %d twice", g, p))
			}
			m.local[g][p] = int32(i)
			m.of[p] = append(m.of[p], g)
		}
		m.groups[g] = own
	}
	for p, of := range m.of {
		if len(of) == 0 {
			panic(fmt.Sprintf("groups: process %d belongs to no group", p))
		}
	}
	return m
}

// N returns the number of processes the map covers.
func (m *GroupMap) N() int { return m.n }

// NumGroups returns the number of groups.
func (m *GroupMap) NumGroups() int { return len(m.groups) }

// Members returns group g's members, ascending. The slice is shared;
// callers must not mutate it.
func (m *GroupMap) Members(g int) []proto.PID { return m.groups[g] }

// GroupsOf returns the ascending group ids process p belongs to. The
// slice is shared; callers must not mutate it.
func (m *GroupMap) GroupsOf(p proto.PID) []int { return m.of[p] }

// Home returns the lowest-numbered group containing p — the default
// destination of p's shard-local traffic.
func (m *GroupMap) Home(p proto.PID) int { return m.of[p][0] }

// Contains reports whether process p is a member of group g.
func (m *GroupMap) Contains(g int, p proto.PID) bool { return m.local[g][p] >= 0 }

// LocalIndex returns p's index within group g, or -1 if p is not a
// member. Group protocol instances run in this local id space.
func (m *GroupMap) LocalIndex(g int, p proto.PID) proto.PID {
	return proto.PID(m.local[g][p])
}

// Trivial reports whether the map is a single group covering every
// process — the plain atomic broadcast case. The experiment builder
// normalizes a trivial map to the ungrouped path, which keeps it
// bit-identical to a nil GroupMap.
func (m *GroupMap) Trivial() bool {
	return len(m.groups) == 1 && len(m.groups[0]) == m.n
}

// Validate checks the map against a process count and (optionally) a
// topology: n must match, and with a topology every member pair of every
// group must be mutually reachable, so each group's instance can
// actually communicate. Dissemination may relay through non-members —
// genuineness is about protocol steps, not physical forwarding.
func (m *GroupMap) Validate(n int, t *topo.Topology) error {
	if m.n != n {
		return fmt.Errorf("groups: map covers %d processes, config has N=%d", m.n, n)
	}
	if t == nil {
		return nil
	}
	if t.N != n {
		return fmt.Errorf("groups: topology %q is for %d processes, config has N=%d", t.Name, t.N, n)
	}
	rt := t.Routing()
	for g, ms := range m.groups {
		for _, p := range ms {
			for _, q := range ms {
				if p != q && rt.Next[p][q] < 0 {
					return fmt.Errorf("groups: group %d members %d and %d are not connected in topology %q", g, p, q, t.Name)
				}
			}
		}
	}
	return nil
}

// String names the map compactly for labels and diagnostics.
func (m *GroupMap) String() string {
	if m.gen != nil && m.gen.Kind != "raw" {
		return fmt.Sprintf("%s(n=%d,k=%d)", m.gen.Kind, m.n, len(m.groups))
	}
	return fmt.Sprintf("groups(n=%d,k=%d)", m.n, len(m.groups))
}

// Disjoint splits n processes into k contiguous disjoint groups of
// near-equal size — the pure sharding end of the overlap spectrum. It
// panics unless 1 <= k <= n.
func Disjoint(n, k int) *GroupMap {
	if k < 1 || k > n {
		panic(fmt.Sprintf("groups: Disjoint(n=%d, k=%d) needs 1 <= k <= n", n, k))
	}
	members := make([][]proto.PID, k)
	start := 0
	for g := 0; g < k; g++ {
		size := n / k
		if g < n%k {
			size++
		}
		for i := 0; i < size; i++ {
			members[g] = append(members[g], proto.PID(start+i))
		}
		start += size
	}
	m := New(n, members)
	m.gen = &Spec{Kind: "disjoint", N: n, K: k}
	return m
}

// Chained splits n processes into k groups where adjacent groups share
// exactly one bridge process — the chain of overlaps that makes
// cross-group ordering pass through bridges. It panics unless the chain
// fits: k >= 1 and n >= k+1 for k >= 2 (each group needs at least two
// members so bridges do not coincide).
func Chained(n, k int) *GroupMap {
	if k == 1 {
		m := Disjoint(n, 1)
		m.gen = &Spec{Kind: "chained", N: n, K: 1}
		return m
	}
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("groups: Chained(n=%d, k=%d) needs n >= k+1", n, k))
	}
	// k groups over n processes with k-1 shared bridges: n+k-1 membership
	// slots, spread as evenly as possible, larger groups first.
	slots := n + k - 1
	members := make([][]proto.PID, k)
	start := 0
	for g := 0; g < k; g++ {
		size := slots / k
		if g < slots%k {
			size++
		}
		for i := 0; i < size; i++ {
			members[g] = append(members[g], proto.PID(start+i))
		}
		start += size - 1 // the last member bridges into the next group
	}
	m := New(n, members)
	m.gen = &Spec{Kind: "chained", N: n, K: k}
	return m
}

// CliqueOverlap splits processes 1..n-1 into k near-equal shards and
// puts process 0 in every group — a hub member through which every pair
// of groups overlaps, the dense end of the overlap spectrum. It panics
// unless k >= 1 and n >= k+1.
func CliqueOverlap(n, k int) *GroupMap {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("groups: CliqueOverlap(n=%d, k=%d) needs n >= k+1", n, k))
	}
	members := make([][]proto.PID, k)
	rest := n - 1
	start := 1
	for g := 0; g < k; g++ {
		size := rest / k
		if g < rest%k {
			size++
		}
		members[g] = append(members[g], 0)
		for i := 0; i < size; i++ {
			members[g] = append(members[g], proto.PID(start+i))
		}
		start += size
	}
	m := New(n, members)
	m.gen = &Spec{Kind: "cliqueoverlap", N: n, K: k}
	return m
}

// FromSites builds the group map induced by a topology's site groups —
// each Geo site becomes one group, 1:1. It panics if the topology
// declares no groups.
func FromSites(t *topo.Topology) *GroupMap {
	if len(t.Groups) == 0 {
		panic(fmt.Sprintf("groups: topology %q declares no site groups", t.Name))
	}
	members := make([][]proto.PID, len(t.Groups))
	for g, site := range t.Groups {
		for _, p := range site {
			members[g] = append(members[g], proto.PID(p))
		}
	}
	m := New(t.N, members)
	return m
}

// Spec is the compact serializable description of a GroupMap — the
// generator call when the map came from one, raw member lists otherwise.
// Trace headers embed it so a replay rebuilds the exact map.
type Spec struct {
	Kind string        `json:"kind"` // disjoint | chained | cliqueoverlap | raw
	N    int           `json:"n"`
	K    int           `json:"k,omitempty"`   // group count for generated maps
	Raw  [][]proto.PID `json:"raw,omitempty"` // member lists for raw maps
}

// Spec returns the map's serializable description.
func (m *GroupMap) Spec() *Spec {
	if m.gen != nil {
		return m.gen
	}
	return &Spec{Kind: "raw", N: m.n, Raw: m.groups}
}

// FromSpec rebuilds a GroupMap from its description; it is Spec's
// inverse and errors (rather than panics) on unknown kinds or invalid
// parameters — specs cross process boundaries, so they are input.
func FromSpec(s *Spec) (m *GroupMap, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("groups: invalid spec: %v", r)
		}
	}()
	switch s.Kind {
	case "disjoint":
		return Disjoint(s.N, s.K), nil
	case "chained":
		return Chained(s.N, s.K), nil
	case "cliqueoverlap":
		return CliqueOverlap(s.N, s.K), nil
	case "raw":
		return New(s.N, s.Raw), nil
	default:
		return nil, fmt.Errorf("groups: unknown group map kind %q", s.Kind)
	}
}
