package groups

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/topo"
)

// covers asserts every process belongs to at least one group and local
// indices round-trip through the membership tables.
func covers(t *testing.T, m *GroupMap) {
	t.Helper()
	for p := 0; p < m.N(); p++ {
		if len(m.GroupsOf(proto.PID(p))) == 0 {
			t.Fatalf("%s: process %d in no group", m, p)
		}
		for _, g := range m.GroupsOf(proto.PID(p)) {
			if !m.Contains(g, proto.PID(p)) {
				t.Fatalf("%s: GroupsOf says %d in %d, Contains disagrees", m, p, g)
			}
			li := m.LocalIndex(g, proto.PID(p))
			if li < 0 || m.Members(g)[li] != proto.PID(p) {
				t.Fatalf("%s: LocalIndex(%d, %d) = %d does not round-trip", m, g, p, li)
			}
		}
	}
}

func TestDisjointGenerator(t *testing.T) {
	m := Disjoint(10, 3)
	covers(t, m)
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", m.NumGroups())
	}
	total := 0
	for g := 0; g < 3; g++ {
		size := len(m.Members(g))
		if size < 3 || size > 4 {
			t.Fatalf("group %d has %d members, want near-equal split of 10", g, size)
		}
		total += size
	}
	if total != 10 {
		t.Fatalf("groups overlap or miss processes: %d membership slots", total)
	}
	for p := 0; p < 10; p++ {
		if len(m.GroupsOf(proto.PID(p))) != 1 {
			t.Fatalf("disjoint map puts %d in %d groups", p, len(m.GroupsOf(proto.PID(p))))
		}
	}
}

func TestChainedGeneratorBridges(t *testing.T) {
	m := Chained(7, 3)
	covers(t, m)
	// Adjacent groups share exactly one bridge; non-adjacent none.
	overlap := func(a, b int) []proto.PID {
		var out []proto.PID
		for _, p := range m.Members(a) {
			if m.Contains(b, p) {
				out = append(out, p)
			}
		}
		return out
	}
	if len(overlap(0, 1)) != 1 || len(overlap(1, 2)) != 1 {
		t.Fatalf("adjacent overlaps = %v / %v, want one bridge each", overlap(0, 1), overlap(1, 2))
	}
	if len(overlap(0, 2)) != 0 {
		t.Fatalf("non-adjacent groups overlap: %v", overlap(0, 2))
	}
	bridge := overlap(0, 1)[0]
	if len(m.GroupsOf(bridge)) != 2 {
		t.Fatalf("bridge %d in %d groups, want 2", bridge, len(m.GroupsOf(bridge)))
	}
}

func TestCliqueOverlapHub(t *testing.T) {
	m := CliqueOverlap(9, 4)
	covers(t, m)
	if len(m.GroupsOf(0)) != 4 {
		t.Fatalf("hub in %d groups, want all 4", len(m.GroupsOf(0)))
	}
	for p := 1; p < 9; p++ {
		if len(m.GroupsOf(proto.PID(p))) != 1 {
			t.Fatalf("non-hub %d in %d groups, want 1", p, len(m.GroupsOf(proto.PID(p))))
		}
	}
}

func TestFromSitesMatchesGeo(t *testing.T) {
	g := topo.Geo(topo.GeoConfig{Sites: 3, PerSite: 3})
	m := FromSites(g)
	covers(t, m)
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want one per site", m.NumGroups())
	}
	for gi, site := range g.Groups {
		if len(m.Members(gi)) != len(site) {
			t.Fatalf("group %d has %d members, site has %d", gi, len(m.Members(gi)), len(site))
		}
	}
	if err := m.Validate(g.N, g); err != nil {
		t.Fatalf("site map invalid against its own topology: %v", err)
	}
}

func TestTrivialAndHome(t *testing.T) {
	if !Disjoint(5, 1).Trivial() {
		t.Fatal("Disjoint(5,1) not trivial")
	}
	if Disjoint(5, 2).Trivial() || Chained(5, 2).Trivial() {
		t.Fatal("multi-group maps claim trivial")
	}
	m := Chained(7, 3)
	for p := 0; p < 7; p++ {
		if got, want := m.Home(proto.PID(p)), m.GroupsOf(proto.PID(p))[0]; got != want {
			t.Fatalf("Home(%d) = %d, want lowest group %d", p, got, want)
		}
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	if err := Disjoint(6, 2).Validate(7, nil); err == nil {
		t.Fatal("N mismatch accepted")
	}
	// A group spanning two components of a disconnected graph is invalid.
	split := &topo.Topology{
		Name: "split", N: 4, Wires: []topo.Wire{{}, {}},
		Edges: []topo.Edge{
			{From: 0, To: 1, Wire: 0}, {From: 1, To: 0, Wire: 0},
			{From: 2, To: 3, Wire: 1}, {From: 3, To: 2, Wire: 1},
		},
	}
	if err := New(4, [][]proto.PID{{0, 1}, {2, 3}}).Validate(4, split); err != nil {
		t.Fatalf("component-aligned groups rejected: %v", err)
	}
	if err := Disjoint(4, 1).Validate(4, split); err == nil {
		t.Fatal("group spanning disconnected components accepted")
	}
}

func TestNewPanicsOnInvalidInput(t *testing.T) {
	bad := []func(){
		func() { New(0, nil) },
		func() { New(3, [][]proto.PID{}) },
		func() { New(3, [][]proto.PID{{}}) },
		func() { New(3, [][]proto.PID{{0, 3}}) },
		func() { New(3, [][]proto.PID{{0, 0}}) },
		func() { New(3, [][]proto.PID{{0, 1}}) }, // process 2 uncovered
		func() { Disjoint(3, 4) },
		func() { Chained(3, 3) },
		func() { CliqueOverlap(3, 3) },
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSpecRoundTrip(t *testing.T) {
	maps := []*GroupMap{
		Disjoint(8, 4),
		Chained(7, 3),
		CliqueOverlap(9, 2),
		New(4, [][]proto.PID{{0, 1, 2}, {2, 3}}),
		FromSites(topo.Geo(topo.GeoConfig{Sites: 2, PerSite: 2})),
	}
	for _, m := range maps {
		got, err := FromSpec(m.Spec())
		if err != nil {
			t.Fatalf("%s: FromSpec failed: %v", m, err)
		}
		if got.N() != m.N() || got.NumGroups() != m.NumGroups() {
			t.Fatalf("%s: round-trip shape mismatch: %s", m, got)
		}
		for g := 0; g < m.NumGroups(); g++ {
			a, b := m.Members(g), got.Members(g)
			if len(a) != len(b) {
				t.Fatalf("%s: group %d size changed", m, g)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: group %d member %d changed", m, g, i)
				}
			}
		}
	}
	if _, err := FromSpec(&Spec{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := FromSpec(&Spec{Kind: "disjoint", N: 2, K: 5}); err == nil {
		t.Fatal("invalid generator parameters accepted")
	}
}
