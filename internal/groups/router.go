package groups

import (
	"fmt"
	"time"

	"repro/internal/netmodel"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Tunables of the cross-group machinery (virtual time, so deterministic).
const (
	// initFallback staggers redundant initiations of a message inside a
	// destination group that does not contain the sender: the lowest
	// member a-broadcasts the message into the group immediately on
	// receiving the dissemination gram, member k only after k·initFallback
	// if the message still has not been group-delivered — crash cover
	// without duplicate traffic in the common case (duplicates that do
	// slip through are absorbed by per-group dedup).
	initFallback = 200 * time.Millisecond
	// stallRetry is the re-probe interval for a head-of-queue message
	// whose final timestamp is missing — normally the proposals arrive
	// with the protocol traffic, and the retry only acts after crashes or
	// a recovery replay, by asking the destination groups' members again.
	stallRetry = 250 * time.Millisecond
)

// Endpoint is one group's protocol instance as the Router drives it: the
// outermost handler (e.g. a heartbeat-detector wrapper), the a-broadcast
// entry point, and optional recovery hooks.
type Endpoint struct {
	Handler proto.Handler
	// ABroadcast submits a body to the group's atomic broadcast.
	ABroadcast func(body any) proto.MsgID
	// Resume, when set, arms the instance's catch-up probe (the FD
	// stack's decision-log recovery) after a recovery or heal.
	Resume func()
	// Restart, when set, restarts the instance's failure detector (the
	// heartbeat wrapper) after a recovery.
	Restart func()
}

// InstanceConfig is what an InstanceFactory receives to build one
// process's protocol instance for one group. The instance runs in the
// group's local id space: Runtime presents local pids 0..len(Members)-1
// and multicasts reach the group only.
type InstanceConfig struct {
	Group   int
	Members []proto.PID // global pids, ascending
	Local   proto.PID   // this process's local id within the group
	Runtime proto.Runtime
	// Deliver must be invoked by the instance exactly once per
	// group-agreed body, in the agreed order — the Router's timestamp
	// merge is driven by this stream.
	Deliver func(body any)
	// InitialLocal lists the initially-live members in local ids (nil =
	// all) for membership-based algorithms.
	InitialLocal []proto.PID
}

// InstanceFactory builds one per-group protocol instance; the experiment
// builder supplies one closing over the algorithm configuration.
type InstanceFactory func(ic InstanceConfig) Endpoint

// Coordinator is the per-simulation shared state of the group layer:
// the map, the per-group netmodel destination sets, the envelope pool
// and the per-process routers.
type Coordinator struct {
	sys     *proto.System
	m       *GroupMap
	factory InstanceFactory
	deliver func(p proto.PID, id proto.MsgID, body any, at sim.Time)
	sets    []netmodel.SetID
	pre     []bool // pre-crashed processes, for initial memberships
	routers []*Router
}

// NewCoordinator registers one netmodel destination set per group and
// prepares router construction. preCrashed may be nil.
func NewCoordinator(sys *proto.System, m *GroupMap, preCrashed []bool, factory InstanceFactory,
	deliver func(p proto.PID, id proto.MsgID, body any, at sim.Time)) *Coordinator {
	c := &Coordinator{
		sys:     sys,
		m:       m,
		factory: factory,
		deliver: deliver,
		sets:    make([]netmodel.SetID, m.NumGroups()),
		pre:     preCrashed,
		routers: make([]*Router, m.N()),
	}
	scratch := make([]int, 0, m.N())
	for g := 0; g < m.NumGroups(); g++ {
		scratch = scratch[:0]
		for _, p := range m.Members(g) {
			scratch = append(scratch, int(p))
		}
		c.sets[g] = sys.Net.RegisterSet(scratch)
	}
	return c
}

// Map returns the coordinator's group map.
func (c *Coordinator) Map() *GroupMap { return c.m }

// Router returns process p's router.
func (c *Coordinator) Router(p proto.PID) *Router { return c.routers[p] }

// envelope wraps a group instance's payload for transit, naming the
// group so the receiving router can dispatch it. Envelopes are pooled
// per sending router — a domain-local free list, so concurrent group
// domains under the parallel engine never contend — and delegate
// reference counts to the wrapped payload, so the protocols' pooled
// messages keep their recycling discipline.
type envelope struct {
	home  *Router
	gid   int32
	refs  int32
	inner any
}

func (r *Router) wrap(gid int, inner any) *envelope {
	var e *envelope
	if n := len(r.envFree); n > 0 {
		e, r.envFree = r.envFree[n-1], r.envFree[:n-1]
	} else {
		e = &envelope{home: r}
	}
	e.gid, e.inner, e.refs = int32(gid), inner, 0
	return e
}

// Retain implements netmodel.Pooled, delegating to the inner payload.
func (e *envelope) Retain(n int) {
	e.refs += int32(n)
	if p, ok := e.inner.(netmodel.Pooled); ok {
		p.Retain(n)
	}
}

// Release implements netmodel.Pooled; the envelope recycles itself when
// its own count reaches zero.
func (e *envelope) Release() {
	if p, ok := e.inner.(netmodel.Pooled); ok {
		p.Release()
	}
	if e.refs--; e.refs == 0 {
		e.inner = nil
		e.home.envFree = append(e.home.envFree, e)
	}
}

// String names the envelope for traces: the group and the inner payload.
func (e *envelope) String() string {
	return fmt.Sprintf("g%d{%s}", e.gid, netmodel.PayloadName(e.inner))
}

// gmsg is a destination-group-addressed message: the dissemination gram
// sent to destination groups the sender is not in, and the body
// a-broadcast inside each destination group.
type gmsg struct {
	id    proto.MsgID
	from  proto.PID
	dests []int
	body  any
}

func (g *gmsg) String() string { return fmt.Sprintf("mgram %s d%v", g.id, g.dests) }

// tsProp carries one destination group's timestamp proposal for a
// message to the members of the other destination groups.
type tsProp struct {
	id  proto.MsgID
	gid int
	ts  uint64
}

func (t *tsProp) String() string { return fmt.Sprintf("tsprop %s g%d@%d", t.id, t.gid, t.ts) }

// tsReq asks a destination member to resend what it knows about a
// message's timestamps (stall recovery).
type tsReq struct{ id proto.MsgID }

func (t *tsReq) String() string { return fmt.Sprintf("tsreq %s", t.id) }

// tsFinal short-circuits a stalled message with its already-agreed final
// timestamp (the responder delivered it before the requester recovered).
type tsFinal struct {
	id proto.MsgID
	ts uint64
}

func (t *tsFinal) String() string { return fmt.Sprintf("tsfinal %s@%d", t.id, t.ts) }

// advance is a-broadcast into a lagging group to pull its logical clock
// up to a multi-group message's final timestamp; it occupies a slot in
// the group's agreed stream without counting as a message.
type advance struct{ ts uint64 }

func (a *advance) String() string { return fmt.Sprintf("advance@%d", a.ts) }

// instance is one process's protocol stack for one of its groups.
type instance struct {
	gid     int
	pos     int // index in the router's local group list
	members []proto.PID
	local   proto.PID
	set     netmodel.SetID
	ep      Endpoint
	sent    uint64
	// seen dedups group-deliveries by global id (redundant initiations
	// collapse here); initiated dedups our own initiations.
	seen      map[proto.MsgID]bool
	initiated map[proto.MsgID]bool
}

// groupRuntime adapts the process's global runtime to one group's local
// id space: local pids, group-sized N, group-set multicast, payloads
// wrapped in group envelopes.
type groupRuntime struct {
	r    *Router
	inst *instance
}

func (g *groupRuntime) ID() proto.PID   { return g.inst.local }
func (g *groupRuntime) N() int          { return len(g.inst.members) }
func (g *groupRuntime) Now() sim.Time   { return g.r.proc.Now() }
func (g *groupRuntime) Rand() *sim.Rand { return g.r.proc.Rand() }
func (g *groupRuntime) Send(to proto.PID, payload any) {
	g.r.proc.Send(g.inst.members[to], g.r.wrap(g.inst.gid, payload))
}
func (g *groupRuntime) Multicast(payload any) {
	g.r.proc.MulticastSet(g.inst.set, g.r.wrap(g.inst.gid, payload))
}
func (g *groupRuntime) After(d time.Duration, fn func()) proto.Timer { return g.r.proc.After(d, fn) }
func (g *groupRuntime) Suspects(q proto.PID) bool {
	return g.r.proc.Suspects(g.inst.members[q])
}

// pending is the ordering state of one multi-destination message at one
// process: the proposals gathered so far and the delivery payload once
// some local destination group has agreed on the message.
type pending struct {
	id      proto.MsgID
	from    proto.PID
	dests   []int
	body    any
	hasBody bool
	props   map[int]uint64 // per destination group, once known
	known   int
	final   bool
	ts      uint64 // final timestamp when final, max known proposal otherwise
	created sim.Time
}

// entLess orders pending entries by (timestamp, id) — the global
// delivery order. For a non-final entry ts is a lower bound, so the
// minimum entry being non-final means delivery must wait.
func entLess(a, b *pending) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.id.Less(b.id)
}

// Router is one process's group-multicast layer: the root protocol
// handler owning the per-group instances and merging their agreed
// streams into one total order over the messages destined to this
// process. Timestamps follow the classic merge: each destination group
// assigns a message its position in the group's agreed stream (a
// per-group logical clock), the final timestamp is the max over the
// destination groups, and delivery is in (timestamp, id) order once no
// earlier message can still appear — which per-group clocks guarantee
// once every local group's clock has reached the timestamp.
type Router struct {
	coord *Coordinator
	proc  *proto.Proc
	self  proto.PID
	insts []*instance

	seq    uint64 // per-process global message ids
	clock  []uint64
	reqAdv []uint64 // highest advance requested per local group
	pend   map[proto.MsgID]*pending
	order  []*pending             // deterministic iteration (insertion order)
	done   map[proto.MsgID]uint64 // a-delivered ids -> final timestamp

	envFree []*envelope // domain-local envelope pool (see wrap)

	stallArmed bool
}

// NewRouter builds process p's router and its per-group instances, in
// ascending group order. The caller installs it as the process's root
// handler.
func (c *Coordinator) NewRouter(proc *proto.Proc) *Router {
	p := proc.ID()
	r := &Router{
		coord: c,
		proc:  proc,
		self:  p,
		pend:  make(map[proto.MsgID]*pending),
		done:  make(map[proto.MsgID]uint64),
	}
	for _, gid := range c.m.GroupsOf(p) {
		inst := &instance{
			gid:       gid,
			pos:       len(r.insts),
			members:   c.m.Members(gid),
			local:     c.m.LocalIndex(gid, p),
			set:       c.sets[gid],
			seen:      make(map[proto.MsgID]bool),
			initiated: make(map[proto.MsgID]bool),
		}
		var initial []proto.PID
		if c.pre != nil {
			for _, q := range inst.members {
				if !c.pre[q] {
					initial = append(initial, c.m.LocalIndex(gid, q))
				}
			}
			if len(initial) == len(inst.members) {
				initial = nil
			}
		}
		inst.ep = c.factory(InstanceConfig{
			Group:        gid,
			Members:      inst.members,
			Local:        inst.local,
			Runtime:      &groupRuntime{r: r, inst: inst},
			Deliver:      func(body any) { r.onGroupDeliver(inst, body) },
			InitialLocal: initial,
		})
		r.insts = append(r.insts, inst)
	}
	r.clock = make([]uint64, len(r.insts))
	r.reqAdv = make([]uint64, len(r.insts))
	c.routers[p] = r
	return r
}

func (r *Router) instFor(gid int) *instance {
	for _, inst := range r.insts {
		if inst.gid == gid {
			return inst
		}
	}
	return nil
}

// Multicast initiates a message to the given destination groups (sorted,
// unique) and returns its global id. Groups containing this process get
// the message a-broadcast directly into their instance; the others
// receive a dissemination gram over their group set, whose lowest member
// initiates (with staggered fallbacks covering its crash). It panics on
// an invalid destination list — destinations are code, not input.
func (r *Router) Multicast(dests []int, body any) proto.MsgID {
	if len(dests) == 0 {
		panic("groups: multicast with no destination groups")
	}
	last := -1
	for _, gid := range dests {
		if gid <= last || gid >= r.coord.m.NumGroups() {
			panic(fmt.Sprintf("groups: bad destination list %v (want sorted unique group ids < %d)", dests, r.coord.m.NumGroups()))
		}
		last = gid
	}
	r.seq++
	g := &gmsg{
		id:    proto.MsgID{Origin: r.self, Seq: r.seq},
		from:  r.self,
		dests: append([]int(nil), dests...),
		body:  body,
	}
	for _, gid := range g.dests {
		if inst := r.instFor(gid); inst != nil {
			r.initiate(inst, g)
		} else {
			r.proc.MulticastSet(r.coord.sets[gid], g)
		}
	}
	return g.id
}

func (r *Router) initiate(inst *instance, g *gmsg) {
	inst.initiated[g.id] = true
	inst.sent++
	inst.ep.ABroadcast(g)
}

// Recovered re-arms every instance after this process recovers from a
// crash: heartbeat detectors restart, catch-up probes arm.
func (r *Router) Recovered() {
	for _, inst := range r.insts {
		if inst.ep.Restart != nil {
			inst.ep.Restart()
		}
		if inst.ep.Resume != nil {
			inst.ep.Resume()
		}
	}
}

// Resumed arms every instance's catch-up probe (after a partition
// heals).
func (r *Router) Resumed() {
	for _, inst := range r.insts {
		if inst.ep.Resume != nil {
			inst.ep.Resume()
		}
	}
}

// Init implements proto.Handler.
func (r *Router) Init() {
	for _, inst := range r.insts {
		inst.ep.Handler.Init()
	}
}

// OnMessage implements proto.Handler: group envelopes dispatch into the
// named instance in its local id space; everything else is the group
// layer's own traffic.
func (r *Router) OnMessage(from proto.PID, payload any) {
	switch p := payload.(type) {
	case *envelope:
		inst := r.instFor(int(p.gid))
		if inst == nil {
			panic(fmt.Sprintf("groups: process %d received an envelope for group %d it is not in", r.self, p.gid))
		}
		inst.ep.Handler.OnMessage(r.coord.m.LocalIndex(inst.gid, from), p.inner)
	case *gmsg:
		r.handleGram(p)
	case *tsProp:
		r.onTSProp(p)
	case *tsReq:
		r.onTSReq(from, p)
	case *tsFinal:
		r.onTSFinal(p)
	default:
		panic(fmt.Sprintf("groups: unknown payload %T", payload))
	}
}

// OnSuspect implements proto.Handler, forwarding the system detector's
// edge to every shared group's instance in local ids.
func (r *Router) OnSuspect(q proto.PID) {
	for _, inst := range r.insts {
		if lq := r.coord.m.LocalIndex(inst.gid, q); lq >= 0 {
			inst.ep.Handler.OnSuspect(lq)
		}
	}
}

// OnTrust implements proto.Handler.
func (r *Router) OnTrust(q proto.PID) {
	for _, inst := range r.insts {
		if lq := r.coord.m.LocalIndex(inst.gid, q); lq >= 0 {
			inst.ep.Handler.OnTrust(lq)
		}
	}
}

// handleGram processes a dissemination gram for destination groups the
// sender is not in: the lowest member initiates immediately, higher
// members arm rank-staggered fallbacks in case it crashed.
func (r *Router) handleGram(g *gmsg) {
	if _, ok := r.done[g.id]; ok {
		return
	}
	for _, gid := range g.dests {
		inst := r.instFor(gid)
		if inst == nil || inst.seen[g.id] || inst.initiated[g.id] {
			continue
		}
		if r.coord.m.Contains(gid, g.from) {
			continue // the sender initiates into its own groups itself
		}
		if inst.local == 0 {
			r.initiate(inst, g)
			continue
		}
		r.proc.After(time.Duration(inst.local)*initFallback, func() {
			if !inst.seen[g.id] && !inst.initiated[g.id] {
				r.initiate(inst, g)
			}
		})
	}
}

func (r *Router) ensure(id proto.MsgID) *pending {
	if ent, ok := r.pend[id]; ok {
		return ent
	}
	ent := &pending{id: id, props: make(map[int]uint64), created: r.proc.Now()}
	r.pend[id] = ent
	r.order = append(r.order, ent)
	return ent
}

// onGroupDeliver consumes one group's agreed stream: fresh messages tick
// the group clock and become that group's proposal, advances pull the
// clock forward, duplicates (redundant initiations) are skipped.
func (r *Router) onGroupDeliver(inst *instance, body any) {
	switch b := body.(type) {
	case *gmsg:
		if inst.seen[b.id] {
			return
		}
		inst.seen[b.id] = true
		delete(inst.initiated, b.id)
		r.clock[inst.pos]++
		if _, ok := r.done[b.id]; ok {
			// Already a-delivered here (a recovery short-circuited the
			// timestamp); the stream position still ticks the clock so
			// this member stays aligned with the group.
			return
		}
		prop := r.clock[inst.pos]
		ent := r.ensure(b.id)
		if !ent.hasBody {
			ent.from, ent.dests, ent.body, ent.hasBody = b.from, b.dests, b.body, true
		}
		if _, ok := ent.props[inst.gid]; !ok {
			ent.props[inst.gid] = prop
			ent.known++
			if prop > ent.ts {
				ent.ts = prop
			}
			if ent.known == len(b.dests) {
				ent.final = true
				r.eagerAdvance(ent)
			}
		}
		if len(b.dests) > 1 {
			r.sendProps(inst, b, prop)
		}
		r.pump()
	case *advance:
		if b.ts > r.clock[inst.pos] {
			r.clock[inst.pos] = b.ts
		}
		r.pump()
	default:
		panic(fmt.Sprintf("groups: instance delivered unknown body %T", body))
	}
}

// sendProps announces this group's proposal for a multi-group message
// to the other destination groups, one set-multicast per group: the
// proposal is the group's agreed stream position, so every member
// announces the same value and receivers keep the first copy. A
// multicast rides each wire once where per-member unicasts would relay
// a copy per member through the gateways — on geo topologies that
// difference is what keeps the merge pipeline off the LAN wires'
// saturation point. Members of several destination groups receive a
// copy per group; duplicates are dropped by the props table.
func (r *Router) sendProps(inst *instance, b *gmsg, prop uint64) {
	for _, gid := range b.dests {
		if gid == inst.gid {
			continue
		}
		r.proc.MulticastSet(r.coord.sets[gid], &tsProp{id: b.id, gid: inst.gid, ts: prop})
	}
}

func (r *Router) onTSProp(t *tsProp) {
	if _, ok := r.done[t.id]; ok {
		return // late duplicate; we are done with this message
	}
	ent := r.ensure(t.id)
	if _, ok := ent.props[t.gid]; ok {
		return
	}
	ent.props[t.gid] = t.ts
	ent.known++
	if t.ts > ent.ts {
		ent.ts = t.ts
	}
	if ent.hasBody && ent.known == len(ent.dests) {
		ent.final = true
		r.eagerAdvance(ent)
	}
	r.pump()
}

func (r *Router) onTSReq(from proto.PID, t *tsReq) {
	if ts, ok := r.done[t.id]; ok {
		r.proc.Send(from, &tsFinal{id: t.id, ts: ts})
		return
	}
	ent, ok := r.pend[t.id]
	if !ok {
		return
	}
	if ent.hasBody {
		for _, gid := range ent.dests {
			if ts, ok := ent.props[gid]; ok {
				r.proc.Send(from, &tsProp{id: t.id, gid: gid, ts: ts})
			}
		}
		return
	}
	for gid := 0; gid < r.coord.m.NumGroups(); gid++ {
		if ts, ok := ent.props[gid]; ok {
			r.proc.Send(from, &tsProp{id: t.id, gid: gid, ts: ts})
		}
	}
}

func (r *Router) onTSFinal(t *tsFinal) {
	if _, ok := r.done[t.id]; ok {
		return
	}
	ent := r.ensure(t.id)
	if !ent.final {
		ent.final = true
		ent.ts = t.ts
		r.eagerAdvance(ent)
	}
	r.pump()
}

// eagerAdvance requests clock advances for a just-finalized entry the
// moment its timestamp is known, instead of waiting for it to reach the
// head of the delivery queue: the advance's consensus round then runs
// concurrently with the head-of-line wait behind earlier entries.
// Without this, every cross-group delivery serializes behind a full
// consensus round and the merge pipeline's capacity collapses.
func (r *Router) eagerAdvance(ent *pending) {
	for pos, inst := range r.insts {
		if r.clock[pos] < ent.ts {
			r.requestAdvance(inst, pos, ent.ts)
		}
	}
}

// pump delivers every message whose turn has come: repeatedly take the
// (timestamp, id)-minimum pending entry; if its timestamp is not final
// yet nothing can be delivered (a smaller-timestamp entry may still
// finalize below everything else) — arm the stall probe; if some local
// group's clock is behind the timestamp, a future message in that group
// could still propose a smaller timestamp — request an advance and wait.
func (r *Router) pump() {
	for {
		var head *pending
		for _, ent := range r.order {
			if head == nil || entLess(ent, head) {
				head = ent
			}
		}
		if head == nil {
			return
		}
		if !head.final {
			r.armStall()
			return
		}
		lag := false
		for pos, inst := range r.insts {
			if r.clock[pos] < head.ts {
				lag = true
				r.requestAdvance(inst, pos, head.ts)
			}
		}
		if lag {
			return
		}
		if !head.hasBody {
			// The clock gate implies every local destination stream has
			// already passed this message, so the body must be here.
			panic(fmt.Sprintf("groups: process %d delivering %s without a body", r.self, head.id))
		}
		r.done[head.id] = head.ts
		delete(r.pend, head.id)
		for i, e := range r.order {
			if e == head {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		r.coord.deliver(r.self, head.id, head.body, r.proc.Now())
	}
}

// requestAdvance a-broadcasts an advance into a lagging local group,
// once per needed timestamp (outstanding requests batch: while one is in
// flight, later messages wait and are covered by the next request).
func (r *Router) requestAdvance(inst *instance, pos int, ts uint64) {
	if r.reqAdv[pos] >= ts {
		return
	}
	r.reqAdv[pos] = ts
	inst.sent++
	inst.ep.ABroadcast(&advance{ts: ts})
}

// armStall arms the stall probe: if the minimum entry still lacks its
// final timestamp after stallRetry (normal proposals travel with the
// protocol traffic; only crashes and recoveries leave gaps), ask the
// destination groups' members to resend what they know.
func (r *Router) armStall() {
	if r.stallArmed {
		return
	}
	r.stallArmed = true
	r.proc.After(stallRetry, func() {
		r.stallArmed = false
		r.retryStalled()
	})
}

func (r *Router) retryStalled() {
	var head *pending
	for _, ent := range r.order {
		if head == nil || entLess(ent, head) {
			head = ent
		}
	}
	if head == nil {
		return
	}
	if head.final {
		r.pump()
		return
	}
	if r.proc.Now().Sub(head.created) >= stallRetry && head.hasBody {
		for _, gid := range head.dests {
			if _, ok := head.props[gid]; ok {
				continue
			}
			if r.instFor(gid) == nil && !r.coord.m.Contains(gid, head.from) {
				// A remote group with no proposal may never have received
				// the dissemination gram at all (lost to a partition, with
				// the sender unable to notice): resend it from the body we
				// hold. handleGram dedups, so a redundant copy is harmless.
				r.proc.MulticastSet(r.coord.sets[gid],
					&gmsg{id: head.id, from: head.from, dests: head.dests, body: head.body})
			}
			for _, q := range r.coord.m.Members(gid) {
				if q != r.self {
					r.proc.Send(q, &tsReq{id: head.id})
				}
			}
		}
	}
	r.armStall()
}
