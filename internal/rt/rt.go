// Package rt executes the same protocol stacks as internal/proto in real
// time, over goroutines and wall-clock timers — the prototyping half of
// the Neko duality the paper's tooling was built on ("a single
// environment to simulate and prototype distributed algorithms", [24]).
//
// Every process owns a goroutine draining an unbounded mailbox, so handler
// code stays single-threaded exactly as in the simulation. Messages hop
// between processes through an in-memory transport with configurable
// one-way latency and jitter. Because this runtime implements
// proto.Runtime, the consensus, atomic broadcast and membership modules —
// and the heartbeat failure detector of internal/hbfd — run on it without
// any change.
//
// Unlike the simulation, real-time executions are not deterministic;
// tests against this package assert eventual properties with deadlines,
// not exact timings.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Config parameterises the real-time system.
type Config struct {
	// N is the number of processes.
	N int
	// Latency is the one-way message delay (default 200µs).
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed feeds the per-process random streams (default 1).
	Seed uint64
}

const defaultLatency = 200 * time.Microsecond

// System is a set of processes running protocol handlers in real time.
type System struct {
	cfg     Config
	procs   []*Proc
	started atomic.Bool
	epoch   time.Time
}

// NewSystem builds the system. Handlers are installed with SetHandler and
// everything starts with Start.
func NewSystem(cfg Config) *System {
	if cfg.N < 1 {
		panic(fmt.Sprintf("rt: N = %d", cfg.N))
	}
	if cfg.Latency <= 0 {
		cfg.Latency = defaultLatency
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &System{cfg: cfg}
	root := sim.NewRand(cfg.Seed)
	s.procs = make([]*Proc, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p := &Proc{
			sys: s,
			id:  proto.PID(i),
			rng: root.ForkN(i),
		}
		p.mbox.signal = make(chan struct{}, 1)
		s.procs[i] = p
	}
	return s
}

// Proc returns the runtime of process p.
func (s *System) Proc(p proto.PID) *Proc { return s.procs[p] }

// SetHandler installs the root protocol of p; it must precede Start.
func (s *System) SetHandler(p proto.PID, h proto.Handler) {
	if s.started.Load() {
		panic("rt: SetHandler after Start")
	}
	s.procs[p].handler = h
}

// Start launches one goroutine per process and runs every Init.
func (s *System) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("rt: Start called twice")
	}
	s.epoch = time.Now()
	for _, p := range s.procs {
		if p.handler == nil {
			panic(fmt.Sprintf("rt: process %d has no handler", p.id))
		}
		go p.loop()
	}
	for _, p := range s.procs {
		p := p
		p.post(func() { p.handler.Init() })
	}
}

// Crash stops process p: its mailbox drains no further events and its
// sends are dropped. Safe to call from any goroutine.
func (s *System) Crash(p proto.PID) { s.procs[p].crashed.Store(true) }

// Crashed reports whether p crashed.
func (s *System) Crashed(p proto.PID) bool { return s.procs[p].crashed.Load() }

// Stop terminates all process goroutines. The system cannot be restarted.
func (s *System) Stop() {
	for _, p := range s.procs {
		p.stopped.Store(true)
		select {
		case p.mbox.signal <- struct{}{}:
		default:
		}
	}
}

// Proc is one real-time process. It implements proto.Runtime; all handler
// invocations happen on the process goroutine.
type Proc struct {
	sys     *System
	id      proto.PID
	rng     *sim.Rand
	handler proto.Handler
	crashed atomic.Bool
	stopped atomic.Bool
	mbox    mailbox

	// rngMu guards rng: Rand may be called from the process goroutine
	// while jitter computation happens on sender goroutines.
	rngMu sync.Mutex
}

var _ proto.Runtime = (*Proc)(nil)

// mailbox is an unbounded MPSC queue with a wake-up channel.
type mailbox struct {
	mu     sync.Mutex
	queue  []func()
	signal chan struct{}
}

func (p *Proc) post(fn func()) {
	p.mbox.mu.Lock()
	p.mbox.queue = append(p.mbox.queue, fn)
	p.mbox.mu.Unlock()
	select {
	case p.mbox.signal <- struct{}{}:
	default:
	}
}

// loop drains the mailbox until the system stops.
func (p *Proc) loop() {
	for {
		<-p.mbox.signal
		if p.stopped.Load() {
			return
		}
		for {
			p.mbox.mu.Lock()
			if len(p.mbox.queue) == 0 {
				p.mbox.mu.Unlock()
				break
			}
			fn := p.mbox.queue[0]
			p.mbox.queue = p.mbox.queue[1:]
			p.mbox.mu.Unlock()
			if p.stopped.Load() {
				return
			}
			if !p.crashed.Load() {
				fn()
			}
		}
	}
}

// ID implements proto.Runtime.
func (p *Proc) ID() proto.PID { return p.id }

// N implements proto.Runtime.
func (p *Proc) N() int { return len(p.sys.procs) }

// Now implements proto.Runtime: wall-clock time since Start, expressed on
// the same axis the simulation uses.
func (p *Proc) Now() sim.Time { return sim.Time(time.Since(p.sys.epoch)) }

// Rand implements proto.Runtime.
func (p *Proc) Rand() *sim.Rand { return p.rng }

// delay computes one message's transit time.
func (p *Proc) delay() time.Duration {
	d := p.sys.cfg.Latency
	if j := p.sys.cfg.Jitter; j > 0 {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Float64() * float64(j))
		p.rngMu.Unlock()
	}
	return d
}

// Send implements proto.Runtime.
func (p *Proc) Send(to proto.PID, payload any) {
	if p.crashed.Load() {
		return
	}
	p.transmit(to, payload)
}

// Multicast implements proto.Runtime: delivered to everyone including the
// sender (the local copy skips the transit delay, as in the simulation).
func (p *Proc) Multicast(payload any) {
	if p.crashed.Load() {
		return
	}
	for _, dst := range p.sys.procs {
		p.transmit(dst.id, payload)
	}
}

func (p *Proc) transmit(to proto.PID, payload any) {
	dst := p.sys.procs[to]
	from := p.id
	deliver := func() {
		dst.post(func() { dst.handler.OnMessage(from, payload) })
	}
	if to == p.id {
		deliver()
		return
	}
	time.AfterFunc(p.delay(), deliver)
}

// After implements proto.Runtime; the callback runs on the process
// goroutine and is dropped after a crash.
func (p *Proc) After(d time.Duration, fn func()) proto.Timer {
	t := time.AfterFunc(d, func() {
		p.post(fn)
	})
	return timerAdapter{t}
}

// Suspects implements proto.Runtime. The real-time system has no modelled
// failure detector: without a concrete detector (internal/hbfd) nobody is
// ever suspected.
func (p *Proc) Suspects(proto.PID) bool { return false }

// timerAdapter adapts *time.Timer to proto.Timer.
type timerAdapter struct{ t *time.Timer }

func (a timerAdapter) Cancel() { a.t.Stop() }
