package rt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ctabcast"
	"repro/internal/hbfd"
	"repro/internal/proto"
)

// collector gathers deliveries thread-safely across process goroutines.
type collector struct {
	mu   sync.Mutex
	seqs map[int][]proto.MsgID
}

func newCollector() *collector {
	return &collector{seqs: make(map[int][]proto.MsgID)}
}

func (c *collector) add(p int, id proto.MsgID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqs[p] = append(c.seqs[p], id)
}

func (c *collector) snapshot(p int) []proto.MsgID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]proto.MsgID, len(c.seqs[p]))
	copy(out, c.seqs[p])
	return out
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// echoHandler replies "pong" to "ping".
type echoHandler struct {
	rt   proto.Runtime
	mu   sync.Mutex
	seen []string
}

func (h *echoHandler) Init() {}

func (h *echoHandler) OnMessage(from proto.PID, payload any) {
	s := payload.(string)
	h.mu.Lock()
	h.seen = append(h.seen, s)
	h.mu.Unlock()
	if s == "ping" {
		h.rt.Send(from, "pong")
	}
}

func (h *echoHandler) OnSuspect(proto.PID) {}
func (h *echoHandler) OnTrust(proto.PID)   {}

func (h *echoHandler) has(s string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, got := range h.seen {
		if got == s {
			return true
		}
	}
	return false
}

func TestPingPong(t *testing.T) {
	sys := NewSystem(Config{N: 2})
	defer sys.Stop()
	handlers := make([]*echoHandler, 2)
	for i := 0; i < 2; i++ {
		handlers[i] = &echoHandler{rt: sys.Proc(proto.PID(i))}
		sys.SetHandler(proto.PID(i), handlers[i])
	}
	sys.Start()
	sys.Proc(0).post(func() { sys.Proc(0).Send(1, "ping") })
	eventually(t, time.Second, func() bool { return handlers[0].has("pong") },
		"no pong within deadline")
}

func TestMulticastReachesAllIncludingSelf(t *testing.T) {
	sys := NewSystem(Config{N: 3})
	defer sys.Stop()
	handlers := make([]*echoHandler, 3)
	for i := 0; i < 3; i++ {
		handlers[i] = &echoHandler{rt: sys.Proc(proto.PID(i))}
		sys.SetHandler(proto.PID(i), handlers[i])
	}
	sys.Start()
	sys.Proc(2).post(func() { sys.Proc(2).Multicast("hello") })
	eventually(t, time.Second, func() bool {
		for _, h := range handlers {
			if !h.has("hello") {
				return false
			}
		}
		return true
	}, "multicast incomplete")
}

func TestTimersFireOnProcessGoroutine(t *testing.T) {
	sys := NewSystem(Config{N: 1})
	defer sys.Stop()
	h := &echoHandler{rt: sys.Proc(0)}
	sys.SetHandler(0, h)
	sys.Start()
	fired := make(chan struct{})
	sys.Proc(0).After(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}

func TestCancelledTimerDoesNotFire(t *testing.T) {
	sys := NewSystem(Config{N: 1})
	defer sys.Stop()
	h := &echoHandler{rt: sys.Proc(0)}
	sys.SetHandler(0, h)
	sys.Start()
	fired := make(chan struct{}, 1)
	timer := sys.Proc(0).After(20*time.Millisecond, func() { fired <- struct{}{} })
	timer.Cancel()
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestCrashedProcessGoesSilent(t *testing.T) {
	sys := NewSystem(Config{N: 2})
	defer sys.Stop()
	handlers := make([]*echoHandler, 2)
	for i := 0; i < 2; i++ {
		handlers[i] = &echoHandler{rt: sys.Proc(proto.PID(i))}
		sys.SetHandler(proto.PID(i), handlers[i])
	}
	sys.Start()
	sys.Crash(1)
	sys.Proc(0).post(func() { sys.Proc(0).Send(1, "ping") })
	time.Sleep(50 * time.Millisecond)
	if handlers[1].has("ping") {
		t.Fatal("crashed process handled a message")
	}
	if handlers[0].has("pong") {
		t.Fatal("crashed process replied")
	}
	if !sys.Crashed(1) || sys.Crashed(0) {
		t.Fatal("crash bookkeeping wrong")
	}
}

// TestAtomicBroadcastRealTime runs the full FD algorithm — consensus,
// reliable broadcast, heartbeat failure detection — over goroutines and
// wall-clock time, with a mid-run crash of the coordinator. The survivors
// must deliver every surviving broadcast in a single total order.
func TestAtomicBroadcastRealTime(t *testing.T) {
	const n = 3
	sys := NewSystem(Config{N: n, Latency: 100 * time.Microsecond})
	defer sys.Stop()
	col := newCollector()
	abcs := make([]*ctabcast.Process, n)
	for i := 0; i < n; i++ {
		i := i
		w := hbfd.Wrap(sys.Proc(proto.PID(i)),
			hbfd.Config{Interval: 2 * time.Millisecond, Timeout: 10 * time.Millisecond},
			func(rt proto.Runtime) proto.Handler {
				abcs[i] = ctabcast.New(rt, ctabcast.Config{
					Renumber: true,
					Deliver:  func(id proto.MsgID, body any) { col.add(i, id) },
				})
				return abcs[i]
			})
		sys.SetHandler(proto.PID(i), w)
	}
	sys.Start()

	// Broadcast 30 messages from p1 and p2 (p0 will crash).
	for k := 0; k < 30; k++ {
		k := k
		sender := 1 + k%2
		p := sys.Proc(proto.PID(sender))
		time.AfterFunc(time.Duration(k)*2*time.Millisecond, func() {
			p.post(func() { abcs[sender].ABroadcast(fmt.Sprintf("m%d", k)) })
		})
	}
	time.AfterFunc(20*time.Millisecond, func() { sys.Crash(0) })

	eventually(t, 10*time.Second, func() bool {
		return len(col.snapshot(1)) >= 30 && len(col.snapshot(2)) >= 30
	}, "survivors did not deliver all 30 messages in time")

	a, b := col.snapshot(1), col.snapshot(2)
	limit := len(a)
	if len(b) < limit {
		limit = len(b)
	}
	for i := 0; i < limit; i++ {
		if a[i] != b[i] {
			t.Fatalf("total order violated at %d: %v vs %v", i, a[i], b[i])
		}
	}
	seen := make(map[proto.MsgID]bool)
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate delivery %v", id)
		}
		seen[id] = true
	}
}

func TestValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("N=0 did not panic")
			}
		}()
		NewSystem(Config{N: 0})
	}()
	func() {
		sys := NewSystem(Config{N: 1})
		defer sys.Stop()
		defer func() {
			if recover() == nil {
				t.Error("missing handler did not panic")
			}
		}()
		sys.Start()
	}()
	func() {
		sys := NewSystem(Config{N: 1})
		defer sys.Stop()
		sys.SetHandler(0, &echoHandler{rt: sys.Proc(0)})
		sys.Start()
		defer func() {
			if recover() == nil {
				t.Error("second Start did not panic")
			}
		}()
		sys.Start()
	}()
}

func TestNowAdvances(t *testing.T) {
	sys := NewSystem(Config{N: 1})
	defer sys.Stop()
	sys.SetHandler(0, &echoHandler{rt: sys.Proc(0)})
	sys.Start()
	t0 := sys.Proc(0).Now()
	time.Sleep(5 * time.Millisecond)
	if sys.Proc(0).Now() <= t0 {
		t.Fatal("clock did not advance")
	}
}
